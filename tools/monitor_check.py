#!/usr/bin/env python3
"""Structure + consistency validator for obs::Monitor JSONL streams
(ISSUE 7). Run in CI against the telemetry produced by
`bench_grid_routing --monitor` / `bench_admission --monitor` so a
refactor of src/obs/ cannot silently break the interval invariants the
monitor promises.

Records are grouped by their optional "run" label (several monitored
runs may share one file); each group must be one complete monitor
stream. Checks per group, in order:

  schema    every line is a JSON object; interval records carry the
            numeric fields i/t/dt/deliveries/events and a boolean
            "stalled"; exactly one "final": true summary record exists
            and it is the group's last line.
  timeline  interval indices "i" are contiguous from 0; "t" is strictly
            increasing with dt > 0 and t[k] - dt[k] == t[k-1] (records
            tile sim time with no gap or overlap); the final record's
            "t" equals the last interval's.
  progress  when records carry a "progress" field it is numeric and
            non-decreasing across the run; "eta_s", when present, is
            null or a nonnegative number.
  totals    the final record's deliveries/events equal the sum of the
            per-interval deltas, its "intervals" equals the record
            count, its "stalled_intervals" equals the number of records
            flagged "stalled": true, and its "peak_backlog" equals the
            max sampled "backlog" (0 when no record carries one).

Exit 0 and a one-line summary on success; exit 1 with every violation
on failure. Usage:

    monitor_check.py FILE.jsonl
"""

import json
import sys

REQUIRED_NUMBERS = ("i", "t", "dt", "deliveries", "events")
FINAL_NUMBERS = ("t", "intervals", "stalled_intervals", "peak_backlog",
                 "deliveries", "events")


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_group(run, records):
    """Validate one run label's record list ((line_no, record) pairs);
    returns a list of violation strings (empty = valid)."""
    errors = []
    label = f"run {run!r}" if run else "unlabelled run"

    def err(line_no, message):
        errors.append(f"{label}, line {line_no}: {message}")

    # --- schema ------------------------------------------------------
    intervals = []
    finals = []
    for line_no, rec in records:
        if rec.get("final") is True:
            for key in FINAL_NUMBERS:
                if not is_number(rec.get(key)):
                    err(line_no, f"final record missing numeric {key!r}")
            finals.append((line_no, rec))
            continue
        for key in REQUIRED_NUMBERS:
            if not is_number(rec.get(key)):
                err(line_no, f"interval record missing numeric {key!r}")
        if not isinstance(rec.get("stalled"), bool):
            err(line_no, "interval record missing boolean \"stalled\"")
        intervals.append((line_no, rec))
    if len(finals) != 1:
        errors.append(f"{label}: expected exactly one \"final\" record, "
                      f"got {len(finals)}")
    elif records[-1][1] is not finals[0][1]:
        err(finals[0][0], "final record is not the group's last line")
    if errors:
        return errors  # the arithmetic below assumes schema holds

    # --- timeline ----------------------------------------------------
    prev_t = None
    for k, (line_no, rec) in enumerate(intervals):
        if rec["i"] != k:
            err(line_no, f"interval index {rec['i']} (expected {k})")
        if rec["dt"] <= 0:
            err(line_no, f"non-positive dt {rec['dt']}")
        if prev_t is not None:
            if rec["t"] <= prev_t:
                err(line_no, f"t {rec['t']} not increasing (previous "
                             f"{prev_t})")
            if rec["t"] - rec["dt"] != prev_t:
                err(line_no, f"t - dt = {rec['t'] - rec['dt']} leaves a "
                             f"gap/overlap against previous t {prev_t}")
        prev_t = rec["t"]

    # --- progress / eta ----------------------------------------------
    prev_progress = None
    for line_no, rec in intervals:
        if "progress" in rec:
            if not is_number(rec["progress"]):
                err(line_no, "non-numeric \"progress\"")
            elif prev_progress is not None and rec["progress"] < prev_progress:
                err(line_no, f"progress {rec['progress']} decreased "
                             f"(previous {prev_progress})")
            else:
                prev_progress = rec["progress"]
        if "eta_s" in rec:
            eta = rec["eta_s"]
            if eta is not None and (not is_number(eta) or eta < 0):
                err(line_no, f"eta_s {eta} is not null-or-nonnegative")

    # --- totals vs the final summary ---------------------------------
    line_no, final = finals[0]
    if intervals and final["t"] != intervals[-1][1]["t"]:
        err(line_no, f"final t {final['t']} != last interval t "
                     f"{intervals[-1][1]['t']}")
    if final["intervals"] != len(intervals):
        err(line_no, f"final intervals {final['intervals']} != record "
                     f"count {len(intervals)}")
    for key in ("deliveries", "events"):
        total = sum(rec[key] for _, rec in intervals)
        if final[key] != total:
            err(line_no, f"final {key} {final[key]} != per-interval sum "
                         f"{total}")
    stalled = sum(1 for _, rec in intervals if rec["stalled"])
    if final["stalled_intervals"] != stalled:
        err(line_no, f"final stalled_intervals "
                     f"{final['stalled_intervals']} != flagged record "
                     f"count {stalled}")
    peak = max((rec.get("backlog", 0) for _, rec in intervals), default=0)
    if final["peak_backlog"] != peak:
        err(line_no, f"final peak_backlog {final['peak_backlog']} != max "
                     f"sampled backlog {peak}")
    return errors


def check_file(path):
    """Returns (errors, num_records)."""
    errors = []
    groups = {}  # run label -> [(line_no, record)], insertion-ordered
    num_records = 0
    try:
        with open(path) as f:
            for line_no, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError as e:
                    errors.append(f"line {line_no}: not JSON: {e}")
                    continue
                if not isinstance(rec, dict):
                    errors.append(f"line {line_no}: not a JSON object")
                    continue
                num_records += 1
                groups.setdefault(rec.get("run"), []).append((line_no, rec))
    except OSError as e:
        return [f"cannot read {path}: {e}"], 0
    if not errors and not groups:
        errors.append("no records")
    for run, records in groups.items():
        errors.extend(check_group(run, records))
    return errors, num_records


def main():
    if len(sys.argv) != 2 or sys.argv[1].startswith("-"):
        print(__doc__.strip().splitlines()[-1].strip(), file=sys.stderr)
        return 2
    path = sys.argv[1]
    errors, num_records = check_file(path)
    for e in errors:
        print(f"FAIL  {e}")
    if errors:
        print(f"{path}: {len(errors)} violations in {num_records} records")
        return 1
    print(f"{path}: ok ({num_records} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
