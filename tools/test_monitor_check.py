#!/usr/bin/env python3
"""Self-test for tools/monitor_check.py (ISSUE 7), runnable standalone
(`python3 tools/test_monitor_check.py`) or under pytest. Covers the
schema, timeline, progress/eta (ISSUE 8), and totals checks plus
run-label grouping, each with a passing and a violating stream.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import monitor_check  # noqa: E402


def interval(i, t, dt, deliveries=1, events=100, run=None, stalled=False,
             **extra):
    rec = {"i": i, "t": t, "dt": dt, "deliveries": deliveries,
           "events": events, "stalled": stalled}
    if run is not None:
        rec["run"] = run
    rec.update(extra)
    return rec


def final(t, intervals, deliveries, events, stalled=0, peak=0, run=None,
          **extra):
    rec = {"final": True, "t": t, "intervals": intervals,
           "stalled_intervals": stalled, "peak_backlog": peak,
           "deliveries": deliveries, "events": events}
    if run is not None:
        rec["run"] = run
    rec.update(extra)
    return rec


def valid_stream(run=None):
    return [
        interval(0, 100, 100, deliveries=2, events=50, run=run),
        interval(1, 200, 100, deliveries=3, events=60, run=run),
        interval(2, 260, 60, deliveries=1, events=10, run=run),
        final(260, 3, 6, 120, run=run),
    ]


class MonitorCheckTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def check(self, records, raw_lines=()):
        path = os.path.join(self.dir.name, "monitor.jsonl")
        with open(path, "w") as f:
            for rec in records:
                f.write(json.dumps(rec) + "\n")
            for line in raw_lines:
                f.write(line + "\n")
        return monitor_check.check_file(path)

    def assert_fails(self, records, fragment, raw_lines=()):
        errors, _ = self.check(records, raw_lines)
        self.assertTrue(errors, "expected violations, got none")
        self.assertTrue(any(fragment in e for e in errors),
                        f"{fragment!r} not in {errors}")

    # --- valid streams -----------------------------------------------

    def test_valid_single_group(self):
        errors, count = self.check(valid_stream())
        self.assertEqual(errors, [])
        self.assertEqual(count, 4)

    def test_valid_multiple_run_labels_interleave_independently(self):
        # Concatenated runs in one file: each label validates alone.
        errors, count = self.check(valid_stream("grid")
                                   + valid_stream("dragonfly"))
        self.assertEqual(errors, [])
        self.assertEqual(count, 8)

    def test_valid_stalled_accounting(self):
        records = [
            interval(0, 100, 100, deliveries=0, run="g", stalled=True,
                     backlog=2),
            interval(1, 200, 100, deliveries=4, run="g", backlog=1),
            final(200, 2, 4, 200, stalled=1, peak=2, run="g"),
        ]
        errors, _ = self.check(records)
        self.assertEqual(errors, [])

    # --- schema ------------------------------------------------------

    def test_non_json_line_fails(self):
        self.assert_fails(valid_stream(), "not JSON", raw_lines=["{oops"])

    def test_missing_interval_field_fails(self):
        records = valid_stream()
        del records[1]["dt"]
        self.assert_fails(records, "missing numeric 'dt'")

    def test_missing_stalled_flag_fails(self):
        records = valid_stream()
        del records[0]["stalled"]
        self.assert_fails(records, "missing boolean \"stalled\"")

    def test_missing_final_record_fails(self):
        self.assert_fails(valid_stream()[:-1], "exactly one \"final\"")

    def test_duplicate_final_record_fails(self):
        records = valid_stream() + [final(260, 3, 6, 120)]
        self.assert_fails(records, "exactly one \"final\"")

    def test_final_not_last_fails(self):
        records = valid_stream()
        records[2], records[3] = records[3], records[2]
        self.assert_fails(records, "not the group's last line")

    def test_empty_file_fails(self):
        self.assert_fails([], "no records")

    # --- timeline ----------------------------------------------------

    def test_non_contiguous_index_fails(self):
        records = valid_stream()
        records[2]["i"] = 5
        self.assert_fails(records, "interval index 5 (expected 2)")

    def test_non_increasing_t_fails(self):
        records = valid_stream()
        records[2]["t"] = 150
        self.assert_fails(records, "not increasing")

    def test_gap_between_records_fails(self):
        records = valid_stream()
        records[2]["t"] = 400  # dt 60 leaves (200, 340) uncovered
        self.assert_fails(records, "gap/overlap")

    def test_final_t_mismatch_fails(self):
        records = valid_stream()
        records[-1]["t"] = 300
        self.assert_fails(records, "final t 300 != last interval t 260")

    # --- progress / eta ----------------------------------------------

    def test_valid_progress_and_eta(self):
        records = valid_stream()
        records[0].update(progress=0.25, eta_s=None)
        records[1].update(progress=0.5, eta_s=10.0)
        records[2].update(progress=1.0, eta_s=0.0)
        errors, _ = self.check(records)
        self.assertEqual(errors, [])

    def test_progress_decrease_fails(self):
        records = valid_stream()
        records[0]["progress"] = 0.5
        records[1]["progress"] = 0.25
        self.assert_fails(records, "progress 0.25 decreased")

    def test_non_numeric_progress_fails(self):
        records = valid_stream()
        records[0]["progress"] = "half"
        self.assert_fails(records, "non-numeric \"progress\"")

    def test_progress_sparse_records_still_checked(self):
        # A record without the field does not reset the baseline.
        records = valid_stream()
        records[0]["progress"] = 0.75
        records[2]["progress"] = 0.5
        self.assert_fails(records, "progress 0.5 decreased")

    def test_negative_eta_fails(self):
        records = valid_stream()
        records[1]["eta_s"] = -3.5
        self.assert_fails(records, "eta_s -3.5 is not null-or-nonnegative")

    def test_non_numeric_eta_fails(self):
        records = valid_stream()
        records[1]["eta_s"] = "soon"
        self.assert_fails(records, "not null-or-nonnegative")

    # --- totals ------------------------------------------------------

    def test_delta_sum_mismatch_fails(self):
        records = valid_stream()
        records[-1]["deliveries"] = 7
        self.assert_fails(records, "final deliveries 7 != per-interval "
                                   "sum 6")

    def test_interval_count_mismatch_fails(self):
        records = valid_stream()
        records[-1]["intervals"] = 2
        self.assert_fails(records, "record count 3")

    def test_stalled_count_mismatch_fails(self):
        records = valid_stream()
        records[0]["stalled"] = True
        self.assert_fails(records, "flagged record count 1")

    def test_peak_backlog_mismatch_fails(self):
        records = valid_stream()
        records[1]["backlog"] = 9
        self.assert_fails(records, "max sampled backlog 9")

    def test_violation_names_its_run_label(self):
        records = valid_stream("grid")
        records[-1]["events"] = 1
        errors, _ = self.check(records)
        self.assertTrue(any("run 'grid'" in e for e in errors), errors)


if __name__ == "__main__":
    unittest.main(verbosity=2)
