#!/usr/bin/env python3
"""Self-test for tools/trace_check.py (ISSUE 6), runnable standalone
(`python3 tools/test_trace_check.py`) or under pytest. Exercises the
schema, async-balance, and sync-nesting checks against hand-built
traces shaped like obs::Tracer output.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import trace_check  # noqa: E402


def X(name, ts, dur, tid=1, cat="request"):
    return {"name": name, "cat": cat, "ph": "X", "ts": ts, "dur": dur,
            "pid": 1, "tid": tid}


def I(name, ts, tid=1, cat="router"):  # noqa: E743
    return {"name": name, "cat": cat, "ph": "i", "ts": ts, "s": "t",
            "pid": 1, "tid": tid}


def A(ph, name, ts, aid, tid=1, cat="hop"):
    return {"name": name, "cat": cat, "ph": ph, "ts": ts,
            "id": f"0x{aid:x}", "pid": 1, "tid": tid}


META = {"name": "process_name", "ph": "M", "pid": 1,
        "args": {"name": "requests"}}


def valid_trace():
    """The shape a routed run produces: an envelope X span containing
    an admission_wait X span and instants, plus balanced async hops."""
    return {"traceEvents": [
        META,
        X("request", 0.0, 100.0),
        X("admission_wait", 0.0, 10.0),
        I("submit", 0.0),
        A("b", "hop", 12.0, 1),
        A("b", "hop", 12.0, 2),          # overlapping hops are async
        A("n", "pair_matched", 20.0, 1),
        A("e", "hop", 30.0, 1),
        A("e", "hop", 40.0, 2),
        I("deliver", 99.0, cat="request"),
    ]}


class TraceCheckTest(unittest.TestCase):
    def check(self, doc):
        return trace_check.check_events(doc["traceEvents"])

    # --- happy path ---------------------------------------------------

    def test_valid_trace_passes(self):
        self.assertEqual(self.check(valid_trace()), [])

    def test_identical_intervals_count_as_nested(self):
        # deferral_window booked at submit time can exactly coincide
        # with admission_wait; that is containment, not overlap.
        doc = {"traceEvents": [X("request", 0.0, 50.0),
                               X("admission_wait", 0.0, 50.0)]}
        self.assertEqual(self.check(doc), [])

    def test_disjoint_lanes_do_not_interact(self):
        doc = {"traceEvents": [X("request", 0.0, 50.0, tid=1),
                               X("request", 10.0, 50.0, tid=2)]}
        self.assertEqual(self.check(doc), [])

    # --- schema violations -------------------------------------------

    def test_missing_name_fails(self):
        doc = {"traceEvents": [{"cat": "x", "ph": "i", "ts": 0, "s": "t"}]}
        self.assertTrue(any("name" in e for e in self.check(doc)))

    def test_unknown_phase_fails(self):
        doc = {"traceEvents": [{"name": "a", "cat": "x", "ph": "Z",
                                "ts": 0}]}
        self.assertTrue(any("unknown phase" in e for e in self.check(doc)))

    def test_x_without_dur_fails(self):
        ev = X("request", 0.0, 1.0)
        del ev["dur"]
        self.assertTrue(any("dur" in e
                            for e in self.check({"traceEvents": [ev]})))

    def test_instant_without_scope_fails(self):
        ev = I("submit", 0.0)
        del ev["s"]
        self.assertTrue(any("scope" in e
                            for e in self.check({"traceEvents": [ev]})))

    def test_async_without_id_fails(self):
        ev = A("b", "hop", 0.0, 1)
        del ev["id"]
        self.assertTrue(any("id" in e
                            for e in self.check({"traceEvents": [ev]})))

    # --- async balance ------------------------------------------------

    def test_unbalanced_async_begin_fails(self):
        doc = {"traceEvents": [A("b", "hop", 0.0, 7)]}
        self.assertTrue(any("never ended" in e for e in self.check(doc)))

    def test_async_end_without_begin_fails(self):
        doc = {"traceEvents": [A("e", "hop", 5.0, 7)]}
        self.assertTrue(any("without matching begin" in e
                            for e in self.check(doc)))

    def test_async_instant_for_unknown_id_fails(self):
        doc = {"traceEvents": [A("b", "hop", 0.0, 1),
                               A("n", "pair_matched", 1.0, 9),
                               A("e", "hop", 2.0, 1)]}
        self.assertTrue(any("never-begun" in e for e in self.check(doc)))

    def test_async_ids_matched_by_cat(self):
        # Same id under different cats are distinct streams.
        doc = {"traceEvents": [A("b", "hop", 0.0, 1, cat="hop"),
                               A("e", "hop", 1.0, 1, cat="other")]}
        errors = self.check(doc)
        self.assertTrue(any("without matching begin" in e for e in errors))
        self.assertTrue(any("never ended" in e for e in errors))

    # --- sync nesting -------------------------------------------------

    def test_partial_overlap_fails(self):
        doc = {"traceEvents": [X("request", 0.0, 50.0),
                               X("admission_wait", 40.0, 30.0)]}
        self.assertTrue(any("partially overlaps" in e
                            for e in self.check(doc)))

    def test_sequential_spans_pass(self):
        doc = {"traceEvents": [X("a", 0.0, 10.0), X("b", 10.0, 10.0)]}
        self.assertEqual(self.check(doc), [])

    # --- file-level entry point --------------------------------------

    def run_file(self, payload):
        with tempfile.NamedTemporaryFile("w", suffix=".json",
                                         delete=False) as f:
            f.write(payload)
            path = f.name
        self.addCleanup(os.unlink, path)
        return trace_check.check_file(path)

    def test_check_file_valid(self):
        errors, n = self.run_file(json.dumps(valid_trace()))
        self.assertEqual(errors, [])
        self.assertEqual(n, len(valid_trace()["traceEvents"]))

    def test_check_file_malformed_json(self):
        errors, _ = self.run_file("{not json")
        self.assertTrue(any("cannot parse" in e for e in errors))

    def test_check_file_missing_trace_events(self):
        errors, _ = self.run_file(json.dumps({"other": []}))
        self.assertTrue(any("traceEvents" in e for e in errors))


if __name__ == "__main__":
    unittest.main(verbosity=2)
