#!/usr/bin/env python3
"""Schema + structure validator for obs::Tracer Chrome trace JSON
(ISSUE 6). Run in CI against the trace produced by
`bench_grid_routing --trace` so a refactor of src/obs/ cannot silently
emit Perfetto-unloadable output.

Checks, in order:

  schema    the file is a JSON object with a "traceEvents" array; every
            event is an object with string "name"/"cat"/"ph" and
            integer-or-float "ts" >= 0 where applicable; "X" events
            carry a non-negative "dur"; "i" events carry a scope "s";
            async events ("b"/"n"/"e") carry an "id".
  async     every async begin ("b") has exactly one matching end ("e")
            with the same (cat, id), ends never precede their begin in
            file order or in timestamp, and async instants ("n")
            reference a (cat, id) that was begun at some point
            (obs::Tracer appends in emission order, which is sim-time
            order per id, so file order is the invariant to check).
  nesting   per (pid, tid) lane, sync "X" spans must nest: sorted by
            ts ascending / dur descending, each span is either disjoint
            from or fully contained in the enclosing open span. The
            tracer guarantees this by construction (envelope spans
            cover admission_wait / deferral_window); partial overlap
            means a tracer bug.

Exit 0 and a one-line summary on success; exit 1 with every violation
on failure. Usage:

    trace_check.py FILE.json
"""

import json
import sys

SYNC_PHASES = {"X"}
INSTANT_PHASES = {"i"}
ASYNC_BEGIN = "b"
ASYNC_INSTANT = "n"
ASYNC_END = "e"
METADATA_PHASES = {"M"}
KNOWN_PHASES = (SYNC_PHASES | INSTANT_PHASES | METADATA_PHASES
                | {ASYNC_BEGIN, ASYNC_INSTANT, ASYNC_END})


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_events(events):
    """Validate a traceEvents list; returns a list of violation strings
    (empty = valid)."""
    errors = []

    def err(i, ev, message):
        label = ev.get("name", "?") if isinstance(ev, dict) else "?"
        errors.append(f"event {i} ({label}): {message}")

    # --- per-event schema --------------------------------------------
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            err(i, ev, "not a JSON object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or not ph:
            err(i, ev, "missing/non-string \"ph\"")
            continue
        if ph not in KNOWN_PHASES:
            err(i, ev, f"unknown phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            err(i, ev, "missing/non-string \"name\"")
        if ph in METADATA_PHASES:
            continue  # metadata has no cat/ts requirements
        if not isinstance(ev.get("cat"), str) or not ev["cat"]:
            err(i, ev, "missing/non-string \"cat\"")
        if not is_number(ev.get("ts")) or ev["ts"] < 0:
            err(i, ev, "missing/negative \"ts\"")
        if ph in SYNC_PHASES:
            if not is_number(ev.get("dur")) or ev["dur"] < 0:
                err(i, ev, "\"X\" event missing/negative \"dur\"")
        if ph in INSTANT_PHASES:
            if not isinstance(ev.get("s"), str):
                err(i, ev, "\"i\" event missing scope \"s\"")
        if ph in (ASYNC_BEGIN, ASYNC_INSTANT, ASYNC_END):
            if "id" not in ev:
                err(i, ev, f"async \"{ph}\" event missing \"id\"")
    if errors:
        return errors  # structural checks below assume schema holds

    # --- async begin/end balance -------------------------------------
    open_ids = {}     # (cat, id) -> begin event index
    ever_opened = set()
    for i, ev in enumerate(events):
        ph = ev["ph"]
        if ph not in (ASYNC_BEGIN, ASYNC_INSTANT, ASYNC_END):
            continue
        key = (ev["cat"], str(ev["id"]))
        if ph == ASYNC_BEGIN:
            if key in open_ids:
                err(i, ev, f"async id {key} begun twice without an end")
            open_ids[key] = i
            ever_opened.add(key)
        elif ph == ASYNC_INSTANT:
            if key not in ever_opened:
                err(i, ev, f"async instant for never-begun id {key}")
        elif ph == ASYNC_END:
            if key not in open_ids:
                err(i, ev, f"async end without matching begin for {key}")
            else:
                begin = events[open_ids.pop(key)]
                if ev["ts"] < begin["ts"]:
                    err(i, ev, f"async end at ts {ev['ts']} precedes its "
                               f"begin at ts {begin['ts']}")
    for key, i in sorted(open_ids.items()):
        err(i, events[i], f"async begin never ended for id {key}")

    # --- sync span nesting per lane ----------------------------------
    lanes = {}
    for i, ev in enumerate(events):
        if ev["ph"] in SYNC_PHASES:
            lane = (ev.get("pid", 0), ev.get("tid", 0))
            lanes.setdefault(lane, []).append((ev["ts"], -ev["dur"], i))
    for lane, spans in sorted(lanes.items()):
        spans.sort()
        stack = []  # (start, end, index) of currently-open spans
        for ts, neg_dur, i in spans:
            end = ts - neg_dur
            while stack and ts >= stack[-1][1]:
                stack.pop()
            if stack and end > stack[-1][1]:
                outer = events[stack[-1][2]]
                err(i, events[i],
                    f"span [{ts}, {end}] partially overlaps "
                    f"\"{outer['name']}\" [{stack[-1][0]}, {stack[-1][1]}] "
                    f"in lane pid={lane[0]} tid={lane[1]}")
                continue
            stack.append((ts, end, i))
    return errors


def check_file(path):
    """Returns (errors, num_events)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return [f"cannot parse {path}: {e}"], 0
    if not isinstance(doc, dict):
        return ["top level is not a JSON object"], 0
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing \"traceEvents\" array"], 0
    return check_events(events), len(events)


def main():
    if len(sys.argv) != 2 or sys.argv[1].startswith("-"):
        print(__doc__.strip().splitlines()[-1].strip(), file=sys.stderr)
        return 2
    path = sys.argv[1]
    errors, num_events = check_file(path)
    for e in errors:
        print(f"FAIL  {e}")
    if errors:
        print(f"{path}: {len(errors)} violations in {num_events} events")
        return 1
    print(f"{path}: ok ({num_events} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
