#!/usr/bin/env python3
"""Self-test for tools/bench_diff.py (ISSUE 5), runnable standalone
(`python3 tools/test_bench_diff.py`) or under pytest. Covers the three
tolerance classes, gated-key disappearance, --require failure paths,
and the maintenance modes (--update-baselines, history append/print).
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_diff  # noqa: E402


def run_main(argv):
    """bench_diff.main() under a fake argv; returns (exit_code, stdout)."""
    out = io.StringIO()
    old_argv = sys.argv
    sys.argv = ["bench_diff.py"] + argv
    try:
        with contextlib.redirect_stdout(out):
            try:
                code = bench_diff.main()
            except SystemExit as e:  # argparse error paths
                code = e.code
    finally:
        sys.argv = old_argv
    return code, out.getvalue()


BASE = {
    "bench": "demo",
    "rows": [{
        "scenario": "grid", "mode": "a",
        "mean_fidelity": 0.80, "completed": 100, "delivered": 400,
        "wall_seconds": 2.0, "events_per_sec": 1e6, "note_metric": 7.0,
        "requests_per_sec": 5e4,
        "p99_request_latency_s": 0.30,
        "obs": {"engine": {"events_processed": 12345}},
    }],
    "demo_gain": 0.5,
    "p50_admission_wait_s": 0.10,
}


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def path(self, name, doc):
        p = os.path.join(self.dir.name, name)
        with open(p, "w") as f:
            json.dump(doc, f)
        return p

    def compare(self, current, extra=()):
        base = self.path("base.json", BASE)
        cur = self.path("cur.json", current)
        return run_main([base, cur, *extra])

    def current(self, **overrides):
        doc = json.loads(json.dumps(BASE))
        doc["rows"][0].update(overrides)
        return doc

    # --- tolerance classes -------------------------------------------

    def test_identical_run_passes(self):
        code, out = self.compare(self.current())
        self.assertEqual(code, 0)
        self.assertIn("checks passed", out)

    def test_quality_drop_beyond_tolerance_fails(self):
        code, out = self.compare(self.current(mean_fidelity=0.70))
        self.assertEqual(code, 1)
        self.assertIn("mean_fidelity", out)

    def test_quality_drop_within_tolerance_passes(self):
        code, _ = self.compare(self.current(mean_fidelity=0.76))
        self.assertEqual(code, 0)

    def test_count_drop_beyond_tolerance_fails(self):
        code, out = self.compare(self.current(completed=80))
        self.assertEqual(code, 1)
        self.assertIn("completed", out)

    def test_count_gain_passes(self):
        code, _ = self.compare(self.current(completed=120, delivered=500))
        self.assertEqual(code, 0)

    def test_perf_blowup_fails(self):
        code, out = self.compare(self.current(wall_seconds=17.0))
        self.assertEqual(code, 1)
        self.assertIn("wall_seconds", out)

    def test_event_rate_collapse_fails(self):
        code, out = self.compare(self.current(events_per_sec=1e5))
        self.assertEqual(code, 1)
        self.assertIn("events_per_sec", out)

    def test_request_rate_collapse_fails(self):
        code, out = self.compare(self.current(requests_per_sec=5e3))
        self.assertEqual(code, 1)
        self.assertIn("requests_per_sec", out)

    def test_informational_key_change_is_noted_not_gated(self):
        code, _ = self.compare(self.current(note_metric=0.0))
        self.assertEqual(code, 0)

    # --- latency percentile class (ISSUE 6) --------------------------

    def test_latency_percentile_regression_fails(self):
        code, out = self.compare(self.current(p99_request_latency_s=0.40))
        self.assertEqual(code, 1)
        self.assertIn("p99_request_latency_s", out)

    def test_latency_percentile_within_tolerance_passes(self):
        code, _ = self.compare(self.current(p99_request_latency_s=0.34))
        self.assertEqual(code, 0)

    def test_latency_percentile_improvement_passes(self):
        code, _ = self.compare(self.current(p99_request_latency_s=0.05))
        self.assertEqual(code, 0)

    def test_top_level_latency_percentile_gated(self):
        doc = self.current()
        doc["p50_admission_wait_s"] = 0.50
        code, out = self.compare(doc)
        self.assertEqual(code, 1)
        self.assertIn("[top-level] p50_admission_wait_s", out)

    def test_missing_top_level_latency_percentile_fails(self):
        doc = self.current()
        del doc["p50_admission_wait_s"]
        code, out = self.compare(doc)
        self.assertEqual(code, 1)
        self.assertIn("gated metric missing", out)

    def test_nested_obs_dict_is_ignored(self):
        doc = self.current()
        doc["rows"][0]["obs"] = {"engine": {"events_processed": 999}}
        code, _ = self.compare(doc)
        self.assertEqual(code, 0)

    # --- missing keys / rows -----------------------------------------

    def test_missing_gated_key_fails(self):
        doc = self.current()
        del doc["rows"][0]["mean_fidelity"]
        code, out = self.compare(doc)
        self.assertEqual(code, 1)
        self.assertIn("gated metric missing", out)

    def test_missing_informational_key_passes(self):
        doc = self.current()
        del doc["rows"][0]["note_metric"]
        code, out = self.compare(doc)
        self.assertEqual(code, 0)
        self.assertIn("not in current run", out)

    def test_missing_baseline_row_fails(self):
        doc = self.current(mode="renamed")
        code, out = self.compare(doc)
        self.assertEqual(code, 1)
        self.assertIn("baseline row missing", out)

    # --- --require ----------------------------------------------------

    def test_require_pass_and_fail(self):
        code, _ = self.compare(self.current(),
                               extra=["--require", "demo_gain>0.4"])
        self.assertEqual(code, 0)
        code, out = self.compare(self.current(),
                                 extra=["--require", "demo_gain>0.6"])
        self.assertEqual(code, 1)
        self.assertIn("require demo_gain > 0.6", out)

    def test_require_exact_equality(self):
        # ISSUE 7: the stall-watchdog gate wants a precise counter value
        # ("stalled_intervals==0"), not just a bound.
        doc = self.current()
        doc["stalled_intervals"] = 0
        code, _ = self.compare(doc,
                               extra=["--require", "stalled_intervals==0"])
        self.assertEqual(code, 0)
        doc["stalled_intervals"] = 2
        code, out = self.compare(doc,
                                 extra=["--require", "stalled_intervals==0"])
        self.assertEqual(code, 1)
        self.assertIn("require stalled_intervals == 0", out)

    def test_require_less_or_equal(self):
        doc = self.current()
        doc["peak_backlog"] = 4
        code, _ = self.compare(doc, extra=["--require", "peak_backlog<=4"])
        self.assertEqual(code, 0)
        code, out = self.compare(doc, extra=["--require", "peak_backlog<=3"])
        self.assertEqual(code, 1)
        self.assertIn("require peak_backlog <= 3", out)

    def test_require_missing_or_non_numeric_scalar_fails(self):
        code, out = self.compare(self.current(),
                                 extra=["--require", "absent_gain>0"])
        self.assertEqual(code, 1)
        self.assertIn("got None", out)
        doc = self.current()
        doc["demo_gain"] = "high"
        code, _ = self.compare(doc, extra=["--require", "demo_gain>0"])
        self.assertEqual(code, 1)

    def test_require_rejects_malformed_spec(self):
        code, _ = self.compare(self.current(), extra=["--require", "nonsense"])
        self.assertEqual(code, 2)  # argparse error

    # --- maintenance modes -------------------------------------------

    def test_update_baselines_rewrites_by_bench_name(self):
        baselines = os.path.join(self.dir.name, "baselines")
        os.makedirs(baselines)
        cur = self.path("fresh.json", self.current(completed=123))
        code, out = run_main(["--update-baselines", cur,
                              "--baselines-dir", baselines])
        self.assertEqual(code, 0)
        target = os.path.join(baselines, "BENCH_demo.json")
        self.assertIn("updated", out)
        with open(target) as f:
            self.assertEqual(json.load(f)["rows"][0]["completed"], 123)

    def test_update_baselines_requires_bench_name(self):
        doc = self.current()
        del doc["bench"]
        cur = self.path("anon.json", doc)
        code, out = run_main(["--update-baselines", cur,
                              "--baselines-dir", self.dir.name])
        self.assertEqual(code, 1)
        self.assertIn("no \"bench\" name", out)

    def test_history_append_and_print_deltas(self):
        hist = os.path.join(self.dir.name, "bench_history.jsonl")
        first = self.path("first.json", self.current())
        doc = self.current()
        doc["demo_gain"] = 0.75
        second = self.path("second.json", doc)
        self.assertEqual(run_main(["--append-history", hist, first])[0], 0)
        self.assertEqual(run_main(["--append-history", hist, second])[0], 0)
        with open(hist) as f:
            lines = [json.loads(l) for l in f if l.strip()]
        self.assertEqual(len(lines), 2)
        self.assertEqual(lines[0]["bench"], "demo")
        self.assertEqual(lines[1]["scalars"]["demo_gain"], 0.75)

        code, out = run_main(["--history", hist, "--last", "2"])
        self.assertEqual(code, 0)
        self.assertIn("demo (2 runs", out)
        self.assertIn("(+0.25)", out)  # delta vs the previous run

    def test_append_history_is_append_only_even_with_two_files(self):
        # Regression: two positional files used to flip silently into
        # compare mode; --append-history must always mean append.
        hist = os.path.join(self.dir.name, "bench_history.jsonl")
        a = self.path("a.json", self.current())
        doc = self.current()
        doc["bench"] = "other"
        b = self.path("b.json", doc)
        code, out = run_main(["--append-history", hist, a, b])
        self.assertEqual(code, 0)
        self.assertNotIn("checks passed", out)  # no compare ran
        with open(hist) as f:
            lines = [json.loads(l) for l in f if l.strip()]
        self.assertEqual([l["bench"] for l in lines], ["demo", "other"])

    def test_append_history_skips_missing_files(self):
        # A crashed bench must not lose the surviving benches' data
        # points (CI appends after gate failures on purpose).
        hist = os.path.join(self.dir.name, "bench_history.jsonl")
        a = self.path("a.json", self.current())
        missing = os.path.join(self.dir.name, "never_written.json")
        code, out = run_main(["--append-history", hist, missing, a])
        self.assertEqual(code, 0)
        self.assertIn("skipping", out)
        with open(hist) as f:
            lines = [json.loads(l) for l in f if l.strip()]
        self.assertEqual(len(lines), 1)
        self.assertEqual(lines[0]["bench"], "demo")

    def test_compare_needs_exactly_two_files(self):
        code, _ = run_main([self.path("only.json", self.current())])
        self.assertEqual(code, 2)


if __name__ == "__main__":
    unittest.main(verbosity=2)
