#!/usr/bin/env python3
"""Structure + consistency validator for obs::NetState JSONL streams
(ISSUE 8). Run in CI against the per-edge network-state telemetry
produced by `bench_grid_routing --netstate` / `bench_admission
--netstate` so a refactor of the accounting hooks cannot silently
break the invariants the sampler promises.

Records are grouped by their optional "run" label (several runs may
share one file); each group must be one complete NetState stream.
Checks per group, in order:

  schema    every line is a JSON object; interval records carry the
            numeric fields i/t/dt/leases/blocked/attempts/deliveries/
            util_mean/util_max plus a "hot" edge list; exactly one
            "final": true record exists, is the group's last line, and
            carries the per-edge table, totals, and sketch sections.
  ranges    every utilization — interval util_mean/util_max, hot-list
            entries, final per-edge table, and the run-wide
            max_utilization — lies in [0, 1]; util_mean <= util_max;
            hot lists are sorted by utilization, descending.
  timeline  interval indices are contiguous from 0; t is strictly
            increasing with dt > 0 and t[k] - dt[k] == t[k-1] (records
            tile sim time, no gap or overlap); the final record's t
            equals the last interval's and its "intervals" equals the
            record count.
  totals    per-interval delta sums reconcile with the final record:
            leases == totals.leases == per-edge sum, attempts ==
            totals.attempt_pairs, blocked and (per-hop) deliveries
            match the per-edge table, per-node swaps sum to
            totals.swaps, and per-hop deliveries cover at least
            totals.deliveries end-to-end pairs.
  sketch    "exact": true implies zero evictions; top counts are
            non-increasing with 0 <= error <= count.
  collector when the final record carries a "collector" section, its
            request-level counters equal the totals' (pairs delivered,
            requests blocked, admission waits; wait seconds within
            float tolerance).

Exit 0 and a one-line summary on success; exit 1 with every violation
on failure. Usage:

    netstate_check.py FILE.jsonl
"""

import json
import sys

REQUIRED_NUMBERS = ("i", "t", "dt", "leases", "blocked", "attempts",
                    "deliveries", "util_mean", "util_max")
HOT_NUMBERS = ("edge", "util", "leases", "blocked", "attempts",
               "deliveries")
EDGE_NUMBERS = ("edge", "util", "busy_s", "leases", "blocked", "attempts",
                "deliveries", "admission_waits", "admission_wait_s",
                "fidelity_mean")
TOTAL_NUMBERS = ("leases", "attempt_pairs", "swaps", "blocked_requests",
                 "deliveries", "admission_waits", "admission_wait_s")

# Utilizations are exact by construction up to the double round-trip of
# the cumulative busy-seconds subtraction; allow that much slack.
UTIL_EPS = 1e-9
WAIT_EPS = 1e-6


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_group(run, records):
    """Validate one run label's record list ((line_no, record) pairs);
    returns a list of violation strings (empty = valid)."""
    errors = []
    label = f"run {run!r}" if run else "unlabelled run"

    def err(line_no, message):
        errors.append(f"{label}, line {line_no}: {message}")

    def check_util(line_no, what, v):
        if not -UTIL_EPS <= v <= 1.0 + UTIL_EPS:
            err(line_no, f"{what} {v} outside [0, 1]")

    # --- schema ------------------------------------------------------
    intervals = []
    finals = []
    for line_no, rec in records:
        if rec.get("final") is True:
            for key in ("t", "intervals", "max_utilization"):
                if not is_number(rec.get(key)):
                    err(line_no, f"final record missing numeric {key!r}")
            for key in ("edges", "nodes", "hot_edges"):
                if not isinstance(rec.get(key), list):
                    err(line_no, f"final record missing list {key!r}")
            for key in ("sketch", "totals"):
                if not isinstance(rec.get(key), dict):
                    err(line_no, f"final record missing object {key!r}")
            if isinstance(rec.get("totals"), dict):
                for key in TOTAL_NUMBERS:
                    if not is_number(rec["totals"].get(key)):
                        err(line_no, f"totals missing numeric {key!r}")
            for e in rec.get("edges") or []:
                for key in EDGE_NUMBERS:
                    if not is_number(e.get(key)):
                        err(line_no, f"edge entry missing numeric {key!r}")
                        break
            finals.append((line_no, rec))
            continue
        for key in REQUIRED_NUMBERS:
            if not is_number(rec.get(key)):
                err(line_no, f"interval record missing numeric {key!r}")
        if not isinstance(rec.get("hot"), list):
            err(line_no, "interval record missing \"hot\" list")
        else:
            for h in rec["hot"]:
                for key in HOT_NUMBERS:
                    if not is_number(h.get(key)):
                        err(line_no, f"hot entry missing numeric {key!r}")
                        break
        intervals.append((line_no, rec))
    if len(finals) != 1:
        errors.append(f"{label}: expected exactly one \"final\" record, "
                      f"got {len(finals)}")
    elif records[-1][1] is not finals[0][1]:
        err(finals[0][0], "final record is not the group's last line")
    if errors:
        return errors  # the arithmetic below assumes schema holds

    # --- ranges ------------------------------------------------------
    for line_no, rec in intervals:
        check_util(line_no, "util_mean", rec["util_mean"])
        check_util(line_no, "util_max", rec["util_max"])
        if rec["util_mean"] > rec["util_max"] + UTIL_EPS:
            err(line_no, f"util_mean {rec['util_mean']} exceeds util_max "
                         f"{rec['util_max']}")
        prev_util = None
        for h in rec["hot"]:
            check_util(line_no, f"hot edge {h['edge']} util", h["util"])
            if prev_util is not None and h["util"] > prev_util + UTIL_EPS:
                err(line_no, "hot list not sorted by util descending")
                break
            prev_util = h["util"]

    final_line, final = finals[0]
    for e in final["edges"]:
        check_util(final_line, f"final edge {e['edge']} util", e["util"])
    check_util(final_line, "max_utilization", final["max_utilization"])
    peak = max((rec["util_max"] for _, rec in intervals), default=0.0)
    if final["max_utilization"] + UTIL_EPS < peak:
        err(final_line, f"max_utilization {final['max_utilization']} "
                        f"below interval peak {peak}")

    # --- timeline ----------------------------------------------------
    prev_t = None
    for k, (line_no, rec) in enumerate(intervals):
        if rec["i"] != k:
            err(line_no, f"interval index {rec['i']} (expected {k})")
        if rec["dt"] <= 0:
            err(line_no, f"non-positive dt {rec['dt']}")
        if prev_t is not None:
            if rec["t"] <= prev_t:
                err(line_no, f"t {rec['t']} not increasing (previous "
                             f"{prev_t})")
            if rec["t"] - rec["dt"] != prev_t:
                err(line_no, f"t - dt = {rec['t'] - rec['dt']} leaves a "
                             f"gap/overlap against previous t {prev_t}")
        prev_t = rec["t"]
    if intervals and final["t"] != intervals[-1][1]["t"]:
        err(final_line, f"final t {final['t']} != last interval t "
                        f"{intervals[-1][1]['t']}")
    if final["intervals"] != len(intervals):
        err(final_line, f"final intervals {final['intervals']} != record "
                        f"count {len(intervals)}")

    # --- totals vs the final summary ---------------------------------
    totals = final["totals"]
    edges = final["edges"]
    for key, total_key in (("leases", "leases"),
                           ("attempts", "attempt_pairs")):
        delta_sum = sum(rec[key] for _, rec in intervals)
        if delta_sum != totals[total_key]:
            err(final_line, f"per-interval {key} sum {delta_sum} != "
                            f"totals.{total_key} {totals[total_key]}")
    for key in ("leases", "blocked", "attempts", "deliveries"):
        delta_sum = sum(rec[key] for _, rec in intervals)
        edge_sum = sum(e[key] for e in edges)
        if delta_sum != edge_sum:
            err(final_line, f"per-interval {key} sum {delta_sum} != "
                            f"per-edge sum {edge_sum}")
    node_swaps = sum(n["swaps"] for n in final["nodes"])
    if node_swaps != totals["swaps"]:
        err(final_line, f"per-node swaps sum {node_swaps} != totals.swaps "
                        f"{totals['swaps']}")
    # Per-hop deliveries cover every end-to-end pair at least once.
    hop_deliveries = sum(e["deliveries"] for e in edges)
    if hop_deliveries < totals["deliveries"]:
        err(final_line, f"per-hop deliveries {hop_deliveries} < delivered "
                        f"pairs {totals['deliveries']}")
    edge_waits = sum(e["admission_waits"] for e in edges)
    if edge_waits < totals["admission_waits"]:
        err(final_line, f"per-edge admission_waits {edge_waits} < "
                        f"totals.admission_waits "
                        f"{totals['admission_waits']}")

    # --- sketch ------------------------------------------------------
    sketch = final["sketch"]
    if sketch.get("exact") is True and sketch.get("evictions", 0) != 0:
        err(final_line, f"sketch claims exact with "
                        f"{sketch['evictions']} evictions")
    prev_count = None
    for h in final["hot_edges"]:
        if not (0 <= h.get("error", 0) <= h.get("count", 0)):
            err(final_line, f"hot edge {h.get('edge')} error "
                            f"{h.get('error')} outside [0, count]")
        if prev_count is not None and h["count"] > prev_count:
            err(final_line, "hot_edges counts not non-increasing")
            break
        prev_count = h["count"]

    # --- collector reconciliation ------------------------------------
    coll = final.get("collector")
    if isinstance(coll, dict):
        for total_key, coll_key in (
                ("deliveries", "pairs_delivered"),
                ("blocked_requests", "requests_blocked"),
                ("admission_waits", "admission_waits")):
            if totals[total_key] != coll.get(coll_key):
                err(final_line, f"totals.{total_key} {totals[total_key]} "
                                f"!= collector.{coll_key} "
                                f"{coll.get(coll_key)}")
        dw = abs(totals["admission_wait_s"]
                 - coll.get("admission_wait_s", 0.0))
        if dw > WAIT_EPS * max(1.0, abs(totals["admission_wait_s"])):
            err(final_line, f"totals.admission_wait_s "
                            f"{totals['admission_wait_s']} != "
                            f"collector.admission_wait_s "
                            f"{coll.get('admission_wait_s')}")
    return errors


def check_file(path):
    """Returns (errors, num_records)."""
    errors = []
    groups = {}  # run label -> [(line_no, record)], insertion-ordered
    num_records = 0
    try:
        with open(path) as f:
            for line_no, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError as e:
                    errors.append(f"line {line_no}: not JSON: {e}")
                    continue
                if not isinstance(rec, dict):
                    errors.append(f"line {line_no}: not a JSON object")
                    continue
                num_records += 1
                groups.setdefault(rec.get("run"), []).append((line_no, rec))
    except OSError as e:
        return [f"cannot read {path}: {e}"], 0
    if not errors and not groups:
        errors.append("no records")
    for run, records in groups.items():
        errors.extend(check_group(run, records))
    return errors, num_records


def main():
    if len(sys.argv) != 2 or sys.argv[1].startswith("-"):
        print(__doc__.strip().splitlines()[-1].strip(), file=sys.stderr)
        return 2
    path = sys.argv[1]
    errors, num_records = check_file(path)
    for e in errors:
        print(f"FAIL  {e}")
    if errors:
        print(f"{path}: {len(errors)} violations in {num_records} records")
        return 1
    print(f"{path}: ok ({num_records} records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
