#!/usr/bin/env python3
"""Offline Markdown run-report renderer (ISSUE 8).

Combines the machine-readable artifacts a bench run leaves behind —
the `--json` results file (whose rows embed obs::Snapshot sections,
including the latency phase decomposition), the `--monitor` interval
telemetry, and the `--netstate` per-edge network-state stream — into
one human-readable Markdown report: a summary table per row, the top-k
hot edges with utilization/contention, a stall analysis, and the
phase-decomposition percentiles.

The C++ benches already render an online report via `--report`
(obs::render_run_report); this tool is the offline companion for
artifacts collected earlier (e.g. downloaded from CI), and renders
from the JSON alone — no simulator state needed.

Usage:

    report.py BENCH.json [--monitor FILE.jsonl] [--netstate FILE.jsonl]
              [--top-k N] [-o report.md]
"""

import argparse
import json
import sys


def load_jsonl_groups(path):
    """JSONL records grouped by their optional "run" label, insertion
    ordered. Returns {run_label: [record, ...]}."""
    groups = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            groups.setdefault(rec.get("run"), []).append(rec)
    return groups


def fmt(v, digits=4):
    if v is None:
        return "-"
    if isinstance(v, bool):
        return str(v).lower()
    if isinstance(v, float):
        return f"{v:.{digits}f}"
    return str(v)


def table(out, headers, rows):
    out.append("| " + " | ".join(headers) + " |")
    out.append("|" + "---|" * len(headers))
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    out.append("")


def row_label(row):
    parts = [row.get("scenario", "?")]
    for key in ("mode", "cost", "topology"):
        if row.get(key):
            parts.append(str(row[key]))
    return "/".join(parts[:2]) + (f" ({', '.join(parts[2:])})"
                                  if parts[2:] else "")


def render_summary(out, bench):
    rows = bench.get("rows", [])
    out.append("## Summary")
    out.append("")
    headers = ["run", "submitted", "completed", "delivered", "blocked",
               "fidelity", "p99 latency (s)", "max util", "sim (s)"]
    body = []
    for r in rows:
        body.append([
            row_label(r), fmt(r.get("submitted")), fmt(r.get("completed")),
            fmt(r.get("delivered")), fmt(r.get("blocked")),
            fmt(r.get("mean_fidelity")),
            fmt(r.get("p99_request_latency_s"), 6),
            fmt(r.get("max_utilization")), fmt(r.get("sim_seconds"), 3),
        ])
    table(out, headers, body)
    scalars = [(k, v) for k, v in bench.items()
               if k not in ("rows", "bench") and not isinstance(v, list)]
    if scalars:
        out.append("Top-level scalars: "
                   + ", ".join(f"`{k}` = {fmt(v, 6)}" for k, v in scalars)
                   + ".")
        out.append("")


def render_phases(out, bench):
    printed_header = False
    for r in bench.get("rows", []):
        phases = (r.get("obs") or {}).get("phases")
        if not isinstance(phases, dict):
            continue
        if not printed_header:
            out.append("## Latency phase decomposition")
            out.append("")
            printed_header = True
        out.append(f"### {row_label(r)}")
        out.append("")
        headers = ["phase", "count", "mean", "p50", "p90", "p99", "max"]
        body = []
        for name, h in phases.items():
            if name == "slowest" or not isinstance(h, dict):
                continue
            body.append([name, fmt(h.get("count")), fmt(h.get("mean"), 6),
                         fmt(h.get("p50"), 6), fmt(h.get("p90"), 6),
                         fmt(h.get("p99"), 6), fmt(h.get("max"), 6)])
        table(out, headers, body)
        slowest = phases.get("slowest") or []
        if slowest:
            phase_names = [k for k in slowest[0]
                           if k not in ("origin", "id", "total_s")]
            headers = ["origin", "id", "total_s"] + phase_names
            body = [[fmt(s.get("origin")), fmt(s.get("id")),
                     fmt(s.get("total_s"), 6)]
                    + [fmt(s.get(p), 6) for p in phase_names]
                    for s in slowest]
            out.append("Slowest requests:")
            out.append("")
            table(out, headers, body)


def render_netstate(out, groups, top_k):
    out.append("## Hot edges (per-edge network state)")
    out.append("")
    for run, records in groups.items():
        final = next((r for r in records if r.get("final") is True), None)
        if final is None:
            continue
        out.append(f"### {run or 'unlabelled run'}")
        out.append("")
        edges = sorted(final.get("edges", []),
                       key=lambda e: (-e.get("util", 0.0), e.get("edge")))
        headers = ["edge", "link", "util", "leases", "blocked", "attempts",
                   "deliveries", "wait_s", "fidelity"]
        body = []
        for e in edges[:top_k]:
            if e.get("util", 0.0) <= 0.0 and not e.get("leases"):
                continue
            link = (f"{e['a']}-{e['b']}"
                    if "a" in e and "b" in e else "-")
            body.append([e.get("edge"), link, fmt(e.get("util")),
                         fmt(e.get("leases")), fmt(e.get("blocked")),
                         fmt(e.get("attempts")), fmt(e.get("deliveries")),
                         fmt(e.get("admission_wait_s")),
                         fmt(e.get("fidelity_mean"))])
        table(out, headers, body)
        totals = final.get("totals", {})
        sketch = final.get("sketch", {})
        out.append(f"Totals: {fmt(totals.get('leases'))} lease "
                   f"placements, {fmt(totals.get('attempt_pairs'))} "
                   f"attempt pairs, {fmt(totals.get('swaps'))} swaps, "
                   f"{fmt(totals.get('deliveries'))} pairs delivered, "
                   f"{fmt(totals.get('blocked_requests'))} requests "
                   f"blocked; sketch "
                   f"{'exact' if sketch.get('exact') else 'approximate'} "
                   f"({fmt(sketch.get('evictions'))} evictions); max "
                   f"utilization "
                   f"{fmt(final.get('max_utilization'))}.")
        out.append("")


def render_stalls(out, groups):
    out.append("## Stall analysis (interval telemetry)")
    out.append("")
    headers = ["run", "intervals", "stalled", "peak backlog",
               "final progress"]
    body = []
    for run, records in groups.items():
        final = next((r for r in records if r.get("final") is True), None)
        intervals = [r for r in records if r.get("final") is not True]
        stalled = sum(1 for r in intervals if r.get("stalled"))
        peak = max((r.get("backlog", 0) for r in intervals), default=0)
        progress = next((r["progress"] for r in reversed(intervals)
                         if "progress" in r), None)
        body.append([run or "unlabelled",
                     fmt(final.get("intervals") if final
                         else len(intervals)),
                     fmt(stalled), fmt(peak), fmt(progress, 3)])
    table(out, headers, body)


def main():
    ap = argparse.ArgumentParser(
        description=__doc__.split("\n")[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("bench_json", help="bench --json results file")
    ap.add_argument("--monitor", help="bench --monitor JSONL stream")
    ap.add_argument("--netstate", help="bench --netstate JSONL stream")
    ap.add_argument("--top-k", type=int, default=8,
                    help="hot edges per run (default 8)")
    ap.add_argument("-o", "--output",
                    help="write the report here (default stdout)")
    args = ap.parse_args()

    try:
        with open(args.bench_json) as f:
            bench = json.load(f)
    except (OSError, ValueError) as e:
        print(f"cannot read {args.bench_json}: {e}", file=sys.stderr)
        return 1

    out = [f"# Run report: {bench.get('bench', args.bench_json)}", ""]
    render_summary(out, bench)
    render_phases(out, bench)
    if args.netstate:
        try:
            render_netstate(out, load_jsonl_groups(args.netstate),
                            args.top_k)
        except (OSError, ValueError) as e:
            print(f"cannot read {args.netstate}: {e}", file=sys.stderr)
            return 1
    if args.monitor:
        try:
            render_stalls(out, load_jsonl_groups(args.monitor))
        except (OSError, ValueError) as e:
            print(f"cannot read {args.monitor}: {e}", file=sys.stderr)
            return 1

    text = "\n".join(out).rstrip() + "\n"
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
