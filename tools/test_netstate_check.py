#!/usr/bin/env python3
"""Self-test for tools/netstate_check.py (ISSUE 8), runnable standalone
(`python3 tools/test_netstate_check.py`) or under pytest. Covers the
schema, range, timeline, totals, sketch, and collector checks plus
run-label grouping, each with a passing and a violating stream.
"""

import copy
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import netstate_check  # noqa: E402


def hot(edge, util, leases=0, blocked=0, attempts=0, deliveries=0):
    return {"edge": edge, "util": util, "leases": leases,
            "blocked": blocked, "attempts": attempts,
            "deliveries": deliveries}


def interval(i, t, dt, leases=0, blocked=0, attempts=0, deliveries=0,
             util_mean=0.0, util_max=0.0, hot_list=(), run=None):
    rec = {"i": i, "t": t, "dt": dt, "leases": leases, "blocked": blocked,
           "attempts": attempts, "deliveries": deliveries,
           "util_mean": util_mean, "util_max": util_max,
           "hot": list(hot_list)}
    if run is not None:
        rec["run"] = run
    return rec


def edge_entry(edge, util=0.0, busy_s=0.0, leases=0, blocked=0, attempts=0,
               deliveries=0, admission_waits=0, admission_wait_s=0.0,
               fidelity_mean=0.0):
    return {"edge": edge, "util": util, "busy_s": busy_s, "leases": leases,
            "blocked": blocked, "attempts": attempts,
            "deliveries": deliveries, "admission_waits": admission_waits,
            "admission_wait_s": admission_wait_s,
            "fidelity_mean": fidelity_mean}


def valid_stream(run=None):
    """Two edges, two intervals: edge 0 carries one 2-pair request end
    to end (1 lease, 2 attempts, 2 per-hop deliveries = 2 pairs over a
    1-hop route), edge 1 sees one blocked-arrival footprint."""
    records = [
        interval(0, 100, 100, leases=1, attempts=2, util_mean=0.25,
                 util_max=0.5, hot_list=[hot(0, 0.5, leases=1, attempts=2)],
                 run=run),
        interval(1, 200, 100, blocked=1, deliveries=2, util_mean=0.5,
                 util_max=1.0,
                 hot_list=[hot(0, 1.0, deliveries=2), hot(1, 0.0, blocked=1)],
                 run=run),
    ]
    final = {
        "final": True, "t": 200, "intervals": 2,
        "edges": [
            edge_entry(0, util=0.75, busy_s=0.15, leases=1, attempts=2,
                       deliveries=2, admission_waits=1,
                       admission_wait_s=0.01, fidelity_mean=0.8),
            edge_entry(1, blocked=1),
        ],
        "nodes": [{"node": 0, "swaps": 3, "terminals": 2}],
        "hot_edges": [{"edge": 0, "count": 5, "error": 0},
                      {"edge": 1, "count": 1, "error": 0}],
        "sketch": {"capacity": 64, "total_weight": 6, "evictions": 0,
                   "exact": True},
        "totals": {"leases": 1, "attempt_pairs": 2, "swaps": 3,
                   "blocked_requests": 1, "deliveries": 2,
                   "admission_waits": 1, "admission_wait_s": 0.01},
        "collector": {"pairs_delivered": 2, "requests_blocked": 1,
                      "admission_waits": 1, "admission_wait_s": 0.01},
        "max_utilization": 1.0,
    }
    if run is not None:
        final["run"] = run
    return records + [final]


class NetstateCheckTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def check(self, records, raw_lines=()):
        path = os.path.join(self.dir.name, "netstate.jsonl")
        with open(path, "w") as f:
            for rec in records:
                f.write(json.dumps(rec) + "\n")
            for line in raw_lines:
                f.write(line + "\n")
        return netstate_check.check_file(path)

    def assert_fails(self, records, fragment, raw_lines=()):
        errors, _ = self.check(records, raw_lines)
        self.assertTrue(errors, "expected violations, got none")
        self.assertTrue(any(fragment in e for e in errors),
                        f"{fragment!r} not in {errors}")

    # --- valid streams -----------------------------------------------

    def test_valid_single_group(self):
        errors, count = self.check(valid_stream())
        self.assertEqual(errors, [])
        self.assertEqual(count, 3)

    def test_valid_multiple_run_labels_validate_independently(self):
        errors, count = self.check(valid_stream("grid")
                                   + valid_stream("dragonfly"))
        self.assertEqual(errors, [])
        self.assertEqual(count, 6)

    # --- schema ------------------------------------------------------

    def test_non_json_line_fails(self):
        self.assert_fails(valid_stream(), "not JSON", raw_lines=["{oops"])

    def test_missing_interval_field_fails(self):
        records = copy.deepcopy(valid_stream())
        del records[1]["util_max"]
        self.assert_fails(records, "missing numeric 'util_max'")

    def test_missing_hot_list_fails(self):
        records = copy.deepcopy(valid_stream())
        del records[0]["hot"]
        self.assert_fails(records, "missing \"hot\" list")

    def test_missing_final_record_fails(self):
        self.assert_fails(valid_stream()[:-1], "exactly one \"final\"")

    def test_final_not_last_fails(self):
        records = copy.deepcopy(valid_stream())
        records[1], records[2] = records[2], records[1]
        self.assert_fails(records, "not the group's last line")

    def test_missing_totals_field_fails(self):
        records = copy.deepcopy(valid_stream())
        del records[-1]["totals"]["swaps"]
        self.assert_fails(records, "totals missing numeric 'swaps'")

    def test_empty_file_fails(self):
        self.assert_fails([], "no records")

    # --- ranges ------------------------------------------------------

    def test_util_above_one_fails(self):
        records = copy.deepcopy(valid_stream())
        records[1]["util_max"] = 1.5
        records[-1]["max_utilization"] = 1.5
        self.assert_fails(records, "util_max 1.5 outside [0, 1]")

    def test_negative_edge_util_fails(self):
        records = copy.deepcopy(valid_stream())
        records[-1]["edges"][0]["util"] = -0.2
        self.assert_fails(records, "outside [0, 1]")

    def test_util_mean_above_max_fails(self):
        records = copy.deepcopy(valid_stream())
        records[0]["util_mean"] = 0.9  # util_max stays 0.5
        self.assert_fails(records, "exceeds util_max")

    def test_unsorted_hot_list_fails(self):
        records = copy.deepcopy(valid_stream())
        records[1]["hot"].reverse()
        self.assert_fails(records, "not sorted by util")

    def test_max_utilization_below_interval_peak_fails(self):
        records = copy.deepcopy(valid_stream())
        records[-1]["max_utilization"] = 0.25
        self.assert_fails(records, "below interval peak")

    # --- timeline ----------------------------------------------------

    def test_non_contiguous_index_fails(self):
        records = copy.deepcopy(valid_stream())
        records[1]["i"] = 4
        self.assert_fails(records, "interval index 4 (expected 1)")

    def test_gap_between_records_fails(self):
        records = copy.deepcopy(valid_stream())
        records[1]["t"] = 400  # dt 100 leaves (100, 300) uncovered
        records[-1]["t"] = 400
        self.assert_fails(records, "gap/overlap")

    def test_final_t_mismatch_fails(self):
        records = copy.deepcopy(valid_stream())
        records[-1]["t"] = 300
        self.assert_fails(records, "final t 300 != last interval t 200")

    def test_interval_count_mismatch_fails(self):
        records = copy.deepcopy(valid_stream())
        records[-1]["intervals"] = 5
        self.assert_fails(records, "record count 2")

    # --- totals ------------------------------------------------------

    def test_lease_delta_sum_mismatch_fails(self):
        records = copy.deepcopy(valid_stream())
        records[-1]["totals"]["leases"] = 9
        self.assert_fails(records, "totals.leases 9")

    def test_attempt_delta_sum_mismatch_fails(self):
        records = copy.deepcopy(valid_stream())
        records[0]["attempts"] = 5
        self.assert_fails(records, "totals.attempt_pairs")

    def test_per_edge_blocked_mismatch_fails(self):
        records = copy.deepcopy(valid_stream())
        records[-1]["edges"][1]["blocked"] = 3
        self.assert_fails(records, "per-edge sum 3")

    def test_node_swaps_mismatch_fails(self):
        records = copy.deepcopy(valid_stream())
        records[-1]["nodes"][0]["swaps"] = 7
        self.assert_fails(records, "per-node swaps sum 7")

    def test_hop_deliveries_below_pairs_fails(self):
        records = copy.deepcopy(valid_stream())
        records[-1]["totals"]["deliveries"] = 9
        records[-1]["collector"]["pairs_delivered"] = 9
        self.assert_fails(records, "< delivered pairs 9")

    # --- sketch ------------------------------------------------------

    def test_exact_sketch_with_evictions_fails(self):
        records = copy.deepcopy(valid_stream())
        records[-1]["sketch"]["evictions"] = 2
        self.assert_fails(records, "claims exact with 2 evictions")

    def test_hot_edges_counts_not_sorted_fails(self):
        records = copy.deepcopy(valid_stream())
        records[-1]["hot_edges"].reverse()
        self.assert_fails(records, "not non-increasing")

    def test_error_above_count_fails(self):
        records = copy.deepcopy(valid_stream())
        records[-1]["hot_edges"][0]["error"] = 99
        self.assert_fails(records, "outside [0, count]")

    # --- collector ---------------------------------------------------

    def test_collector_pairs_mismatch_fails(self):
        records = copy.deepcopy(valid_stream())
        records[-1]["collector"]["pairs_delivered"] = 5
        self.assert_fails(records, "collector.pairs_delivered 5")

    def test_collector_wait_seconds_mismatch_fails(self):
        records = copy.deepcopy(valid_stream())
        records[-1]["collector"]["admission_wait_s"] = 0.5
        self.assert_fails(records, "collector.admission_wait_s")

    def test_collector_section_optional(self):
        records = copy.deepcopy(valid_stream())
        del records[-1]["collector"]
        errors, _ = self.check(records)
        self.assertEqual(errors, [])

    def test_violation_names_its_run_label(self):
        records = copy.deepcopy(valid_stream("grid"))
        records[-1]["totals"]["swaps"] = 99
        errors, _ = self.check(records)
        self.assertTrue(any("run 'grid'" in e for e in errors), errors)


if __name__ == "__main__":
    unittest.main(verbosity=2)
