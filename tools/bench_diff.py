#!/usr/bin/env python3
"""Tolerance-based bench-regression gate (ISSUE 4).

Compares a freshly produced BENCH_*.json against its checked-in
baseline (bench/baselines/) and exits non-zero on a regression beyond
tolerance, so CI's bench-smoke job *fails* instead of merely uploading
artifacts.

Rows are matched by their identity keys (whichever of bench / hops /
backend / scenario / topology / cost / mode / reroute_budget both sides
carry). Three classes of values are compared, everything else is
informational:

  quality   keys containing "fidelity" or "completion" (except *_gain):
            deterministic per seed but float-sensitive across
            compilers, so lower-than-baseline beyond --quality-tol
            (absolute) fails.
  counts    completed / delivered / pairs / issued / swaps: lower than
            baseline by more than --count-tol (relative) fails.
  perf      wall_seconds higher, or events_per_sec lower, than baseline
            by more than the --perf-tol factor fails. CI machines vary
            wildly, so this is a catastrophic-regression backstop, not
            a microbenchmark.

Top-level summary scalars (e.g. hetero_fidelity_gain,
adaptive_completion_gain) can be asserted directly:

    --require adaptive_completion_gain>0 --require hetero_fidelity_gain>0.05

Usage:
    bench_diff.py BASELINE.json CURRENT.json [options]
"""

import argparse
import json
import math
import sys

IDENTITY_KEYS = ("bench", "hops", "backend", "scenario", "topology",
                 "cost", "mode", "reroute_budget")
COUNT_KEYS = ("completed", "delivered", "pairs_delivered", "issued",
              "swaps")
PERF_HIGHER_IS_WORSE = ("wall_seconds",)
PERF_LOWER_IS_WORSE = ("events_per_sec",)


def is_quality_key(key):
    if key.endswith("_gain"):
        return False
    return "fidelity" in key or "completion" in key


def row_identity(row):
    return tuple((k, row[k]) for k in IDENTITY_KEYS if k in row)


def fmt_identity(identity):
    return " ".join(f"{k}={v}" for k, v in identity) or "<unkeyed>"


class Gate:
    def __init__(self, args):
        self.args = args
        self.failures = []
        self.checks = 0

    def check(self, ok, message):
        self.checks += 1
        if not ok:
            self.failures.append(message)
            print(f"FAIL  {message}")
        elif self.args.verbose:
            print(f"ok    {message}")

    def compare_row(self, identity, base, cur):
        where = fmt_identity(identity)
        for key, bval in base.items():
            if not isinstance(bval, (int, float)) or isinstance(bval, bool):
                continue
            gated = (is_quality_key(key) or key in COUNT_KEYS
                     or key in PERF_HIGHER_IS_WORSE
                     or key in PERF_LOWER_IS_WORSE)
            cval = cur.get(key)
            if not isinstance(cval, (int, float)) or isinstance(cval, bool):
                # A gated metric must not vanish quietly — a renamed or
                # dropped key would otherwise pass the gate vacuously.
                if gated:
                    self.check(False,
                               f"[{where}] {key}: gated metric missing "
                               f"from current run (baseline {bval:.6g})")
                else:
                    print(f"note  [{where}] {key}: not in current run")
                continue
            if is_quality_key(key):
                self.check(
                    cval >= bval - self.args.quality_tol,
                    f"[{where}] {key}: {cval:.6g} vs baseline {bval:.6g} "
                    f"(quality tolerance {self.args.quality_tol})")
            elif key in COUNT_KEYS:
                floor = bval * (1.0 - self.args.count_tol)
                self.check(
                    cval >= floor,
                    f"[{where}] {key}: {cval:.6g} vs baseline {bval:.6g} "
                    f"(count tolerance {self.args.count_tol:.0%})")
            elif key in PERF_HIGHER_IS_WORSE:
                self.check(
                    cval <= bval * self.args.perf_tol,
                    f"[{where}] {key}: {cval:.6g} vs baseline {bval:.6g} "
                    f"(x{self.args.perf_tol} budget)")
            elif key in PERF_LOWER_IS_WORSE:
                self.check(
                    cval >= bval / self.args.perf_tol,
                    f"[{where}] {key}: {cval:.6g} vs baseline {bval:.6g} "
                    f"(/{self.args.perf_tol} budget)")


def parse_require(spec):
    for op in (">=", "<=", ">", "<"):
        if op in spec:
            key, value = spec.split(op, 1)
            return key.strip(), op, float(value)
    raise argparse.ArgumentTypeError(
        f"--require needs KEY>VALUE / KEY>=VALUE / KEY<VALUE: {spec!r}")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--quality-tol", type=float, default=0.05,
                        help="absolute slack on fidelity/completion keys "
                             "(default %(default)s)")
    parser.add_argument("--count-tol", type=float, default=0.15,
                        help="relative slack on delivery/throughput counts "
                             "(default %(default)s)")
    parser.add_argument("--perf-tol", type=float, default=8.0,
                        help="multiplicative budget on wall time / event "
                             "rate (default x%(default)s — CI hardware "
                             "varies; this catches blowups, not percent)")
    parser.add_argument("--require", type=parse_require, action="append",
                        default=[], metavar="KEY>VALUE",
                        help="assert a top-level summary scalar of CURRENT")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.current) as f:
        cur = json.load(f)

    gate = Gate(args)
    base_rows = {row_identity(r): r for r in base.get("rows", [])}
    cur_rows = {row_identity(r): r for r in cur.get("rows", [])}
    for identity, base_row in base_rows.items():
        cur_row = cur_rows.get(identity)
        gate.check(cur_row is not None,
                   f"baseline row missing from current run: "
                   f"{fmt_identity(identity)}")
        if cur_row is not None:
            gate.compare_row(identity, base_row, cur_row)
    for identity in cur_rows:
        if identity not in base_rows:
            print(f"note  new row (no baseline): {fmt_identity(identity)}")

    ops = {">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
           "<": lambda a, b: a < b, "<=": lambda a, b: a <= b}
    for key, op, value in args.require:
        actual = cur.get(key)
        gate.check(
            isinstance(actual, (int, float)) and not isinstance(actual, bool)
            and math.isfinite(actual) and ops[op](actual, value),
            f"require {key} {op} {value}: got {actual!r}")

    name = cur.get("bench", args.current)
    if gate.failures:
        print(f"\n{name}: {len(gate.failures)}/{gate.checks} checks failed "
              f"against {args.baseline}")
        return 1
    print(f"{name}: {gate.checks} checks passed against {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
