#!/usr/bin/env python3
"""Tolerance-based bench-regression gate (ISSUE 4, extended in ISSUE 5).

Compares a freshly produced BENCH_*.json against its checked-in
baseline (bench/baselines/) and exits non-zero on a regression beyond
tolerance, so CI's bench-smoke job *fails* instead of merely uploading
artifacts.

Rows are matched by their identity keys (whichever of bench / hops /
backend / scenario / topology / cost / mode / reroute_budget both sides
carry). Three classes of values are compared, everything else is
informational:

  quality   keys containing "fidelity" or "completion" (except *_gain):
            deterministic per seed but float-sensitive across
            compilers, so lower-than-baseline beyond --quality-tol
            (absolute) fails.
  counts    completed / delivered / pairs / issued / swaps: lower than
            baseline by more than --count-tol (relative) fails.
  perf      wall_seconds higher, or events_per_sec lower, than baseline
            by more than the --perf-tol factor fails. CI machines vary
            wildly, so this is a catastrophic-regression backstop, not
            a microbenchmark.
  latency   p50_/p90_/p99_ percentile keys containing "latency" or
            "wait" (ISSUE 6 histogram scalars): deterministic per seed
            like quality keys, so *higher*-than-baseline beyond
            --quality-tol (absolute, in seconds) fails. Gated both in
            rows and among top-level summary scalars.

Top-level summary scalars (e.g. hetero_fidelity_gain,
adaptive_completion_gain) can be asserted directly:

    --require adaptive_completion_gain>0 --require hetero_fidelity_gain>0.05

Comparators: > >= < <= == . The exact ones gate counters that must hit
a precise value, e.g. the ISSUE 7 stall watchdog on a clean run:

    --require "stalled_intervals==0"

Besides the compare mode, three maintenance modes (ISSUE 5):

    # Rewrite bench/baselines/ from freshly produced JSON (previously an
    # undocumented manual copy). The target name comes from each file's
    # "bench" field.
    bench_diff.py --update-baselines CURRENT.json... [--baselines-dir DIR]

    # Append each CURRENT's top-level summary scalars to a JSONL
    # trajectory (one line per run; CI keeps it as a per-branch cache +
    # artifact). Missing files are noted and skipped so one crashed
    # bench cannot lose the others' data points.
    bench_diff.py --append-history FILE CURRENT.json...

    # Print the last N per-bench scalar deltas of such a trajectory.
    bench_diff.py --history FILE [--last N]

Usage:
    bench_diff.py BASELINE.json CURRENT.json [options]
"""

import argparse
import json
import math
import os
import sys
import time

IDENTITY_KEYS = ("bench", "hops", "backend", "scenario", "topology",
                 "cost", "mode", "reroute_budget")
COUNT_KEYS = ("completed", "delivered", "pairs_delivered", "issued",
              "swaps")
PERF_HIGHER_IS_WORSE = ("wall_seconds",)
PERF_LOWER_IS_WORSE = ("events_per_sec", "requests_per_sec")


def is_quality_key(key):
    if key.endswith("_gain"):
        return False
    return "fidelity" in key or "completion" in key


def is_latency_percentile_key(key):
    """Streaming-histogram percentile scalars (p50_request_latency_s,
    p99_admission_wait_s, ...): deterministic per seed, higher is worse."""
    if not key.startswith(("p50_", "p90_", "p99_")):
        return False
    return "latency" in key or "wait" in key


def row_identity(row):
    return tuple((k, row[k]) for k in IDENTITY_KEYS if k in row)


def fmt_identity(identity):
    return " ".join(f"{k}={v}" for k, v in identity) or "<unkeyed>"


class Gate:
    def __init__(self, args):
        self.args = args
        self.failures = []
        self.checks = 0

    def check(self, ok, message):
        self.checks += 1
        if not ok:
            self.failures.append(message)
            print(f"FAIL  {message}")
        elif self.args.verbose:
            print(f"ok    {message}")

    def compare_row(self, identity, base, cur):
        where = fmt_identity(identity)
        for key, bval in base.items():
            if not isinstance(bval, (int, float)) or isinstance(bval, bool):
                continue
            gated = (is_quality_key(key) or is_latency_percentile_key(key)
                     or key in COUNT_KEYS
                     or key in PERF_HIGHER_IS_WORSE
                     or key in PERF_LOWER_IS_WORSE)
            cval = cur.get(key)
            if not isinstance(cval, (int, float)) or isinstance(cval, bool):
                # A gated metric must not vanish quietly — a renamed or
                # dropped key would otherwise pass the gate vacuously.
                if gated:
                    self.check(False,
                               f"[{where}] {key}: gated metric missing "
                               f"from current run (baseline {bval:.6g})")
                else:
                    print(f"note  [{where}] {key}: not in current run")
                continue
            if is_quality_key(key):
                self.check(
                    cval >= bval - self.args.quality_tol,
                    f"[{where}] {key}: {cval:.6g} vs baseline {bval:.6g} "
                    f"(quality tolerance {self.args.quality_tol})")
            elif is_latency_percentile_key(key):
                self.check(
                    cval <= bval + self.args.quality_tol,
                    f"[{where}] {key}: {cval:.6g} vs baseline {bval:.6g} "
                    f"(latency tolerance {self.args.quality_tol})")
            elif key in COUNT_KEYS:
                floor = bval * (1.0 - self.args.count_tol)
                self.check(
                    cval >= floor,
                    f"[{where}] {key}: {cval:.6g} vs baseline {bval:.6g} "
                    f"(count tolerance {self.args.count_tol:.0%})")
            elif key in PERF_HIGHER_IS_WORSE:
                self.check(
                    cval <= bval * self.args.perf_tol,
                    f"[{where}] {key}: {cval:.6g} vs baseline {bval:.6g} "
                    f"(x{self.args.perf_tol} budget)")
            elif key in PERF_LOWER_IS_WORSE:
                self.check(
                    cval >= bval / self.args.perf_tol,
                    f"[{where}] {key}: {cval:.6g} vs baseline {bval:.6g} "
                    f"(/{self.args.perf_tol} budget)")


def parse_require(spec):
    for op in (">=", "<=", "==", ">", "<"):
        if op in spec:
            key, value = spec.split(op, 1)
            return key.strip(), op, float(value)
    raise argparse.ArgumentTypeError(
        f"--require needs KEY>VALUE / KEY>=VALUE / KEY<VALUE / "
        f"KEY==VALUE: {spec!r}")


def summary_scalars(doc):
    """Top-level numeric scalars of a BENCH_*.json (the per-row detail
    stays out of the trajectory — rows are re-derivable from the
    uploaded artifacts, scalars are what re-anchoring needs)."""
    return {k: v for k, v in doc.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)}


def update_baselines(files, baselines_dir):
    """Rewrite bench/baselines/ from freshly produced JSON; the target
    file name comes from each document's "bench" field."""
    for path in files:
        with open(path) as f:
            doc = json.load(f)
        bench = doc.get("bench")
        if not isinstance(bench, str) or not bench:
            print(f"error: {path} has no \"bench\" name; cannot place it "
                  f"in {baselines_dir}")
            return 1
        target = os.path.join(baselines_dir, f"BENCH_{bench}.json")
        with open(path) as src:
            payload = src.read()
        with open(target, "w") as dst:
            dst.write(payload)
        print(f"updated {target} from {path}")
    return 0


def append_history(history_path, files):
    """Append each file's summary scalars as one JSONL trajectory entry.

    A file a crashed bench never wrote is noted and skipped rather than
    aborting: the step runs after gate failures precisely to record
    whatever data points exist."""
    with open(history_path, "a") as out:
        for path in files:
            try:
                with open(path) as f:
                    doc = json.load(f)
            except (OSError, ValueError) as err:
                print(f"note  skipping {path}: {err}")
                continue
            entry = {
                "bench": doc.get("bench", os.path.basename(path)),
                "sha": os.environ.get("GITHUB_SHA"),
                "time": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
                "scalars": summary_scalars(doc),
            }
            out.write(json.dumps(entry, sort_keys=True) + "\n")
            print(f"appended {entry['bench']} scalars to {history_path}")
    return 0


def print_history(history_path, last):
    """Per bench, the last N runs of the trajectory with the delta of
    every scalar against the run before it."""
    entries = []
    with open(history_path) as f:
        for line in f:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    by_bench = {}
    for entry in entries:
        by_bench.setdefault(entry.get("bench", "<unnamed>"), []).append(entry)
    for bench, runs in sorted(by_bench.items()):
        print(f"== {bench} ({len(runs)} runs, showing last "
              f"{min(last, len(runs))})")
        offset = max(0, len(runs) - last)
        for idx in range(offset, len(runs)):
            run = runs[idx]
            prev = runs[idx - 1] if idx > 0 else None
            parts = []
            for key, val in sorted(run.get("scalars", {}).items()):
                if prev is not None and key in prev.get("scalars", {}):
                    delta = val - prev["scalars"][key]
                    parts.append(f"{key}={val:.6g} ({delta:+.6g})")
                else:
                    parts.append(f"{key}={val:.6g}")
            sha = (run.get("sha") or "")[:9]
            stamp = run.get("time", "?")
            print(f"  {stamp} {sha:<9} " + "  ".join(parts))
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="*", metavar="JSON",
                        help="compare mode: BASELINE CURRENT; "
                             "--update-baselines / --append-history: "
                             "one or more fresh CURRENT files")
    parser.add_argument("--quality-tol", type=float, default=0.05,
                        help="absolute slack on fidelity/completion keys "
                             "(default %(default)s)")
    parser.add_argument("--count-tol", type=float, default=0.15,
                        help="relative slack on delivery/throughput counts "
                             "(default %(default)s)")
    parser.add_argument("--perf-tol", type=float, default=8.0,
                        help="multiplicative budget on wall time / event "
                             "rate (default x%(default)s — CI hardware "
                             "varies; this catches blowups, not percent)")
    parser.add_argument("--require", type=parse_require, action="append",
                        default=[], metavar="KEY>VALUE",
                        help="assert a top-level summary scalar of CURRENT")
    parser.add_argument("--update-baselines", action="store_true",
                        help="rewrite the baselines dir from the given "
                             "fresh JSON files instead of comparing")
    parser.add_argument("--baselines-dir", default="bench/baselines",
                        help="target of --update-baselines "
                             "(default %(default)s)")
    parser.add_argument("--append-history", metavar="FILE",
                        help="append the given files' summary scalars to "
                             "a JSONL trajectory instead of comparing")
    parser.add_argument("--history", metavar="FILE",
                        help="print the last --last per-bench scalar "
                             "deltas of a JSONL trajectory")
    parser.add_argument("--last", type=int, default=5,
                        help="entries per bench for --history "
                             "(default %(default)s)")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    if args.update_baselines:
        if not args.files:
            parser.error("--update-baselines needs at least one fresh "
                         "CURRENT.json")
        return update_baselines(args.files, args.baselines_dir)
    if args.history is not None:
        if args.files:
            parser.error("--history takes no positional files")
        return print_history(args.history, args.last)
    if args.append_history is not None:
        if not args.files:
            parser.error("--append-history needs at least one CURRENT.json")
        return append_history(args.append_history, args.files)
    if len(args.files) != 2:
        parser.error("compare mode needs exactly BASELINE.json and "
                     "CURRENT.json")
    args.baseline, args.current = args.files

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.current) as f:
        cur = json.load(f)

    gate = Gate(args)
    base_rows = {row_identity(r): r for r in base.get("rows", [])}
    cur_rows = {row_identity(r): r for r in cur.get("rows", [])}
    for identity, base_row in base_rows.items():
        cur_row = cur_rows.get(identity)
        gate.check(cur_row is not None,
                   f"baseline row missing from current run: "
                   f"{fmt_identity(identity)}")
        if cur_row is not None:
            gate.compare_row(identity, base_row, cur_row)
    for identity in cur_rows:
        if identity not in base_rows:
            print(f"note  new row (no baseline): {fmt_identity(identity)}")

    for key, bval in summary_scalars(base).items():
        if not is_latency_percentile_key(key):
            continue
        cval = cur.get(key)
        if not isinstance(cval, (int, float)) or isinstance(cval, bool):
            gate.check(False,
                       f"[top-level] {key}: gated metric missing from "
                       f"current run (baseline {bval:.6g})")
            continue
        gate.check(
            cval <= bval + args.quality_tol,
            f"[top-level] {key}: {cval:.6g} vs baseline {bval:.6g} "
            f"(latency tolerance {args.quality_tol})")

    ops = {">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
           "<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
           "==": lambda a, b: a == b}
    for key, op, value in args.require:
        actual = cur.get(key)
        gate.check(
            isinstance(actual, (int, float)) and not isinstance(actual, bool)
            and math.isfinite(actual) and ops[op](actual, value),
            f"require {key} {op} {value}: got {actual!r}")

    name = cur.get("bench", args.current)
    if gate.failures:
        print(f"\n{name}: {len(gate.failures)}/{gate.checks} checks failed "
              f"against {args.baseline}")
        return 1
    print(f"{name}: {gate.checks} checks passed against {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
