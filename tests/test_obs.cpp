#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "metrics/histogram.hpp"
#include "netlayer/swap_service.hpp"
#include "netlayer/topology.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "routing/router.hpp"

/// Observability subsystem (ISSUE 6): streaming histograms, the
/// deterministic request-lifecycle tracer, engine telemetry, and the
/// merged Snapshot JSON. The load-bearing guarantees under test:
/// byte-identical traces per seed, and *zero* trajectory perturbation
/// from attaching a tracer or enabling telemetry.

namespace qlink::obs {
namespace {

using metrics::Histogram;
using netlayer::E2eOk;
using netlayer::E2eRequest;
using netlayer::NetworkConfig;
using netlayer::QuantumNetwork;
using netlayer::SwapService;

// ---------------------------------------------------------------------------
// metrics::Histogram

TEST(Histogram, CountSumMean) {
  Histogram h;
  h.record(1.0);
  h.record(2.0);
  h.record(3.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 6.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

TEST(Histogram, PercentileBracketsSamples) {
  // 1000 samples spread over [1e-3, 1): percentiles must land within a
  // bin width (~7.5%) of the exact empirical quantiles.
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(1e-3 * i);
  EXPECT_NEAR(h.p50(), 0.5, 0.5 * 0.08);
  EXPECT_NEAR(h.p90(), 0.9, 0.9 * 0.08);
  EXPECT_NEAR(h.p99(), 0.99, 0.99 * 0.08);
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
}

TEST(Histogram, UnderflowAndOverflowClampToRangeEdges) {
  Histogram h;
  h.record(0.0);                       // <= 0 underflows
  h.record(-1.0);
  h.record(std::nan(""));              // NaN underflows, never a bin
  h.record(Histogram::kMaxValue * 10.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.underflow(), 3u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.percentile(10.0), Histogram::kMinValue);
  EXPECT_DOUBLE_EQ(h.percentile(99.9), Histogram::kMaxValue);
}

TEST(Histogram, MergeMatchesSingleRecorder) {
  Histogram a, b, whole;
  for (int i = 1; i <= 500; ++i) {
    a.record(1e-6 * i);
    whole.record(1e-6 * i);
  }
  for (int i = 501; i <= 1000; ++i) {
    b.record(1e-6 * i);
    whole.record(1e-6 * i);
  }
  a += b;
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.sum(), whole.sum());
  EXPECT_DOUBLE_EQ(a.p50(), whole.p50());
  EXPECT_DOUBLE_EQ(a.p99(), whole.p99());
  for (int i = 0; i < Histogram::kBins; ++i) {
    ASSERT_EQ(a.bin_count(i), whole.bin_count(i)) << "bin " << i;
  }
}

TEST(Histogram, BinLayoutCoversTwelveDecades) {
  EXPECT_DOUBLE_EQ(Histogram::bin_lower(0), Histogram::kMinValue);
  EXPECT_NEAR(Histogram::bin_lower(Histogram::kBins),
              Histogram::kMaxValue, 1e-9);
  Histogram h;
  h.record(5e-9);  // nanoseconds and
  h.record(500.0); // hundreds of seconds both land in real bins
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

// ---------------------------------------------------------------------------
// obs::Tracer export surfaces

TEST(Tracer, ChromeJsonShape) {
  Tracer t;
  const TraceId id = t.new_trace();
  EXPECT_EQ(id, 1u);  // ids start at 1; 0 means untraced
  t.complete(id, "request", "request", 1000, 250000,
             {Tracer::str_arg("outcome", "completed")});
  t.instant(id, "router", "submit", 1000,
            {Tracer::num_arg("pairs", std::uint64_t{2})});
  const std::uint64_t a = t.async_begin(id, "hop", "hop", 2000);
  t.async_instant(a, id, "hop", "pair_matched", 3000);
  t.async_end(a, id, "hop", "hop", 4000);
  EXPECT_EQ(t.num_events(), 5u);

  const std::string json = t.chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"n\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  // ts is microseconds with lossless nanosecond decimals: 1000 ns ->
  // 1.000, 250000 ns dur -> 249.000.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":249.000"), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"completed\""), std::string::npos);
}

TEST(Tracer, JsonlIsOneEventPerLineIntegerNanoseconds) {
  Tracer t;
  const TraceId id = t.new_trace();
  t.instant(id, "router", "submit", 12345);
  t.complete(id, "request", "request", 12345, 99999);
  const std::string jsonl = t.jsonl();
  std::size_t lines = 0;
  for (const char c : jsonl) lines += (c == '\n');
  EXPECT_EQ(lines, t.num_events());
  EXPECT_NE(jsonl.find("\"t\":12345"), std::string::npos);
  EXPECT_NE(jsonl.find("\"dur\":87654"), std::string::npos);
  EXPECT_EQ(jsonl.find("\"ts\""), std::string::npos);  // chrome key absent
}

TEST(Tracer, StrArgEscapesJson) {
  const auto arg = Tracer::str_arg("k", "a\"b\\c\nd");
  EXPECT_EQ(arg.value, "\"a\\\"b\\\\c\\nd\"");
}

TEST(Tracer, UntracedEventsLandOnGlobalLane) {
  Tracer t;
  t.instant(0, "egp", "error", 777);
  const std::string json = t.chrome_json();
  EXPECT_NE(json.find("\"tid\":0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// sim::Simulator telemetry

TEST(SimulatorTelemetry, CountsExecutedEventsPerLabel) {
  sim::Simulator s;
  s.set_telemetry(true);
  int fired = 0;
  for (int i = 0; i < 3; ++i) {
    s.schedule_in(10 * (i + 1), [&fired] { ++fired; }, "test.a");
  }
  s.schedule_in(5, [&fired] { ++fired; }, "test.b");
  s.schedule_in(6, [&fired] { ++fired; });  // unlabeled
  s.run_all();
  EXPECT_EQ(fired, 5);

  const auto stats = s.label_stats();
  ASSERT_EQ(stats.size(), 3u);  // sorted by label text
  EXPECT_EQ(stats[0].label, "(unlabeled)");
  EXPECT_EQ(stats[0].count, 1u);
  EXPECT_EQ(stats[1].label, "test.a");
  EXPECT_EQ(stats[1].count, 3u);
  EXPECT_EQ(stats[2].label, "test.b");
  EXPECT_EQ(stats[2].count, 1u);
  EXPECT_DOUBLE_EQ(stats[1].wall_seconds, 0.0);  // profiler was off
}

TEST(SimulatorTelemetry, OffByDefaultAndCostsNothing) {
  sim::Simulator s;
  EXPECT_FALSE(s.telemetry());
  EXPECT_FALSE(s.profiler());
  s.schedule_in(1, [] {}, "test.a");
  s.run_all();
  EXPECT_TRUE(s.label_stats().empty());
}

TEST(SimulatorTelemetry, HeapHighWaterIsAlwaysTracked) {
  sim::Simulator s;
  EXPECT_EQ(s.heap_high_water(), 0u);
  for (int i = 0; i < 7; ++i) s.schedule_in(i + 1, [] {});
  EXPECT_EQ(s.heap_high_water(), 7u);
  s.run_all();
  EXPECT_EQ(s.heap_high_water(), 7u);  // high-water, not current depth
}

TEST(SimulatorTelemetry, ProfilerAccumulatesWallTime) {
  sim::Simulator s;
  s.set_profiler(true);
  volatile double sink = 0.0;
  s.schedule_in(1,
                [&sink] {
                  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
                },
                "test.busy");
  s.schedule_in(2, [] {}, "test.idle");
  s.run_all();
  const auto top = s.hottest(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].label, "test.busy");
  EXPECT_GT(top[0].wall_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Collector origin lookup (satellite: no more opaque map::at throw)

TEST(CollectorOrigin, MissingOriginThrowsWithNodeAndProbesAreSafe) {
  metrics::Collector c;
  EXPECT_FALSE(c.has_origin(42));
  EXPECT_EQ(c.find_origin(42), nullptr);
  try {
    c.by_origin(42);
    FAIL() << "by_origin should throw for an unknown node";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("42"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Snapshot JSON

TEST(Snapshot, AllNullSourcesYieldEmptyObject) {
  EXPECT_EQ(Snapshot{}.json(), "{}");
}

TEST(Snapshot, HistogramJsonCarriesPercentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(0.01 * i);
  const std::string json = histogram_json(h);
  EXPECT_NE(json.find("\"count\":100"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p90\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"underflow\":0"), std::string::npos);
}

TEST(Snapshot, EngineSectionReflectsSimulator) {
  sim::Simulator s;
  s.set_telemetry(true);
  s.schedule_in(1, [] {}, "test.a");
  s.run_all();
  Snapshot snap;
  snap.simulator = &s;
  const std::string json = snap.json();
  EXPECT_NE(json.find("\"engine\""), std::string::npos);
  EXPECT_NE(json.find("\"events_processed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"heap_high_water\":1"), std::string::npos);
  EXPECT_NE(json.find("\"test.a\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Routed end-to-end: byte-identical traces, zero trajectory perturbation.
//
// Same 2x3 dead-edge world as test_adaptive_routing.cpp: the shortest
// 0 -> 2 corridor fails (herald visibility 0.25 on edge (1, 2)), so a
// run exercises submit, admission, per-hop spans, an EGP error, one
// reroute, and a completed envelope — every span family in one trace.

struct TracedWorld {
  routing::Graph grid;
  std::unique_ptr<QuantumNetwork> net;
  metrics::Collector collector;
  std::unique_ptr<SwapService> swap;
  std::unique_ptr<routing::Router> router;
  Tracer tracer;

  explicit TracedWorld(qstate::BackendKind backend, std::uint64_t seed,
                       bool traced)
      : grid(routing::Graph::grid(2, 3)) {
    const std::size_t dead = grid.find_edge(1, 2);
    NetworkConfig nc =
        routing::make_network_config(grid, core::LinkConfig{}, seed);
    nc.link.backend = backend;
    nc.link.pauli_twirl_installs =
        backend == qstate::BackendKind::kBellDiagonal;
    nc.link.scenario = hw::ScenarioParams::lab();
    nc.link.scenario.nv.carbon_t2_ns = 0.5e9;
    nc.link.scenario.nv.carbon_coupling_rad_per_s /= 10.0;
    nc.configure_link = [dead](std::size_t link, core::LinkConfig& lc) {
      if (link == dead) lc.scenario.herald.visibility = 0.25;
    };
    net = std::make_unique<QuantumNetwork>(nc);
    swap = std::make_unique<SwapService>(*net, &collector);
    routing::RouterConfig rc;
    rc.cost = routing::CostModel::kHopCount;
    rc.k_candidates = 4;
    rc.max_reroutes = 3;
    router = std::make_unique<routing::Router>(grid, *net, *swap, rc,
                                               &collector);
    const double menu[] = {0.7};
    router->annotate_from_network(menu);
    if (traced) {
      router->set_tracer(&tracer);
      swap->set_tracer(&tracer);
    }
  }

  /// Run one 0 -> 2 request to settlement; returns a byte-exact
  /// delivery trace (the trajectory fingerprint, tracer-independent).
  std::string run_request() {
    std::string deliveries;
    router->set_deliver_handler([&](const E2eOk& ok) {
      char line[160];
      std::snprintf(line, sizeof(line), "%u %u/%u s%d %.17g %lld\n",
                    ok.request_id, ok.pair_index + 1, ok.total_pairs,
                    ok.swaps, ok.fidelity,
                    static_cast<long long>(ok.deliver_time));
      deliveries += line;
      swap->release(ok);
    });
    E2eRequest req;
    req.src = 0;
    req.dst = 2;
    req.num_pairs = 2;
    req.min_fidelity = 0.25;
    req.link_min_fidelity = 0.7;
    net->start();
    router->submit(req);
    const auto& stats = router->stats();
    for (int i = 0; i < 4000 && stats.completed + stats.failed < 1; ++i) {
      net->run_for(sim::duration::milliseconds(1));
    }
    EXPECT_EQ(stats.completed, 1u);
    char tail[64];
    std::snprintf(tail, sizeof(tail), "end %lld %llu\n",
                  static_cast<long long>(net->simulator().now()),
                  static_cast<unsigned long long>(
                      net->simulator().events_processed()));
    deliveries += tail;
    return deliveries;
  }
};

TEST(TracedRun, ByteIdenticalTracePerSeedOnBothBackends) {
  for (const auto backend : {qstate::BackendKind::kDense,
                             qstate::BackendKind::kBellDiagonal}) {
    TracedWorld first(backend, 11, /*traced=*/true);
    TracedWorld second(backend, 11, /*traced=*/true);
    const std::string d1 = first.run_request();
    const std::string d2 = second.run_request();
    EXPECT_EQ(d1, d2);
    ASSERT_GT(first.tracer.num_events(), 0u);
    EXPECT_EQ(first.tracer.jsonl(), second.tracer.jsonl());
    EXPECT_EQ(first.tracer.chrome_json(), second.tracer.chrome_json());
  }
}

TEST(TracedRun, TraceCoversTheWholeLifecycle) {
  TracedWorld w(qstate::BackendKind::kBellDiagonal, 11, /*traced=*/true);
  w.run_request();
  const std::string jsonl = w.tracer.jsonl();
  for (const char* name :
       {"\"submit\"", "\"request\"", "\"hop\"", "\"pair_matched\"",
        "\"reroute\"", "\"deliver\"", "\"error\""}) {
    EXPECT_NE(jsonl.find(name), std::string::npos) << name;
  }
  EXPECT_NE(jsonl.find("\"outcome\":\"completed\""), std::string::npos);
  // The rerouted resubmission keeps its trace id: every attributed
  // event of this single-request run is trace 1.
  EXPECT_EQ(jsonl.find("\"trace\":2"), std::string::npos);
}

TEST(TracedRun, AttachingATracerDoesNotPerturbTheTrajectory) {
  for (const auto backend : {qstate::BackendKind::kDense,
                             qstate::BackendKind::kBellDiagonal}) {
    TracedWorld bare(backend, 11, /*traced=*/false);
    TracedWorld traced(backend, 11, /*traced=*/true);
    const std::string d_bare = bare.run_request();
    const std::string d_traced = traced.run_request();
    // Identical deliveries, end time, and event count: the tracer is a
    // pure observer (the fingerprint includes events_processed).
    EXPECT_EQ(d_bare, d_traced);
    EXPECT_EQ(bare.tracer.num_events(), 0u);
    // Collector outputs match exactly too.
    EXPECT_EQ(bare.collector.route_length().count(),
              traced.collector.route_length().count());
    EXPECT_DOUBLE_EQ(bare.collector.route_length().mean(),
                     traced.collector.route_length().mean());
    EXPECT_DOUBLE_EQ(bare.collector.request_latency_hist().sum(),
                     traced.collector.request_latency_hist().sum());
    EXPECT_EQ(bare.collector.reroutes(), traced.collector.reroutes());
  }
}

TEST(TracedRun, RoutedOriginLookupsWork) {
  TracedWorld w(qstate::BackendKind::kBellDiagonal, 11, /*traced=*/true);
  w.run_request();
  ASSERT_TRUE(w.collector.has_origin(0));  // origin node of the request
  const auto* km = w.collector.find_origin(0);
  ASSERT_NE(km, nullptr);
  EXPECT_EQ(km->pairs_delivered, 2u);
  EXPECT_EQ(&w.collector.by_origin(0), km);
  EXPECT_EQ(w.collector.find_origin(5), nullptr);
}

TEST(TracedRun, SnapshotMergesEverySurface) {
  TracedWorld w(qstate::BackendKind::kBellDiagonal, 11, /*traced=*/true);
  w.net->simulator().set_telemetry(true);
  w.run_request();
  Snapshot snap;
  snap.collector = &w.collector;
  snap.router = &w.router->stats();
  snap.swap = &w.swap->stats();
  snap.simulator = &w.net->simulator();
  const std::string json = snap.json();
  for (const char* key :
       {"\"router\"", "\"swap\"", "\"distributions\"", "\"engine\"",
        "\"request_latency_s\"", "\"completed\":1", "\"labels\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(json.find("\"backend\""), std::string::npos);  // null source
}

}  // namespace
}  // namespace qlink::obs
