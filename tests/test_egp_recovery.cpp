#include <gtest/gtest.h>

#include "core/network.hpp"

namespace qlink::core {
namespace {

/// Robustness of the EGP under inflated classical losses (Section 6.1):
/// the protocol must keep running, keep the distributed queue consistent,
/// and revoke unmatched OKs through EXPIRE.
class EgpRecoveryTest : public ::testing::Test {
 protected:
  static LinkConfig config(std::uint64_t seed, double loss) {
    LinkConfig c;
    c.scenario = hw::ScenarioParams::lab();
    c.scenario.classical_loss_prob = loss;
    c.seed = seed;
    return c;
  }

  void attach(Link& link) {
    for (std::uint32_t node : {Link::kNodeA, Link::kNodeB}) {
      link.egp(node).set_ok_handler([this, node](const OkMessage& ok) {
        (node == Link::kNodeA ? oks_a_ : oks_b_).push_back(ok);
        // Consume immediately so memory slots recycle.
        if (!ok.is_measure_directly) {
          // release via the owning EGP
        }
      });
      link.egp(node).set_err_handler([this, node](const ErrMessage& e) {
        (node == Link::kNodeA ? errs_a_ : errs_b_).push_back(e);
      });
    }
  }

  static CreateRequest md(std::uint16_t pairs) {
    CreateRequest r;
    r.type = RequestType::kCreateMeasure;
    r.num_pairs = pairs;
    r.min_fidelity = 0.6;
    r.priority = Priority::kMeasureDirectly;
    r.consecutive = true;
    r.store_in_memory = false;
    return r;
  }

  std::vector<OkMessage> oks_a_;
  std::vector<OkMessage> oks_b_;
  std::vector<ErrMessage> errs_a_;
  std::vector<ErrMessage> errs_b_;
};

TEST_F(EgpRecoveryTest, SurvivesModerateLossAndStillDelivers) {
  Link link(config(7, 1e-3));
  attach(link);
  link.start();
  for (int i = 0; i < 4; ++i) link.egp_a().create(md(2));
  link.run_for(sim::duration::seconds(6));
  // All requests eventually complete or expire; nothing hangs.
  EXPECT_GE(oks_a_.size(), 4u);
  EXPECT_EQ(link.egp_a().queue().total_size(), 0u);
  EXPECT_EQ(link.egp_b().queue().total_size(), 0u);
}

TEST_F(EgpRecoveryTest, ExtremeLossStillMakesProgress) {
  // 1e-2 is 6 orders of magnitude above the real link (Appendix D.6.1);
  // retransmission and EXPIRE recovery must keep the system live.
  Link link(config(8, 1e-2));
  attach(link);
  link.start();
  for (int i = 0; i < 6; ++i) link.egp_a().create(md(1));
  link.run_for(sim::duration::seconds(10));
  EXPECT_GE(oks_a_.size() + errs_a_.size(), 4u);
  EXPECT_GT(link.egp_a().stats().successes, 0u);
}

TEST_F(EgpRecoveryTest, SequenceGapTriggersExpire) {
  // Disable the one-sided recovery so the 50% loss below exercises the
  // sequence-gap EXPIRE path instead of whole-request expiry.
  LinkConfig cfg = config(9, 0.0);
  cfg.one_sided_error_threshold = 1 << 30;
  Link link(cfg);
  attach(link);
  link.start();
  // Drop station->A replies for a while mid-run by flipping the loss on
  // only the A-H channel.
  link.egp_a().create(md(200));
  link.run_for(sim::duration::milliseconds(100));
  link.station_channel_a().set_loss_probability(0.5);
  link.run_for(sim::duration::seconds(4));
  link.station_channel_a().set_loss_probability(0.0);
  link.run_for(sim::duration::seconds(6));
  // A observed sequence gaps and sent EXPIREs; B received them.
  EXPECT_GT(link.egp_a().stats().seq_gaps, 0u);
  EXPECT_GT(link.egp_a().stats().expires_sent, 0u);
  EXPECT_GT(link.egp_b().stats().expires_received, 0u);
  bool b_saw_expire_err = false;
  for (const auto& e : errs_b_) {
    b_saw_expire_err |= e.error == EgpError::kExpired;
  }
  EXPECT_TRUE(b_saw_expire_err);
}

TEST_F(EgpRecoveryTest, ExpectedSeqConvergesAfterRecovery) {
  // Default one-sided recovery enabled: even if the final success REPLY
  // is lost on one side, the EXPIRE/ACK exchange reconverges the
  // expected sequence numbers.
  Link link(config(10, 0.0));
  attach(link);
  link.start();
  link.egp_a().create(md(200));
  link.run_for(sim::duration::milliseconds(100));
  link.station_channel_b().set_loss_probability(0.7);
  link.run_for(sim::duration::seconds(3));
  link.station_channel_b().set_loss_probability(0.0);
  link.run_for(sim::duration::seconds(8));
  // Both nodes agree on the next expected midpoint sequence number.
  EXPECT_EQ(link.egp_a().expected_seq(), link.egp_b().expected_seq());
}

TEST_F(EgpRecoveryTest, OneSidedErrorsExpireStuckRequests) {
  Link link(config(11, 0.0));
  attach(link);
  link.start();
  link.egp_a().create(md(5));
  // Cut A's link to the station entirely: B attempts alone, gets
  // NO_MESSAGE_OTHER until the one-sided threshold expires the request.
  link.station_channel_a().set_loss_probability(1.0);
  link.run_for(sim::duration::seconds(10));
  EXPECT_GT(link.egp_b().stats().one_sided_errors, 0u);
  EXPECT_EQ(link.egp_b().queue().total_size(), 0u);
}

TEST_F(EgpRecoveryTest, MetricsDegradeGracefullyNotCatastrophically) {
  // Core claim of Section 6.1: inflated losses cost little throughput.
  auto run = [this](double loss) {
    oks_a_.clear();
    oks_b_.clear();
    errs_a_.clear();
    errs_b_.clear();
    Link link(config(12, loss));
    attach(link);
    link.start();
    for (int i = 0; i < 30; ++i) link.egp_a().create(md(3));
    link.run_for(sim::duration::seconds(20));
    return oks_a_.size();
  };
  const auto clean = run(0.0);
  const auto lossy = run(1e-4);
  ASSERT_GT(clean, 10u);
  EXPECT_GT(static_cast<double>(lossy),
            0.8 * static_cast<double>(clean));
}

}  // namespace
}  // namespace qlink::core
