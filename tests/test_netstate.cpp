#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "metrics/collector.hpp"
#include "metrics/edge_stats.hpp"
#include "metrics/spacesaving.hpp"
#include "netlayer/swap_service.hpp"
#include "netlayer/topology.hpp"
#include "obs/netstate.hpp"
#include "obs/report.hpp"
#include "qstate/backend_registry.hpp"
#include "routing/router.hpp"

/// Network-state observability (ISSUE 8): the per-edge accounting
/// substrate (metrics::EdgeStats + the Space-Saving sketch), the
/// obs::NetState sampler, and the run-report renderer. Load-bearing
/// guarantees: sketch exactness under capacity and deterministic
/// merge, union lease coverage (utilization <= 1 by construction),
/// byte-identical JSONL per seed on both backends, and *zero*
/// trajectory perturbation from attaching the accounting hooks.

namespace qlink::obs {
namespace {

using metrics::EdgeStats;
using metrics::SpaceSaving;
using netlayer::E2eOk;
using netlayer::E2eRequest;
using netlayer::NetworkConfig;
using netlayer::QuantumNetwork;
using netlayer::SwapService;

std::size_t count_of(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Space-Saving sketch.

TEST(SpaceSaving, ExactWhileDistinctKeysFitCapacity) {
  SpaceSaving s(4);
  s.add(7, 3);
  s.add(2, 1);
  s.add(7, 2);
  s.add(9, 1);
  EXPECT_TRUE(s.exact());
  EXPECT_EQ(s.evictions(), 0u);
  EXPECT_EQ(s.total_weight(), 7u);
  const auto top = s.top(8);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, 7u);
  EXPECT_EQ(top[0].count, 5u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(s.count_bound(7), 5u);
  // Ties rank by key ascending: 2 and 9 both have count 1.
  EXPECT_EQ(top[1].key, 2u);
  EXPECT_EQ(top[2].key, 9u);
}

TEST(SpaceSaving, EvictionInheritsTheMinimumCountAsErrorBound) {
  SpaceSaving s(2);
  s.add(1);
  s.add(2);
  s.add(3);  // evicts the min-count tie's smallest key: 1
  EXPECT_FALSE(s.exact());
  EXPECT_EQ(s.evictions(), 1u);
  const auto top = s.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 3u);
  EXPECT_EQ(top[0].count, 2u);  // inherited 1 + its own 1
  EXPECT_EQ(top[0].error, 1u);  // true count of 3 is in [1, 2]
  EXPECT_EQ(top[1].key, 2u);
  EXPECT_EQ(top[1].error, 0u);
  // Untracked keys are bounded by the sketch minimum.
  EXPECT_EQ(s.count_bound(1), 1u);
  EXPECT_EQ(s.total_weight(), 3u);
}

TEST(SpaceSaving, MergeOfShardsUnderCapacityEqualsTheSingleRun) {
  SpaceSaving whole(8), a(8), b(8);
  for (SpaceSaving* s : {&whole, &a}) {
    s->add(1, 4);
    s->add(2, 2);
  }
  for (SpaceSaving* s : {&whole, &b}) {
    s->add(2, 3);
    s->add(5, 1);
  }
  a.merge(b);
  EXPECT_TRUE(a.exact());
  EXPECT_EQ(a.total_weight(), whole.total_weight());
  const auto merged = a.top(8);
  const auto single = whole.top(8);
  ASSERT_EQ(merged.size(), single.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].key, single[i].key);
    EXPECT_EQ(merged[i].count, single[i].count);
    EXPECT_EQ(merged[i].error, single[i].error);
  }
  // Merge is deterministic: the other order yields the same ranking.
  SpaceSaving a2(8), b2(8);
  a2.add(1, 4);
  a2.add(2, 2);
  b2.add(2, 3);
  b2.add(5, 1);
  b2.merge(a2);
  const auto other_order = b2.top(8);
  ASSERT_EQ(other_order.size(), single.size());
  for (std::size_t i = 0; i < other_order.size(); ++i) {
    EXPECT_EQ(other_order[i].key, single[i].key);
    EXPECT_EQ(other_order[i].count, single[i].count);
  }
}

TEST(SpaceSaving, MergeTruncatesBackToCapacityDeterministically) {
  SpaceSaving a(2), b(2);
  a.add(1, 5);
  a.add(2, 1);
  b.add(3, 4);
  b.add(4, 2);
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
  const auto top = a.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 1u);  // count 5
  EXPECT_EQ(top[1].key, 3u);  // count 4
  EXPECT_EQ(a.total_weight(), 12u);
  EXPECT_FALSE(a.exact());  // truncation dropped tracked keys
}

// ---------------------------------------------------------------------------
// EdgeStats: union lease coverage and counter accounting.

TEST(EdgeStats, UnionCoverageClipsOverlappingWindows) {
  EdgeStats es(2, 2);
  // [1, 3) and [2, 5): union covers [1, 5) = 4 s.
  es.on_lease(0, 10, sim::duration::seconds(1), sim::duration::seconds(3));
  es.on_lease(0, 11, sim::duration::seconds(2), sim::duration::seconds(5));
  EXPECT_DOUBLE_EQ(es.busy_seconds(0, sim::duration::seconds(2)), 1.0);
  EXPECT_DOUBLE_EQ(es.busy_seconds(0, sim::duration::seconds(4)), 3.0);
  EXPECT_DOUBLE_EQ(es.busy_seconds(0, sim::duration::seconds(10)), 4.0);
  // The untouched edge stays at zero; counters track placements.
  EXPECT_DOUBLE_EQ(es.busy_seconds(1, sim::duration::seconds(10)), 0.0);
  EXPECT_EQ(es.edge(0).leases, 2u);
  EXPECT_EQ(es.lease_count(), 2u);
  // Coverage can never exceed elapsed: utilization <= 1 by construction.
  EXPECT_LE(es.busy_seconds(0, sim::duration::seconds(10)), 10.0);
}

TEST(EdgeStats, EarlyReleaseTruncatesTheOpenWindow) {
  EdgeStats es(1, 1);
  es.on_lease(0, 42, sim::duration::seconds(1), sim::duration::seconds(9));
  es.on_lease_release(0, 42, sim::duration::seconds(4));
  EXPECT_DOUBLE_EQ(es.busy_seconds(0, sim::duration::seconds(9)), 3.0);
  // Releasing an unknown ticket or with unknown time is a no-op.
  es.on_lease_release(0, 7, sim::duration::seconds(5));
  es.on_lease_release(0, 42, -1);
  EXPECT_DOUBLE_EQ(es.busy_seconds(0, sim::duration::seconds(10)), 3.0);
}

TEST(EdgeStats, ContentionAndDeliveryCounters) {
  EdgeStats es(3, 3);
  const std::size_t footprint[] = {0, 2};
  es.on_blocked(footprint);
  es.on_blocked_request();
  const std::size_t path[] = {0, 1};
  es.on_admission_wait(path, 0.5);
  es.on_attempt(1, 4);
  es.on_swap(1);
  es.on_delivered_edge(0, 0.8);
  es.on_delivered_edge(1, 0.8);
  es.on_delivered_pair(0, 2);

  EXPECT_EQ(es.edge(0).blocked, 1u);
  EXPECT_EQ(es.edge(1).blocked, 0u);
  EXPECT_EQ(es.edge(2).blocked, 1u);
  EXPECT_EQ(es.blocked_requests(), 1u);
  EXPECT_EQ(es.edge(0).admission_waits, 1u);
  EXPECT_DOUBLE_EQ(es.edge(1).admission_wait_s, 0.5);
  EXPECT_EQ(es.admission_waits(), 1u);
  EXPECT_DOUBLE_EQ(es.admission_wait_seconds(), 0.5);
  EXPECT_EQ(es.edge(1).attempts, 4u);
  EXPECT_EQ(es.attempt_pairs(), 4u);
  EXPECT_EQ(es.node(1).swaps, 1u);
  EXPECT_EQ(es.swaps(), 1u);
  EXPECT_EQ(es.edge(0).deliveries, 1u);
  EXPECT_DOUBLE_EQ(es.edge(0).fidelity.mean(), 0.8);
  EXPECT_EQ(es.deliveries(), 1u);
  EXPECT_EQ(es.node(0).terminals, 1u);
  EXPECT_EQ(es.node(2).terminals, 1u);
}

TEST(EdgeStats, MergeSumsCountersCoverageAndSketch) {
  EdgeStats a(2, 2), b(2, 2);
  a.on_lease(0, 1, 0, sim::duration::seconds(2));
  b.on_lease(0, 2, sim::duration::seconds(5), sim::duration::seconds(6));
  a.on_attempt(1, 3);
  b.on_attempt(1, 2);
  a.on_delivered_edge(0, 0.9);
  b.on_delivered_edge(0, 0.7);
  b.on_swap(1);
  // Fold both shards at their end times first (the documented merge
  // precondition), then merge.
  (void)a.busy_seconds(0, sim::duration::seconds(2));
  (void)b.busy_seconds(0, sim::duration::seconds(6));
  a.merge(b);
  EXPECT_EQ(a.edge(0).leases, 2u);
  EXPECT_EQ(a.lease_count(), 2u);
  EXPECT_EQ(a.edge(1).attempts, 5u);
  EXPECT_EQ(a.attempt_pairs(), 5u);
  EXPECT_EQ(a.edge(0).deliveries, 2u);
  EXPECT_DOUBLE_EQ(a.edge(0).fidelity.mean(), 0.8);
  EXPECT_EQ(a.node(1).swaps, 1u);
  // Folded busy seconds add: 2 s + 1 s of disjoint sim-time coverage.
  EXPECT_DOUBLE_EQ(a.busy_seconds(0, sim::duration::seconds(6)), 3.0);
  EXPECT_TRUE(a.hot_edges().exact());
  EXPECT_EQ(a.hot_edges().total_weight(), 7u);  // 2 leases + 5 pairs
}

// ---------------------------------------------------------------------------
// Sampled end-to-end run: the same 2x3 dead-edge world as
// test_monitor.cpp's MonitoredWorld, with EdgeStats hooks and an
// obs::NetState polled from the run loop.

struct SampledWorld {
  routing::Graph grid;
  std::unique_ptr<QuantumNetwork> net;
  metrics::Collector collector;
  std::unique_ptr<SwapService> swap;
  std::unique_ptr<routing::Router> router;
  std::unique_ptr<EdgeStats> edge_stats;
  std::unique_ptr<NetState> netstate;

  explicit SampledWorld(qstate::BackendKind backend, std::uint64_t seed,
                        bool sampled)
      : grid(routing::Graph::grid(2, 3)) {
    const std::size_t dead = grid.find_edge(1, 2);
    NetworkConfig nc =
        routing::make_network_config(grid, core::LinkConfig{}, seed);
    nc.link.backend = backend;
    nc.link.pauli_twirl_installs =
        backend == qstate::BackendKind::kBellDiagonal;
    nc.link.scenario = hw::ScenarioParams::lab();
    nc.link.scenario.nv.carbon_t2_ns = 0.5e9;
    nc.link.scenario.nv.carbon_coupling_rad_per_s /= 10.0;
    nc.configure_link = [dead](std::size_t link, core::LinkConfig& lc) {
      if (link == dead) lc.scenario.herald.visibility = 0.25;
    };
    net = std::make_unique<QuantumNetwork>(nc);
    swap = std::make_unique<SwapService>(*net, &collector);
    routing::RouterConfig rc;
    rc.cost = routing::CostModel::kHopCount;
    rc.k_candidates = 4;
    rc.max_reroutes = 3;
    router = std::make_unique<routing::Router>(grid, *net, *swap, rc,
                                               &collector);
    const double menu[] = {0.7};
    router->annotate_from_network(menu);
    if (sampled) {
      edge_stats = std::make_unique<EdgeStats>(grid.num_edges(),
                                               grid.num_nodes());
      router->set_edge_stats(edge_stats.get());
      NetStateConfig nsc;
      nsc.run = "test";
      netstate = std::make_unique<NetState>(net->simulator(), *edge_stats,
                                            std::move(nsc));
      netstate->attach_collector(&collector);
      netstate->attach_graph(&grid);
    }
  }

  /// Run one 0 -> 2 request to settlement; returns the byte-exact
  /// trajectory fingerprint (deliveries + end time + event count).
  std::string run_request() {
    std::string deliveries;
    router->set_deliver_handler([&](const E2eOk& ok) {
      char line[160];
      std::snprintf(line, sizeof(line), "%u %u/%u s%d %.17g %lld\n",
                    ok.request_id, ok.pair_index + 1, ok.total_pairs,
                    ok.swaps, ok.fidelity,
                    static_cast<long long>(ok.deliver_time));
      deliveries += line;
      swap->release(ok);
    });
    E2eRequest req;
    req.src = 0;
    req.dst = 2;
    req.num_pairs = 2;
    req.min_fidelity = 0.25;
    req.link_min_fidelity = 0.7;
    net->start();
    router->submit(req);
    const auto& stats = router->stats();
    for (int i = 0; i < 4000 && stats.completed + stats.failed < 1; ++i) {
      net->run_for(sim::duration::milliseconds(1));
      if (netstate != nullptr) netstate->poll();
    }
    if (netstate != nullptr) netstate->finish();
    EXPECT_EQ(stats.completed, 1u);
    char tail[64];
    std::snprintf(tail, sizeof(tail), "end %lld %llu\n",
                  static_cast<long long>(net->simulator().now()),
                  static_cast<unsigned long long>(
                      net->simulator().events_processed()));
    deliveries += tail;
    return deliveries;
  }
};

TEST(NetStateRun, ByteIdenticalJsonlPerSeedOnBothBackends) {
  for (const auto backend : {qstate::BackendKind::kDense,
                             qstate::BackendKind::kBellDiagonal}) {
    SampledWorld first(backend, 11, /*sampled=*/true);
    SampledWorld second(backend, 11, /*sampled=*/true);
    const std::string d1 = first.run_request();
    const std::string d2 = second.run_request();
    EXPECT_EQ(d1, d2);
    ASSERT_GT(first.netstate->intervals(), 0u);
    EXPECT_EQ(first.netstate->jsonl(), second.netstate->jsonl());
  }
}

TEST(NetStateRun, AttachingTheHooksDoesNotPerturbTheTrajectory) {
  for (const auto backend : {qstate::BackendKind::kDense,
                             qstate::BackendKind::kBellDiagonal}) {
    SampledWorld bare(backend, 11, /*sampled=*/false);
    SampledWorld sampled(backend, 11, /*sampled=*/true);
    const std::string d_bare = bare.run_request();
    const std::string d_sampled = sampled.run_request();
    // Identical deliveries, end time, and event count: the accounting
    // hooks are pure observers (the fingerprint includes
    // events_processed).
    EXPECT_EQ(d_bare, d_sampled);
    EXPECT_EQ(bare.collector.route_length().count(),
              sampled.collector.route_length().count());
    EXPECT_DOUBLE_EQ(bare.collector.request_latency_hist().sum(),
                     sampled.collector.request_latency_hist().sum());
  }
}

TEST(NetStateRun, StreamHoldsTheCheckerInvariants) {
  SampledWorld w(qstate::BackendKind::kBellDiagonal, 11,
                 /*sampled=*/true);
  w.run_request();
  const std::string jsonl = w.netstate->jsonl();
  // One line per interval record plus the final summary; every record
  // carries the run label.
  EXPECT_EQ(count_of(jsonl, "\n"), w.netstate->intervals() + 1);
  EXPECT_EQ(count_of(jsonl, "\"i\":"), w.netstate->intervals());
  EXPECT_EQ(count_of(jsonl, "\"final\":true"), 1u);
  EXPECT_EQ(count_of(jsonl, "\"run\":\"test\""),
            w.netstate->intervals() + 1);
  // The final record carries the per-edge table, totals, and sketch.
  EXPECT_NE(jsonl.find("\"edges\":["), std::string::npos);
  EXPECT_NE(jsonl.find("\"totals\":{"), std::string::npos);
  EXPECT_NE(jsonl.find("\"sketch\":{"), std::string::npos);
  EXPECT_NE(jsonl.find("\"collector\":{"), std::string::npos);
  // Utilization is a coverage fraction: bounded by 1.
  EXPECT_GT(w.netstate->max_utilization(), 0.0);
  EXPECT_LE(w.netstate->max_utilization(), 1.0);
  // 7 edges fit the default sketch capacity: the ranking is exact.
  EXPECT_TRUE(w.edge_stats->hot_edges().exact());
  // finish() is idempotent and poll() after it is a no-op.
  w.netstate->finish();
  w.netstate->poll();
  EXPECT_EQ(w.netstate->jsonl(), jsonl);
}

TEST(NetStateRun, TotalsReconcileWithTheCollector) {
  SampledWorld w(qstate::BackendKind::kBellDiagonal, 11,
                 /*sampled=*/true);
  w.run_request();
  // Request-level counters agree between the per-edge substrate and
  // the Collector (netstate_check.py verifies the same from JSONL).
  EXPECT_EQ(w.edge_stats->deliveries(),
            w.collector.total_pairs_delivered());
  EXPECT_EQ(w.edge_stats->blocked_requests(),
            w.collector.requests_blocked());
  EXPECT_EQ(w.edge_stats->admission_waits(),
            w.collector.admission_wait().count());
  // Per-hop deliveries cover every delivered pair at least once.
  std::uint64_t hop_deliveries = 0;
  for (std::size_t e = 0; e < w.edge_stats->num_edges(); ++e) {
    hop_deliveries += w.edge_stats->edge(e).deliveries;
  }
  EXPECT_GE(hop_deliveries, w.edge_stats->deliveries());
}

TEST(NetStateRun, PhaseDecompositionCoversTheDeliveredPairs) {
  SampledWorld w(qstate::BackendKind::kBellDiagonal, 11,
                 /*sampled=*/true);
  w.run_request();
  const auto& c = w.collector;
  // Every delivered pair records its generation / swap-cascade /
  // delivery phases; the completed request records its admission wait.
  EXPECT_EQ(c.phase_hist(metrics::Phase::kGeneration).count(),
            c.total_pairs_delivered());
  EXPECT_EQ(c.phase_hist(metrics::Phase::kSwapCascade).count(),
            c.total_pairs_delivered());
  EXPECT_EQ(c.phase_hist(metrics::Phase::kDelivery).count(),
            c.total_pairs_delivered());
  EXPECT_GE(c.phase_hist(metrics::Phase::kAdmissionWait).count(), 1u);
  EXPECT_GT(c.phase_hist(metrics::Phase::kGeneration).sum(), 0.0);
  // The slowest-request keeper saw the completion, with its phase
  // vector summing to at most the total.
  ASSERT_FALSE(c.slowest_requests().empty());
  const auto& slow = c.slowest_requests().front();
  EXPECT_GT(slow.total_s, 0.0);
  double phase_sum = 0.0;
  for (const double s : slow.phase_s) phase_sum += s;
  EXPECT_LE(phase_sum, slow.total_s + 1e-9);
}

TEST(NetStateRun, RunReportRendersTheRun) {
  SampledWorld w(qstate::BackendKind::kBellDiagonal, 11,
                 /*sampled=*/true);
  w.run_request();
  RunReportOptions ro;
  ro.title = "test run";
  const std::string md = render_run_report(
      w.net->simulator(), *w.edge_stats, w.collector, &w.grid, ro);
  EXPECT_NE(md.find("### test run"), std::string::npos);
  EXPECT_NE(md.find("Hot edges"), std::string::npos);
  EXPECT_NE(md.find("Latency phases"), std::string::npos);
  EXPECT_NE(md.find("Slowest requests"), std::string::npos);
  EXPECT_NE(md.find("generation"), std::string::npos);
  // Deterministic rendering: same state, same bytes.
  EXPECT_EQ(md, render_run_report(w.net->simulator(), *w.edge_stats,
                                  w.collector, &w.grid, ro));
}

}  // namespace
}  // namespace qlink::obs
