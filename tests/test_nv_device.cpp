#include <gtest/gtest.h>

#include <cmath>

#include "hw/nv_device.hpp"
#include "hw/nv_params.hpp"
#include "quantum/bell.hpp"
#include "quantum/channels.hpp"
#include "quantum/registry.hpp"
#include "sim/simulator.hpp"

namespace qlink::hw {
namespace {

using quantum::QubitId;
using quantum::gates::Basis;

class NvDeviceTest : public ::testing::Test {
 protected:
  NvDeviceTest() : registry_(random_) {}

  sim::Simulator sim_;
  sim::Random random_{1234};
  quantum::QuantumRegistry registry_{random_};
  NvParams params_;
};

TEST_F(NvDeviceTest, AllocatesCommAndMemoryQubits) {
  params_.num_memory_qubits = 2;
  NvDevice dev(sim_, "nv", params_, registry_);
  EXPECT_EQ(dev.num_memory_qubits(), 2);
  EXPECT_TRUE(registry_.exists(dev.comm_qubit()));
  EXPECT_TRUE(registry_.exists(dev.memory_qubit(0)));
  EXPECT_TRUE(registry_.exists(dev.memory_qubit(1)));
}

TEST_F(NvDeviceTest, DestructorFreesQubits) {
  {
    NvDevice dev(sim_, "nv", params_, registry_);
    EXPECT_EQ(registry_.live_qubits(), 2u);
  }
  EXPECT_EQ(registry_.live_qubits(), 0u);
}

TEST_F(NvDeviceTest, InitializeElectronAppliesInitFidelity) {
  NvDevice dev(sim_, "nv", params_, registry_);
  dev.initialize_electron();
  const QubitId ids[] = {dev.comm_qubit()};
  const quantum::DensityMatrix rho = registry_.peek(ids);
  // Depolarising init with f = 0.95: P(0) = f + (1-f)/3.
  EXPECT_NEAR(rho.matrix()(0, 0).real(), 0.95 + 0.05 / 3.0, 1e-9);
  EXPECT_TRUE(dev.busy());
}

TEST_F(NvDeviceTest, BusyClearsAfterDuration) {
  NvDevice dev(sim_, "nv", params_, registry_);
  dev.initialize_electron();
  EXPECT_TRUE(dev.busy());
  sim_.run_until(params_.electron_init.duration + 1);
  EXPECT_FALSE(dev.busy());
}

TEST_F(NvDeviceTest, DecayAppliedLazilyOverElapsedTime) {
  NvDevice dev(sim_, "nv", params_, registry_);
  // Put electron in |+>, wait one T2, touch, inspect coherence.
  dev.apply_electron_gate(quantum::gates::h());
  const double t2 = params_.electron_t2_ns;
  sim_.run_until(static_cast<sim::SimTime>(t2));
  dev.touch(dev.comm_qubit());
  const QubitId ids[] = {dev.comm_qubit()};
  const quantum::DensityMatrix rho = registry_.peek(ids);
  EXPECT_NEAR(rho.matrix()(0, 1).real(), 0.5 * std::exp(-1.0), 5e-3);
}

TEST_F(NvDeviceTest, TouchTwiceDoesNotDoubleCount) {
  NvDevice dev(sim_, "nv", params_, registry_);
  dev.apply_electron_gate(quantum::gates::h());
  sim_.run_until(500000);
  dev.touch(dev.comm_qubit());
  const QubitId ids[] = {dev.comm_qubit()};
  const double c1 = registry_.peek(ids).matrix()(0, 1).real();
  dev.touch(dev.comm_qubit());
  const double c2 = registry_.peek(ids).matrix()(0, 1).real();
  EXPECT_NEAR(c1, c2, 1e-12);
}

TEST_F(NvDeviceTest, CarbonDecaysSlowerThanElectron) {
  NvDevice dev(sim_, "nv", params_, registry_);
  dev.apply_electron_gate(quantum::gates::h());
  const QubitId carbon = dev.memory_qubit(0);
  const QubitId cids[] = {carbon};
  registry_.apply_unitary(quantum::gates::h(), cids);

  sim_.run_until(1000000);  // 1 ms
  dev.touch_all();
  const QubitId eids[] = {dev.comm_qubit()};
  const double ce = registry_.peek(eids).matrix()(0, 1).real();
  const double cc = registry_.peek(cids).matrix()(0, 1).real();
  EXPECT_GT(cc, ce);
}

TEST_F(NvDeviceTest, MoveCommToMemorySwapsState) {
  NvDevice dev(sim_, "nv", params_, registry_);
  dev.apply_electron_gate(quantum::gates::x());  // electron = |1>
  dev.move_comm_to_memory(0);
  const QubitId cids[] = {dev.memory_qubit(0)};
  const quantum::DensityMatrix rho = registry_.peek(cids);
  EXPECT_GT(rho.matrix()(1, 1).real(), 0.95);
  EXPECT_TRUE(dev.busy());
}

TEST_F(NvDeviceTest, MovePreservesEntanglementHalf) {
  NvDevice dev(sim_, "nv", params_, registry_);
  const QubitId partner = registry_.create();
  const QubitId pair[] = {dev.comm_qubit(), partner};
  registry_.set_state(pair, quantum::DensityMatrix::from_pure(
                                quantum::bell::state_vector(
                                    quantum::bell::BellState::kPsiPlus)));
  dev.set_live(dev.comm_qubit(), true);
  dev.move_comm_to_memory(0);
  const QubitId stored[] = {dev.memory_qubit(0), partner};
  const double f = registry_.fidelity(
      stored,
      quantum::bell::state_vector(quantum::bell::BellState::kPsiPlus));
  // Two E-C gates cost 2*(1-0.992) of dephasing; fidelity stays high.
  EXPECT_GT(f, 0.95);
  EXPECT_TRUE(dev.is_live(dev.memory_qubit(0)));
  EXPECT_FALSE(dev.is_live(dev.comm_qubit()));
  registry_.discard(partner);
}

TEST_F(NvDeviceTest, MeasureCommStatisticsWithReadoutNoise) {
  NvDevice dev(sim_, "nv", params_, registry_);
  // Electron in |1>: correct readout with probability f1 = 0.995.
  int ones = 0;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    dev.initialize_electron();
    const QubitId ids[] = {dev.comm_qubit()};
    registry_.apply_unitary(quantum::gates::x(), ids);
    ones += dev.measure_comm(Basis::kZ);
  }
  // P(read 1) ~ f1 * P(state 1) with P(state 1) ~ 0.95 + dep noise.
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.995 * (0.95 + 0.05 / 3.0),
              0.02);
}

TEST_F(NvDeviceTest, ReadoutNoiseIsAsymmetric) {
  NvDevice dev(sim_, "nv", params_, registry_);
  int flips0 = 0;
  int flips1 = 0;
  const int n = 6000;
  for (int i = 0; i < n; ++i) {
    registry_.reset(dev.comm_qubit());
    dev.mark_fresh(dev.comm_qubit());
    flips0 += dev.measure_comm(Basis::kZ);  // true 0, count read-1
  }
  for (int i = 0; i < n; ++i) {
    registry_.reset(dev.comm_qubit());
    dev.mark_fresh(dev.comm_qubit());
    const QubitId ids[] = {dev.comm_qubit()};
    registry_.apply_unitary(quantum::gates::x(), ids);
    flips1 += 1 - dev.measure_comm(Basis::kZ);  // true 1, count read-0
  }
  // Table 6: error on |0> is 5%, on |1> only 0.5%.
  EXPECT_NEAR(static_cast<double>(flips0) / n, 0.05, 0.015);
  EXPECT_NEAR(static_cast<double>(flips1) / n, 0.005, 0.006);
}

TEST_F(NvDeviceTest, AttemptDephasingOnlyHitsLiveCarbons) {
  NvDevice dev(sim_, "nv", params_, registry_);
  const QubitId carbon = dev.memory_qubit(0);
  const QubitId cids[] = {carbon};
  registry_.apply_unitary(quantum::gates::h(), cids);

  // Not live: no dephasing.
  dev.apply_attempt_dephasing(0.5);
  EXPECT_NEAR(registry_.peek(cids).matrix()(0, 1).real(), 0.5, 1e-12);

  // Live: Eq. 24 dephasing applied per attempt.
  dev.set_live(carbon, true);
  for (int i = 0; i < 100; ++i) dev.apply_attempt_dephasing(0.5);
  const double coherence = registry_.peek(cids).matrix()(0, 1).real();
  EXPECT_LT(coherence, 0.5);
  const double pd = quantum::channels::carbon_dephasing_probability(
      0.5, params_.carbon_coupling_rad_per_s, params_.carbon_tau_d_s);
  EXPECT_NEAR(coherence, 0.5 * std::pow(1.0 - 2.0 * pd, 100), 1e-6);
}

TEST_F(NvDeviceTest, InitializeCarbonResetsAndOccupies) {
  NvDevice dev(sim_, "nv", params_, registry_);
  const QubitId cids[] = {dev.memory_qubit(0)};
  registry_.apply_unitary(quantum::gates::x(), cids);
  dev.initialize_carbon(0);
  EXPECT_GT(registry_.peek(cids).matrix()(0, 0).real(), 0.9);
  EXPECT_GE(dev.busy_until(), params_.carbon_init.duration);
}

TEST_F(NvDeviceTest, MeasureMemoryReadsCarbon) {
  NvDevice dev(sim_, "nv", params_, registry_);
  const QubitId cids[] = {dev.memory_qubit(0)};
  registry_.apply_unitary(quantum::gates::x(), cids);
  int ones = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    registry_.reset(dev.memory_qubit(0));
    dev.mark_fresh(dev.memory_qubit(0));
    registry_.apply_unitary(quantum::gates::x(), cids);
    ones += dev.measure_memory(0, Basis::kZ);
  }
  EXPECT_GT(static_cast<double>(ones) / n, 0.95);
}

TEST_F(NvDeviceTest, UnknownQubitThrows) {
  NvDevice dev(sim_, "nv", params_, registry_);
  EXPECT_THROW(dev.touch(99999), std::invalid_argument);
  EXPECT_THROW(dev.memory_qubit(5), std::out_of_range);
}

}  // namespace
}  // namespace qlink::hw
