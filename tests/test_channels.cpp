#include <gtest/gtest.h>

#include <cmath>

#include "quantum/channels.hpp"
#include "quantum/density_matrix.hpp"
#include "quantum/gates.hpp"

namespace qlink::quantum::channels {
namespace {

const double kS = 1.0 / std::sqrt(2.0);

DensityMatrix plus_state() {
  const std::vector<Complex> plus{kS, kS};
  return DensityMatrix::from_pure(plus);
}

DensityMatrix excited_state() {
  const std::vector<Complex> one{0.0, 1.0};
  return DensityMatrix::from_pure(one);
}

double kraus_completeness_error(const std::vector<Matrix>& ks) {
  Matrix sum(ks.front().cols(), ks.front().cols());
  for (const auto& k : ks) sum += k.dagger() * k;
  return sum.distance(Matrix::identity(sum.rows()));
}

TEST(Channels, DephasingIsTracePreserving) {
  for (double p : {0.0, 0.1, 0.5, 1.0}) {
    EXPECT_LT(kraus_completeness_error(dephasing(p)), 1e-12);
  }
}

TEST(Channels, DephasingScalesCoherence) {
  DensityMatrix rho = plus_state();
  const int t[] = {0};
  rho.apply_kraus(dephasing(0.2), t);
  // Coherence multiplies by (1 - 2p) = 0.6.
  EXPECT_NEAR(rho.matrix()(0, 1).real(), 0.5 * 0.6, 1e-12);
  // Populations untouched.
  EXPECT_NEAR(rho.matrix()(0, 0).real(), 0.5, 1e-12);
}

TEST(Channels, FullDephasingFlipsCoherenceSign) {
  DensityMatrix rho = plus_state();
  const int t[] = {0};
  rho.apply_kraus(dephasing(1.0), t);  // pure Z
  EXPECT_NEAR(rho.matrix()(0, 1).real(), -0.5, 1e-12);
}

TEST(Channels, DepolarizingIsTracePreserving) {
  for (double f : {0.25, 0.5, 0.9, 1.0}) {
    EXPECT_LT(kraus_completeness_error(depolarizing(f)), 1e-12);
  }
}

TEST(Channels, DepolarizingWithFQuarterIsMaximallyMixing) {
  DensityMatrix rho(1);
  const int t[] = {0};
  rho.apply_kraus(depolarizing(0.25), t);
  EXPECT_NEAR(rho.matrix()(0, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(rho.matrix()(1, 1).real(), 0.5, 1e-12);
}

TEST(Channels, DepolarizingIdentityAtFOne) {
  DensityMatrix rho = plus_state();
  const DensityMatrix before = rho;
  const int t[] = {0};
  rho.apply_kraus(depolarizing(1.0), t);
  EXPECT_TRUE(rho.approx_equal(before, 1e-12));
}

TEST(Channels, AmplitudeDampingDecaysExcitedState) {
  DensityMatrix rho = excited_state();
  const int t[] = {0};
  rho.apply_kraus(amplitude_damping(0.3), t);
  EXPECT_NEAR(rho.matrix()(0, 0).real(), 0.3, 1e-12);
  EXPECT_NEAR(rho.matrix()(1, 1).real(), 0.7, 1e-12);
}

TEST(Channels, AmplitudeDampingFixesGroundState) {
  DensityMatrix rho(1);
  const int t[] = {0};
  rho.apply_kraus(amplitude_damping(0.9), t);
  EXPECT_NEAR(rho.matrix()(0, 0).real(), 1.0, 1e-12);
}

TEST(Channels, AmplitudeDampingScalesCoherenceBySqrt) {
  DensityMatrix rho = plus_state();
  const int t[] = {0};
  rho.apply_kraus(amplitude_damping(0.36), t);
  EXPECT_NEAR(rho.matrix()(0, 1).real(), 0.5 * std::sqrt(0.64), 1e-12);
}

TEST(Channels, T1T2PopulationFollowsT1) {
  const double t1 = 1000.0;
  const double t2 = 500.0;
  DensityMatrix rho = excited_state();
  const int t[] = {0};
  rho.apply_kraus(t1t2(700.0, t1, t2), t);
  EXPECT_NEAR(rho.matrix()(1, 1).real(), std::exp(-700.0 / t1), 1e-10);
}

TEST(Channels, T1T2CoherenceFollowsT2) {
  const double t1 = 1000.0;
  const double t2 = 500.0;
  DensityMatrix rho = plus_state();
  const int t[] = {0};
  rho.apply_kraus(t1t2(300.0, t1, t2), t);
  EXPECT_NEAR(rho.matrix()(0, 1).real(), 0.5 * std::exp(-300.0 / t2), 1e-10);
}

TEST(Channels, T1T2InfiniteTimesAreIdentity) {
  DensityMatrix rho = plus_state();
  const DensityMatrix before = rho;
  const int t[] = {0};
  rho.apply_kraus(t1t2(12345.0, -1.0, -1.0), t);
  EXPECT_TRUE(rho.approx_equal(before, 1e-12));
}

TEST(Channels, T1T2PureDephasingWithInfiniteT1) {
  // Carbon: T1 = inf, T2 = 3.5 ms (Table 6).
  const double t2 = 3.5e6;
  DensityMatrix rho = plus_state();
  const int t[] = {0};
  rho.apply_kraus(t1t2(1e6, -1.0, t2), t);
  EXPECT_NEAR(rho.matrix()(0, 1).real(), 0.5 * std::exp(-1e6 / t2), 1e-10);
  EXPECT_NEAR(rho.matrix()(1, 1).real(), 0.5, 1e-12);
}

TEST(Channels, T1T2RejectsUnphysicalCombination) {
  // T2 > 2*T1 is unphysical.
  EXPECT_THROW(t1t2(100.0, 100.0, 500.0), std::invalid_argument);
}

TEST(Channels, T1T2IsTracePreserving) {
  EXPECT_LT(kraus_completeness_error(t1t2(123.0, 1000.0, 800.0)), 1e-12);
}

TEST(Channels, T1T2Composes) {
  // Applying t then t' equals applying t + t'.
  const double t1 = 2000.0;
  const double t2 = 900.0;
  DensityMatrix a = plus_state();
  const int t[] = {0};
  a.apply_kraus(t1t2(100.0, t1, t2), t);
  a.apply_kraus(t1t2(250.0, t1, t2), t);
  DensityMatrix b = plus_state();
  b.apply_kraus(t1t2(350.0, t1, t2), t);
  EXPECT_TRUE(a.approx_equal(b, 1e-10));
}

TEST(Channels, CarbonDephasingMatchesEq25) {
  // Eq. 25 with the [58] parameters: delta_omega = 2*pi*377 kHz,
  // tau_d = 82 ns.
  const double dw = 2.0 * M_PI * 377e3;
  const double tau = 82e-9;
  const double p = carbon_dephasing_probability(0.5, dw, tau);
  const double x = dw * tau;
  EXPECT_NEAR(p, 0.25 * (1.0 - std::exp(-x * x / 2.0)), 1e-15);
  // Scales linearly in alpha.
  EXPECT_NEAR(carbon_dephasing_probability(0.1, dw, tau), p * 0.2, 1e-15);
  EXPECT_EQ(carbon_dephasing_probability(0.0, dw, tau), 0.0);
}

TEST(Channels, CarbonDephasingSurvivalAfterManyAttempts) {
  // Eq. 26: after N attempts the equatorial Bloch length shrinks by
  // (1-p)^N; sanity-check the scale for alpha = 0.1 over 1000 attempts.
  const double p = carbon_dephasing_probability(0.1, 2.0 * M_PI * 377e3,
                                                82e-9);
  const double survival = std::pow(1.0 - p, 1000);
  EXPECT_GT(survival, 0.1);
  EXPECT_LT(survival, 1.0);
}

TEST(Channels, PhaseUncertaintyDephasingMonotone) {
  const double p1 = phase_uncertainty_dephasing(0.1);
  const double p2 = phase_uncertainty_dephasing(0.3);
  EXPECT_GT(p2, p1);
  EXPECT_GT(p1, 0.0);
  EXPECT_EQ(phase_uncertainty_dephasing(0.0), 0.0);
}

TEST(Channels, PhaseUncertaintyPaperValue) {
  // sigma = 14.3 degrees / sqrt(2) per arm (D.4.2).
  const double sigma = 14.3 / std::sqrt(2.0) * M_PI / 180.0;
  const double p = phase_uncertainty_dephasing(sigma);
  // Small-sigma expansion: p ~ sigma^2 / 4.
  EXPECT_NEAR(p, sigma * sigma / 4.0, sigma * sigma * 0.05);
}

TEST(Channels, RejectsOutOfRangeParameters) {
  EXPECT_THROW(dephasing(-0.1), std::invalid_argument);
  EXPECT_THROW(dephasing(1.1), std::invalid_argument);
  EXPECT_THROW(amplitude_damping(2.0), std::invalid_argument);
  EXPECT_THROW(t1t2(-1.0, 100.0, 100.0), std::invalid_argument);
}

}  // namespace
}  // namespace qlink::quantum::channels
