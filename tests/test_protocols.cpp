#include <gtest/gtest.h>

#include <cmath>

#include "quantum/channels.hpp"
#include "quantum/protocols.hpp"

namespace qlink::quantum::protocols {
namespace {

using bell::BellState;

class ProtocolsTest : public ::testing::Test {
 protected:
  std::pair<QubitId, QubitId> make_pair(BellState s) {
    const QubitId a = reg_.create();
    const QubitId b = reg_.create();
    const QubitId ab[] = {a, b};
    reg_.set_state(ab, DensityMatrix::from_pure(bell::state_vector(s)));
    return {a, b};
  }

  QubitId make_state(double theta, double phi) {
    const QubitId q = reg_.create();
    const QubitId ids[] = {q};
    reg_.apply_unitary(gates::ry(theta), ids);
    reg_.apply_unitary(gates::rz(phi), ids);
    return q;
  }

  std::vector<Complex> expected_vec(double theta, double phi) {
    return {std::cos(theta / 2) * std::exp(Complex{0, -phi / 2}),
            std::sin(theta / 2) * std::exp(Complex{0, phi / 2})};
  }

  sim::Random random_{2718};
  QuantumRegistry reg_{random_};
  double metrics_sum_ = 0.0;
};

TEST_F(ProtocolsTest, TeleportPerfectOverEveryBellState) {
  for (BellState s : {BellState::kPhiPlus, BellState::kPhiMinus,
                      BellState::kPsiPlus, BellState::kPsiMinus}) {
    for (int trial = 0; trial < 8; ++trial) {  // cover all outcome pairs
      const auto [ha, hb] = make_pair(s);
      const QubitId src = make_state(1.1, 0.4);
      teleport(reg_, src, ha, hb, s);
      const QubitId rb[] = {hb};
      EXPECT_NEAR(reg_.peek(rb).fidelity(expected_vec(1.1, 0.4)), 1.0, 1e-9)
          << bell::name(s) << " trial " << trial;
      reg_.discard(src);
      reg_.discard(ha);
      reg_.discard(hb);
    }
  }
}

TEST_F(ProtocolsTest, TeleportBasisStatesExactly) {
  // |0> and |1> teleport to themselves.
  for (int bit : {0, 1}) {
    const auto [ha, hb] = make_pair(BellState::kPsiPlus);
    const QubitId src = reg_.create();
    if (bit == 1) {
      const QubitId s[] = {src};
      reg_.apply_unitary(gates::x(), s);
    }
    teleport(reg_, src, ha, hb, BellState::kPsiPlus);
    const QubitId rb[] = {hb};
    const std::vector<Complex> expect =
        bit == 0 ? std::vector<Complex>{1, 0} : std::vector<Complex>{0, 1};
    EXPECT_NEAR(reg_.peek(rb).fidelity(expect), 1.0, 1e-9);
    reg_.discard(src);
    reg_.discard(ha);
    reg_.discard(hb);
  }
}

TEST_F(ProtocolsTest, TeleportFidelityBoundedByPairQuality) {
  // A depolarised pair teleports with fidelity (roughly) tracking the
  // pair fidelity: F_tel = (2 F_pair + 1) / 3 for Werner input, averaged
  // over outcomes.
  metrics_sum_ = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const auto [ha, hb] = make_pair(BellState::kPhiPlus);
    const QubitId noisy[] = {ha};
    reg_.apply_kraus(channels::depolarizing(0.8), noisy);
    const QubitId src = make_state(0.9, 0.2);
    teleport(reg_, src, ha, hb, BellState::kPhiPlus);
    const QubitId rb[] = {hb};
    metrics_sum_ += reg_.peek(rb).fidelity(expected_vec(0.9, 0.2));
    reg_.discard(src);
    reg_.discard(ha);
    reg_.discard(hb);
  }
  const double mean = metrics_sum_ / trials;
  // Pair fidelity after depolarizing(f=0.8): F = 0.8 + 0.2/... compute:
  // rho -> 0.8 rho + noise; F_pair = 0.8 * 1 + 0.2 * (1/4 ... ) ~ 0.85.
  EXPECT_GT(mean, 0.75);
  EXPECT_LT(mean, 1.0);
}

TEST_F(ProtocolsTest, SwapComposesTwoPsiPlusPairs) {
  for (int trial = 0; trial < 16; ++trial) {
    const auto [a, b_left] = make_pair(BellState::kPsiPlus);
    const auto [b_right, c] = make_pair(BellState::kPsiPlus);
    entanglement_swap(reg_, b_left, b_right, c, BellState::kPsiPlus);
    const QubitId ac[] = {a, c};
    // Swapping two Psi+ pairs yields Psi+ between the outer qubits after
    // the corrections of apply_teleport_corrections.
    EXPECT_NEAR(
        reg_.fidelity(ac, bell::state_vector(BellState::kPsiPlus)), 1.0,
        1e-9)
        << "trial " << trial;
    reg_.discard(a);
    reg_.discard(b_left);
    reg_.discard(b_right);
    reg_.discard(c);
  }
}

TEST_F(ProtocolsTest, SwapOfNoisyPairsMultipliesError) {
  metrics_sum_ = 0.0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    const auto [a, bl] = make_pair(BellState::kPsiPlus);
    const auto [br, c] = make_pair(BellState::kPsiPlus);
    const QubitId na[] = {a};
    const QubitId nc[] = {c};
    reg_.apply_kraus(channels::dephasing(0.05), na);
    reg_.apply_kraus(channels::dephasing(0.05), nc);
    entanglement_swap(reg_, bl, br, c, BellState::kPsiPlus);
    const QubitId ac[] = {a, c};
    metrics_sum_ +=
        reg_.fidelity(ac, bell::state_vector(BellState::kPsiPlus));
    reg_.discard(a);
    reg_.discard(bl);
    reg_.discard(br);
    reg_.discard(c);
  }
  const double mean = metrics_sum_ / trials;
  // Two pairs each with coherence 0.9: composed coherence 0.81:
  // F = (1 + 0.81)/2 = 0.905.
  EXPECT_NEAR(mean, 0.905, 0.01);
}

TEST_F(ProtocolsTest, DistillImprovesWernerPairs) {
  const double f_in = 0.75;
  metrics_sum_ = 0.0;
  int successes = 0;
  const int trials = 400;
  auto make_werner = [&](double f) {
    auto [a, b] = make_pair(BellState::kPsiPlus);
    // Werner state of fidelity f: depolarise one side with parameter
    // matching F = f: rho_W = p |Psi+><Psi+| + (1-p) I/4, F = p + (1-p)/4.
    const double p = (4.0 * f - 1.0) / 3.0;
    // One-sided depolarizing(f') gives exactly the Werner twirl on a
    // Bell state with p = (4 f' - 1)/3 ... use the direct construction:
    DensityMatrix w = DensityMatrix::from_pure(
        bell::state_vector(BellState::kPsiPlus));
    DensityMatrix mixed = DensityMatrix::from_matrix(
        w.matrix() * Complex{p, 0.0} +
        Matrix::identity(4) * Complex{(1.0 - p) / 4.0, 0.0});
    const QubitId ab[] = {a, b};
    reg_.set_state(ab, mixed);
    return std::pair<QubitId, QubitId>(a, b);
  };

  for (int t = 0; t < trials; ++t) {
    const auto [ka, kb] = make_werner(f_in);
    const auto [sa, sb] = make_werner(f_in);
    if (distill(reg_, ka, kb, sa, sb)) {
      ++successes;
      const QubitId kept[] = {ka, kb};
      metrics_sum_ +=
          reg_.fidelity(kept, bell::state_vector(BellState::kPsiPlus));
    }
    reg_.discard(ka);
    reg_.discard(kb);
    reg_.discard(sa);
    reg_.discard(sb);
  }
  ASSERT_GT(successes, 100);
  const double f_out = metrics_sum_ / successes;
  EXPECT_GT(f_out, f_in + 0.02);
  EXPECT_NEAR(f_out, bbpssw_output_fidelity(f_in), 0.03);
  EXPECT_NEAR(static_cast<double>(successes) / trials,
              bbpssw_success_probability(f_in), 0.06);
}

TEST_F(ProtocolsTest, DistillCannotImprovePerfectPairs) {
  const auto [ka, kb] = make_pair(BellState::kPsiPlus);
  const auto [sa, sb] = make_pair(BellState::kPsiPlus);
  EXPECT_TRUE(distill(reg_, ka, kb, sa, sb));
  const QubitId kept[] = {ka, kb};
  EXPECT_NEAR(reg_.fidelity(kept, bell::state_vector(BellState::kPsiPlus)),
              1.0, 1e-9);
}

TEST_F(ProtocolsTest, BbpsswFormulaFixedPoints) {
  // F = 1 is a fixed point; F = 1/4 (fully mixed) is too.
  EXPECT_NEAR(bbpssw_output_fidelity(1.0), 1.0, 1e-12);
  EXPECT_NEAR(bbpssw_output_fidelity(0.25), 0.25, 1e-12);
  // Improvement iff F > 1/2.
  EXPECT_GT(bbpssw_output_fidelity(0.7), 0.7);
  EXPECT_GT(bbpssw_output_fidelity(0.9), 0.9);
  EXPECT_LT(bbpssw_output_fidelity(0.4), 0.41);
  EXPECT_THROW(bbpssw_output_fidelity(1.5), std::invalid_argument);
}

}  // namespace
}  // namespace qlink::quantum::protocols
