#include <gtest/gtest.h>

#include "core/network.hpp"

/// Delivery-semantics corners of the EGP service interface: the
/// consecutive/atomic flags (Section 4.1.1 items 4-5), delivery without
/// storage, and the flow-control paths.

namespace qlink::core {
namespace {

class EgpDeliveryTest : public ::testing::Test {
 protected:
  static LinkConfig lab(std::uint64_t seed) {
    LinkConfig c;
    c.scenario = hw::ScenarioParams::lab();
    c.seed = seed;
    return c;
  }

  void attach(Link& link) {
    link.egp_a().set_ok_handler([this](const OkMessage& ok) {
      ok_times_.push_back({ok, sim_now_});
    });
    link.egp_b().set_ok_handler([](const OkMessage&) {});
  }

  struct Timed {
    OkMessage ok;
    sim::SimTime at;
  };
  std::vector<Timed> ok_times_;
  sim::SimTime sim_now_ = 0;
};

TEST_F(EgpDeliveryTest, NonConsecutiveDeliversAllOksAtCompletion) {
  Link link(lab(61));
  std::vector<std::pair<std::uint16_t, sim::SimTime>> deliveries;
  link.egp_a().set_ok_handler([&](const OkMessage& ok) {
    deliveries.push_back({ok.pair_index, link.simulator().now()});
  });
  link.egp_b().set_ok_handler([](const OkMessage&) {});
  link.start();

  CreateRequest r;
  r.type = RequestType::kCreateMeasure;
  r.num_pairs = 3;
  r.min_fidelity = 0.6;
  r.priority = Priority::kMeasureDirectly;
  r.consecutive = false;  // one OK batch when the whole request completes
  link.egp_a().create(r);
  link.run_for(sim::duration::seconds(5));

  ASSERT_EQ(deliveries.size(), 3u);
  // All three OKs carry the same delivery timestamp (flushed together),
  // in pair order.
  EXPECT_EQ(deliveries[0].second, deliveries[2].second);
  EXPECT_EQ(deliveries[0].first, 0);
  EXPECT_EQ(deliveries[1].first, 1);
  EXPECT_EQ(deliveries[2].first, 2);
}

TEST_F(EgpDeliveryTest, ConsecutiveDeliversAsProduced) {
  Link link(lab(62));
  std::vector<sim::SimTime> times;
  link.egp_a().set_ok_handler([&](const OkMessage&) {
    times.push_back(link.simulator().now());
  });
  link.egp_b().set_ok_handler([](const OkMessage&) {});
  link.start();

  CreateRequest r;
  r.type = RequestType::kCreateMeasure;
  r.num_pairs = 3;
  r.min_fidelity = 0.6;
  r.priority = Priority::kMeasureDirectly;
  r.consecutive = true;
  link.egp_a().create(r);
  link.run_for(sim::duration::seconds(5));

  ASSERT_EQ(times.size(), 3u);
  EXPECT_LT(times[0], times[1]);
  EXPECT_LT(times[1], times[2]);
}

TEST_F(EgpDeliveryTest, AtomicSinglePairDeliversWithQubit) {
  Link link(lab(63));
  std::vector<OkMessage> oks;
  link.egp_a().set_ok_handler([&](const OkMessage& ok) { oks.push_back(ok); });
  link.egp_b().set_ok_handler([&link](const OkMessage& ok) {
    link.egp_b().release_delivered(ok);
  });
  link.start();

  CreateRequest r;
  r.type = RequestType::kCreateKeep;
  r.num_pairs = 1;
  r.atomic = true;  // fits: one memory qubit
  r.min_fidelity = 0.6;
  r.priority = Priority::kCreateKeep;
  r.consecutive = true;
  r.store_in_memory = true;
  link.egp_a().create(r);
  link.run_for(sim::duration::seconds(5));
  ASSERT_EQ(oks.size(), 1u);
  EXPECT_EQ(oks.front().logical_qubit_id, 0);
  EXPECT_NE(oks.front().qubit, 0u);
}

TEST_F(EgpDeliveryTest, UnstoredKeepPairBlocksCommUntilReleased) {
  // Memory advertisements keep the peer from attempting one-sidedly
  // while our comm qubit is occupied (and from expiring the request via
  // the one-sided error recovery).
  LinkConfig cfg = lab(64);
  cfg.mem_advert_interval = sim::duration::microseconds(100);
  Link link(cfg);
  std::vector<OkMessage> oks_a;
  link.egp_a().set_ok_handler([&](const OkMessage& ok) { oks_a.push_back(ok); });
  link.egp_b().set_ok_handler([&link](const OkMessage& ok) {
    link.egp_b().release_delivered(ok);
  });
  link.start();

  CreateRequest r;
  r.type = RequestType::kCreateKeep;
  r.num_pairs = 2;
  r.min_fidelity = 0.6;
  r.priority = Priority::kCreateKeep;
  r.consecutive = true;
  r.store_in_memory = false;  // deliver in the communication qubit
  link.egp_a().create(r);
  link.run_for(sim::duration::seconds(4));

  // Pair 1 occupies A's comm qubit: pair 2 cannot be produced until the
  // application releases it.
  ASSERT_EQ(oks_a.size(), 1u);
  EXPECT_EQ(oks_a.front().logical_qubit_id, -1);
  link.egp_a().release_delivered(oks_a.front());
  link.run_for(sim::duration::seconds(4));
  EXPECT_EQ(oks_a.size(), 2u);
}

TEST_F(EgpDeliveryTest, FlowControlPausesWhenPeerAdvertisesNoMemory) {
  LinkConfig cfg = lab(65);
  cfg.mem_advert_interval = sim::duration::microseconds(200);
  Link link(cfg);
  std::vector<OkMessage> oks_a;
  std::vector<OkMessage> oks_b;
  link.egp_a().set_ok_handler([&](const OkMessage& ok) { oks_a.push_back(ok); });
  link.egp_b().set_ok_handler([&](const OkMessage& ok) { oks_b.push_back(ok); });
  link.start();

  // Occupy B's only memory slot so its advertisements say 0 free.
  const auto slot = link.egp_b().qmm().reserve_memory();
  ASSERT_TRUE(slot.has_value());

  CreateRequest r;
  r.type = RequestType::kCreateKeep;
  r.num_pairs = 1;
  r.min_fidelity = 0.6;
  r.priority = Priority::kCreateKeep;
  r.consecutive = true;
  r.store_in_memory = true;
  link.egp_a().create(r);
  link.run_for(sim::duration::seconds(3));
  // A refuses to generate while the peer has no room.
  EXPECT_TRUE(oks_a.empty());
  EXPECT_EQ(link.egp_a().stats().attempts, 0u);

  // Free the slot: generation resumes.
  link.egp_b().qmm().release_memory(*slot);
  link.run_for(sim::duration::seconds(5));
  EXPECT_EQ(oks_a.size(), 1u);
}

TEST_F(EgpDeliveryTest, TwoMemoryQubitsAllowTwoStoredPairs) {
  LinkConfig cfg = lab(66);
  cfg.scenario.nv.num_memory_qubits = 2;
  Link link(cfg);
  std::vector<OkMessage> oks_a;
  std::vector<OkMessage> oks_b;
  link.egp_a().set_ok_handler([&](const OkMessage& ok) { oks_a.push_back(ok); });
  link.egp_b().set_ok_handler([&](const OkMessage& ok) { oks_b.push_back(ok); });
  link.start();

  CreateRequest r;
  r.type = RequestType::kCreateKeep;
  r.num_pairs = 2;
  r.atomic = true;  // both pairs alive simultaneously
  r.min_fidelity = 0.6;
  r.priority = Priority::kCreateKeep;
  r.consecutive = false;
  r.store_in_memory = true;
  link.egp_a().create(r);
  link.run_for(sim::duration::seconds(20));

  ASSERT_EQ(oks_a.size(), 2u);
  EXPECT_NE(oks_a[0].logical_qubit_id, oks_a[1].logical_qubit_id);
  // Both pairs exist concurrently in distinct carbons at both ends.
  ASSERT_EQ(oks_b.size(), 2u);
  EXPECT_NE(oks_b[0].qubit, oks_b[1].qubit);
}

}  // namespace
}  // namespace qlink::core
