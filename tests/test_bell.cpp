#include <gtest/gtest.h>

#include <cmath>

#include "quantum/bell.hpp"
#include "quantum/channels.hpp"
#include "quantum/density_matrix.hpp"

namespace qlink::quantum::bell {
namespace {

using gates::Basis;

TEST(Bell, StatesAreNormalisedAndOrthogonal) {
  const BellState all[] = {BellState::kPhiPlus, BellState::kPhiMinus,
                           BellState::kPsiPlus, BellState::kPsiMinus};
  for (BellState a : all) {
    for (BellState b : all) {
      const Complex ip = inner(state_vector(a), state_vector(b));
      EXPECT_NEAR(std::abs(ip), a == b ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Bell, LocalPauliTransformsBetweenBellStates) {
  // Eq. 13: |Psi+> = X_A |Phi+>, |Phi-> = Z_A |Phi+>, |Psi-> = Z_A X_A |Phi+>.
  DensityMatrix rho = DensityMatrix::from_pure(
      state_vector(BellState::kPhiPlus));
  const int a[] = {0};
  rho.apply_unitary(gates::x(), a);
  EXPECT_NEAR(fidelity(rho, BellState::kPsiPlus), 1.0, 1e-12);
  rho.apply_unitary(gates::z(), a);
  EXPECT_NEAR(fidelity(rho, BellState::kPsiMinus), 1.0, 1e-12);
}

TEST(Bell, PsiMinusToPsiPlusViaZ) {
  // The EGP's correction: a Z on one side converts |Psi-> to |Psi+>.
  DensityMatrix rho = DensityMatrix::from_pure(
      state_vector(BellState::kPsiMinus));
  const int a[] = {0};
  rho.apply_unitary(gates::z(), a);
  EXPECT_NEAR(fidelity(rho, BellState::kPsiPlus), 1.0, 1e-12);
}

TEST(Bell, CorrelationTableMatchesPaper) {
  // Appendix A.2: |Phi+> correlated in X and Z, anti-correlated in Y;
  // |Psi-> anti-correlated in all three.
  EXPECT_TRUE(ideal_outcomes_equal(BellState::kPhiPlus, Basis::kX));
  EXPECT_FALSE(ideal_outcomes_equal(BellState::kPhiPlus, Basis::kY));
  EXPECT_TRUE(ideal_outcomes_equal(BellState::kPhiPlus, Basis::kZ));
  EXPECT_FALSE(ideal_outcomes_equal(BellState::kPsiMinus, Basis::kX));
  EXPECT_FALSE(ideal_outcomes_equal(BellState::kPsiMinus, Basis::kY));
  EXPECT_FALSE(ideal_outcomes_equal(BellState::kPsiMinus, Basis::kZ));
  EXPECT_TRUE(ideal_outcomes_equal(BellState::kPsiPlus, Basis::kX));
  EXPECT_TRUE(ideal_outcomes_equal(BellState::kPsiPlus, Basis::kY));
  EXPECT_FALSE(ideal_outcomes_equal(BellState::kPsiPlus, Basis::kZ));
}

TEST(Bell, PerfectStateHasZeroQber) {
  for (BellState s : {BellState::kPsiPlus, BellState::kPsiMinus,
                      BellState::kPhiPlus, BellState::kPhiMinus}) {
    const DensityMatrix rho = DensityMatrix::from_pure(state_vector(s));
    for (Basis b : {Basis::kX, Basis::kY, Basis::kZ}) {
      EXPECT_NEAR(qber(rho, s, b), 0.0, 1e-12)
          << name(s) << " basis " << gates::basis_name(b);
    }
  }
}

TEST(Bell, QberFidelityRelationEq16) {
  // For a dephased |Psi->, F = 1 - (QBER_X + QBER_Y + QBER_Z)/2 must hold
  // exactly (Eq. 16).
  DensityMatrix rho = DensityMatrix::from_pure(
      state_vector(BellState::kPsiMinus));
  const int a[] = {0};
  rho.apply_kraus(channels::dephasing(0.13), a);
  const double f = fidelity(rho, BellState::kPsiMinus);
  const double reconstructed = fidelity_from_qbers(
      qber(rho, BellState::kPsiMinus, Basis::kX),
      qber(rho, BellState::kPsiMinus, Basis::kY),
      qber(rho, BellState::kPsiMinus, Basis::kZ));
  EXPECT_NEAR(f, reconstructed, 1e-12);
}

TEST(Bell, QberFidelityRelationHoldsForAllBellStates) {
  for (BellState s : {BellState::kPhiPlus, BellState::kPhiMinus,
                      BellState::kPsiPlus, BellState::kPsiMinus}) {
    DensityMatrix rho = DensityMatrix::from_pure(state_vector(s));
    const int a[] = {0};
    const int b[] = {1};
    rho.apply_kraus(channels::depolarizing(0.92), a);
    rho.apply_kraus(channels::amplitude_damping(0.05), b);
    const double reconstructed =
        fidelity_from_qbers(qber(rho, s, Basis::kX), qber(rho, s, Basis::kY),
                            qber(rho, s, Basis::kZ));
    EXPECT_NEAR(fidelity(rho, s), reconstructed, 1e-10) << name(s);
  }
}

TEST(Bell, BitFlipNoiseShowsUpInZQber) {
  // Eq. 14: a bit flip with p_err on one half of |Psi-> flips the Z
  // correlation with probability p_err.
  DensityMatrix rho = DensityMatrix::from_pure(
      state_vector(BellState::kPsiMinus));
  const double p_err = 0.2;
  const std::vector<Matrix> bitflip = {
      gates::i2() * Complex{std::sqrt(1 - p_err), 0.0},
      gates::x() * Complex{std::sqrt(p_err), 0.0}};
  const int a[] = {0};
  rho.apply_kraus(bitflip, a);
  EXPECT_NEAR(qber(rho, BellState::kPsiMinus, Basis::kZ), p_err, 1e-12);
  // X correlation unaffected by X noise on |Psi->.
  EXPECT_NEAR(qber(rho, BellState::kPsiMinus, Basis::kX), 0.0, 1e-12);
}

TEST(Bell, MaximallyMixedStateHasQberHalf) {
  DensityMatrix rho(2);
  const int a[] = {0};
  const int b[] = {1};
  rho.apply_kraus(channels::depolarizing(0.25), a);
  rho.apply_kraus(channels::depolarizing(0.25), b);
  for (Basis basis : {Basis::kX, Basis::kY, Basis::kZ}) {
    EXPECT_NEAR(qber(rho, BellState::kPsiPlus, basis), 0.5, 1e-12);
  }
  EXPECT_NEAR(fidelity(rho, BellState::kPsiPlus), 0.25, 1e-12);
}

TEST(Bell, QberRequiresTwoQubits) {
  DensityMatrix rho(1);
  EXPECT_THROW(qber(rho, BellState::kPsiPlus, Basis::kZ),
               std::invalid_argument);
}

TEST(Bell, Names) {
  EXPECT_STREQ(name(BellState::kPsiPlus), "Psi+");
  EXPECT_STREQ(name(BellState::kPhiMinus), "Phi-");
}

}  // namespace
}  // namespace qlink::quantum::bell
