#include <gtest/gtest.h>

#include "net/crc.hpp"
#include "net/packets.hpp"
#include "net/wire.hpp"

namespace qlink::net {
namespace {

TEST(Crc32, KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE 802.3).
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyInput) {
  EXPECT_EQ(crc32(std::span<const std::uint8_t>{}), 0x00000000u);
}

TEST(Wire, RoundTripsAllTypes) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.14159);
  w.boolean(true);
  const auto bytes = w.take();

  ByteReader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Wire, TruncationThrows) {
  ByteWriter w;
  w.u16(7);
  const auto bytes = w.take();
  ByteReader r(bytes);
  r.u8();
  EXPECT_THROW(r.u16(), WireError);
}

TEST(Wire, ExpectEndCatchesTrailingBytes) {
  ByteWriter w;
  w.u32(1);
  const auto bytes = w.take();
  ByteReader r(bytes);
  r.u16();
  EXPECT_THROW(r.expect_end(), WireError);
}

TEST(Packets, GenRoundTrip) {
  GenPacket p;
  p.node_id = 1;
  p.cycle = 987654321;
  p.aid = {2, 77};
  p.pair_index = 3;
  p.request_type = 1;
  p.m_basis = 2;
  p.alpha = 0.137;
  const GenPacket q = GenPacket::decode(p.encode());
  EXPECT_EQ(q.node_id, p.node_id);
  EXPECT_EQ(q.cycle, p.cycle);
  EXPECT_EQ(q.aid, p.aid);
  EXPECT_EQ(q.pair_index, p.pair_index);
  EXPECT_EQ(q.request_type, p.request_type);
  EXPECT_EQ(q.m_basis, p.m_basis);
  EXPECT_DOUBLE_EQ(q.alpha, p.alpha);
}

TEST(Packets, ReplyRoundTrip) {
  ReplyPacket p;
  p.outcome = 2;
  p.error = MhpError::kQueueMismatch;
  p.seq_mhp = 424242;
  p.aid_receiver = {1, 5};
  p.aid_peer = {1, 6};
  p.pair_index = 9;
  p.cycle = 1234567890123ull;
  p.m_basis = 1;
  p.m_outcome = 0;
  p.m_outcome_peer = 1;
  const ReplyPacket q = ReplyPacket::decode(p.encode());
  EXPECT_EQ(q.outcome, p.outcome);
  EXPECT_EQ(q.error, p.error);
  EXPECT_EQ(q.seq_mhp, p.seq_mhp);
  EXPECT_EQ(q.aid_receiver, p.aid_receiver);
  EXPECT_EQ(q.aid_peer, p.aid_peer);
  EXPECT_EQ(q.cycle, p.cycle);
  EXPECT_EQ(q.m_outcome, 0);
  EXPECT_EQ(q.m_outcome_peer, 1);
}

TEST(Packets, DqpRoundTripWithAllFlags) {
  DqpPacket p;
  p.frame_type = DqpFrameType::kAck;
  p.comm_seq = 11;
  p.aid = {0, 300};
  p.schedule_cycle = 5000;
  p.timeout_cycle = 99999;
  p.min_fidelity = 0.64;
  p.purpose_id = 17;
  p.create_id = 255;
  p.num_pairs = 3;
  p.priority = 2;
  p.store = true;
  p.atomic = true;
  p.measure_directly = false;
  p.master_request = true;
  p.consecutive = true;
  p.init_virtual_finish = 123.5;
  p.est_cycles_per_pair = 4321;
  p.origin_node = 1;
  p.create_time_ns = 777777;
  p.max_time_ns = 5000000000ll;
  p.reject_reason = DqpRejectReason::kQueueFull;
  const DqpPacket q = DqpPacket::decode(p.encode());
  EXPECT_EQ(q.frame_type, p.frame_type);
  EXPECT_EQ(q.comm_seq, p.comm_seq);
  EXPECT_EQ(q.aid, p.aid);
  EXPECT_EQ(q.schedule_cycle, p.schedule_cycle);
  EXPECT_EQ(q.timeout_cycle, p.timeout_cycle);
  EXPECT_DOUBLE_EQ(q.min_fidelity, p.min_fidelity);
  EXPECT_EQ(q.purpose_id, p.purpose_id);
  EXPECT_EQ(q.create_id, p.create_id);
  EXPECT_EQ(q.num_pairs, p.num_pairs);
  EXPECT_EQ(q.priority, p.priority);
  EXPECT_EQ(q.store, p.store);
  EXPECT_EQ(q.atomic, p.atomic);
  EXPECT_EQ(q.measure_directly, p.measure_directly);
  EXPECT_EQ(q.master_request, p.master_request);
  EXPECT_EQ(q.consecutive, p.consecutive);
  EXPECT_DOUBLE_EQ(q.init_virtual_finish, p.init_virtual_finish);
  EXPECT_EQ(q.est_cycles_per_pair, p.est_cycles_per_pair);
  EXPECT_EQ(q.origin_node, p.origin_node);
  EXPECT_EQ(q.create_time_ns, p.create_time_ns);
  EXPECT_EQ(q.max_time_ns, p.max_time_ns);
  EXPECT_EQ(q.reject_reason, p.reject_reason);
}

TEST(Packets, ExpireRoundTrip) {
  ExpirePacket p;
  p.aid = {2, 9};
  p.origin_id = 0;
  p.create_id = 4;
  p.seq_low = 10;
  p.seq_high = 15;
  p.new_expected_seq = 16;
  const ExpirePacket q = ExpirePacket::decode(p.encode());
  EXPECT_EQ(q.aid, p.aid);
  EXPECT_EQ(q.seq_low, 10u);
  EXPECT_EQ(q.seq_high, 15u);
  EXPECT_EQ(q.new_expected_seq, 16u);
}

TEST(Packets, ExpireAckAndMemAdvertRoundTrip) {
  ExpireAckPacket a;
  a.aid = {1, 2};
  a.expected_seq = 33;
  const ExpireAckPacket a2 = ExpireAckPacket::decode(a.encode());
  EXPECT_EQ(a2.aid, a.aid);
  EXPECT_EQ(a2.expected_seq, 33u);

  MemAdvertPacket m;
  m.is_ack = true;
  m.comm_free = 1;
  m.storage_free = 7;
  const MemAdvertPacket m2 = MemAdvertPacket::decode(m.encode());
  EXPECT_TRUE(m2.is_ack);
  EXPECT_EQ(m2.storage_free, 7);
}

TEST(Packets, SealUnsealRoundTrip) {
  GenPacket p;
  p.node_id = 3;
  p.alpha = 0.25;
  const auto framed = seal(PacketType::kMhpGen, p.encode());
  const auto frame = unseal(framed);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, PacketType::kMhpGen);
  const GenPacket q = GenPacket::decode(frame->payload);
  EXPECT_EQ(q.node_id, 3u);
}

TEST(Packets, UnsealRejectsCorruption) {
  GenPacket p;
  auto framed = seal(PacketType::kMhpGen, p.encode());
  framed[3] ^= 0x01;  // flip one payload bit
  EXPECT_FALSE(unseal(framed).has_value());
}

TEST(Packets, UnsealRejectsCorruptCrc) {
  GenPacket p;
  auto framed = seal(PacketType::kMhpGen, p.encode());
  framed.back() ^= 0xFF;
  EXPECT_FALSE(unseal(framed).has_value());
}

TEST(Packets, UnsealRejectsTinyFrames) {
  const std::vector<std::uint8_t> tiny{1, 2, 3};
  EXPECT_FALSE(unseal(tiny).has_value());
}

TEST(Packets, DecodeRejectsTruncatedPayload) {
  GenPacket p;
  auto payload = p.encode();
  payload.pop_back();
  EXPECT_THROW(GenPacket::decode(payload), WireError);
}

TEST(Packets, AbsoluteQueueIdOrdering) {
  const AbsoluteQueueId a{0, 5};
  const AbsoluteQueueId b{0, 6};
  const AbsoluteQueueId c{1, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (AbsoluteQueueId{0, 5}));
}

}  // namespace
}  // namespace qlink::net
