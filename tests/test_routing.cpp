#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "qstate/bell_algebra.hpp"
#include "routing/graph.hpp"
#include "routing/path_selector.hpp"
#include "routing/reservation.hpp"

/// Unit tests for the routing subsystem's pure pieces: graph model and
/// generators, k-shortest path selection under the three cost models,
/// and the reservation table's admission / blocked-retry mechanics.
/// Router-over-QuantumNetwork integration lives in test_netlayer.cpp.

namespace qlink::routing {
namespace {

TEST(RoutingGraph, ValidatesEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(2, 2), std::invalid_argument);  // self-loop
  EXPECT_THROW(g.add_edge(0, 4), std::invalid_argument);  // unknown id
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);  // duplicate
  EdgeParams zero;
  zero.capacity = 0;
  EXPECT_THROW(g.add_edge(2, 3, zero), std::invalid_argument);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_THROW(Graph(1), std::invalid_argument);
}

TEST(RoutingGraph, GeneratorShapes) {
  const Graph chain = Graph::chain(5);
  EXPECT_EQ(chain.num_nodes(), 5u);
  EXPECT_EQ(chain.num_edges(), 4u);
  EXPECT_TRUE(chain.connected());

  const Graph ring = Graph::ring(6);
  EXPECT_EQ(ring.num_edges(), 6u);
  for (std::uint32_t n = 0; n < 6; ++n) {
    EXPECT_EQ(ring.neighbors(n).size(), 2u);
  }

  const Graph star = Graph::star(4);
  EXPECT_EQ(star.num_nodes(), 5u);
  EXPECT_EQ(star.neighbors(0).size(), 4u);

  const Graph grid = Graph::grid(3, 4);
  EXPECT_EQ(grid.num_nodes(), 12u);
  // 3 rows x 3 horizontal + 2 x 4 vertical.
  EXPECT_EQ(grid.num_edges(), 3u * 3u + 2u * 4u);
  EXPECT_TRUE(grid.connected());
  EXPECT_NE(grid.find_edge(0, 1), Graph::npos);
  EXPECT_NE(grid.find_edge(0, 4), Graph::npos);
  EXPECT_EQ(grid.find_edge(0, 5), Graph::npos);

  const Graph torus = Graph::torus(3, 4);
  // Grid edges + 3 row wraps + 4 column wraps; every node degree 4.
  EXPECT_EQ(torus.num_edges(), 17u + 3u + 4u);
  for (std::uint32_t n = 0; n < 12; ++n) {
    EXPECT_EQ(torus.neighbors(n).size(), 4u);
  }
  // A torus of extent 2 in one dimension must not duplicate the mesh
  // edge with a wrap: only the extent-3 dimension gets its two wraps.
  const Graph thin = Graph::torus(2, 3);
  EXPECT_EQ(thin.num_edges(), 7u + 2u);

  const Graph fly = Graph::dragonfly(4, 3);
  EXPECT_EQ(fly.num_nodes(), 12u);
  // 4 groups x C(3,2) intra + C(4,2) global.
  EXPECT_EQ(fly.num_edges(), 4u * 3u + 6u);
  EXPECT_TRUE(fly.connected());
}

TEST(PathSelector, HopCountShortestOnRing) {
  const Graph ring = Graph::ring(6);
  const PathSelector sel(ring, CostModel::kHopCount);
  const auto best = sel.shortest(0, 5);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->hops(), 1u);  // the closing edge 5-0
  EXPECT_EQ(best->nodes, (std::vector<std::uint32_t>{0, 5}));

  // k = 2 surfaces the long way around as well.
  const auto both = sel.k_shortest(0, 5, 2);
  ASSERT_EQ(both.size(), 2u);
  EXPECT_EQ(both[0].hops(), 1u);
  EXPECT_EQ(both[1].hops(), 5u);
  EXPECT_EQ(both[1].nodes, (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_LE(both[0].cost, both[1].cost);

  EXPECT_THROW(sel.shortest(0, 0), std::invalid_argument);
  EXPECT_THROW(sel.shortest(0, 9), std::invalid_argument);
}

TEST(PathSelector, KShortestAreSimpleAndOrdered) {
  const Graph grid = Graph::grid(3, 3);
  const PathSelector sel(grid, CostModel::kHopCount);
  const auto paths = sel.k_shortest(0, 8, 6);
  ASSERT_EQ(paths.size(), 6u);  // corner-to-corner: six 4-hop routes
  for (const Path& p : paths) {
    EXPECT_EQ(p.hops(), 4u);
    EXPECT_EQ(p.src(), 0u);
    EXPECT_EQ(p.dst(), 8u);
    // Simple: no node repeats.
    std::vector<std::uint32_t> nodes = p.nodes;
    std::sort(nodes.begin(), nodes.end());
    EXPECT_EQ(std::adjacent_find(nodes.begin(), nodes.end()), nodes.end());
  }
  // Distinct edge sequences.
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_NE(paths[i].edges, paths[j].edges);
    }
  }
}

TEST(PathSelector, NoPathAcrossDisconnectedComponents) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const PathSelector sel(g);
  EXPECT_FALSE(sel.shortest(0, 3).has_value());
  EXPECT_TRUE(sel.k_shortest(0, 3, 3).empty());
  EXPECT_FALSE(g.connected());
}

TEST(PathSelector, FidelityModelPrefersCleanDetour) {
  // Ring of 6, endpoints 0 and 3: both ways are 3 hops, but the
  // low-numbered side is degraded. Hop count ties (and its
  // deterministic tie-break takes the degraded side); the fidelity
  // model must pay the identical hop count for the clean side.
  EdgeParams clean;
  clean.fidelity = 0.9;
  Graph ring = Graph::ring(6, clean);
  for (const auto [a, b] : {std::pair{0u, 1u}, {1u, 2u}, {2u, 3u}}) {
    ring.params(ring.find_edge(a, b)).fidelity = 0.6;
  }

  const PathSelector hops(ring, CostModel::kHopCount);
  const auto hop_path = hops.shortest(0, 3);
  ASSERT_TRUE(hop_path.has_value());
  EXPECT_EQ(hop_path->nodes, (std::vector<std::uint32_t>{0, 1, 2, 3}));

  const PathSelector fid(ring, CostModel::kFidelity);
  const auto fid_path = fid.shortest(0, 3);
  ASSERT_TRUE(fid_path.has_value());
  EXPECT_EQ(fid_path->nodes, (std::vector<std::uint32_t>{0, 5, 4, 3}));
  EXPECT_GT(PathSelector::estimated_fidelity(ring, *fid_path),
            PathSelector::estimated_fidelity(ring, *hop_path));
}

TEST(PathSelector, EstimatedFidelityMatchesSwapAlgebra) {
  // Two hops at Werner fidelities f1, f2 compose through the Bell
  // XOR-convolution; the closed form for Werner inputs is
  // F = f1 f2 + (1 - f1)(1 - f2) / 3.
  EdgeParams e1, e2;
  e1.fidelity = 0.9;
  e2.fidelity = 0.8;
  Graph chain(3);
  chain.add_edge(0, 1, e1);
  chain.add_edge(1, 2, e2);
  const PathSelector sel(chain, CostModel::kFidelity);
  const auto path = sel.shortest(0, 2);
  ASSERT_TRUE(path.has_value());
  const double expected = 0.9 * 0.8 + (0.1 * 0.2) / 3.0;
  EXPECT_NEAR(PathSelector::estimated_fidelity(chain, *path), expected,
              1e-12);
  // Single hop: the estimate is the edge fidelity itself.
  Path one;
  one.edges = {0};
  one.nodes = {0, 1};
  EXPECT_NEAR(PathSelector::estimated_fidelity(chain, one), 0.9, 1e-12);
}

TEST(PathSelector, LatencyModelAvoidsSlowLinks) {
  // 0-1-2 fast detour vs direct slow 0-2.
  EdgeParams fast, slow;
  fast.pair_time_s = 0.01;
  slow.pair_time_s = 0.2;
  Graph g(3);
  g.add_edge(0, 1, fast);
  g.add_edge(1, 2, fast);
  g.add_edge(0, 2, slow);
  const PathSelector lat(g, CostModel::kLatency);
  const auto path = lat.shortest(0, 2);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops(), 2u);
  EXPECT_NEAR(PathSelector::estimated_latency_s(g, *path), 0.02, 1e-12);
  // Hop count would take the direct edge.
  const PathSelector hops(g, CostModel::kHopCount);
  EXPECT_EQ(hops.shortest(0, 2)->hops(), 1u);
}

TEST(ReservationTable, EdgeDisjointAdmission) {
  const Graph grid = Graph::grid(3, 3);
  ReservationTable table(grid);
  const PathSelector sel(grid, CostModel::kHopCount);

  const auto top = sel.shortest(0, 2);      // row 0
  const auto bottom = sel.shortest(6, 8);   // row 2
  ASSERT_TRUE(top && bottom);
  const auto t1 = table.try_reserve(top->edges);
  ASSERT_TRUE(t1.has_value());
  // Same edges again: at capacity.
  EXPECT_FALSE(table.can_reserve(top->edges));
  EXPECT_FALSE(table.try_reserve(top->edges).has_value());
  // Disjoint path: fine.
  const auto t2 = table.try_reserve(bottom->edges);
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(table.active(), 2u);
  EXPECT_EQ(table.max_active(), 2u);

  table.release(*t1);
  EXPECT_TRUE(table.can_reserve(top->edges));
  EXPECT_EQ(table.active(), 1u);
  EXPECT_EQ(table.max_active(), 2u);
  EXPECT_THROW(table.release(*t1), std::invalid_argument);  // double free
}

TEST(ReservationTable, CapacityAboveOneAdmitsConcurrency) {
  EdgeParams wide;
  wide.capacity = 2;
  const Graph chain = Graph::chain(3, wide);
  ReservationTable table(chain);
  const std::vector<std::size_t> path{0, 1};
  const auto t1 = table.try_reserve(path);
  const auto t2 = table.try_reserve(path);
  ASSERT_TRUE(t1 && t2);
  EXPECT_EQ(table.in_use(0), 2u);
  EXPECT_FALSE(table.try_reserve(path).has_value());
  table.release(*t2);
  EXPECT_TRUE(table.try_reserve(path).has_value());
}

TEST(ReservationTable, RejectsNonSimplePaths) {
  const Graph chain = Graph::chain(3);
  ReservationTable table(chain);
  const std::vector<std::size_t> looped{0, 0, 1};
  EXPECT_THROW(table.try_reserve(looped), std::invalid_argument);
  EXPECT_THROW(table.try_reserve(std::vector<std::size_t>{}),
               std::invalid_argument);
  EXPECT_EQ(table.in_use(0), 0u);  // nothing was partially reserved
}

TEST(ReservationTable, TimeSlicedLeasesAdmitDisjointWindows) {
  const Graph chain = Graph::chain(3);
  ReservationTable table(chain);
  const std::vector<std::size_t> path{0, 1};

  // A lease for [0, 100): the edges are busy inside the window ...
  const auto first = table.try_reserve(path, /*now=*/0, /*duration=*/100);
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(table.can_reserve(path, 50));
  EXPECT_FALSE(table.try_reserve(path, 99, 100).has_value());
  EXPECT_EQ(table.next_expiry(), table.next_expiry_scan());
  // ... and free at its end even though the holder has not released:
  // a second request sharing the edges at a disjoint time admits.
  EXPECT_TRUE(table.can_reserve(path, 100));
  const auto second = table.try_reserve(path, /*now=*/100, /*duration=*/50);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(table.active(), 2u);  // both tickets still held
  EXPECT_EQ(table.next_expiry(), table.next_expiry_scan());

  // Overrunning holders still release cleanly (their lapsed lease
  // entries are simply gone), and nothing double-frees.
  EXPECT_EQ(table.expire_until(120), 2u);  // first's two edge leases
  EXPECT_EQ(table.lease_expiries(), 2u);
  EXPECT_EQ(table.next_expiry(), table.next_expiry_scan());
  table.release(*first);
  table.release(*second);
  EXPECT_EQ(table.active(), 0u);
  EXPECT_EQ(table.in_use(0), 0u);
  EXPECT_EQ(table.next_expiry(), table.next_expiry_scan());
  EXPECT_FALSE(table.next_expiry().has_value());
  EXPECT_THROW(table.try_reserve(path, 0, 0), std::invalid_argument);
}

TEST(ReservationTable, FutureWindowBookingsBlockOverlappingAdmissions) {
  const Graph chain = Graph::chain(3);
  ReservationTable table(chain);
  const std::vector<std::size_t> path{0, 1};
  const std::vector<std::size_t> edge0{0};

  const auto held = table.try_reserve(path, /*now=*/0, /*duration=*/100);
  ASSERT_TRUE(held.has_value());
  // The earliest whole-window slot behind a [0, 100) lease is its end.
  EXPECT_EQ(table.earliest_window(path, 0, 50),
            std::optional<sim::SimTime>(100));
  const auto booked = table.reserve_at(path, 100, 50);
  ASSERT_TRUE(booked.has_value());
  EXPECT_EQ(table.in_use(0), 2u);
  EXPECT_EQ(table.next_expiry(), table.next_expiry_scan());

  // An instant admission whose window overlaps the booking is refused;
  // one fitting the gap after it admits.
  EXPECT_FALSE(table.try_reserve(edge0, 120, 50).has_value());
  EXPECT_FALSE(table.can_reserve(edge0, 120, 50));
  EXPECT_TRUE(table.can_reserve(edge0, 150, 50));
  // The next free whole-window slot is behind the booking...
  EXPECT_EQ(table.earliest_window(edge0, 0, 50),
            std::optional<sim::SimTime>(150));
  // ...but a shorter window still fits the gap in front of nothing: a
  // booking starting at the lease end leaves no gap on this edge, so
  // the earliest 1-tick slot after `now`=100 is also 150.
  EXPECT_EQ(table.earliest_window(edge0, 100, 1),
            std::optional<sim::SimTime>(150));

  // Unbounded pins never free a window.
  const auto pin = table.try_reserve(edge0, 150);
  ASSERT_TRUE(pin.has_value());
  EXPECT_FALSE(table.earliest_window(edge0, 150, 10).has_value());
  EXPECT_EQ(table.next_expiry(), table.next_expiry_scan());

  table.release(*held);
  table.release(*booked);
  table.release(*pin);
  EXPECT_EQ(table.next_expiry(), table.next_expiry_scan());
  EXPECT_THROW(table.reserve_at(path, -1, 10), std::invalid_argument);
}

TEST(ReservationTable, GreedyDrainCountsQueueJumps) {
  // C (older, wants edges {0, 1}) blocks on edge 1; D (younger, wants
  // {0}) admits the freed edge 0 under the greedy policy — a counted
  // queue jump, and a batch admission past the blocked elder.
  const Graph chain = Graph::chain(3);
  ReservationTable table(chain);
  const auto hold0 = table.try_reserve(std::vector<std::size_t>{0}, 0, 50);
  const auto hold1 = table.try_reserve(std::vector<std::size_t>{1}, 0, 100);
  ASSERT_TRUE(hold0 && hold1);

  std::vector<char> admitted;
  const auto want = [&table, &admitted](char name,
                                        std::vector<std::size_t> edges) {
    table.enqueue_blocked(
        [&table, &admitted, edges, name] {
          const auto t = table.try_reserve(edges, 50, 1000);
          if (!t) return false;
          admitted.push_back(name);
          return true;
        },
        edges);
  };
  want('C', {0, 1});
  want('D', {0});

  EXPECT_EQ(table.expire_until(50), 1u);  // edge 0 frees; edge 1 busy
  EXPECT_EQ(admitted, (std::vector<char>{'D'}));
  EXPECT_EQ(table.steals(), 1u);
  EXPECT_EQ(table.batch_admits(), 1u);
  EXPECT_EQ(table.hol_holds(), 0u);
  EXPECT_EQ(table.blocked(), 1u);  // C still parked
}

TEST(ReservationTable, PerEdgeFifoDrainHoldsConflictsAdmitsDisjoint) {
  // Same shape under the batch policy, plus a disjoint E: D is held
  // back (it shares edge 0 with the still-blocked elder C), while E
  // (edge 2, disjoint) admits in the same wakeup.
  const Graph chain = Graph::chain(4);
  ReservationTable table(chain);
  table.set_drain_policy(DrainPolicy::kPerEdgeFifo);
  const auto hold0 = table.try_reserve(std::vector<std::size_t>{0}, 0, 50);
  const auto hold1 = table.try_reserve(std::vector<std::size_t>{1}, 0, 100);
  const auto hold2 = table.try_reserve(std::vector<std::size_t>{2}, 0, 50);
  ASSERT_TRUE(hold0 && hold1 && hold2);

  std::vector<char> admitted;
  ReservationTable::Ticket got_c = 0;
  const auto want = [&table, &admitted, &got_c](
                        char name, std::vector<std::size_t> edges) {
    table.enqueue_blocked(
        [&table, &admitted, &got_c, edges, name] {
          const auto t = table.try_reserve(edges, 50, 1000);
          if (!t) return false;
          admitted.push_back(name);
          if (name == 'C') got_c = *t;
          return true;
        },
        edges);
  };
  want('C', {0, 1});
  want('D', {0});
  want('E', {2});

  EXPECT_EQ(table.expire_until(50), 2u);  // edges 0 and 2 free
  // D was withheld (conflict with C); E admitted batch-style.
  EXPECT_EQ(admitted, (std::vector<char>{'E'}));
  EXPECT_EQ(table.hol_holds(), 1u);
  EXPECT_EQ(table.steals(), 0u);
  EXPECT_EQ(table.batch_admits(), 1u);
  EXPECT_EQ(table.blocked(), 2u);

  // When edge 1 frees, FIFO within the conflicting set resumes: C
  // admits first, D queues behind C's fresh lease on edge 0.
  table.release(*hold1);
  EXPECT_EQ(admitted, (std::vector<char>{'E', 'C'}));
  EXPECT_EQ(table.blocked(), 1u);
  table.release(got_c);
  EXPECT_EQ(admitted, (std::vector<char>{'E', 'C', 'D'}));
  EXPECT_EQ(table.blocked(), 0u);
}

TEST(ReservationTable, FreshReservationOverBlockedFootprintCountsSteal) {
  const Graph chain = Graph::chain(4);
  ReservationTable table(chain);
  const auto hold1 = table.try_reserve(std::vector<std::size_t>{1});
  ASSERT_TRUE(hold1.has_value());
  table.enqueue_blocked([] { return false; },
                        std::vector<std::size_t>{0, 1});
  // A fresh out-of-queue admission touching the blocked footprint is a
  // queue jump; a disjoint one is not.
  const auto jump = table.try_reserve(std::vector<std::size_t>{0});
  ASSERT_TRUE(jump.has_value());
  EXPECT_EQ(table.steals(), 1u);
  const auto clean = table.try_reserve(std::vector<std::size_t>{2});
  ASSERT_TRUE(clean.has_value());
  EXPECT_EQ(table.steals(), 1u);
  // Booked future windows are scheduler promises, not jumps.
  table.release(*jump);
  const auto booked = table.reserve_at(std::vector<std::size_t>{0}, 10, 10);
  ASSERT_TRUE(booked.has_value());
  EXPECT_EQ(table.steals(), 1u);
}

TEST(ReservationTable, ExpiryRetriesBlockedQueue) {
  const Graph chain = Graph::chain(2);
  ReservationTable table(chain);
  const std::vector<std::size_t> path{0};
  const auto held = table.try_reserve(path, 0, 100);
  ASSERT_TRUE(held.has_value());
  ASSERT_EQ(table.next_expiry(), std::optional<sim::SimTime>(100));

  int admitted = 0;
  table.enqueue_blocked([&table, &admitted, path] {
    const auto t = table.try_reserve(path, 100, 100);
    if (!t) return false;
    ++admitted;
    return true;
  });
  EXPECT_EQ(admitted, 0);
  // The lease lapse alone — no release — wakes the blocked request.
  EXPECT_EQ(table.expire_until(100), 1u);
  EXPECT_EQ(admitted, 1);
  EXPECT_EQ(table.blocked(), 0u);
  EXPECT_EQ(table.next_expiry(), std::optional<sim::SimTime>(200));
  table.release(*held);  // lapsed but still held: release is fine
}

TEST(ReservationTable, BlockedRetryOrderSurvivesMixedWakeups) {
  // Regression: the old pop-front/push-back rotation left the queue
  // mid-rotation when a retry threw, so a later request could jump an
  // earlier one across mixed release/expiry wakeups. Pin the FIFO
  // order: A (wants edge 0), B (throws once), C (wants edge 0) must
  // admit as A-then-C no matter how the wakeups interleave.
  const Graph chain = Graph::chain(3);
  ReservationTable table(chain);
  const std::vector<std::size_t> edge0{0};
  const std::vector<std::size_t> edge1{1};
  const auto hold0 = table.try_reserve(edge0, 0, 100);   // lapses at 100
  const auto hold1 = table.try_reserve(edge1);           // pinned
  ASSERT_TRUE(hold0 && hold1);

  std::vector<char> admitted;
  sim::SimTime now = 0;
  const auto want_edge0 = [&table, &admitted, &now, edge0](char name) {
    return [&table, &admitted, &now, edge0, name] {
      const auto t = table.try_reserve(edge0, now, 1000);
      if (!t) return false;
      admitted.push_back(name);
      return true;
    };
  };
  bool threw = false;
  table.enqueue_blocked(want_edge0('A'));
  table.enqueue_blocked([&threw]() -> bool {
    if (!threw) {
      threw = true;
      throw std::runtime_error("poisoned retry");
    }
    return true;  // leaves the queue if ever retried again
  });
  table.enqueue_blocked(want_edge0('C'));

  // Wakeup 1 is a *release* (edge 1): A retries first but edge 0 is
  // still leased, B throws. C must stay behind A.
  EXPECT_THROW(table.release(*hold1), std::runtime_error);
  EXPECT_TRUE(admitted.empty());
  EXPECT_EQ(table.blocked(), 2u);

  // Wakeup 2 is a *lease expiry* (edge 0 lapses at t = 100): exactly
  // the older request A admits; C queues behind A's fresh lease.
  now = 100;
  EXPECT_EQ(table.expire_until(100), 1u);
  EXPECT_EQ(admitted, (std::vector<char>{'A'}));
  EXPECT_EQ(table.blocked(), 1u);

  // Wakeup 3, expiry again (A's lease ends at 1100): C's turn.
  now = 1100;
  table.expire_until(1100);
  EXPECT_EQ(admitted, (std::vector<char>{'A', 'C'}));
  EXPECT_EQ(table.blocked(), 0u);
}

TEST(ReservationTable, BlockedRequestsRetryOnRelease) {
  const Graph chain = Graph::chain(3);
  ReservationTable table(chain);
  const std::vector<std::size_t> path{0, 1};
  auto held = table.try_reserve(path);
  ASSERT_TRUE(held.has_value());

  // Two blocked requests in FIFO order; both want the same path, so
  // one release admits exactly the first.
  std::vector<int> admitted;
  ReservationTable::Ticket got = 0;
  for (int id : {1, 2}) {
    table.enqueue_blocked([&table, &admitted, &got, path, id] {
      const auto t = table.try_reserve(path);
      if (!t) return false;
      admitted.push_back(id);
      got = *t;
      return true;
    });
  }
  EXPECT_EQ(table.blocked(), 2u);
  EXPECT_TRUE(admitted.empty());  // nothing retries until a release

  table.release(*held);
  ASSERT_EQ(admitted, (std::vector<int>{1}));
  EXPECT_EQ(table.blocked(), 1u);

  table.release(got);
  EXPECT_EQ(admitted, (std::vector<int>{1, 2}));
  EXPECT_EQ(table.blocked(), 0u);
}

}  // namespace
}  // namespace qlink::routing
