#include <gtest/gtest.h>

#include <cmath>

#include "hw/herald_model.hpp"
#include "hw/nv_params.hpp"
#include "quantum/bell.hpp"

namespace qlink::hw {
namespace {

HeraldParams ideal_params() {
  HeraldParams p;
  p.p_double_excitation = 0.0;
  p.phase_sigma_rad_per_arm = 0.0;
  p.p_zero_phonon = 1.0;
  p.p_collection = 1.0;
  p.emission_tau_ns = 1e-9;  // window >> tau: no truncation loss
  p.detection_window_ns = 25.0;
  p.fiber_length_a_km = 0.0;
  p.fiber_length_b_km = 0.0;
  p.fiber_loss_db_per_km = 0.0;
  p.visibility = 1.0;
  p.detector_efficiency = 1.0;
  p.dark_count_rate_hz = 0.0;
  return p;
}

TEST(HeraldModel, ProbabilitiesFormDistribution) {
  const HeraldModel model(ScenarioParams::lab().herald);
  for (double alpha : {0.05, 0.1, 0.3, 0.5}) {
    const auto d = model.compute(alpha, alpha);
    EXPECT_GE(d.p_fail, 0.0);
    EXPECT_GE(d.p_psi_plus, 0.0);
    EXPECT_GE(d.p_psi_minus, 0.0);
    EXPECT_NEAR(d.p_fail + d.p_psi_plus + d.p_psi_minus, 1.0, 1e-9);
  }
}

TEST(HeraldModel, PostStatesAreValidDensityMatrices) {
  const HeraldModel model(ScenarioParams::lab().herald);
  const auto d = model.compute(0.2, 0.2);
  EXPECT_NEAR(d.post_psi_plus.trace_real(), 1.0, 1e-9);
  EXPECT_NEAR(d.post_psi_minus.trace_real(), 1.0, 1e-9);
  EXPECT_TRUE(d.post_psi_plus.matrix().is_hermitian(1e-9));
  EXPECT_LE(d.post_psi_plus.purity(), 1.0 + 1e-9);
}

TEST(HeraldModel, IdealCaseFidelityMatchesAnalyticFormula) {
  // With perfect optics a single click keeps the |Psi+/-> branch with
  // weight 2*alpha(1-alpha)/2 while the double-bright |00>_e|11>_P term
  // leaks into the same click with weight alpha^2 * (1+mu^2)/4; at mu = 1
  // this gives exactly F = (1-alpha) / (1 - alpha/2).
  const HeraldModel model(ideal_params());
  for (double alpha : {0.05, 0.1, 0.2}) {
    const auto d = model.compute(alpha, alpha);
    const double expected = (1.0 - alpha) / (1.0 - alpha / 2.0);
    EXPECT_NEAR(d.fidelity_plus, expected, 1e-9) << "alpha " << alpha;
    EXPECT_NEAR(d.fidelity_minus, expected, 1e-9);
  }
}

TEST(HeraldModel, LossyCaseFidelityApproachesOneMinusAlpha) {
  // With strong photon loss the double-bright term contaminates single
  // clicks fully and the textbook F ~ 1 - alpha emerges.
  HeraldParams p = ideal_params();
  p.p_collection = 1e-3;
  const HeraldModel model(p);
  for (double alpha : {0.05, 0.1, 0.2}) {
    const auto d = model.compute(alpha, alpha);
    EXPECT_NEAR(d.fidelity_plus, 1.0 - alpha, 0.01) << "alpha " << alpha;
  }
}

TEST(HeraldModel, IdealSuccessProbabilityScalesWithAlpha) {
  // p_succ ~ 2 alpha (1-alpha) p_det with p_det = 1 here.
  const HeraldModel model(ideal_params());
  const auto d = model.compute(0.1, 0.1);
  EXPECT_NEAR(d.p_success(), 2.0 * 0.1 * 0.9, 0.03);
}

TEST(HeraldModel, SymmetricOutcomeSplit) {
  const HeraldModel model(ScenarioParams::lab().herald);
  const auto d = model.compute(0.15, 0.15);
  EXPECT_NEAR(d.p_psi_plus, d.p_psi_minus, 1e-9);
}

TEST(HeraldModel, LabSuccessProbabilityMatchesPaperScale) {
  // Section 4.4: p_succ ~ alpha * 1e-3 in the Lab setup.
  const HeraldModel model(ScenarioParams::lab().herald);
  for (double alpha : {0.1, 0.3}) {
    const auto d = model.compute(alpha, alpha);
    const double ratio = d.p_success() / alpha;
    EXPECT_GT(ratio, 4e-4) << "alpha " << alpha;
    EXPECT_LT(ratio, 2e-3) << "alpha " << alpha;
  }
}

TEST(HeraldModel, Ql2020SuccessProbabilityMatchesPaperScale) {
  const HeraldModel model(ScenarioParams::ql2020().herald);
  const auto d = model.compute(0.2, 0.2);
  const double ratio = d.p_success() / 0.2;
  EXPECT_GT(ratio, 2e-4);
  EXPECT_LT(ratio, 3e-3);
}

TEST(HeraldModel, FidelityDecreasesWithAlpha) {
  const HeraldModel model(ScenarioParams::lab().herald);
  double prev = 1.0;
  for (double alpha : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    const auto d = model.compute(alpha, alpha);
    EXPECT_LT(d.fidelity_plus, prev) << "alpha " << alpha;
    prev = d.fidelity_plus;
  }
}

TEST(HeraldModel, SuccessProbabilityIncreasesWithAlpha) {
  const HeraldModel model(ScenarioParams::lab().herald);
  double prev = 0.0;
  for (double alpha : {0.05, 0.1, 0.2, 0.3, 0.4}) {
    const auto d = model.compute(alpha, alpha);
    EXPECT_GT(d.p_success(), prev);
    prev = d.p_success();
  }
}

TEST(HeraldModel, Figure8Shape) {
  // Validation curve of Fig. 8: at alpha ~ 0.1 the Lab fidelity sits
  // around 0.78; towards alpha = 0.5 it falls to roughly 0.45.
  const HeraldModel model(ScenarioParams::lab().herald);
  const auto lo = model.compute(0.1, 0.1);
  EXPECT_GT(lo.fidelity_plus, 0.70);
  EXPECT_LT(lo.fidelity_plus, 0.92);
  const auto hi = model.compute(0.5, 0.5);
  EXPECT_GT(hi.fidelity_plus, 0.30);
  EXPECT_LT(hi.fidelity_plus, 0.60);
}

TEST(HeraldModel, ReducedVisibilityLowersFidelity) {
  HeraldParams p = ScenarioParams::lab().herald;
  const HeraldModel good(p);
  p.visibility = 0.5;
  const HeraldModel bad(p);
  EXPECT_LT(bad.compute(0.1, 0.1).fidelity_plus,
            good.compute(0.1, 0.1).fidelity_plus - 0.02);
}

TEST(HeraldModel, PhaseNoiseLowersFidelityNotRate) {
  HeraldParams p = ideal_params();
  const HeraldModel clean(p);
  p.phase_sigma_rad_per_arm = 0.5;
  const HeraldModel noisy(p);
  const auto c = clean.compute(0.1, 0.1);
  const auto n = noisy.compute(0.1, 0.1);
  EXPECT_LT(n.fidelity_plus, c.fidelity_plus - 0.01);
  EXPECT_NEAR(n.p_success(), c.p_success(), 1e-6);
}

TEST(HeraldModel, LossReducesSuccessProbability) {
  HeraldParams p = ideal_params();
  const HeraldModel clean(p);
  p.fiber_length_a_km = 10.0;
  p.fiber_length_b_km = 10.0;
  p.fiber_loss_db_per_km = 3.0;  // 30 dB per arm: transmit 1e-3
  const HeraldModel lossy(p);
  EXPECT_LT(lossy.compute(0.1, 0.1).p_success(),
            clean.compute(0.1, 0.1).p_success() * 0.01);
}

TEST(HeraldModel, AsymmetricArmsStillHeralds) {
  HeraldParams p = ScenarioParams::ql2020().herald;
  const HeraldModel model(p);
  const auto d = model.compute(0.2, 0.2);
  EXPECT_GT(d.p_success(), 0.0);
  EXPECT_GT(d.fidelity_plus, 0.5);
}

TEST(HeraldModel, DarkCountsAddFalseHeralds) {
  HeraldParams p = ScenarioParams::lab().herald;
  p.dark_count_rate_hz = 1e6;  // absurdly noisy detector
  const HeraldModel noisy(p);
  p.dark_count_rate_hz = 0.0;
  const HeraldModel clean(p);
  const auto n = noisy.compute(0.05, 0.05);
  const auto c = clean.compute(0.05, 0.05);
  EXPECT_GT(n.p_success(), c.p_success());
  EXPECT_LT(n.fidelity_plus, c.fidelity_plus);
}

TEST(HeraldModel, ArmDetectionProbabilityChain) {
  const HeraldModel model(ScenarioParams::lab().herald);
  const double p = model.arm_detection_probability(true);
  EXPECT_GT(p, 1e-5);
  EXPECT_LT(p, 1e-2);
  // QL2020's B arm (15 km) is lossier than its A arm (10 km).
  const HeraldModel ql(ScenarioParams::ql2020().herald);
  EXPECT_GT(ql.arm_detection_probability(true),
            ql.arm_detection_probability(false));
}

TEST(HeraldModel, CacheReturnsSameObject) {
  const HeraldModel model(ScenarioParams::lab().herald);
  const auto& a = model.distribution(0.123, 0.123);
  const auto& b = model.distribution(0.123, 0.123);
  EXPECT_EQ(&a, &b);
  const auto& c = model.distribution(0.2, 0.123);
  EXPECT_NE(&a, &c);
}

TEST(HeraldModel, RejectsInvalidAlpha) {
  const HeraldModel model(ScenarioParams::lab().herald);
  EXPECT_THROW(model.compute(0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(model.compute(0.1, 1.0), std::invalid_argument);
}

TEST(HeraldModel, HeraldedStatesMatchTheirLabel) {
  // The left-click state must be closer to Psi+ than to Psi-, and vice
  // versa.
  const HeraldModel model(ScenarioParams::lab().herald);
  const auto d = model.compute(0.1, 0.1);
  const double plus_to_plus = quantum::bell::fidelity(
      d.post_psi_plus, quantum::bell::BellState::kPsiPlus);
  const double plus_to_minus = quantum::bell::fidelity(
      d.post_psi_plus, quantum::bell::BellState::kPsiMinus);
  EXPECT_GT(plus_to_plus, plus_to_minus + 0.3);
  const double minus_to_minus = quantum::bell::fidelity(
      d.post_psi_minus, quantum::bell::BellState::kPsiMinus);
  const double minus_to_plus = quantum::bell::fidelity(
      d.post_psi_minus, quantum::bell::BellState::kPsiPlus);
  EXPECT_GT(minus_to_minus, minus_to_plus + 0.3);
}

}  // namespace
}  // namespace qlink::hw
