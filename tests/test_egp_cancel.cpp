#include <gtest/gtest.h>

#include <vector>

#include "core/network.hpp"
#include "metrics/collector.hpp"
#include "netlayer/swap_service.hpp"
#include "netlayer/topology.hpp"

/// Egp::cancel_create (ISSUE 2 satellite): a higher layer that
/// abandons a CREATE must be able to retract it from both nodes'
/// queues so the link stops generating pairs nobody will claim (the
/// ROADMAP's unclaimed-OK open item). The netlayer's
/// SwapService::fail_request uses this to cancel sibling-hop CREATEs
/// when an end-to-end request dies.

namespace qlink {
namespace {

bool queues_empty(core::Egp& egp) {
  for (int j = 0; j < egp.queue().num_queues(); ++j) {
    if (!egp.queue().queue(j).empty()) return false;
  }
  return true;
}

TEST(EgpCancel, CancelStopsOkGenerationAndDrainsBothQueues) {
  core::LinkConfig cfg;
  cfg.scenario = hw::ScenarioParams::lab();
  cfg.seed = 3;
  core::Link link(cfg);

  std::vector<core::OkMessage> oks_a;
  int errs_a = 0;
  link.egp_a().set_ok_handler([&](const core::OkMessage& ok) {
    oks_a.push_back(ok);
    link.egp_a().release_delivered(ok);
  });
  link.egp_a().set_err_handler([&](const core::ErrMessage&) { ++errs_a; });
  link.egp_b().set_ok_handler([&](const core::OkMessage& ok) {
    link.egp_b().release_delivered(ok);
  });

  core::CreateRequest req;
  req.remote_node_id = link.node_id_b();
  req.type = core::RequestType::kCreateKeep;
  req.num_pairs = 500;  // far more than a short run can produce
  req.min_fidelity = 0.6;
  req.consecutive = true;
  const std::uint32_t create_id = link.egp_a().create(req);

  link.start();
  link.run_for(sim::duration::seconds(1.0));
  const std::size_t delivered_before = oks_a.size();
  ASSERT_GT(delivered_before, 0u);
  ASSERT_FALSE(queues_empty(link.egp_a()));

  EXPECT_TRUE(link.egp_a().cancel_create(create_id));
  EXPECT_EQ(link.egp_a().stats().cancels, 1u);
  // Unknown / already-cancelled ids are rejected.
  EXPECT_FALSE(link.egp_a().cancel_create(create_id));
  EXPECT_FALSE(link.egp_a().cancel_create(9999));

  // Let the EXPIRE reach B and any in-flight REPLY settle.
  link.run_for(sim::duration::milliseconds(50));
  const std::size_t delivered_at_settle = oks_a.size();

  // No new pairs after the retraction settles, no ERR at the caller,
  // and the request is gone from both nodes' queues.
  link.run_for(sim::duration::seconds(1.0));
  EXPECT_EQ(oks_a.size(), delivered_at_settle);
  EXPECT_EQ(errs_a, 0);
  EXPECT_TRUE(queues_empty(link.egp_a()));
  EXPECT_TRUE(queues_empty(link.egp_b()));
}

TEST(EgpCancel, CancelBeforeQueueConfirmationRetractsTheCreate) {
  core::LinkConfig cfg;
  cfg.scenario = hw::ScenarioParams::lab();
  cfg.seed = 4;
  core::Link link(cfg);

  int oks = 0;
  link.egp_a().set_ok_handler([&](const core::OkMessage& ok) {
    ++oks;
    link.egp_a().release_delivered(ok);
  });
  link.egp_b().set_ok_handler([&](const core::OkMessage& ok) {
    link.egp_b().release_delivered(ok);
  });

  core::CreateRequest req;
  req.remote_node_id = link.node_id_b();
  req.num_pairs = 100;
  req.min_fidelity = 0.6;
  req.consecutive = true;
  const std::uint32_t create_id = link.egp_a().create(req);
  // Cancel immediately: the distributed-queue ADD/ACK handshake has
  // not completed yet.
  EXPECT_TRUE(link.egp_a().cancel_create(create_id));

  link.start();
  link.run_for(sim::duration::seconds(1.0));
  EXPECT_EQ(oks, 0);
  EXPECT_TRUE(queues_empty(link.egp_a()));
  EXPECT_TRUE(queues_empty(link.egp_b()));
}

TEST(SwapServiceCancel, FailedE2eRequestRetractsSiblingHopCreates) {
  netlayer::NetworkConfig cfg;
  cfg.kind = netlayer::TopologyKind::kChain;
  cfg.num_links = 2;
  cfg.seed = 11;
  cfg.link.scenario = hw::ScenarioParams::lab();
  cfg.link.scenario.nv.carbon_t2_ns = 0.5e9;
  cfg.link.scenario.nv.carbon_coupling_rad_per_s /= 10.0;
  // Fast link-layer expiry under frame loss: a few consecutive
  // one-sided midpoint errors kill hop 0's CREATE.
  cfg.link.one_sided_error_threshold = 4;

  netlayer::QuantumNetwork net(cfg);
  metrics::Collector collector;
  netlayer::SwapService swap(net, &collector);

  int errors = 0;
  swap.set_error_handler([&](const netlayer::E2eErr&) { ++errors; });

  netlayer::E2eRequest req;
  req.src = 0;
  req.dst = 2;
  req.num_pairs = 50;  // the healthy hop could generate these forever
  req.min_fidelity = 0.5;
  req.link_min_fidelity = 0.78;
  net.start();
  swap.request(req);
  // Hop 0 becomes lossy; hop 1 stays healthy. Before cancel_create,
  // the failed request left hop 1's CREATE live, generating unclaimed
  // OKs indefinitely.
  net.link(0).set_classical_loss(0.25);

  for (int i = 0; i < 200 && errors == 0; ++i) {
    net.run_for(sim::duration::milliseconds(100));
  }
  ASSERT_GT(errors, 0) << "expected hop 0 to expire the e2e request";
  EXPECT_EQ(swap.open_requests(), 0u);

  // Let in-flight OKs/EXPIREs settle, then require the links to stay
  // quiet: the sibling hop's CREATE was retracted.
  net.run_for(sim::duration::milliseconds(200));
  const std::uint64_t unclaimed_at_settle = swap.stats().unclaimed_oks;
  net.run_for(sim::duration::seconds(2.0));
  EXPECT_EQ(swap.stats().unclaimed_oks, unclaimed_at_settle);

  std::uint64_t cancels = 0;
  for (std::size_t i = 0; i < net.num_links(); ++i) {
    const auto [a, b] = net.endpoints(i);
    cancels += net.link(i).egp(a).stats().cancels;
    cancels += net.link(i).egp(b).stats().cancels;
    EXPECT_TRUE(queues_empty(net.link(i).egp(a)));
    EXPECT_TRUE(queues_empty(net.link(i).egp(b)));
  }
  EXPECT_GT(cancels, 0u);
}

}  // namespace
}  // namespace qlink
