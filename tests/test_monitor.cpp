#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "metrics/collector.hpp"
#include "netlayer/swap_service.hpp"
#include "netlayer/topology.hpp"
#include "obs/monitor.hpp"
#include "obs/trace.hpp"
#include "qstate/backend_registry.hpp"
#include "routing/router.hpp"

/// Live run monitor (ISSUE 7): interval time-series telemetry and the
/// stall watchdog. The load-bearing guarantees under test: byte-
/// identical JSONL per seed, *zero* trajectory perturbation from
/// attaching a monitor, delta/final consistency, and a watchdog that
/// trips on genuine starvation but nothing else.

namespace qlink::obs {
namespace {

using netlayer::E2eOk;
using netlayer::E2eRequest;
using netlayer::NetworkConfig;
using netlayer::QuantumNetwork;
using netlayer::SwapService;

std::size_t count_of(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Monitored end-to-end run: the same 2x3 dead-edge world as
// test_obs.cpp's TracedWorld (shortest 0 -> 2 corridor fails, one
// reroute, completed request), with an obs::Monitor polled from the
// run loop.

struct MonitoredWorld {
  routing::Graph grid;
  std::unique_ptr<QuantumNetwork> net;
  metrics::Collector collector;
  std::unique_ptr<SwapService> swap;
  std::unique_ptr<routing::Router> router;
  std::unique_ptr<Monitor> monitor;

  explicit MonitoredWorld(qstate::BackendKind backend, std::uint64_t seed,
                          bool monitored)
      : grid(routing::Graph::grid(2, 3)) {
    const std::size_t dead = grid.find_edge(1, 2);
    NetworkConfig nc =
        routing::make_network_config(grid, core::LinkConfig{}, seed);
    nc.link.backend = backend;
    nc.link.pauli_twirl_installs =
        backend == qstate::BackendKind::kBellDiagonal;
    nc.link.scenario = hw::ScenarioParams::lab();
    nc.link.scenario.nv.carbon_t2_ns = 0.5e9;
    nc.link.scenario.nv.carbon_coupling_rad_per_s /= 10.0;
    nc.configure_link = [dead](std::size_t link, core::LinkConfig& lc) {
      if (link == dead) lc.scenario.herald.visibility = 0.25;
    };
    net = std::make_unique<QuantumNetwork>(nc);
    swap = std::make_unique<SwapService>(*net, &collector);
    routing::RouterConfig rc;
    rc.cost = routing::CostModel::kHopCount;
    rc.k_candidates = 4;
    rc.max_reroutes = 3;
    router = std::make_unique<routing::Router>(grid, *net, *swap, rc,
                                               &collector);
    const double menu[] = {0.7};
    router->annotate_from_network(menu);
    if (monitored) {
      MonitorConfig mc;
      mc.run = "test";
      mc.target_requests = 1;
      monitor = std::make_unique<Monitor>(net->simulator(), collector,
                                          std::move(mc));
      monitor->attach_router(router.get());
    }
  }

  /// Run one 0 -> 2 request to settlement; returns the byte-exact
  /// trajectory fingerprint (deliveries + end time + event count).
  std::string run_request() {
    std::string deliveries;
    router->set_deliver_handler([&](const E2eOk& ok) {
      char line[160];
      std::snprintf(line, sizeof(line), "%u %u/%u s%d %.17g %lld\n",
                    ok.request_id, ok.pair_index + 1, ok.total_pairs,
                    ok.swaps, ok.fidelity,
                    static_cast<long long>(ok.deliver_time));
      deliveries += line;
      swap->release(ok);
    });
    E2eRequest req;
    req.src = 0;
    req.dst = 2;
    req.num_pairs = 2;
    req.min_fidelity = 0.25;
    req.link_min_fidelity = 0.7;
    net->start();
    router->submit(req);
    const auto& stats = router->stats();
    for (int i = 0; i < 4000 && stats.completed + stats.failed < 1; ++i) {
      net->run_for(sim::duration::milliseconds(1));
      if (monitor != nullptr) monitor->poll();
    }
    if (monitor != nullptr) monitor->finish();
    EXPECT_EQ(stats.completed, 1u);
    char tail[64];
    std::snprintf(tail, sizeof(tail), "end %lld %llu\n",
                  static_cast<long long>(net->simulator().now()),
                  static_cast<unsigned long long>(
                      net->simulator().events_processed()));
    deliveries += tail;
    return deliveries;
  }
};

TEST(MonitoredRun, ByteIdenticalJsonlPerSeedOnBothBackends) {
  for (const auto backend : {qstate::BackendKind::kDense,
                             qstate::BackendKind::kBellDiagonal}) {
    MonitoredWorld first(backend, 11, /*monitored=*/true);
    MonitoredWorld second(backend, 11, /*monitored=*/true);
    const std::string d1 = first.run_request();
    const std::string d2 = second.run_request();
    EXPECT_EQ(d1, d2);
    ASSERT_GT(first.monitor->intervals(), 0u);
    EXPECT_EQ(first.monitor->jsonl(), second.monitor->jsonl());
    // A healthy run never trips the watchdog.
    EXPECT_EQ(first.monitor->stalled_intervals(), 0u);
  }
}

TEST(MonitoredRun, AttachingAMonitorDoesNotPerturbTheTrajectory) {
  for (const auto backend : {qstate::BackendKind::kDense,
                             qstate::BackendKind::kBellDiagonal}) {
    MonitoredWorld bare(backend, 11, /*monitored=*/false);
    MonitoredWorld monitored(backend, 11, /*monitored=*/true);
    const std::string d_bare = bare.run_request();
    const std::string d_monitored = monitored.run_request();
    // Identical deliveries, end time, and event count: the monitor is
    // a pure observer (the fingerprint includes events_processed).
    EXPECT_EQ(d_bare, d_monitored);
    EXPECT_EQ(bare.collector.route_length().count(),
              monitored.collector.route_length().count());
    EXPECT_DOUBLE_EQ(bare.collector.request_latency_hist().sum(),
                     monitored.collector.request_latency_hist().sum());
  }
}

TEST(MonitoredRun, RecordStreamHoldsTheCheckerInvariants) {
  MonitoredWorld w(qstate::BackendKind::kBellDiagonal, 11,
                   /*monitored=*/true);
  w.run_request();
  const std::string jsonl = w.monitor->jsonl();
  // One line per interval record plus the final summary.
  EXPECT_EQ(count_of(jsonl, "\n"), w.monitor->intervals() + 1);
  EXPECT_EQ(count_of(jsonl, "\"i\":"), w.monitor->intervals());
  EXPECT_EQ(count_of(jsonl, "\"final\":true"), 1u);
  // Every record carries the run label and a stalled verdict.
  EXPECT_EQ(count_of(jsonl, "\"run\":\"test\""),
            w.monitor->intervals() + 1);
  EXPECT_EQ(count_of(jsonl, "\"stalled\":"), w.monitor->intervals());
  // The request completed, so the trailing record reports full
  // progress and a zero ETA against target_requests = 1.
  EXPECT_NE(jsonl.find("\"progress\":1,"), std::string::npos);
  EXPECT_NE(jsonl.find("\"eta_s\":0}"), std::string::npos);
  // All deliveries are accounted for in the emitted deltas.
  EXPECT_EQ(w.monitor->total_deliveries(),
            w.collector.total_pairs_delivered());
  // Histogram deltas expose the exact observed extremes (ISSUE 8):
  // every per-interval histogram object carries min and max.
  EXPECT_EQ(count_of(jsonl, "\"min\":"), count_of(jsonl, "\"p99\":"));
  EXPECT_EQ(count_of(jsonl, "\"max\":"), count_of(jsonl, "\"p99\":"));
  EXPECT_GT(count_of(jsonl, "\"min\":"), 0u);
  // finish() is idempotent and poll() after it is a no-op.
  w.monitor->finish();
  w.monitor->poll();
  EXPECT_EQ(w.monitor->jsonl(), jsonl);
}

// ---------------------------------------------------------------------------
// Stall watchdog: a deliberately starved world. The network is never
// started, so no MHP cycle ever runs and nothing can be delivered;
// request A pins the single edge and request B blocks behind it, so
// the admission backlog stays at 1 while the clock advances.

struct StarvedWorld {
  routing::Graph chain;
  std::unique_ptr<QuantumNetwork> net;
  metrics::Collector collector;
  std::unique_ptr<SwapService> swap;
  std::unique_ptr<routing::Router> router;

  StarvedWorld() : chain(routing::Graph::chain(2)) {
    NetworkConfig nc =
        routing::make_network_config(chain, core::LinkConfig{}, 11);
    nc.link.scenario = hw::ScenarioParams::lab();
    net = std::make_unique<QuantumNetwork>(nc);
    swap = std::make_unique<SwapService>(*net, &collector);
    routing::RouterConfig rc;
    rc.cost = routing::CostModel::kHopCount;
    router = std::make_unique<routing::Router>(chain, *net, *swap, rc,
                                               &collector);
    const double menu[] = {0.7};
    router->annotate_from_network(menu);
    E2eRequest req;
    req.src = 0;
    req.dst = 1;
    req.min_fidelity = 0.25;
    router->submit(req);  // A: admitted, pins the edge, never delivers
    router->submit(req);  // B: blocked behind A -> backlog 1
  }

  void starve_for(Monitor& monitor, int hundred_ms_steps) {
    for (int i = 0; i < hundred_ms_steps; ++i) {
      net->run_for(sim::duration::milliseconds(100));
      monitor.poll();
    }
    monitor.finish();
  }
};

TEST(StallWatchdog, FlagsStarvedIntervalsAndWarnsTheTracer) {
  StarvedWorld w;
  Tracer tracer;
  MonitorConfig mc;
  mc.run = "starved";
  mc.tracer = &tracer;
  Monitor monitor(w.net->simulator(), w.collector, std::move(mc));
  monitor.attach_router(w.router.get());

  w.starve_for(monitor, 10);

  // Every full interval starved: zero deliveries with a waiting
  // request. The default threshold (stall_consecutive = 1) flags all.
  EXPECT_EQ(monitor.intervals(), 10u);
  EXPECT_EQ(monitor.stalled_intervals(), 10u);
  EXPECT_EQ(monitor.peak_backlog(), 1u);
  EXPECT_EQ(monitor.total_deliveries(), 0u);
  const std::string jsonl = monitor.jsonl();
  EXPECT_EQ(count_of(jsonl, "\"stalled\":true"), 10u);
  // Each stall is mirrored as a warn instant on the tracer's global
  // lane, carrying the backlog and the oldest open request's age.
  EXPECT_EQ(count_of(tracer.jsonl(), "\"warn\""), 10u);
  EXPECT_NE(tracer.jsonl().find("\"backlog\":1"), std::string::npos);
  EXPECT_NE(tracer.jsonl().find("\"oldest_open_age_s\""),
            std::string::npos);
  // The leaked in-flight state surfaces: request A is still open and
  // aging (created at t = 0, last boundary at t = 1 s).
  EXPECT_GE(w.collector.open_requests(), 1u);
  ASSERT_TRUE(w.collector.oldest_open_created().has_value());
  EXPECT_EQ(*w.collector.oldest_open_created(), 0);
  EXPECT_NE(jsonl.find("\"oldest_open_age_s\":1,"), std::string::npos);
}

TEST(StallWatchdog, ConsecutiveThresholdDebouncesIsolatedQuietIntervals) {
  StarvedWorld w;
  MonitorConfig mc;
  mc.stall_consecutive = 3;
  Monitor monitor(w.net->simulator(), w.collector, std::move(mc));
  monitor.attach_router(w.router.get());

  w.starve_for(monitor, 10);

  // Intervals 0 and 1 build the run; 2..9 are at/past the threshold.
  EXPECT_EQ(monitor.intervals(), 10u);
  EXPECT_EQ(monitor.stalled_intervals(), 8u);
}

TEST(StallWatchdog, NeverFiresWithoutARouter) {
  // No router attached -> the backlog is unknowable, so starving the
  // run must not produce stall flags (only zero-delivery records).
  StarvedWorld w;
  Monitor monitor(w.net->simulator(), w.collector, MonitorConfig{});
  w.starve_for(monitor, 5);
  EXPECT_EQ(monitor.intervals(), 5u);
  EXPECT_EQ(monitor.stalled_intervals(), 0u);
  EXPECT_EQ(monitor.peak_backlog(), 0u);
  // Router-sourced fields stay out of the records entirely.
  EXPECT_EQ(monitor.jsonl().find("\"backlog\""), std::string::npos);
}

TEST(StallWatchdog, CoalescedSpanCountsItsCoveredIntervals) {
  // Polling only once after 5 intervals coalesces them into a single
  // record; its span still counts toward the consecutive threshold.
  StarvedWorld w;
  MonitorConfig mc;
  mc.stall_consecutive = 5;
  Monitor monitor(w.net->simulator(), w.collector, std::move(mc));
  monitor.attach_router(w.router.get());

  w.net->run_for(sim::duration::milliseconds(500));
  monitor.poll();
  monitor.finish();

  EXPECT_EQ(monitor.intervals(), 1u);
  EXPECT_EQ(monitor.stalled_intervals(), 1u);
  const std::string jsonl = monitor.jsonl();
  EXPECT_NE(jsonl.find("\"dt\":500000000"), std::string::npos);
}

}  // namespace
}  // namespace qlink::obs
