#include <gtest/gtest.h>

#include "hw/herald_model.hpp"
#include "hw/nv_device.hpp"
#include "net/channel.hpp"
#include "proto/mhp.hpp"
#include "quantum/registry.hpp"
#include "sim/simulator.hpp"

namespace qlink::proto {
namespace {

using net::AbsoluteQueueId;
using net::MhpError;

/// Harness wiring two NodeMhp instances and a station with scriptable
/// poll handlers (Protocol 1 in isolation, no EGP).
class MhpTest : public ::testing::Test {
 protected:
  MhpTest()
      : registry_(random_),
        scenario_(hw::ScenarioParams::lab()),
        model_(scenario_.herald),
        dev_a_(sim_, "nv-a", scenario_.nv, registry_),
        dev_b_(sim_, "nv-b", scenario_.nv, registry_),
        chan_a_(sim_, "a-h", scenario_.delay_a_to_station, random_, 0.0),
        chan_b_(sim_, "b-h", scenario_.delay_b_to_station, random_, 0.0),
        mhp_a_(sim_, "mhp-a", 0, dev_a_, chan_a_, 0, scenario_.mhp_cycle),
        mhp_b_(sim_, "mhp-b", 1, dev_b_, chan_b_, 0, scenario_.mhp_cycle),
        station_(sim_, "h", model_, random_, chan_a_, 1, chan_b_, 1,
                 scenario_.mhp_cycle) {
    mhp_a_.set_result_handler(
        [this](const MhpResult& r) { results_a_.push_back(r); });
    mhp_b_.set_result_handler(
        [this](const MhpResult& r) { results_b_.push_back(r); });
  }

  /// Make both nodes attempt `n` times for the same request id.
  void attempt_both(int n, double alpha = 0.3) {
    auto mk = [&](int* budget) {
      return [budget, alpha]() mutable {
        PollResponse r;
        if (*budget <= 0) return r;
        --*budget;
        r.attempt = true;
        r.aid = AbsoluteQueueId{0, 7};
        r.measure_directly = true;
        r.basis = quantum::gates::Basis::kZ;
        r.alpha = alpha;
        return r;
      };
    };
    budget_a_ = n;
    budget_b_ = n;
    mhp_a_.set_poll_handler(mk(&budget_a_));
    mhp_b_.set_poll_handler(mk(&budget_b_));
    mhp_a_.start();
    mhp_b_.start();
  }

  sim::Simulator sim_;
  sim::Random random_{5};
  quantum::QuantumRegistry registry_;
  hw::ScenarioParams scenario_;
  hw::HeraldModel model_;
  hw::NvDevice dev_a_;
  hw::NvDevice dev_b_;
  net::ClassicalChannel chan_a_;
  net::ClassicalChannel chan_b_;
  NodeMhp mhp_a_;
  NodeMhp mhp_b_;
  MidpointStation station_;
  std::vector<MhpResult> results_a_;
  std::vector<MhpResult> results_b_;
  int budget_a_ = 0;
  int budget_b_ = 0;
};

TEST_F(MhpTest, NoPollHandlerNoAttempts) {
  mhp_a_.start();
  sim_.run_until(sim::duration::milliseconds(1));
  EXPECT_EQ(mhp_a_.attempts_made(), 0u);
}

TEST_F(MhpTest, PollNoMeansNoGen) {
  mhp_a_.set_poll_handler([] { return PollResponse{}; });
  mhp_a_.start();
  sim_.run_until(sim::duration::milliseconds(1));
  EXPECT_EQ(mhp_a_.attempts_made(), 0u);
  EXPECT_EQ(station_.gen_frames(), 0u);
}

TEST_F(MhpTest, MatchedAttemptsGetRepliesAtBothNodes) {
  attempt_both(100);
  sim_.run_until(sim::duration::milliseconds(2));
  EXPECT_EQ(mhp_a_.attempts_made(), 100u);
  EXPECT_EQ(station_.gen_frames(), 200u);
  EXPECT_EQ(results_a_.size(), 100u);
  EXPECT_EQ(results_b_.size(), 100u);
  EXPECT_EQ(station_.mismatches(), 0u);
}

TEST_F(MhpTest, RepliesEchoTheAttemptId) {
  attempt_both(5);
  sim_.run_until(sim::duration::milliseconds(1));
  for (const auto& r : results_a_) {
    EXPECT_EQ(r.reply.aid_receiver, (AbsoluteQueueId{0, 7}));
    EXPECT_EQ(r.reply.aid_peer, (AbsoluteQueueId{0, 7}));
    EXPECT_EQ(r.reply.error, MhpError::kNone);
  }
}

TEST_F(MhpTest, SuccessRateTracksModel) {
  const double alpha = 0.4;
  attempt_both(200000, alpha);
  sim_.run_until(sim::duration::seconds(2.5));
  ASSERT_GT(results_a_.size(), 100000u);
  std::uint64_t successes = 0;
  for (const auto& r : results_a_) {
    if (r.reply.outcome != 0) ++successes;
  }
  const double observed =
      static_cast<double>(successes) / static_cast<double>(results_a_.size());
  const double expected = model_.distribution(alpha, alpha).p_success();
  EXPECT_NEAR(observed, expected, expected * 0.25);
  EXPECT_EQ(station_.successes(), successes);
}

TEST_F(MhpTest, SequenceNumbersIncreaseMonotonically) {
  attempt_both(100000, 0.5);
  sim_.run_until(sim::duration::seconds(1.2));
  std::uint32_t last = 0;
  for (const auto& r : results_a_) {
    if (r.reply.outcome != 0) {
      EXPECT_EQ(r.reply.seq_mhp, last + 1);
      last = r.reply.seq_mhp;
    }
  }
  EXPECT_GT(last, 0u);
}

TEST_F(MhpTest, OneSidedAttemptYieldsNoMessageOther) {
  budget_a_ = 3;
  mhp_a_.set_poll_handler([this] {
    PollResponse r;
    if (budget_a_-- <= 0) return r;
    r.attempt = true;
    r.aid = AbsoluteQueueId{0, 1};
    r.measure_directly = true;
    r.alpha = 0.3;
    return r;
  });
  mhp_b_.set_poll_handler([] { return PollResponse{}; });
  mhp_a_.start();
  mhp_b_.start();
  sim_.run_until(sim::duration::milliseconds(5));
  ASSERT_GE(results_a_.size(), 3u);
  for (const auto& r : results_a_) {
    EXPECT_EQ(r.reply.error, MhpError::kNoMessageOther);
  }
  EXPECT_EQ(results_b_.size(), 0u);
}

TEST_F(MhpTest, MismatchedIdsYieldQueueMismatch) {
  auto mk = [&](std::uint32_t qseq) {
    return [qseq]() {
      PollResponse r;
      r.attempt = true;
      r.aid = AbsoluteQueueId{0, qseq};
      r.measure_directly = true;
      r.alpha = 0.3;
      return r;
    };
  };
  mhp_a_.set_poll_handler(mk(1));
  mhp_b_.set_poll_handler(mk(2));
  mhp_a_.start();
  mhp_b_.start();
  sim_.run_until(sim::duration::microseconds(200));
  ASSERT_FALSE(results_a_.empty());
  ASSERT_FALSE(results_b_.empty());
  EXPECT_EQ(results_a_.front().reply.error, MhpError::kQueueMismatch);
  EXPECT_EQ(results_b_.front().reply.error, MhpError::kQueueMismatch);
  EXPECT_EQ(results_a_.front().reply.aid_peer, (AbsoluteQueueId{0, 2}));
  EXPECT_GT(station_.mismatches(), 0u);
}

TEST_F(MhpTest, MTypeSuccessCarriesOutcomes) {
  station_.set_measure_sampler([](int, quantum::gates::Basis,
                                  quantum::gates::Basis, double, double) {
    return std::pair<int, int>{1, 0};
  });
  attempt_both(100000, 0.5);
  sim_.run_until(sim::duration::seconds(1.2));
  bool saw_success = false;
  for (std::size_t i = 0; i < results_a_.size(); ++i) {
    const auto& ra = results_a_[i].reply;
    if (ra.outcome != 0) {
      saw_success = true;
      EXPECT_EQ(ra.m_outcome, 1);
      EXPECT_EQ(ra.m_outcome_peer, 0);
    }
  }
  EXPECT_TRUE(saw_success);
  // B's replies carry the mirrored outcomes.
  for (const auto& rb : results_b_) {
    if (rb.reply.outcome != 0) {
      EXPECT_EQ(rb.reply.m_outcome, 0);
      EXPECT_EQ(rb.reply.m_outcome_peer, 1);
    }
  }
}

TEST_F(MhpTest, KTypeSuccessTriggersInstall) {
  int installs = 0;
  station_.set_install_handler(
      [&](int outcome, std::uint64_t, double, double) {
        EXPECT_TRUE(outcome == 1 || outcome == 2);
        ++installs;
      });
  auto mk = [] {
    PollResponse r;
    r.attempt = true;
    r.aid = AbsoluteQueueId{0, 3};
    r.measure_directly = false;
    r.alpha = 0.5;
    return r;
  };
  mhp_a_.set_poll_handler(mk);
  mhp_b_.set_poll_handler(mk);
  mhp_a_.start();
  mhp_b_.start();
  sim_.run_until(sim::duration::seconds(0.6));
  EXPECT_GT(installs, 0);
  EXPECT_EQ(static_cast<std::uint32_t>(installs), station_.successes());
}

TEST_F(MhpTest, BusyDeviceSkipsCycles) {
  dev_a_.occupy_for(sim::duration::milliseconds(1));
  attempt_both(1000000);
  sim_.run_until(sim::duration::milliseconds(1));
  // A was busy the whole time; every B GEN is one-sided.
  EXPECT_EQ(mhp_a_.attempts_made(), 0u);
  EXPECT_GT(mhp_b_.attempts_made(), 0u);
}

TEST_F(MhpTest, CurrentCycleAdvancesWithClock) {
  EXPECT_EQ(mhp_a_.current_cycle(), 0u);
  sim_.run_until(scenario_.mhp_cycle * 10);
  EXPECT_EQ(mhp_a_.current_cycle(), 10u);
}

TEST_F(MhpTest, CorruptFramesAreIgnored) {
  // Inject garbage towards the station and towards the node.
  chan_a_.send_from(0, {1, 2, 3, 4, 5, 6, 7});
  chan_a_.send_from(1, {9, 9, 9, 9, 9, 9});
  EXPECT_NO_THROW(sim_.run_all());
  EXPECT_EQ(station_.gen_frames(), 0u);
  EXPECT_EQ(mhp_a_.replies_seen(), 0u);
}

}  // namespace
}  // namespace qlink::proto
