#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "netlayer/swap_service.hpp"
#include "netlayer/topology.hpp"
#include "quantum/bell.hpp"
#include "routing/router.hpp"

/// Scheduler-grade admission control (ISSUE 5): deferred window
/// bookings, exclusion-set decay (TTL + fidelity-recovery signal), and
/// the batch drain, exercised over a real QuantumNetwork. Pure
/// ReservationTable window/heap/drain mechanics live in
/// test_routing.cpp.

namespace qlink::netlayer {
namespace {

// ---------------------------------------------------------------------------
// Deferred admission on a contended chain corridor.
//
// chain 0-1-2 with edges a=(0,1), b=(1,2). Two heads lease a and b
// with staggered windows (head_b asks for more pairs), a waiter wants
// the whole corridor, and a long newcomer for edge a lands between the
// two lease ends — the bench_admission scenario, shrunk to one
// corridor.

struct ContendedChain {
  routing::Graph chain;
  std::unique_ptr<QuantumNetwork> net;
  metrics::Collector collector;
  std::unique_ptr<SwapService> swap;
  std::unique_ptr<routing::Router> router;
  std::uint64_t expected = 4;

  explicit ContendedChain(qstate::BackendKind backend, std::uint64_t seed,
                          bool scheduler)
      : chain(routing::Graph::chain(3)) {
    NetworkConfig nc =
        routing::make_network_config(chain, core::LinkConfig{}, seed);
    nc.link.backend = backend;
    nc.link.pauli_twirl_installs =
        backend == qstate::BackendKind::kBellDiagonal;
    nc.link.scenario = hw::ScenarioParams::lab();
    nc.link.scenario.nv.carbon_t2_ns = 5e9;
    nc.link.scenario.nv.carbon_coupling_rad_per_s /= 10.0;
    net = std::make_unique<QuantumNetwork>(nc);
    swap = std::make_unique<SwapService>(*net, &collector);
    routing::RouterConfig rc;
    rc.k_candidates = 1;
    // Leases lapse before holders finish (slack < 1), so admission is
    // governed by the lease calendar deferred booking schedules.
    rc.lease_slack = 0.5;
    rc.defer_admission = scheduler;
    rc.batch_admission = scheduler;
    router = std::make_unique<routing::Router>(chain, *net, *swap, rc,
                                               &collector);
    const double menu[] = {0.7};
    router->annotate_from_network(menu);
  }

  static E2eRequest request(std::uint32_t src, std::uint32_t dst,
                            std::uint16_t pairs) {
    E2eRequest req;
    req.src = src;
    req.dst = dst;
    req.num_pairs = pairs;
    req.min_fidelity = 0.25;
    req.link_min_fidelity = 0.7;
    return req;
  }

  /// Submit heads + waiter now, schedule the newcomer between the two
  /// head leases' ends, run to completion, return a byte-exact trace.
  std::string run() {
    std::string trace;
    router->set_deliver_handler([this, &trace](const E2eOk& ok) {
      char line[160];
      std::snprintf(line, sizeof(line),
                    "%u %u/%u q%llu-q%llu %.17g %lld\n", ok.request_id,
                    ok.pair_index + 1, ok.total_pairs,
                    static_cast<unsigned long long>(ok.qubit_src),
                    static_cast<unsigned long long>(ok.qubit_dst),
                    ok.fidelity, static_cast<long long>(ok.deliver_time));
      trace += line;
      swap->release(ok);
    });

    net->start();
    const auto req_a = request(0, 1, 4);
    const auto req_b = request(1, 2, 8);
    router->submit(req_a);
    router->submit(req_b);
    router->submit(request(0, 2, 2));  // the waiter

    const auto path_a = *router->selector().shortest(0, 1);
    const auto path_b = *router->selector().shortest(1, 2);
    const sim::SimTime t1 = router->lease_duration(path_a, req_a);
    const sim::SimTime t2 = router->lease_duration(path_b, req_b);
    net->simulator().schedule_at(t1 + (t2 - t1) / 2, [this] {
      router->submit(request(0, 1, 16));  // the newcomer
    });

    const auto& stats = router->stats();
    for (int i = 0; i < 8000 && stats.completed + stats.failed < expected;
         ++i) {
      net->run_for(sim::duration::milliseconds(1));
    }
    EXPECT_EQ(stats.completed, expected);
    EXPECT_EQ(stats.failed, 0u);
    EXPECT_EQ(router->reservations().active(), 0u);

    char tail[64];
    std::snprintf(tail, sizeof(tail), "end %lld\n",
                  static_cast<long long>(net->simulator().now()));
    trace += tail;
    return trace;
  }
};

TEST(DeferredAdmission, BooksWindowsInsteadOfQueueingBlind) {
  ContendedChain world(qstate::BackendKind::kBellDiagonal, 11,
                       /*scheduler=*/true);
  world.run();
  const auto& stats = world.router->stats();
  // The waiter and the newcomer both fit nothing at submission: both
  // book windows, nobody parks blind, nobody jumps the queue.
  EXPECT_EQ(stats.deferred, 2u);
  EXPECT_GT(stats.deferred_wait_total, 0);
  EXPECT_EQ(stats.blocked, 0u);
  EXPECT_EQ(world.router->reservations().steals(), 0u);
  EXPECT_EQ(world.router->deferred_pending(), 0u);
  EXPECT_EQ(world.collector.deferrals(), 2u);
  EXPECT_EQ(world.collector.admission_wait().count(), 4u);
}

TEST(DeferredAdmission, QueueBlindPolicyStealsAndWaitsLonger) {
  ContendedChain pr4(qstate::BackendKind::kBellDiagonal, 11,
                     /*scheduler=*/false);
  pr4.run();
  ContendedChain sched(qstate::BackendKind::kBellDiagonal, 11,
                       /*scheduler=*/true);
  sched.run();

  // Queue-blind: the newcomer snatches edge a the moment its lease
  // lapses while the waiter still cannot start — a queue jump that
  // pushes the waiter's admission past the newcomer's whole window.
  EXPECT_EQ(pr4.router->stats().deferred, 0u);
  EXPECT_GE(pr4.router->stats().blocked, 1u);
  EXPECT_EQ(pr4.router->reservations().steals(), 1u);
  EXPECT_EQ(pr4.collector.admission_steals(), 1u);
  // The scheduler admits strictly earlier on average and in the tail.
  EXPECT_LT(sched.collector.admission_wait().mean(),
            pr4.collector.admission_wait().mean());
  EXPECT_LT(sched.collector.admission_wait().max(),
            pr4.collector.admission_wait().max());
}

TEST(DeferredAdmission, ByteIdenticalPerSeedOnBothBackends) {
  for (const auto backend : {qstate::BackendKind::kDense,
                             qstate::BackendKind::kBellDiagonal}) {
    ContendedChain first(backend, 11, /*scheduler=*/true);
    ContendedChain second(backend, 11, /*scheduler=*/true);
    const std::string a = first.run();
    const std::string b = second.run();
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find('\n'), std::string::npos);
    EXPECT_EQ(first.router->stats().deferred,
              second.router->stats().deferred);
  }
}

// ---------------------------------------------------------------------------
// Exclusion-set decay on a ring whose both 0 -> 2 corridors are dead.
//
// ring 0-1-2-3 with herald visibility 0.25 on (1,2) and (2,3): every
// 0 -> 2 route fails with UNSUPP at the edge entering node 2. Without
// decay the second failure exhausts the candidate space; with decay an
// aged-out (or recovered) exclusion puts the first corridor back into
// the re-route search.
//
// An infeasible-floor CREATE is refused in the same timestamp it is
// issued, so a bare fail -> re-route -> fail chain never advances the
// clock and no exclusion could age inside it. The decay tests insert a
// *blocker* request that pins the sibling corridor's healthy edge
// (3, 0): the re-route queues behind it and only admits when the
// blocker completes, putting real sim time between the two failures.

struct DeadRing {
  routing::Graph ring;
  std::size_t dead_a;
  std::size_t dead_b;
  std::unique_ptr<QuantumNetwork> net;
  metrics::Collector collector;
  std::unique_ptr<SwapService> swap;
  std::unique_ptr<routing::Router> router;
  std::vector<E2eErr> errors;

  explicit DeadRing(sim::SimTime exclusion_ttl, std::size_t max_reroutes)
      : ring(routing::Graph::ring(4)),
        dead_a(ring.find_edge(1, 2)),
        dead_b(ring.find_edge(2, 3)) {
    NetworkConfig nc =
        routing::make_network_config(ring, core::LinkConfig{}, 13);
    nc.link.backend = qstate::BackendKind::kBellDiagonal;
    nc.link.pauli_twirl_installs = true;
    nc.link.scenario = hw::ScenarioParams::lab();
    nc.configure_link = [this](std::size_t link, core::LinkConfig& lc) {
      if (link == dead_a || link == dead_b) {
        lc.scenario.herald.visibility = 0.25;
      }
    };
    net = std::make_unique<QuantumNetwork>(nc);
    swap = std::make_unique<SwapService>(*net, &collector);
    routing::RouterConfig rc;
    rc.k_candidates = 4;
    rc.max_reroutes = max_reroutes;
    rc.exclusion_ttl = exclusion_ttl;
    router = std::make_unique<routing::Router>(ring, *net, *swap, rc,
                                               &collector);
    const double menu[] = {0.7};
    router->annotate_from_network(menu);
    router->set_error_handler(
        [this](const E2eErr& err) { errors.push_back(err); });
  }

  void run_to_settlement() {
    const auto& stats = router->stats();
    for (int i = 0; i < 2000 && stats.completed + stats.failed < 1; ++i) {
      net->run_for(sim::duration::milliseconds(1));
    }
  }
};

TEST(ExclusionDecay, PermanentExclusionExhaustsCandidatesAfterOneReroute) {
  DeadRing w(/*exclusion_ttl=*/0, /*max_reroutes=*/5);
  w.net->start();
  w.router->submit(ContendedChain::request(0, 2, 1));
  w.run_to_settlement();
  // Both corridors join the exclusion set and stay there: one re-route,
  // then the candidate space is dry and the request is abandoned.
  EXPECT_EQ(w.router->stats().rerouted, 1u);
  EXPECT_EQ(w.router->stats().abandoned, 1u);
  EXPECT_EQ(w.router->stats().failed, 1u);
  EXPECT_EQ(w.collector.route_length().count(), 2u);
  ASSERT_EQ(w.errors.size(), 1u);
}

TEST(ExclusionDecay, TtlReadmitsTheAgedOutEdgeUntilBudgetExhausts) {
  // A tiny TTL: the blocker separates the two failures in time, so by
  // the time the second failure prunes the set, the first corridor's
  // exclusion has aged out and the "repaired" corridor is re-tried
  // (one extra admission vs the permanent-exclusion baseline).
  DeadRing w(/*exclusion_ttl=*/1, /*max_reroutes=*/5);
  w.net->start();
  w.router->submit(ContendedChain::request(0, 3, 4));  // the blocker
  w.router->submit(ContendedChain::request(0, 2, 1));
  const auto& stats = w.router->stats();
  for (int i = 0; i < 2000 && stats.completed + stats.failed < 2; ++i) {
    w.net->run_for(sim::duration::milliseconds(1));
  }
  EXPECT_EQ(stats.completed, 1u);  // the blocker
  EXPECT_EQ(stats.rerouted, 2u);
  EXPECT_EQ(stats.abandoned, 1u);
  EXPECT_EQ(w.collector.route_length().count(), 4u);
  ASSERT_EQ(w.errors.size(), 1u);
}

TEST(ExclusionDecay, FidelityRecoverySignalReadmitsTheRecoveredEdge) {
  // Permanent TTL, but between the two failures the first dead link's
  // FEU reports perfect test rounds: refresh_annotations stamps the
  // edge recovered, the next re-route prunes its exclusion, and the
  // request tries the "repaired" corridor once more (it is still
  // physically dead, so the run ends abandoned — but with one more
  // admission than the permanent-exclusion baseline).
  DeadRing w(/*exclusion_ttl=*/0, /*max_reroutes=*/5);
  routing::RefreshOptions options;
  const double menu[] = {0.7};
  options.floor_menu = menu;
  options.min_rounds = 30;
  options.stale_halflife_s = 0.5;
  w.net->start();
  w.router->refresh_annotations(options);  // baseline for recovery gains
  w.router->submit(ContendedChain::request(0, 3, 4));  // the blocker
  w.router->submit(ContendedChain::request(0, 2, 1));

  // Step event by event until the first corridor failed (its exclusion
  // recorded, the re-route parked behind the blocker), then feed the
  // dead link perfect test rounds and refresh: measured fidelity 1.0
  // vs the annotated 0.25 is far past recovery_min_gain.
  const auto& stats = w.router->stats();
  while (w.collector.reroutes() < 1 && stats.failed == 0) {
    ASSERT_TRUE(w.net->simulator().step());
  }
  core::FidelityEstimationUnit& feu =
      w.net->link(w.dead_a).egp_a().feu();
  using quantum::gates::Basis;
  for (const Basis basis : {Basis::kX, Basis::kY, Basis::kZ}) {
    const bool equal = quantum::bell::ideal_outcomes_equal(
        quantum::bell::BellState::kPsiPlus, basis);
    for (int i = 0; i < 12; ++i) {
      feu.record_test_round(basis, 0, equal ? 0 : 1, /*heralded=*/1);
    }
  }
  w.router->refresh_annotations(options);
  EXPECT_GT(w.router->edge_recovered_at(w.dead_a), 0);

  for (int i = 0; i < 2000 && stats.completed + stats.failed < 2; ++i) {
    w.net->run_for(sim::duration::milliseconds(1));
  }
  // One extra admission vs the permanent-exclusion baseline: the
  // recovered corridor was re-tried within the re-route budget.
  EXPECT_EQ(stats.completed, 1u);  // the blocker
  EXPECT_EQ(stats.rerouted, 2u);
  EXPECT_EQ(stats.abandoned, 1u);
  EXPECT_EQ(w.collector.route_length().count(), 4u);
  ASSERT_EQ(w.errors.size(), 1u);
}

}  // namespace
}  // namespace qlink::netlayer
