#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "metrics/collector.hpp"
#include "netlayer/flow_plane.hpp"
#include "netlayer/swap_service.hpp"
#include "qstate/backend_registry.hpp"
#include "routing/router.hpp"
#include "workload/arrival.hpp"
#include "workload/workload.hpp"

namespace qlink {
namespace {

using workload::ArrivalProcess;
using workload::ClassMixProcess;
using workload::DiurnalProcess;
using workload::OnOffProcess;
using workload::PoissonProcess;
using workload::RequestShape;

// ---------------------------------------------------------------------
// Arrival processes: pure functions of (Random&, now).
// ---------------------------------------------------------------------

std::vector<sim::SimTime> arrival_train(const ArrivalProcess& process,
                                        std::uint64_t seed, std::size_t n) {
  sim::Random random(seed);
  std::vector<sim::SimTime> times;
  times.reserve(n);
  sim::SimTime now = 0;
  for (std::size_t i = 0; i < n; ++i) {
    now = process.next_arrival(random, now);
    times.push_back(now);
  }
  return times;
}

TEST(ArrivalProcess, SameSeedReplaysIdenticalTrain) {
  const auto mix = std::make_shared<PoissonProcess>(250.0);
  std::vector<ClassMixProcess::Class> classes(2);
  classes[0].weight = 3.0;
  classes[0].shape.num_pairs = 1;
  classes[1].weight = 1.0;
  classes[1].shape.num_pairs = 4;
  const ClassMixProcess mixed(mix, classes);

  const OnOffProcess onoff(500.0, 0.02, 0.03);
  const DiurnalProcess diurnal(300.0, 1.0, 0.5);
  for (const ArrivalProcess* p :
       {static_cast<const ArrivalProcess*>(&mixed),
        static_cast<const ArrivalProcess*>(&onoff),
        static_cast<const ArrivalProcess*>(&diurnal)}) {
    EXPECT_EQ(arrival_train(*p, 42, 500), arrival_train(*p, 42, 500));
    EXPECT_NE(arrival_train(*p, 42, 500), arrival_train(*p, 43, 500));
  }
  // Shapes replay too (the class draw consumes Random).
  sim::Random r1(7), r2(7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(mixed.sample_shape(r1, 0).num_pairs,
              mixed.sample_shape(r2, 0).num_pairs);
  }
}

TEST(ArrivalProcess, PoissonGapsMatchMeanAndVariance) {
  const double rate = 200.0;
  const PoissonProcess poisson(rate);
  const auto train = arrival_train(poisson, 11, 20000);
  double sum = 0.0, sq = 0.0;
  sim::SimTime prev = 0;
  for (const sim::SimTime t : train) {
    const double gap = sim::to_seconds(t - prev);
    sum += gap;
    sq += gap * gap;
    prev = t;
  }
  const double n = static_cast<double>(train.size());
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  // Exponential(1/rate): mean 1/rate, variance 1/rate^2.
  EXPECT_NEAR(mean, 1.0 / rate, 0.05 / rate);
  EXPECT_NEAR(var, 1.0 / (rate * rate), 0.15 / (rate * rate));
}

TEST(ArrivalProcess, OnOffArrivalsStayInOnWindowsAtExactDutyCycle) {
  const double on_s = 0.02, off_s = 0.03, rate = 1000.0;
  const OnOffProcess onoff(rate, on_s, off_s);
  EXPECT_DOUBLE_EQ(onoff.mean_rate_hz(), rate * on_s / (on_s + off_s));

  const auto train = arrival_train(onoff, 5, 10000);
  const sim::SimTime on = sim::duration::seconds(on_s);
  const sim::SimTime period = on + sim::duration::seconds(off_s);
  for (const sim::SimTime t : train) {
    EXPECT_LE(t % period, on) << "arrival inside an OFF window";
  }
  // Realized rate over the whole train tracks the duty-cycled mean.
  const double span_s = sim::to_seconds(train.back());
  const double realized = static_cast<double>(train.size()) / span_s;
  EXPECT_NEAR(realized, onoff.mean_rate_hz(), 0.05 * onoff.mean_rate_hz());
}

TEST(ArrivalProcess, DiurnalPeakOutpacesTrough) {
  const double period_s = 1.0;
  const DiurnalProcess diurnal(400.0, period_s, 0.8);
  const auto train = arrival_train(diurnal, 19, 40000);
  // sin > 0 on the first half of each period (peak), < 0 on the second.
  const sim::SimTime period = sim::duration::seconds(period_s);
  std::size_t peak = 0, trough = 0;
  for (const sim::SimTime t : train) {
    (t % period < period / 2 ? peak : trough) += 1;
  }
  // Rate ratio between halves is (1 + 2*depth/pi)/(1 - 2*depth/pi) ~ 3
  // at depth 0.8; anything clearly above 2 shows the modulation.
  EXPECT_GT(static_cast<double>(peak), 2.0 * static_cast<double>(trough));
}

TEST(ArrivalProcess, ClassMixDrawsByWeightAndPinsEndpoints) {
  std::vector<ClassMixProcess::Class> classes(3);
  classes[0].weight = 6.0;
  classes[0].shape.num_pairs = 1;
  classes[1].weight = 3.0;
  classes[1].shape.num_pairs = 2;
  classes[2].weight = 1.0;
  classes[2].shape.num_pairs = 5;
  classes[2].shape.endpoints = {{4, 9}};
  const ClassMixProcess mix(std::make_shared<PoissonProcess>(100.0),
                            classes);

  sim::Random random(23);
  std::map<std::uint16_t, std::size_t> counts;
  const std::size_t n = 20000;
  for (std::size_t i = 0; i < n; ++i) {
    const RequestShape shape = mix.sample_shape(random, 0);
    counts[shape.num_pairs] += 1;
    if (shape.num_pairs == 5) {
      ASSERT_EQ(shape.endpoints.size(), 1u);
      EXPECT_EQ(shape.endpoints.front(), (std::pair<std::uint32_t,
                                                    std::uint32_t>{4, 9}));
    }
  }
  const double total = static_cast<double>(n);
  EXPECT_NEAR(static_cast<double>(counts[1]) / total, 0.6, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / total, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[5]) / total, 0.1, 0.02);
}

// ---------------------------------------------------------------------
// FlowPlane unit behavior (hand-built calibration: no hardware).
// ---------------------------------------------------------------------

netlayer::FlowCalibration toy_calibration() {
  netlayer::FlowCalibration cal;
  netlayer::FlowCalibration::Entry e;
  e.floor = 0.7;
  e.feasible = true;
  e.fidelity = 0.9;
  e.pair_time_s = 0.01;
  e.p_succ = 0.1;
  cal.menu.push_back(e);
  cal.delay_s = 0.001;
  return cal;
}

netlayer::FlowPlaneConfig toy_config(std::uint64_t seed) {
  netlayer::FlowPlaneConfig fc;
  fc.edges = {{0, 1}, {1, 2}};
  fc.calibration = toy_calibration();
  fc.seed = seed;
  return fc;
}

netlayer::E2eRequest chain_request(std::uint16_t pairs = 1) {
  netlayer::E2eRequest req;
  req.src = 0;
  req.dst = 2;
  req.num_pairs = pairs;
  req.min_fidelity = 0.5;
  req.link_min_fidelity = 0.7;
  return req;
}

const std::vector<netlayer::Hop> kChainRoute = {{0, false}, {1, false}};

TEST(FlowPlane, SameSeedReplaysIdenticalDeliveries) {
  std::vector<std::vector<std::pair<sim::SimTime, double>>> runs;
  for (int run = 0; run < 2; ++run) {
    netlayer::FlowPlane plane(toy_config(99));
    std::vector<std::pair<sim::SimTime, double>> got;
    plane.set_deliver_handler([&got](const netlayer::E2eOk& ok) {
      got.emplace_back(ok.deliver_time, ok.fidelity);
    });
    for (int i = 0; i < 50; ++i) plane.submit(chain_request(2), kChainRoute);
    plane.run_for(sim::duration::seconds(1000));
    EXPECT_EQ(got.size(), 100u);
    runs.push_back(std::move(got));
  }
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(FlowPlane, DeliveriesIncludeCorrectionDelayAndComposedFidelity) {
  netlayer::FlowPlane plane(toy_config(3));
  std::vector<netlayer::E2eOk> oks;
  plane.set_deliver_handler(
      [&oks](const netlayer::E2eOk& ok) { oks.push_back(ok); });
  plane.submit(chain_request(1), kChainRoute);
  plane.run_for(sim::duration::seconds(100));
  ASSERT_EQ(oks.size(), 1u);
  // Two-hop summed one-way delay rides on every delivery.
  EXPECT_GE(oks[0].deliver_time - oks[0].submit_time,
            sim::duration::seconds(2 * 0.001));
  EXPECT_EQ(oks[0].swaps, 1);
  // Swap composition of two 0.9 Werner pairs, not the raw link value.
  EXPECT_LT(oks[0].fidelity, 0.9);
  EXPECT_GT(oks[0].fidelity, 0.7);
}

TEST(FlowPlane, LinkServiceIsFifoAcrossRequests) {
  netlayer::FlowPlane plane(toy_config(17));
  std::vector<std::uint32_t> order;
  plane.set_deliver_handler([&order](const netlayer::E2eOk& ok) {
    order.push_back(ok.request_id);
  });
  std::vector<std::uint32_t> submitted;
  for (int i = 0; i < 20; ++i) {
    submitted.push_back(plane.submit(chain_request(1), kChainRoute));
  }
  plane.run_for(sim::duration::seconds(1000));
  // Same route for everyone: the per-link FIFO timeline makes request n
  // finish all hops no later than request n+1 can.
  EXPECT_EQ(order, submitted);
}

TEST(FlowPlane, InfeasibleFloorFailsAsynchronously) {
  netlayer::FlowPlane plane(toy_config(1));
  std::vector<netlayer::E2eErr> errs;
  plane.set_error_handler(
      [&errs](const netlayer::E2eErr& err) { errs.push_back(err); });
  netlayer::E2eRequest req = chain_request(1);
  req.link_min_fidelity = 0.95;  // above the only calibrated floor
  const std::uint32_t id = plane.submit(req, kChainRoute);
  EXPECT_TRUE(errs.empty());  // asynchronous, like a real UNSUPP ERR
  plane.run_for(sim::duration::seconds(1));
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_EQ(errs[0].request_id, id);
  EXPECT_EQ(errs[0].error, core::EgpError::kUnsupported);
}

TEST(FlowPlane, RecordsCreateOkAndPhasesIntoCollector) {
  metrics::Collector collector;
  netlayer::FlowPlaneConfig fc = toy_config(31);
  fc.collector = &collector;
  netlayer::FlowPlane plane(std::move(fc));
  plane.submit(chain_request(3), kChainRoute);
  plane.run_for(sim::duration::seconds(100));

  const auto& nl = collector.kind(core::Priority::kNetworkLayer);
  EXPECT_EQ(nl.requests_submitted, 1u);
  EXPECT_EQ(nl.pairs_delivered, 3u);
  EXPECT_EQ(nl.requests_completed, 1u);
  EXPECT_EQ(nl.request_latency_s.count(), 1u);
  EXPECT_GT(nl.fidelity.mean(), 0.7);
  // The phase decomposition (generation + correction, swap folded into
  // the model) accounts for each pair's latency at flow level too.
  EXPECT_EQ(collector.phase_hist(metrics::Phase::kGeneration).count(), 3u);
  EXPECT_EQ(collector.phase_hist(metrics::Phase::kDelivery).count(), 3u);
  EXPECT_GT(collector.phase_hist(metrics::Phase::kDelivery).mean(), 0.0);
}

// ---------------------------------------------------------------------
// The oracle: flow vs full detail on a 3-node chain, same traffic.
// ---------------------------------------------------------------------

core::LinkConfig oracle_link_config(std::uint64_t seed) {
  core::LinkConfig lc;
  lc.scenario = hw::ScenarioParams::lab();
  lc.scenario.nv.carbon_t2_ns = 5e9;
  lc.scenario.nv.carbon_coupling_rad_per_s /= 10.0;
  lc.backend = qstate::BackendKind::kBellDiagonal;
  lc.pauli_twirl_installs = true;
  lc.seed = seed;
  return lc;
}

struct OracleResult {
  double p50 = 0.0;
  double p99 = 0.0;
  double mean_fidelity = 0.0;
  std::uint64_t completed = 0;
};

workload::TrafficConfig oracle_traffic(double rate_hz) {
  workload::TrafficConfig traffic;
  traffic.origin = workload::OriginMode::kAllA;  // endpoints pinned (0, 2)
  traffic.min_fidelity = 0.4;
  traffic.link_min_fidelity = 0.7;
  traffic.arrivals = std::make_shared<PoissonProcess>(rate_hz);
  return traffic;
}

template <typename Plane, typename RunFor>
OracleResult drive_oracle(routing::Router& router,
                          metrics::Collector& collector, Plane& plane,
                          RunFor&& run_for, double rate_hz,
                          std::uint64_t requests) {
  workload::DriverConfig tuning;
  tuning.seed = 7;
  tuning.poll_interval = sim::duration::milliseconds(1);
  tuning.max_requests = requests;
  auto driver = workload::WorkloadDriver::for_routed(
      router, oracle_traffic(rate_hz), tuning, collector);
  driver->start();
  const auto& rs = router.stats();
  while ((driver->requests_issued() < requests ||
          rs.completed + rs.failed + rs.rejected < rs.submitted) &&
         sim::to_seconds(plane.simulator().now()) < 300.0) {
    run_for(sim::duration::milliseconds(500));
  }
  driver->stop();
  OracleResult result;
  result.p50 = collector.request_latency_hist().p50();
  result.p99 = collector.request_latency_hist().p99();
  result.mean_fidelity =
      collector.kind(core::Priority::kNetworkLayer).fidelity.mean();
  result.completed = rs.completed;
  return result;
}

double relerr(double cur, double ref) {
  return std::abs(cur - ref) / std::max(std::abs(ref), 1e-9);
}

TEST(FlowPlaneOracle, MatchesFullDetailTailsOnChain) {
  constexpr std::uint64_t kSeed = 7;
  constexpr std::uint64_t kRequests = 120;
  const double floor_menu[] = {0.7};

  // Shared operating point: one standalone link, probed once.
  netlayer::FlowCalibration cal;
  {
    core::Link link(oracle_link_config(kSeed));
    cal = netlayer::FlowCalibration::from_link(link, floor_menu);
  }
  ASSERT_NE(cal.best(), nullptr);
  const double rate_hz = 0.3 / cal.best()->pair_time_s;

  // Full-detail leg.
  OracleResult full;
  {
    routing::Graph graph = routing::Graph::chain(3);
    netlayer::NetworkConfig nc = routing::make_network_config(
        graph, oracle_link_config(kSeed), kSeed);
    netlayer::QuantumNetwork net(nc);
    metrics::Collector collector;
    netlayer::SwapService swap(net, &collector);
    routing::Router router(graph, swap, {}, &collector);
    router.annotate_from_network(floor_menu);
    net.start();
    full = drive_oracle(router, collector, net,
                        [&net](sim::SimTime span) { net.run_for(span); },
                        rate_hz, kRequests);
  }

  // Flow leg, identical traffic.
  OracleResult flow;
  {
    routing::Graph graph = routing::Graph::chain(3);
    metrics::Collector collector;
    netlayer::FlowPlaneConfig fc;
    for (const routing::Graph::Edge& e : graph.edges()) {
      fc.edges.emplace_back(e.a, e.b);
    }
    fc.calibration = cal;
    fc.collector = &collector;
    fc.seed = kSeed;
    netlayer::FlowPlane plane(std::move(fc));
    routing::Router router(graph, plane, {}, &collector);
    router.annotate_from_network(floor_menu);
    flow = drive_oracle(router, collector, plane,
                        [&plane](sim::SimTime span) { plane.run_for(span); },
                        rate_hz, kRequests);
  }

  ASSERT_EQ(full.completed, kRequests);
  ASSERT_EQ(flow.completed, kRequests);
  // Documented fast-path tolerance (see DESIGN.md "Workload engine"):
  // latency percentiles within 35% of the oracle at this sample size
  // (bench_workload_scale gates the same bound at 400 requests in CI),
  // mean delivered fidelity within 0.02 absolute.
  EXPECT_LT(relerr(flow.p50, full.p50), 0.35)
      << "p50 " << flow.p50 << " vs " << full.p50;
  EXPECT_LT(relerr(flow.p99, full.p99), 0.35)
      << "p99 " << flow.p99 << " vs " << full.p99;
  EXPECT_NEAR(flow.mean_fidelity, full.mean_fidelity, 0.02);
}

}  // namespace
}  // namespace qlink
