#include <gtest/gtest.h>

#include <cmath>

#include "quantum/bell.hpp"
#include "quantum/channels.hpp"
#include "quantum/registry.hpp"

namespace qlink::quantum {
namespace {

using gates::Basis;

class RegistryTest : public ::testing::Test {
 protected:
  sim::Random random_{99};
  QuantumRegistry reg_{random_};
};

TEST_F(RegistryTest, CreateAllocatesGroundState) {
  const QubitId q = reg_.create();
  EXPECT_TRUE(reg_.exists(q));
  EXPECT_EQ(reg_.group_size(q), 1u);
  const QubitId ids[] = {q};
  const std::vector<Complex> zero{1, 0};
  EXPECT_NEAR(reg_.fidelity(ids, zero), 1.0, 1e-12);
}

TEST_F(RegistryTest, DiscardRemovesQubit) {
  const QubitId q = reg_.create();
  reg_.discard(q);
  EXPECT_FALSE(reg_.exists(q));
  EXPECT_EQ(reg_.live_qubits(), 0u);
}

TEST_F(RegistryTest, OperationsOnUnknownQubitThrow) {
  const QubitId ids[] = {777};
  EXPECT_THROW(reg_.apply_unitary(gates::x(), ids), std::invalid_argument);
  EXPECT_THROW(reg_.measure(777, Basis::kZ), std::invalid_argument);
}

TEST_F(RegistryTest, TwoQubitGateMergesGroups) {
  const QubitId a = reg_.create();
  const QubitId b = reg_.create();
  EXPECT_EQ(reg_.group_size(a), 1u);
  const QubitId ha[] = {a};
  reg_.apply_unitary(gates::h(), ha);
  const QubitId ab[] = {a, b};
  reg_.apply_unitary(gates::cnot(), ab);
  EXPECT_EQ(reg_.group_size(a), 2u);
  EXPECT_EQ(reg_.group_size(b), 2u);
  EXPECT_NEAR(
      reg_.fidelity(ab, bell::state_vector(bell::BellState::kPhiPlus)), 1.0,
      1e-12);
}

TEST_F(RegistryTest, MeasureCollapsesAndSeparates) {
  const QubitId a = reg_.create();
  const QubitId b = reg_.create();
  const QubitId ha[] = {a};
  reg_.apply_unitary(gates::h(), ha);
  const QubitId ab[] = {a, b};
  reg_.apply_unitary(gates::cnot(), ab);

  const int oa = reg_.measure(a, Basis::kZ);
  EXPECT_EQ(reg_.group_size(a), 1u);
  // The partner collapsed to the correlated value.
  const int ob = reg_.measure(b, Basis::kZ);
  EXPECT_EQ(oa, ob);
}

TEST_F(RegistryTest, MeasurementStatisticsAreCorrect) {
  int ones = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const QubitId q = reg_.create();
    const QubitId ids[] = {q};
    reg_.apply_unitary(gates::h(), ids);
    ones += reg_.measure(q, Basis::kZ);
    reg_.discard(q);
  }
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.05);
}

TEST_F(RegistryTest, MeasureInXBasis) {
  const QubitId q = reg_.create();
  const QubitId ids[] = {q};
  reg_.apply_unitary(gates::h(), ids);  // |+> = |X,0>
  EXPECT_EQ(reg_.measure(q, Basis::kX), 0);
}

TEST_F(RegistryTest, BellMeasurementsAntiCorrelatedForPsiMinus) {
  for (int i = 0; i < 50; ++i) {
    const QubitId a = reg_.create();
    const QubitId b = reg_.create();
    const QubitId ab[] = {a, b};
    reg_.set_state(ab, DensityMatrix::from_pure(bell::state_vector(
                           bell::BellState::kPsiMinus)));
    const auto basis = static_cast<Basis>(i % 3);
    const int oa = reg_.measure(a, basis);
    const int ob = reg_.measure(b, basis);
    EXPECT_NE(oa, ob);
    reg_.discard(a);
    reg_.discard(b);
  }
}

TEST_F(RegistryTest, SetStateInstallsEntanglement) {
  const QubitId a = reg_.create();
  const QubitId b = reg_.create();
  const QubitId ab[] = {a, b};
  reg_.set_state(ab, DensityMatrix::from_pure(bell::state_vector(
                         bell::BellState::kPsiPlus)));
  EXPECT_EQ(reg_.group_size(a), 2u);
  EXPECT_NEAR(
      reg_.fidelity(ab, bell::state_vector(bell::BellState::kPsiPlus)), 1.0,
      1e-12);
}

TEST_F(RegistryTest, SetStateDropsOldCorrelations) {
  const QubitId a = reg_.create();
  const QubitId b = reg_.create();
  const QubitId c = reg_.create();
  const QubitId ab[] = {a, b};
  reg_.set_state(ab, DensityMatrix::from_pure(bell::state_vector(
                         bell::BellState::kPsiPlus)));
  // Re-target a onto c: the old a-b entanglement must be severed.
  const QubitId ac[] = {a, c};
  reg_.set_state(ac, DensityMatrix::from_pure(bell::state_vector(
                         bell::BellState::kPsiPlus)));
  EXPECT_EQ(reg_.group_size(b), 1u);
  EXPECT_NEAR(
      reg_.fidelity(ac, bell::state_vector(bell::BellState::kPsiPlus)), 1.0,
      1e-12);
}

TEST_F(RegistryTest, ResetReturnsToGround) {
  const QubitId q = reg_.create();
  const QubitId ids[] = {q};
  reg_.apply_unitary(gates::x(), ids);
  reg_.reset(q);
  const std::vector<Complex> zero{1, 0};
  EXPECT_NEAR(reg_.fidelity(ids, zero), 1.0, 1e-12);
}

TEST_F(RegistryTest, ResetSeversEntanglement) {
  const QubitId a = reg_.create();
  const QubitId b = reg_.create();
  const QubitId ab[] = {a, b};
  reg_.set_state(ab, DensityMatrix::from_pure(bell::state_vector(
                         bell::BellState::kPhiPlus)));
  reg_.reset(a);
  EXPECT_EQ(reg_.group_size(a), 1u);
  EXPECT_EQ(reg_.group_size(b), 1u);
  // b is left maximally mixed.
  const QubitId bb[] = {b};
  const DensityMatrix rb = reg_.peek(bb);
  EXPECT_NEAR(rb.matrix()(0, 0).real(), 0.5, 1e-12);
}

TEST_F(RegistryTest, PeekPreservesRequestOrderAcrossGroups) {
  const QubitId a = reg_.create();
  const QubitId b = reg_.create();
  const QubitId c = reg_.create();
  // a,c entangled; b separate in |1>.
  const QubitId ac[] = {a, c};
  reg_.set_state(ac, DensityMatrix::from_pure(bell::state_vector(
                         bell::BellState::kPhiPlus)));
  const QubitId bb[] = {b};
  reg_.apply_unitary(gates::x(), bb);

  const QubitId abc[] = {a, b, c};
  const DensityMatrix rho = reg_.peek(abc);
  EXPECT_EQ(rho.num_qubits(), 3);
  // P(|0 1 0>) = P(|1 1 1>) = 1/2 in the (a, b, c) order.
  EXPECT_NEAR(rho.matrix()(0b010, 0b010).real(), 0.5, 1e-12);
  EXPECT_NEAR(rho.matrix()(0b111, 0b111).real(), 0.5, 1e-12);
}

TEST_F(RegistryTest, PeekDoesNotDisturbState) {
  const QubitId a = reg_.create();
  const QubitId b = reg_.create();
  const QubitId ab[] = {a, b};
  reg_.set_state(ab, DensityMatrix::from_pure(bell::state_vector(
                         bell::BellState::kPsiPlus)));
  (void)reg_.peek(ab);
  (void)reg_.peek(ab);
  EXPECT_NEAR(
      reg_.fidelity(ab, bell::state_vector(bell::BellState::kPsiPlus)), 1.0,
      1e-12);
}

TEST_F(RegistryTest, KrausOnEntangledPairDegradesFidelity) {
  const QubitId a = reg_.create();
  const QubitId b = reg_.create();
  const QubitId ab[] = {a, b};
  reg_.set_state(ab, DensityMatrix::from_pure(bell::state_vector(
                         bell::BellState::kPsiPlus)));
  const QubitId ids[] = {a};
  reg_.apply_kraus(channels::dephasing(0.1), ids);
  const double f =
      reg_.fidelity(ab, bell::state_vector(bell::BellState::kPsiPlus));
  EXPECT_NEAR(f, 0.9, 1e-12);
}

TEST_F(RegistryTest, DuplicateQubitsRejected) {
  const QubitId a = reg_.create();
  const QubitId ids[] = {a, a};
  EXPECT_THROW(reg_.apply_unitary(gates::cnot(), ids), std::invalid_argument);
}

TEST_F(RegistryTest, ManyQubitsStayCheapWhenUnentangled) {
  std::vector<QubitId> qs;
  for (int i = 0; i < 64; ++i) qs.push_back(reg_.create());
  for (QubitId q : qs) {
    EXPECT_EQ(reg_.group_size(q), 1u);
    const QubitId ids[] = {q};
    reg_.apply_unitary(gates::h(), ids);
  }
  EXPECT_EQ(reg_.live_qubits(), 64u);
  for (QubitId q : qs) reg_.discard(q);
  EXPECT_EQ(reg_.live_qubits(), 0u);
}

}  // namespace
}  // namespace qlink::quantum
