#include <gtest/gtest.h>

#include "workload/workload.hpp"

namespace qlink::workload {
namespace {

using core::Link;
using core::LinkConfig;
using core::Priority;

LinkConfig lab(std::uint64_t seed) {
  LinkConfig c;
  c.scenario = hw::ScenarioParams::lab();
  c.seed = seed;
  return c;
}

TEST(UsagePattern, Table2Fractions) {
  const auto uniform = usage_pattern("Uniform", 0.99);
  EXPECT_NEAR(uniform.config.nl.fraction, 0.99 / 3, 1e-12);
  EXPECT_EQ(uniform.config.nl.k_max, 1);

  const auto more_md = usage_pattern("MoreMD", 0.99);
  EXPECT_NEAR(more_md.config.md.fraction, 0.99 * 4 / 6, 1e-12);
  EXPECT_EQ(more_md.config.md.k_max, 255);

  const auto no_nl = usage_pattern("NoNLMoreMD", 0.99);
  EXPECT_EQ(no_nl.config.nl.fraction, 0.0);
  EXPECT_NEAR(no_nl.config.md.fraction, 0.99 * 4 / 5, 1e-12);

  EXPECT_THROW(usage_pattern("Bogus"), std::invalid_argument);
}

TEST(WorkloadDriver, IssuesAndCompletesMdRequests) {
  Link link(lab(1));
  metrics::Collector collector;
  WorkloadConfig cfg;
  cfg.md = {0.99, 3};
  cfg.origin = OriginMode::kAllA;
  cfg.min_fidelity = 0.6;
  auto driver_ptr = WorkloadDriver::for_link(link, cfg.traffic(),
                                             cfg.tuning(), collector);
  WorkloadDriver& driver = *driver_ptr;
  link.start();
  driver.start();
  link.run_for(sim::duration::seconds(20));
  driver.stop();

  EXPECT_GT(driver.requests_issued(), 5u);
  const auto& md = collector.kind(Priority::kMeasureDirectly);
  EXPECT_GT(md.pairs_delivered, 10u);
  EXPECT_GT(md.requests_completed, 3u);
  EXPECT_GT(collector.throughput(Priority::kMeasureDirectly), 0.5);
  // QBER data was gathered in all three bases.
  EXPECT_TRUE(collector.fidelity_from_qber().has_value());
  EXPECT_GT(*collector.fidelity_from_qber(), 0.5);
}

TEST(WorkloadDriver, KeepPairsAreConsumedAndSlotsRecycled) {
  Link link(lab(2));
  metrics::Collector collector;
  WorkloadConfig cfg;
  cfg.ck = {0.99, 2};
  cfg.origin = OriginMode::kAllA;
  cfg.min_fidelity = 0.6;
  auto driver_ptr = WorkloadDriver::for_link(link, cfg.traffic(),
                                             cfg.tuning(), collector);
  WorkloadDriver& driver = *driver_ptr;
  link.start();
  driver.start();
  link.run_for(sim::duration::seconds(25));
  driver.stop();

  const auto& ck = collector.kind(Priority::kCreateKeep);
  EXPECT_GT(ck.pairs_delivered, 5u);
  // Slots recycled: far more pairs than memory qubits.
  EXPECT_GT(ck.pairs_delivered,
            static_cast<std::uint64_t>(
                link.device_a().num_memory_qubits()));
  // Fidelity was actually measured on live states.
  EXPECT_GT(ck.fidelity.count(), 0u);
  EXPECT_GT(ck.fidelity.mean(), 0.5);
  EXPECT_LE(ck.fidelity.mean(), 1.0);
  EXPECT_GT(driver.pairs_matched(), 0u);
}

TEST(WorkloadDriver, RandomOriginExercisesBothNodes) {
  Link link(lab(3));
  metrics::Collector collector;
  WorkloadConfig cfg;
  cfg.md = {0.99, 1};
  cfg.origin = OriginMode::kRandom;
  auto driver_ptr = WorkloadDriver::for_link(link, cfg.traffic(),
                                             cfg.tuning(), collector);
  WorkloadDriver& driver = *driver_ptr;
  link.start();
  driver.start();
  link.run_for(sim::duration::seconds(30));
  driver.stop();
  ASSERT_TRUE(collector.has_origin(Link::kNodeA));
  ASSERT_TRUE(collector.has_origin(Link::kNodeB));
  EXPECT_GT(collector.by_origin(Link::kNodeA).pairs_delivered, 0u);
  EXPECT_GT(collector.by_origin(Link::kNodeB).pairs_delivered, 0u);
}

TEST(WorkloadDriver, LoadScalesThroughput) {
  auto run = [](double load, std::uint64_t seed) {
    Link link(lab(seed));
    metrics::Collector collector;
    WorkloadConfig cfg;
    cfg.md = {load, 1};
    cfg.origin = OriginMode::kAllA;
    auto driver_ptr = WorkloadDriver::for_link(link, cfg.traffic(),
                                             cfg.tuning(), collector);
  WorkloadDriver& driver = *driver_ptr;
    link.start();
    driver.start();
    link.run_for(sim::duration::seconds(25));
    driver.stop();
    return collector.throughput(Priority::kMeasureDirectly);
  };
  const double low = run(0.3, 4);
  const double high = run(0.99, 4);
  EXPECT_GT(high, low * 1.5);
}

TEST(WorkloadDriver, MixedKindsAllServed) {
  Link link(lab(5));
  metrics::Collector collector;
  const auto pattern = usage_pattern("Uniform", 0.99);
  WorkloadConfig cfg = pattern.config;
  cfg.origin = OriginMode::kRandom;
  auto driver_ptr = WorkloadDriver::for_link(link, cfg.traffic(),
                                             cfg.tuning(), collector);
  WorkloadDriver& driver = *driver_ptr;
  link.start();
  driver.start();
  link.run_for(sim::duration::seconds(40));
  driver.stop();
  EXPECT_GT(collector.kind(Priority::kNetworkLayer).pairs_delivered, 0u);
  EXPECT_GT(collector.kind(Priority::kCreateKeep).pairs_delivered, 0u);
  EXPECT_GT(collector.kind(Priority::kMeasureDirectly).pairs_delivered, 0u);
}

}  // namespace
}  // namespace qlink::workload
