#include <gtest/gtest.h>

#include <cmath>

#include "hw/herald_model.hpp"
#include "net/packets.hpp"
#include "quantum/bell.hpp"
#include "quantum/channels.hpp"
#include "quantum/protocols.hpp"
#include "sim/random.hpp"

/// Parameterised property sweeps: invariants that must hold across whole
/// parameter ranges rather than at hand-picked points.

namespace qlink {
namespace {

using quantum::Complex;
using quantum::DensityMatrix;
using quantum::Matrix;
namespace bell = quantum::bell;
namespace channels = quantum::channels;
namespace gates = quantum::gates;

// ---------------------------------------------------------------------------
// Channels are CPTP for every parameter value.

class ChannelCptpP : public ::testing::TestWithParam<double> {};

double completeness_error(const std::vector<Matrix>& ks) {
  Matrix sum(ks.front().cols(), ks.front().cols());
  for (const auto& k : ks) sum += k.dagger() * k;
  return sum.distance(Matrix::identity(sum.rows()));
}

TEST_P(ChannelCptpP, DephasingIsCptp) {
  EXPECT_LT(completeness_error(channels::dephasing(GetParam())), 1e-12);
}

TEST_P(ChannelCptpP, DepolarizingIsCptp) {
  EXPECT_LT(completeness_error(channels::depolarizing(GetParam())), 1e-12);
}

TEST_P(ChannelCptpP, AmplitudeDampingIsCptp) {
  EXPECT_LT(completeness_error(channels::amplitude_damping(GetParam())),
            1e-12);
}

TEST_P(ChannelCptpP, ChannelsPreserveTraceAndPositivityOnRandomStates) {
  sim::Random rnd(static_cast<std::uint64_t>(GetParam() * 1e6) + 1);
  // Random pure 2-qubit state.
  std::vector<Complex> amp(4);
  for (auto& a : amp) a = Complex{rnd.uniform(-1, 1), rnd.uniform(-1, 1)};
  quantum::normalize(amp);
  DensityMatrix rho = DensityMatrix::from_pure(amp);
  const int t0[] = {0};
  const int t1[] = {1};
  rho.apply_kraus(channels::dephasing(GetParam()), t0);
  rho.apply_kraus(channels::amplitude_damping(GetParam()), t1);
  EXPECT_NEAR(rho.trace_real(), 1.0, 1e-10);
  // Diagonal entries are probabilities.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GE(rho.matrix()(i, i).real(), -1e-12);
    EXPECT_LE(rho.matrix()(i, i).real(), 1.0 + 1e-12);
  }
  EXPECT_LE(rho.purity(), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ParameterSweep, ChannelCptpP,
                         ::testing::Values(0.0, 0.01, 0.1, 0.25, 0.5, 0.75,
                                           0.9, 0.99, 1.0));

// ---------------------------------------------------------------------------
// Eq. 16 (fidelity from QBERs) holds for every Bell state under every
// single-qubit noise combination in the sweep.

struct BellNoiseCase {
  bell::BellState state;
  double dephase;
  double damp;
  double depol_f;
};

class BellQberP : public ::testing::TestWithParam<BellNoiseCase> {};

TEST_P(BellQberP, FidelityEqualsQberReconstruction) {
  const auto& c = GetParam();
  DensityMatrix rho =
      DensityMatrix::from_pure(bell::state_vector(c.state));
  const int t0[] = {0};
  const int t1[] = {1};
  rho.apply_kraus(channels::dephasing(c.dephase), t0);
  rho.apply_kraus(channels::amplitude_damping(c.damp), t1);
  rho.apply_kraus(channels::depolarizing(c.depol_f), t0);
  const double reconstructed = bell::fidelity_from_qbers(
      bell::qber(rho, c.state, gates::Basis::kX),
      bell::qber(rho, c.state, gates::Basis::kY),
      bell::qber(rho, c.state, gates::Basis::kZ));
  EXPECT_NEAR(bell::fidelity(rho, c.state), reconstructed, 1e-10);
}

std::vector<BellNoiseCase> bell_noise_cases() {
  std::vector<BellNoiseCase> cases;
  for (auto s : {bell::BellState::kPhiPlus, bell::BellState::kPhiMinus,
                 bell::BellState::kPsiPlus, bell::BellState::kPsiMinus}) {
    for (double d : {0.0, 0.1, 0.3}) {
      for (double a : {0.0, 0.2}) {
        cases.push_back({s, d, a, 0.95});
        cases.push_back({s, d, a, 0.7});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllBellStatesAllNoise, BellQberP,
                         ::testing::ValuesIn(bell_noise_cases()));

// ---------------------------------------------------------------------------
// Herald model invariants over the full alpha grid.

class HeraldAlphaP : public ::testing::TestWithParam<double> {
 protected:
  static const hw::HeraldModel& lab_model() {
    static const hw::HeraldModel model(hw::ScenarioParams::lab().herald);
    return model;
  }
  static const hw::HeraldModel& ql_model() {
    static const hw::HeraldModel model(hw::ScenarioParams::ql2020().herald);
    return model;
  }
};

TEST_P(HeraldAlphaP, DistributionIsNormalisedAndStatesValid) {
  for (const hw::HeraldModel* m : {&lab_model(), &ql_model()}) {
    const auto d = m->compute(GetParam(), GetParam());
    EXPECT_NEAR(d.p_fail + d.p_psi_plus + d.p_psi_minus, 1.0, 1e-9);
    EXPECT_GE(d.p_psi_plus, 0.0);
    EXPECT_GE(d.p_psi_minus, 0.0);
    EXPECT_NEAR(d.post_psi_plus.trace_real(), 1.0, 1e-9);
    EXPECT_NEAR(d.post_psi_minus.trace_real(), 1.0, 1e-9);
    EXPECT_TRUE(d.post_psi_plus.matrix().is_hermitian(1e-9));
    EXPECT_LE(d.post_psi_plus.purity(), 1.0 + 1e-9);
    EXPECT_GE(d.fidelity_plus, 0.0);
    EXPECT_LE(d.fidelity_plus, 1.0 + 1e-9);
  }
}

TEST_P(HeraldAlphaP, AsymmetricAlphasStillNormalise) {
  const double a = GetParam();
  const double b = std::min(0.5, a * 1.7 + 0.01);
  const auto d = lab_model().compute(a, b);
  EXPECT_NEAR(d.p_fail + d.p_psi_plus + d.p_psi_minus, 1.0, 1e-9);
  EXPECT_GT(d.p_success(), 0.0);
}

TEST_P(HeraldAlphaP, HeraldedStateBeatsRandomGuess) {
  // Above the dark-count floor the heralded state must carry real
  // entanglement signal: F > 1/4 (random two-qubit state).
  const auto d = lab_model().compute(GetParam(), GetParam());
  EXPECT_GT(d.fidelity_plus, 0.25);
}

INSTANTIATE_TEST_SUITE_P(AlphaGrid, HeraldAlphaP,
                         ::testing::Values(0.005, 0.01, 0.02, 0.05, 0.1,
                                           0.15, 0.2, 0.3, 0.4, 0.5));

// ---------------------------------------------------------------------------
// Packet codecs: encode/decode round-trips across randomised field
// values, and the CRC rejects every single-bit flip.

class PacketFuzzP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PacketFuzzP, DqpRoundTripRandomised) {
  sim::Random rnd(GetParam());
  net::DqpPacket p;
  p.frame_type = static_cast<net::DqpFrameType>(rnd.uniform_int(0, 2));
  p.comm_seq = static_cast<std::uint32_t>(rnd.uniform_int(0, 1 << 30));
  p.aid = {static_cast<std::uint8_t>(rnd.uniform_int(0, 15)),
           static_cast<std::uint32_t>(rnd.uniform_int(0, 1 << 30))};
  p.schedule_cycle = static_cast<std::uint64_t>(rnd.uniform_int(0, 1 << 30));
  p.timeout_cycle = static_cast<std::uint64_t>(rnd.uniform_int(0, 1 << 30));
  p.min_fidelity = rnd.uniform();
  p.purpose_id = static_cast<std::uint16_t>(rnd.uniform_int(0, 65535));
  p.create_id = static_cast<std::uint32_t>(rnd.uniform_int(0, 1 << 30));
  p.num_pairs = static_cast<std::uint16_t>(rnd.uniform_int(1, 65535));
  p.priority = static_cast<std::uint8_t>(rnd.uniform_int(0, 2));
  p.store = rnd.bernoulli(0.5);
  p.atomic = rnd.bernoulli(0.5);
  p.measure_directly = rnd.bernoulli(0.5);
  p.master_request = rnd.bernoulli(0.5);
  p.consecutive = rnd.bernoulli(0.5);
  p.init_virtual_finish = rnd.uniform(0, 1e9);
  p.est_cycles_per_pair = static_cast<std::uint32_t>(rnd.uniform_int(1, 1 << 30));
  p.origin_node = static_cast<std::uint32_t>(rnd.uniform_int(0, 1));
  p.create_time_ns = rnd.uniform_int(0, 1ll << 60);
  p.max_time_ns = rnd.uniform_int(0, 1ll << 60);

  const net::DqpPacket q = net::DqpPacket::decode(p.encode());
  EXPECT_EQ(q.frame_type, p.frame_type);
  EXPECT_EQ(q.comm_seq, p.comm_seq);
  EXPECT_EQ(q.aid, p.aid);
  EXPECT_EQ(q.schedule_cycle, p.schedule_cycle);
  EXPECT_EQ(q.timeout_cycle, p.timeout_cycle);
  EXPECT_DOUBLE_EQ(q.min_fidelity, p.min_fidelity);
  EXPECT_EQ(q.num_pairs, p.num_pairs);
  EXPECT_EQ(q.store, p.store);
  EXPECT_EQ(q.atomic, p.atomic);
  EXPECT_EQ(q.measure_directly, p.measure_directly);
  EXPECT_EQ(q.consecutive, p.consecutive);
  EXPECT_DOUBLE_EQ(q.init_virtual_finish, p.init_virtual_finish);
  EXPECT_EQ(q.create_time_ns, p.create_time_ns);
  EXPECT_EQ(q.max_time_ns, p.max_time_ns);
}

TEST_P(PacketFuzzP, EverySingleBitFlipIsDetected) {
  sim::Random rnd(GetParam() ^ 0xDEADBEEF);
  net::GenPacket p;
  p.node_id = static_cast<std::uint32_t>(rnd.uniform_int(0, 1));
  p.cycle = static_cast<std::uint64_t>(rnd.uniform_int(0, 1ll << 40));
  p.aid = {static_cast<std::uint8_t>(rnd.uniform_int(0, 15)),
           static_cast<std::uint32_t>(rnd.uniform_int(0, 1 << 30))};
  p.alpha = rnd.uniform();
  auto framed = net::seal(net::PacketType::kMhpGen, p.encode());
  for (std::size_t byte = 0; byte < framed.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      framed[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_FALSE(net::unseal(framed).has_value())
          << "byte " << byte << " bit " << bit;
      framed[byte] ^= static_cast<std::uint8_t>(1 << bit);
    }
  }
  EXPECT_TRUE(net::unseal(framed).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketFuzzP,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

// ---------------------------------------------------------------------------
// Teleportation is exact for random input states and all Bell resources.

class TeleportP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TeleportP, RandomStateRandomBellResource) {
  sim::Random rnd(GetParam());
  quantum::QuantumRegistry reg(rnd);
  const auto s = static_cast<bell::BellState>(GetParam() % 4);
  const auto a = reg.create();
  const auto b = reg.create();
  const quantum::QubitId ab[] = {a, b};
  reg.set_state(ab, DensityMatrix::from_pure(bell::state_vector(s)));

  const double theta = rnd.uniform(0, 3.14159);
  const double phi = rnd.uniform(0, 6.28318);
  const auto src = reg.create();
  const quantum::QubitId sid[] = {src};
  reg.apply_unitary(gates::ry(theta), sid);
  reg.apply_unitary(gates::rz(phi), sid);

  quantum::protocols::teleport(reg, src, a, b, s);
  const quantum::QubitId rid[] = {b};
  const std::vector<Complex> expect{
      std::cos(theta / 2) * std::exp(Complex{0, -phi / 2}),
      std::sin(theta / 2) * std::exp(Complex{0, phi / 2})};
  EXPECT_NEAR(reg.peek(rid).fidelity(expect), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TeleportP,
                         ::testing::Range<std::uint64_t>(100, 124));

// ---------------------------------------------------------------------------
// BBPSSW formula properties across the fidelity range.

class DistillP : public ::testing::TestWithParam<double> {};

TEST_P(DistillP, ImprovesAboveHalfAndStaysInRange) {
  const double f = GetParam();
  const double out = quantum::protocols::bbpssw_output_fidelity(f);
  EXPECT_GE(out, 0.0);
  EXPECT_LE(out, 1.0);
  if (f > 0.5 && f < 1.0) EXPECT_GT(out, f);
  const double p = quantum::protocols::bbpssw_success_probability(f);
  EXPECT_GT(p, 0.0);
  EXPECT_LE(p, 1.0);
}

INSTANTIATE_TEST_SUITE_P(FidelityGrid, DistillP,
                         ::testing::Values(0.3, 0.5, 0.55, 0.6, 0.7, 0.8,
                                           0.9, 0.95, 0.99));

}  // namespace
}  // namespace qlink
