#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "qstate/backend_registry.hpp"
#include "qstate/bell_algebra.hpp"
#include "qstate/bell_backend.hpp"
#include "qstate/dense_backend.hpp"
#include "quantum/bell.hpp"
#include "quantum/channels.hpp"
#include "quantum/gates.hpp"
#include "quantum/registry.hpp"

/// Unit tests for the pluggable quantum-state backend subsystem
/// (src/qstate/): the Bell-diagonal closed forms are checked op-by-op
/// against the dense reference with identical Random streams, and the
/// promotion rules are exercised explicitly. Full-stack equivalence
/// (whole link / chain runs) lives in test_backend_equivalence.cpp.

namespace qlink::quantum {
namespace {

using gates::Basis;
using qstate::BackendKind;
namespace ba = qstate::bell_algebra;

std::array<double, 4> arbitrary_coeffs(int salt) {
  // Deterministic, not symmetric, strictly positive, normalised.
  std::array<double, 4> p{0.55 + 0.01 * salt, 0.20, 0.15, 0.10 - 0.01 * salt};
  double total = 0.0;
  for (double v : p) total += v;
  for (double& v : p) v /= total;
  return p;
}

/// Two registries (dense reference, Bell-diagonal) driven by
/// identically seeded Random sources.
struct BackendHarness {
  sim::Random random_dense{12345};
  sim::Random random_bell{12345};
  QuantumRegistry dense{random_dense, BackendKind::kDense};
  QuantumRegistry bell{random_bell, BackendKind::kBellDiagonal};

  std::pair<QubitId, QubitId> install_pair(QuantumRegistry& reg,
                                           const std::array<double, 4>& p) {
    const QubitId a = reg.create();
    const QubitId b = reg.create();
    const QubitId pair[] = {a, b};
    reg.set_state(pair, bell::from_coefficients(p));
    return {a, b};
  }

  void expect_pair_states_match(QubitId a, QubitId b, double tol = 1e-12) {
    const QubitId pair[] = {a, b};
    EXPECT_TRUE(dense.peek(pair).approx_equal(bell.peek(pair), tol));
  }
};

TEST(BellAlgebra, PauliPermutationsMatchDenseConjugation) {
  const auto p = arbitrary_coeffs(0);
  const DensityMatrix rho = bell::from_coefficients(p);
  const Matrix* paulis[] = {&gates::i2(), &gates::x(), &gates::y(),
                            &gates::z()};
  for (int code = 0; code < 4; ++code) {
    for (const int qubit : {0, 1}) {
      DensityMatrix expect = rho;
      const int t[] = {qubit};
      expect.apply_unitary(*paulis[code], t);
      const DensityMatrix got =
          bell::from_coefficients(ba::apply_pauli(p, code));
      EXPECT_TRUE(got.approx_equal(expect, 1e-12))
          << "pauli " << code << " qubit " << qubit;
    }
  }
}

TEST(BellAlgebra, ChannelWeightsRecognizePauliChannels) {
  const auto deph = channels::dephasing(0.13);
  const auto w1 = ba::pauli_channel_weights(deph);
  EXPECT_TRUE(w1.exact);
  EXPECT_NEAR(w1.w[0], 0.87, 1e-12);
  EXPECT_NEAR(w1.w[3], 0.13, 1e-12);

  const auto depol = channels::depolarizing(0.91);
  const auto w2 = ba::pauli_channel_weights(depol);
  EXPECT_TRUE(w2.exact);
  EXPECT_NEAR(w2.w[0], 0.91, 1e-12);
  EXPECT_NEAR(w2.w[1], 0.03, 1e-12);

  const auto ad = channels::amplitude_damping(0.2);
  const auto w3 = ba::pauli_channel_weights(ad);
  EXPECT_FALSE(w3.exact);
  // Chi-matrix diagonal still sums to 1 for a trace-preserving channel.
  EXPECT_NEAR(w3.w[0] + w3.w[1] + w3.w[2] + w3.w[3], 1.0, 1e-12);
}

TEST(BellAlgebra, T1T2TwirlWeightsAreAProbabilityDistribution) {
  const auto w = ba::t1t2_twirl_weights(0.02, 0.01);
  double total = 0.0;
  for (double v : w) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // gamma = 0 reduces to plain dephasing.
  const auto w0 = ba::t1t2_twirl_weights(0.0, 0.25);
  EXPECT_NEAR(w0[0], 0.75, 1e-12);
  EXPECT_NEAR(w0[3], 0.25, 1e-12);
}

TEST(BackendRegistryTest, BuiltinsAndParsing) {
  auto& registry = qstate::BackendRegistry::instance();
  EXPECT_TRUE(registry.contains("dense"));
  EXPECT_TRUE(registry.contains("bell"));
  sim::Random random{1};
  EXPECT_STREQ(registry.make("bell", random)->name(), "bell-diagonal");
  EXPECT_THROW(registry.make("no-such-backend", random),
               std::invalid_argument);
  EXPECT_EQ(qstate::parse_backend_kind("dense"), BackendKind::kDense);
  EXPECT_EQ(qstate::parse_backend_kind("bell"), BackendKind::kBellDiagonal);
  EXPECT_EQ(qstate::parse_backend_kind("bogus"), std::nullopt);
}

TEST(BellBackendTest, BellDiagonalInstallStaysStructured) {
  BackendHarness h;
  const auto p = arbitrary_coeffs(1);
  const auto [da, db] = h.install_pair(h.dense, p);
  const auto [qa, qb] = h.install_pair(h.bell, p);
  (void)da;
  (void)db;
  h.expect_pair_states_match(qa, qb);
  EXPECT_EQ(h.bell.backend().stats().promotions, 0u);
  EXPECT_EQ(h.bell.backend().stats().dense_ops, 0u);
}

TEST(BellBackendTest, PauliNoiseMatchesDenseInClosedForm) {
  BackendHarness h;
  const auto p = arbitrary_coeffs(2);
  const auto [da, db] = h.install_pair(h.dense, p);
  const auto [qa, qb] = h.install_pair(h.bell, p);

  for (QuantumRegistry* reg : {&h.dense, &h.bell}) {
    const QubitId a = reg == &h.dense ? da : qa;
    const QubitId b = reg == &h.dense ? db : qb;
    reg->dephase(a, 0.05);
    reg->depolarize(b, 0.93);
    reg->decay(a, 1e5, -1.0, 3.5e6);  // infinite T1: pure dephasing
    const QubitId ids[] = {b};
    reg->apply_unitary(gates::z(), ids);
    reg->apply_kraus(channels::dephasing(0.02), ids);
  }
  h.expect_pair_states_match(qa, qb);
  EXPECT_EQ(h.bell.backend().stats().promotions, 0u);
  EXPECT_EQ(h.bell.backend().stats().dense_ops, 0u);
}

TEST(BellBackendTest, MeasurementMatchesDenseOutcomeForOutcome) {
  for (const Basis basis : {Basis::kX, Basis::kY, Basis::kZ}) {
    BackendHarness h;
    const auto p = arbitrary_coeffs(3);
    const auto [da, db] = h.install_pair(h.dense, p);
    const auto [qa, qb] = h.install_pair(h.bell, p);

    const int od = h.dense.measure(da, basis);
    const int ob = h.bell.measure(qa, basis);
    EXPECT_EQ(od, ob);  // marginal is exactly 1/2 in both backends

    // The partner's conditional state must agree.
    const QubitId pd[] = {db};
    const QubitId pb[] = {qb};
    EXPECT_TRUE(h.dense.peek(pd).approx_equal(h.bell.peek(pb), 1e-12));
    // And the measured qubit's post state.
    const QubitId md[] = {da};
    const QubitId mb[] = {qa};
    EXPECT_TRUE(h.dense.peek(md).approx_equal(h.bell.peek(mb), 1e-12));
  }
}

TEST(BellBackendTest, ClosedFormSwapMatchesDenseForAllBellCombos) {
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      BackendHarness h;
      std::array<double, 4> pi{};
      std::array<double, 4> pj{};
      pi[i] = 1.0;
      pj[j] = 1.0;
      const auto [du, dc] = h.install_pair(h.dense, pi);
      const auto [dt, dv] = h.install_pair(h.dense, pj);
      const auto [bu, bc] = h.install_pair(h.bell, pi);
      const auto [bt, bv] = h.install_pair(h.bell, pj);

      const auto [dm1, dm2] = h.dense.bell_measure(dc, dt);
      const auto [bm1, bm2] = h.bell.bell_measure(bc, bt);
      EXPECT_EQ(dm1, bm1) << "inputs " << i << "," << j;
      EXPECT_EQ(dm2, bm2) << "inputs " << i << "," << j;

      const QubitId douter[] = {du, dv};
      const QubitId bouter[] = {bu, bv};
      EXPECT_TRUE(
          h.dense.peek(douter).approx_equal(h.bell.peek(bouter), 1e-9))
          << "inputs " << i << "," << j;
      EXPECT_EQ(h.bell.group_size(bu), 2u);
      EXPECT_EQ(h.bell.group_size(bc), 1u);
      EXPECT_EQ(h.bell.backend().stats().promotions, 0u);
    }
  }
}

TEST(BellBackendTest, ClosedFormSwapMatchesDenseForMixedStates) {
  BackendHarness h;
  const auto p1 = arbitrary_coeffs(1);
  const auto p2 = arbitrary_coeffs(4);
  const auto [du, dc] = h.install_pair(h.dense, p1);
  const auto [dt, dv] = h.install_pair(h.dense, p2);
  const auto [bu, bc] = h.install_pair(h.bell, p1);
  const auto [bt, bv] = h.install_pair(h.bell, p2);

  const auto [dm1, dm2] = h.dense.bell_measure(dc, dt);
  const auto [bm1, bm2] = h.bell.bell_measure(bc, bt);
  EXPECT_EQ(dm1, bm1);
  EXPECT_EQ(dm2, bm2);

  const QubitId douter[] = {du, dv};
  const QubitId bouter[] = {bu, bv};
  EXPECT_TRUE(h.dense.peek(douter).approx_equal(h.bell.peek(bouter), 1e-9));
}

TEST(BellBackendTest, SwapGateRelabelsAcrossGroups) {
  // move_comm_to_memory's SWAP between an entangled electron and a
  // fresh carbon must stay in closed form.
  BackendHarness h;
  const auto p = arbitrary_coeffs(5);
  const auto [da, db] = h.install_pair(h.dense, p);
  const auto [ba_, bb] = h.install_pair(h.bell, p);
  const QubitId dc = h.dense.create();
  const QubitId bc = h.bell.create();

  const QubitId dpair[] = {db, dc};
  const QubitId bpair[] = {bb, bc};
  h.dense.apply_unitary(gates::swap(), dpair);
  h.bell.apply_unitary(gates::swap(), bpair);

  // The entanglement moved to (a, c) in both backends.
  const QubitId dac[] = {da, dc};
  const QubitId bac[] = {ba_, bc};
  EXPECT_TRUE(h.dense.peek(dac).approx_equal(h.bell.peek(bac), 1e-12));
  EXPECT_EQ(h.bell.group_size(bc), 2u);
  EXPECT_EQ(h.bell.group_size(bb), 1u);
  EXPECT_EQ(h.bell.backend().stats().promotions, 0u);
}

TEST(BellBackendTest, NonCliffordOpPromotesToDenseWithMatchingState) {
  BackendHarness h;
  const auto p = arbitrary_coeffs(6);
  const auto [da, db] = h.install_pair(h.dense, p);
  const auto [qa, qb] = h.install_pair(h.bell, p);
  (void)db;
  (void)qb;

  const Matrix u = gates::rx(0.3);
  const QubitId dd[] = {da};
  const QubitId bb[] = {qa};
  h.dense.apply_unitary(u, dd);
  h.bell.apply_unitary(u, bb);

  EXPECT_EQ(h.bell.backend().stats().promotions, 1u);
  h.expect_pair_states_match(qa, qb);

  // Once dense, later Pauli noise still matches the reference.
  h.dense.dephase(da, 0.1);
  h.bell.dephase(qa, 0.1);
  h.expect_pair_states_match(qa, qb);
}

TEST(BellBackendTest, FreshInstallDemotesPromotedPair) {
  // The ROADMAP's demotion case: a pair escalated to dense by a
  // non-Clifford op returns to the Bell-diagonal fast path when a fresh
  // (re-twirled) install lands on the same qubits — the install rebuilds
  // the group anyway, so the demotion is free.
  BackendHarness h;
  const auto [qa, qb] = h.install_pair(h.bell, arbitrary_coeffs(9));
  const auto [da, db] = h.install_pair(h.dense, arbitrary_coeffs(9));

  const Matrix u = gates::rx(0.4);
  const QubitId one_b[] = {qa};
  const QubitId one_d[] = {da};
  h.bell.apply_unitary(u, one_b);
  h.dense.apply_unitary(u, one_d);
  EXPECT_EQ(h.bell.backend().stats().promotions, 1u);
  EXPECT_EQ(h.bell.backend().stats().demotions, 0u);

  // Fresh Bell-diagonal install on the same qubits (what
  // pauli_twirl_installs produces for every heralded pair).
  const auto p = arbitrary_coeffs(3);
  const QubitId bpair[] = {qa, qb};
  const QubitId dpair[] = {da, db};
  h.bell.set_state(bpair, bell::from_coefficients(p));
  h.dense.set_state(dpair, bell::from_coefficients(p));
  EXPECT_EQ(h.bell.backend().stats().promotions, 1u);
  EXPECT_EQ(h.bell.backend().stats().demotions, 1u);
  h.expect_pair_states_match(qa, qb);

  // Back on the fast path: closed-form noise, no further promotion.
  const auto fast_before = h.bell.backend().stats().fast_ops;
  h.bell.dephase(qa, 0.1);
  h.dense.dephase(da, 0.1);
  EXPECT_EQ(h.bell.backend().stats().fast_ops, fast_before + 1);
  EXPECT_EQ(h.bell.backend().stats().promotions, 1u);
  h.expect_pair_states_match(qa, qb);

  // The dense reference never demotes (it has no structured manifold).
  EXPECT_EQ(h.dense.backend().stats().demotions, 0u);
}

TEST(BellBackendTest, PartiallyCoveredDenseGroupIsNotADemotion) {
  // The promoted pair (qa, qb) only half-overlaps the install: qb's
  // group stays dense, so nothing was won back — no demotion counted.
  BackendHarness h;
  const auto [qa, qb] = h.install_pair(h.bell, arbitrary_coeffs(5));
  const QubitId one[] = {qa};
  h.bell.apply_unitary(gates::rx(0.4), one);
  EXPECT_EQ(h.bell.backend().stats().promotions, 1u);

  const QubitId fresh = h.bell.create();
  const QubitId mixed[] = {qa, fresh};
  h.bell.set_state(mixed, bell::from_coefficients(arbitrary_coeffs(1)));
  EXPECT_EQ(h.bell.backend().stats().demotions, 0u);
  EXPECT_EQ(h.bell.group_size(qb), 1u);  // qb kept its reduced state
}

TEST(BellBackendTest, InstallOverStructuredPairIsNotADemotion) {
  // Re-installing over a pair that never left the fast path must not
  // count: demotions measure dense groups won back, nothing else.
  BackendHarness h;
  const auto [qa, qb] = h.install_pair(h.bell, arbitrary_coeffs(2));
  const QubitId pair[] = {qa, qb};
  h.bell.set_state(pair, bell::from_coefficients(arbitrary_coeffs(4)));
  EXPECT_EQ(h.bell.backend().stats().promotions, 0u);
  EXPECT_EQ(h.bell.backend().stats().demotions, 0u);
}

TEST(BellBackendTest, NonBellDiagonalInstallGoesDense) {
  BackendHarness h;
  // |00><00| is separable but not Bell-diagonal.
  std::vector<Complex> zero{1, 0, 0, 0};
  const QubitId a = h.bell.create();
  const QubitId b = h.bell.create();
  const QubitId pair[] = {a, b};
  h.bell.set_state(pair, DensityMatrix::from_pure(zero));
  EXPECT_EQ(h.bell.backend().stats().dense_ops, 1u);
  EXPECT_NEAR(h.bell.peek(pair).matrix()(0, 0).real(), 1.0, 1e-12);
}

TEST(BellBackendTest, FiniteT1DecayUsesTwirlByDefault) {
  BackendHarness h;
  const auto p = arbitrary_coeffs(7);
  const auto [qa, qb] = h.install_pair(h.bell, p);
  (void)qb;
  const std::uint64_t before = h.bell.backend().stats().promotions;
  h.bell.decay(qa, 1e4, 2.86e6, 1.0e6);  // finite T1
  EXPECT_EQ(h.bell.backend().stats().promotions, before);  // no escalation

  // The twirled decay preserves trace and keeps a valid distribution.
  const QubitId pair[] = {qa, qb};
  const DensityMatrix rho = h.bell.peek(pair);
  EXPECT_NEAR(rho.trace_real(), 1.0, 1e-12);
}

TEST(BellBackendTest, StrictModePromotesOnFiniteT1) {
  sim::Random random{9};
  qstate::BellDiagonalBackend backend(random);
  backend.set_twirl_non_pauli(false);
  const auto a = backend.create();
  const auto b = backend.create();
  const qstate::QubitId pair[] = {a, b};
  backend.set_state(pair, bell::from_coefficients(arbitrary_coeffs(8)));
  backend.decay(a, 1e4, 2.86e6, 1.0e6);
  EXPECT_EQ(backend.stats().promotions, 1u);
}

TEST(DenseBackendTest, PoolRecyclesBuffers) {
  sim::Random random{11};
  qstate::DenseBackend backend(random);
  const auto a = backend.create();
  const auto b = backend.create();
  const qstate::QubitId pair[] = {a, b};
  for (int i = 0; i < 32; ++i) {
    backend.set_state(pair, bell::from_coefficients(arbitrary_coeffs(0)));
    backend.reset(a);
    backend.reset(b);
  }
  EXPECT_GT(backend.stats().pool_hits, 0u);
  EXPECT_LT(backend.stats().pool_misses, 16u);
}

TEST(DenseBackendTest, BellMeasureMatchesExplicitCircuit) {
  // The registry-level Bell measurement must consume Random identically
  // to the historical CNOT + H + Z/Z sequence.
  sim::Random r1{77};
  sim::Random r2{77};
  QuantumRegistry reg1{r1, BackendKind::kDense};
  QuantumRegistry reg2{r2, BackendKind::kDense};

  auto mk = [](QuantumRegistry& reg, const std::array<double, 4>& p) {
    const QubitId a = reg.create();
    const QubitId b = reg.create();
    const QubitId pair[] = {a, b};
    reg.set_state(pair, bell::from_coefficients(p));
    return std::make_pair(a, b);
  };
  const auto [u1, c1] = mk(reg1, arbitrary_coeffs(1));
  const auto [t1, v1] = mk(reg1, arbitrary_coeffs(2));
  const auto [u2, c2] = mk(reg2, arbitrary_coeffs(1));
  const auto [t2, v2] = mk(reg2, arbitrary_coeffs(2));
  (void)u1;
  (void)u2;

  const auto [m1, m2] = reg1.bell_measure(c1, t1);

  const QubitId pair_q[] = {c2, t2};
  reg2.apply_unitary(gates::cnot(), pair_q);
  const QubitId ctrl_q[] = {c2};
  reg2.apply_unitary(gates::h(), ctrl_q);
  const int n1 = reg2.measure(c2, Basis::kZ);
  const int n2 = reg2.measure(t2, Basis::kZ);

  EXPECT_EQ(m1, n1);
  EXPECT_EQ(m2, n2);
  const QubitId o1[] = {u1, v1};
  const QubitId o2[] = {u2, v2};
  EXPECT_TRUE(reg1.peek(o1).approx_equal(reg2.peek(o2), 1e-12));
}

TEST(BellTwirlTest, TwirlPreservesBellFidelitiesAndQber) {
  // Build a decidedly non-Bell-diagonal state: partial |00> weight plus
  // a noisy Psi+.
  Matrix m(4, 4);
  m(0, 0) = 0.3;
  m(1, 1) = m(2, 2) = 0.33;
  m(1, 2) = m(2, 1) = 0.28;
  m(3, 3) = 0.04;
  DensityMatrix rho = DensityMatrix::from_matrix(std::move(m));
  rho.renormalize();
  const DensityMatrix twirled = bell::twirl(rho);

  for (const auto state :
       {bell::BellState::kPhiPlus, bell::BellState::kPhiMinus,
        bell::BellState::kPsiPlus, bell::BellState::kPsiMinus}) {
    EXPECT_NEAR(bell::fidelity(rho, state), bell::fidelity(twirled, state),
                1e-12);
    for (const auto basis : {Basis::kX, Basis::kY, Basis::kZ}) {
      EXPECT_NEAR(bell::qber(rho, state, basis),
                  bell::qber(twirled, state, basis), 1e-12);
    }
  }
  EXPECT_LT(bell::off_diagonal_residual(twirled), 1e-12);
  EXPECT_GT(bell::off_diagonal_residual(rho), 0.01);
}

}  // namespace
}  // namespace qlink::quantum
