#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "metrics/collector.hpp"
#include "net/channel.hpp"
#include "netlayer/flow_plane.hpp"
#include "netlayer/swap_service.hpp"
#include "netlayer/topology.hpp"
#include "qstate/backend_registry.hpp"
#include "sim/sharded_engine.hpp"

/// Sharded-run coverage (ISSUE 10): single-shard byte-identity against
/// the engine-less construction path, shard-merged Collector totals,
/// cross-shard channel delivery, and a deterministic multi-shard smoke.

namespace qlink {
namespace {

netlayer::NetworkConfig chain_config(std::size_t links, std::uint64_t seed,
                                     qstate::BackendKind backend) {
  netlayer::NetworkConfig c;
  c.kind = netlayer::TopologyKind::kChain;
  c.num_links = links;
  c.seed = seed;
  c.link.scenario = hw::ScenarioParams::lab();
  c.link.scenario.nv.carbon_t2_ns = 0.5e9;
  c.link.scenario.nv.carbon_coupling_rad_per_s /= 10.0;
  c.link.backend = backend;
  c.link.pauli_twirl_installs = backend == qstate::BackendKind::kBellDiagonal;
  return c;
}

/// Everything observable about a delivery, flattened for bytewise
/// comparison between runs (cf. test_netlayer.cpp).
struct DeliveryRecord {
  std::uint32_t request_id;
  std::uint32_t seq_src;
  std::uint32_t seq_dst;
  std::uint64_t qubit_src;
  std::uint64_t qubit_dst;
  std::int64_t deliver_time;
  double fidelity;
};

std::vector<std::uint8_t> to_bytes(const std::vector<DeliveryRecord>& rs) {
  std::vector<std::uint8_t> bytes;
  auto put = [&bytes](const auto& v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    bytes.insert(bytes.end(), p, p + sizeof(v));
  };
  for (const DeliveryRecord& r : rs) {
    put(r.request_id);
    put(r.seq_src);
    put(r.seq_dst);
    put(r.qubit_src);
    put(r.qubit_dst);
    put(r.deliver_time);
    put(r.fidelity);
  }
  return bytes;
}

std::vector<DeliveryRecord> run_chain(qstate::BackendKind backend,
                                      sim::ShardedEngine* engine) {
  netlayer::NetworkConfig cfg = chain_config(2, 77, backend);
  cfg.engine = engine;
  netlayer::QuantumNetwork net(cfg);
  netlayer::SwapService swap(net);
  std::vector<DeliveryRecord> records;
  swap.set_deliver_handler([&](const netlayer::E2eOk& ok) {
    records.push_back(DeliveryRecord{
        ok.request_id, ok.ok_src.ent_id.seq_mhp, ok.ok_dst.ent_id.seq_mhp,
        ok.qubit_src, ok.qubit_dst, ok.deliver_time, ok.fidelity});
    swap.release(ok);
  });
  netlayer::E2eRequest req;
  req.src = 0;
  req.dst = 2;
  req.num_pairs = 3;
  req.link_min_fidelity = 0.75;
  net.start();
  swap.request(req);
  for (int i = 0; i < 800000 && records.size() < 3; ++i) {
    net.run_for(sim::duration::microseconds(100));
  }
  return records;
}

/// The tentpole's byte-identity bar: a network on its default owned
/// engine and one bound to an explicit single-shard ShardedEngine must
/// replay today's seeded trajectories exactly, on both qstate backends.
TEST(ShardedNet, SingleShardByteIdenticalOnBothBackends) {
  for (const auto backend : {qstate::BackendKind::kDense,
                             qstate::BackendKind::kBellDiagonal}) {
    SCOPED_TRACE(static_cast<int>(backend));
    const auto owned = run_chain(backend, nullptr);
    ASSERT_EQ(owned.size(), 3u);
    sim::ShardedEngine engine;  // explicit single-shard engine
    const auto explicit_engine = run_chain(backend, &engine);
    EXPECT_EQ(to_bytes(owned), to_bytes(explicit_engine))
        << "explicit single-shard engine must not perturb trajectories";
  }
}

// ---------------------------------------------------------------------
// Flow-plane islands
// ---------------------------------------------------------------------

netlayer::FlowCalibration toy_calibration() {
  netlayer::FlowCalibration cal;
  netlayer::FlowCalibration::Entry e;
  e.floor = 0.7;
  e.feasible = true;
  e.fidelity = 0.9;
  e.pair_time_s = 0.01;
  e.p_succ = 0.1;
  cal.menu.push_back(e);
  cal.delay_s = 0.001;
  return cal;
}

netlayer::E2eRequest chain_request(std::uint16_t pairs = 1) {
  netlayer::E2eRequest req;
  req.src = 0;
  req.dst = 2;
  req.num_pairs = pairs;
  req.min_fidelity = 0.5;
  req.link_min_fidelity = 0.7;
  return req;
}

const std::vector<netlayer::Hop> kChainRoute = {{0, false}, {1, false}};

/// One 3-node flow island bound to (engine, shard), submissions made
/// up front, deliveries recorded through its own Collector.
struct Island {
  explicit Island(std::uint64_t seed, sim::ShardedEngine* engine = nullptr,
                  std::size_t shard = 0) {
    netlayer::FlowPlaneConfig fc;
    fc.num_nodes = 3;
    fc.edges = {{0, 1}, {1, 2}};
    fc.calibration = toy_calibration();
    fc.collector = &collector;
    fc.seed = seed;
    fc.engine = engine;
    fc.shard = shard;
    plane = std::make_unique<netlayer::FlowPlane>(std::move(fc));
    plane->set_deliver_handler([this](const netlayer::E2eOk& ok) {
      deliveries.emplace_back(ok.deliver_time, ok.fidelity);
    });
  }

  metrics::Collector collector;
  std::unique_ptr<netlayer::FlowPlane> plane;
  std::vector<std::pair<sim::SimTime, double>> deliveries;
};

/// Shard-merge bar: island trajectories must be independent of shard
/// placement, so Collector::merge over a 2-shard run equals the same
/// two islands run unsharded (each on its own private engine).
TEST(ShardedNet, ShardMergedCollectorMatchesUnsharded) {
  sim::ShardedEngine::Config cfg;
  cfg.num_shards = 2;
  sim::ShardedEngine engine(cfg);
  Island sharded_a(11, &engine, 0);
  Island sharded_b(22, &engine, 1);
  for (int i = 0; i < 30; ++i) {
    sharded_a.plane->submit(chain_request(2), kChainRoute);
    sharded_b.plane->submit(chain_request(1), kChainRoute);
  }
  engine.run_until(sim::duration::seconds(1000));

  Island solo_a(11);
  Island solo_b(22);
  for (int i = 0; i < 30; ++i) {
    solo_a.plane->submit(chain_request(2), kChainRoute);
    solo_b.plane->submit(chain_request(1), kChainRoute);
  }
  solo_a.plane->run_until(sim::duration::seconds(1000));
  solo_b.plane->run_until(sim::duration::seconds(1000));

  // Placement-independent trajectories, before any merging.
  EXPECT_EQ(sharded_a.deliveries, solo_a.deliveries);
  EXPECT_EQ(sharded_b.deliveries, solo_b.deliveries);
  ASSERT_EQ(sharded_a.deliveries.size(), 60u);
  ASSERT_EQ(sharded_b.deliveries.size(), 30u);

  metrics::Collector sharded;
  sharded.merge(sharded_a.collector);
  sharded.merge(sharded_b.collector);
  metrics::Collector solo;
  solo.merge(solo_a.collector);
  solo.merge(solo_b.collector);

  EXPECT_EQ(sharded.total_pairs_delivered(), solo.total_pairs_delivered());
  const auto& snl = sharded.kind(core::Priority::kNetworkLayer);
  const auto& unl = solo.kind(core::Priority::kNetworkLayer);
  EXPECT_EQ(snl.pairs_delivered, unl.pairs_delivered);
  EXPECT_NEAR(snl.fidelity.mean(), unl.fidelity.mean(), 1e-9);
  EXPECT_NEAR(snl.pair_latency_s.mean(), unl.pair_latency_s.mean(), 1e-9);
}

// ---------------------------------------------------------------------
// The shard-crossing seam
// ---------------------------------------------------------------------

TEST(ShardedNet, CrossShardChannelDeliversAtDelay) {
  sim::ShardedEngine::Config cfg;
  cfg.num_shards = 2;
  sim::ShardedEngine engine(cfg);
  sim::Random random0(1), random1(2);
  const sim::SimTime delay = sim::duration::milliseconds(5);
  net::ClassicalChannel channel(engine.ref(0), random0, engine.ref(1),
                                random1, "xshard", delay);
  EXPECT_TRUE(channel.cross_shard());
  // The constructor registered the coupling both ways.
  EXPECT_EQ(engine.lookahead(0, 1), delay);
  EXPECT_EQ(engine.lookahead(1, 0), delay);

  std::vector<std::pair<sim::SimTime, std::size_t>> received;
  channel.set_receiver(1, [&](std::vector<std::uint8_t> frame) {
    received.emplace_back(engine.sim(1).now(), frame.size());
  });
  const sim::SimTime send_at = sim::duration::milliseconds(3);
  engine.sim(0).schedule_at(send_at,
                            [&] { channel.send_from(0, {1, 2, 3}); });
  engine.run_until(sim::duration::milliseconds(20));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, send_at + delay);
  EXPECT_EQ(received[0].second, 3u);
  EXPECT_EQ(channel.frames_sent(), 1u);
  EXPECT_EQ(channel.frames_delivered(), 1u);

  // Same-shard construction stays a local schedule, no engine coupling.
  sim::ShardedEngine local;
  sim::Random r(3);
  net::ClassicalChannel same(local.ref(0), r, local.ref(0), r, "local",
                             delay);
  EXPECT_FALSE(same.cross_shard());
}

/// Deterministic-per-seed multi-shard smoke: flow islands plus live
/// cross-shard channel chatter, run twice — identical deliveries and
/// frame arrivals both times.
std::vector<std::pair<sim::SimTime, double>> multi_shard_run() {
  sim::ShardedEngine::Config cfg;
  cfg.num_shards = 2;
  sim::ShardedEngine engine(cfg);
  Island a(5, &engine, 0);
  Island b(6, &engine, 1);
  sim::Random random0(7), random1(8);
  net::ClassicalChannel channel(engine.ref(0), random0, engine.ref(1),
                                random1, "chatter",
                                sim::duration::milliseconds(5));
  std::vector<std::pair<sim::SimTime, double>> trace;
  channel.set_receiver(1, [&](std::vector<std::uint8_t>) {
    trace.emplace_back(engine.sim(1).now(), -1.0);
  });
  // Periodic chatter from shard 0 while both islands serve requests.
  std::function<void()> tick = [&] {
    channel.send_from(0, {0xAB});
    if (engine.sim(0).now() < sim::duration::seconds(2)) {
      engine.sim(0).schedule_in(sim::duration::milliseconds(100), tick);
    }
  };
  engine.sim(0).schedule_in(sim::duration::milliseconds(100),
                            [&tick] { tick(); });
  for (int i = 0; i < 20; ++i) {
    a.plane->submit(chain_request(1), kChainRoute);
    b.plane->submit(chain_request(2), kChainRoute);
  }
  engine.run_until(sim::duration::seconds(30));
  for (const auto& d : a.deliveries) trace.push_back(d);
  for (const auto& d : b.deliveries) trace.push_back(d);
  return trace;
}

TEST(ShardedNet, MultiShardSmokeIsDeterministicPerSeed) {
  const auto first = multi_shard_run();
  const auto second = multi_shard_run();
  ASSERT_GT(first.size(), 60u);  // 60 pairs + chatter frames
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace qlink
