#include <gtest/gtest.h>

#include "core/feu.hpp"
#include "hw/herald_model.hpp"
#include "hw/nv_params.hpp"
#include "sim/random.hpp"

namespace qlink::core {
namespace {

using quantum::gates::Basis;

class FeuTest : public ::testing::Test {
 protected:
  FeuTest()
      : lab_(hw::ScenarioParams::lab()),
        ql_(hw::ScenarioParams::ql2020()),
        lab_model_(lab_.herald),
        ql_model_(ql_.herald),
        lab_feu_(lab_model_, lab_),
        ql_feu_(ql_model_, ql_) {}

  hw::ScenarioParams lab_;
  hw::ScenarioParams ql_;
  hw::HeraldModel lab_model_;
  hw::HeraldModel ql_model_;
  FidelityEstimationUnit lab_feu_;
  FidelityEstimationUnit ql_feu_;
};

TEST_F(FeuTest, AdviceMeetsRequestedFidelity) {
  for (double fmin : {0.5, 0.6, 0.64, 0.7}) {
    const auto a = lab_feu_.advise(fmin, RequestType::kCreateMeasure);
    ASSERT_TRUE(a.feasible) << fmin;
    EXPECT_GE(a.estimated_fidelity, fmin - 1e-6);
    EXPECT_GT(a.alpha, 0.0);
    EXPECT_LE(a.alpha, 0.5);
  }
}

TEST_F(FeuTest, HigherFidelityMeansSmallerAlpha) {
  const auto lo = lab_feu_.advise(0.55, RequestType::kCreateMeasure);
  const auto hi = lab_feu_.advise(0.75, RequestType::kCreateMeasure);
  ASSERT_TRUE(lo.feasible);
  ASSERT_TRUE(hi.feasible);
  EXPECT_GT(lo.alpha, hi.alpha);
  EXPECT_LT(lo.expected_time_per_pair, hi.expected_time_per_pair);
}

TEST_F(FeuTest, UnreachableFidelityIsInfeasible) {
  const auto a = lab_feu_.advise(0.99, RequestType::kCreateKeep);
  EXPECT_FALSE(a.feasible);
}

TEST_F(FeuTest, DeliveredEstimatesSitBelowHeraldedFidelity) {
  // Both request types pay a delivery penalty on top of the heralded
  // state: K the move-to-memory gates (and REPLY wait), M the asymmetric
  // readout errors of Eq. 23.
  const double alpha = 0.2;
  const auto& dist = lab_model_.distribution(alpha, alpha);
  const double heralded =
      (dist.p_psi_plus * dist.fidelity_plus +
       dist.p_psi_minus * dist.fidelity_minus) /
      dist.p_success();
  const double k =
      lab_feu_.estimate_delivered_fidelity(alpha, RequestType::kCreateKeep);
  const double m = lab_feu_.estimate_delivered_fidelity(
      alpha, RequestType::kCreateMeasure);
  EXPECT_LT(k, heralded);
  EXPECT_LT(m, heralded);
  // The M penalty is dominated by readout: dF = e_eff (3/2 - 2(1-F)),
  // with e_eff ~ 2 * 0.0275 and F the heralded fidelity.
  const double e_eff = 2 * 0.0275 - 2 * 0.0275 * 0.0275;
  EXPECT_GT(heralded - m, 0.5 * e_eff);
  EXPECT_LT(heralded - m, 1.5 * e_eff);
}

TEST_F(FeuTest, Ql2020WaitsDegradeFidelityFurther) {
  const double alpha = 0.2;
  EXPECT_LT(
      ql_feu_.estimate_delivered_fidelity(alpha, RequestType::kCreateKeep),
      lab_feu_.estimate_delivered_fidelity(alpha, RequestType::kCreateKeep));
}

TEST_F(FeuTest, KAttemptPeriodReflectsRoundTrip) {
  // Lab: round trip ~ 10 ns -> one cycle. QL2020: ~145 us -> ~15 cycles.
  EXPECT_LE(lab_feu_.k_attempt_period_cycles(), 2u);
  EXPECT_GE(ql_feu_.k_attempt_period_cycles(), 12u);
  EXPECT_LE(ql_feu_.k_attempt_period_cycles(), 20u);
}

TEST_F(FeuTest, ExpectedTimeScalesInverselyWithSuccess) {
  const auto a = lab_feu_.advise(0.6, RequestType::kCreateMeasure);
  const double p =
      lab_model_.distribution(a.alpha, a.alpha).p_success();
  const double cycles = static_cast<double>(a.expected_time_per_pair) /
                        static_cast<double>(lab_.mhp_cycle);
  EXPECT_NEAR(cycles, 1.0 / p, 1.0 / p * 0.05);
}

TEST_F(FeuTest, KExpectedTimeIncludesAttemptPeriodAndOverhead) {
  const auto m = ql_feu_.advise(0.6, RequestType::kCreateMeasure);
  const auto k = ql_feu_.advise(0.6, RequestType::kCreateKeep);
  ASSERT_TRUE(m.feasible);
  ASSERT_TRUE(k.feasible);
  // K pays the REPLY wait: an order of magnitude slower in QL2020.
  EXPECT_GT(k.expected_time_per_pair, 8 * m.expected_time_per_pair);
}

TEST_F(FeuTest, AdviceIsCached) {
  const auto a1 = lab_feu_.advise(0.64, RequestType::kCreateKeep);
  const auto a2 = lab_feu_.advise(0.64, RequestType::kCreateKeep);
  EXPECT_EQ(a1.alpha, a2.alpha);
  EXPECT_EQ(a1.est_cycles_per_pair, a2.est_cycles_per_pair);
}

TEST_F(FeuTest, GoodnessFallsBackToModelEstimate) {
  const double g = lab_feu_.goodness(0.1, RequestType::kCreateMeasure);
  EXPECT_NEAR(g, lab_feu_.estimate_delivered_fidelity(
                     0.1, RequestType::kCreateMeasure),
              1e-12);
}

TEST_F(FeuTest, TestRoundsEstimateQber) {
  // Feed perfectly anti-correlated Z outcomes for Psi+ (which are ideal:
  // Psi+ is anti-correlated in Z), so QBER_Z = 0; then X errors.
  for (int i = 0; i < 100; ++i) {
    lab_feu_.record_test_round(Basis::kZ, 0, 1, 1);
    lab_feu_.record_test_round(Basis::kY, 0, 0, 1);
  }
  EXPECT_EQ(lab_feu_.measured_qber(Basis::kZ), 0.0);
  EXPECT_EQ(lab_feu_.measured_qber(Basis::kY), 0.0);
  EXPECT_FALSE(lab_feu_.measured_qber(Basis::kX).has_value());
  EXPECT_FALSE(lab_feu_.estimated_fidelity_from_tests().has_value());

  // 20% X-basis errors: for Psi+ X outcomes should be equal.
  for (int i = 0; i < 80; ++i) lab_feu_.record_test_round(Basis::kX, 1, 1, 1);
  for (int i = 0; i < 20; ++i) lab_feu_.record_test_round(Basis::kX, 0, 1, 1);
  ASSERT_TRUE(lab_feu_.measured_qber(Basis::kX).has_value());
  EXPECT_NEAR(*lab_feu_.measured_qber(Basis::kX), 0.2, 1e-12);
  ASSERT_TRUE(lab_feu_.estimated_fidelity_from_tests().has_value());
  // F = 1 - (0.2 + 0 + 0)/2 = 0.9.
  EXPECT_NEAR(*lab_feu_.estimated_fidelity_from_tests(), 0.9, 1e-12);
}

TEST_F(FeuTest, TestRoundsRespectHeraldedState) {
  // For Psi- the Z outcomes must differ; equal outcomes are errors.
  lab_feu_.record_test_round(Basis::kZ, 0, 0, 2);
  EXPECT_NEAR(*lab_feu_.measured_qber(Basis::kZ), 1.0, 1e-12);
}

TEST_F(FeuTest, SlidingWindowForgets) {
  lab_feu_.set_window(10);
  for (int i = 0; i < 10; ++i) {
    lab_feu_.record_test_round(Basis::kZ, 0, 0, 1);  // errors (Psi+, Z)
  }
  EXPECT_NEAR(*lab_feu_.measured_qber(Basis::kZ), 1.0, 1e-12);
  for (int i = 0; i < 10; ++i) {
    lab_feu_.record_test_round(Basis::kZ, 0, 1, 1);  // ideal
  }
  EXPECT_NEAR(*lab_feu_.measured_qber(Basis::kZ), 0.0, 1e-12);
}

TEST_F(FeuTest, GoodnessPrefersTestData) {
  for (Basis b : {Basis::kX, Basis::kY, Basis::kZ}) {
    for (int i = 0; i < 50; ++i) {
      const bool ideal_equal = b != Basis::kZ;  // Psi+ correlations
      lab_feu_.record_test_round(b, 0, ideal_equal ? 0 : 1, 1);
    }
  }
  // Perfect test data -> goodness = 1 regardless of the model estimate.
  EXPECT_NEAR(lab_feu_.goodness(0.3, RequestType::kCreateKeep), 1.0, 1e-12);
}

}  // namespace
}  // namespace qlink::core
