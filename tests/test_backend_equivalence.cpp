#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>

#include "metrics/collector.hpp"
#include "netlayer/swap_service.hpp"
#include "netlayer/topology.hpp"
#include "workload/workload.hpp"

/// Backend-equivalence acceptance tests (ISSUE 2): identically seeded
/// *full* simulation runs — a single link and a 3-hop chain — must
/// report fidelity/QBER within 1e-6 between DenseBackend and
/// BellDiagonalBackend on Clifford+Pauli scenarios, and every backend
/// must replay byte-identical delivery sequences from one seed.
///
/// The Clifford+Pauli scenario is the lab hardware with (a) infinite
/// electron T1, so all decay is pure (Pauli) dephasing, and (b)
/// Pauli-frame installs (LinkConfig::pauli_twirl_installs), so every
/// heralded state enters the registry exactly Bell-diagonal. Under
/// those conditions the Bell-diagonal closed forms are exact, both
/// backends consume the shared Random stream identically, and whole
/// runs agree to float rounding.

namespace qlink {
namespace {

using qstate::BackendKind;

hw::ScenarioParams pauli_scenario() {
  hw::ScenarioParams sc = hw::ScenarioParams::lab();
  sc.nv.electron_t1_ns = -1.0;  // infinite: decay is pure dephasing
  // Decoherence-protected carbon memory, as in bench_chain_scaling.
  sc.nv.carbon_t2_ns = 0.5e9;
  sc.nv.carbon_coupling_rad_per_s /= 10.0;
  return sc;
}

struct SingleLinkResult {
  std::uint64_t delivered = 0;
  double fidelity = 0.0;
  double qber_x = -1.0, qber_y = -1.0, qber_z = -1.0;
};

SingleLinkResult run_single_link(BackendKind backend) {
  core::LinkConfig cfg;
  cfg.scenario = pauli_scenario();
  cfg.seed = 5;
  cfg.backend = backend;
  cfg.pauli_twirl_installs = true;
  core::Link link(cfg);

  metrics::Collector collector;
  workload::WorkloadConfig wl;
  wl.ck = {0.6, 1};  // K-type: fidelity through the registry
  wl.md = {0.3, 1};  // M-type: QBER correlations
  wl.seed = 5;
  auto driver_ptr = workload::WorkloadDriver::for_link(
      link, wl.traffic(), wl.tuning(), collector);
  workload::WorkloadDriver& driver = *driver_ptr;

  link.start();
  driver.start();
  link.run_for(sim::duration::seconds(2.0));
  driver.stop();

  SingleLinkResult out;
  const auto& ck = collector.kind(core::Priority::kCreateKeep);
  out.delivered = ck.pairs_delivered;
  out.fidelity = ck.fidelity.mean();
  out.qber_x = collector.qber(quantum::gates::Basis::kX).value_or(-1.0);
  out.qber_y = collector.qber(quantum::gates::Basis::kY).value_or(-1.0);
  out.qber_z = collector.qber(quantum::gates::Basis::kZ).value_or(-1.0);
  return out;
}

struct ChainResult {
  std::uint64_t delivered = 0;
  std::uint64_t swaps = 0;
  double fidelity = 0.0;
  double latency_s = 0.0;
  std::uint64_t promotions = 0;
  std::string delivery_log;
};

ChainResult run_chain(BackendKind backend, double sim_seconds) {
  netlayer::NetworkConfig cfg;
  cfg.kind = netlayer::TopologyKind::kChain;
  cfg.num_links = 3;
  cfg.seed = 7;
  cfg.link.scenario = pauli_scenario();
  cfg.link.backend = backend;
  cfg.link.pauli_twirl_installs = true;

  netlayer::QuantumNetwork net(cfg);
  metrics::Collector collector;
  netlayer::SwapService swap(net, &collector);

  workload::WorkloadConfig wl;
  wl.nl = {0.8, 1};
  wl.origin = workload::OriginMode::kAllA;
  wl.min_fidelity = 0.5;
  wl.link_min_fidelity = 0.78;
  wl.seed = 7;
  auto driver_ptr = workload::WorkloadDriver::for_e2e(
      net, swap, wl.traffic(), wl.tuning(), collector);
  workload::WorkloadDriver& driver = *driver_ptr;

  // After the driver (its constructor installs the default consuming
  // handler): log every delivery byte-exactly, then release it.
  std::ostringstream log;
  swap.set_deliver_handler([&](const netlayer::E2eOk& ok) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &ok.fidelity, sizeof(bits));
    log << ok.request_id << ':' << ok.pair_index << ':' << ok.src << "->"
        << ok.dst << '@' << ok.deliver_time << '#' << std::hex << bits
        << std::dec << '\n';
    swap.release(ok);
  });

  net.start();
  driver.start();
  net.run_for(sim::duration::seconds(sim_seconds));
  driver.stop();

  ChainResult out;
  const auto& nl = collector.kind(core::Priority::kNetworkLayer);
  out.delivered = nl.pairs_delivered;
  out.swaps = swap.stats().swaps;
  out.fidelity = nl.fidelity.mean();
  out.latency_s = nl.pair_latency_s.mean();
  out.promotions = net.registry().backend().stats().promotions;
  out.delivery_log = log.str();
  return out;
}

TEST(BackendEquivalence, SingleLinkFidelityAndQberWithin1e6) {
  const SingleLinkResult dense = run_single_link(BackendKind::kDense);
  const SingleLinkResult bell = run_single_link(BackendKind::kBellDiagonal);

  ASSERT_GT(dense.delivered, 0u);
  EXPECT_EQ(dense.delivered, bell.delivered);
  EXPECT_NEAR(dense.fidelity, bell.fidelity, 1e-6);
  EXPECT_NEAR(dense.qber_x, bell.qber_x, 1e-6);
  EXPECT_NEAR(dense.qber_y, bell.qber_y, 1e-6);
  EXPECT_NEAR(dense.qber_z, bell.qber_z, 1e-6);
}

TEST(BackendEquivalence, ThreeHopChainFidelityWithin1e6) {
  const ChainResult dense = run_chain(BackendKind::kDense, 3.0);
  const ChainResult bell = run_chain(BackendKind::kBellDiagonal, 3.0);

  ASSERT_GT(dense.delivered, 0u);
  EXPECT_EQ(dense.delivered, bell.delivered);
  EXPECT_EQ(dense.swaps, bell.swaps);
  EXPECT_NEAR(dense.fidelity, bell.fidelity, 1e-6);
  EXPECT_NEAR(dense.latency_s, bell.latency_s, 1e-9);
  // The whole Clifford+Pauli run must stay on the structured fast path.
  EXPECT_EQ(bell.promotions, 0u);
}

TEST(BackendEquivalence, SameSeedIsByteIdenticalOnBothBackends) {
  for (const auto backend :
       {BackendKind::kDense, BackendKind::kBellDiagonal}) {
    const ChainResult a = run_chain(backend, 2.0);
    const ChainResult b = run_chain(backend, 2.0);
    ASSERT_GT(a.delivered, 0u);
    EXPECT_EQ(a.delivery_log, b.delivery_log)
        << "backend " << static_cast<int>(backend);
  }
}

}  // namespace
}  // namespace qlink
