#include <gtest/gtest.h>

#include "core/network.hpp"

/// Parameterised end-to-end invariants of the full protocol stack,
/// swept over seeds, scenarios and loss rates: the properties Protocol 2
/// promises regardless of the stochastic execution.

namespace qlink::core {
namespace {

struct LinkCase {
  std::uint64_t seed;
  bool ql2020;
  double loss;
};

class LinkInvariantP : public ::testing::TestWithParam<LinkCase> {
 protected:
  static CreateRequest md(std::uint16_t pairs) {
    CreateRequest r;
    r.type = RequestType::kCreateMeasure;
    r.num_pairs = pairs;
    r.min_fidelity = 0.6;
    r.priority = Priority::kMeasureDirectly;
    r.consecutive = true;
    r.store_in_memory = false;
    return r;
  }
};

TEST_P(LinkInvariantP, ProtocolInvariantsHoldUnderStochasticExecution) {
  const LinkCase& c = GetParam();
  LinkConfig cfg;
  cfg.scenario =
      c.ql2020 ? hw::ScenarioParams::ql2020() : hw::ScenarioParams::lab();
  cfg.scenario.classical_loss_prob = c.loss;
  cfg.seed = c.seed;
  Link link(cfg);

  struct Seen {
    std::vector<OkMessage> oks;
    std::uint32_t last_seq = 0;
    bool seq_monotone = true;
  };
  Seen seen_a;
  Seen seen_b;
  auto watch = [](Seen& s) {
    return [&s](const OkMessage& ok) {
      // Invariant: midpoint sequence numbers in OKs strictly increase at
      // each node (EXPIRE revokes, never re-delivers).
      if (ok.ent_id.seq_mhp <= s.last_seq) s.seq_monotone = false;
      s.last_seq = ok.ent_id.seq_mhp;
      s.oks.push_back(ok);
    };
  };
  link.egp_a().set_ok_handler(watch(seen_a));
  link.egp_b().set_ok_handler(watch(seen_b));
  link.start();

  link.egp_a().create(md(4));
  link.egp_b().create(md(4));
  link.run_for(sim::duration::seconds(6));

  // 1. Sequence monotonicity at both nodes.
  EXPECT_TRUE(seen_a.seq_monotone);
  EXPECT_TRUE(seen_b.seq_monotone);

  // 2. Pair indices per request are gap-free ascending at the origin
  //    (consecutive delivery), unless an EXPIRE intervened.
  if (link.egp_a().stats().expires_sent == 0 &&
      link.egp_b().stats().expires_sent == 0) {
    std::map<std::uint32_t, std::uint16_t> next_index;
    for (const auto& ok : seen_a.oks) {
      if (ok.origin_node != Link::kNodeA) continue;
      EXPECT_EQ(ok.pair_index, next_index[ok.create_id]) << c.seed;
      next_index[ok.create_id] = static_cast<std::uint16_t>(ok.pair_index + 1);
    }
  }

  // 3. Outcomes are classical bits and bases agree across nodes for the
  //    same entanglement id.
  std::map<std::uint32_t, const OkMessage*> by_seq;
  for (const auto& ok : seen_a.oks) {
    EXPECT_GE(ok.outcome, 0);
    EXPECT_LE(ok.outcome, 1);
    by_seq[ok.ent_id.seq_mhp] = &ok;
  }
  for (const auto& ok : seen_b.oks) {
    const auto it = by_seq.find(ok.ent_id.seq_mhp);
    if (it == by_seq.end()) continue;
    EXPECT_EQ(ok.basis, it->second->basis);
    EXPECT_EQ(ok.heralded_state, it->second->heralded_state);
    EXPECT_EQ(ok.create_id, it->second->create_id);
  }

  // 4. Queues agree once drained: every item at A exists at B and vice
  //    versa (up to in-flight handshakes, which a quiescent run lacks).
  const auto& qa = link.egp_a().queue();
  const auto& qb = link.egp_b().queue();
  for (int j = 0; j < qa.num_queues(); ++j) {
    for (const auto& [qseq, item] : qa.queue(j)) {
      if (item.confirmed) {
        EXPECT_NE(qb.find(item.request.aid), nullptr);
      }
    }
  }

  // 5. Accounting: OKs at the origin never exceed requested pairs.
  EXPECT_LE(seen_a.oks.size() + seen_b.oks.size(), 16u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndScenarios, LinkInvariantP,
    ::testing::Values(LinkCase{1, false, 0.0}, LinkCase{2, false, 0.0},
                      LinkCase{3, false, 1e-3}, LinkCase{4, false, 1e-2},
                      LinkCase{5, true, 0.0}, LinkCase{6, true, 1e-3},
                      LinkCase{7, false, 0.0}, LinkCase{8, false, 1e-4},
                      LinkCase{9, true, 1e-4}, LinkCase{10, false, 3e-3}));

// ---------------------------------------------------------------------------
// Determinism: identical seeds give identical delivery transcripts, for
// every scenario/loss combination.

class DeterminismP : public ::testing::TestWithParam<LinkCase> {};

TEST_P(DeterminismP, IdenticalSeedsIdenticalTranscripts) {
  const LinkCase& c = GetParam();
  auto run = [&] {
    LinkConfig cfg;
    cfg.scenario =
        c.ql2020 ? hw::ScenarioParams::ql2020() : hw::ScenarioParams::lab();
    cfg.scenario.classical_loss_prob = c.loss;
    cfg.seed = c.seed;
    Link link(cfg);
    std::vector<std::tuple<std::uint32_t, int, int>> transcript;
    link.egp_a().set_ok_handler([&](const OkMessage& ok) {
      transcript.emplace_back(ok.ent_id.seq_mhp, ok.outcome,
                              static_cast<int>(ok.basis));
    });
    link.start();
    CreateRequest r;
    r.type = RequestType::kCreateMeasure;
    r.num_pairs = 5;
    r.min_fidelity = 0.6;
    r.priority = Priority::kMeasureDirectly;
    r.consecutive = true;
    link.egp_a().create(r);
    link.run_for(sim::duration::seconds(3));
    return transcript;
  };
  const auto t1 = run();
  const auto t2 = run();
  EXPECT_EQ(t1, t2);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndScenarios, DeterminismP,
    ::testing::Values(LinkCase{11, false, 0.0}, LinkCase{12, false, 1e-3},
                      LinkCase{13, true, 0.0}, LinkCase{14, true, 1e-3}));

}  // namespace
}  // namespace qlink::core
