#include <gtest/gtest.h>

#include "core/network.hpp"
#include "quantum/bell.hpp"

namespace qlink::core {
namespace {

class EgpTest : public ::testing::Test {
 protected:
  static LinkConfig lab_config(std::uint64_t seed = 11) {
    LinkConfig c;
    c.scenario = hw::ScenarioParams::lab();
    c.seed = seed;
    return c;
  }

  void attach(Link& link) {
    for (std::uint32_t node : {Link::kNodeA, Link::kNodeB}) {
      Egp& egp = link.egp(node);
      egp.set_ok_handler([this, node](const OkMessage& ok) {
        (node == Link::kNodeA ? oks_a_ : oks_b_).push_back(ok);
      });
      egp.set_err_handler([this, node](const ErrMessage& err) {
        (node == Link::kNodeA ? errs_a_ : errs_b_).push_back(err);
      });
    }
  }

  static CreateRequest measure_request(std::uint16_t pairs = 1,
                                       double fmin = 0.6) {
    CreateRequest r;
    r.type = RequestType::kCreateMeasure;
    r.num_pairs = pairs;
    r.min_fidelity = fmin;
    r.priority = Priority::kMeasureDirectly;
    r.consecutive = true;
    r.store_in_memory = false;
    return r;
  }

  static CreateRequest keep_request(std::uint16_t pairs = 1,
                                    double fmin = 0.6) {
    CreateRequest r;
    r.type = RequestType::kCreateKeep;
    r.num_pairs = pairs;
    r.min_fidelity = fmin;
    r.priority = Priority::kCreateKeep;
    r.consecutive = true;
    r.store_in_memory = true;
    return r;
  }

  std::vector<OkMessage> oks_a_;
  std::vector<OkMessage> oks_b_;
  std::vector<ErrMessage> errs_a_;
  std::vector<ErrMessage> errs_b_;
};

TEST_F(EgpTest, MeasureRequestCompletesAtBothNodes) {
  Link link(lab_config());
  attach(link);
  link.start();
  link.egp_a().create(measure_request(1));
  link.run_for(sim::duration::seconds(2));
  ASSERT_EQ(oks_a_.size(), 1u);
  ASSERT_EQ(oks_b_.size(), 1u);
  const OkMessage& ok = oks_a_.front();
  EXPECT_TRUE(ok.is_measure_directly);
  EXPECT_GE(ok.outcome, 0);
  EXPECT_LE(ok.outcome, 1);
  EXPECT_EQ(ok.ent_id.seq_mhp, oks_b_.front().ent_id.seq_mhp);
  EXPECT_EQ(ok.origin_node, Link::kNodeA);
  EXPECT_GT(ok.goodness, 0.5);
  // Request gone from both queues.
  EXPECT_EQ(link.egp_a().queue().total_size(), 0u);
  EXPECT_EQ(link.egp_b().queue().total_size(), 0u);
}

TEST_F(EgpTest, KeepRequestDeliversStoredEntanglement) {
  Link link(lab_config(22));
  attach(link);
  // Measure fidelity the moment both halves are delivered — stored pairs
  // keep decaying in memory, so measuring later would test storage, not
  // delivery.
  double fidelity_at_delivery = -1.0;
  link.egp_b().set_ok_handler([&](const OkMessage& ok) {
    oks_b_.push_back(ok);
    if (!oks_a_.empty() && fidelity_at_delivery < 0.0) {
      fidelity_at_delivery =
          link.pair_fidelity(oks_a_.front().qubit, ok.qubit);
    }
  });
  link.start();
  link.egp_a().create(keep_request(1));
  link.run_for(sim::duration::seconds(5));
  ASSERT_EQ(oks_a_.size(), 1u);
  ASSERT_EQ(oks_b_.size(), 1u);
  const OkMessage& oa = oks_a_.front();
  EXPECT_FALSE(oa.is_measure_directly);
  EXPECT_EQ(oa.logical_qubit_id, 0);  // moved to the carbon
  // The delivered pair is genuinely entangled with decent fidelity.
  EXPECT_GT(fidelity_at_delivery, 0.55);
  EXPECT_LE(fidelity_at_delivery, 1.0);
}

TEST_F(EgpTest, MultiPairConsecutiveDeliversEachPair) {
  Link link(lab_config(33));
  attach(link);
  link.start();
  link.egp_a().create(measure_request(3));
  link.run_for(sim::duration::seconds(4));
  ASSERT_EQ(oks_a_.size(), 3u);
  for (std::uint16_t i = 0; i < 3; ++i) {
    EXPECT_EQ(oks_a_[i].pair_index, i);
    EXPECT_EQ(oks_a_[i].total_pairs, 3);
  }
}

TEST_F(EgpTest, RequestsFromSlaveSideWork) {
  Link link(lab_config(44));
  attach(link);
  link.start();
  link.egp_b().create(measure_request(2));
  link.run_for(sim::duration::seconds(3));
  ASSERT_EQ(oks_b_.size(), 2u);
  EXPECT_EQ(oks_b_.front().origin_node, Link::kNodeB);
}

TEST_F(EgpTest, ConcurrentRequestsFromBothSidesAllComplete) {
  Link link(lab_config(55));
  attach(link);
  link.start();
  link.egp_a().create(measure_request(1));
  link.egp_b().create(measure_request(1));
  link.egp_a().create(measure_request(1));
  link.run_for(sim::duration::seconds(4));
  EXPECT_EQ(oks_a_.size() + oks_b_.size(), 6u);  // each OK at both ends
  EXPECT_EQ(link.egp_a().queue().total_size(), 0u);
}

TEST_F(EgpTest, UnsupportedFidelityRejectedImmediately) {
  Link link(lab_config(66));
  attach(link);
  link.start();
  link.egp_a().create(measure_request(1, 0.999));
  link.run_for(sim::duration::milliseconds(1));
  ASSERT_EQ(errs_a_.size(), 1u);
  EXPECT_EQ(errs_a_.front().error, EgpError::kUnsupported);
  EXPECT_TRUE(oks_a_.empty());
}

TEST_F(EgpTest, ImpossibleDeadlineRejectedAsUnsupported) {
  Link link(lab_config(77));
  attach(link);
  link.start();
  CreateRequest r = measure_request(100);
  r.max_time = sim::duration::microseconds(50);  // far below 100 pairs
  link.egp_a().create(r);
  link.run_for(sim::duration::milliseconds(1));
  ASSERT_EQ(errs_a_.size(), 1u);
  EXPECT_EQ(errs_a_.front().error, EgpError::kUnsupported);
}

TEST_F(EgpTest, AtomicKeepBeyondMemoryIsMemExceeded) {
  Link link(lab_config(88));
  attach(link);
  link.start();
  CreateRequest r = keep_request(3);
  r.atomic = true;  // 3 pairs, 1 memory qubit
  link.egp_a().create(r);
  link.run_for(sim::duration::milliseconds(1));
  ASSERT_EQ(errs_a_.size(), 1u);
  EXPECT_EQ(errs_a_.front().error, EgpError::kMemExceeded);
}

TEST_F(EgpTest, TimeoutExpiresQueuedRequest) {
  Link link(lab_config(99));
  attach(link);
  link.start();
  CreateRequest r = measure_request(1);
  // Deadline generous for the FEU estimate but too short in practice is
  // flaky; instead queue behind a huge request so it cannot start.
  link.egp_a().create(measure_request(2000));
  r.max_time = sim::duration::milliseconds(300);
  link.egp_a().create(r);
  link.run_for(sim::duration::seconds(2));
  bool timed_out = false;
  for (const auto& e : errs_a_) {
    timed_out |= e.error == EgpError::kTimeout;
  }
  EXPECT_TRUE(timed_out);
}

TEST_F(EgpTest, PurposeIdPolicyYieldsDenied) {
  Link link(lab_config(111));
  attach(link);
  link.egp_b().set_queue_policy(
      [](const net::DqpPacket& p) { return p.purpose_id != 99; });
  link.start();
  CreateRequest r = measure_request(1);
  r.purpose_id = 99;
  link.egp_a().create(r);
  link.run_for(sim::duration::milliseconds(5));
  ASSERT_EQ(errs_a_.size(), 1u);
  EXPECT_EQ(errs_a_.front().error, EgpError::kDenied);
}

TEST_F(EgpTest, GoodnessTracksMeasuredFidelity) {
  Link link(lab_config(123));
  attach(link);
  std::vector<double> measured;
  std::vector<double> goodness;
  link.egp_b().set_ok_handler([&](const OkMessage& ok) {
    // B's OK always arrives second in the Lab scenario; measure, record
    // and consume both halves immediately.
    ASSERT_FALSE(oks_a_.empty());
    const OkMessage& oa = oks_a_.back();
    measured.push_back(link.pair_fidelity(oa.qubit, ok.qubit));
    goodness.push_back(oa.goodness);
    link.egp_a().release_delivered(oa);
    link.egp_b().release_delivered(ok);
  });
  link.start();
  for (int i = 0; i < 6; ++i) link.egp_a().create(keep_request(1));
  link.run_for(sim::duration::seconds(10));
  ASSERT_GE(measured.size(), 3u);
  for (std::size_t i = 0; i < measured.size(); ++i) {
    EXPECT_NEAR(goodness[i], measured[i], 0.25);
  }
}

TEST_F(EgpTest, MeasureOutcomesAreCorrelatedPerBellState) {
  Link link(lab_config(321));
  attach(link);
  link.start();
  link.egp_a().create(measure_request(60, 0.7));
  link.run_for(sim::duration::seconds(30));
  ASSERT_GE(oks_a_.size(), 30u);
  int errors = 0;
  int total = 0;
  for (std::size_t i = 0; i < std::min(oks_a_.size(), oks_b_.size()); ++i) {
    const auto& oa = oks_a_[i];
    const auto& ob = oks_b_[i];
    ASSERT_EQ(oa.ent_id.seq_mhp, ob.ent_id.seq_mhp);
    EXPECT_EQ(oa.basis, ob.basis);  // shared pseudo-random basis strings
    const auto target = oa.heralded_state == 1
                            ? quantum::bell::BellState::kPsiPlus
                            : quantum::bell::BellState::kPsiMinus;
    const bool ideal_equal =
        quantum::bell::ideal_outcomes_equal(target, oa.basis);
    if ((oa.outcome == ob.outcome) != ideal_equal) ++errors;
    ++total;
  }
  // QBER well below 50% proves quantum correlations survive end-to-end.
  EXPECT_LT(static_cast<double>(errors) / total, 0.35);
}

TEST_F(EgpTest, StatsCountersAreConsistent) {
  Link link(lab_config(555));
  attach(link);
  link.start();
  link.egp_a().create(measure_request(2));
  link.run_for(sim::duration::seconds(3));
  const Egp::Stats& sa = link.egp_a().stats();
  EXPECT_EQ(sa.creates, 1u);
  EXPECT_GE(sa.attempts, 2u);
  EXPECT_EQ(sa.oks, 2u);
  EXPECT_EQ(sa.successes, 2u);
  EXPECT_EQ(sa.expires_sent, 0u);
  EXPECT_EQ(sa.seq_gaps, 0u);
}

TEST_F(EgpTest, DeterministicGivenSeed) {
  auto run = [this](std::uint64_t seed) {
    oks_a_.clear();
    oks_b_.clear();
    Link link(lab_config(seed));
    attach(link);
    link.start();
    link.egp_a().create(measure_request(5));
    link.run_for(sim::duration::seconds(5));
    std::vector<std::pair<std::uint32_t, int>> sig;
    for (const auto& ok : oks_a_) sig.push_back({ok.ent_id.seq_mhp, ok.outcome});
    return sig;
  };
  const auto r1 = run(4242);
  const auto r2 = run(4242);
  EXPECT_EQ(r1, r2);
  EXPECT_FALSE(r1.empty());
}

}  // namespace
}  // namespace qlink::core
