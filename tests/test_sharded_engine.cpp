#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/shard_ring.hpp"
#include "sim/sharded_engine.hpp"

namespace qlink::sim {
namespace {

// ---------------------------------------------------------------------
// SpscRing
// ---------------------------------------------------------------------

TEST(SpscRing, FifoAcrossWraparound) {
  SpscRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  // Push/pop more than the capacity so head/tail wrap.
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 3; ++i) EXPECT_TRUE(ring.try_push(next_in++));
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out, next_out++);
    }
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, RejectsPushWhenFull) {
  SpscRing<int> ring(3);  // rounds up to 4 slots
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_EQ(ring.size(), 4u);
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(4));  // slot freed
}

// ---------------------------------------------------------------------
// ShardAssignment
// ---------------------------------------------------------------------

TEST(ShardAssignment, BlocksAreContiguousAndBalanced) {
  const auto a = ShardAssignment::blocks(1024, 8);
  EXPECT_EQ(a.num_shards, 8u);
  EXPECT_EQ(a.shard(0), 0u);
  EXPECT_EQ(a.shard(127), 0u);
  EXPECT_EQ(a.shard(128), 1u);
  EXPECT_EQ(a.shard(1023), 7u);
  std::uint32_t prev = 0;
  for (std::uint32_t n = 0; n < 1024; ++n) {
    EXPECT_GE(a.shard(n), prev);  // monotone: blocks are contiguous
    prev = a.shard(n);
  }
  EXPECT_THROW(ShardAssignment::blocks(4, 0), std::invalid_argument);
  EXPECT_THROW(ShardAssignment::blocks(4, 5), std::invalid_argument);
}

TEST(ShardAssignment, ValidateRejectsCrossShardQuantumEdge) {
  const auto a = ShardAssignment::blocks(8, 2);
  a.validate_intra_shard({{0, 1}, {4, 7}});
  EXPECT_THROW(a.validate_intra_shard({{3, 4}}), std::invalid_argument);
  const auto single = ShardAssignment::single(8);
  single.validate_intra_shard({{0, 7}});
}

// ---------------------------------------------------------------------
// ShardedEngine: wiring validation
// ---------------------------------------------------------------------

TEST(ShardedEngine, ConnectAndPostValidate) {
  ShardedEngine::Config cfg;
  cfg.num_shards = 2;
  ShardedEngine engine(cfg);
  EXPECT_THROW(engine.connect(0, 0, 10), std::invalid_argument);
  EXPECT_THROW(engine.connect(0, 2, 10), std::out_of_range);
  EXPECT_THROW(engine.connect(0, 1, ShardedEngine::kMinLookahead - 1),
               std::invalid_argument);
  // Posting on an unconnected pair is a wiring bug.
  EXPECT_THROW(engine.post(0, 1, 10, [] {}), std::logic_error);

  engine.connect(0, 1, 10);
  EXPECT_EQ(engine.lookahead(0, 1), 10);
  EXPECT_EQ(engine.lookahead(1, 0), 0);  // directional
  engine.connect(0, 1, 5);  // repeat keeps the tightest delay
  EXPECT_EQ(engine.lookahead(0, 1), 5);

  // A post under the lookahead floor would break conservatism.
  EXPECT_THROW(engine.post(0, 1, 4, [] {}), std::invalid_argument);
  engine.post(0, 1, 5, [] {});
  EXPECT_EQ(engine.stats().posted, 1u);
}

TEST(ShardedEngine, RefBindsShardAndRejectsOutOfRange) {
  ShardedEngine::Config cfg;
  cfg.num_shards = 2;
  ShardedEngine engine(cfg);
  EngineRef r1 = engine.ref(1);
  EXPECT_TRUE(static_cast<bool>(r1));
  EXPECT_EQ(&r1.sim(), &engine.sim(1));
  EXPECT_THROW(engine.ref(2), std::out_of_range);
  EngineRef unbound;
  EXPECT_FALSE(static_cast<bool>(unbound));
  EXPECT_THROW(unbound.sim(), std::logic_error);
}

// ---------------------------------------------------------------------
// ShardedEngine: single-shard pass-through
// ---------------------------------------------------------------------

TEST(ShardedEngine, SingleShardDelegatesToSimulator) {
  ShardedEngine engine;  // default: one shard
  EXPECT_EQ(engine.num_shards(), 1u);
  EXPECT_FALSE(engine.threads_enabled());
  std::vector<SimTime> fired;
  engine.sim(0).schedule_at(10, [&] { fired.push_back(10); });
  engine.sim(0).schedule_at(30, [&] { fired.push_back(30); });
  engine.run_until(20);
  EXPECT_EQ(fired, std::vector<SimTime>{10});
  EXPECT_EQ(engine.now(), 20);
  engine.run_for(10);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 30}));
  EXPECT_EQ(engine.events_processed(), 2u);
  // Pass-through: no barrier rounds were needed.
  EXPECT_EQ(engine.stats().rounds, 0u);
}

// ---------------------------------------------------------------------
// ShardedEngine: cross-shard rounds
// ---------------------------------------------------------------------

/// Ping-pong workload over a 2-shard engine: each delivery posts the
/// next one back, `hops` times, with lookahead-respecting delays.
std::vector<std::pair<std::size_t, SimTime>> ping_pong(
    ShardedEngine::Parallel parallel, int hops, SimTime delay) {
  ShardedEngine::Config cfg;
  cfg.num_shards = 2;
  cfg.parallel = parallel;
  ShardedEngine engine(cfg);
  engine.connect(0, 1, delay);
  engine.connect(1, 0, delay);

  std::vector<std::pair<std::size_t, SimTime>> trace;
  std::function<void(std::size_t, int)> hop = [&](std::size_t shard,
                                                  int remaining) {
    trace.emplace_back(shard, engine.sim(shard).now());
    if (remaining == 0) return;
    const std::size_t peer = 1 - shard;
    engine.post(shard, peer, engine.sim(shard).now() + delay,
                [&hop, peer, remaining] { hop(peer, remaining - 1); },
                "test.hop");
  };
  engine.sim(0).schedule_at(1, [&] { hop(0, hops); }, "test.start");
  engine.run_until(1 + delay * (hops + 1));
  return trace;
}

TEST(ShardedEngine, CrossShardPostsRespectDelayAndOrder) {
  const auto trace = ping_pong(ShardedEngine::Parallel::kOff, 6, 10);
  ASSERT_EQ(trace.size(), 7u);
  for (int i = 0; i <= 6; ++i) {
    EXPECT_EQ(trace[i].first, static_cast<std::size_t>(i % 2));
    EXPECT_EQ(trace[i].second, 1 + 10 * i);
  }
}

TEST(ShardedEngine, ParallelRoundsMatchSequentialExactly) {
  // The determinism contract: thread interleaving must not be
  // observable — parallel rounds produce the same trace as running
  // the shards sequentially in shard order.
  const auto seq = ping_pong(ShardedEngine::Parallel::kOff, 40, 7);
  const auto par = ping_pong(ShardedEngine::Parallel::kOn, 40, 7);
  EXPECT_EQ(seq, par);
}

/// Both shards busy every round — the rounds genuinely run on two
/// threads under kOn — with cross-posts in both directions. Handlers
/// write only their own shard's trace, so the only sharing is the
/// engine's own machinery (what TSan checks here).
std::vector<std::vector<std::pair<SimTime, int>>> busy_shards(
    ShardedEngine::Parallel parallel) {
  ShardedEngine::Config cfg;
  cfg.num_shards = 2;
  cfg.parallel = parallel;
  ShardedEngine engine(cfg);
  engine.connect(0, 1, 10);
  engine.connect(1, 0, 10);

  std::vector<std::vector<std::pair<SimTime, int>>> trace(2);
  std::vector<std::function<void(int)>> tick(2);
  for (std::size_t s = 0; s < 2; ++s) {
    tick[s] = [&, s](int n) {
      Simulator& sim = engine.sim(s);
      trace[s].emplace_back(sim.now(), n);
      if (n % 3 == 0) {
        const std::size_t peer = 1 - s;
        engine.post(s, peer, sim.now() + 10,
                    [&trace, &engine, peer, n] {
                      trace[peer].emplace_back(engine.sim(peer).now(),
                                               1000 + n);
                    },
                    "test.cross");
      }
      if (n < 100) {
        sim.schedule_at(sim.now() + 5, [&tick, s, n] { tick[s](n + 1); },
                        "test.tick");
      }
    };
    engine.sim(s).schedule_at(1 + static_cast<SimTime>(s),
                              [&tick, s] { tick[s](0); }, "test.tick");
  }
  engine.run_until(1000);
  return trace;
}

TEST(ShardedEngine, ConcurrentShardsReplaySequentialTrace) {
  const auto seq = busy_shards(ShardedEngine::Parallel::kOff);
  const auto par = busy_shards(ShardedEngine::Parallel::kOn);
  ASSERT_EQ(seq.size(), par.size());
  EXPECT_GT(seq[0].size(), 100u);
  EXPECT_EQ(seq, par);
}

TEST(ShardedEngine, IdleJumpFastForwardsQuietStretches) {
  ShardedEngine::Config cfg;
  cfg.num_shards = 2;
  cfg.parallel = ShardedEngine::Parallel::kOff;
  ShardedEngine engine(cfg);
  engine.connect(0, 1, 2);
  engine.connect(1, 0, 2);
  std::vector<SimTime> fired;
  // One event far in the future: stepping lookahead-sized rounds to
  // reach it would take ~500k rounds; the idle jump takes O(1).
  engine.sim(1).schedule_at(1000000, [&] { fired.push_back(1000000); });
  engine.run_until(2000000);
  EXPECT_EQ(fired, std::vector<SimTime>{1000000});
  EXPECT_EQ(engine.now(), 2000000);
  const auto stats = engine.stats();
  EXPECT_GT(stats.idle_jumps, 0u);
  EXPECT_LT(stats.rounds, 100u);
}

TEST(ShardedEngine, RingOverflowKeepsFifoAndCounts) {
  ShardedEngine::Config cfg;
  cfg.num_shards = 2;
  cfg.ring_capacity = 2;
  cfg.parallel = ShardedEngine::Parallel::kOff;
  ShardedEngine engine(cfg);
  engine.connect(0, 1, 2);
  std::vector<int> got;
  // One burst of posts from a single shard-0 event: far more than the
  // ring holds, so the locked overflow path must preserve FIFO.
  engine.sim(0).schedule_at(1, [&] {
    for (int i = 0; i < 64; ++i) {
      engine.post(0, 1, 10 + i, [&got, i] { got.push_back(i); });
    }
  });
  engine.run_until(100);
  ASSERT_EQ(got.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(got[i], i);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.posted, 64u);
  EXPECT_EQ(stats.drained, 64u);
  EXPECT_GT(stats.ring_overflows, 0u);
}

// ---------------------------------------------------------------------
// Merged telemetry
// ---------------------------------------------------------------------

TEST(ShardedEngine, TelemetryMergesAcrossShards) {
  ShardedEngine::Config cfg;
  cfg.num_shards = 2;
  cfg.parallel = ShardedEngine::Parallel::kOff;
  ShardedEngine engine(cfg);
  engine.set_telemetry(true);
  engine.sim(0).schedule_at(1, [] {}, "shared.label");
  engine.sim(1).schedule_at(1, [] {}, "shared.label");
  engine.sim(1).schedule_at(2, [] {}, "only.one");
  engine.run_until(10);
  EXPECT_EQ(engine.events_processed(), 3u);
  const auto stats = engine.label_stats();
  ASSERT_EQ(stats.size(), 2u);  // sorted by label
  EXPECT_EQ(stats[0].label, "only.one");
  EXPECT_EQ(stats[0].count, 1u);
  EXPECT_EQ(stats[1].label, "shared.label");
  EXPECT_EQ(stats[1].count, 2u);
}

// ---------------------------------------------------------------------
// Simulator seam the engine leans on
// ---------------------------------------------------------------------

TEST(Simulator, NextEventTimeTracksQueue) {
  Simulator sim;
  EXPECT_EQ(sim.next_event_time(), Simulator::kNoEventTime);
  sim.schedule_at(42, [] {});
  sim.schedule_at(17, [] {});
  EXPECT_EQ(sim.next_event_time(), 17);
  sim.run_until(20);
  EXPECT_EQ(sim.next_event_time(), 42);
  sim.run_until(50);
  EXPECT_EQ(sim.next_event_time(), Simulator::kNoEventTime);
}

}  // namespace
}  // namespace qlink::sim
