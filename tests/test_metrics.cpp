#include <gtest/gtest.h>

#include <cmath>

#include "metrics/collector.hpp"
#include "metrics/histogram.hpp"
#include "metrics/reservoir.hpp"
#include "metrics/stats.hpp"

namespace qlink::metrics {
namespace {

using core::EgpError;
using core::OkMessage;
using core::Priority;
using quantum::gates::Basis;

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_NEAR(s.stderr_mean(), s.stddev() / std::sqrt(8.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsSafe) {
  RunningStat s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStat, SingleSample) {
  RunningStat s;
  s.add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RelativeDifference, MatchesPaperFootnote) {
  EXPECT_NEAR(relative_difference(1.0, 0.9), 0.1, 1e-12);
  EXPECT_NEAR(relative_difference(0.9, 1.0), 0.1, 1e-12);
  EXPECT_EQ(relative_difference(0.0, 0.0), 0.0);
  EXPECT_NEAR(relative_difference(-2.0, 2.0), 2.0, 1e-12);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_EQ(percentile(v, 0), 1.0);
  EXPECT_EQ(percentile(v, 100), 5.0);
  EXPECT_EQ(percentile(v, 50), 3.0);
  EXPECT_NEAR(percentile(v, 25), 2.0, 1e-12);
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(percentile(v, 101), std::invalid_argument);
}

OkMessage make_ok(std::uint32_t origin, std::uint32_t create_id,
                  std::uint16_t pair_index, std::uint16_t total) {
  OkMessage ok;
  ok.origin_node = origin;
  ok.create_id = create_id;
  ok.pair_index = pair_index;
  ok.total_pairs = total;
  ok.ent_id = {0, 1, create_id * 100 + pair_index};
  ok.goodness = 0.7;
  return ok;
}

TEST(Collector, ThroughputCountsPairsOverElapsed) {
  Collector c;
  c.begin(0);
  c.record_create(0, 1, Priority::kMeasureDirectly, 2, 0);
  c.record_ok(make_ok(0, 1, 0, 2), Priority::kMeasureDirectly,
              sim::duration::seconds(1), std::nullopt);
  c.record_ok(make_ok(0, 1, 1, 2), Priority::kMeasureDirectly,
              sim::duration::seconds(2), std::nullopt);
  c.end(sim::duration::seconds(4));
  EXPECT_NEAR(c.throughput(Priority::kMeasureDirectly), 0.5, 1e-12);
  EXPECT_NEAR(c.total_throughput(), 0.5, 1e-12);
}

TEST(Collector, LatenciesPerPaperDefinitions) {
  Collector c;
  c.begin(0);
  // Request for 2 pairs created at t=1s; pairs at 3s and 5s.
  c.record_create(0, 7, Priority::kNetworkLayer, 2,
                  sim::duration::seconds(1));
  c.record_ok(make_ok(0, 7, 0, 2), Priority::kNetworkLayer,
              sim::duration::seconds(3), std::nullopt);
  c.record_ok(make_ok(0, 7, 1, 2), Priority::kNetworkLayer,
              sim::duration::seconds(5), std::nullopt);
  c.end(sim::duration::seconds(5));
  const auto& km = c.kind(Priority::kNetworkLayer);
  // Pair latencies 2s and 4s.
  EXPECT_NEAR(km.pair_latency_s.mean(), 3.0, 1e-9);
  // Request latency 4s; scaled latency 4/2 = 2s.
  EXPECT_NEAR(km.request_latency_s.mean(), 4.0, 1e-9);
  EXPECT_NEAR(km.scaled_latency_s.mean(), 2.0, 1e-9);
  EXPECT_EQ(km.requests_completed, 1u);
}

TEST(Collector, KindsAreSeparated) {
  Collector c;
  c.begin(0);
  c.record_create(0, 1, Priority::kNetworkLayer, 1, 0);
  c.record_create(0, 2, Priority::kMeasureDirectly, 1, 0);
  c.record_ok(make_ok(0, 1, 0, 1), Priority::kNetworkLayer,
              sim::duration::seconds(1), std::nullopt);
  c.end(sim::duration::seconds(1));
  EXPECT_EQ(c.kind(Priority::kNetworkLayer).pairs_delivered, 1u);
  EXPECT_EQ(c.kind(Priority::kMeasureDirectly).pairs_delivered, 0u);
}

TEST(Collector, FairnessSplitByOrigin) {
  Collector c;
  c.begin(0);
  c.record_create(0, 1, Priority::kMeasureDirectly, 1, 0);
  c.record_create(1, 1, Priority::kMeasureDirectly, 1, 0);
  c.record_ok(make_ok(0, 1, 0, 1), Priority::kMeasureDirectly,
              sim::duration::seconds(1), std::nullopt);
  auto ok_b = make_ok(1, 1, 0, 1);
  ok_b.ent_id.seq_mhp = 999;
  c.record_ok(ok_b, Priority::kMeasureDirectly, sim::duration::seconds(2),
              std::nullopt);
  c.end(sim::duration::seconds(2));
  ASSERT_TRUE(c.has_origin(0));
  ASSERT_TRUE(c.has_origin(1));
  EXPECT_EQ(c.by_origin(0).pairs_delivered, 1u);
  EXPECT_EQ(c.by_origin(1).pairs_delivered, 1u);
}

TEST(Collector, QberAndFidelityReconstruction) {
  Collector c;
  // Psi+ correlations: equal in X and Y, different in Z.
  for (int i = 0; i < 90; ++i) c.record_correlation(Basis::kX, 1, 1, 1);
  for (int i = 0; i < 10; ++i) c.record_correlation(Basis::kX, 0, 1, 1);
  for (int i = 0; i < 100; ++i) c.record_correlation(Basis::kY, 0, 0, 1);
  for (int i = 0; i < 100; ++i) c.record_correlation(Basis::kZ, 0, 1, 1);
  EXPECT_NEAR(*c.qber(Basis::kX), 0.1, 1e-12);
  EXPECT_NEAR(*c.qber(Basis::kY), 0.0, 1e-12);
  EXPECT_NEAR(*c.qber(Basis::kZ), 0.0, 1e-12);
  EXPECT_NEAR(*c.fidelity_from_qber(), 0.95, 1e-12);
}

TEST(Collector, QberUsesHeraldedState) {
  Collector c;
  // For Psi- in Z, different outcomes are ideal.
  c.record_correlation(Basis::kZ, 0, 1, 2);
  EXPECT_NEAR(*c.qber(Basis::kZ), 0.0, 1e-12);
  c.record_correlation(Basis::kZ, 1, 1, 2);
  EXPECT_NEAR(*c.qber(Basis::kZ), 0.5, 1e-12);
}

TEST(Collector, MissingBasisMeansNoFidelityEstimate) {
  Collector c;
  c.record_correlation(Basis::kX, 1, 1, 1);
  EXPECT_FALSE(c.fidelity_from_qber().has_value());
  EXPECT_FALSE(c.qber(Basis::kZ).has_value());
}

TEST(Collector, ErrorsCounted) {
  Collector c;
  c.record_err({1, EgpError::kTimeout, 0, 0, 0});
  c.record_err({2, EgpError::kExpired, 0, 0, 0});
  c.record_err({3, EgpError::kExpired, 0, 0, 0});
  EXPECT_EQ(c.errors(EgpError::kTimeout), 1u);
  EXPECT_EQ(c.total_expires(), 2u);
  EXPECT_EQ(c.errors(EgpError::kDenied), 0u);
}

TEST(Collector, FidelitySamplesAggregate) {
  Collector c;
  c.begin(0);
  c.record_create(0, 1, Priority::kCreateKeep, 2, 0);
  c.record_ok(make_ok(0, 1, 0, 2), Priority::kCreateKeep,
              sim::duration::seconds(1), 0.8);
  c.record_ok(make_ok(0, 1, 1, 2), Priority::kCreateKeep,
              sim::duration::seconds(2), 0.6);
  EXPECT_NEAR(c.kind(Priority::kCreateKeep).fidelity.mean(), 0.7, 1e-12);
  EXPECT_EQ(c.kind(Priority::kCreateKeep).fidelity.count(), 2u);
}

TEST(Collector, QueueLengthSampling) {
  Collector c;
  c.sample_queue_length(2);
  c.sample_queue_length(4);
  EXPECT_NEAR(c.queue_length().mean(), 3.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Shard-mergeable statistics (ISSUE 7)

TEST(RunningStat, MergeMatchesSingleStream) {
  RunningStat a, b, whole;
  for (int i = 1; i <= 1000; ++i) {
    const double x = 0.001 * i * i;  // non-uniform: exercises m2
    (i <= 400 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9 * whole.variance());
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmptyEitherWay) {
  RunningStat filled, empty;
  filled.add(1.0);
  filled.add(3.0);
  RunningStat lhs = filled;
  lhs.merge(empty);
  EXPECT_EQ(lhs.count(), 2u);
  EXPECT_NEAR(lhs.mean(), 2.0, 1e-12);
  RunningStat rhs;
  rhs.merge(filled);
  EXPECT_EQ(rhs.count(), 2u);
  EXPECT_NEAR(rhs.mean(), 2.0, 1e-12);
  EXPECT_EQ(rhs.min(), 1.0);
  EXPECT_EQ(rhs.max(), 3.0);
}

TEST(Histogram, DeltaSinceIsolatesTheNewSamples) {
  Histogram earlier, only_new;
  for (int i = 1; i <= 100; ++i) earlier.record(1e-3 * i);
  Histogram later = earlier;
  for (int i = 1; i <= 50; ++i) {
    later.record(0.5 + 1e-3 * i);
    only_new.record(0.5 + 1e-3 * i);
  }
  const Histogram delta = later.delta_since(earlier);
  EXPECT_EQ(delta.count(), only_new.count());
  EXPECT_NEAR(delta.sum(), only_new.sum(), 1e-9);
  EXPECT_DOUBLE_EQ(delta.p50(), only_new.p50());
  EXPECT_DOUBLE_EQ(delta.p99(), only_new.p99());
  for (int i = 0; i < Histogram::kBins; ++i) {
    ASSERT_EQ(delta.bin_count(i), only_new.bin_count(i)) << "bin " << i;
  }
  // Self-delta is empty.
  EXPECT_EQ(later.delta_since(later).count(), 0u);
}

TEST(Histogram, ExactExtremesSurviveBinClamping) {
  Histogram h;
  EXPECT_EQ(h.min(), 0.0);  // RunningStat convention when empty
  EXPECT_EQ(h.max(), 0.0);
  h.record(1e-12);  // below kMinValue: underflow bin
  h.record(0.5);
  h.record(5e3);  // at/above kMaxValue: overflow bin
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  // The bins clamp, the extremes do not: outliers report faithfully.
  EXPECT_DOUBLE_EQ(h.min(), 1e-12);
  EXPECT_DOUBLE_EQ(h.max(), 5e3);
  EXPECT_LT(h.min(), Histogram::kMinValue);
  EXPECT_GE(h.max(), Histogram::kMaxValue);
  // delta_since carries the stream-cumulative extremes (interval-local
  // ones are not derivable from two cumulative snapshots).
  const Histogram delta = h.delta_since(Histogram{});
  EXPECT_DOUBLE_EQ(delta.min(), 1e-12);
  EXPECT_DOUBLE_EQ(delta.max(), 5e3);
}

TEST(Histogram, MergeTakesElementwiseExtremes) {
  Histogram a, b;
  a.record(0.3);
  a.record(2.0);
  b.record(1e-10);  // an underflow outlier must survive the merge
  b.record(0.7);
  a += b;
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.min(), 1e-10);
  EXPECT_DOUBLE_EQ(a.max(), 2.0);
  // An empty side is the identity in either direction (the sentinels
  // absorb under std::min/std::max).
  Histogram empty;
  a += empty;
  EXPECT_DOUBLE_EQ(a.min(), 1e-10);
  EXPECT_DOUBLE_EQ(a.max(), 2.0);
  Histogram lhs;
  lhs += a;
  EXPECT_DOUBLE_EQ(lhs.min(), 1e-10);
  EXPECT_DOUBLE_EQ(lhs.max(), 2.0);
  EXPECT_EQ(lhs.count(), 4u);
}

TEST(Reservoir, KeepsEverySampleUnderCapacity) {
  Reservoir r(8);
  for (int i = 1; i <= 5; ++i) r.add(static_cast<double>(i));
  EXPECT_EQ(r.count(), 5u);
  EXPECT_EQ(r.size(), 5u);
  EXPECT_DOUBLE_EQ(r.quantile(50.0), 3.0);  // exact, not binned
  EXPECT_DOUBLE_EQ(r.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.quantile(100.0), 5.0);
}

TEST(Reservoir, EmptyIsSafe) {
  Reservoir r;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_DOUBLE_EQ(r.quantile(50.0), 0.0);
}

TEST(Reservoir, DeterministicPerSeed) {
  Reservoir a(64, 42), b(64, 42), c(64, 43);
  for (int i = 0; i < 10000; ++i) {
    const double x = 1e-4 * i;
    a.add(x);
    b.add(x);
    c.add(x);
  }
  EXPECT_EQ(a.count(), 10000u);
  EXPECT_EQ(a.size(), 64u);
  EXPECT_EQ(a.samples(), b.samples());  // same seed -> byte-identical
  EXPECT_NE(a.samples(), c.samples());  // different seed -> different draw
}

TEST(Reservoir, QuantilesTrackTheStreamAndTheHistogram) {
  // 100k near-uniform samples on (0, 1]: the 4096-sample reservoir's
  // quantiles must sit close to the exact ones and agree with the
  // binned Histogram estimate well within its ~8% bin width.
  Reservoir r(4096, 7);
  Histogram h;
  for (int i = 0; i < 100000; ++i) {
    // Weyl sequence: equidistributed, deterministic, order-scrambled.
    const double x =
        static_cast<double>((i * 2654435761ULL) % 100000u + 1) * 1e-5;
    r.add(x);
    h.record(x);
  }
  EXPECT_EQ(r.count(), 100000u);
  EXPECT_EQ(r.size(), 4096u);
  EXPECT_NEAR(r.quantile(50.0), 0.5, 0.05);
  EXPECT_NEAR(r.quantile(99.0), 0.99, 0.05);
  EXPECT_NEAR(r.quantile(50.0), h.p50(), 0.15 * h.p50());
  EXPECT_NEAR(r.quantile(99.0), h.p99(), 0.15 * h.p99());
}

TEST(Reservoir, MergeIsExactUnionUnderCapacity) {
  Reservoir a(16), b(16);
  for (double x : {1.0, 2.0, 3.0}) a.add(x);
  for (double x : {10.0, 20.0}) b.add(x);
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_DOUBLE_EQ(a.quantile(100.0), 20.0);
  EXPECT_DOUBLE_EQ(a.quantile(0.0), 1.0);
}

TEST(Reservoir, MergeIsDeterministicAndWeightBounded) {
  Reservoir a1(32, 1), a2(32, 1), b1(32, 2), b2(32, 2);
  for (int i = 0; i < 5000; ++i) {
    a1.add(1e-4 * i);
    a2.add(1e-4 * i);
    b1.add(5.0 + 1e-4 * i);
    b2.add(5.0 + 1e-4 * i);
  }
  a1.merge(b1);
  a2.merge(b2);
  EXPECT_EQ(a1.count(), 10000u);
  EXPECT_EQ(a1.size(), 32u);  // stays at capacity
  EXPECT_EQ(a1.samples(), a2.samples());  // same states -> same draw
  // Both halves survive the weighted draw (each holds half the mass).
  std::size_t low = 0, high = 0;
  for (const double x : a1.samples()) (x < 5.0 ? low : high)++;
  EXPECT_GT(low, 0u);
  EXPECT_GT(high, 0u);
}

TEST(Collector, OpenRequestTrackingSurfacesInFlightState) {
  Collector c;
  EXPECT_EQ(c.open_requests(), 0u);
  EXPECT_FALSE(c.oldest_open_created().has_value());
  c.record_create(0, 1, Priority::kNetworkLayer, 2,
                  sim::duration::seconds(1));
  c.record_create(0, 2, Priority::kNetworkLayer, 1,
                  sim::duration::seconds(3));
  EXPECT_EQ(c.open_requests(), 2u);
  ASSERT_TRUE(c.oldest_open_created().has_value());
  EXPECT_EQ(*c.oldest_open_created(), sim::duration::seconds(1));
  // Completing the older request leaves the younger as the oldest.
  c.record_ok(make_ok(0, 1, 0, 2), Priority::kNetworkLayer,
              sim::duration::seconds(4), std::nullopt);
  c.record_ok(make_ok(0, 1, 1, 2), Priority::kNetworkLayer,
              sim::duration::seconds(5), std::nullopt);
  EXPECT_EQ(c.open_requests(), 1u);
  EXPECT_EQ(*c.oldest_open_created(), sim::duration::seconds(3));
}

TEST(Collector, MergeMatchesSingleStream) {
  // The same record stream fed whole into one collector and split
  // across two shards must yield identical outputs after merge().
  Collector whole, a, b;
  whole.begin(0);
  a.begin(0);
  b.begin(sim::duration::seconds(2));

  const auto feed = [](Collector& c1, Collector& c2, std::uint32_t origin,
                       std::uint32_t id, double fid, sim::SimTime created,
                       sim::SimTime done) {
    for (Collector* c : {&c1, &c2}) {
      c->record_create(origin, id, Priority::kNetworkLayer, 1, created);
      c->record_ok(make_ok(origin, id, 0, 1), Priority::kNetworkLayer,
                   done, fid);
    }
  };
  feed(whole, a, 0, 1, 0.9, 0, sim::duration::seconds(1));
  feed(whole, a, 1, 2, 0.7, sim::duration::seconds(1),
       sim::duration::seconds(2));
  feed(whole, b, 0, 3, 0.8, sim::duration::seconds(2),
       sim::duration::seconds(4));
  for (Collector* c : {&whole, &a}) {
    c->record_admission_wait(0.25);
    c->record_err({9, EgpError::kTimeout, 0, 0, 0});
    c->record_correlation(Basis::kX, 1, 1, 1);
    c->sample_queue_length(3);
  }
  for (Collector* c : {&whole, &b}) {
    c->record_admission_wait(0.75);
    c->record_err({8, EgpError::kExpired, 0, 0, 0});
    c->record_correlation(Basis::kX, 0, 1, 1);
    c->sample_queue_length(5);
  }
  a.end(sim::duration::seconds(2));
  b.end(sim::duration::seconds(4));
  whole.end(sim::duration::seconds(4));

  a.merge(b);

  const auto& ka = a.kind(Priority::kNetworkLayer);
  const auto& kw = whole.kind(Priority::kNetworkLayer);
  EXPECT_EQ(ka.pairs_delivered, kw.pairs_delivered);
  EXPECT_EQ(ka.requests_completed, kw.requests_completed);
  EXPECT_EQ(ka.requests_submitted, kw.requests_submitted);
  EXPECT_NEAR(ka.request_latency_s.mean(), kw.request_latency_s.mean(),
              1e-9);
  EXPECT_NEAR(ka.request_latency_s.variance(),
              kw.request_latency_s.variance(), 1e-9);
  EXPECT_NEAR(ka.fidelity.mean(), kw.fidelity.mean(), 1e-9);
  EXPECT_EQ(a.total_pairs_delivered(), whole.total_pairs_delivered());
  EXPECT_NEAR(a.total_throughput(), whole.total_throughput(), 1e-9);

  // Origin union: 0 saw two requests, 1 saw one.
  ASSERT_TRUE(a.has_origin(0));
  ASSERT_TRUE(a.has_origin(1));
  EXPECT_EQ(a.by_origin(0).pairs_delivered,
            whole.by_origin(0).pairs_delivered);
  EXPECT_EQ(a.by_origin(1).pairs_delivered,
            whole.by_origin(1).pairs_delivered);

  // Counters, errors, correlations, sampled stats.
  EXPECT_EQ(a.errors(EgpError::kTimeout), 1u);
  EXPECT_EQ(a.errors(EgpError::kExpired), 1u);
  EXPECT_NEAR(*a.qber(Basis::kX), *whole.qber(Basis::kX), 1e-12);
  EXPECT_NEAR(a.queue_length().mean(), whole.queue_length().mean(), 1e-9);
  EXPECT_NEAR(a.admission_wait().mean(), whole.admission_wait().mean(),
              1e-9);

  // Histograms merge bin-exactly; reservoirs keep every sample while
  // under capacity, so their quantiles match the whole stream too.
  EXPECT_EQ(a.request_latency_hist().count(),
            whole.request_latency_hist().count());
  EXPECT_DOUBLE_EQ(a.request_latency_hist().p99(),
                   whole.request_latency_hist().p99());
  EXPECT_EQ(a.admission_wait_hist().count(),
            whole.admission_wait_hist().count());
  EXPECT_EQ(a.request_latency_reservoir().count(),
            whole.request_latency_reservoir().count());
  EXPECT_DOUBLE_EQ(a.request_latency_reservoir().quantile(50.0),
                   whole.request_latency_reservoir().quantile(50.0));
  EXPECT_EQ(a.fidelity_reservoir().count(),
            whole.fidelity_reservoir().count());

  // All requests completed: no open state survives the merge.
  EXPECT_EQ(a.open_requests(), whole.open_requests());
  EXPECT_EQ(a.open_requests(), 0u);
}

TEST(Collector, MergeKeepsOpenRequestsFromBothShards) {
  Collector a, b;
  a.record_create(0, 1, Priority::kNetworkLayer, 1,
                  sim::duration::seconds(5));
  b.record_create(1, 2, Priority::kNetworkLayer, 1,
                  sim::duration::seconds(3));
  a.merge(b);
  EXPECT_EQ(a.open_requests(), 2u);
  ASSERT_TRUE(a.oldest_open_created().has_value());
  EXPECT_EQ(*a.oldest_open_created(), sim::duration::seconds(3));
}

TEST(Collector, MergeOfDuplicateOpenKeysKeepsTheEarlierCreate) {
  // A request handed off mid-flight can be open in both shards under
  // the same (origin, id) key. The union must keep ONE entry anchored
  // at the earlier submission — in either merge order (ISSUE 8), so a
  // stall watchdog reading oldest_open_created() after the merge sees
  // the true age, not the resubmission's.
  const auto shard = [](sim::SimTime created) {
    Collector c;
    c.record_create(0, 1, Priority::kNetworkLayer, 1, created);
    return c;
  };
  Collector a = shard(sim::duration::seconds(5));
  a.merge(shard(sim::duration::seconds(3)));
  EXPECT_EQ(a.open_requests(), 1u);
  ASSERT_TRUE(a.oldest_open_created().has_value());
  EXPECT_EQ(*a.oldest_open_created(), sim::duration::seconds(3));

  Collector b = shard(sim::duration::seconds(3));
  b.merge(shard(sim::duration::seconds(5)));
  EXPECT_EQ(b.open_requests(), 1u);
  ASSERT_TRUE(b.oldest_open_created().has_value());
  EXPECT_EQ(*b.oldest_open_created(), sim::duration::seconds(3));
}

TEST(Collector, OpenCapacityEvictsOldestDeterministically) {
  // ISSUE 9: at streaming scale an abandoned request must not leak
  // open_ state forever. With a cap of 2, the third create evicts the
  // oldest entry (smallest created, ties by key) and counts it.
  Collector c;
  c.set_open_capacity(2);
  c.record_create(0, 1, Priority::kNetworkLayer, 1,
                  sim::duration::seconds(1));
  c.record_create(0, 2, Priority::kNetworkLayer, 1,
                  sim::duration::seconds(2));
  EXPECT_EQ(c.open_evicted(), 0u);
  c.record_create(0, 3, Priority::kNetworkLayer, 1,
                  sim::duration::seconds(3));
  EXPECT_EQ(c.open_requests(), 2u);
  EXPECT_EQ(c.open_evicted(), 1u);
  ASSERT_TRUE(c.oldest_open_created().has_value());
  EXPECT_EQ(*c.oldest_open_created(), sim::duration::seconds(2));

  // An OK for the evicted request is harmless: the pair still counts,
  // but no latency sample is recorded (its anchor is gone) and the
  // surviving entries are untouched.
  c.record_ok(make_ok(0, 1, 0, 1), Priority::kNetworkLayer,
              sim::duration::seconds(9), std::nullopt);
  EXPECT_EQ(c.open_requests(), 2u);
  EXPECT_EQ(c.kind(Priority::kNetworkLayer).pairs_delivered, 1u);
  EXPECT_EQ(c.kind(Priority::kNetworkLayer).request_latency_s.count(), 0u);

  // Requests that settle normally keep the map under the cap with no
  // further evictions.
  c.record_ok(make_ok(0, 2, 0, 1), Priority::kNetworkLayer,
              sim::duration::seconds(10), std::nullopt);
  c.record_create(0, 4, Priority::kNetworkLayer, 1,
                  sim::duration::seconds(11));
  EXPECT_EQ(c.open_requests(), 2u);
  EXPECT_EQ(c.open_evicted(), 1u);

  // Lowering the cap evicts immediately; merge() sums the counters and
  // re-applies the cap to the union.
  c.set_open_capacity(1);
  EXPECT_EQ(c.open_requests(), 1u);
  EXPECT_EQ(c.open_evicted(), 2u);
  EXPECT_EQ(*c.oldest_open_created(), sim::duration::seconds(11));

  Collector other;
  other.record_create(7, 9, Priority::kNetworkLayer, 1,
                      sim::duration::seconds(12));
  c.merge(other);
  EXPECT_EQ(c.open_requests(), 1u);
  EXPECT_EQ(c.open_evicted(), 3u);
  EXPECT_EQ(*c.oldest_open_created(), sim::duration::seconds(12));
}

}  // namespace
}  // namespace qlink::metrics
