#include <gtest/gtest.h>

#include <cmath>

#include "metrics/collector.hpp"
#include "metrics/stats.hpp"

namespace qlink::metrics {
namespace {

using core::EgpError;
using core::OkMessage;
using core::Priority;
using quantum::gates::Basis;

TEST(RunningStat, MeanAndVariance) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_NEAR(s.stderr_mean(), s.stddev() / std::sqrt(8.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsSafe) {
  RunningStat s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStat, SingleSample) {
  RunningStat s;
  s.add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RelativeDifference, MatchesPaperFootnote) {
  EXPECT_NEAR(relative_difference(1.0, 0.9), 0.1, 1e-12);
  EXPECT_NEAR(relative_difference(0.9, 1.0), 0.1, 1e-12);
  EXPECT_EQ(relative_difference(0.0, 0.0), 0.0);
  EXPECT_NEAR(relative_difference(-2.0, 2.0), 2.0, 1e-12);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_EQ(percentile(v, 0), 1.0);
  EXPECT_EQ(percentile(v, 100), 5.0);
  EXPECT_EQ(percentile(v, 50), 3.0);
  EXPECT_NEAR(percentile(v, 25), 2.0, 1e-12);
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(percentile(v, 101), std::invalid_argument);
}

OkMessage make_ok(std::uint32_t origin, std::uint32_t create_id,
                  std::uint16_t pair_index, std::uint16_t total) {
  OkMessage ok;
  ok.origin_node = origin;
  ok.create_id = create_id;
  ok.pair_index = pair_index;
  ok.total_pairs = total;
  ok.ent_id = {0, 1, create_id * 100 + pair_index};
  ok.goodness = 0.7;
  return ok;
}

TEST(Collector, ThroughputCountsPairsOverElapsed) {
  Collector c;
  c.begin(0);
  c.record_create(0, 1, Priority::kMeasureDirectly, 2, 0);
  c.record_ok(make_ok(0, 1, 0, 2), Priority::kMeasureDirectly,
              sim::duration::seconds(1), std::nullopt);
  c.record_ok(make_ok(0, 1, 1, 2), Priority::kMeasureDirectly,
              sim::duration::seconds(2), std::nullopt);
  c.end(sim::duration::seconds(4));
  EXPECT_NEAR(c.throughput(Priority::kMeasureDirectly), 0.5, 1e-12);
  EXPECT_NEAR(c.total_throughput(), 0.5, 1e-12);
}

TEST(Collector, LatenciesPerPaperDefinitions) {
  Collector c;
  c.begin(0);
  // Request for 2 pairs created at t=1s; pairs at 3s and 5s.
  c.record_create(0, 7, Priority::kNetworkLayer, 2,
                  sim::duration::seconds(1));
  c.record_ok(make_ok(0, 7, 0, 2), Priority::kNetworkLayer,
              sim::duration::seconds(3), std::nullopt);
  c.record_ok(make_ok(0, 7, 1, 2), Priority::kNetworkLayer,
              sim::duration::seconds(5), std::nullopt);
  c.end(sim::duration::seconds(5));
  const auto& km = c.kind(Priority::kNetworkLayer);
  // Pair latencies 2s and 4s.
  EXPECT_NEAR(km.pair_latency_s.mean(), 3.0, 1e-9);
  // Request latency 4s; scaled latency 4/2 = 2s.
  EXPECT_NEAR(km.request_latency_s.mean(), 4.0, 1e-9);
  EXPECT_NEAR(km.scaled_latency_s.mean(), 2.0, 1e-9);
  EXPECT_EQ(km.requests_completed, 1u);
}

TEST(Collector, KindsAreSeparated) {
  Collector c;
  c.begin(0);
  c.record_create(0, 1, Priority::kNetworkLayer, 1, 0);
  c.record_create(0, 2, Priority::kMeasureDirectly, 1, 0);
  c.record_ok(make_ok(0, 1, 0, 1), Priority::kNetworkLayer,
              sim::duration::seconds(1), std::nullopt);
  c.end(sim::duration::seconds(1));
  EXPECT_EQ(c.kind(Priority::kNetworkLayer).pairs_delivered, 1u);
  EXPECT_EQ(c.kind(Priority::kMeasureDirectly).pairs_delivered, 0u);
}

TEST(Collector, FairnessSplitByOrigin) {
  Collector c;
  c.begin(0);
  c.record_create(0, 1, Priority::kMeasureDirectly, 1, 0);
  c.record_create(1, 1, Priority::kMeasureDirectly, 1, 0);
  c.record_ok(make_ok(0, 1, 0, 1), Priority::kMeasureDirectly,
              sim::duration::seconds(1), std::nullopt);
  auto ok_b = make_ok(1, 1, 0, 1);
  ok_b.ent_id.seq_mhp = 999;
  c.record_ok(ok_b, Priority::kMeasureDirectly, sim::duration::seconds(2),
              std::nullopt);
  c.end(sim::duration::seconds(2));
  ASSERT_TRUE(c.has_origin(0));
  ASSERT_TRUE(c.has_origin(1));
  EXPECT_EQ(c.by_origin(0).pairs_delivered, 1u);
  EXPECT_EQ(c.by_origin(1).pairs_delivered, 1u);
}

TEST(Collector, QberAndFidelityReconstruction) {
  Collector c;
  // Psi+ correlations: equal in X and Y, different in Z.
  for (int i = 0; i < 90; ++i) c.record_correlation(Basis::kX, 1, 1, 1);
  for (int i = 0; i < 10; ++i) c.record_correlation(Basis::kX, 0, 1, 1);
  for (int i = 0; i < 100; ++i) c.record_correlation(Basis::kY, 0, 0, 1);
  for (int i = 0; i < 100; ++i) c.record_correlation(Basis::kZ, 0, 1, 1);
  EXPECT_NEAR(*c.qber(Basis::kX), 0.1, 1e-12);
  EXPECT_NEAR(*c.qber(Basis::kY), 0.0, 1e-12);
  EXPECT_NEAR(*c.qber(Basis::kZ), 0.0, 1e-12);
  EXPECT_NEAR(*c.fidelity_from_qber(), 0.95, 1e-12);
}

TEST(Collector, QberUsesHeraldedState) {
  Collector c;
  // For Psi- in Z, different outcomes are ideal.
  c.record_correlation(Basis::kZ, 0, 1, 2);
  EXPECT_NEAR(*c.qber(Basis::kZ), 0.0, 1e-12);
  c.record_correlation(Basis::kZ, 1, 1, 2);
  EXPECT_NEAR(*c.qber(Basis::kZ), 0.5, 1e-12);
}

TEST(Collector, MissingBasisMeansNoFidelityEstimate) {
  Collector c;
  c.record_correlation(Basis::kX, 1, 1, 1);
  EXPECT_FALSE(c.fidelity_from_qber().has_value());
  EXPECT_FALSE(c.qber(Basis::kZ).has_value());
}

TEST(Collector, ErrorsCounted) {
  Collector c;
  c.record_err({1, EgpError::kTimeout, 0, 0, 0});
  c.record_err({2, EgpError::kExpired, 0, 0, 0});
  c.record_err({3, EgpError::kExpired, 0, 0, 0});
  EXPECT_EQ(c.errors(EgpError::kTimeout), 1u);
  EXPECT_EQ(c.total_expires(), 2u);
  EXPECT_EQ(c.errors(EgpError::kDenied), 0u);
}

TEST(Collector, FidelitySamplesAggregate) {
  Collector c;
  c.begin(0);
  c.record_create(0, 1, Priority::kCreateKeep, 2, 0);
  c.record_ok(make_ok(0, 1, 0, 2), Priority::kCreateKeep,
              sim::duration::seconds(1), 0.8);
  c.record_ok(make_ok(0, 1, 1, 2), Priority::kCreateKeep,
              sim::duration::seconds(2), 0.6);
  EXPECT_NEAR(c.kind(Priority::kCreateKeep).fidelity.mean(), 0.7, 1e-12);
  EXPECT_EQ(c.kind(Priority::kCreateKeep).fidelity.count(), 2u);
}

TEST(Collector, QueueLengthSampling) {
  Collector c;
  c.sample_queue_length(2);
  c.sample_queue_length(4);
  EXPECT_NEAR(c.queue_length().mean(), 3.0, 1e-12);
}

}  // namespace
}  // namespace qlink::metrics
