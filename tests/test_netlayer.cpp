#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "netlayer/swap_service.hpp"
#include "netlayer/topology.hpp"

namespace qlink::netlayer {
namespace {

NetworkConfig chain_config(std::size_t links, std::uint64_t seed) {
  NetworkConfig c;
  c.kind = TopologyKind::kChain;
  c.num_links = links;
  c.seed = seed;
  c.link.scenario = hw::ScenarioParams::lab();
  // Decoherence-protected carbon memory (see examples/chain_e2e_nl.cpp):
  // pairs wait for the slowest hop.
  c.link.scenario.nv.carbon_t2_ns = 0.5e9;
  c.link.scenario.nv.carbon_coupling_rad_per_s /= 10.0;
  return c;
}

TEST(Topology, ChainNodesAndEndpoints) {
  QuantumNetwork net(chain_config(3, 1));
  EXPECT_EQ(net.num_links(), 3u);
  EXPECT_EQ(net.num_nodes(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto [a, b] = net.endpoints(i);
    EXPECT_EQ(a, i);
    EXPECT_EQ(b, i + 1);
  }
}

TEST(Topology, ChainPathIsOrderedAndOriented) {
  QuantumNetwork net(chain_config(3, 1));
  const auto forward = net.path(0, 3);
  ASSERT_EQ(forward.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(forward[i].link, i);
    EXPECT_FALSE(forward[i].reversed);
  }
  const auto backward = net.path(3, 1);
  ASSERT_EQ(backward.size(), 2u);
  EXPECT_EQ(backward[0].link, 2u);
  EXPECT_TRUE(backward[0].reversed);
  EXPECT_EQ(backward[1].link, 1u);
  EXPECT_TRUE(backward[1].reversed);
  EXPECT_THROW(net.path(0, 0), std::invalid_argument);
  EXPECT_THROW(net.path(0, 7), std::invalid_argument);
}

TEST(Topology, StarRoutesThroughCenter) {
  NetworkConfig c = chain_config(3, 1);
  c.kind = TopologyKind::kStar;
  QuantumNetwork net(c);
  EXPECT_EQ(net.num_nodes(), 4u);  // center 0, leaves 1..3
  const auto leaf_to_leaf = net.path(1, 3);
  ASSERT_EQ(leaf_to_leaf.size(), 2u);
  EXPECT_EQ(leaf_to_leaf[0].link, 0u);
  EXPECT_FALSE(leaf_to_leaf[0].reversed);  // leaf 1 -> center
  EXPECT_EQ(leaf_to_leaf[1].link, 2u);
  EXPECT_TRUE(leaf_to_leaf[1].reversed);  // center -> leaf 3
  const auto to_center = net.path(2, 0);
  ASSERT_EQ(to_center.size(), 1u);
  EXPECT_EQ(to_center[0].link, 1u);
  EXPECT_FALSE(to_center[0].reversed);
}

/// The issue's acceptance test: a 3-node chain (two links, one swap at
/// the middle node) delivers an end-to-end entangled pair whose
/// fidelity beats the request's min_fidelity.
TEST(SwapService, ThreeNodeChainDeliversEndToEndPair) {
  QuantumNetwork net(chain_config(2, 11));
  metrics::Collector collector;
  SwapService swap(net, &collector);

  std::vector<E2eOk> delivered;
  swap.set_deliver_handler([&](const E2eOk& ok) { delivered.push_back(ok); });

  E2eRequest req;
  req.src = 0;
  req.dst = 2;
  req.num_pairs = 1;
  req.min_fidelity = 0.5;
  req.link_min_fidelity = 0.8;
  net.start();
  swap.request(req);

  for (int i = 0; i < 400000 && delivered.empty(); ++i) {
    net.run_for(sim::duration::microseconds(100));
  }
  ASSERT_EQ(delivered.size(), 1u);
  const E2eOk& ok = delivered.front();
  EXPECT_EQ(ok.src, 0u);
  EXPECT_EQ(ok.dst, 2u);
  EXPECT_EQ(ok.swaps, 1);
  EXPECT_NE(ok.qubit_src, ok.qubit_dst);
  // One swap of two >= 0.8 pairs: comfortably above the witness bound
  // and the request's floor.
  EXPECT_GT(ok.fidelity, req.min_fidelity);

  // Metrics flowed through the collector under the NL kind.
  const auto& nl = collector.kind(core::Priority::kNetworkLayer);
  EXPECT_EQ(nl.pairs_delivered, 1u);
  EXPECT_EQ(nl.requests_completed, 1u);
  EXPECT_NEAR(nl.fidelity.mean(), ok.fidelity, 1e-12);

  EXPECT_EQ(swap.stats().swaps, 1u);
  EXPECT_EQ(swap.stats().link_pairs_consumed, 2u);
  EXPECT_EQ(swap.open_requests(), 0u);

  swap.release(ok);
}

/// Swapping also works across a star: the reversed-hop orientation at
/// the center node must be handled.
TEST(SwapService, StarLeafToLeafDelivers) {
  NetworkConfig c = chain_config(2, 5);
  c.kind = TopologyKind::kStar;
  QuantumNetwork net(c);
  SwapService swap(net);

  std::vector<E2eOk> delivered;
  swap.set_deliver_handler([&](const E2eOk& ok) { delivered.push_back(ok); });

  E2eRequest req;
  req.src = 1;  // leaf
  req.dst = 2;  // other leaf, via center 0
  req.link_min_fidelity = 0.8;
  net.start();
  swap.request(req);

  for (int i = 0; i < 400000 && delivered.empty(); ++i) {
    net.run_for(sim::duration::microseconds(100));
  }
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered.front().swaps, 1);
  EXPECT_GT(delivered.front().fidelity, 0.5);
  swap.release(delivered.front());
}

/// Everything observable about a delivery, flattened for bytewise
/// comparison between runs.
struct DeliveryRecord {
  std::uint32_t request_id;
  std::uint32_t seq_src;
  std::uint32_t seq_dst;
  std::uint64_t qubit_src;
  std::uint64_t qubit_dst;
  std::int64_t deliver_time;
  double fidelity;
};

std::vector<DeliveryRecord> run_chain_once(std::uint64_t seed) {
  QuantumNetwork net(chain_config(2, seed));
  SwapService swap(net);
  std::vector<DeliveryRecord> records;
  swap.set_deliver_handler([&](const E2eOk& ok) {
    records.push_back(DeliveryRecord{
        ok.request_id, ok.ok_src.ent_id.seq_mhp, ok.ok_dst.ent_id.seq_mhp,
        ok.qubit_src, ok.qubit_dst, ok.deliver_time, ok.fidelity});
    swap.release(ok);
  });

  E2eRequest req;
  req.src = 0;
  req.dst = 2;
  req.num_pairs = 3;
  req.link_min_fidelity = 0.75;
  net.start();
  swap.request(req);
  for (int i = 0; i < 800000 && records.size() < 3; ++i) {
    net.run_for(sim::duration::microseconds(100));
  }
  return records;
}

/// Field-by-field serialization (no struct padding) so the comparison
/// below really is byte-identical.
std::vector<std::uint8_t> to_bytes(const std::vector<DeliveryRecord>& rs) {
  std::vector<std::uint8_t> bytes;
  auto put = [&bytes](const auto& v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    bytes.insert(bytes.end(), p, p + sizeof(v));
  };
  for (const DeliveryRecord& r : rs) {
    put(r.request_id);
    put(r.seq_src);
    put(r.seq_dst);
    put(r.qubit_src);
    put(r.qubit_dst);
    put(r.deliver_time);
    put(r.fidelity);
  }
  return bytes;
}

/// Determinism must survive the shared-simulator refactor: two runs
/// with the same seed produce byte-identical delivery sequences.
TEST(SwapService, SameSeedGivesByteIdenticalDeliveries) {
  const auto first = run_chain_once(77);
  const auto second = run_chain_once(77);
  ASSERT_GE(first.size(), 1u);
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(to_bytes(first), to_bytes(second))
      << "identically seeded runs must replay byte-identically";

  const auto other_seed = run_chain_once(78);
  ASSERT_GE(other_seed.size(), 1u);
  EXPECT_NE(to_bytes(first), to_bytes(other_seed))
      << "different seeds should not replay the same delivery stream";
}

}  // namespace
}  // namespace qlink::netlayer
