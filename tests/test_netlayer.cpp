#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "netlayer/swap_service.hpp"
#include "netlayer/topology.hpp"
#include "routing/router.hpp"
#include "workload/workload.hpp"

namespace qlink::netlayer {
namespace {

NetworkConfig chain_config(std::size_t links, std::uint64_t seed) {
  NetworkConfig c;
  c.kind = TopologyKind::kChain;
  c.num_links = links;
  c.seed = seed;
  c.link.scenario = hw::ScenarioParams::lab();
  // Decoherence-protected carbon memory (see examples/chain_e2e_nl.cpp):
  // pairs wait for the slowest hop.
  c.link.scenario.nv.carbon_t2_ns = 0.5e9;
  c.link.scenario.nv.carbon_coupling_rad_per_s /= 10.0;
  return c;
}

TEST(Topology, ChainNodesAndEndpoints) {
  QuantumNetwork net(chain_config(3, 1));
  EXPECT_EQ(net.num_links(), 3u);
  EXPECT_EQ(net.num_nodes(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto [a, b] = net.endpoints(i);
    EXPECT_EQ(a, i);
    EXPECT_EQ(b, i + 1);
  }
}

TEST(Topology, ChainPathIsOrderedAndOriented) {
  QuantumNetwork net(chain_config(3, 1));
  const auto forward = net.path(0, 3);
  ASSERT_EQ(forward.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(forward[i].link, i);
    EXPECT_FALSE(forward[i].reversed);
  }
  const auto backward = net.path(3, 1);
  ASSERT_EQ(backward.size(), 2u);
  EXPECT_EQ(backward[0].link, 2u);
  EXPECT_TRUE(backward[0].reversed);
  EXPECT_EQ(backward[1].link, 1u);
  EXPECT_TRUE(backward[1].reversed);
  EXPECT_THROW(net.path(0, 0), std::invalid_argument);
  EXPECT_THROW(net.path(0, 7), std::invalid_argument);
}

TEST(Topology, StarRoutesThroughCenter) {
  NetworkConfig c = chain_config(3, 1);
  c.kind = TopologyKind::kStar;
  QuantumNetwork net(c);
  EXPECT_EQ(net.num_nodes(), 4u);  // center 0, leaves 1..3
  const auto leaf_to_leaf = net.path(1, 3);
  ASSERT_EQ(leaf_to_leaf.size(), 2u);
  EXPECT_EQ(leaf_to_leaf[0].link, 0u);
  EXPECT_FALSE(leaf_to_leaf[0].reversed);  // leaf 1 -> center
  EXPECT_EQ(leaf_to_leaf[1].link, 2u);
  EXPECT_TRUE(leaf_to_leaf[1].reversed);  // center -> leaf 3
  const auto to_center = net.path(2, 0);
  ASSERT_EQ(to_center.size(), 1u);
  EXPECT_EQ(to_center[0].link, 1u);
  EXPECT_FALSE(to_center[0].reversed);
}

/// Malformed explicit edge lists must be rejected loudly (self-loops,
/// duplicate links, unknown node ids), not silently mis-route.
TEST(Topology, RejectsSelfLoops) {
  NetworkConfig c = chain_config(2, 1);
  c.edges = {{0, 1}, {1, 1}};
  EXPECT_THROW(QuantumNetwork net(c), std::invalid_argument);
}

TEST(Topology, RejectsDuplicateLinks) {
  NetworkConfig c = chain_config(2, 1);
  c.edges = {{0, 1}, {1, 2}, {2, 1}};  // either orientation duplicates
  EXPECT_THROW(QuantumNetwork net(c), std::invalid_argument);
}

TEST(Topology, RejectsUnknownNodeIds) {
  NetworkConfig c = chain_config(2, 1);
  c.edges = {{0, 1}, {1, 5}};
  c.num_nodes = 3;  // id 5 does not exist
  EXPECT_THROW(QuantumNetwork net(c), std::invalid_argument);
}

/// An explicit edge list builds a working general topology: a 4-ring
/// has two routes between opposite corners, and BFS picks a 2-hop one.
TEST(Topology, EdgeListBuildsGeneralGraphs) {
  NetworkConfig c = chain_config(2, 1);
  c.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  QuantumNetwork net(c);
  EXPECT_EQ(net.num_links(), 4u);
  EXPECT_EQ(net.num_nodes(), 4u);
  const auto route = net.path(0, 2);
  ASSERT_EQ(route.size(), 2u);
  EXPECT_EQ(net.hop_entry(route.front()), 0u);
  EXPECT_EQ(net.hop_exit(route.back()), 2u);
}

/// The per-link hook customises heterogeneous networks but must not be
/// able to re-wire the topology.
TEST(Topology, ConfigureLinkHookKeepsEndpoints) {
  NetworkConfig c = chain_config(2, 1);
  c.edges = {{0, 1}, {1, 2}};
  c.configure_link = [](std::size_t i, core::LinkConfig& lc) {
    lc.node_id_a = 99;  // ignored
    lc.node_id_b = 98;
    if (i == 1) lc.scenario.herald.visibility = 0.5;
  };
  QuantumNetwork net(c);
  EXPECT_EQ(net.endpoints(0), (std::pair<std::uint32_t, std::uint32_t>{0, 1}));
  EXPECT_EQ(net.endpoints(1), (std::pair<std::uint32_t, std::uint32_t>{1, 2}));
  EXPECT_NEAR(net.link(1).scenario().herald.visibility, 0.5, 1e-12);
  EXPECT_NEAR(net.link(0).scenario().herald.visibility, 0.9, 1e-12);
}

/// The issue's acceptance test: a 3-node chain (two links, one swap at
/// the middle node) delivers an end-to-end entangled pair whose
/// fidelity beats the request's min_fidelity.
TEST(SwapService, ThreeNodeChainDeliversEndToEndPair) {
  QuantumNetwork net(chain_config(2, 11));
  metrics::Collector collector;
  SwapService swap(net, &collector);

  std::vector<E2eOk> delivered;
  swap.set_deliver_handler([&](const E2eOk& ok) { delivered.push_back(ok); });

  E2eRequest req;
  req.src = 0;
  req.dst = 2;
  req.num_pairs = 1;
  req.min_fidelity = 0.5;
  req.link_min_fidelity = 0.8;
  net.start();
  swap.request(req);

  for (int i = 0; i < 400000 && delivered.empty(); ++i) {
    net.run_for(sim::duration::microseconds(100));
  }
  ASSERT_EQ(delivered.size(), 1u);
  const E2eOk& ok = delivered.front();
  EXPECT_EQ(ok.src, 0u);
  EXPECT_EQ(ok.dst, 2u);
  EXPECT_EQ(ok.swaps, 1);
  EXPECT_NE(ok.qubit_src, ok.qubit_dst);
  // One swap of two >= 0.8 pairs: comfortably above the witness bound
  // and the request's floor.
  EXPECT_GT(ok.fidelity, req.min_fidelity);

  // Metrics flowed through the collector under the NL kind.
  const auto& nl = collector.kind(core::Priority::kNetworkLayer);
  EXPECT_EQ(nl.pairs_delivered, 1u);
  EXPECT_EQ(nl.requests_completed, 1u);
  EXPECT_NEAR(nl.fidelity.mean(), ok.fidelity, 1e-12);

  EXPECT_EQ(swap.stats().swaps, 1u);
  EXPECT_EQ(swap.stats().link_pairs_consumed, 2u);
  EXPECT_EQ(swap.open_requests(), 0u);

  swap.release(ok);
}

/// Swapping also works across a star: the reversed-hop orientation at
/// the center node must be handled.
TEST(SwapService, StarLeafToLeafDelivers) {
  NetworkConfig c = chain_config(2, 5);
  c.kind = TopologyKind::kStar;
  QuantumNetwork net(c);
  SwapService swap(net);

  std::vector<E2eOk> delivered;
  swap.set_deliver_handler([&](const E2eOk& ok) { delivered.push_back(ok); });

  E2eRequest req;
  req.src = 1;  // leaf
  req.dst = 2;  // other leaf, via center 0
  req.link_min_fidelity = 0.8;
  net.start();
  swap.request(req);

  for (int i = 0; i < 400000 && delivered.empty(); ++i) {
    net.run_for(sim::duration::microseconds(100));
  }
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered.front().swaps, 1);
  EXPECT_GT(delivered.front().fidelity, 0.5);
  swap.release(delivered.front());
}

/// Everything observable about a delivery, flattened for bytewise
/// comparison between runs.
struct DeliveryRecord {
  std::uint32_t request_id;
  std::uint32_t seq_src;
  std::uint32_t seq_dst;
  std::uint64_t qubit_src;
  std::uint64_t qubit_dst;
  std::int64_t deliver_time;
  double fidelity;
};

std::vector<DeliveryRecord> run_chain_once(std::uint64_t seed) {
  QuantumNetwork net(chain_config(2, seed));
  SwapService swap(net);
  std::vector<DeliveryRecord> records;
  swap.set_deliver_handler([&](const E2eOk& ok) {
    records.push_back(DeliveryRecord{
        ok.request_id, ok.ok_src.ent_id.seq_mhp, ok.ok_dst.ent_id.seq_mhp,
        ok.qubit_src, ok.qubit_dst, ok.deliver_time, ok.fidelity});
    swap.release(ok);
  });

  E2eRequest req;
  req.src = 0;
  req.dst = 2;
  req.num_pairs = 3;
  req.link_min_fidelity = 0.75;
  net.start();
  swap.request(req);
  for (int i = 0; i < 800000 && records.size() < 3; ++i) {
    net.run_for(sim::duration::microseconds(100));
  }
  return records;
}

/// Field-by-field serialization (no struct padding) so the comparison
/// below really is byte-identical.
std::vector<std::uint8_t> to_bytes(const std::vector<DeliveryRecord>& rs) {
  std::vector<std::uint8_t> bytes;
  auto put = [&bytes](const auto& v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    bytes.insert(bytes.end(), p, p + sizeof(v));
  };
  for (const DeliveryRecord& r : rs) {
    put(r.request_id);
    put(r.seq_src);
    put(r.seq_dst);
    put(r.qubit_src);
    put(r.qubit_dst);
    put(r.deliver_time);
    put(r.fidelity);
  }
  return bytes;
}

/// Determinism must survive the shared-simulator refactor: two runs
/// with the same seed produce byte-identical delivery sequences.
TEST(SwapService, SameSeedGivesByteIdenticalDeliveries) {
  const auto first = run_chain_once(77);
  const auto second = run_chain_once(77);
  ASSERT_GE(first.size(), 1u);
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(to_bytes(first), to_bytes(second))
      << "identically seeded runs must replay byte-identically";

  const auto other_seed = run_chain_once(78);
  ASSERT_GE(other_seed.size(), 1u);
  EXPECT_NE(to_bytes(first), to_bytes(other_seed))
      << "different seeds should not replay the same delivery stream";
}

// ---------------------------------------------------------------------------
// Routed paths: SwapService consuming routes chosen by the routing layer.

/// Clifford+Pauli scenario (cf. test_backend_equivalence.cpp): pure
/// dephasing decay and Bell-diagonal installs, so dense and
/// Bell-diagonal backends agree to float rounding.
NetworkConfig ring6_config(qstate::BackendKind backend, std::uint64_t seed) {
  NetworkConfig c;
  c.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}};
  c.seed = seed;
  c.link.backend = backend;
  c.link.pauli_twirl_installs = true;
  c.link.scenario = hw::ScenarioParams::lab();
  c.link.scenario.nv.electron_t1_ns = -1.0;
  c.link.scenario.nv.carbon_t2_ns = 0.5e9;
  c.link.scenario.nv.carbon_coupling_rad_per_s /= 10.0;
  return c;
}

/// The 5-hop way around the ring from 0 to 5 (the router's second
/// candidate; BFS would take the direct 5-0 edge), as SwapService hops.
std::vector<Hop> ring6_long_way(const QuantumNetwork& net) {
  routing::Graph ring = routing::Graph::ring(6);
  const routing::PathSelector sel(ring, routing::CostModel::kHopCount);
  const auto paths = sel.k_shortest(0, 5, 2);
  EXPECT_EQ(paths.size(), 2u);
  const routing::Path& longer = paths[1];
  EXPECT_EQ(longer.hops(), 5u);
  std::vector<Hop> route;
  for (std::size_t i = 0; i < longer.edges.size(); ++i) {
    const auto [a, b] = net.endpoints(longer.edges[i]);
    (void)b;
    route.push_back(Hop{longer.edges[i], longer.nodes[i] != a});
  }
  return route;
}

struct RoutedRun {
  std::vector<DeliveryRecord> records;
  int swaps = 0;
};

RoutedRun run_ring_long_way(qstate::BackendKind backend,
                            std::uint64_t seed) {
  QuantumNetwork net(ring6_config(backend, seed));
  SwapService swap(net);
  RoutedRun out;
  swap.set_deliver_handler([&](const E2eOk& ok) {
    out.records.push_back(DeliveryRecord{
        ok.request_id, ok.ok_src.ent_id.seq_mhp, ok.ok_dst.ent_id.seq_mhp,
        ok.qubit_src, ok.qubit_dst, ok.deliver_time, ok.fidelity});
    out.swaps = ok.swaps;
    swap.release(ok);
  });

  E2eRequest req;
  req.src = 0;
  req.dst = 5;
  req.link_min_fidelity = 0.8;
  net.start();
  swap.request(req, ring6_long_way(net));
  for (int i = 0; i < 1600000 && out.records.empty(); ++i) {
    net.run_for(sim::duration::microseconds(100));
  }
  return out;
}

/// Satellite check: SwapService over a router-chosen 5-hop path is
/// byte-identical per seed and agrees between backends to 1e-6.
TEST(SwapService, RoutedFiveHopPathDeterministicAcrossRuns) {
  const auto first = run_ring_long_way(qstate::BackendKind::kDense, 31);
  const auto second = run_ring_long_way(qstate::BackendKind::kDense, 31);
  ASSERT_EQ(first.records.size(), 1u);
  EXPECT_EQ(first.swaps, 4);  // 5 hops -> 4 intermediate swaps
  EXPECT_EQ(to_bytes(first.records), to_bytes(second.records));
  EXPECT_GT(first.records.front().fidelity, 0.25);
}

TEST(SwapService, RoutedFiveHopPathBackendsAgree) {
  const auto dense = run_ring_long_way(qstate::BackendKind::kDense, 31);
  const auto bell =
      run_ring_long_way(qstate::BackendKind::kBellDiagonal, 31);
  ASSERT_EQ(dense.records.size(), 1u);
  ASSERT_EQ(bell.records.size(), 1u);
  EXPECT_EQ(bell.swaps, 4);
  // Same seed, same Random consumption, Clifford+Pauli physics: the
  // closed-form swap cascade must match the dense circuit within float
  // accumulation error.
  EXPECT_EQ(dense.records.front().deliver_time,
            bell.records.front().deliver_time);
  EXPECT_NEAR(dense.records.front().fidelity,
              bell.records.front().fidelity, 1e-6);
}

/// Route validation: garbage routes are rejected before any CREATE.
TEST(SwapService, RejectsMalformedRoutes) {
  QuantumNetwork net(chain_config(3, 1));
  SwapService swap(net);
  E2eRequest req;
  req.src = 0;
  req.dst = 3;
  EXPECT_THROW(swap.request(req, {}), std::invalid_argument);
  // Not contiguous: skips link 1.
  EXPECT_THROW(swap.request(req, {Hop{0, false}, Hop{2, false}}),
               std::invalid_argument);
  // Wrong endpoints.
  EXPECT_THROW(swap.request(req, {Hop{1, false}, Hop{2, false}}),
               std::invalid_argument);
  // Unknown link.
  EXPECT_THROW(swap.request(req, {Hop{7, false}}), std::invalid_argument);
  // A walk that revisits a node (here: 0 -> 1 -> 0 -> 1 -> ... is
  // caught at its first revisit) would double-book a physical link.
  EXPECT_THROW(
      swap.request(req, {Hop{0, false}, Hop{0, true}, Hop{0, false},
                         Hop{1, false}, Hop{2, false}}),
      std::invalid_argument);
  // src == dst is meaningless end-to-end entanglement.
  E2eRequest self = req;
  self.dst = 0;
  EXPECT_THROW(swap.request(self, {Hop{0, false}, Hop{0, true}}),
               std::invalid_argument);
  EXPECT_EQ(swap.stats().requests, 0u);
}

// ---------------------------------------------------------------------------
// Router integration: reservations gate admission on the live network.

TEST(Router, AdmitsDisjointPathsAndRetriesBlocked) {
  routing::Graph grid = routing::Graph::grid(3, 3);
  NetworkConfig nc = routing::make_network_config(
      grid, core::LinkConfig{}, /*seed=*/9);
  nc.link.backend = qstate::BackendKind::kBellDiagonal;
  nc.link.pauli_twirl_installs = true;
  nc.link.scenario = hw::ScenarioParams::lab();
  nc.link.scenario.nv.carbon_t2_ns = 0.5e9;
  nc.link.scenario.nv.carbon_coupling_rad_per_s /= 10.0;
  QuantumNetwork net(nc);
  SwapService swap(net);
  routing::RouterConfig rc;
  rc.cost = routing::CostModel::kFidelity;
  rc.k_candidates = 4;
  metrics::Collector collector;
  routing::Router router(grid, net, swap, rc, &collector);
  const double menu[] = {0.8};
  router.annotate_from_network(menu);

  std::vector<E2eOk> delivered;
  router.set_deliver_handler([&](const E2eOk& ok) {
    delivered.push_back(ok);
    swap.release(ok);
  });

  E2eRequest top, bottom;
  top.src = 0;
  top.dst = 2;
  bottom.src = 6;
  bottom.dst = 8;
  net.start();
  EXPECT_NE(router.submit(top), 0u);
  EXPECT_NE(router.submit(bottom), 0u);  // edge-disjoint: admitted
  // Same endpoints again: with k=4 candidates on a 3x3 grid there is
  // still a reservable detour (0-3-4-5-2), so this admits too ...
  EXPECT_NE(router.submit(top), 0u);
  EXPECT_EQ(router.stats().admitted, 3u);
  EXPECT_EQ(router.reservations().max_active(), 3u);
  // ... but a fourth 0->2 request exhausts every candidate and queues.
  EXPECT_EQ(router.submit(top), 0u);
  EXPECT_EQ(router.stats().blocked, 1u);
  EXPECT_EQ(router.reservations().blocked(), 1u);
  EXPECT_EQ(collector.requests_blocked(), 1u);

  for (int i = 0; i < 1600000 && delivered.size() < 4; ++i) {
    net.run_for(sim::duration::microseconds(100));
  }
  ASSERT_EQ(delivered.size(), 4u);
  EXPECT_EQ(router.stats().completed, 4u);
  EXPECT_EQ(router.reservations().active(), 0u);
  EXPECT_EQ(router.reservations().blocked(), 0u);
  EXPECT_EQ(swap.open_requests(), 0u);
  EXPECT_EQ(collector.route_length().count(), 4u);
  for (const E2eOk& ok : delivered) {
    // 2-hop corridors sit near 0.6; the 4-hop detours land around 0.38
    // (Werner composition 0.736^4 ~ 0.47 minus waiting decoherence).
    EXPECT_GT(ok.fidelity, ok.swaps == 1 ? 0.5 : 0.3);
    // Every request was submitted at t = 0, so latency counts from
    // there — including the one that waited in the blocked queue.
    EXPECT_EQ(ok.submit_time, 0);
  }
}

/// A malformed pinned path must not leak its reservation: submit_on
/// checks endpoints, the SwapService rejects the non-contiguous walk,
/// and the edges it briefly pinned are free again.
TEST(Router, MalformedPinnedPathDoesNotLeakReservations) {
  routing::Graph chain = routing::Graph::chain(4);
  NetworkConfig nc =
      routing::make_network_config(chain, core::LinkConfig{}, 3);
  nc.link.scenario = hw::ScenarioParams::lab();
  QuantumNetwork net(nc);
  SwapService swap(net);
  routing::Router router(chain, net, swap);

  routing::Path gap;  // skips the middle edge: not a contiguous walk
  gap.edges = {0, 2};
  gap.nodes = {0, 1, 3};
  E2eRequest req;
  req.src = 0;
  req.dst = 3;
  EXPECT_THROW(router.submit_on(req, gap), std::invalid_argument);
  EXPECT_EQ(router.reservations().active(), 0u);
  EXPECT_EQ(router.reservations().in_use(0), 0u);
  EXPECT_EQ(router.reservations().in_use(2), 0u);

  // The edges still admit a well-formed request.
  const auto full = routing::PathSelector(router.graph()).shortest(0, 3);
  ASSERT_TRUE(full.has_value());
  EXPECT_NE(router.submit_on(req, *full), 0u);
}

/// Routed workload mode: random multi-pair traffic over a graph, every
/// request admitted through the router's reservation table.
TEST(Router, DrivesRandomTrafficOverGrid) {
  routing::Graph grid = routing::Graph::grid(2, 2);
  NetworkConfig nc = routing::make_network_config(
      grid, core::LinkConfig{}, /*seed=*/21);
  nc.link.backend = qstate::BackendKind::kBellDiagonal;
  nc.link.pauli_twirl_installs = true;
  nc.link.scenario = hw::ScenarioParams::lab();
  nc.link.scenario.nv.carbon_t2_ns = 0.5e9;
  nc.link.scenario.nv.carbon_coupling_rad_per_s /= 10.0;
  QuantumNetwork net(nc);
  metrics::Collector collector;
  SwapService swap(net, &collector);
  routing::RouterConfig rc;
  rc.cost = routing::CostModel::kHopCount;
  routing::Router router(grid, net, swap, rc, &collector);
  const double menu[] = {0.75};
  router.annotate_from_network(menu);

  workload::WorkloadConfig wl;
  wl.nl = {0.9, 2};
  wl.origin = workload::OriginMode::kRandom;
  wl.min_fidelity = 0.5;
  wl.seed = 21;
  auto driver_ptr = workload::WorkloadDriver::for_routed(
      router, wl.traffic(), wl.tuning(), collector);
  workload::WorkloadDriver& driver = *driver_ptr;

  net.start();
  driver.start();
  net.run_for(sim::duration::seconds(3.0));
  driver.stop();

  EXPECT_GT(driver.requests_issued(), 0u);
  EXPECT_GT(driver.pairs_matched(), 0u);
  EXPECT_EQ(router.stats().submitted, driver.requests_issued());
  EXPECT_EQ(router.stats().pairs_delivered, driver.pairs_matched());
  EXPECT_GT(collector.route_length().count(), 0u);
  EXPECT_GE(collector.route_length().mean(), 1.0);
  // Admissions either completed, failed, or are still in flight.
  EXPECT_LE(router.stats().completed + router.stats().failed,
            router.stats().admitted);
}

}  // namespace
}  // namespace qlink::netlayer
