#include <gtest/gtest.h>

#include "core/distributed_queue.hpp"
#include "net/channel.hpp"
#include "sim/simulator.hpp"

namespace qlink::core {
namespace {

using net::AbsoluteQueueId;
using net::DqpPacket;
using net::PacketType;

/// Two DQP endpoints over one lossy-capable channel. The EGP normally
/// demultiplexes the peer link; here we wire the channel directly.
class DqpTest : public ::testing::Test {
 protected:
  DqpTest() : chan_(sim_, "ab", sim::duration::microseconds(60), random_) {
    DistributedQueue::Config master_cfg;
    master_cfg.is_master = true;
    DistributedQueue::Config slave_cfg;
    slave_cfg.is_master = false;
    master_ = std::make_unique<DistributedQueue>(sim_, "dq-m", master_cfg,
                                                 chan_, 0);
    slave_ = std::make_unique<DistributedQueue>(sim_, "dq-s", slave_cfg,
                                                chan_, 1);
    chan_.set_receiver(0, [this](std::vector<std::uint8_t> b) {
      deliver(*master_, std::move(b));
    });
    chan_.set_receiver(1, [this](std::vector<std::uint8_t> b) {
      deliver(*slave_, std::move(b));
    });
    master_->set_local_result_handler(
        [this](std::uint32_t cid, bool ok, EgpError err, AbsoluteQueueId a) {
          master_results_.push_back({cid, ok, err, a});
        });
    slave_->set_local_result_handler(
        [this](std::uint32_t cid, bool ok, EgpError err, AbsoluteQueueId a) {
          slave_results_.push_back({cid, ok, err, a});
        });
    master_->set_remote_add_handler(
        [this](const DqpPacket& p) { master_remote_.push_back(p); });
    slave_->set_remote_add_handler(
        [this](const DqpPacket& p) { slave_remote_.push_back(p); });
  }

  static void deliver(DistributedQueue& dq, std::vector<std::uint8_t> bytes) {
    const auto frame = net::unseal(bytes);
    if (!frame || frame->type != PacketType::kDqpFrame) return;
    dq.handle_frame(DqpPacket::decode(frame->payload));
  }

  static DqpPacket request(std::uint32_t create_id, std::uint8_t qid = 0) {
    DqpPacket p;
    p.aid.qid = qid;
    p.create_id = create_id;
    p.num_pairs = 1;
    return p;
  }

  struct Result {
    std::uint32_t create_id;
    bool ok;
    EgpError err;
    AbsoluteQueueId aid;
  };

  sim::Simulator sim_;
  sim::Random random_{77};
  net::ClassicalChannel chan_;
  std::unique_ptr<DistributedQueue> master_;
  std::unique_ptr<DistributedQueue> slave_;
  std::vector<Result> master_results_;
  std::vector<Result> slave_results_;
  std::vector<DqpPacket> master_remote_;
  std::vector<DqpPacket> slave_remote_;
};

TEST_F(DqpTest, MasterAddReachesSlave) {
  master_->submit(request(1));
  sim_.run_all();
  ASSERT_EQ(master_results_.size(), 1u);
  EXPECT_TRUE(master_results_[0].ok);
  ASSERT_EQ(slave_remote_.size(), 1u);
  EXPECT_EQ(slave_remote_[0].create_id, 1u);
  // Item present and confirmed on both sides with the same aid.
  const AbsoluteQueueId aid = master_results_[0].aid;
  ASSERT_NE(master_->find(aid), nullptr);
  ASSERT_NE(slave_->find(aid), nullptr);
  EXPECT_TRUE(master_->find(aid)->confirmed);
  EXPECT_TRUE(slave_->find(aid)->confirmed);
}

TEST_F(DqpTest, SlaveAddGetsQseqFromMaster) {
  slave_->submit(request(9));
  sim_.run_all();
  ASSERT_EQ(slave_results_.size(), 1u);
  EXPECT_TRUE(slave_results_[0].ok);
  ASSERT_EQ(master_remote_.size(), 1u);
  const AbsoluteQueueId aid = slave_results_[0].aid;
  EXPECT_NE(master_->find(aid), nullptr);
  EXPECT_NE(slave_->find(aid), nullptr);
}

TEST_F(DqpTest, QseqAssignedInArrivalOrder) {
  master_->submit(request(1));
  master_->submit(request(2));
  master_->submit(request(3));
  sim_.run_all();
  ASSERT_EQ(master_results_.size(), 3u);
  EXPECT_EQ(master_results_[0].aid.qseq, 0u);
  EXPECT_EQ(master_results_[1].aid.qseq, 1u);
  EXPECT_EQ(master_results_[2].aid.qseq, 2u);
}

TEST_F(DqpTest, InterleavedOriginsShareOneSequence) {
  master_->submit(request(1));
  slave_->submit(request(2));
  sim_.run_all();
  // Two items in queue 0 with distinct qseq on both replicas.
  EXPECT_EQ(master_->size(0), 2u);
  EXPECT_EQ(slave_->size(0), 2u);
  const auto& q = master_->queue(0);
  EXPECT_EQ(q.size(), 2u);
}

TEST_F(DqpTest, SeparateQueuesSeparateSequences) {
  master_->submit(request(1, 0));
  master_->submit(request(2, 2));
  sim_.run_all();
  EXPECT_EQ(master_results_[0].aid.qseq, 0u);
  EXPECT_EQ(master_results_[1].aid.qseq, 0u);
  EXPECT_EQ(master_results_[1].aid.qid, 2);
}

TEST_F(DqpTest, PolicyRejectionYieldsDenied) {
  slave_->set_policy([](const DqpPacket& p) { return p.purpose_id != 13; });
  DqpPacket bad = request(5);
  bad.purpose_id = 13;
  master_->submit(bad);
  sim_.run_all();
  ASSERT_EQ(master_results_.size(), 1u);
  EXPECT_FALSE(master_results_[0].ok);
  EXPECT_EQ(master_results_[0].err, EgpError::kDenied);
  // Master must have rolled the item back.
  EXPECT_EQ(master_->size(0), 0u);
  EXPECT_EQ(slave_->size(0), 0u);
}

TEST_F(DqpTest, QueueFullRejects) {
  DistributedQueue::Config cfg;
  cfg.is_master = true;
  cfg.max_items_per_queue = 2;
  cfg.window = 8;
  auto small = std::make_unique<DistributedQueue>(sim_, "dq-small", cfg,
                                                  chan_, 0);
  chan_.set_receiver(0, [&](std::vector<std::uint8_t> b) {
    deliver(*small, std::move(b));
  });
  std::vector<Result> results;
  small->set_local_result_handler(
      [&](std::uint32_t cid, bool ok, EgpError err, AbsoluteQueueId a) {
        results.push_back({cid, ok, err, a});
      });
  small->submit(request(1));
  small->submit(request(2));
  small->submit(request(3));
  sim_.run_all();
  ASSERT_EQ(results.size(), 3u);
  // The queue-full rejection is synchronous, so match by create id.
  for (const Result& r : results) {
    if (r.create_id == 3) {
      EXPECT_FALSE(r.ok);
      EXPECT_EQ(r.err, EgpError::kRejected);
    } else {
      EXPECT_TRUE(r.ok) << r.create_id;
    }
  }
}

TEST_F(DqpTest, LostAddIsRetransmitted) {
  chan_.set_loss_probability(1.0);
  master_->submit(request(1));
  sim_.run_until(sim::duration::milliseconds(1));
  EXPECT_TRUE(master_results_.empty());
  chan_.set_loss_probability(0.0);
  sim_.run_all();
  ASSERT_EQ(master_results_.size(), 1u);
  EXPECT_TRUE(master_results_[0].ok);
  EXPECT_GT(master_->retransmissions(), 0u);
  EXPECT_EQ(slave_remote_.size(), 1u);  // delivered exactly once
}

TEST_F(DqpTest, PermanentLossTimesOutWithNoTime) {
  chan_.set_loss_probability(1.0);
  master_->submit(request(1));
  sim_.run_until(sim::duration::seconds(5));
  ASSERT_EQ(master_results_.size(), 1u);
  EXPECT_FALSE(master_results_[0].ok);
  EXPECT_EQ(master_results_[0].err, EgpError::kNoTime);
  EXPECT_EQ(master_->size(0), 0u);
}

TEST_F(DqpTest, DuplicateAddFromRetransmissionNotDoubleInserted) {
  // Drop the first ACK so the master retransmits; the slave must ACK
  // again but only insert/notify once.
  int drop_next_ack = 1;
  chan_.set_receiver(0, [&](std::vector<std::uint8_t> b) {
    if (drop_next_ack > 0) {
      --drop_next_ack;
      return;  // swallow the ACK
    }
    deliver(*master_, std::move(b));
  });
  master_->submit(request(1));
  sim_.run_all();
  ASSERT_EQ(master_results_.size(), 1u);
  EXPECT_TRUE(master_results_[0].ok);
  EXPECT_EQ(slave_remote_.size(), 1u);
  EXPECT_EQ(slave_->size(0), 1u);
}

TEST_F(DqpTest, SlaveRetransmissionGetsSameQseq) {
  // Drop the master's ACK to the slave once; the slave's retry must be
  // answered with the same assigned qseq (idempotency).
  int drops = 1;
  chan_.set_receiver(1, [&](std::vector<std::uint8_t> b) {
    if (drops > 0) {
      --drops;
      return;
    }
    deliver(*slave_, std::move(b));
  });
  slave_->submit(request(4));
  sim_.run_all();
  ASSERT_EQ(slave_results_.size(), 1u);
  EXPECT_TRUE(slave_results_[0].ok);
  EXPECT_EQ(master_remote_.size(), 1u);
  EXPECT_EQ(master_->size(0), 1u);
  EXPECT_EQ(slave_->size(0), 1u);
}

TEST_F(DqpTest, WindowLimitsOutstandingAdds) {
  DistributedQueue::Config cfg;
  cfg.is_master = true;
  cfg.window = 2;
  auto windowed = std::make_unique<DistributedQueue>(sim_, "dq-w", cfg,
                                                     chan_, 0);
  chan_.set_receiver(0, [&](std::vector<std::uint8_t> b) {
    deliver(*windowed, std::move(b));
  });
  for (std::uint32_t i = 1; i <= 6; ++i) windowed->submit(request(i));
  EXPECT_EQ(windowed->backlog_size(), 4u);
  sim_.run_all();
  EXPECT_EQ(windowed->backlog_size(), 0u);
  EXPECT_EQ(windowed->size(0), 6u);
}

TEST_F(DqpTest, RemoveDeletesItem) {
  master_->submit(request(1));
  sim_.run_all();
  const AbsoluteQueueId aid = master_results_[0].aid;
  master_->remove(aid);
  slave_->remove(aid);
  EXPECT_EQ(master_->find(aid), nullptr);
  EXPECT_EQ(slave_->find(aid), nullptr);
  EXPECT_EQ(master_->total_size(), 0u);
}

TEST_F(DqpTest, HeavyLossEventuallyConverges) {
  chan_.set_loss_probability(0.4);
  for (std::uint32_t i = 1; i <= 20; ++i) {
    master_->submit(request(i));
    slave_->submit(request(100 + i));
  }
  sim_.run_until(sim::duration::seconds(10));
  int ok_m = 0;
  for (const auto& r : master_results_) ok_m += r.ok ? 1 : 0;
  int ok_s = 0;
  for (const auto& r : slave_results_) ok_s += r.ok ? 1 : 0;
  EXPECT_GT(ok_m + ok_s, 10);
  // Agreement guarantees of the DQP under loss:
  //  - every item the slave holds exists at the master (the master
  //    assigned its qseq);
  //  - every *confirmed* master item exists at the slave.
  // (A master item whose final ACK was lost may linger one-sidedly; the
  // EGP's one-sided-error recovery reaps those, Section 5.2.5.)
  for (const auto& [qseq, item] : slave_->queue(0)) {
    EXPECT_NE(master_->find(item.request.aid), nullptr) << qseq;
  }
  std::size_t confirmed_m = 0;
  for (const auto& [qseq, item] : master_->queue(0)) {
    // Slave-originated items at the master may linger if every ACK to
    // the slave was lost; only master-originated confirmed items are
    // guaranteed to be replicated.
    if (!item.confirmed || !item.request.master_request) continue;
    ++confirmed_m;
    EXPECT_NE(slave_->find(item.request.aid), nullptr) << qseq;
  }
  EXPECT_EQ(confirmed_m, static_cast<std::size_t>(ok_m));
}

}  // namespace
}  // namespace qlink::core
