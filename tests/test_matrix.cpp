#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "quantum/bessel.hpp"
#include "quantum/channels.hpp"
#include "quantum/gates.hpp"
#include "quantum/matrix.hpp"

namespace qlink::quantum {
namespace {

const Complex kI{0.0, 1.0};

TEST(Matrix, IdentityHasUnitDiagonal) {
  const Matrix id = Matrix::identity(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(id(i, j), (i == j ? Complex{1, 0} : Complex{0, 0}));
    }
  }
}

TEST(Matrix, InitializerListRejectsRagged) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, AdditionAndSubtraction) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix sum = a + b;
  EXPECT_EQ(sum(0, 0), Complex(6, 0));
  EXPECT_EQ(sum(1, 1), Complex(12, 0));
  const Matrix diff = sum - b;
  EXPECT_TRUE(diff.approx_equal(a));
}

TEST(Matrix, ShapeMismatchThrows) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b(3, 3);
  EXPECT_THROW(a + b, std::invalid_argument);
  EXPECT_THROW(a - b, std::invalid_argument);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, MultiplicationMatchesHandComputation) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{0, 1}, {1, 0}};
  const Matrix ab = a * b;
  EXPECT_EQ(ab(0, 0), Complex(2, 0));
  EXPECT_EQ(ab(0, 1), Complex(1, 0));
  EXPECT_EQ(ab(1, 0), Complex(4, 0));
  EXPECT_EQ(ab(1, 1), Complex(3, 0));
}

TEST(Matrix, DaggerConjugatesAndTransposes) {
  const Matrix a{{1, kI}, {2, -kI}};
  const Matrix d = a.dagger();
  EXPECT_EQ(d(0, 0), Complex(1, 0));
  EXPECT_EQ(d(0, 1), Complex(2, 0));
  EXPECT_EQ(d(1, 0), -kI);
  EXPECT_EQ(d(1, 1), kI);
}

TEST(Matrix, KroneckerProductShapeAndValues) {
  const Matrix a{{1, 2}};
  const Matrix b{{3}, {4}};
  const Matrix k = a.kron(b);
  EXPECT_EQ(k.rows(), 2u);
  EXPECT_EQ(k.cols(), 2u);
  EXPECT_EQ(k(0, 0), Complex(3, 0));
  EXPECT_EQ(k(0, 1), Complex(6, 0));
  EXPECT_EQ(k(1, 0), Complex(4, 0));
  EXPECT_EQ(k(1, 1), Complex(8, 0));
}

TEST(Matrix, KroneckerOfIdentitiesIsIdentity) {
  const Matrix k = Matrix::identity(2).kron(Matrix::identity(4));
  EXPECT_TRUE(k.approx_equal(Matrix::identity(8)));
}

TEST(Matrix, TraceSumsDiagonal) {
  const Matrix a{{1, 9}, {9, 2}};
  EXPECT_EQ(a.trace(), Complex(3, 0));
  EXPECT_THROW(Matrix(2, 3).trace(), std::logic_error);
}

TEST(Matrix, HermitianDetection) {
  const Matrix h{{2, kI}, {-kI, 3}};
  EXPECT_TRUE(h.is_hermitian());
  const Matrix nh{{2, kI}, {kI, 3}};
  EXPECT_FALSE(nh.is_hermitian());
}

TEST(Matrix, ApplyToVector) {
  const Matrix a{{0, 1}, {1, 0}};
  const std::vector<Complex> v{1, 2};
  const auto out = a.apply(v);
  EXPECT_EQ(out[0], Complex(2, 0));
  EXPECT_EQ(out[1], Complex(1, 0));
}

TEST(Matrix, OuterAndInnerProducts) {
  const std::vector<Complex> a{1, kI};
  const std::vector<Complex> b{1, 0};
  const Matrix o = outer(a, b);
  EXPECT_EQ(o(1, 0), kI);
  // <a|a> = 1 + 1 = 2
  EXPECT_EQ(inner(a, a), Complex(2, 0));
  // inner is conjugate-linear in the first slot
  EXPECT_EQ(inner(a, b), Complex(1, 0));
}

TEST(Matrix, NormalizeScalesToUnitNorm) {
  std::vector<Complex> v{3, 4};
  normalize(v);
  EXPECT_NEAR(std::abs(v[0]), 0.6, 1e-12);
  EXPECT_NEAR(std::abs(v[1]), 0.8, 1e-12);
  std::vector<Complex> zero{0, 0};
  EXPECT_THROW(normalize(zero), std::invalid_argument);
}

// --- Gates ---------------------------------------------------------------

TEST(Gates, PaulisSquareToIdentity) {
  for (const Matrix* g : {&gates::x(), &gates::y(), &gates::z()}) {
    EXPECT_TRUE(((*g) * (*g)).approx_equal(Matrix::identity(2)));
  }
}

TEST(Gates, PauliAnticommutation) {
  const Matrix xy = gates::x() * gates::y();
  const Matrix yx = gates::y() * gates::x();
  EXPECT_TRUE((xy + yx).approx_equal(Matrix::zero(2, 2)));
  // XY = iZ
  EXPECT_TRUE(xy.approx_equal(gates::z() * kI));
}

TEST(Gates, HadamardConjugatesZToX) {
  const Matrix hzh = gates::h() * gates::z() * gates::h();
  EXPECT_TRUE(hzh.approx_equal(gates::x(), 1e-12));
}

TEST(Gates, RotationsAreUnitary) {
  for (double theta : {0.1, 0.7, 1.3, 3.0}) {
    for (const Matrix& r :
         {gates::rx(theta), gates::ry(theta), gates::rz(theta)}) {
      EXPECT_TRUE((r * r.dagger()).approx_equal(Matrix::identity(2), 1e-12));
    }
  }
}

TEST(Gates, RxFullTurnIsMinusIdentity) {
  const Matrix r = gates::rx(2.0 * M_PI);
  EXPECT_TRUE(r.approx_equal(Matrix::identity(2) * Complex{-1.0, 0.0}, 1e-9));
}

TEST(Gates, CnotMapsBasisStates) {
  const std::vector<Complex> s10{0, 0, 1, 0};  // |10>
  const auto out = gates::cnot().apply(s10);
  // control = qubit 0 set -> target flips: |11>
  EXPECT_EQ(out[3], Complex(1, 0));
}

TEST(Gates, EcControlledRxBlockStructure) {
  const Matrix g = gates::ec_controlled_rx(M_PI / 2.0);
  EXPECT_TRUE((g * g.dagger()).approx_equal(Matrix::identity(4), 1e-12));
  // Upper block rotates +pi/2, lower block -pi/2; they are daggers.
  Matrix upper(2, 2);
  Matrix lower(2, 2);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      upper(i, j) = g(i, j);
      lower(i, j) = g(2 + i, 2 + j);
    }
  }
  EXPECT_TRUE(upper.approx_equal(lower.dagger(), 1e-12));
}

TEST(Gates, BasisChangeMapsBasisVectorsToZ) {
  // |X,0> = (|0>+|1>)/sqrt(2) must map to |0>.
  const std::vector<Complex> x0{1.0 / std::sqrt(2.0), 1.0 / std::sqrt(2.0)};
  auto out = gates::basis_change(gates::Basis::kX).apply(x0);
  EXPECT_NEAR(std::abs(out[0]), 1.0, 1e-12);
  // |Y,1> = (|0>-i|1>)/sqrt(2) must map to |1>.
  const std::vector<Complex> y1{1.0 / std::sqrt(2.0),
                                Complex(0, -1.0 / std::sqrt(2.0))};
  out = gates::basis_change(gates::Basis::kY).apply(y1);
  EXPECT_NEAR(std::abs(out[1]), 1.0, 1e-12);
}

// --- Bessel ratio (Eq. 28 support) ----------------------------------------

double bessel_ratio_reference(double x) {
  // Power series for I0 and I1, adequate for x <= 40.
  double i0 = 0.0;
  double i1 = 0.0;
  double term = 1.0;  // (x/2)^(2k) / (k!)^2
  for (int k = 0; k < 200; ++k) {
    i0 += term;
    i1 += term * (x / 2.0) / (k + 1.0);
    term *= (x * x / 4.0) / ((k + 1.0) * (k + 1.0));
    if (term < 1e-18 * i0) break;
  }
  return i1 / i0;
}

TEST(Bessel, MatchesSeriesForSmallAndMediumArguments) {
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 32.0}) {
    EXPECT_NEAR(bessel_i1_over_i0(x), bessel_ratio_reference(x), 1e-10)
        << "x = " << x;
  }
}

TEST(Bessel, KnownValueAtOne) {
  // I1(1)/I0(1) = 0.5652/1.2661 ~= 0.44639
  EXPECT_NEAR(bessel_i1_over_i0(1.0), 0.446398, 1e-5);
}

TEST(Bessel, AsymptoticForLargeArgument) {
  // I1/I0 ~ 1 - 1/(2x) for large x.
  const double x = 500.0;
  EXPECT_NEAR(bessel_i1_over_i0(x), 1.0 - 1.0 / (2.0 * x), 1e-5);
}

TEST(Bessel, ZeroAndNegative) {
  EXPECT_EQ(bessel_i1_over_i0(0.0), 0.0);
  EXPECT_THROW(bessel_i1_over_i0(-1.0), std::invalid_argument);
}

// --- move-awareness / allocation accounting (ISSUE 2 satellite) -----

TEST(MatrixAlloc, MoveConstructionAndAssignmentDoNotAllocate) {
  Matrix a = Matrix::identity(4);  // one allocation
  const std::uint64_t before = Matrix::heap_allocations();

  Matrix b = std::move(a);  // move ctor: no allocation
  EXPECT_EQ(Matrix::heap_allocations(), before);
  EXPECT_TRUE(a.empty());  // moved-from is empty, not aliasing b
  EXPECT_EQ(b.rows(), 4u);

  Matrix c;
  c = std::move(b);  // move assign: no allocation
  EXPECT_EQ(Matrix::heap_allocations(), before);
  EXPECT_EQ(c.rows(), 4u);
}

TEST(MatrixAlloc, CopyIsCountedMoveIsNot) {
  const Matrix a = Matrix::identity(2);
  const std::uint64_t before = Matrix::heap_allocations();
  const Matrix copy = a;  // copies allocate and are counted
  EXPECT_EQ(Matrix::heap_allocations(), before + 1);
  EXPECT_TRUE(copy.approx_equal(a));
}

TEST(MatrixAlloc, VectorGrowthMovesInsteadOfCopying) {
  // Matrix's move operations are noexcept, so vector reallocation must
  // move the payloads: growing a vector of matrices performs no Matrix
  // heap allocations beyond the initial constructions.
  std::vector<Matrix> v;
  v.reserve(1);
  v.push_back(Matrix::identity(4));
  const std::uint64_t before = Matrix::heap_allocations();
  for (int i = 0; i < 16; ++i) {
    v.push_back(Matrix(4, 4));  // 1 allocation each; growth must not copy
  }
  EXPECT_EQ(Matrix::heap_allocations(), before + 16);
}

TEST(MatrixAlloc, ChannelConstructionHasNoSilentCopies) {
  // channels::dephasing builds 2 matrices: one scaled copy of each
  // static gate (counted) moved into the vector (not counted). The
  // historical initializer-list construction silently doubled this.
  // Warm up first so the lazily-built static gate matrices don't count.
  (void)channels::dephasing(0.5);
  (void)channels::depolarizing(0.5);

  const std::uint64_t before = Matrix::heap_allocations();
  const auto kraus = channels::dephasing(0.25);
  EXPECT_EQ(kraus.size(), 2u);
  EXPECT_EQ(Matrix::heap_allocations(), before + 2);

  const std::uint64_t before_depol = Matrix::heap_allocations();
  const auto depol = channels::depolarizing(0.9);
  EXPECT_EQ(depol.size(), 4u);
  EXPECT_EQ(Matrix::heap_allocations(), before_depol + 4);
}

}  // namespace
}  // namespace qlink::quantum
