#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "netlayer/swap_service.hpp"
#include "netlayer/topology.hpp"
#include "quantum/bell.hpp"
#include "routing/router.hpp"

/// Adaptive re-routing and live annotation refresh (ISSUE 4): a routed
/// request whose reserved path keeps failing is resubmitted over
/// sibling candidates with the failing edge excluded, and
/// Router::refresh_annotations folds each link's measured FEU
/// test-round estimate into the edge parameters, decaying toward the
/// static model as the measurement goes stale. Pure reservation-table
/// lease mechanics live in test_routing.cpp.

namespace qlink::netlayer {
namespace {

/// A 2x3 grid whose shortest 0 -> 2 corridor (0-1-2) has a dead middle
/// edge: herald visibility 0.25 makes a CREATE at the 0.7 floor
/// infeasible on edge (1, 2), so routes crossing it fail with UNSUPP.
struct DeadEdgeWorld {
  routing::Graph grid;
  std::unique_ptr<QuantumNetwork> net;
  metrics::Collector collector;
  std::unique_ptr<SwapService> swap;
  std::unique_ptr<routing::Router> router;

  explicit DeadEdgeWorld(qstate::BackendKind backend,
                         std::uint64_t seed = 11,
                         std::size_t max_reroutes = 3)
      : grid(routing::Graph::grid(2, 3)) {
    const std::size_t dead = grid.find_edge(1, 2);
    NetworkConfig nc =
        routing::make_network_config(grid, core::LinkConfig{}, seed);
    nc.link.backend = backend;
    nc.link.pauli_twirl_installs =
        backend == qstate::BackendKind::kBellDiagonal;
    nc.link.scenario = hw::ScenarioParams::lab();
    nc.link.scenario.nv.carbon_t2_ns = 0.5e9;
    nc.link.scenario.nv.carbon_coupling_rad_per_s /= 10.0;
    nc.configure_link = [dead](std::size_t link, core::LinkConfig& lc) {
      if (link == dead) lc.scenario.herald.visibility = 0.25;
    };
    net = std::make_unique<QuantumNetwork>(nc);
    swap = std::make_unique<SwapService>(*net, &collector);
    routing::RouterConfig rc;
    rc.cost = routing::CostModel::kHopCount;
    rc.k_candidates = 4;
    rc.max_reroutes = max_reroutes;
    router = std::make_unique<routing::Router>(grid, *net, *swap, rc,
                                               &collector);
    const double menu[] = {0.7};
    router->annotate_from_network(menu);
  }
};

/// Run one 0 -> 2 request to settlement and return a byte-exact trace
/// of everything observable about its deliveries.
std::string run_dead_edge_trace(qstate::BackendKind backend,
                                std::uint64_t seed) {
  DeadEdgeWorld w(backend, seed);
  std::string trace;
  w.router->set_deliver_handler([&](const E2eOk& ok) {
    char line[160];
    std::snprintf(line, sizeof(line), "%u %u/%u q%llu-q%llu s%d %.17g %lld\n",
                  ok.request_id, ok.pair_index + 1, ok.total_pairs,
                  static_cast<unsigned long long>(ok.qubit_src),
                  static_cast<unsigned long long>(ok.qubit_dst), ok.swaps,
                  ok.fidelity, static_cast<long long>(ok.deliver_time));
    trace += line;
    w.swap->release(ok);
  });

  E2eRequest req;
  req.src = 0;
  req.dst = 2;
  req.num_pairs = 2;
  req.min_fidelity = 0.25;
  req.link_min_fidelity = 0.7;
  w.net->start();
  w.router->submit(req);
  const auto& stats = w.router->stats();
  for (int i = 0; i < 4000 && stats.completed + stats.failed < 1; ++i) {
    w.net->run_for(sim::duration::milliseconds(1));
  }

  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rerouted, 1u);
  EXPECT_EQ(stats.abandoned, 0u);
  EXPECT_EQ(stats.pairs_delivered, 2u);
  EXPECT_EQ(w.swap->stats().resubmissions, 1u);
  EXPECT_EQ(w.collector.reroutes(), 1u);
  EXPECT_EQ(w.collector.abandons(), 0u);
  // Two admissions: the 2-hop corridor (which died), then a 4-hop
  // sibling that respects the exclusion set (a 4-hop route is only
  // possible avoiding edge (1, 2) — completing at all proves it).
  EXPECT_EQ(w.collector.route_length().count(), 2u);
  EXPECT_DOUBLE_EQ(w.collector.route_length().mean(), 3.0);
  EXPECT_EQ(w.router->reservations().active(), 0u);

  char tail[64];
  std::snprintf(tail, sizeof(tail), "end %lld\n",
                static_cast<long long>(w.net->simulator().now()));
  trace += tail;
  return trace;
}

TEST(AdaptiveRouting, ReroutesAroundDeadEdgeAndCompletes) {
  const std::string trace =
      run_dead_edge_trace(qstate::BackendKind::kBellDiagonal, 11);
  EXPECT_FALSE(trace.empty());
}

TEST(AdaptiveRouting, ByteIdenticalPerSeedOnBothBackends) {
  for (const auto backend : {qstate::BackendKind::kDense,
                             qstate::BackendKind::kBellDiagonal}) {
    const std::string first = run_dead_edge_trace(backend, 11);
    const std::string second = run_dead_edge_trace(backend, 11);
    EXPECT_EQ(first, second);
    EXPECT_NE(first.find('\n'), std::string::npos);
  }
}

TEST(AdaptiveRouting, StaticRouterFailsTerminallyOnDeadEdge) {
  DeadEdgeWorld w(qstate::BackendKind::kBellDiagonal, 11,
                  /*max_reroutes=*/0);
  std::vector<E2eErr> errors;
  w.router->set_error_handler(
      [&errors](const E2eErr& err) { errors.push_back(err); });

  E2eRequest req;
  req.src = 0;
  req.dst = 2;
  req.min_fidelity = 0.25;
  req.link_min_fidelity = 0.7;
  w.net->start();
  w.router->submit(req);
  const auto& stats = w.router->stats();
  for (int i = 0; i < 200 && stats.completed + stats.failed < 1; ++i) {
    w.net->run_for(sim::duration::milliseconds(1));
  }
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.rerouted, 0u);
  EXPECT_EQ(stats.abandoned, 0u);  // static mode never "gives up"
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].error, core::EgpError::kUnsupported);
  EXPECT_EQ(errors[0].link, w.grid.find_edge(1, 2));
  EXPECT_EQ(w.router->reservations().active(), 0u);
}

TEST(AdaptiveRouting, BudgetExhaustionAbandonsAndReportsTerminalError) {
  // Budget 0 reroutes would be static; budget 1 on a world where every
  // sibling also dies: kill all three column-crossing edges so no
  // 0 -> 2 route is feasible at the 0.7 floor.
  routing::Graph grid = routing::Graph::grid(2, 3);
  const std::size_t dead1 = grid.find_edge(1, 2);
  const std::size_t dead2 = grid.find_edge(4, 5);
  NetworkConfig nc =
      routing::make_network_config(grid, core::LinkConfig{}, 13);
  nc.link.backend = qstate::BackendKind::kBellDiagonal;
  nc.link.pauli_twirl_installs = true;
  nc.link.scenario = hw::ScenarioParams::lab();
  nc.configure_link = [dead1, dead2](std::size_t link,
                                     core::LinkConfig& lc) {
    if (link == dead1 || link == dead2) {
      lc.scenario.herald.visibility = 0.25;
    }
  };
  QuantumNetwork net(nc);
  metrics::Collector collector;
  SwapService swap(net, &collector);
  routing::RouterConfig rc;
  rc.max_reroutes = 5;
  routing::Router router(grid, net, swap, rc, &collector);
  const double menu[] = {0.7};
  router.annotate_from_network(menu);

  std::vector<E2eErr> errors;
  router.set_error_handler(
      [&errors](const E2eErr& err) { errors.push_back(err); });

  E2eRequest req;
  req.src = 0;
  req.dst = 2;
  req.min_fidelity = 0.25;
  req.link_min_fidelity = 0.7;
  net.start();
  router.submit(req);
  const auto& stats = router.stats();
  for (int i = 0; i < 400 && stats.completed + stats.failed < 1; ++i) {
    net.run_for(sim::duration::milliseconds(1));
  }
  // Every 0 -> 2 route crosses column 1 -> 2 over one of the two dead
  // crossing edges; after both join the exclusion set no candidate
  // remains and the request is abandoned.
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.rerouted, 1u);
  EXPECT_EQ(stats.abandoned, 1u);
  EXPECT_EQ(collector.abandons(), 1u);
  ASSERT_EQ(errors.size(), 1u);  // the higher layer saw only the end
  EXPECT_EQ(router.reservations().active(), 0u);
  EXPECT_EQ(swap.open_requests(), 0u);
}

// ---------------------------------------------------------------------------
// Live annotation refresh from FEU test rounds.

TEST(AnnotationRefresh, BlendsMeasurementsAndDecaysWhenStale) {
  routing::Graph chain = routing::Graph::chain(2);
  NetworkConfig nc =
      routing::make_network_config(chain, core::LinkConfig{}, 5);
  nc.link.scenario = hw::ScenarioParams::lab();
  QuantumNetwork net(nc);
  SwapService swap(net);
  routing::Router router(chain, net, swap);
  const double menu[] = {0.7};
  router.annotate_from_network(menu);
  const double model = router.graph().params(0).fidelity;
  ASSERT_GT(model, 0.25);
  ASSERT_LT(model, 1.0);

  // Feed the link's FEU a perfect test-round record (zero QBER in all
  // three bases -> Eq. 16 estimate 1.0, far from the model).
  core::FidelityEstimationUnit& feu = net.link(0).egp_a().feu();
  using quantum::gates::Basis;
  for (const Basis basis : {Basis::kX, Basis::kY, Basis::kZ}) {
    const bool equal = quantum::bell::ideal_outcomes_equal(
        quantum::bell::BellState::kPsiPlus, basis);
    for (int i = 0; i < 12; ++i) {
      feu.record_test_round(basis, 0, equal ? 0 : 1, /*heralded=*/1);
    }
  }
  const auto measured = net.link(0).test_round_estimate();
  ASSERT_EQ(measured.rounds, 36u);
  ASSERT_TRUE(measured.fidelity.has_value());
  EXPECT_NEAR(*measured.fidelity, 1.0, 1e-12);

  routing::RefreshOptions options;
  options.floor_menu = menu;
  options.min_rounds = 30;
  options.stale_halflife_s = 0.5;

  // Below min_rounds the model stands.
  routing::RefreshOptions strict = options;
  strict.min_rounds = 100;
  router.refresh_annotations(strict);
  EXPECT_DOUBLE_EQ(router.graph().params(0).fidelity, model);

  // Fresh measurement (age 0): the measured value replaces the model.
  router.refresh_annotations(options);
  EXPECT_NEAR(router.graph().params(0).fidelity, *measured.fidelity,
              1e-12);

  // One half-life with no new rounds: half-way back to the model.
  net.run_for(sim::duration::seconds(0.5));
  router.refresh_annotations(options);
  EXPECT_NEAR(router.graph().params(0).fidelity,
              0.5 * *measured.fidelity + 0.5 * model, 1e-9);

  // Twenty half-lives: indistinguishable from the static model.
  net.run_for(sim::duration::seconds(10.0));
  router.refresh_annotations(options);
  EXPECT_NEAR(router.graph().params(0).fidelity, model, 1e-4);

  // A new test round resets freshness: full measurement weight again.
  feu.record_test_round(Basis::kZ, 0, 1, 1);  // Psi+: Z anti-correlates
  router.refresh_annotations(options);
  const auto refreshed = net.link(0).test_round_estimate();
  ASSERT_TRUE(refreshed.fidelity.has_value());
  EXPECT_NEAR(router.graph().params(0).fidelity, *refreshed.fidelity,
              1e-12);
}

}  // namespace
}  // namespace qlink::netlayer
