#include <gtest/gtest.h>

#include <cmath>

#include "quantum/bell.hpp"
#include "quantum/density_matrix.hpp"
#include "quantum/gates.hpp"

namespace qlink::quantum {
namespace {

const double kS = 1.0 / std::sqrt(2.0);

TEST(DensityMatrix, StartsInGroundState) {
  DensityMatrix rho(2);
  EXPECT_EQ(rho.num_qubits(), 2);
  EXPECT_EQ(rho.dim(), 4u);
  EXPECT_NEAR(rho.matrix()(0, 0).real(), 1.0, 1e-12);
  EXPECT_NEAR(rho.trace_real(), 1.0, 1e-12);
  EXPECT_NEAR(rho.purity(), 1.0, 1e-12);
}

TEST(DensityMatrix, FromPureRequiresNormalisation) {
  const std::vector<Complex> bad{1.0, 1.0};
  EXPECT_THROW(DensityMatrix::from_pure(bad), std::invalid_argument);
  const std::vector<Complex> good{kS, kS};
  const DensityMatrix rho = DensityMatrix::from_pure(good);
  EXPECT_NEAR(rho.matrix()(0, 1).real(), 0.5, 1e-12);
}

TEST(DensityMatrix, SingleQubitUnitaryOnTarget) {
  DensityMatrix rho(2);  // |00>
  const int t1[] = {1};
  rho.apply_unitary(gates::x(), t1);  // -> |01>
  EXPECT_NEAR(rho.matrix()(1, 1).real(), 1.0, 1e-12);
  const int t0[] = {0};
  rho.apply_unitary(gates::x(), t0);  // -> |11>
  EXPECT_NEAR(rho.matrix()(3, 3).real(), 1.0, 1e-12);
}

TEST(DensityMatrix, HadamardCnotMakesBellState) {
  DensityMatrix rho(2);
  const int t0[] = {0};
  rho.apply_unitary(gates::h(), t0);
  const int both[] = {0, 1};
  rho.apply_unitary(gates::cnot(), both);
  EXPECT_NEAR(bell::fidelity(rho, bell::BellState::kPhiPlus), 1.0, 1e-12);
}

TEST(DensityMatrix, CnotWithReversedTargets) {
  // CNOT with control = qubit 1: |01> -> |11>.
  DensityMatrix rho(2);
  const int t1[] = {1};
  rho.apply_unitary(gates::x(), t1);
  const int rev[] = {1, 0};
  rho.apply_unitary(gates::cnot(), rev);
  EXPECT_NEAR(rho.matrix()(3, 3).real(), 1.0, 1e-12);
}

TEST(DensityMatrix, ExpandOperatorValidatesTargets) {
  DensityMatrix rho(2);
  const int bad[] = {0, 0};
  EXPECT_THROW(rho.apply_unitary(gates::cnot(), bad), std::invalid_argument);
  const int oob[] = {2};
  EXPECT_THROW(rho.apply_unitary(gates::x(), oob), std::invalid_argument);
}

TEST(DensityMatrix, KrausDephasingKillsCoherence) {
  const std::vector<Complex> plus{kS, kS};
  DensityMatrix rho = DensityMatrix::from_pure(plus);
  const std::vector<Matrix> kraus = {
      gates::i2() * Complex{std::sqrt(0.5), 0.0},
      gates::z() * Complex{std::sqrt(0.5), 0.0}};
  const int t[] = {0};
  rho.apply_kraus(kraus, t);
  EXPECT_NEAR(std::abs(rho.matrix()(0, 1)), 0.0, 1e-12);
  EXPECT_NEAR(rho.trace_real(), 1.0, 1e-12);
  EXPECT_NEAR(rho.purity(), 0.5, 1e-12);
}

TEST(DensityMatrix, PovmProbability) {
  DensityMatrix rho(1);
  const Matrix p1{{0, 0}, {0, 1}};
  const int t[] = {0};
  EXPECT_NEAR(rho.povm_probability(p1, t), 0.0, 1e-12);
  rho.apply_unitary(gates::h(), t);
  EXPECT_NEAR(rho.povm_probability(p1, t), 0.5, 1e-12);
}

TEST(DensityMatrix, ApplyAndRenormalizeProjects) {
  DensityMatrix rho(1);
  const int t[] = {0};
  rho.apply_unitary(gates::h(), t);
  const Matrix p1{{0, 0}, {0, 1}};
  const double p = rho.apply_and_renormalize(p1, t);
  EXPECT_NEAR(p, 0.5, 1e-12);
  EXPECT_NEAR(rho.matrix()(1, 1).real(), 1.0, 1e-12);
}

TEST(DensityMatrix, ApplyAndRenormalizeZeroProbability) {
  DensityMatrix rho(1);  // |0>
  const Matrix p1{{0, 0}, {0, 1}};
  const int t[] = {0};
  EXPECT_EQ(rho.apply_and_renormalize(p1, t), 0.0);
  // State untouched.
  EXPECT_NEAR(rho.matrix()(0, 0).real(), 1.0, 1e-12);
}

TEST(DensityMatrix, PartialTraceOfProductState) {
  DensityMatrix rho(2);
  const int t1[] = {1};
  rho.apply_unitary(gates::x(), t1);  // |01>
  const DensityMatrix reduced = rho.partial_trace(t1);
  EXPECT_EQ(reduced.num_qubits(), 1);
  EXPECT_NEAR(reduced.matrix()(0, 0).real(), 1.0, 1e-12);  // qubit 0 = |0>
}

TEST(DensityMatrix, PartialTraceOfBellStateIsMaximallyMixed) {
  const DensityMatrix rho = DensityMatrix::from_pure(
      bell::state_vector(bell::BellState::kPhiPlus));
  const int t0[] = {0};
  const DensityMatrix reduced = rho.partial_trace(t0);
  EXPECT_NEAR(reduced.matrix()(0, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(reduced.matrix()(1, 1).real(), 0.5, 1e-12);
  EXPECT_NEAR(reduced.purity(), 0.5, 1e-12);
}

TEST(DensityMatrix, PartialTraceCannotRemoveEverything) {
  DensityMatrix rho(1);
  const int t[] = {0};
  EXPECT_THROW(rho.partial_trace(t), std::invalid_argument);
}

TEST(DensityMatrix, TensorComposesStates) {
  DensityMatrix a(1);
  const int t[] = {0};
  a.apply_unitary(gates::x(), t);  // |1>
  const DensityMatrix b(1);        // |0>
  const DensityMatrix ab = a.tensor(b);
  EXPECT_EQ(ab.num_qubits(), 2);
  EXPECT_NEAR(ab.matrix()(2, 2).real(), 1.0, 1e-12);  // |10>
}

TEST(DensityMatrix, FidelityOfOrthogonalStatesIsZero) {
  const DensityMatrix rho = DensityMatrix::from_pure(
      bell::state_vector(bell::BellState::kPsiPlus));
  EXPECT_NEAR(rho.fidelity(bell::state_vector(bell::BellState::kPsiMinus)),
              0.0, 1e-12);
  EXPECT_NEAR(rho.fidelity(bell::state_vector(bell::BellState::kPsiPlus)),
              1.0, 1e-12);
}

TEST(DensityMatrix, PermutedSwapsQubits) {
  DensityMatrix rho(2);
  const int t1[] = {1};
  rho.apply_unitary(gates::x(), t1);  // |01>
  const int perm[] = {1, 0};
  const DensityMatrix swapped = rho.permuted(perm);
  EXPECT_NEAR(swapped.matrix()(2, 2).real(), 1.0, 1e-12);  // |10>
}

TEST(DensityMatrix, PermutationPreservesEntangledFidelity) {
  // |Psi+> is symmetric under qubit exchange.
  const DensityMatrix rho = DensityMatrix::from_pure(
      bell::state_vector(bell::BellState::kPsiPlus));
  const int perm[] = {1, 0};
  EXPECT_NEAR(bell::fidelity(rho.permuted(perm), bell::BellState::kPsiPlus),
              1.0, 1e-12);
  // |Psi-> picks up a global sign only: fidelity unchanged too.
  const DensityMatrix rho2 = DensityMatrix::from_pure(
      bell::state_vector(bell::BellState::kPsiMinus));
  EXPECT_NEAR(bell::fidelity(rho2.permuted(perm), bell::BellState::kPsiMinus),
              1.0, 1e-12);
}

TEST(DensityMatrix, ThreeQubitGhzPartialTrace) {
  DensityMatrix rho(3);
  const int t0[] = {0};
  rho.apply_unitary(gates::h(), t0);
  const int c01[] = {0, 1};
  const int c02[] = {0, 2};
  rho.apply_unitary(gates::cnot(), c01);
  rho.apply_unitary(gates::cnot(), c02);
  // Tracing out qubit 2 leaves a classically correlated mixture.
  const int t2[] = {2};
  const DensityMatrix reduced = rho.partial_trace(t2);
  EXPECT_NEAR(reduced.matrix()(0, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(reduced.matrix()(3, 3).real(), 0.5, 1e-12);
  EXPECT_NEAR(std::abs(reduced.matrix()(0, 3)), 0.0, 1e-12);
}

TEST(DensityMatrix, RenormalizeFixesDrift) {
  DensityMatrix rho(1);
  DensityMatrix scaled = DensityMatrix::from_matrix(
      rho.matrix() * Complex{0.5, 0.0});
  scaled.renormalize();
  EXPECT_NEAR(scaled.trace_real(), 1.0, 1e-12);
}

}  // namespace
}  // namespace qlink::quantum
