#include <gtest/gtest.h>

#include <vector>

#include "sim/entity.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace qlink::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.events_processed(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Simulator, TieBreaksFifoWithinTimestamp) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator s;
  s.schedule_at(100, [] {});
  s.run_all();
  SimTime fired_at = -1;
  s.schedule_in(50, [&] { fired_at = s.now(); });
  s.run_all();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, RejectsPastEvents) {
  Simulator s;
  s.schedule_at(10, [] {});
  s.run_all();
  EXPECT_THROW(s.schedule_at(5, [] {}), std::invalid_argument);
}

TEST(Simulator, RejectsEmptyFunction) {
  Simulator s;
  EXPECT_THROW(s.schedule_at(1, nullptr), std::invalid_argument);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  const EventId id = s.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run_all();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelTwiceReturnsFalse) {
  Simulator s;
  const EventId id = s.schedule_at(10, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulator, CancelUnknownIdReturnsFalse) {
  Simulator s;
  EXPECT_FALSE(s.cancel(12345));
  EXPECT_FALSE(s.cancel(0));
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator s;
  s.run_until(500);
  EXPECT_EQ(s.now(), 500);
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator s;
  int count = 0;
  s.schedule_at(10, [&] { ++count; });
  s.schedule_at(20, [&] { ++count; });
  s.schedule_at(21, [&] { ++count; });
  s.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), 20);
  s.run_until(21);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_in(10, recurse);
  };
  s.schedule_at(0, recurse);
  s.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), 40);
}

TEST(PeriodicTimer, FiresAtFixedPeriod) {
  Simulator s;
  std::vector<SimTime> ticks;
  PeriodicTimer t(s, 100, [&] { ticks.push_back(s.now()); });
  t.start();
  s.run_until(350);
  ASSERT_EQ(ticks.size(), 4u);  // t = 0, 100, 200, 300
  EXPECT_EQ(ticks[0], 0);
  EXPECT_EQ(ticks[3], 300);
}

TEST(PeriodicTimer, StopHaltsFiring) {
  Simulator s;
  int count = 0;
  PeriodicTimer t(s, 10, [&] { ++count; });
  t.start();
  s.run_until(35);
  t.stop();
  s.run_until(1000);
  EXPECT_EQ(count, 4);
  EXPECT_FALSE(t.running());
}

TEST(PeriodicTimer, CallbackMayStopTimer) {
  Simulator s;
  int count = 0;
  PeriodicTimer t(s, 10, [&] {
    if (++count == 3) t.stop();
  });
  t.start();
  s.run_until(10000);
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTimer, StartWithOffset) {
  Simulator s;
  std::vector<SimTime> ticks;
  PeriodicTimer t(s, 100, [&] { ticks.push_back(s.now()); });
  t.start(37);
  s.run_until(250);
  ASSERT_GE(ticks.size(), 2u);
  EXPECT_EQ(ticks[0], 37);
  EXPECT_EQ(ticks[1], 137);
}

TEST(Random, DeterministicForSameSeed) {
  Random a(42);
  Random b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Random, DiffersAcrossSeeds) {
  Random a(1);
  Random b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Random, BernoulliEdges) {
  Random r(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Random, BernoulliMatchesProbability) {
  Random r(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Random, UniformIntCoversRangeInclusive) {
  Random r(13);
  bool lo = false;
  bool hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(1, 3);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3);
    lo |= v == 1;
    hi |= v == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Random, DiscreteRespectsWeights) {
  Random r(17);
  const double w[] = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[r.discrete(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Random, DiscreteRejectsInvalid) {
  Random r(19);
  const double neg[] = {0.5, -0.1};
  EXPECT_THROW(r.discrete(neg), std::invalid_argument);
  const double zero[] = {0.0, 0.0};
  EXPECT_THROW(r.discrete(zero), std::invalid_argument);
}

TEST(Simulator, PendingExcludesCancelledEvents) {
  Simulator s;
  const EventId a = s.schedule_at(10, [] {});
  s.schedule_at(20, [] {});
  EXPECT_EQ(s.pending(), 2u);
  EXPECT_TRUE(s.cancel(a));
  // The cancelled event still occupies a queue slot, but pending() is
  // exact.
  EXPECT_EQ(s.pending(), 1u);
  s.run_all();
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.events_processed(), 1u);
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator s;
  const EventId a = s.schedule_at(5, [] {});
  s.run_all();
  EXPECT_FALSE(s.cancel(a));
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, CancelBookkeepingStaysBounded) {
  // Regression: cancelled ids used to accumulate in a linearly scanned
  // vector; cancelling after the fact even re-added fired ids forever.
  Simulator s;
  for (int round = 0; round < 1000; ++round) {
    const EventId id = s.schedule_at(round, [] {});
    EXPECT_TRUE(s.cancel(id));
    EXPECT_FALSE(s.cancel(id));
    EXPECT_EQ(s.pending(), 0u);
  }
  s.run_all();
  EXPECT_EQ(s.events_processed(), 0u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, RunUntilDoesNotOvershootPastCancelledHead) {
  // A cancelled event at the queue head inside the window must not let
  // run_until execute a live event beyond the window.
  Simulator s;
  const EventId head = s.schedule_at(10, [] {});
  bool late_ran = false;
  s.schedule_at(100, [&] { late_ran = true; });
  s.cancel(head);
  s.run_until(50);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(s.now(), 50);
  EXPECT_EQ(s.pending(), 1u);
  s.run_all();
  EXPECT_TRUE(late_ran);
}

}  // namespace
}  // namespace qlink::sim
