#include <gtest/gtest.h>

#include "core/distributed_queue.hpp"
#include "core/scheduler.hpp"
#include "net/channel.hpp"
#include "sim/simulator.hpp"

namespace qlink::core {
namespace {

using net::AbsoluteQueueId;
using net::DqpPacket;

/// Drives a master-side queue without a peer: items are inserted via the
/// public submit path and confirmed by feeding the ACK ourselves.
class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : chan_(sim_, "loop", 1, random_) {
    DistributedQueue::Config cfg;
    cfg.is_master = true;
    queue_ = std::make_unique<DistributedQueue>(sim_, "dq", cfg, chan_, 0);
    // Auto-ACK everything the queue sends (a perfectly agreeing peer).
    chan_.set_receiver(1, [this](std::vector<std::uint8_t> bytes) {
      const auto frame = net::unseal(bytes);
      if (!frame || frame->type != net::PacketType::kDqpFrame) return;
      DqpPacket p = DqpPacket::decode(frame->payload);
      if (p.frame_type != net::DqpFrameType::kAdd) return;
      p.frame_type = net::DqpFrameType::kAck;
      chan_.send_from(1, net::seal(net::PacketType::kDqpFrame, p.encode()));
    });
    chan_.set_receiver(0, [this](std::vector<std::uint8_t> bytes) {
      const auto frame = net::unseal(bytes);
      if (!frame) return;
      queue_->handle_frame(DqpPacket::decode(frame->payload));
    });
  }

  AbsoluteQueueId add(Scheduler& sched, Priority prio,
                      std::uint16_t num_pairs = 1,
                      std::uint32_t est_cycles = 100,
                      std::uint64_t schedule_cycle = 0,
                      std::uint64_t timeout_cycle = 0) {
    DqpPacket p;
    p.aid.qid = static_cast<std::uint8_t>(sched.queue_for(prio));
    p.priority = static_cast<std::uint8_t>(prio);
    p.num_pairs = num_pairs;
    p.est_cycles_per_pair = est_cycles;
    p.schedule_cycle = schedule_cycle;
    p.timeout_cycle = timeout_cycle;
    p.create_id = next_create_++;
    p.init_virtual_finish = sched.assign_virtual_finish(p, cycle_);
    AbsoluteQueueId got{};
    queue_->set_local_result_handler(
        [&](std::uint32_t, bool ok, EgpError, AbsoluteQueueId aid) {
          ASSERT_TRUE(ok);
          got = aid;
        });
    queue_->submit(p);
    sim_.run_all();
    return got;
  }

  std::optional<AbsoluteQueueId> next(Scheduler& sched) {
    return sched.next(*queue_, cycle_,
                      [&](const DistributedQueue::Item& item) {
                        return item.confirmed &&
                               item.request.schedule_cycle <= cycle_;
                      });
  }

  sim::Simulator sim_;
  sim::Random random_{3};
  net::ClassicalChannel chan_;
  std::unique_ptr<DistributedQueue> queue_;
  std::uint64_t cycle_ = 1000;
  std::uint32_t next_create_ = 1;
};

TEST_F(SchedulerTest, FcfsUsesSingleQueue) {
  Scheduler s(SchedulerConfig{SchedulerKind::kFcfs, {}});
  EXPECT_EQ(s.queue_for(Priority::kNetworkLayer), 0);
  EXPECT_EQ(s.queue_for(Priority::kCreateKeep), 0);
  EXPECT_EQ(s.queue_for(Priority::kMeasureDirectly), 0);
}

TEST_F(SchedulerTest, WfqMapsPriorityToQueue) {
  Scheduler s(SchedulerConfig{SchedulerKind::kWfq, {10.0, 1.0}});
  EXPECT_EQ(s.queue_for(Priority::kNetworkLayer), 0);
  EXPECT_EQ(s.queue_for(Priority::kCreateKeep), 1);
  EXPECT_EQ(s.queue_for(Priority::kMeasureDirectly), 2);
}

TEST_F(SchedulerTest, EmptyQueueGivesNothing) {
  Scheduler s(SchedulerConfig{SchedulerKind::kFcfs, {}});
  EXPECT_FALSE(next(s).has_value());
}

TEST_F(SchedulerTest, FcfsServesInArrivalOrder) {
  Scheduler s(SchedulerConfig{SchedulerKind::kFcfs, {}});
  const auto a = add(s, Priority::kMeasureDirectly);
  const auto b = add(s, Priority::kNetworkLayer);
  // Arrival order wins regardless of priority.
  EXPECT_EQ(next(s), a);
  queue_->remove(a);
  EXPECT_EQ(next(s), b);
}

TEST_F(SchedulerTest, WfqGivesNlStrictPriority) {
  Scheduler s(SchedulerConfig{SchedulerKind::kWfq, {10.0, 1.0}});
  const auto md = add(s, Priority::kMeasureDirectly);
  const auto ck = add(s, Priority::kCreateKeep);
  const auto nl = add(s, Priority::kNetworkLayer);
  EXPECT_EQ(next(s), nl);
  queue_->remove(nl);
  const auto who = next(s);
  EXPECT_TRUE(who == ck || who == md);
}

TEST_F(SchedulerTest, WfqWeightsFavourCk) {
  // CK has 10x MD's weight: with equal service demand CK's virtual
  // finish is earlier.
  Scheduler s(SchedulerConfig{SchedulerKind::kWfq, {10.0, 1.0}});
  const auto md = add(s, Priority::kMeasureDirectly, 1, 1000);
  const auto ck = add(s, Priority::kCreateKeep, 1, 1000);
  EXPECT_EQ(next(s), ck);
  queue_->remove(ck);
  EXPECT_EQ(next(s), md);
}

TEST_F(SchedulerTest, WfqLetsCheapMdThroughBetweenBigCks) {
  Scheduler s(SchedulerConfig{SchedulerKind::kWfq, {10.0, 1.0}});
  // CK asks for a lot of service; a tiny MD must finish earlier despite
  // the lower weight.
  const auto ck = add(s, Priority::kCreateKeep, 255, 10000);
  const auto md = add(s, Priority::kMeasureDirectly, 1, 10);
  (void)ck;
  EXPECT_EQ(next(s), md);
}

TEST_F(SchedulerTest, MinTimeGatesService) {
  Scheduler s(SchedulerConfig{SchedulerKind::kFcfs, {}});
  const auto later = add(s, Priority::kCreateKeep, 1, 100, cycle_ + 50);
  EXPECT_FALSE(next(s).has_value());
  cycle_ += 50;
  EXPECT_EQ(next(s), later);
}

TEST_F(SchedulerTest, UnreadyHeadDoesNotBlockOthers) {
  Scheduler s(SchedulerConfig{SchedulerKind::kFcfs, {}});
  const auto gated = add(s, Priority::kCreateKeep, 1, 100, cycle_ + 1000);
  const auto ready = add(s, Priority::kCreateKeep, 1, 100, 0);
  (void)gated;
  EXPECT_EQ(next(s), ready);
}

TEST_F(SchedulerTest, VirtualFinishMonotonePerQueue) {
  Scheduler s(SchedulerConfig{SchedulerKind::kWfq, {10.0, 1.0}});
  DqpPacket p;
  p.aid.qid = 2;
  p.num_pairs = 1;
  p.est_cycles_per_pair = 100;
  const double f1 = s.assign_virtual_finish(p, 10);
  const double f2 = s.assign_virtual_finish(p, 10);
  EXPECT_GT(f2, f1);
  // Higher weight -> smaller increment for the same service.
  DqpPacket q;
  q.aid.qid = 1;
  q.num_pairs = 1;
  q.est_cycles_per_pair = 100;
  const double g1 = s.assign_virtual_finish(q, 10);
  EXPECT_LT(g1 - 10.0, f1 - 10.0);
}

TEST_F(SchedulerTest, DeterministicAcrossReplicas) {
  // Two scheduler instances looking at the same queue pick the same
  // request (the property Protocol 2 relies on).
  Scheduler s1(SchedulerConfig{SchedulerKind::kWfq, {10.0, 1.0}});
  Scheduler s2(SchedulerConfig{SchedulerKind::kWfq, {10.0, 1.0}});
  add(s1, Priority::kCreateKeep, 2, 500);
  add(s1, Priority::kMeasureDirectly, 1, 50);
  add(s1, Priority::kNetworkLayer, 1, 100);
  for (int i = 0; i < 3; ++i) {
    const auto a = next(s1);
    const auto b = next(s2);
    ASSERT_EQ(a, b);
    if (!a) break;
    queue_->remove(*a);
  }
}

}  // namespace
}  // namespace qlink::core
