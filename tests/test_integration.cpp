#include <gtest/gtest.h>

#include "quantum/bell.hpp"
#include "workload/workload.hpp"

namespace qlink {
namespace {

using core::CreateRequest;
using core::Link;
using core::LinkConfig;
using core::OkMessage;
using core::Priority;
using core::RequestType;

/// Cross-layer scenarios: QL2020 timing, scheduling under mixed load,
/// test rounds feeding the FEU, and teleportation on top of a delivered
/// K-pair (the SQ use case end to end).

LinkConfig make_config(const hw::ScenarioParams& sc, std::uint64_t seed) {
  LinkConfig c;
  c.scenario = sc;
  c.seed = seed;
  return c;
}

TEST(Integration, Ql2020DeliversWithRealisticDelays) {
  Link link(make_config(hw::ScenarioParams::ql2020(), 1));
  std::vector<OkMessage> oks_a;
  std::vector<OkMessage> oks_b;
  link.egp_a().set_ok_handler([&](const OkMessage& ok) { oks_a.push_back(ok); });
  link.egp_b().set_ok_handler([&](const OkMessage& ok) { oks_b.push_back(ok); });
  link.start();

  CreateRequest r;
  r.type = RequestType::kCreateMeasure;
  r.num_pairs = 3;
  r.min_fidelity = 0.55;
  r.priority = Priority::kMeasureDirectly;
  r.consecutive = true;
  link.egp_a().create(r);
  link.run_for(sim::duration::seconds(10));
  EXPECT_EQ(oks_a.size(), 3u);
  EXPECT_EQ(oks_b.size(), 3u);
}

TEST(Integration, Ql2020KeepPaysReplyWaitThroughputPenalty) {
  // K-type attempts in QL2020 are gated by the 145 us REPLY wait; the
  // EGP's attempt counter must show far fewer attempts than MD mode.
  auto run = [](RequestType type, std::uint64_t seed) {
    Link link(make_config(hw::ScenarioParams::ql2020(), seed));
    std::uint64_t oks = 0;
    link.egp_a().set_ok_handler([&](const OkMessage& ok) {
      ++oks;
      (void)ok;
    });
    // Consume K pairs instantly so memory never throttles.
    link.egp_b().set_ok_handler([](const OkMessage&) {});
    link.start();
    CreateRequest r;
    r.type = type;
    r.num_pairs = 500;
    r.min_fidelity = 0.55;
    r.priority = type == RequestType::kCreateKeep
                     ? Priority::kCreateKeep
                     : Priority::kMeasureDirectly;
    r.consecutive = true;
    r.store_in_memory = false;  // keep in comm qubit; B releases below
    link.egp_a().create(r);
    // Release delivered pairs as they come (simulating instant use).
    link.egp_a().set_ok_handler([&link, &oks](const OkMessage& ok) {
      ++oks;
      if (!ok.is_measure_directly) link.egp_a().release_delivered(ok);
    });
    link.egp_b().set_ok_handler([&link](const OkMessage& ok) {
      if (!ok.is_measure_directly) link.egp_b().release_delivered(ok);
    });
    link.run_for(sim::duration::seconds(5));
    return std::pair<std::uint64_t, std::uint64_t>(
        link.egp_a().stats().attempts, oks);
  };
  const auto [attempts_k, oks_k] = run(RequestType::kCreateKeep, 11);
  const auto [attempts_m, oks_m] = run(RequestType::kCreateMeasure, 11);
  EXPECT_GT(attempts_m, attempts_k * 5);
  EXPECT_GE(oks_m, oks_k);
}

TEST(Integration, TestRoundsFeedTheFeu) {
  LinkConfig cfg = make_config(hw::ScenarioParams::lab(), 21);
  cfg.test_round_probability = 0.2;
  Link link(cfg);
  std::vector<OkMessage> oks_a;
  std::vector<OkMessage> oks_b;
  link.egp_a().set_ok_handler([&](const OkMessage& ok) {
    oks_a.push_back(ok);
    if (!ok.is_measure_directly) link.egp_a().release_delivered(ok);
  });
  link.egp_b().set_ok_handler([&](const OkMessage& ok) {
    oks_b.push_back(ok);
    if (!ok.is_measure_directly) link.egp_b().release_delivered(ok);
  });
  link.start();

  CreateRequest r;
  r.type = RequestType::kCreateKeep;
  r.num_pairs = 40;
  r.min_fidelity = 0.6;
  r.priority = Priority::kCreateKeep;
  r.consecutive = true;
  r.store_in_memory = true;
  link.egp_a().create(r);
  link.run_for(sim::duration::seconds(40));

  EXPECT_GT(link.egp_a().stats().test_rounds, 0u);
  EXPECT_GT(link.egp_a().feu().test_rounds_recorded(), 0u);
  // Delivered pairs unaffected in count by interspersed tests.
  EXPECT_EQ(oks_a.size(), 40u);
  // Once all bases have samples the FEU's estimate becomes live and
  // plausible.
  if (const auto est = link.egp_a().feu().estimated_fidelity_from_tests()) {
    EXPECT_GT(*est, 0.3);
    EXPECT_LE(*est, 1.0);
  }
}

TEST(Integration, TeleportationOverDeliveredPair) {
  // SQ use case: use a delivered K pair to teleport an arbitrary qubit
  // state from A to B and verify B ends up with it.
  Link link(make_config(hw::ScenarioParams::lab(), 31));
  std::vector<OkMessage> oks_a;
  std::vector<OkMessage> oks_b;
  link.egp_a().set_ok_handler([&](const OkMessage& ok) { oks_a.push_back(ok); });
  link.egp_b().set_ok_handler([&](const OkMessage& ok) { oks_b.push_back(ok); });
  link.start();

  CreateRequest r;
  r.type = RequestType::kCreateKeep;
  r.num_pairs = 1;
  r.min_fidelity = 0.6;
  r.priority = Priority::kCreateKeep;
  r.consecutive = true;
  r.store_in_memory = true;
  link.egp_a().create(r);
  // Step in small increments and teleport promptly once the pair is
  // delivered (the carbon T2* is 3.5 ms, so even millisecond-scale idle
  // time costs visible fidelity).
  for (int i = 0; i < 100000 && oks_b.empty(); ++i) {
    link.run_for(sim::duration::microseconds(100));
  }
  ASSERT_EQ(oks_a.size(), 1u);
  ASSERT_EQ(oks_b.size(), 1u);

  auto& reg = link.registry();
  // A prepares a data qubit in a non-trivial state.
  const quantum::QubitId data = reg.create();
  const quantum::QubitId d1[] = {data};
  reg.apply_unitary(quantum::gates::ry(0.93), d1);
  const quantum::DensityMatrix target = reg.peek(d1);

  // Bell measurement at A on (data, A-half), then Pauli corrections at B.
  const quantum::QubitId qa = oks_a.front().qubit;
  const quantum::QubitId qb = oks_b.front().qubit;
  link.device_a().touch(qa);
  link.device_b().touch(qb);
  const quantum::QubitId pair[] = {data, qa};
  reg.apply_unitary(quantum::gates::cnot(), pair);
  reg.apply_unitary(quantum::gates::h(), d1);
  const int m1 = reg.measure(data, quantum::gates::Basis::kZ);
  const int m2 = reg.measure(qa, quantum::gates::Basis::kZ);
  const quantum::QubitId b1[] = {qb};
  // Delivered state is |Psi+> = X(B)|Phi+>: undo that X first, then the
  // standard teleportation corrections.
  reg.apply_unitary(quantum::gates::x(), b1);
  if (m2 == 1) reg.apply_unitary(quantum::gates::x(), b1);
  if (m1 == 1) reg.apply_unitary(quantum::gates::z(), b1);

  const quantum::DensityMatrix received = reg.peek(b1);
  // Fidelity of B's qubit to the prepared state: limited by link fidelity
  // but way above random (0.5).
  std::vector<quantum::Complex> target_vec{std::cos(0.93 / 2),
                                           std::sin(0.93 / 2)};
  EXPECT_GT(received.fidelity(target_vec), 0.6);
  reg.discard(data);
  reg.discard(qa);
}

TEST(Integration, WfqPrioritisesNlUnderMixedLoad) {
  // Mini Fig. 7: NL + MD competing; WFQ must cut NL latency vs FCFS.
  auto run = [](core::SchedulerKind kind) {
    LinkConfig cfg = make_config(hw::ScenarioParams::lab(), 41);
    cfg.scheduler.kind = kind;
    Link link(cfg);
    metrics::Collector collector;
    workload::WorkloadConfig wl;
    wl.nl = {0.5, 1};
    wl.md = {0.8, 3};
    wl.origin = workload::OriginMode::kAllA;
    wl.seed = 99;
    auto driver_ptr = workload::WorkloadDriver::for_link(
        link, wl.traffic(), wl.tuning(), collector);
    workload::WorkloadDriver& driver = *driver_ptr;
    link.start();
    driver.start();
    link.run_for(sim::duration::seconds(30));
    driver.stop();
    return collector.kind(Priority::kNetworkLayer).scaled_latency_s.mean();
  };
  const double fcfs = run(core::SchedulerKind::kFcfs);
  const double wfq = run(core::SchedulerKind::kWfq);
  // Strict NL priority cannot be slower than FCFS by more than noise.
  EXPECT_LT(wfq, fcfs * 1.5 + 0.05);
}

TEST(Integration, MemoryAdvertisementsFlowWhenEnabled) {
  LinkConfig cfg = make_config(hw::ScenarioParams::lab(), 51);
  cfg.mem_advert_interval = sim::duration::milliseconds(1);
  Link link(cfg);
  link.start();
  const auto sent_before = link.peer_channel().frames_sent();
  link.run_for(sim::duration::milliseconds(50));
  EXPECT_GT(link.peer_channel().frames_sent(), sent_before + 20);
}

}  // namespace
}  // namespace qlink
