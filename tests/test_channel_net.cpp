#include <gtest/gtest.h>

#include "net/channel.hpp"
#include "sim/simulator.hpp"

namespace qlink::net {
namespace {

TEST(ClassicalChannel, DeliversWithDelay) {
  sim::Simulator s;
  sim::Random rnd(1);
  ClassicalChannel chan(s, "c", 100, rnd, 0.0);
  sim::SimTime delivered_at = -1;
  std::vector<std::uint8_t> got;
  chan.set_receiver(1, [&](std::vector<std::uint8_t> b) {
    delivered_at = s.now();
    got = std::move(b);
  });
  chan.send_from(0, {1, 2, 3});
  s.run_all();
  EXPECT_EQ(delivered_at, 100);
  EXPECT_EQ(got, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(ClassicalChannel, Bidirectional) {
  sim::Simulator s;
  sim::Random rnd(2);
  ClassicalChannel chan(s, "c", 50, rnd, 0.0);
  int at0 = 0;
  int at1 = 0;
  chan.set_receiver(0, [&](std::vector<std::uint8_t>) { ++at0; });
  chan.set_receiver(1, [&](std::vector<std::uint8_t>) { ++at1; });
  chan.send_from(0, {9});
  chan.send_from(1, {8});
  s.run_all();
  EXPECT_EQ(at0, 1);
  EXPECT_EQ(at1, 1);
}

TEST(ClassicalChannel, PreservesOrderingPerDirection) {
  sim::Simulator s;
  sim::Random rnd(3);
  ClassicalChannel chan(s, "c", 10, rnd, 0.0);
  std::vector<std::uint8_t> order;
  chan.set_receiver(1, [&](std::vector<std::uint8_t> b) {
    order.push_back(b[0]);
  });
  for (std::uint8_t i = 0; i < 5; ++i) chan.send_from(0, {i});
  s.run_all();
  EXPECT_EQ(order, (std::vector<std::uint8_t>{0, 1, 2, 3, 4}));
}

TEST(ClassicalChannel, LossDropsApproximatelyTheConfiguredFraction) {
  sim::Simulator s;
  sim::Random rnd(4);
  ClassicalChannel chan(s, "c", 1, rnd, 0.25);
  int received = 0;
  chan.set_receiver(1, [&](std::vector<std::uint8_t>) { ++received; });
  const int n = 20000;
  for (int i = 0; i < n; ++i) chan.send_from(0, {0});
  s.run_all();
  EXPECT_NEAR(static_cast<double>(received) / n, 0.75, 0.02);
  EXPECT_EQ(chan.frames_sent(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(chan.frames_dropped() + chan.frames_delivered(),
            static_cast<std::uint64_t>(n));
}

TEST(ClassicalChannel, ZeroLossDeliversEverything) {
  sim::Simulator s;
  sim::Random rnd(5);
  ClassicalChannel chan(s, "c", 1, rnd, 0.0);
  int received = 0;
  chan.set_receiver(1, [&](std::vector<std::uint8_t>) { ++received; });
  for (int i = 0; i < 100; ++i) chan.send_from(0, {0});
  s.run_all();
  EXPECT_EQ(received, 100);
  EXPECT_EQ(chan.frames_dropped(), 0u);
}

TEST(ClassicalChannel, FullLossDropsEverything) {
  sim::Simulator s;
  sim::Random rnd(6);
  ClassicalChannel chan(s, "c", 1, rnd, 1.0);
  int received = 0;
  chan.set_receiver(1, [&](std::vector<std::uint8_t>) { ++received; });
  for (int i = 0; i < 100; ++i) chan.send_from(0, {0});
  s.run_all();
  EXPECT_EQ(received, 0);
}

TEST(ClassicalChannel, UnconnectedEndpointDiscardsSilently) {
  sim::Simulator s;
  sim::Random rnd(7);
  ClassicalChannel chan(s, "c", 1, rnd, 0.0);
  chan.send_from(0, {1});
  EXPECT_NO_THROW(s.run_all());
}

TEST(ClassicalChannel, InvalidEndpointThrows) {
  sim::Simulator s;
  sim::Random rnd(8);
  ClassicalChannel chan(s, "c", 1, rnd, 0.0);
  EXPECT_THROW(chan.send_from(2, {1}), std::invalid_argument);
}

TEST(ClassicalChannel, LossProbabilityAdjustableAtRuntime) {
  sim::Simulator s;
  sim::Random rnd(9);
  ClassicalChannel chan(s, "c", 1, rnd, 0.0);
  int received = 0;
  chan.set_receiver(1, [&](std::vector<std::uint8_t>) { ++received; });
  chan.send_from(0, {0});
  chan.set_loss_probability(1.0);
  chan.send_from(0, {0});
  s.run_all();
  EXPECT_EQ(received, 1);
}

}  // namespace
}  // namespace qlink::net
