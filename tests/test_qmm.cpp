#include <gtest/gtest.h>

#include "core/qmm.hpp"
#include "hw/nv_device.hpp"
#include "sim/simulator.hpp"

namespace qlink::core {
namespace {

class QmmTest : public ::testing::Test {
 protected:
  QmmTest() {
    params_.num_memory_qubits = 2;
    device_ = std::make_unique<hw::NvDevice>(sim_, "nv", params_, registry_);
    qmm_ = std::make_unique<QuantumMemoryManager>(*device_);
  }

  sim::Simulator sim_;
  sim::Random random_{1};
  quantum::QuantumRegistry registry_{random_};
  hw::NvParams params_;
  std::unique_ptr<hw::NvDevice> device_;
  std::unique_ptr<QuantumMemoryManager> qmm_;
};

TEST_F(QmmTest, TracksMemorySlots) {
  EXPECT_EQ(qmm_->total_memory_slots(), 2);
  EXPECT_EQ(qmm_->free_memory_slots(), 2);
  const auto a = qmm_->reserve_memory();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(qmm_->free_memory_slots(), 1);
  const auto b = qmm_->reserve_memory();
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(*a, *b);
  EXPECT_EQ(qmm_->free_memory_slots(), 0);
  EXPECT_FALSE(qmm_->reserve_memory().has_value());
  qmm_->release_memory(*a);
  EXPECT_EQ(qmm_->free_memory_slots(), 1);
  // The freed slot is reused.
  EXPECT_EQ(qmm_->reserve_memory(), a);
}

TEST_F(QmmTest, CommReservationIsExclusive) {
  EXPECT_TRUE(qmm_->comm_free());
  EXPECT_TRUE(qmm_->reserve_comm());
  EXPECT_FALSE(qmm_->comm_free());
  EXPECT_FALSE(qmm_->reserve_comm());
  qmm_->release_comm();
  EXPECT_TRUE(qmm_->reserve_comm());
}

TEST_F(QmmTest, LogicalToPhysicalTranslation) {
  // Section 4.5: the QMM translates logical qubit ids to physical ones.
  EXPECT_EQ(qmm_->physical_comm_qubit(), device_->comm_qubit());
  EXPECT_EQ(qmm_->physical_memory_qubit(0), device_->memory_qubit(0));
  EXPECT_EQ(qmm_->physical_memory_qubit(1), device_->memory_qubit(1));
  EXPECT_THROW(qmm_->physical_memory_qubit(7), std::out_of_range);
}

TEST_F(QmmTest, ReleaseOutOfRangeThrows) {
  EXPECT_THROW(qmm_->release_memory(5), std::out_of_range);
}

TEST_F(QmmTest, ZeroMemoryDevice) {
  hw::NvParams p;
  p.num_memory_qubits = 0;
  hw::NvDevice dev(sim_, "nv0", p, registry_);
  QuantumMemoryManager qmm(dev);
  EXPECT_EQ(qmm.total_memory_slots(), 0);
  EXPECT_FALSE(qmm.reserve_memory().has_value());
}

}  // namespace
}  // namespace qlink::core
