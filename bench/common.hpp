#pragma once

#include <cstdio>
#include <optional>
#include <string>

#include "metrics/collector.hpp"
#include "workload/workload.hpp"

/// \file common.hpp
/// Shared harness for the reproduction benches: configure a Link +
/// WorkloadDriver, run it for a span of simulated time, and hand back the
/// collector. Each bench binary regenerates one table/figure of the
/// paper (see DESIGN.md's experiment index).
///
/// Live telemetry (`--monitor PATH`, ISSUE 7): the routing benches
/// (bench_grid_routing, bench_admission) attach an obs::Monitor to each
/// run and stream one JSONL record per 100 ms of *simulated* time —
/// counter deltas, rates, backlog, histogram deltas, stall-watchdog
/// flags. The monitor is polled from the run loop and never touches the
/// event heap or RNG, so records are byte-identical across same-seed
/// runs and attaching one cannot change any bench number. `--monitor`
/// only selects where the records are written; the derived scalars
/// (`stalled_intervals`, `peak_backlog`) always land in the bench JSON,
/// and tools/monitor_check.py validates the stream's invariants in CI.

namespace qlink::bench {

struct RunSpec {
  hw::ScenarioParams scenario = hw::ScenarioParams::lab();
  workload::WorkloadConfig workload;
  core::SchedulerConfig scheduler;
  double classical_loss = 0.0;
  std::uint64_t seed = 1;
  double simulated_seconds = 10.0;
  double test_round_probability = 0.0;
};

struct RunResult {
  metrics::Collector collector;
  core::Egp::Stats stats_a;
  core::Egp::Stats stats_b;
  double mean_heralded_fidelity = 0.0;
  std::uint64_t dqp_retransmissions = 0;
};

inline RunResult run_scenario(const RunSpec& spec) {
  core::LinkConfig link_cfg;
  link_cfg.scenario = spec.scenario;
  link_cfg.scenario.classical_loss_prob = spec.classical_loss;
  link_cfg.seed = spec.seed;
  link_cfg.scheduler = spec.scheduler;
  link_cfg.test_round_probability = spec.test_round_probability;
  core::Link link(link_cfg);

  RunResult result;
  workload::WorkloadDriver driver(link, spec.workload, result.collector);
  link.start();
  driver.start();
  link.run_for(sim::duration::seconds(spec.simulated_seconds));
  driver.stop();

  result.stats_a = link.egp_a().stats();
  result.stats_b = link.egp_b().stats();
  result.mean_heralded_fidelity = link.station().mean_heralded_fidelity();
  result.dqp_retransmissions = link.egp_a().queue().retransmissions() +
                               link.egp_b().queue().retransmissions();
  return result;
}

inline const char* kind_name(core::Priority p) {
  return core::priority_name(p);
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace qlink::bench
