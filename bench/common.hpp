#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "metrics/collector.hpp"
#include "workload/workload.hpp"

/// \file common.hpp
/// Shared harness for the reproduction benches: configure a Link +
/// WorkloadDriver, run it for a span of simulated time, and hand back the
/// collector. Each bench binary regenerates one table/figure of the
/// paper (see DESIGN.md's experiment index).
///
/// Live telemetry (`--monitor PATH`, ISSUE 7): the routing benches
/// (bench_grid_routing, bench_admission) attach an obs::Monitor to each
/// run and stream one JSONL record per 100 ms of *simulated* time —
/// counter deltas, rates, backlog, histogram deltas, stall-watchdog
/// flags. The monitor is polled from the run loop and never touches the
/// event heap or RNG, so records are byte-identical across same-seed
/// runs and attaching one cannot change any bench number. `--monitor`
/// only selects where the records are written; the derived scalars
/// (`stalled_intervals`, `peak_backlog`) always land in the bench JSON,
/// and tools/monitor_check.py validates the stream's invariants in CI.

namespace qlink::bench {

/// Shared command-line flags (ISSUE 9): every observability-aware bench
/// accepts the same six flags with the same spelling and semantics, and
/// parses them through this one implementation. A bench's argv loop
/// calls consume() first and falls through to its own flags only when
/// the argument is not one of ours:
///
///   bench::Args shared;
///   for (int i = 1; i < argc; ++i) {
///     if (shared.consume(argc, argv, i, [&] { usage(argv[0]); }))
///       continue;
///     ... bench-specific flags ...
///   }
///
/// Help text: embed Args::kUsage in the bench's usage() line so every
/// binary advertises the shared flags identically.
struct Args {
  std::uint64_t seed = 7;
  std::string json_path;      // "-" = stdout; empty = bench's default
  std::string trace_path;     // empty = tracing off
  std::string monitor_path;   // empty = keep records in memory only
  std::string netstate_path;  // empty = keep records in memory only
  std::string report_path;    // empty = no Markdown report

  static constexpr const char* kUsage =
      "[--seed K] [--json PATH|-] [--trace PATH] [--monitor PATH] "
      "[--netstate PATH] [--report PATH]";

  /// Consume argv[i] (and its value) if it is a shared flag; advances
  /// i past the value and returns true on success. `usage` must not
  /// return (print help and exit).
  template <typename Usage>
  bool consume(int argc, char** argv, int& i, Usage&& usage) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);  // unreachable: usage() exits
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--monitor") {
      monitor_path = next();
    } else if (arg == "--netstate") {
      netstate_path = next();
    } else if (arg == "--report") {
      report_path = next();
    } else {
      return false;
    }
    return true;
  }
};

struct RunSpec {
  hw::ScenarioParams scenario = hw::ScenarioParams::lab();
  workload::WorkloadConfig workload;
  core::SchedulerConfig scheduler;
  double classical_loss = 0.0;
  std::uint64_t seed = 1;
  double simulated_seconds = 10.0;
  double test_round_probability = 0.0;
};

struct RunResult {
  metrics::Collector collector;
  core::Egp::Stats stats_a;
  core::Egp::Stats stats_b;
  double mean_heralded_fidelity = 0.0;
  std::uint64_t dqp_retransmissions = 0;
};

inline RunResult run_scenario(const RunSpec& spec) {
  core::LinkConfig link_cfg;
  link_cfg.scenario = spec.scenario;
  link_cfg.scenario.classical_loss_prob = spec.classical_loss;
  link_cfg.seed = spec.seed;
  link_cfg.scheduler = spec.scheduler;
  link_cfg.test_round_probability = spec.test_round_probability;
  core::Link link(link_cfg);

  RunResult result;
  auto driver_ptr = workload::WorkloadDriver::for_link(
      link, spec.workload.traffic(), spec.workload.tuning(), result.collector);
  workload::WorkloadDriver& driver = *driver_ptr;
  link.start();
  driver.start();
  link.run_for(sim::duration::seconds(spec.simulated_seconds));
  driver.stop();

  result.stats_a = link.egp_a().stats();
  result.stats_b = link.egp_b().stats();
  result.mean_heralded_fidelity = link.station().mean_heralded_fidelity();
  result.dqp_retransmissions = link.egp_a().queue().retransmissions() +
                               link.egp_b().queue().retransmissions();
  return result;
}

inline const char* kind_name(core::Priority p) {
  return core::priority_name(p);
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace qlink::bench
