// Reproduces Table 5 / Section 6.1: robustness against classical control
// message loss. We sweep the frame-loss probability from 1e-10 up to the
// exaggerated 1e-4 (and a punishing 1e-3) and report the relative
// difference of fidelity, throughput, scaled latency and delivered-pair
// count against the lossless baseline.

#include <cstdio>
#include <vector>

#include "common.hpp"

namespace {

using namespace qlink;
using core::Priority;

struct Row {
  double fidelity = 0.0;
  double throughput = 0.0;
  double latency = 0.0;
  double pairs = 0.0;
  std::uint64_t expires = 0;
  std::uint64_t retransmissions = 0;
};

Row run(double loss, Priority kind, double seconds) {
  bench::RunSpec spec;
  spec.scenario = hw::ScenarioParams::lab();
  spec.classical_loss = loss;
  switch (kind) {
    case Priority::kNetworkLayer:
      spec.workload.nl = {0.99, 3};
      break;
    case Priority::kCreateKeep:
      spec.workload.ck = {0.99, 3};
      break;
    case Priority::kMeasureDirectly:
      spec.workload.md = {0.99, 3};
      break;
  }
  spec.workload.origin = workload::OriginMode::kRandom;
  spec.workload.min_fidelity = 0.64;
  spec.workload.seed = 5;
  spec.seed = 9;
  spec.simulated_seconds = seconds;
  const auto result = bench::run_scenario(spec);

  Row row;
  const auto& km = result.collector.kind(kind);
  row.fidelity = kind == Priority::kMeasureDirectly
                     ? result.collector.fidelity_from_qber().value_or(0.0)
                     : km.fidelity.mean();
  row.throughput = result.collector.throughput(kind);
  row.latency = km.scaled_latency_s.mean();
  row.pairs = static_cast<double>(km.pairs_delivered);
  row.expires = result.collector.total_expires();
  row.retransmissions = result.dqp_retransmissions;
  return row;
}

}  // namespace

int main() {
  bench::print_header(
      "Table 5 / Section 6.1 -- robustness under classical frame loss\n"
      "Max relative difference vs lossless baseline, over NL/CK/MD runs\n"
      "(Lab, f = 0.99, k_max = 3)");

  const double kSeconds = 15.0;
  const Priority kinds[] = {Priority::kNetworkLayer, Priority::kCreateKeep,
                            Priority::kMeasureDirectly};
  std::vector<Row> baseline;
  for (Priority k : kinds) baseline.push_back(run(0.0, k, kSeconds));

  std::printf("%9s | %10s %10s %10s %10s | %8s %8s\n", "p_loss", "RD fid",
              "RD thrpt", "RD laten", "RD pairs", "expires", "retrans");
  for (double loss : {1e-10, 1e-8, 1e-6, 1e-5, 1e-4, 1e-3}) {
    double rd_f = 0.0;
    double rd_t = 0.0;
    double rd_l = 0.0;
    double rd_p = 0.0;
    std::uint64_t expires = 0;
    std::uint64_t retrans = 0;
    for (std::size_t i = 0; i < 3; ++i) {
      const Row row = run(loss, kinds[i], kSeconds);
      rd_f = std::max(rd_f, metrics::relative_difference(
                                row.fidelity, baseline[i].fidelity));
      rd_t = std::max(rd_t, metrics::relative_difference(
                                row.throughput, baseline[i].throughput));
      rd_l = std::max(rd_l, metrics::relative_difference(
                                row.latency, baseline[i].latency));
      rd_p = std::max(rd_p, metrics::relative_difference(
                                row.pairs, baseline[i].pairs));
      expires += row.expires;
      retrans += row.retransmissions;
    }
    std::printf("%9.0e | %10.3f %10.3f %10.3f %10.3f | %8llu %8llu\n", loss,
                rd_f, rd_t, rd_l, rd_p,
                static_cast<unsigned long long>(expires),
                static_cast<unsigned long long>(retrans));
  }
  std::printf(
      "\nExpected shape (Table 5): fidelity/throughput/pair-count relative\n"
      "differences stay in the few-percent range up to 1e-4 (latency is\n"
      "noisier); recovery machinery (retransmissions, EXPIREs) engages as\n"
      "loss grows but the service stays up.\n");
  return 0;
}
