// Ablation (DESIGN.md): emission multiplexing for M-type attempts
// (Section 5.1.1 / 5.2.5). With multiplexing the MHP may attempt every
// cycle without waiting for the previous REPLY; without it, each attempt
// blocks on the round trip to the station. The gain scales with the
// REPLY delay, so it is dramatic on QL2020 and negligible in the Lab.

#include <cstdio>

#include "common.hpp"

namespace {

using namespace qlink;
using core::Priority;

double throughput(const hw::ScenarioParams& scenario, bool multiplex,
                  double seconds) {
  core::LinkConfig cfg;
  cfg.scenario = scenario;
  cfg.seed = 404;
  cfg.emission_multiplexing = multiplex;
  core::Link link(cfg);
  metrics::Collector collector;
  workload::WorkloadConfig wl;
  wl.md = {0.99, 3};
  wl.origin = workload::OriginMode::kRandom;
  wl.min_fidelity = 0.64;
  wl.seed = 7;
  auto driver_ptr =
      workload::WorkloadDriver::for_link(link, wl.traffic(), wl.tuning(),
                                         collector);
  workload::WorkloadDriver& driver = *driver_ptr;
  link.start();
  driver.start();
  link.run_for(sim::duration::seconds(seconds));
  driver.stop();
  return collector.throughput(Priority::kMeasureDirectly);
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation -- emission multiplexing for MD (Section 5.1.1)\n"
      "MD stream at f = 0.99, F_min = 0.64; attempts per cycle vs one\n"
      "outstanding attempt at a time");
  const double kSeconds = 15.0;
  std::printf("%-8s | %14s %14s | %8s\n", "scenario", "T multiplexed",
              "T blocking", "gain");
  for (const hw::ScenarioParams& scenario :
       {hw::ScenarioParams::lab(), hw::ScenarioParams::ql2020()}) {
    const double on = throughput(scenario, true, kSeconds);
    const double off = throughput(scenario, false, kSeconds);
    std::printf("%-8s | %14.3f %14.3f | %7.1fx\n", scenario.name.c_str(),
                on, off, off > 0 ? on / off : 0.0);
  }
  std::printf(
      "\nExpected shape: ~1x in the Lab (REPLY returns within the cycle),\n"
      "an order of magnitude on QL2020 (145 us round trip vs the 10.12 us\n"
      "cycle) -- the reason Section 5.2.5 allows polling ahead of the\n"
      "REPLY for the MD use case.\n");
  return 0;
}
