// Reproduces Figure 7: request latency over time for two scheduling
// strategies under a mixed load dominated by NL requests
// (f_NL = 0.99*4/5, f_CK = f_MD = 0.99*1/5). Strict NL priority (WFQ)
// must cap the NL latency relative to FCFS.

#include <cstdio>
#include <map>
#include <vector>

#include "common.hpp"

namespace {

using namespace qlink;
using core::Priority;

struct Series {
  std::map<int, metrics::RunningStat> by_bucket;  // bucket = sim second
};

void run(core::SchedulerKind kind, double seconds,
         std::map<Priority, Series>& out, double& nl_mean,
         double& md_mean) {
  core::LinkConfig cfg;
  cfg.scenario = hw::ScenarioParams::lab();
  cfg.seed = 77;
  cfg.scheduler.kind = kind;
  core::Link link(cfg);
  metrics::Collector collector;
  workload::WorkloadConfig wl;
  wl.nl = {0.99 * 4.0 / 5.0, 3};
  wl.ck = {0.99 * 1.0 / 5.0, 3};
  wl.md = {0.99 * 1.0 / 5.0, 3};
  wl.origin = workload::OriginMode::kRandom;
  wl.seed = 7;
  auto driver_ptr =
      workload::WorkloadDriver::for_link(link, wl.traffic(), wl.tuning(),
                                         collector);
  workload::WorkloadDriver& driver = *driver_ptr;

  // Latency-over-time series: snapshot the collector's running stats
  // each simulated second and difference them.
  link.start();
  driver.start();
  for (int s = 0; s < static_cast<int>(seconds); ++s) {
    const auto before_nl =
        collector.kind(Priority::kNetworkLayer).request_latency_s;
    const auto before_md =
        collector.kind(Priority::kMeasureDirectly).request_latency_s;
    link.run_for(sim::duration::seconds(1));
    const auto& after_nl =
        collector.kind(Priority::kNetworkLayer).request_latency_s;
    const auto& after_md =
        collector.kind(Priority::kMeasureDirectly).request_latency_s;
    // Mean latency of requests completing within this second
    // (difference of running sums).
    auto bucket_mean = [](const metrics::RunningStat& before,
                          const metrics::RunningStat& after) {
      const double n = static_cast<double>(after.count() - before.count());
      if (n <= 0) return -1.0;
      return (after.mean() * static_cast<double>(after.count()) -
              before.mean() * static_cast<double>(before.count())) /
             n;
    };
    const double nl = bucket_mean(before_nl, after_nl);
    const double md = bucket_mean(before_md, after_md);
    if (nl >= 0) out[Priority::kNetworkLayer].by_bucket[s].add(nl);
    if (md >= 0) out[Priority::kMeasureDirectly].by_bucket[s].add(md);
  }
  driver.stop();
  nl_mean = collector.kind(Priority::kNetworkLayer).request_latency_s.mean();
  md_mean =
      collector.kind(Priority::kMeasureDirectly).request_latency_s.mean();
}

}  // namespace

int main() {
  using namespace qlink;
  bench::print_header(
      "Figure 7 -- request latency vs time, FCFS vs strict-NL WFQ\n"
      "Lab, f_NL = 0.99*4/5, f_CK = f_MD = 0.99*1/5, k_max = 3");

  const double kSeconds = 30.0;
  std::map<Priority, Series> fcfs;
  std::map<Priority, Series> wfq;
  double fcfs_nl;
  double fcfs_md;
  double wfq_nl;
  double wfq_md;
  run(core::SchedulerKind::kFcfs, kSeconds, fcfs, fcfs_nl, fcfs_md);
  run(core::SchedulerKind::kWfq, kSeconds, wfq, wfq_nl, wfq_md);

  std::printf("%6s | %12s %12s | %12s %12s\n", "t (s)", "FCFS NL (s)",
              "FCFS MD (s)", "WFQ NL (s)", "WFQ MD (s)");
  for (int s = 0; s < static_cast<int>(kSeconds); s += 3) {
    auto cell = [&](std::map<Priority, Series>& m, Priority p) {
      const auto& buckets = m[p].by_bucket;
      const auto it = buckets.find(s);
      return it == buckets.end() ? -1.0 : it->second.mean();
    };
    std::printf("%6d | %12.3f %12.3f | %12.3f %12.3f\n", s,
                cell(fcfs, Priority::kNetworkLayer),
                cell(fcfs, Priority::kMeasureDirectly),
                cell(wfq, Priority::kNetworkLayer),
                cell(wfq, Priority::kMeasureDirectly));
  }
  std::printf("\nOverall mean request latency:\n");
  std::printf("  FCFS: NL %.3f s, MD %.3f s\n", fcfs_nl, fcfs_md);
  std::printf("  WFQ : NL %.3f s, MD %.3f s\n", wfq_nl, wfq_md);
  std::printf(
      "Expected shape: WFQ's strict NL priority lowers/caps NL latency\n"
      "relative to FCFS at the cost of MD latency (Fig. 7).\n");
  return 0;
}
