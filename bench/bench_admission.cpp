// Scheduler-grade admission bench (ISSUE 5): the PR-4 queue-blind
// policy vs deferred-window + batch admission, on grid and dragonfly
// contention scenarios.
//
// Each scenario picks node-disjoint multi-hop corridors on the
// topology. On every corridor, two "head" requests lease its first
// edge (a) and its remaining edges (b) with staggered windows
// (head_b asks for more pairs, so its lease ends later), and a
// "waiter" wants the whole corridor — it can only start once *both*
// windows have opened. On the first corridor a long "newcomer"
// arrives between the two lease ends, wanting edge a only.
//
//  pr4    defer_admission = batch_admission = false: the waiter parks
//         blind in the blocked queue. When edge a's lease lapses the
//         waiter still cannot start (b is busy), so a sits free until
//         the newcomer snatches it for a long window — a queue jump
//         ("steal") that pushes the waiter's admission past the
//         newcomer's whole lease, while edge b sits idle: the
//         coordination loss of blind queueing.
//  sched  defer_admission = batch_admission = true: the waiter books
//         the earliest window in which a AND b are both free
//         (ReservationTable::earliest_window) the moment it fails to
//         admit. The newcomer's instant window would overlap that
//         booking, so it defers behind it instead of jumping the
//         queue. The waiter starts exactly when b frees; nobody
//         queues blind (steals = 0).
//
// Corridors beyond the first see no newcomer: they behave identically
// under both policies (their waiters admit at the same wakeup, batch
// style), pinning down that the gains come from the contended
// corridor alone. The JSON carries per-row admission-wait stats plus
// the summary scalars `mean_admission_wait_gain` (pr4 mean admission
// wait minus sched's, averaged over scenarios, sim-seconds) and
// `hol_blocking_reduction` (relative reduction in queue jumps);
// CI's bench_diff gate requires both strictly positive.
//
// Usage: bench_admission [--scenario grid|dragonfly|all]
//          [--lease-slack S] [--cap-seconds S] [--backend dense|bell]
//          [--seed K] [--json PATH|-] [--monitor PATH]
//          [--netstate PATH] [--report PATH]
//   --monitor writes every run's interval telemetry (obs::Monitor,
//   ISSUE 7) as one JSONL file; records carry a "scenario/mode" run
//   label (e.g. "grid/pr4") so tools/monitor_check.py validates each
//   of the four runs separately. Monitors are always attached (they
//   cannot perturb the trajectory); per-run stalled_intervals and
//   peak_backlog land in the JSON rows and as summed/max'd top-level
//   scalars for the CI gate.
//   --netstate writes every run's per-edge network-state stream
//   (obs::NetState, ISSUE 8) as "scenario/mode"-labelled JSONL,
//   validated in CI by tools/netstate_check.py; the run-wide max
//   per-edge utilization lands in the hot_edge_max_utilization scalar.
//   --report writes a Markdown run report (obs::report) with summary
//   counters, hot edges, contention, and latency phase decomposition.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "metrics/edge_stats.hpp"
#include "netlayer/swap_service.hpp"
#include "netlayer/topology.hpp"
#include "obs/monitor.hpp"
#include "obs/netstate.hpp"
#include "obs/report.hpp"
#include "qstate/backend_registry.hpp"
#include "routing/router.hpp"

using namespace qlink;
using namespace qlink::bench;

namespace {

struct Options {
  std::string scenario = "all";
  // < 1 so leases lapse before holders finish: admission is governed
  // by the lease calendar, the regime deferred booking schedules.
  double lease_slack = 0.5;
  double cap_seconds = 120.0;
  std::uint16_t head_a_pairs = 4;
  std::uint16_t head_b_pairs = 8;
  std::uint16_t waiter_pairs = 2;
  std::uint16_t newcomer_pairs = 16;
  qstate::BackendKind backend = qstate::BackendKind::kBellDiagonal;
  std::uint64_t seed = 7;
  std::string json_path = "BENCH_admission.json";
  std::string monitor_path;  // empty = keep records in memory only
  std::string netstate_path;  // empty = keep records in memory only
  std::string report_path;    // empty = no Markdown report
};

struct Row {
  const char* scenario = "grid";
  const char* mode = "pr4";
  const char* backend = "bell-diagonal";
  std::size_t nodes = 0;
  std::size_t links = 0;
  std::size_t corridors = 0;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t blocked = 0;
  std::uint64_t deferred = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t delivered = 0;
  std::uint64_t steals = 0;
  std::uint64_t hol_holds = 0;
  std::uint64_t batch_admits = 0;
  std::uint64_t lease_expiries = 0;
  double deferred_wait_total_s = 0.0;
  double mean_admission_wait_s = 0.0;
  double max_admission_wait_s = 0.0;
  double p50_admission_wait_s = 0.0;
  double p99_admission_wait_s = 0.0;
  double p99_request_latency_s = 0.0;
  double completion_rate = 0.0;
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  // Interval telemetry (ISSUE 7); every admission run is monitored.
  std::uint64_t stalled_intervals = 0;
  std::uint64_t peak_backlog = 0;
  std::string monitor_jsonl;
  // Per-edge network state (ISSUE 8); sampled on every run.
  double max_utilization = 0.0;
  std::string netstate_jsonl;
  std::string report_md;
};

double wall_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Up to `want` mutually node-disjoint shortest corridors of >= 2 hops,
/// scanned in deterministic node order.
std::vector<routing::Path> pick_corridors(const routing::PathSelector& sel,
                                          const routing::Graph& graph,
                                          std::size_t want) {
  std::vector<routing::Path> out;
  std::vector<char> used(graph.num_nodes(), 0);
  for (std::uint32_t u = 0; u < graph.num_nodes() && out.size() < want;
       ++u) {
    for (std::uint32_t v = u + 1;
         v < graph.num_nodes() && out.size() < want; ++v) {
      const auto path = sel.shortest(u, v);
      if (!path || path->hops() < 2) continue;
      bool clean = true;
      for (const std::uint32_t n : path->nodes) {
        if (used[n]) {
          clean = false;
          break;
        }
      }
      if (!clean) continue;
      for (const std::uint32_t n : path->nodes) used[n] = 1;
      out.push_back(*path);
    }
  }
  return out;
}

/// The sub-walk of `path` spanning node positions [from, to].
routing::Path subpath(const routing::Path& path, std::size_t from,
                      std::size_t to) {
  routing::Path out;
  out.nodes.assign(path.nodes.begin() + static_cast<std::ptrdiff_t>(from),
                   path.nodes.begin() + static_cast<std::ptrdiff_t>(to) + 1);
  out.edges.assign(path.edges.begin() + static_cast<std::ptrdiff_t>(from),
                   path.edges.begin() + static_cast<std::ptrdiff_t>(to));
  return out;
}

Row run_mode(const Options& opt, const char* scenario, const char* mode,
             bool scheduler) {
  routing::Graph graph = scenario == std::string("grid")
                             ? routing::Graph::grid(3, 3)
                             : routing::Graph::dragonfly(3, 3);
  const std::size_t want_corridors =
      scenario == std::string("grid") ? 3 : 2;

  netlayer::NetworkConfig nc = routing::make_network_config(
      graph, core::LinkConfig{}, opt.seed);
  nc.link.backend = opt.backend;
  nc.link.pauli_twirl_installs =
      opt.backend == qstate::BackendKind::kBellDiagonal;
  nc.link.scenario = hw::ScenarioParams::lab();
  // Decoherence-protected carbon memory ([82]): waiters hold their
  // first pairs across the slower hop's window.
  nc.link.scenario.nv.carbon_t2_ns = 5e9;
  nc.link.scenario.nv.carbon_coupling_rad_per_s /= 10.0;
  const auto net = std::make_unique<netlayer::QuantumNetwork>(nc);
  metrics::Collector collector;
  const auto swap =
      std::make_unique<netlayer::SwapService>(*net, &collector);

  routing::RouterConfig rc;
  rc.cost = routing::CostModel::kHopCount;
  rc.k_candidates = 1;  // corridors are pinned; keep admission exact
  rc.lease_slack = opt.lease_slack;
  rc.defer_admission = scheduler;
  rc.batch_admission = scheduler;
  routing::Router router(graph, *net, *swap, rc, &collector);
  metrics::EdgeStats edge_stats(graph.num_edges(), graph.num_nodes());
  router.set_edge_stats(&edge_stats);
  const double menu[] = {0.7};
  router.annotate_from_network(menu);

  router.set_deliver_handler(
      [&swap](const netlayer::E2eOk& ok) { swap->release(ok); });

  const std::vector<routing::Path> corridors =
      pick_corridors(router.selector(), router.graph(), want_corridors);
  if (corridors.empty()) {
    std::fprintf(stderr, "no corridor on %s\n", scenario);
    std::exit(1);
  }

  const auto request = [&opt](std::uint32_t src, std::uint32_t dst,
                              std::uint16_t pairs) {
    netlayer::E2eRequest req;
    req.src = src;
    req.dst = dst;
    req.num_pairs = pairs;
    req.min_fidelity = 0.25;
    req.link_min_fidelity = 0.7;
    (void)opt;
    return req;
  };

  // Construct the sampler before any submission: its baseline snapshot
  // must predate the first lease so the per-interval deltas sum to the
  // final cumulative table (netstate_check.py reconciles exactly that).
  obs::NetStateConfig nsc;
  nsc.run = std::string(scenario) + "/" + mode;
  obs::NetState netstate(net->simulator(), edge_stats, std::move(nsc));
  netstate.attach_collector(&collector);
  netstate.attach_graph(&graph);

  net->start();
  std::uint64_t expected = 0;
  for (std::size_t c = 0; c < corridors.size(); ++c) {
    const routing::Path& corridor = corridors[c];
    const routing::Path head_a = subpath(corridor, 0, 1);
    const routing::Path head_b =
        subpath(corridor, 1, corridor.nodes.size() - 1);

    const auto req_a =
        request(head_a.src(), head_a.dst(), opt.head_a_pairs);
    const auto req_b =
        request(head_b.src(), head_b.dst(), opt.head_b_pairs);
    router.submit_on(req_a, head_a);
    router.submit_on(req_b, head_b);
    router.submit_on(request(corridor.src(), corridor.dst(),
                             opt.waiter_pairs),
                     corridor);
    expected += 3;

    if (c == 0) {
      // The contended corridor: a long newcomer for edge a lands
      // between the two head leases' ends — exactly when a is free
      // but the waiter still cannot start.
      const sim::SimTime t1 = router.lease_duration(head_a, req_a);
      const sim::SimTime t2 = router.lease_duration(head_b, req_b);
      const sim::SimTime tn = t1 + (t2 - t1) / 2;
      net->simulator().schedule_at(
          tn, [&router, &request, head_a, pairs = opt.newcomer_pairs] {
            router.submit_on(
                request(head_a.src(), head_a.dst(), pairs), head_a);
          });
      expected += 1;
    }
  }

  obs::MonitorConfig mc;
  mc.run = std::string(scenario) + "/" + mode;
  mc.target_requests = expected;
  obs::Monitor monitor(net->simulator(), collector, std::move(mc));
  monitor.attach_router(&router);

  const auto start = std::chrono::steady_clock::now();
  const auto& stats = router.stats();
  while (stats.completed + stats.failed < expected &&
         sim::to_seconds(net->simulator().now()) < opt.cap_seconds) {
    net->run_for(sim::duration::milliseconds(10));
    monitor.poll();
    netstate.poll();
  }
  monitor.finish();
  netstate.finish();

  Row row;
  row.scenario = scenario;
  row.mode = mode;
  row.backend = net->registry().backend().name();
  row.nodes = net->num_nodes();
  row.links = net->num_links();
  row.corridors = corridors.size();
  row.submitted = stats.submitted;
  row.admitted = stats.admitted;
  row.blocked = stats.blocked;
  row.deferred = stats.deferred;
  row.completed = stats.completed;
  row.failed = stats.failed;
  row.delivered = stats.pairs_delivered;
  row.steals = router.reservations().steals();
  row.hol_holds = router.reservations().hol_holds();
  row.batch_admits = router.reservations().batch_admits();
  row.lease_expiries = router.reservations().lease_expiries();
  row.deferred_wait_total_s = sim::to_seconds(stats.deferred_wait_total);
  row.mean_admission_wait_s = collector.admission_wait().mean();
  row.max_admission_wait_s = collector.admission_wait().max();
  row.p50_admission_wait_s = collector.admission_wait_hist().p50();
  row.p99_admission_wait_s = collector.admission_wait_hist().p99();
  row.p99_request_latency_s = collector.request_latency_hist().p99();
  row.completion_rate = static_cast<double>(stats.completed) /
                        static_cast<double>(expected);
  row.sim_seconds = sim::to_seconds(net->simulator().now());
  row.wall_seconds = wall_since(start);
  row.events = net->simulator().events_processed();
  row.stalled_intervals = monitor.stalled_intervals();
  row.peak_backlog = monitor.peak_backlog();
  row.monitor_jsonl = monitor.jsonl();
  row.max_utilization = netstate.max_utilization();
  row.netstate_jsonl = netstate.jsonl();
  obs::RunReportOptions ro;
  ro.title = std::string(scenario) + "/" + mode + " (" +
             (scheduler ? "scheduler admission" : "queue-blind") + ")";
  row.report_md = obs::render_run_report(net->simulator(), edge_stats,
                                         collector, &graph, ro);
  return row;
}

void print_row(const Row& r) {
  std::printf(
      "%-10s %-6s %5llu %5llu %5llu %5llu %5llu %6llu %6llu %9.4f %9.4f "
      "%7.2f %8.2f\n",
      r.scenario, r.mode, static_cast<unsigned long long>(r.submitted),
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.blocked),
      static_cast<unsigned long long>(r.deferred),
      static_cast<unsigned long long>(r.steals),
      static_cast<unsigned long long>(r.hol_holds),
      static_cast<unsigned long long>(r.batch_admits),
      r.mean_admission_wait_s, r.max_admission_wait_s, r.sim_seconds,
      r.wall_seconds);
}

void write_row(std::FILE* f, const Row& r, const char* tail) {
  std::fprintf(
      f,
      "    {\"scenario\": \"%s\", \"mode\": \"%s\", \"backend\": \"%s\", "
      "\"nodes\": %zu, \"links\": %zu, \"corridors\": %zu, "
      "\"submitted\": %llu, \"admitted\": %llu, \"blocked\": %llu, "
      "\"deferred\": %llu, \"completed\": %llu, \"failed\": %llu, "
      "\"delivered\": %llu, \"steals\": %llu, \"hol_holds\": %llu, "
      "\"batch_admits\": %llu, \"lease_expiries\": %llu, "
      "\"deferred_wait_total_s\": %.6f, \"mean_admission_wait_s\": %.6f, "
      "\"max_admission_wait_s\": %.6f, \"p50_admission_wait_s\": %.6f, "
      "\"p99_admission_wait_s\": %.6f, \"p99_request_latency_s\": %.6f, "
      "\"completion_rate\": %.6f, \"max_utilization\": %.6f, "
      "\"sim_seconds\": %.3f, \"wall_seconds\": %.4f, \"events\": %llu, "
      "\"events_per_sec\": %.1f, \"stalled_intervals\": %llu, "
      "\"peak_backlog\": %llu}%s\n",
      r.scenario, r.mode, r.backend, r.nodes, r.links, r.corridors,
      static_cast<unsigned long long>(r.submitted),
      static_cast<unsigned long long>(r.admitted),
      static_cast<unsigned long long>(r.blocked),
      static_cast<unsigned long long>(r.deferred),
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.failed),
      static_cast<unsigned long long>(r.delivered),
      static_cast<unsigned long long>(r.steals),
      static_cast<unsigned long long>(r.hol_holds),
      static_cast<unsigned long long>(r.batch_admits),
      static_cast<unsigned long long>(r.lease_expiries),
      r.deferred_wait_total_s, r.mean_admission_wait_s,
      r.max_admission_wait_s, r.p50_admission_wait_s,
      r.p99_admission_wait_s, r.p99_request_latency_s,
      r.completion_rate, r.max_utilization, r.sim_seconds,
      r.wall_seconds, static_cast<unsigned long long>(r.events),
      r.wall_seconds > 0.0
          ? static_cast<double>(r.events) / r.wall_seconds
          : 0.0,
      static_cast<unsigned long long>(r.stalled_intervals),
      static_cast<unsigned long long>(r.peak_backlog),
      tail);
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--scenario grid|dragonfly|all] "
               "[--lease-slack S] [--cap-seconds S] "
               "[--backend dense|bell] %s\n",
               argv0, qlink::bench::Args::kUsage);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bench::Args shared;
  shared.seed = opt.seed;
  shared.json_path = opt.json_path;
  for (int i = 1; i < argc; ++i) {
    if (shared.consume(argc, argv, i, [&] { usage(argv[0]); })) continue;
    const auto arg = std::string(argv[i]);
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--scenario") {
      opt.scenario = next();
      if (opt.scenario != "grid" && opt.scenario != "dragonfly" &&
          opt.scenario != "all") {
        usage(argv[0]);
      }
    } else if (arg == "--lease-slack") {
      opt.lease_slack = std::strtod(next(), nullptr);
    } else if (arg == "--cap-seconds") {
      opt.cap_seconds = std::strtod(next(), nullptr);
    } else if (arg == "--backend") {
      const auto kind = qstate::parse_backend_kind(next());
      if (!kind) usage(argv[0]);
      opt.backend = *kind;
    } else {
      usage(argv[0]);
    }
  }
  opt.seed = shared.seed;
  opt.json_path = shared.json_path;
  opt.monitor_path = shared.monitor_path;
  opt.netstate_path = shared.netstate_path;
  opt.report_path = shared.report_path;
  if (opt.lease_slack <= 0.0 || opt.cap_seconds <= 0.0) {
    std::fprintf(stderr,
                 "need positive lease-slack (finite windows) and "
                 "cap-seconds\n");
    usage(argv[0]);
  }

  print_header(
      "Admission control: deferred window booking + batch drain vs the "
      "queue-blind policy");
  std::printf("%-10s %-6s %5s %5s %5s %5s %5s %6s %6s %9s %9s %7s %8s\n",
              "scenario", "mode", "subm", "done", "blckd", "defer",
              "steal", "holds", "batch", "meanwait", "maxwait", "sim(s)",
              "wall(s)");

  std::vector<const char*> scenarios;
  if (opt.scenario == "all" || opt.scenario == "grid") {
    scenarios.push_back("grid");
  }
  if (opt.scenario == "all" || opt.scenario == "dragonfly") {
    scenarios.push_back("dragonfly");
  }

  std::vector<Row> rows;
  double wait_gain_sum = 0.0;
  std::uint64_t steals_pr4 = 0;
  std::uint64_t steals_sched = 0;
  for (const char* scenario : scenarios) {
    const Row pr4 = run_mode(opt, scenario, "pr4", false);
    print_row(pr4);
    const Row sched = run_mode(opt, scenario, "sched", true);
    print_row(sched);
    wait_gain_sum +=
        pr4.mean_admission_wait_s - sched.mean_admission_wait_s;
    steals_pr4 += pr4.steals;
    steals_sched += sched.steals;
    rows.push_back(pr4);
    rows.push_back(sched);
  }
  const double wait_gain =
      wait_gain_sum / static_cast<double>(scenarios.size());
  const double hol_reduction =
      static_cast<double>(steals_pr4 - std::min(steals_sched, steals_pr4)) /
      static_cast<double>(std::max<std::uint64_t>(steals_pr4, 1));

  std::printf("\n  -> scheduler admission: mean admission wait gain "
              "%+.4f s, head-of-line queue jumps %llu -> %llu "
              "(reduction %.2f)\n",
              wait_gain, static_cast<unsigned long long>(steals_pr4),
              static_cast<unsigned long long>(steals_sched),
              hol_reduction);

  std::uint64_t stalled_total = 0;
  std::uint64_t peak_backlog = 0;
  double hot_edge_max_util = 0.0;
  for (const Row& r : rows) {
    stalled_total += r.stalled_intervals;
    peak_backlog = std::max(peak_backlog, r.peak_backlog);
    hot_edge_max_util = std::max(hot_edge_max_util, r.max_utilization);
  }

  if (opt.json_path != "-") {
    std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n",
                   opt.json_path.c_str());
    } else {
      std::fprintf(f, "{\n  \"bench\": \"admission\",\n  \"rows\": [\n");
      for (std::size_t i = 0; i < rows.size(); ++i) {
        write_row(f, rows[i], i + 1 < rows.size() ? "," : "");
      }
      std::fprintf(f,
                   "  ],\n  \"stalled_intervals\": %llu,\n"
                   "  \"peak_backlog\": %llu,\n"
                   "  \"hot_edge_max_utilization\": %.6f,\n"
                   "  \"mean_admission_wait_gain\": %.6f,\n"
                   "  \"hol_blocking_reduction\": %.6f\n}\n",
                   static_cast<unsigned long long>(stalled_total),
                   static_cast<unsigned long long>(peak_backlog),
                   hot_edge_max_util, wait_gain, hol_reduction);
      std::fclose(f);
      std::printf("wrote %s\n", opt.json_path.c_str());
    }
  }

  if (!opt.monitor_path.empty()) {
    std::FILE* f = std::fopen(opt.monitor_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n",
                   opt.monitor_path.c_str());
    } else {
      for (const Row& r : rows) {
        std::fwrite(r.monitor_jsonl.data(), 1, r.monitor_jsonl.size(), f);
      }
      std::fclose(f);
      std::printf("wrote %s\n", opt.monitor_path.c_str());
    }
  }

  if (!opt.netstate_path.empty()) {
    std::FILE* f = std::fopen(opt.netstate_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n",
                   opt.netstate_path.c_str());
    } else {
      for (const Row& r : rows) {
        std::fwrite(r.netstate_jsonl.data(), 1, r.netstate_jsonl.size(),
                    f);
      }
      std::fclose(f);
      std::printf("wrote %s\n", opt.netstate_path.c_str());
    }
  }

  if (!opt.report_path.empty()) {
    std::FILE* f = std::fopen(opt.report_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n",
                   opt.report_path.c_str());
    } else {
      std::fprintf(f, "# Admission control run report\n\n");
      for (const Row& r : rows) {
        std::fwrite(r.report_md.data(), 1, r.report_md.size(), f);
        std::fputc('\n', f);
      }
      std::fclose(f);
      std::printf("wrote %s\n", opt.report_path.c_str());
    }
  }

  // The bench's own acceptance bar (also enforced by CI's bench_diff
  // gate): the scheduler must strictly beat the queue-blind policy on
  // mean admission wait and eliminate at least some queue jumps.
  return wait_gain > 0.0 && hol_reduction > 0.0 ? 0 : 1;
}
