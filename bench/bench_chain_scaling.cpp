// Chain scaling: end-to-end throughput / fidelity / latency vs. hop
// count (1-4). This is the network-layer scenario the paper sketches
// in Figure 1b, driven at sustained load through the same workload
// harness the Section 6 evaluation uses.
//
// Expected shape: throughput stays near the single-link K rate (hops
// generate in parallel; the end-to-end rate tracks the slowest hop),
// while fidelity decays roughly as the product of per-link fidelities
// and latency grows with the wait for the slowest hop.
//
// This bench doubles as the quantum-state backend comparison
// (ISSUE 2): `--backend dense`, `--backend bell`, or `--backend both`
// run the same workload on the selected qstate backend(s) and report
// wall time, executed events/second and backend counters, so the
// dense-vs-Bell-diagonal speedup is reproducible from one binary. The
// Bell-diagonal rows run with Pauli-frame installs
// (LinkConfig::pauli_twirl_installs; exact for per-pair fidelity/QBER
// at install time — see DESIGN.md "Quantum-state backends").
//
// Usage: bench_chain_scaling [--hops N] [--seconds S] [--backend B]
//                            [--seed K] [--json PATH]
//   --hops 0 (default) sweeps 1..4; a positive value runs one row.
//   --json writes machine-readable results (default
//   BENCH_chain_scaling.json in the working directory; "-" disables).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common.hpp"
#include "netlayer/swap_service.hpp"
#include "netlayer/topology.hpp"
#include "qstate/backend_registry.hpp"

using namespace qlink;
using namespace qlink::bench;

namespace {

struct Row {
  std::size_t hops = 0;
  const char* backend = "dense";
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t issued = 0;
  std::uint64_t delivered = 0;
  double throughput = 0.0;
  double fidelity = 0.0;
  double latency_ms = 0.0;
  std::uint64_t swaps = 0;
  qstate::BackendStats backend_stats;
};

Row run_row(std::size_t hops, qstate::BackendKind backend,
            double sim_seconds, std::uint64_t seed) {
  netlayer::NetworkConfig net_cfg;
  net_cfg.kind = netlayer::TopologyKind::kChain;
  net_cfg.num_links = hops;
  net_cfg.seed = seed;
  net_cfg.link.scenario = hw::ScenarioParams::lab();
  // Decoherence-protected carbon memory (dynamical decoupling, [82]):
  // pairs must survive the wait for the slowest hop.
  net_cfg.link.scenario.nv.carbon_t2_ns = 0.5e9;
  net_cfg.link.scenario.nv.carbon_coupling_rad_per_s /= 10.0;
  net_cfg.link.backend = backend;
  // The Bell-diagonal fast path requires Bell-diagonal installs; the
  // twirl preserves each installed pair's fidelity/QBER exactly. The
  // dense rows deliberately stay un-twirled so they replay the
  // pre-qstate trajectories byte-for-byte (a regression signal, see
  // the verify skill). Event flow — issued/delivered/swaps/latency —
  // is install-twirl-independent, so the wall-clock ratio between the
  // rows still compares the same per-event op sequence; only the 4x4
  // state contents (and hence the 4th fidelity decimal) differ.
  net_cfg.link.pauli_twirl_installs =
      backend == qstate::BackendKind::kBellDiagonal;

  netlayer::QuantumNetwork net(net_cfg);
  metrics::Collector collector;
  netlayer::SwapService swap(net, &collector);

  workload::WorkloadConfig wl;
  wl.nl = {0.8, 1};
  wl.origin = workload::OriginMode::kAllA;  // always node 0 -> node N
  wl.min_fidelity = 0.5;        // end-to-end target
  wl.link_min_fidelity = 0.78;  // per-hop CREATE floor
  wl.seed = seed;
  auto driver_ptr = workload::WorkloadDriver::for_e2e(
      net, swap, wl.traffic(), wl.tuning(), collector);
  workload::WorkloadDriver& driver = *driver_ptr;

  const auto wall_start = std::chrono::steady_clock::now();
  net.start();
  driver.start();
  net.run_for(sim::duration::seconds(sim_seconds));
  driver.stop();
  const auto wall_end = std::chrono::steady_clock::now();

  const auto& nl = collector.kind(core::Priority::kNetworkLayer);
  Row row;
  row.hops = hops;
  row.backend = net.registry().backend().name();
  row.sim_seconds = sim_seconds;
  row.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  row.events = net.simulator().events_processed();
  row.issued = driver.requests_issued();
  row.delivered = nl.pairs_delivered;
  row.throughput = collector.throughput(core::Priority::kNetworkLayer);
  row.fidelity = nl.fidelity.mean();
  row.latency_ms = nl.pair_latency_s.mean() * 1e3;
  row.swaps = swap.stats().swaps;
  row.backend_stats = net.registry().backend().stats();
  return row;
}

void print_row(const Row& r) {
  std::printf(
      "%5zu %-13s %9llu %9llu %12.2f %11.4f %11.2f %8llu %9.2f %11.0f\n",
      r.hops, r.backend, static_cast<unsigned long long>(r.issued),
      static_cast<unsigned long long>(r.delivered), r.throughput, r.fidelity,
      r.latency_ms, static_cast<unsigned long long>(r.swaps), r.wall_seconds,
      static_cast<double>(r.events) / r.wall_seconds);
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  if (path == "-") return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"chain_scaling\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "    {\"hops\": %zu, \"backend\": \"%s\", \"sim_seconds\": %.3f, "
        "\"wall_seconds\": %.4f, \"events\": %llu, "
        "\"events_per_sec\": %.1f, \"issued\": %llu, \"delivered\": %llu, "
        "\"throughput_per_s\": %.4f, \"fidelity\": %.6f, "
        "\"latency_ms\": %.3f, \"swaps\": %llu, \"fast_ops\": %llu, "
        "\"dense_ops\": %llu, \"promotions\": %llu, \"pool_hits\": %llu, "
        "\"pool_misses\": %llu}%s\n",
        r.hops, r.backend, r.sim_seconds, r.wall_seconds,
        static_cast<unsigned long long>(r.events),
        static_cast<double>(r.events) / r.wall_seconds,
        static_cast<unsigned long long>(r.issued),
        static_cast<unsigned long long>(r.delivered), r.throughput,
        r.fidelity, r.latency_ms, static_cast<unsigned long long>(r.swaps),
        static_cast<unsigned long long>(r.backend_stats.fast_ops),
        static_cast<unsigned long long>(r.backend_stats.dense_ops),
        static_cast<unsigned long long>(r.backend_stats.promotions),
        static_cast<unsigned long long>(r.backend_stats.pool_hits),
        static_cast<unsigned long long>(r.backend_stats.pool_misses),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--hops N] [--seconds S] "
               "[--backend dense|bell|both] %s\n",
               argv0, qlink::bench::Args::kUsage);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t hops = 0;  // 0 = sweep 1..4
  double seconds = 5.0;
  std::string backend = "both";

  bench::Args shared;
  shared.json_path = "BENCH_chain_scaling.json";
  for (int i = 1; i < argc; ++i) {
    if (shared.consume(argc, argv, i, [&] { usage(argv[0]); })) continue;
    const auto arg = std::string(argv[i]);
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--hops") {
      hops = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--seconds") {
      seconds = std::strtod(next(), nullptr);
    } else if (arg == "--backend") {
      backend = next();
    } else {
      usage(argv[0]);
    }
  }
  const std::uint64_t seed = shared.seed;
  const std::string json_path = shared.json_path;

  std::vector<qstate::BackendKind> backends;
  if (backend == "both") {
    backends = {qstate::BackendKind::kDense,
                qstate::BackendKind::kBellDiagonal};
  } else if (const auto kind = qstate::parse_backend_kind(backend)) {
    backends = {*kind};
  } else {
    std::fprintf(stderr, "unknown backend '%s'\n", backend.c_str());
    usage(argv[0]);
  }

  print_header(
      "Chain scaling: end-to-end swapping over 1-4 hops "
      "(lab hardware, decoupled carbon memory)");
  std::printf("%5s %-13s %9s %9s %12s %11s %11s %8s %9s %11s\n", "hops",
              "backend", "issued", "delivered", "thr (1/s)", "fidelity",
              "latency(ms)", "swaps", "wall(s)", "events/s");

  std::vector<Row> rows;
  const std::size_t lo = hops == 0 ? 1 : hops;
  const std::size_t hi = hops == 0 ? 4 : hops;
  for (std::size_t h = lo; h <= hi; ++h) {
    double dense_wall = 0.0;
    for (const auto kind : backends) {
      Row row = run_row(h, kind, seconds, seed);
      print_row(row);
      if (kind == qstate::BackendKind::kDense) {
        dense_wall = row.wall_seconds;
      } else if (dense_wall > 0.0) {
        std::printf("      -> bell-diagonal speedup vs dense: %.2fx "
                    "(promotions: %llu)\n",
                    dense_wall / row.wall_seconds,
                    static_cast<unsigned long long>(
                        row.backend_stats.promotions));
      }
      rows.push_back(row);
    }
  }
  write_json(json_path, rows);
  return 0;
}
