// Chain scaling: end-to-end throughput / fidelity / latency vs. hop
// count (1-4). This is the network-layer scenario the paper sketches
// in Figure 1b, driven at sustained load through the same workload
// harness the Section 6 evaluation uses.
//
// Expected shape: throughput stays near the single-link K rate (hops
// generate in parallel; the end-to-end rate tracks the slowest hop),
// while fidelity decays roughly as the product of per-link fidelities
// and latency grows with the wait for the slowest hop.

#include <cstdio>

#include "common.hpp"
#include "netlayer/swap_service.hpp"
#include "netlayer/topology.hpp"

using namespace qlink;
using namespace qlink::bench;

int main() {
  print_header("Chain scaling: end-to-end swapping over 1-4 hops "
               "(lab hardware, decoupled carbon memory)");
  std::printf("%5s %9s %9s %12s %11s %11s %8s\n", "hops", "issued",
              "delivered", "thr (1/s)", "fidelity", "latency(ms)", "swaps");

  for (std::size_t hops = 1; hops <= 4; ++hops) {
    netlayer::NetworkConfig net_cfg;
    net_cfg.kind = netlayer::TopologyKind::kChain;
    net_cfg.num_links = hops;
    net_cfg.seed = 7;
    net_cfg.link.scenario = hw::ScenarioParams::lab();
    // Decoherence-protected carbon memory (dynamical decoupling, [82]):
    // pairs must survive the wait for the slowest hop.
    net_cfg.link.scenario.nv.carbon_t2_ns = 0.5e9;
    net_cfg.link.scenario.nv.carbon_coupling_rad_per_s /= 10.0;

    netlayer::QuantumNetwork net(net_cfg);
    metrics::Collector collector;
    netlayer::SwapService swap(net, &collector);

    workload::WorkloadConfig wl;
    wl.nl = {0.8, 1};
    wl.origin = workload::OriginMode::kAllA;  // always node 0 -> node N
    wl.min_fidelity = 0.5;        // end-to-end target
    wl.link_min_fidelity = 0.78;  // per-hop CREATE floor
    wl.seed = 7;
    workload::WorkloadDriver driver(net, swap, wl, collector);

    net.start();
    driver.start();
    net.run_for(sim::duration::seconds(5.0));
    driver.stop();

    const auto& nl = collector.kind(core::Priority::kNetworkLayer);
    std::printf("%5zu %9llu %9llu %12.2f %11.4f %11.2f %8llu\n", hops,
                static_cast<unsigned long long>(driver.requests_issued()),
                static_cast<unsigned long long>(nl.pairs_delivered),
                collector.throughput(core::Priority::kNetworkLayer),
                nl.fidelity.mean(),
                nl.pair_latency_s.mean() * 1e3,
                static_cast<unsigned long long>(swap.stats().swaps));
  }
  return 0;
}
