// Micro-benchmarks (google-benchmark) of the substrate hot paths: event
// scheduling, density-matrix operations, the herald model and a full
// protocol cycle. These bound the simulation throughput reported in
// EXPERIMENTS.md.

#include <benchmark/benchmark.h>

#include "core/network.hpp"
#include "hw/herald_model.hpp"
#include "quantum/bell.hpp"
#include "quantum/channels.hpp"
#include "quantum/registry.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace qlink;

void BM_EventScheduleAndRun(benchmark::State& state) {
  sim::Simulator s;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    s.schedule_in(10, [&] { ++sink; });
    s.step();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventScheduleAndRun);

void BM_PeriodicTimerTick(benchmark::State& state) {
  sim::Simulator s;
  std::uint64_t ticks = 0;
  sim::PeriodicTimer t(s, 100, [&] { ++ticks; });
  t.start();
  for (auto _ : state) s.step();
  benchmark::DoNotOptimize(ticks);
}
BENCHMARK(BM_PeriodicTimerTick);

void BM_SingleQubitKraus(benchmark::State& state) {
  sim::Random rnd(1);
  quantum::QuantumRegistry reg(rnd);
  const auto q = reg.create();
  const auto kraus = quantum::channels::t1t2(1000.0, 2.86e6, 1.0e6);
  const quantum::QubitId ids[] = {q};
  for (auto _ : state) reg.apply_kraus(kraus, ids);
}
BENCHMARK(BM_SingleQubitKraus);

void BM_TwoQubitFidelity(benchmark::State& state) {
  sim::Random rnd(1);
  quantum::QuantumRegistry reg(rnd);
  const auto a = reg.create();
  const auto b = reg.create();
  const quantum::QubitId ab[] = {a, b};
  reg.set_state(ab, quantum::DensityMatrix::from_pure(
                        quantum::bell::state_vector(
                            quantum::bell::BellState::kPsiPlus)));
  const auto& psi =
      quantum::bell::state_vector(quantum::bell::BellState::kPsiPlus);
  for (auto _ : state) benchmark::DoNotOptimize(reg.fidelity(ab, psi));
}
BENCHMARK(BM_TwoQubitFidelity);

void BM_HeraldModelCompute(benchmark::State& state) {
  const hw::HeraldModel model(hw::ScenarioParams::lab().herald);
  double alpha = 0.05;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.compute(alpha, alpha));
    alpha += 1e-6;  // defeat external caching, measure the full pipeline
  }
}
BENCHMARK(BM_HeraldModelCompute);

void BM_HeraldModelCachedLookup(benchmark::State& state) {
  const hw::HeraldModel model(hw::ScenarioParams::lab().herald);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.distribution(0.1, 0.1));
  }
}
BENCHMARK(BM_HeraldModelCachedLookup);

void BM_ProtocolSimulatedMillisecond(benchmark::State& state) {
  // End-to-end cost of one simulated millisecond of an idle-ish link
  // with an active MD request stream (the dominant bench workload).
  core::LinkConfig cfg;
  cfg.scenario = hw::ScenarioParams::lab();
  cfg.seed = 3;
  core::Link link(cfg);
  link.start();
  core::CreateRequest r;
  r.type = core::RequestType::kCreateMeasure;
  r.num_pairs = 60000;
  r.min_fidelity = 0.6;
  r.priority = core::Priority::kMeasureDirectly;
  r.consecutive = true;
  link.egp_a().create(r);
  for (auto _ : state) {
    link.run_for(sim::duration::milliseconds(1));
  }
}
BENCHMARK(BM_ProtocolSimulatedMillisecond)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
