// Micro-benchmarks of the substrate hot paths: event scheduling (bare,
// labeled, telemetered), the periodic timer, density-matrix operations,
// the herald model, and a full protocol cycle. These bound the
// simulation throughput reported in EXPERIMENTS.md.
//
// Self-timed (no external benchmark library): each case runs batches of
// its inner loop until `--min-seconds` of wall time accumulates, then
// reports ops/s over the timed batches. The JSON rows are keyed by
// "scenario" so tools/bench_diff.py can gate events_per_sec against the
// checked-in baseline with its perf tolerance class (wall-clock noise
// on shared CI runners is absorbed by the perf factor, not a tight
// percentage).
//
// Usage: bench_micro_engine [--min-seconds S] [--json PATH|-]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/network.hpp"
#include "hw/herald_model.hpp"
#include "quantum/bell.hpp"
#include "quantum/channels.hpp"
#include "quantum/registry.hpp"
#include "sim/simulator.hpp"

using namespace qlink;
using namespace qlink::bench;

namespace {

struct Options {
  double min_seconds = 0.5;  // timed wall budget per case
  std::uint64_t seed = 7;
  std::string json_path = "BENCH_micro_engine.json";
};

struct Row {
  const char* scenario = "";
  std::uint64_t ops = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;  // ops/s; named for bench_diff's perf gate
};

/// Run `body(batch_ops)` batches until `min_seconds` of wall time
/// accrues (after one untimed warm-up batch), and report ops/s.
Row time_case(const char* scenario, double min_seconds,
              std::uint64_t batch_ops,
              const std::function<void(std::uint64_t)>& body) {
  body(batch_ops);  // warm-up: first-touch allocations, caches
  Row row;
  row.scenario = scenario;
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  while (elapsed < min_seconds) {
    body(batch_ops);
    row.ops += batch_ops;
    elapsed = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  }
  row.wall_seconds = elapsed;
  row.events_per_sec =
      elapsed > 0.0 ? static_cast<double>(row.ops) / elapsed : 0.0;
  return row;
}

Row bench_schedule_and_run(const Options& opt, const char* scenario,
                           bool label, bool telemetry) {
  sim::Simulator s;
  s.set_telemetry(telemetry);
  std::uint64_t sink = 0;
  return time_case(scenario, opt.min_seconds, 100000, [&](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      s.schedule_in(10, [&sink] { ++sink; },
                    label ? "bench.event" : nullptr);
      s.step();
    }
  });
}

Row bench_periodic_timer(const Options& opt) {
  sim::Simulator s;
  std::uint64_t ticks = 0;
  sim::PeriodicTimer t(s, 100, [&ticks] { ++ticks; }, "bench.tick");
  t.start();
  return time_case("periodic_timer_tick", opt.min_seconds, 100000,
                   [&](std::uint64_t n) {
                     for (std::uint64_t i = 0; i < n; ++i) s.step();
                   });
}

Row bench_single_qubit_kraus(const Options& opt) {
  sim::Random rnd(opt.seed);
  quantum::QuantumRegistry reg(rnd);
  const auto q = reg.create();
  const auto kraus = quantum::channels::t1t2(1000.0, 2.86e6, 1.0e6);
  const quantum::QubitId ids[] = {q};
  return time_case("single_qubit_kraus", opt.min_seconds, 20000,
                   [&](std::uint64_t n) {
                     for (std::uint64_t i = 0; i < n; ++i) {
                       reg.apply_kraus(kraus, ids);
                     }
                   });
}

Row bench_two_qubit_fidelity(const Options& opt) {
  sim::Random rnd(opt.seed);
  quantum::QuantumRegistry reg(rnd);
  const auto a = reg.create();
  const auto b = reg.create();
  const quantum::QubitId ab[] = {a, b};
  reg.set_state(ab, quantum::DensityMatrix::from_pure(
                        quantum::bell::state_vector(
                            quantum::bell::BellState::kPsiPlus)));
  const auto& psi =
      quantum::bell::state_vector(quantum::bell::BellState::kPsiPlus);
  double sink = 0.0;
  Row row = time_case("two_qubit_fidelity", opt.min_seconds, 20000,
                      [&](std::uint64_t n) {
                        for (std::uint64_t i = 0; i < n; ++i) {
                          sink += reg.fidelity(ab, psi);
                        }
                      });
  if (sink < 0.0) std::printf("%f\n", sink);  // keep the loop observable
  return row;
}

Row bench_herald_compute(const Options& opt) {
  const hw::HeraldModel model(hw::ScenarioParams::lab().herald);
  double alpha = 0.05;
  double sink = 0.0;
  Row row = time_case("herald_model_compute", opt.min_seconds, 200,
                      [&](std::uint64_t n) {
                        for (std::uint64_t i = 0; i < n; ++i) {
                          sink += model.compute(alpha, alpha).p_success();
                          // defeat caching: measure the full pipeline
                          alpha += 1e-6;
                        }
                      });
  if (sink < 0.0) std::printf("%f\n", sink);
  return row;
}

Row bench_herald_cached(const Options& opt) {
  const hw::HeraldModel model(hw::ScenarioParams::lab().herald);
  double sink = 0.0;
  Row row = time_case("herald_model_cached_lookup", opt.min_seconds,
                      100000, [&](std::uint64_t n) {
                        for (std::uint64_t i = 0; i < n; ++i) {
                          sink += model.distribution(0.1, 0.1).p_success();
                        }
                      });
  if (sink < 0.0) std::printf("%f\n", sink);
  return row;
}

Row bench_protocol_millisecond(const Options& opt) {
  // End-to-end cost of one simulated millisecond of an idle-ish link
  // with an active MD request stream (the dominant bench workload).
  // "ops" are engine events, so events_per_sec is real event throughput.
  core::LinkConfig cfg;
  cfg.scenario = hw::ScenarioParams::lab();
  cfg.seed = opt.seed;
  core::Link link(cfg);
  link.start();
  core::CreateRequest r;
  r.type = core::RequestType::kCreateMeasure;
  r.num_pairs = 60000;
  r.min_fidelity = 0.6;
  r.priority = core::Priority::kMeasureDirectly;
  r.consecutive = true;
  link.egp_a().create(r);

  link.run_for(sim::duration::milliseconds(1));  // warm-up
  Row row;
  row.scenario = "protocol_simulated_millisecond";
  const std::uint64_t events_before = link.simulator().events_processed();
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  while (elapsed < opt.min_seconds) {
    link.run_for(sim::duration::milliseconds(1));
    elapsed = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  }
  row.ops = link.simulator().events_processed() - events_before;
  row.wall_seconds = elapsed;
  row.events_per_sec =
      elapsed > 0.0 ? static_cast<double>(row.ops) / elapsed : 0.0;
  return row;
}

void print_row(const Row& r) {
  std::printf("%-32s %12llu %9.3f %14.0f\n", r.scenario,
              static_cast<unsigned long long>(r.ops), r.wall_seconds,
              r.events_per_sec);
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--min-seconds S] %s\n", argv0,
               qlink::bench::Args::kUsage);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bench::Args shared;
  shared.seed = opt.seed;
  shared.json_path = opt.json_path;
  for (int i = 1; i < argc; ++i) {
    if (shared.consume(argc, argv, i, [&] { usage(argv[0]); })) continue;
    const auto arg = std::string(argv[i]);
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--min-seconds") {
      opt.min_seconds = std::strtod(next(), nullptr);
    } else {
      usage(argv[0]);
    }
  }
  opt.seed = shared.seed;
  opt.json_path = shared.json_path;
  if (opt.min_seconds <= 0.0) usage(argv[0]);

  print_header("Engine micro-benchmarks: substrate hot-path throughput");
  std::printf("%-32s %12s %9s %14s\n", "scenario", "ops", "wall(s)",
              "events/s");

  std::vector<Row> rows;
  rows.push_back(
      bench_schedule_and_run(opt, "event_schedule_and_run", false, false));
  print_row(rows.back());
  rows.push_back(bench_schedule_and_run(opt, "event_schedule_labeled",
                                        true, false));
  print_row(rows.back());
  rows.push_back(bench_schedule_and_run(opt, "event_schedule_telemetry",
                                        true, true));
  print_row(rows.back());
  rows.push_back(bench_periodic_timer(opt));
  print_row(rows.back());
  rows.push_back(bench_single_qubit_kraus(opt));
  print_row(rows.back());
  rows.push_back(bench_two_qubit_fidelity(opt));
  print_row(rows.back());
  rows.push_back(bench_herald_compute(opt));
  print_row(rows.back());
  rows.push_back(bench_herald_cached(opt));
  print_row(rows.back());
  rows.push_back(bench_protocol_millisecond(opt));
  print_row(rows.back());

  if (opt.json_path != "-") {
    std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n",
                   opt.json_path.c_str());
    } else {
      std::fprintf(f, "{\n  \"bench\": \"micro_engine\",\n  \"rows\": [\n");
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::fprintf(f,
                     "    {\"scenario\": \"%s\", \"ops\": %llu, "
                     "\"wall_seconds\": %.4f, \"events_per_sec\": %.1f}%s\n",
                     r.scenario, static_cast<unsigned long long>(r.ops),
                     r.wall_seconds, r.events_per_sec,
                     i + 1 < rows.size() ? "," : "");
      }
      std::fprintf(f, "  ]\n}\n");
      std::fclose(f);
      std::printf("wrote %s\n", opt.json_path.c_str());
    }
  }
  return 0;
}
