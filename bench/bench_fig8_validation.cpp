// Reproduces Figure 8 / Figure 10 of the paper: validation of the
// physical model. The paper compares NV hardware data against its
// NetSquid model; we compare our model (analytic pipeline + Monte-Carlo
// through the full MHP stack) against the paper's theoretical guide
// curves F ~ F0 (1 - alpha) and p_succ ~ 2 alpha p_det.

#include <cstdio>
#include <vector>

#include "common.hpp"
#include "hw/herald_model.hpp"
#include "proto/mhp.hpp"
#include "quantum/bell.hpp"

namespace {

using namespace qlink;

/// Monte-Carlo through the actual MHP/station stack at a fixed alpha:
/// count successes and collect QBER samples to reconstruct fidelity the
/// same way the hardware comparison does (from measured correlations).
struct MonteCarlo {
  double p_succ = 0.0;
  double fidelity_from_qber = 0.0;
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
};

MonteCarlo monte_carlo(double alpha, double seconds) {
  sim::Simulator simulator;
  sim::Random random(12345);
  quantum::QuantumRegistry registry(random);
  const hw::ScenarioParams sc = hw::ScenarioParams::lab();
  hw::HeraldModel model(sc.herald);
  hw::NvDevice dev_a(simulator, "a", sc.nv, registry);
  hw::NvDevice dev_b(simulator, "b", sc.nv, registry);
  net::ClassicalChannel chan_a(simulator, "a-h", sc.delay_a_to_station,
                               random);
  net::ClassicalChannel chan_b(simulator, "b-h", sc.delay_b_to_station,
                               random);
  proto::NodeMhp mhp_a(simulator, "mhp-a", 0, dev_a, chan_a, 0, sc.mhp_cycle);
  proto::NodeMhp mhp_b(simulator, "mhp-b", 1, dev_b, chan_b, 0, sc.mhp_cycle);
  proto::MidpointStation station(simulator, "h", model, random, chan_a, 1,
                                 chan_b, 1, sc.mhp_cycle);

  metrics::Collector collector;
  // Both nodes must measure in the same (pre-agreed) basis: derive it
  // from the shared cycle number, as the EGP's random strings would.
  auto poll = [&simulator, &sc, alpha] {
    proto::PollResponse r;
    r.attempt = true;
    r.aid = net::AbsoluteQueueId{0, 1};
    r.measure_directly = true;
    const auto cycle =
        static_cast<std::uint64_t>(simulator.now() / sc.mhp_cycle);
    r.basis = static_cast<quantum::gates::Basis>(cycle % 3);
    r.alpha = alpha;
    return r;
  };
  mhp_a.set_poll_handler(poll);
  mhp_b.set_poll_handler(poll);

  station.set_measure_sampler(
      [&](int outcome, quantum::gates::Basis ba, quantum::gates::Basis bb,
          double aa, double ab) {
        const auto& dist = model.distribution(aa, ab);
        quantum::DensityMatrix state =
            outcome == 1 ? dist.post_psi_plus : dist.post_psi_minus;
        const int q0[] = {0};
        const int q1[] = {1};
        state.apply_unitary(quantum::gates::basis_change(ba), q0);
        state.apply_unitary(quantum::gates::basis_change(bb), q1);
        const auto& m = state.matrix();
        const double w[] = {m(0, 0).real(), m(1, 1).real(), m(2, 2).real(),
                            m(3, 3).real()};
        const auto joint = random.discrete(w);
        return std::pair<int, int>{static_cast<int>(joint >> 1),
                                   static_cast<int>(joint & 1)};
      });

  MonteCarlo mc;
  mhp_a.set_result_handler([&](const proto::MhpResult& r) {
    if (r.reply.error != net::MhpError::kNone) return;
    ++mc.attempts;
    if (r.reply.outcome != 0) {
      ++mc.successes;
      if (r.reply.m_outcome != 0xFF) {
        collector.record_correlation(
            static_cast<quantum::gates::Basis>(r.reply.m_basis),
            r.reply.m_outcome, r.reply.m_outcome_peer, r.reply.outcome);
      }
    }
  });
  mhp_b.set_result_handler([](const proto::MhpResult&) {});

  mhp_a.start();
  mhp_b.start();
  simulator.run_until(sim::duration::seconds(seconds));

  mc.p_succ = mc.attempts == 0
                  ? 0.0
                  : static_cast<double>(mc.successes) /
                        static_cast<double>(mc.attempts);
  mc.fidelity_from_qber = collector.fidelity_from_qber().value_or(0.0);
  return mc;
}

}  // namespace

int main() {
  using namespace qlink;
  bench::print_header(
      "Figure 8 / 10 -- model validation (Lab scenario)\n"
      "model  : analytic herald pipeline (Appendix D.4-D.5)\n"
      "mc     : Monte-Carlo through the full MHP stack, fidelity from QBER\n"
      "theory : F = F0 (1-alpha), p_succ = 2 alpha p_det  (paper's guide)");

  const hw::ScenarioParams sc = hw::ScenarioParams::lab();
  const hw::HeraldModel model(sc.herald);
  // Calibrate the guide curve at alpha = 0.1 like the paper's plot.
  const auto ref = model.compute(0.1, 0.1);
  const double f0 = ref.fidelity_plus / 0.9;
  const double p_det = ref.p_success() / (2.0 * 0.1);

  std::printf("%7s %12s %12s %12s | %14s %14s %14s\n", "alpha", "F(model)",
              "F(mc)", "F(theory)", "psucc(model)", "psucc(mc)",
              "psucc(theory)");
  const double alphas[] = {0.03, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5};
  for (double alpha : alphas) {
    const auto d = model.compute(alpha, alpha);
    // Short MC for large alpha (plenty of successes), longer for small.
    const double seconds = alpha < 0.1 ? 25.0 : 8.0;
    const auto mc = monte_carlo(alpha, seconds);
    std::printf("%7.2f %12.4f %12.4f %12.4f | %14.3e %14.3e %14.3e\n", alpha,
                (d.fidelity_plus + d.fidelity_minus) / 2.0,
                mc.fidelity_from_qber, f0 * (1.0 - alpha), d.p_success(),
                mc.p_succ, 2.0 * alpha * p_det);
  }
  std::printf(
      "\nExpected shape: F falls ~linearly with alpha; p_succ rises "
      "~linearly;\nmodel, Monte-Carlo and theory agree (validation of "
      "Fig. 8).\n");
  return 0;
}
