// Ablation (DESIGN.md): contribution of each physical noise source to
// the heralded fidelity and success probability at a representative
// alpha. Each row disables exactly one mechanism of Appendix D.4-D.5.

#include <cstdio>

#include "common.hpp"
#include "hw/herald_model.hpp"

int main() {
  using namespace qlink;
  bench::print_header(
      "Ablation -- per-noise-source cost at alpha = 0.1 (Lab)\n"
      "each row disables one mechanism; deltas vs the full model");

  const double alpha = 0.1;
  const hw::HeraldParams full = hw::ScenarioParams::lab().herald;
  const auto base = hw::HeraldModel(full).compute(alpha, alpha);

  struct Case {
    const char* name;
    hw::HeraldParams params;
  };
  Case cases[] = {
      {"full model", full},
      {"no two-photon emission", full},
      {"no phase uncertainty", full},
      {"perfect visibility", full},
      {"no dark counts", full},
      {"perfect detectors", full},
      {"no fiber loss", full},
  };
  cases[1].params.p_double_excitation = 0.0;
  cases[2].params.phase_sigma_rad_per_arm = 0.0;
  cases[3].params.visibility = 1.0;
  cases[4].params.dark_count_rate_hz = 0.0;
  cases[5].params.detector_efficiency = 1.0;
  cases[6].params.fiber_loss_db_per_km = 0.0;

  std::printf("%-26s | %10s %10s | %12s %10s\n", "configuration", "F",
              "dF", "p_succ", "dp/p");
  for (const Case& c : cases) {
    const auto d = hw::HeraldModel(c.params).compute(alpha, alpha);
    std::printf("%-26s | %10.4f %+10.4f | %12.3e %+9.1f%%\n", c.name,
                d.fidelity_plus, d.fidelity_plus - base.fidelity_plus,
                d.p_success(),
                100.0 * (d.p_success() - base.p_success()) /
                    base.p_success());
  }
  std::printf(
      "\nReading: visibility and two-photon emission dominate the fidelity\n"
      "budget; detector efficiency and losses dominate the rate budget;\n"
      "dark counts only matter at far smaller alpha.\n");
  return 0;
}
