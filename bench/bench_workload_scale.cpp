// Million-request workload engine bench (ISSUE 9): the flow-level
// fast path (netlayer::FlowPlane) under streaming ArrivalProcess
// traffic, plus the oracle that keeps it honest.
//
// Two scenario families, one binary:
//
//  scale        dragonfly(32 x 32): 1024 nodes / 16368 links. A
//               weighted three-class traffic mix (bulk / interactive /
//               batch, each with a pinned endpoint pool so the
//               router's path cache stays bounded) streams --requests
//               Poisson arrivals through Router + FlowPlane. One
//               scheduled event per delivered pair and O(1) state per
//               in-flight request is what makes 1M+ requests on a
//               1000+-node topology a minutes-of-wall-time run, with
//               Monitor/NetState/phase stats still live.
//  oracle-full  a 3-node chain driven full-detail (QuantumNetwork +
//  oracle-flow  SwapService) and flow-level (FlowPlane calibrated from
//               an identical standalone link), same seed, same Poisson
//               arrival train, same Router plumbing. The JSON's
//               fastpath_tail_error scalar is the worst relative error
//               across p50 / p99 request latency and mean delivered
//               fidelity; the binary exits non-zero when it exceeds
//               --tol (default 0.35 — flow collapses the MHP's
//               attempt-level jitter into a geometric model, so tails
//               agree to tens of percent, not exactly; see
//               flow_plane.hpp "Validity conditions").
//  island-mono  sharded-engine comparison (ISSUE 10, opt-in via
//  island-shard --shards S >= 2): the same dragonfly carved into S
//               node islands serving identical per-island traffic.
//               island-mono runs one Router + FlowPlane over the full
//               graph on a single heap; island-shard gives each
//               island its own shard (sim::ShardedEngine) + induced
//               subgraph + Router, with live cross-shard heartbeat
//               channels exercising the lookahead/barrier protocol.
//               Both legs run with the path cache off so every
//               request pays path search against the graph its
//               router sees. The JSON's sharded_speedup scalar
//               (mono wall / shard wall) is gated >= 2 in CI.
//
// Usage: bench_workload_scale [--requests N] [--groups G] [--routers R]
//          [--oracle-requests N] [--utilization U] [--cap-seconds S]
//          [--tol T] [--shards S] [--sharded-requests N]
//          [--seed K] [--json PATH|-] [--monitor PATH]
//          [--netstate PATH] [--report PATH]
//   --utilization is the offered load per distinct endpoint pair
//   relative to one link's calibrated pair time (default 0.2; the
//   batch class runs at 2x because its requests carry two pairs).
//   --json writes machine-readable results (default
//   BENCH_workload_scale.json; "-" disables). requests_per_sec (scale
//   row, completed requests per wall second) is the perf headline;
//   CI gates it with bench_diff's perf class and asserts
//   fastpath_tail_error <= fastpath_tolerance.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "metrics/edge_stats.hpp"
#include "net/channel.hpp"
#include "netlayer/flow_plane.hpp"
#include "netlayer/swap_service.hpp"
#include "netlayer/topology.hpp"
#include "sim/sharded_engine.hpp"
#include "obs/monitor.hpp"
#include "obs/netstate.hpp"
#include "obs/report.hpp"
#include "obs/snapshot.hpp"
#include "qstate/backend_registry.hpp"
#include "routing/router.hpp"
#include "workload/arrival.hpp"

using namespace qlink;
using namespace qlink::bench;

namespace {

struct Options {
  std::uint64_t requests = 1000000;
  std::size_t groups = 32;
  std::size_t routers = 32;
  std::uint64_t oracle_requests = 400;
  double utilization = 0.2;
  double oracle_utilization = 0.3;
  double cap_seconds = 7200.0;         // scale-run simulated backstop
  double oracle_cap_seconds = 600.0;   // oracle simulated backstop
  double tol = 0.35;
  /// 0 = skip the sharded comparison; >= 2 adds the island-mono /
  /// island-shard rows and the sharded_speedup scalar (ISSUE 10).
  std::size_t shards = 0;
  std::uint64_t sharded_requests = 6000;
  bench::Args shared;
};

struct Row {
  std::string scenario;
  const char* plane = "flow";
  std::string topology;
  std::size_t nodes = 0;
  std::size_t links = 0;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t blocked = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t delivered = 0;
  double mean_fidelity = 0.0;
  double mean_latency_ms = 0.0;
  double p50_request_latency_s = 0.0;
  double p99_request_latency_s = 0.0;
  double requests_per_sec = 0.0;  // completed / wall
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t open_evicted = 0;
  std::uint64_t stalled_intervals = 0;
  std::uint64_t peak_backlog = 0;
  bool monitored = false;
  std::string obs_json;
  std::string monitor_jsonl;
  std::string netstate_jsonl;
  std::string report_md;
};

double wall_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The CREATE-floor set-point every link (full-detail and flow) is
/// operated and annotated at.
constexpr double kFloorMenu[] = {0.7};

/// One hardware model for every link in this bench: the lab scenario
/// with deep decoherence-protected carbon memory (cf.
/// bench_grid_routing), so request latency is generation-dominated —
/// the regime the flow model is valid in.
core::LinkConfig make_link_config(std::uint64_t seed) {
  core::LinkConfig lc;
  lc.scenario = hw::ScenarioParams::lab();
  lc.scenario.nv.carbon_t2_ns = 5e9;
  lc.scenario.nv.carbon_coupling_rad_per_s /= 10.0;
  lc.backend = qstate::BackendKind::kBellDiagonal;
  lc.pauli_twirl_installs = true;
  lc.seed = seed;
  return lc;
}

/// Probe the flow operating menu once from a standalone full-detail
/// link built from the same config the oracle network uses.
netlayer::FlowCalibration calibrate(std::uint64_t seed) {
  core::Link link(make_link_config(seed));
  return netlayer::FlowCalibration::from_link(link, kFloorMenu);
}

/// The scale mix: three weighted classes over pinned endpoint pools
/// sized so every distinct (src, dst) pair sees the same arrival rate
/// (weight / pool_size equal across classes) — per-pair offered load
/// is then total_rate / 70 regardless of class, and the batch class's
/// two pairs per request double its utilization, not its rate.
std::shared_ptr<workload::ArrivalProcess> make_mix(double total_rate_hz,
                                                   std::size_t num_nodes,
                                                   std::uint64_t seed) {
  sim::Random pick(seed ^ 0x9e3779b97f4a7c15ULL);
  const auto pool = [&](std::size_t n) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
    pairs.reserve(n);
    const auto hi = static_cast<std::int64_t>(num_nodes) - 1;
    while (pairs.size() < n) {
      const auto src = static_cast<std::uint32_t>(pick.uniform_int(0, hi));
      const auto dst = static_cast<std::uint32_t>(pick.uniform_int(0, hi));
      if (src == dst) continue;
      pairs.emplace_back(src, dst);
    }
    return pairs;
  };
  std::vector<workload::ClassMixProcess::Class> classes(3);
  classes[0].weight = 4.0;
  classes[0].shape.name = "bulk";
  classes[0].shape.endpoints = pool(40);
  classes[1].weight = 2.0;
  classes[1].shape.name = "interactive";
  classes[1].shape.endpoints = pool(20);
  classes[2].weight = 1.0;
  classes[2].shape.name = "batch";
  classes[2].shape.num_pairs = 2;
  classes[2].shape.endpoints = pool(10);
  return std::make_shared<workload::ClassMixProcess>(
      std::make_shared<workload::PoissonProcess>(total_rate_hz),
      std::move(classes));
}

void fill_common(Row& row, const routing::Router& router,
                 const metrics::Collector& collector,
                 const sim::Simulator& simulator, double wall_seconds) {
  const auto& nl = collector.kind(core::Priority::kNetworkLayer);
  row.submitted = router.stats().submitted;
  row.admitted = router.stats().admitted;
  row.blocked = router.stats().blocked;
  row.completed = router.stats().completed;
  row.failed = router.stats().failed;
  row.delivered = router.stats().pairs_delivered;
  row.mean_fidelity = nl.fidelity.mean();
  row.mean_latency_ms = nl.request_latency_s.mean() * 1e3;
  row.p50_request_latency_s = collector.request_latency_hist().p50();
  row.p99_request_latency_s = collector.request_latency_hist().p99();
  row.requests_per_sec =
      wall_seconds > 0.0
          ? static_cast<double>(row.completed) / wall_seconds
          : 0.0;
  row.sim_seconds = sim::to_seconds(simulator.now());
  row.wall_seconds = wall_seconds;
  row.events = simulator.events_processed();
  row.open_evicted = collector.open_evicted();
  obs::Snapshot snap;
  snap.collector = &collector;
  snap.router = &router.stats();
  snap.simulator = &simulator;
  row.obs_json = snap.json();
}

void print_row(const Row& r) {
  std::printf("%-11s %-4s %-14s %7zu %7zu %8llu %8llu %6llu %8llu %9.4f "
              "%8.2f %8.1f %8.1f %10.0f\n",
              r.scenario.c_str(), r.plane, r.topology.c_str(), r.nodes,
              r.links, static_cast<unsigned long long>(r.submitted),
              static_cast<unsigned long long>(r.completed),
              static_cast<unsigned long long>(r.blocked),
              static_cast<unsigned long long>(r.delivered),
              r.mean_fidelity, r.mean_latency_ms * 1e-3, r.sim_seconds,
              r.wall_seconds, r.requests_per_sec);
}

/// Drive `simulator` until the driver has issued every request and the
/// router has settled them all (or the simulated-time cap strikes).
template <typename RunFor>
void run_to_completion(const workload::WorkloadDriver& driver,
                       const routing::Router& router,
                       const sim::Simulator& simulator, RunFor&& run_for,
                       std::uint64_t target, double cap_seconds) {
  const auto& rs = router.stats();
  while ((driver.requests_issued() < target ||
          rs.completed + rs.failed + rs.rejected < rs.submitted) &&
         sim::to_seconds(simulator.now()) < cap_seconds) {
    run_for(sim::duration::milliseconds(500));
  }
}

Row run_scale(const Options& opt) {
  routing::Graph graph = routing::Graph::dragonfly(opt.groups, opt.routers);
  const netlayer::FlowCalibration cal = calibrate(opt.shared.seed);
  const netlayer::FlowCalibration::Entry* point = cal.best();
  if (point == nullptr) {
    std::fprintf(stderr, "flow calibration: no feasible operating point\n");
    std::exit(1);
  }

  metrics::Collector collector;
  // Streaming run: bound the in-flight map (a leaked request must not
  // grow memory for the rest of the run; evictions land in the JSON).
  collector.set_open_capacity(1u << 16);

  netlayer::FlowPlaneConfig fc;
  fc.num_nodes = graph.num_nodes();
  fc.edges.reserve(graph.num_edges());
  for (const routing::Graph::Edge& e : graph.edges()) {
    fc.edges.emplace_back(e.a, e.b);
  }
  fc.calibration = cal;
  fc.collector = &collector;
  fc.seed = opt.shared.seed;
  netlayer::FlowPlane plane(std::move(fc));
  plane.simulator().set_telemetry(true);

  routing::RouterConfig rc;
  rc.k_candidates = 2;
  rc.cache_paths = true;  // bounded endpoint pools -> bounded cache
  routing::Router router(graph, plane, rc, &collector);
  router.annotate_from_network(kFloorMenu);
  metrics::EdgeStats edge_stats(graph.num_edges(), graph.num_nodes());
  router.set_edge_stats(&edge_stats);

  // Offered load: 70 equal-rate endpoint pairs (see make_mix), each at
  // --utilization of one link's calibrated service rate.
  const double svc_s = std::max(point->pair_time_s, 1e-9);
  const double total_rate_hz = opt.utilization * 70.0 / svc_s;

  workload::TrafficConfig traffic;
  traffic.min_fidelity = 0.4;
  traffic.link_min_fidelity = kFloorMenu[0];
  traffic.arrivals = make_mix(total_rate_hz, graph.num_nodes(),
                              opt.shared.seed);
  workload::DriverConfig tuning;
  tuning.seed = opt.shared.seed;
  tuning.poll_interval = sim::duration::milliseconds(10);
  tuning.max_requests = opt.requests;
  auto driver = workload::WorkloadDriver::for_routed(router, traffic,
                                                     tuning, collector);

  obs::MonitorConfig mc;
  mc.run = "scale";
  mc.target_requests = opt.requests;
  mc.stall_consecutive = 10;  // random traffic: quiet 100 ms happens
  obs::Monitor monitor(plane.simulator(), collector, std::move(mc));
  monitor.attach_router(&router);
  driver->set_monitor(&monitor);
  obs::NetStateConfig nsc;
  nsc.run = "scale";
  nsc.interval = sim::duration::seconds(1);  // 16k edges per record
  obs::NetState netstate(plane.simulator(), edge_stats, std::move(nsc));
  netstate.attach_collector(&collector);
  netstate.attach_graph(&graph);
  driver->set_netstate(&netstate);

  const auto start = std::chrono::steady_clock::now();
  collector.begin(plane.simulator().now());
  driver->start();
  run_to_completion(*driver, router, plane.simulator(),
                    [&plane](sim::SimTime span) { plane.run_for(span); },
                    opt.requests, opt.cap_seconds);
  driver->stop();
  collector.end(plane.simulator().now());
  monitor.finish();
  netstate.finish();

  Row row;
  row.scenario = "scale";
  row.plane = "flow";
  row.topology = "dragonfly" + std::to_string(opt.groups) + "x" +
                 std::to_string(opt.routers);
  row.nodes = graph.num_nodes();
  row.links = graph.num_edges();
  fill_common(row, router, collector, plane.simulator(),
              wall_since(start));
  row.monitored = true;
  row.stalled_intervals = monitor.stalled_intervals();
  row.peak_backlog = monitor.peak_backlog();
  row.monitor_jsonl = monitor.jsonl();
  row.netstate_jsonl = netstate.jsonl();
  obs::RunReportOptions ro;
  ro.title = "scale (" + row.topology + ", flow plane)";
  row.report_md = obs::render_run_report(plane.simulator(), edge_stats,
                                         collector, &graph, ro);
  return row;
}

// ---- Sharded comparison (ISSUE 10) ----------------------------------
//
// The same dragonfly carved into `--shards` contiguous islands
// (sim::ShardAssignment::blocks keeps whole groups together), with all
// traffic intra-island — the only partition the islands model admits,
// since quantum state cannot span simulators. Two legs, identical
// logical workload:
//
//  island-mono   one FlowPlane + Router over the full topology, one
//                event heap — today's monolithic shape;
//  island-shard  one FlowPlane + Router per island over its
//                Graph::induced subgraph, all on one ShardedEngine,
//                islands coupled by 50 ms classical heartbeat channels
//                (the conservative lookahead the engine advances on).
//
// Both legs run with the path cache off, so every request pays its
// path search against the graph the router actually sees: the full
// 16k-edge dragonfly for mono, the island's ~2k edges for shard. That
// per-request locality — not thread count — is what sharded_speedup
// (mono wall / shard wall, the CI-gated scalar) measures; on a
// multi-core host the engine additionally runs islands on threads.

/// Per-island node lists (global ids, ascending) under the blocks rule.
std::vector<std::vector<std::uint32_t>> island_nodes(
    std::size_t num_nodes, std::size_t shards) {
  const auto assign = sim::ShardAssignment::blocks(num_nodes, shards);
  std::vector<std::vector<std::uint32_t>> nodes(shards);
  for (std::uint32_t n = 0; n < num_nodes; ++n) {
    nodes[assign.shard(n)].push_back(n);
  }
  return nodes;
}

/// The scale mix confined to one island. Endpoints are drawn as
/// *positions* into `nodes` from a seed shared by both legs, so the
/// legs see identical logical pairs: the mono leg maps positions to
/// global ids (`global_ids`), the island leg to the induced subgraph's
/// local ids (position i *is* local id i — Graph::induced's contract).
void append_island_classes(
    std::vector<workload::ClassMixProcess::Class>& classes,
    const std::vector<std::uint32_t>& nodes, std::uint64_t seed,
    bool global_ids) {
  sim::Random pick(seed ^ 0x9e3779b97f4a7c15ULL);
  const auto pool = [&](std::size_t n) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
    pairs.reserve(n);
    const auto hi = static_cast<std::int64_t>(nodes.size()) - 1;
    while (pairs.size() < n) {
      const auto src = static_cast<std::uint32_t>(pick.uniform_int(0, hi));
      const auto dst = static_cast<std::uint32_t>(pick.uniform_int(0, hi));
      if (src == dst) continue;
      pairs.emplace_back(global_ids ? nodes[src] : src,
                         global_ids ? nodes[dst] : dst);
    }
    return pairs;
  };
  workload::ClassMixProcess::Class bulk;
  bulk.weight = 4.0;
  bulk.shape.name = "bulk";
  bulk.shape.endpoints = pool(40);
  workload::ClassMixProcess::Class interactive;
  interactive.weight = 2.0;
  interactive.shape.name = "interactive";
  interactive.shape.endpoints = pool(20);
  workload::ClassMixProcess::Class batch;
  batch.weight = 1.0;
  batch.shape.name = "batch";
  batch.shape.num_pairs = 2;
  batch.shape.endpoints = pool(10);
  classes.push_back(std::move(bulk));
  classes.push_back(std::move(interactive));
  classes.push_back(std::move(batch));
}

std::uint64_t island_seed(const Options& opt, std::size_t island) {
  return opt.shared.seed + 0x100000001b3ULL * (island + 1);
}

workload::TrafficConfig sharded_traffic(
    std::shared_ptr<workload::ArrivalProcess> arrivals) {
  workload::TrafficConfig traffic;
  traffic.min_fidelity = 0.4;
  traffic.link_min_fidelity = kFloorMenu[0];
  traffic.arrivals = std::move(arrivals);
  return traffic;
}

routing::RouterConfig sharded_router_config() {
  routing::RouterConfig rc;
  rc.k_candidates = 2;
  rc.cache_paths = false;  // pay path search per request (see above)
  return rc;
}

/// Monolithic comparator: all islands' classes behind one Poisson train
/// of the summed rate, one router over the full graph.
Row run_island_mono(const Options& opt, const routing::Graph& graph,
                    const netlayer::FlowCalibration& cal,
                    double island_rate_hz, std::uint64_t target) {
  const auto islands = island_nodes(graph.num_nodes(), opt.shards);
  metrics::Collector collector;
  netlayer::FlowPlaneConfig fc;
  fc.num_nodes = graph.num_nodes();
  fc.edges.reserve(graph.num_edges());
  for (const routing::Graph::Edge& e : graph.edges()) {
    fc.edges.emplace_back(e.a, e.b);
  }
  fc.calibration = cal;
  fc.collector = &collector;
  fc.seed = opt.shared.seed;
  netlayer::FlowPlane plane(std::move(fc));
  plane.simulator().set_telemetry(true);

  routing::Router router(graph, plane, sharded_router_config(),
                         &collector);
  router.annotate_from_network(kFloorMenu);

  std::vector<workload::ClassMixProcess::Class> classes;
  for (std::size_t s = 0; s < opt.shards; ++s) {
    append_island_classes(classes, islands[s], island_seed(opt, s),
                          /*global_ids=*/true);
  }
  auto mix = std::make_shared<workload::ClassMixProcess>(
      std::make_shared<workload::PoissonProcess>(
          island_rate_hz * static_cast<double>(opt.shards)),
      std::move(classes));

  workload::DriverConfig tuning;
  tuning.seed = opt.shared.seed;
  tuning.poll_interval = sim::duration::milliseconds(10);
  tuning.max_requests = target;
  auto driver = workload::WorkloadDriver::for_routed(
      router, sharded_traffic(mix), tuning, collector);

  const auto start = std::chrono::steady_clock::now();
  collector.begin(plane.simulator().now());
  driver->start();
  run_to_completion(*driver, router, plane.simulator(),
                    [&plane](sim::SimTime span) { plane.run_for(span); },
                    target, opt.cap_seconds);
  driver->stop();
  collector.end(plane.simulator().now());

  Row row;
  row.scenario = "island-mono";
  row.plane = "flow";
  row.topology = "dragonfly" + std::to_string(opt.groups) + "x" +
                 std::to_string(opt.routers);
  row.nodes = graph.num_nodes();
  row.links = graph.num_edges();
  fill_common(row, router, collector, plane.simulator(),
              wall_since(start));
  row.obs_json = "{}";
  return row;
}

/// The sharded leg: per-island planes/routers/drivers on one engine.
Row run_island_shard(const Options& opt, const routing::Graph& graph,
                     const netlayer::FlowCalibration& cal,
                     double island_rate_hz, std::uint64_t per_island) {
  const auto islands = island_nodes(graph.num_nodes(), opt.shards);
  const std::size_t shards = opt.shards;

  sim::ShardedEngine::Config ecfg;
  ecfg.num_shards = shards;
  sim::ShardedEngine engine(ecfg);

  std::vector<std::unique_ptr<metrics::Collector>> collectors;
  std::vector<std::unique_ptr<routing::Graph>> graphs;
  std::vector<std::unique_ptr<netlayer::FlowPlane>> planes;
  std::vector<std::unique_ptr<routing::Router>> routers;
  std::vector<std::unique_ptr<workload::WorkloadDriver>> drivers;
  for (std::size_t s = 0; s < shards; ++s) {
    collectors.push_back(std::make_unique<metrics::Collector>());
    graphs.push_back(
        std::make_unique<routing::Graph>(graph.induced(islands[s])));
    netlayer::FlowPlaneConfig fc;
    fc.num_nodes = graphs[s]->num_nodes();
    fc.edges.reserve(graphs[s]->num_edges());
    for (const routing::Graph::Edge& e : graphs[s]->edges()) {
      fc.edges.emplace_back(e.a, e.b);
    }
    fc.calibration = cal;
    fc.collector = collectors[s].get();
    fc.seed = island_seed(opt, s);
    fc.engine = &engine;
    fc.shard = s;
    planes.push_back(
        std::make_unique<netlayer::FlowPlane>(std::move(fc)));
    routers.push_back(std::make_unique<routing::Router>(
        *graphs[s], *planes[s], sharded_router_config(),
        collectors[s].get()));
    routers[s]->annotate_from_network(kFloorMenu);

    std::vector<workload::ClassMixProcess::Class> classes;
    append_island_classes(classes, islands[s], island_seed(opt, s),
                          /*global_ids=*/false);
    auto mix = std::make_shared<workload::ClassMixProcess>(
        std::make_shared<workload::PoissonProcess>(island_rate_hz),
        std::move(classes));
    workload::DriverConfig tuning;
    tuning.seed = island_seed(opt, s);
    tuning.poll_interval = sim::duration::milliseconds(10);
    tuning.max_requests = per_island;
    drivers.push_back(workload::WorkloadDriver::for_routed(
        *routers[s], sharded_traffic(mix), tuning, *collectors[s]));
  }

  // Heartbeats over the shard-crossing seam: a classical channel
  // between consecutive islands, delay 50 ms (the lookahead), a frame
  // each way every 100 ms. This is the cross-shard traffic the round
  // protocol conservatively waits on.
  const sim::SimTime heartbeat_delay = sim::duration::milliseconds(50);
  const sim::SimTime heartbeat_period = sim::duration::milliseconds(100);
  std::vector<std::unique_ptr<sim::Random>> channel_randoms;
  std::vector<std::unique_ptr<net::ClassicalChannel>> channels;
  std::atomic<std::uint64_t> heartbeats{0};
  for (std::size_t s = 0; s + 1 < shards; ++s) {
    channel_randoms.push_back(
        std::make_unique<sim::Random>(island_seed(opt, s) ^ 0x5eedULL));
    channel_randoms.push_back(
        std::make_unique<sim::Random>(island_seed(opt, s + 1) ^ 0x5eedULL));
    channels.push_back(std::make_unique<net::ClassicalChannel>(
        engine.ref(s), *channel_randoms[2 * s], engine.ref(s + 1),
        *channel_randoms[2 * s + 1],
        "heartbeat." + std::to_string(s), heartbeat_delay));
    channels[s]->set_receiver(0, [&heartbeats](std::vector<std::uint8_t>) {
      heartbeats.fetch_add(1, std::memory_order_relaxed);
    });
    channels[s]->set_receiver(1, [&heartbeats](std::vector<std::uint8_t>) {
      heartbeats.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // One self-rescheduling tick per island, on that island's own heap.
  std::vector<std::function<void()>> ticks(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    ticks[s] = [&, s] {
      if (s + 1 < shards) channels[s]->send_from(0, {0xA1});
      if (s > 0) channels[s - 1]->send_from(1, {0xB2});
      engine.sim(s).schedule_at(engine.sim(s).now() + heartbeat_period,
                                [&ticks, s] { ticks[s](); },
                                "bench.heartbeat");
    };
    engine.sim(s).schedule_at(engine.sim(s).now() + heartbeat_period,
                              [&ticks, s] { ticks[s](); },
                              "bench.heartbeat");
  }

  const auto settled = [&] {
    for (std::size_t s = 0; s < shards; ++s) {
      const auto& rs = routers[s]->stats();
      if (drivers[s]->requests_issued() < per_island ||
          rs.completed + rs.failed + rs.rejected < rs.submitted) {
        return false;
      }
    }
    return true;
  };

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t s = 0; s < shards; ++s) {
    collectors[s]->begin(engine.sim(s).now());
    drivers[s]->start();
  }
  while (!settled() &&
         sim::to_seconds(engine.now()) < opt.cap_seconds) {
    engine.run_for(sim::duration::milliseconds(500));
  }
  for (std::size_t s = 0; s < shards; ++s) {
    drivers[s]->stop();
    collectors[s]->end(engine.sim(s).now());
  }
  const double wall = wall_since(start);

  // End-of-run merge: one Collector view of all islands (ISSUE 7 made
  // merge shard-ready; totals match an unsharded recording).
  metrics::Collector merged;
  for (std::size_t s = 0; s < shards; ++s) merged.merge(*collectors[s]);
  const auto& nl = merged.kind(core::Priority::kNetworkLayer);

  Row row;
  row.scenario = "island-shard";
  row.plane = "flow";
  row.topology = "dragonfly" + std::to_string(opt.groups) + "x" +
                 std::to_string(opt.routers) + "/" +
                 std::to_string(shards) + "i";
  row.nodes = graph.num_nodes();
  row.links = graph.num_edges();
  for (std::size_t s = 0; s < shards; ++s) {
    const auto& rs = routers[s]->stats();
    row.submitted += rs.submitted;
    row.admitted += rs.admitted;
    row.blocked += rs.blocked;
    row.completed += rs.completed;
    row.failed += rs.failed;
    row.delivered += rs.pairs_delivered;
  }
  row.mean_fidelity = nl.fidelity.mean();
  row.mean_latency_ms = nl.request_latency_s.mean() * 1e3;
  row.p50_request_latency_s = merged.request_latency_hist().p50();
  row.p99_request_latency_s = merged.request_latency_hist().p99();
  row.requests_per_sec =
      wall > 0.0 ? static_cast<double>(row.completed) / wall : 0.0;
  row.sim_seconds = sim::to_seconds(engine.now());
  row.wall_seconds = wall;
  row.events = engine.events_processed();
  row.open_evicted = merged.open_evicted();
  row.obs_json = "{}";

  const auto es = engine.stats();
  std::printf("  -> engine: %zu shards (threads %s), %llu rounds "
              "(%llu parallel, %llu idle jumps), %llu cross-shard events "
              "posted / %llu drained, %llu heartbeats\n",
              shards, engine.threads_enabled() ? "on" : "off",
              static_cast<unsigned long long>(es.rounds),
              static_cast<unsigned long long>(es.parallel_rounds),
              static_cast<unsigned long long>(es.idle_jumps),
              static_cast<unsigned long long>(es.posted),
              static_cast<unsigned long long>(es.drained),
              static_cast<unsigned long long>(
                  heartbeats.load(std::memory_order_relaxed)));
  return row;
}

/// Oracle traffic: one Poisson train, endpoints pinned end-to-end on
/// the chain (OriginMode::kAllA), identical for both planes.
workload::TrafficConfig oracle_traffic(double rate_hz) {
  workload::TrafficConfig traffic;
  traffic.origin = workload::OriginMode::kAllA;
  traffic.min_fidelity = 0.4;
  traffic.link_min_fidelity = kFloorMenu[0];
  traffic.arrivals = std::make_shared<workload::PoissonProcess>(rate_hz);
  return traffic;
}

workload::DriverConfig oracle_tuning(const Options& opt) {
  workload::DriverConfig tuning;
  tuning.seed = opt.shared.seed;
  tuning.poll_interval = sim::duration::milliseconds(1);
  tuning.max_requests = opt.oracle_requests;
  return tuning;
}

Row run_oracle_full(const Options& opt, double rate_hz) {
  routing::Graph graph = routing::Graph::chain(3);
  netlayer::NetworkConfig nc = routing::make_network_config(
      graph, make_link_config(opt.shared.seed), opt.shared.seed);
  auto net = std::make_unique<netlayer::QuantumNetwork>(nc);
  metrics::Collector collector;
  auto swap = std::make_unique<netlayer::SwapService>(*net, &collector);
  routing::RouterConfig rc;
  rc.k_candidates = 1;
  routing::Router router(graph, *swap, rc, &collector);
  router.annotate_from_network(kFloorMenu);

  auto driver = workload::WorkloadDriver::for_routed(
      router, oracle_traffic(rate_hz), oracle_tuning(opt), collector);

  const auto start = std::chrono::steady_clock::now();
  collector.begin(net->simulator().now());
  net->start();
  driver->start();
  run_to_completion(*driver, router, net->simulator(),
                    [&net](sim::SimTime span) { net->run_for(span); },
                    opt.oracle_requests, opt.oracle_cap_seconds);
  driver->stop();
  collector.end(net->simulator().now());

  Row row;
  row.scenario = "oracle-full";
  row.plane = "full";
  row.topology = "chain3";
  row.nodes = graph.num_nodes();
  row.links = graph.num_edges();
  fill_common(row, router, collector, net->simulator(),
              wall_since(start));
  return row;
}

Row run_oracle_flow(const Options& opt, double rate_hz) {
  routing::Graph graph = routing::Graph::chain(3);
  const netlayer::FlowCalibration cal = calibrate(opt.shared.seed);
  metrics::Collector collector;
  netlayer::FlowPlaneConfig fc;
  fc.num_nodes = graph.num_nodes();
  for (const routing::Graph::Edge& e : graph.edges()) {
    fc.edges.emplace_back(e.a, e.b);
  }
  fc.calibration = cal;
  fc.collector = &collector;
  fc.seed = opt.shared.seed;
  netlayer::FlowPlane plane(std::move(fc));
  routing::RouterConfig rc;
  rc.k_candidates = 1;
  routing::Router router(graph, plane, rc, &collector);
  router.annotate_from_network(kFloorMenu);

  auto driver = workload::WorkloadDriver::for_routed(
      router, oracle_traffic(rate_hz), oracle_tuning(opt), collector);

  const auto start = std::chrono::steady_clock::now();
  collector.begin(plane.simulator().now());
  driver->start();
  run_to_completion(*driver, router, plane.simulator(),
                    [&plane](sim::SimTime span) { plane.run_for(span); },
                    opt.oracle_requests, opt.oracle_cap_seconds);
  driver->stop();
  collector.end(plane.simulator().now());

  Row row;
  row.scenario = "oracle-flow";
  row.plane = "flow";
  row.topology = "chain3";
  row.nodes = graph.num_nodes();
  row.links = graph.num_edges();
  fill_common(row, router, collector, plane.simulator(),
              wall_since(start));
  return row;
}

double relative_error(double cur, double ref) {
  return std::abs(cur - ref) / std::max(std::abs(ref), 1e-9);
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                double requests_per_sec, double tail_error, double tol,
                double sharded_speedup) {
  if (path == "-") return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"workload_scale\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char mon_fields[128] = "";
    if (r.monitored) {
      std::snprintf(mon_fields, sizeof mon_fields,
                    "\"stalled_intervals\": %llu, \"peak_backlog\": %llu, ",
                    static_cast<unsigned long long>(r.stalled_intervals),
                    static_cast<unsigned long long>(r.peak_backlog));
    }
    std::fprintf(
        f,
        "    {\"scenario\": \"%s\", \"plane\": \"%s\", \"topology\": "
        "\"%s\", \"nodes\": %zu, \"links\": %zu, \"submitted\": %llu, "
        "\"admitted\": %llu, \"blocked\": %llu, \"completed\": %llu, "
        "\"failed\": %llu, \"delivered\": %llu, \"mean_fidelity\": %.6f, "
        "\"mean_latency_ms\": %.3f, \"p50_request_latency_s\": %.6f, "
        "\"p99_request_latency_s\": %.6f, \"requests_per_sec\": %.1f, "
        "\"open_evicted\": %llu, \"sim_seconds\": %.3f, "
        "\"wall_seconds\": %.4f, \"events\": %llu, "
        "\"events_per_sec\": %.1f, %s\"obs\": %s}%s\n",
        r.scenario.c_str(), r.plane, r.topology.c_str(), r.nodes, r.links,
        static_cast<unsigned long long>(r.submitted),
        static_cast<unsigned long long>(r.admitted),
        static_cast<unsigned long long>(r.blocked),
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.failed),
        static_cast<unsigned long long>(r.delivered), r.mean_fidelity,
        r.mean_latency_ms, r.p50_request_latency_s,
        r.p99_request_latency_s, r.requests_per_sec,
        static_cast<unsigned long long>(r.open_evicted), r.sim_seconds,
        r.wall_seconds, static_cast<unsigned long long>(r.events),
        r.wall_seconds > 0.0 ? static_cast<double>(r.events) / r.wall_seconds
                             : 0.0,
        mon_fields, r.obs_json.c_str(), i + 1 < rows.size() ? "," : "");
  }
  std::uint64_t stalled = 0;
  for (const Row& r : rows) stalled += r.stalled_intervals;
  char sharded_field[64] = "";
  if (sharded_speedup > 0.0) {
    std::snprintf(sharded_field, sizeof sharded_field,
                  "  \"sharded_speedup\": %.4f,\n", sharded_speedup);
  }
  std::fprintf(f,
               "  ],\n  \"requests_per_sec\": %.1f,\n"
               "  \"fastpath_tail_error\": %.6f,\n"
               "  \"fastpath_tolerance\": %.6f,\n%s"
               "  \"stalled_intervals\": %llu\n}\n",
               requests_per_sec, tail_error, tol, sharded_field,
               static_cast<unsigned long long>(stalled));
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

void write_text(const std::string& path, const std::string& text,
                const char* what) {
  if (path.empty() || text.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%s)\n", path.c_str(), what);
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--requests N] [--groups G] [--routers R] "
               "[--oracle-requests N] [--utilization U] "
               "[--cap-seconds S] [--tol T] [--shards S] "
               "[--sharded-requests N] %s\n",
               argv0, qlink::bench::Args::kUsage);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.shared.json_path = "BENCH_workload_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (opt.shared.consume(argc, argv, i, [&] { usage(argv[0]); })) {
      continue;
    }
    const auto arg = std::string(argv[i]);
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--requests") {
      opt.requests = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--groups") {
      opt.groups = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--routers") {
      opt.routers = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--oracle-requests") {
      opt.oracle_requests = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--oracle-utilization") {
      opt.oracle_utilization = std::strtod(next(), nullptr);
    } else if (arg == "--utilization") {
      opt.utilization = std::strtod(next(), nullptr);
    } else if (arg == "--cap-seconds") {
      opt.cap_seconds = std::strtod(next(), nullptr);
    } else if (arg == "--tol") {
      opt.tol = std::strtod(next(), nullptr);
    } else if (arg == "--shards") {
      opt.shards = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--sharded-requests") {
      opt.sharded_requests = std::strtoull(next(), nullptr, 10);
    } else {
      usage(argv[0]);
    }
  }
  if (opt.requests < 1 || opt.oracle_requests < 1 ||
      opt.groups * opt.routers < 2 || opt.utilization <= 0.0 ||
      opt.utilization > 1.0 || opt.cap_seconds <= 0.0 || opt.tol <= 0.0) {
    std::fprintf(stderr,
                 "need requests >= 1, a topology with >= 2 routers, "
                 "utilization in (0, 1], positive cap/tol\n");
    usage(argv[0]);
  }
  if (opt.shards == 1 || opt.shards > opt.groups ||
      (opt.shards >= 2 && opt.sharded_requests < opt.shards)) {
    std::fprintf(stderr,
                 "need --shards in {0, 2..groups} (islands carve whole "
                 "dragonfly groups) and sharded-requests >= shards\n");
    usage(argv[0]);
  }

  print_header(
      "Workload engine at scale: flow-level fast path vs the "
      "full-detail oracle");
  std::printf("%-11s %-4s %-14s %7s %7s %8s %8s %6s %8s %9s %8s %8s %8s "
              "%10s\n",
              "scenario", "pln", "topology", "nodes", "links", "subm",
              "done", "blckd", "pairs", "fidelity", "lat(s)", "sim(s)",
              "wall(s)", "req/s");

  // The oracle rate: 30% of one link's calibrated service rate — well
  // inside steady state, where the flow model is valid.
  const netlayer::FlowCalibration cal = calibrate(opt.shared.seed);
  const netlayer::FlowCalibration::Entry* point = cal.best();
  if (point == nullptr) {
    std::fprintf(stderr, "flow calibration: no feasible operating point\n");
    return 1;
  }
  const double oracle_rate_hz =
      opt.oracle_utilization / std::max(point->pair_time_s, 1e-9);

  std::vector<Row> rows;
  rows.push_back(run_scale(opt));
  print_row(rows.back());
  rows.push_back(run_oracle_full(opt, oracle_rate_hz));
  print_row(rows.back());
  rows.push_back(run_oracle_flow(opt, oracle_rate_hz));
  print_row(rows.back());

  double sharded_speedup = 0.0;
  if (opt.shards >= 2) {
    routing::Graph graph =
        routing::Graph::dragonfly(opt.groups, opt.routers);
    const double svc_s = std::max(point->pair_time_s, 1e-9);
    const double island_rate_hz = opt.utilization * 70.0 / svc_s;
    const std::uint64_t per_island = opt.sharded_requests / opt.shards;
    const std::uint64_t target = per_island * opt.shards;
    rows.push_back(
        run_island_mono(opt, graph, cal, island_rate_hz, target));
    print_row(rows.back());
    rows.push_back(
        run_island_shard(opt, graph, cal, island_rate_hz, per_island));
    print_row(rows.back());
    const Row& mono = rows[rows.size() - 2];
    const Row& shard = rows.back();
    sharded_speedup = shard.wall_seconds > 0.0
                          ? mono.wall_seconds / shard.wall_seconds
                          : 0.0;
    std::printf("  -> sharded: mono %.2f s vs %zu-island %.2f s wall "
                "-> sharded_speedup %.2fx\n",
                mono.wall_seconds, opt.shards, shard.wall_seconds,
                sharded_speedup);
  }

  const Row& full = rows[1];
  const Row& flow = rows[2];
  const double tail_error = std::max(
      {relative_error(flow.p50_request_latency_s,
                      full.p50_request_latency_s),
       relative_error(flow.p99_request_latency_s,
                      full.p99_request_latency_s),
       relative_error(flow.mean_fidelity, full.mean_fidelity)});
  const double requests_per_sec = rows[0].requests_per_sec;
  std::printf("  -> fast path vs oracle: p50 %.4f/%.4f s, p99 %.4f/%.4f "
              "s, fidelity %.4f/%.4f -> tail error %.3f (tol %.2f)\n",
              flow.p50_request_latency_s, full.p50_request_latency_s,
              flow.p99_request_latency_s, full.p99_request_latency_s,
              flow.mean_fidelity, full.mean_fidelity, tail_error, opt.tol);
  std::printf("  -> scale: %llu requests completed at %.0f req/s wall "
              "(%.1f s)\n",
              static_cast<unsigned long long>(rows[0].completed),
              requests_per_sec, rows[0].wall_seconds);

  if (!opt.shared.json_path.empty()) {
    write_json(opt.shared.json_path, rows, requests_per_sec, tail_error,
               opt.tol, sharded_speedup);
  }
  write_text(opt.shared.monitor_path, rows[0].monitor_jsonl, "monitor");
  write_text(opt.shared.netstate_path, rows[0].netstate_jsonl, "netstate");
  write_text(opt.shared.report_path, rows[0].report_md, "report");

  if (tail_error > opt.tol) {
    std::fprintf(stderr,
                 "FAIL: fastpath_tail_error %.3f exceeds tolerance %.2f\n",
                 tail_error, opt.tol);
    return 1;
  }
  return 0;
}
