// Reproduces Table 1: throughput (T) and scaled latency (SL) for FCFS vs
// WFQ under two request patterns on QL2020:
//   (i)  uniform load      f_NL = f_CK = f_MD = 0.99/3, pairs 2/2/10
//   (ii) no NL, more MD    f_CK = 0.99/5, f_MD = 0.99*4/5
// Values are averaged over several seeded runs; parentheses give the
// standard error across runs, mirroring the table's presentation.

#include <cstdio>
#include <vector>

#include "common.hpp"

namespace {

using namespace qlink;
using core::Priority;

struct Cell {
  metrics::RunningStat t[3];
  metrics::RunningStat sl[3];
};

Cell measure(bool uniform, core::SchedulerKind kind, int runs,
             double seconds) {
  Cell cell;
  for (int r = 0; r < runs; ++r) {
    bench::RunSpec spec;
    spec.scenario = hw::ScenarioParams::ql2020();
    spec.scheduler.kind = kind;
    spec.scheduler.weights = {10.0, 1.0};  // "HigherWFQ" of Appendix C.2
    if (uniform) {
      spec.workload.nl = {0.99 / 3.0, 2};
      spec.workload.ck = {0.99 / 3.0, 2};
      spec.workload.md = {0.99 / 3.0, 10};
    } else {
      spec.workload.ck = {0.99 / 5.0, 2};
      spec.workload.md = {0.99 * 4.0 / 5.0, 10};
    }
    spec.workload.origin = workload::OriginMode::kRandom;
    spec.workload.min_fidelity = 0.64;
    spec.workload.seed = 1000 + static_cast<std::uint64_t>(r);
    spec.seed = 2000 + static_cast<std::uint64_t>(r);
    spec.simulated_seconds = seconds;
    const auto result = bench::run_scenario(spec);
    for (int k = 0; k < 3; ++k) {
      const auto p = static_cast<Priority>(k);
      cell.t[k].add(result.collector.throughput(p));
      if (result.collector.kind(p).scaled_latency_s.count() > 0) {
        cell.sl[k].add(result.collector.kind(p).scaled_latency_s.mean());
      }
    }
  }
  return cell;
}

void print_row(const char* label, const Cell& /*cell*/, bool has_nl,
               const metrics::RunningStat* rows) {
  std::printf("%-12s", label);
  for (int k = 0; k < 3; ++k) {
    if (k == 0 && !has_nl) {
      std::printf(" %9s        ", "-");
      continue;
    }
    std::printf(" %9.3f (%.3f)", rows[k].mean(), rows[k].stderr_mean());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_header(
      "Table 1 -- T and SL under FCFS vs WFQ (QL2020, pairs 2/2/10)\n"
      "(i) uniform f = 0.99/3 each; (ii) no NL, f_CK = 0.99/5, "
      "f_MD = 0.99*4/5");

  const int kRuns = 4;
  const double kSeconds = 25.0;
  const auto i_fcfs = measure(true, core::SchedulerKind::kFcfs, kRuns,
                              kSeconds);
  const auto i_wfq = measure(true, core::SchedulerKind::kWfq, kRuns,
                             kSeconds);
  const auto ii_fcfs = measure(false, core::SchedulerKind::kFcfs, kRuns,
                               kSeconds);
  const auto ii_wfq = measure(false, core::SchedulerKind::kWfq, kRuns,
                              kSeconds);

  std::printf("\nT (1/s)      %16s %16s %16s\n", "NL", "CK", "MD");
  print_row("(i)  FCFS", i_fcfs, true, i_fcfs.t);
  print_row("(i)  WFQ", i_wfq, true, i_wfq.t);
  print_row("(ii) FCFS", ii_fcfs, false, ii_fcfs.t);
  print_row("(ii) WFQ", ii_wfq, false, ii_wfq.t);

  std::printf("\nSL (s)       %16s %16s %16s\n", "NL", "CK", "MD");
  print_row("(i)  FCFS", i_fcfs, true, i_fcfs.sl);
  print_row("(i)  WFQ", i_wfq, true, i_wfq.sl);
  print_row("(ii) FCFS", ii_fcfs, false, ii_fcfs.sl);
  print_row("(ii) WFQ", ii_wfq, false, ii_wfq.sl);

  std::printf(
      "\nExpected shape (Table 1): WFQ cuts NL scaled latency hard and CK\n"
      "moderately while MD's rises; throughput moves much less than\n"
      "latency.\n");
  return 0;
}
