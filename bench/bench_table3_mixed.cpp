// Reproduces Tables 3 and 4: average throughput, scaled latency (SL) and
// request latency (RL) for mixed-priority scenarios across
// {Lab, QL2020} x {usage pattern} x {FCFS, HigherWFQ}.

#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"

namespace {

using namespace qlink;
using core::Priority;

void run_row(const std::string& scenario_name,
             const hw::ScenarioParams& scenario, const std::string& pattern,
             core::SchedulerKind kind, double seconds) {
  bench::RunSpec spec;
  spec.scenario = scenario;
  spec.scheduler.kind = kind;
  spec.scheduler.weights = {10.0, 1.0};
  spec.workload = workload::usage_pattern(pattern, 0.99).config;
  // Paper's mixed tables use k_max 3/3/256; 256 exceeds the queue's
  // patience in short runs, cap MD bursts at 32 to keep runs comparable.
  if (spec.workload.md.k_max > 32) spec.workload.md.k_max = 32;
  spec.workload.origin = workload::OriginMode::kRandom;
  spec.workload.min_fidelity = 0.64;
  spec.workload.seed = 31;
  spec.seed = 17;
  spec.simulated_seconds = seconds;
  const auto result = bench::run_scenario(spec);

  const char* sched = kind == core::SchedulerKind::kFcfs ? "FCFS" : "WFQ ";
  std::printf("%-7s %-12s %-5s |", scenario_name.c_str(), pattern.c_str(),
              sched);
  for (int k = 0; k < 3; ++k) {
    const auto p = static_cast<Priority>(k);
    if (result.collector.kind(p).requests_submitted == 0) {
      std::printf("     -      -      - |");
      continue;
    }
    std::printf(" %5.2f %6.2f %6.2f |",
                result.collector.throughput(p),
                result.collector.kind(p).scaled_latency_s.mean(),
                result.collector.kind(p).request_latency_s.mean());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_header(
      "Tables 3/4 -- mixed-priority scenarios\n"
      "per kind: T (1/s), SL (s), RL (s)");
  std::printf("%-7s %-12s %-5s | %20s | %20s | %20s |\n", "scen", "pattern",
              "sched", "NL:  T    SL    RL", "CK:  T    SL    RL",
              "MD:  T    SL    RL");

  const double kSeconds = 20.0;
  const auto lab = qlink::hw::ScenarioParams::lab();
  const auto ql = qlink::hw::ScenarioParams::ql2020();
  const char* patterns[] = {"Uniform", "MoreNL", "MoreCK", "MoreMD",
                            "NoNLMoreCK", "NoNLMoreMD"};
  for (const char* pattern : patterns) {
    for (auto kind :
         {qlink::core::SchedulerKind::kFcfs, qlink::core::SchedulerKind::kWfq}) {
      run_row("Lab", lab, pattern, kind, kSeconds);
    }
  }
  for (const char* pattern : {"Uniform", "MoreMD", "NoNLMoreMD"}) {
    for (auto kind :
         {qlink::core::SchedulerKind::kFcfs, qlink::core::SchedulerKind::kWfq}) {
      run_row("QL2020", ql, pattern, kind, kSeconds);
    }
  }
  std::printf(
      "\nExpected shape (Tables 3/4): the dominant kind in each pattern\n"
      "wins throughput; WFQ cuts NL (and usually CK) latency vs FCFS; Lab\n"
      "K-type throughput is an order of magnitude above QL2020's.\n");
  return 0;
}
