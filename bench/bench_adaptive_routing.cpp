// Adaptive re-routing bench (ISSUE 4): static vs adaptive routing on a
// degraded-edge grid, with time-sliced reservation leases.
//
// The topology is an R x C grid whose row corridors are the hop-count
// shortest routes between each row's west and east ends. Every row but
// the last has its middle corridor edge degraded to badly
// distinguishable photons (herald visibility 0.25): a CREATE at the
// 0.7 fidelity floor is infeasible there, so any route crossing it
// fails with UNSUPP. One request per row (west -> east) is submitted
// under the hop-count cost model — which happily walks into the
// degraded corridors.
//
//  static    max_reroutes = 0 (the PR-3 router): every request whose
//            corridor is degraded fails; only the clean last row
//            completes.
//  adaptive  max_reroutes > 0: each failure adds the failing edge to
//            the request's exclusion set and resubmits over a sibling
//            candidate. Requests discover the degraded middle column
//            edge by edge and converge on the clean last row, sharing
//            its edges under time-sliced leases (blocked requests
//            retry on lease expiry, not only on release).
//
// The JSON records both modes plus adaptive_completion_gain /
// adaptive_fidelity_sum_gain; CI's bench_diff gate requires the
// completion gain to stay strictly positive.
//
// Usage: bench_adaptive_routing [--rows R] [--cols C] [--pairs P]
//          [--reroutes N] [--lease-slack S] [--cap-seconds S]
//          [--backend dense|bell] [--seed K] [--json PATH|-]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "netlayer/swap_service.hpp"
#include "netlayer/topology.hpp"
#include "qstate/backend_registry.hpp"
#include "routing/router.hpp"

using namespace qlink;
using namespace qlink::bench;

namespace {

struct Options {
  std::size_t rows = 4;
  std::size_t cols = 4;
  std::uint16_t pairs = 1;
  std::size_t reroutes = 4;
  double lease_slack = 2.0;
  double cap_seconds = 120.0;
  qstate::BackendKind backend = qstate::BackendKind::kBellDiagonal;
  std::uint64_t seed = 7;
  std::string json_path = "BENCH_adaptive_routing.json";
};

struct Row {
  const char* mode = "static";
  std::size_t reroute_budget = 0;
  const char* backend = "bell-diagonal";
  std::size_t nodes = 0;
  std::size_t links = 0;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t blocked = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rerouted = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lease_expiries = 0;
  double completion_rate = 0.0;
  double mean_fidelity = 0.0;
  double fidelity_sum = 0.0;
  double mean_route_hops = 0.0;
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
};

double wall_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One full scenario run at the given reroute budget.
Row run_mode(const Options& opt, const char* mode, std::size_t reroutes) {
  routing::Graph grid = routing::Graph::grid(opt.rows, opt.cols);
  // The middle corridor edge of every row but the last: between columns
  // mid and mid + 1.
  const std::size_t mid = (opt.cols - 1) / 2;
  std::vector<std::size_t> degraded;
  for (std::size_t r = 0; r + 1 < opt.rows; ++r) {
    const auto a = static_cast<std::uint32_t>(r * opt.cols + mid);
    const auto b = static_cast<std::uint32_t>(r * opt.cols + mid + 1);
    degraded.push_back(grid.find_edge(a, b));
  }
  const auto is_degraded = [&degraded](std::size_t link) {
    for (const std::size_t d : degraded) {
      if (d == link) return true;
    }
    return false;
  };

  netlayer::NetworkConfig nc = routing::make_network_config(
      grid, core::LinkConfig{}, opt.seed);
  nc.link.backend = opt.backend;
  nc.link.pauli_twirl_installs =
      opt.backend == qstate::BackendKind::kBellDiagonal;
  nc.link.scenario = hw::ScenarioParams::lab();
  // Decoherence-protected carbon memory ([82]): re-routed corridors run
  // up to ~2 R + C hops and wait for their slowest link.
  nc.link.scenario.nv.carbon_t2_ns = 5e9;
  nc.link.scenario.nv.carbon_coupling_rad_per_s /= 10.0;
  nc.configure_link = [is_degraded](std::size_t link,
                                    core::LinkConfig& lc) {
    // Badly distinguishable photons: a 0.7 CREATE floor is infeasible.
    if (is_degraded(link)) lc.scenario.herald.visibility = 0.25;
  };
  const auto net = std::make_unique<netlayer::QuantumNetwork>(nc);
  metrics::Collector collector;
  const auto swap =
      std::make_unique<netlayer::SwapService>(*net, &collector);

  routing::RouterConfig rc;
  rc.cost = routing::CostModel::kHopCount;
  rc.k_candidates = 4;
  rc.max_reroutes = reroutes;
  rc.lease_slack = opt.lease_slack;
  routing::Router router(grid, *net, *swap, rc, &collector);
  const double menu[] = {0.7};
  router.annotate_from_network(menu);

  router.set_deliver_handler(
      [&swap](const netlayer::E2eOk& ok) { swap->release(ok); });

  net->start();
  for (std::size_t r = 0; r < opt.rows; ++r) {
    netlayer::E2eRequest req;
    req.src = static_cast<std::uint32_t>(r * opt.cols);
    req.dst = static_cast<std::uint32_t>(r * opt.cols + opt.cols - 1);
    req.num_pairs = opt.pairs;
    req.min_fidelity = 0.25;
    // Every hop's CREATE carries the 0.7 floor (annotated links agree;
    // a degraded link cannot support it and errors with UNSUPP).
    req.link_min_fidelity = 0.7;
    router.submit(req);
  }

  const auto start = std::chrono::steady_clock::now();
  const auto& stats = router.stats();
  while (stats.completed + stats.failed < opt.rows &&
         sim::to_seconds(net->simulator().now()) < opt.cap_seconds) {
    net->run_for(sim::duration::milliseconds(10));
  }

  const auto& nl = collector.kind(core::Priority::kNetworkLayer);
  Row row;
  row.mode = mode;
  row.reroute_budget = reroutes;
  row.backend = net->registry().backend().name();
  row.nodes = net->num_nodes();
  row.links = net->num_links();
  row.submitted = stats.submitted;
  row.admitted = stats.admitted;
  row.blocked = stats.blocked;
  row.completed = stats.completed;
  row.failed = stats.failed;
  row.rerouted = stats.rerouted;
  row.abandoned = stats.abandoned;
  row.delivered = stats.pairs_delivered;
  row.lease_expiries = router.reservations().lease_expiries();
  row.completion_rate = static_cast<double>(stats.completed) /
                        static_cast<double>(opt.rows);
  row.mean_fidelity = nl.fidelity.mean();
  row.fidelity_sum =
      nl.fidelity.mean() * static_cast<double>(nl.fidelity.count());
  row.mean_route_hops = collector.route_length().mean();
  row.sim_seconds = sim::to_seconds(net->simulator().now());
  row.wall_seconds = wall_since(start);
  row.events = net->simulator().events_processed();
  return row;
}

void print_row(const Row& r) {
  std::printf(
      "%-8s %6zu %4llu %4llu %5llu %5llu %5llu %6llu %5llu %6llu %9.4f "
      "%8.2f %8.2f %10.0f\n",
      r.mode, r.reroute_budget,
      static_cast<unsigned long long>(r.submitted),
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.failed),
      static_cast<unsigned long long>(r.rerouted),
      static_cast<unsigned long long>(r.abandoned),
      static_cast<unsigned long long>(r.blocked),
      static_cast<unsigned long long>(r.delivered),
      static_cast<unsigned long long>(r.lease_expiries), r.mean_fidelity,
      r.sim_seconds, r.wall_seconds,
      r.wall_seconds > 0.0 ? static_cast<double>(r.events) / r.wall_seconds
                           : 0.0);
}

void write_json(const std::string& path, const Row& st, const Row& ad,
                const Options& opt) {
  if (path == "-") return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  const auto row = [f](const Row& r, const char* tail) {
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"reroute_budget\": %zu, \"backend\": "
        "\"%s\", \"nodes\": %zu, \"links\": %zu, \"submitted\": %llu, "
        "\"admitted\": %llu, \"blocked\": %llu, \"completed\": %llu, "
        "\"failed\": %llu, \"rerouted\": %llu, \"abandoned\": %llu, "
        "\"delivered\": %llu, \"lease_expiries\": %llu, "
        "\"completion_rate\": %.6f, \"mean_fidelity\": %.6f, "
        "\"fidelity_sum\": %.6f, \"mean_route_hops\": %.3f, "
        "\"sim_seconds\": %.3f, \"wall_seconds\": %.4f, \"events\": "
        "%llu, \"events_per_sec\": %.1f}%s\n",
        r.mode, r.reroute_budget, r.backend, r.nodes, r.links,
        static_cast<unsigned long long>(r.submitted),
        static_cast<unsigned long long>(r.admitted),
        static_cast<unsigned long long>(r.blocked),
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.failed),
        static_cast<unsigned long long>(r.rerouted),
        static_cast<unsigned long long>(r.abandoned),
        static_cast<unsigned long long>(r.delivered),
        static_cast<unsigned long long>(r.lease_expiries),
        r.completion_rate, r.mean_fidelity, r.fidelity_sum,
        r.mean_route_hops, r.sim_seconds, r.wall_seconds,
        static_cast<unsigned long long>(r.events),
        r.wall_seconds > 0.0
            ? static_cast<double>(r.events) / r.wall_seconds
            : 0.0,
        tail);
  };
  std::fprintf(f,
               "{\n  \"bench\": \"adaptive_routing\",\n  \"topology\": "
               "\"grid%zux%zu-degraded-mid-column\",\n  \"rows\": [\n",
               opt.rows, opt.cols);
  row(st, ",");
  row(ad, "");
  std::fprintf(f,
               "  ],\n  \"adaptive_completion_gain\": %.6f,\n"
               "  \"adaptive_fidelity_sum_gain\": %.6f\n}\n",
               ad.completion_rate - st.completion_rate,
               ad.fidelity_sum - st.fidelity_sum);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--rows R] [--cols C] [--pairs P] "
               "[--reroutes N] [--lease-slack S] [--cap-seconds S] "
               "[--backend dense|bell] %s\n",
               argv0, qlink::bench::Args::kUsage);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bench::Args shared;
  shared.seed = opt.seed;
  shared.json_path = opt.json_path;
  for (int i = 1; i < argc; ++i) {
    if (shared.consume(argc, argv, i, [&] { usage(argv[0]); })) continue;
    const auto arg = std::string(argv[i]);
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--rows") {
      opt.rows = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--cols") {
      opt.cols = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--pairs") {
      opt.pairs = static_cast<std::uint16_t>(
          std::strtoul(next(), nullptr, 10));
    } else if (arg == "--reroutes") {
      opt.reroutes = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--lease-slack") {
      opt.lease_slack = std::strtod(next(), nullptr);
    } else if (arg == "--cap-seconds") {
      opt.cap_seconds = std::strtod(next(), nullptr);
    } else if (arg == "--backend") {
      const auto kind = qstate::parse_backend_kind(next());
      if (!kind) usage(argv[0]);
      opt.backend = *kind;
    } else {
      usage(argv[0]);
    }
  }
  opt.seed = shared.seed;
  opt.json_path = shared.json_path;
  if (opt.rows < 2 || opt.cols < 3 || opt.pairs < 1 ||
      opt.reroutes < 1 || opt.cap_seconds <= 0.0) {
    std::fprintf(stderr,
                 "need rows >= 2 (one clean row), cols >= 3 (a middle "
                 "edge to degrade), pairs/reroutes >= 1, positive "
                 "cap-seconds\n");
    usage(argv[0]);
  }

  print_header(
      "Adaptive re-routing: exclusion-set retries + time-sliced leases "
      "on a degraded-edge grid");
  std::printf("%zux%zu grid, %zu requests (one per row), %u pair(s) "
              "each, degraded middle column in all but the last row\n\n",
              opt.rows, opt.cols, opt.rows, opt.pairs);
  std::printf("%-8s %6s %4s %4s %5s %5s %5s %6s %5s %6s %9s %8s %8s "
              "%10s\n",
              "mode", "budget", "subm", "done", "fail", "rert", "aban",
              "blckd", "pairs", "expry", "fidelity", "sim(s)", "wall(s)",
              "events/s");

  const Row st = run_mode(opt, "static", 0);
  print_row(st);
  const Row ad = run_mode(opt, "adaptive", opt.reroutes);
  print_row(ad);

  std::printf("\n  -> adaptive re-routing: completion rate %.3f vs "
              "%.3f static (gain %+.3f), delivered fidelity sum %.3f "
              "vs %.3f (gain %+.3f)\n",
              ad.completion_rate, st.completion_rate,
              ad.completion_rate - st.completion_rate, ad.fidelity_sum,
              st.fidelity_sum, ad.fidelity_sum - st.fidelity_sum);
  write_json(opt.json_path, st, ad, opt);

  // The bench's own acceptance bar (also enforced by CI's bench_diff
  // gate on the JSON): adaptive must strictly beat static on
  // completion rate.
  return ad.completion_rate > st.completion_rate ? 0 : 1;
}
