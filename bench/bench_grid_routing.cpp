// General-graph routing bench (ISSUE 3): end-to-end entanglement on
// grid and dragonfly topologies through the routing subsystem
// (routing::Graph + PathSelector + ReservationTable + Router).
//
// Three scenarios, all on one binary:
//
//  grid       An 8x8 grid (64 nodes, 112 links, default size) runs 8
//             end-to-end requests concurrently, pinned to the 8
//             edge-disjoint row corridors (7 hops each). Exercises
//             admission at scale: all requests hold reservations at
//             once (max_concurrent == 8) and every one completes.
//  dragonfly  dragonfly(4 groups x 4 routers): multi-pair random
//             traffic through the routed WorkloadDriver mode; blocked
//             requests queue behind the reservation table and retry.
//  hetero     A 3x3 grid whose hop-count-preferred corner-to-corner
//             staircase (0-1-2-5-8) is degraded hardware (herald
//             visibility 0.25, only a 0.6 CREATE floor is feasible),
//             while the rest runs clean at 0.8. The same multi-pair
//             request is routed once under the hop-count cost model
//             (which walks into the degraded corridor) and once under
//             the fidelity model (which pays the same hop count for
//             the clean detour annotated from each link's FEU). The
//             JSON records both mean delivered fidelities and the gain.
//
// Usage: bench_grid_routing [--scenario all|grid|dragonfly|hetero]
//          [--rows R] [--cols C] [--requests N] [--pairs P]
//          [--seconds S] [--cap-seconds S] [--backend dense|bell]
//          [--seed K] [--json PATH|-] [--trace PATH] [--monitor PATH]
//          [--netstate PATH] [--report PATH]
//   --seconds bounds the dragonfly traffic run (default 2 simulated s);
//   --cap-seconds bounds the grid/hetero request-completion scenarios
//   (default 60 simulated s — they normally finish far earlier).
//   --json writes machine-readable results (default
//   BENCH_grid_routing.json in the working directory; "-" disables).
//   --trace writes the grid scenario's request-lifecycle trace: Chrome
//   trace-event JSON (Perfetto-loadable) at PATH plus compact JSONL at
//   PATH.jsonl. Traces are keyed by sim time only, so two same-seed
//   runs write byte-identical files.
//   --monitor writes the grid + dragonfly scenarios' interval telemetry
//   (obs::Monitor, ISSUE 7) as JSONL at PATH, one "run"-labelled record
//   per 100 ms of sim time — validated in CI by tools/monitor_check.py.
//   The monitors run regardless (they cannot perturb the trajectory);
//   their stalled_intervals / peak_backlog land in the JSON scalars.
//   --netstate writes every scenario's per-edge network-state stream
//   (obs::NetState, ISSUE 8) as "run"-labelled JSONL at PATH —
//   utilization, contention, and hot-edge records validated in CI by
//   tools/netstate_check.py. Like the monitors, the samplers run
//   regardless; the run-wide max per-edge utilization lands in the
//   hot_edge_max_utilization JSON scalar (<= 1 by construction).
//   --report writes a human-readable Markdown run report at PATH: per
//   scenario, the summary counters, hottest edges, contention
//   analysis, and the latency phase decomposition (obs::report).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "metrics/edge_stats.hpp"
#include "netlayer/swap_service.hpp"
#include "netlayer/topology.hpp"
#include "obs/monitor.hpp"
#include "obs/netstate.hpp"
#include "obs/report.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "qstate/backend_registry.hpp"
#include "routing/router.hpp"

using namespace qlink;
using namespace qlink::bench;

namespace {

struct Options {
  std::string scenario = "all";
  std::size_t rows = 8;
  std::size_t cols = 8;
  std::size_t requests = 8;
  std::uint16_t pairs = 6;
  double seconds = 2.0;
  double cap_seconds = 60.0;
  qstate::BackendKind backend = qstate::BackendKind::kBellDiagonal;
  std::uint64_t seed = 7;
  std::string json_path = "BENCH_grid_routing.json";
  std::string trace_path;    // empty = tracing off
  std::string monitor_path;  // empty = keep records in memory only
  std::string netstate_path;  // empty = keep records in memory only
  std::string report_path;    // empty = no Markdown report
};

struct Row {
  std::string scenario;
  std::string topology;
  const char* cost = "hops";
  const char* backend = "bell-diagonal";
  std::size_t nodes = 0;
  std::size_t links = 0;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::size_t max_concurrent = 0;
  std::uint64_t blocked = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t delivered = 0;
  double mean_fidelity = 0.0;
  double mean_route_hops = 0.0;
  double mean_latency_ms = 0.0;
  double p50_request_latency_s = 0.0;
  double p99_request_latency_s = 0.0;
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::string obs_json;  // merged obs::Snapshot of the run
  // Interval telemetry (ISSUE 7); monitored only on grid + dragonfly.
  bool monitored = false;
  std::uint64_t stalled_intervals = 0;
  std::uint64_t peak_backlog = 0;
  std::string monitor_jsonl;
  // Per-edge network state (ISSUE 8); sampled on every scenario.
  double max_utilization = 0.0;
  std::string netstate_jsonl;
  std::string report_md;
};

/// The shared world of one scenario run. Heap-held parts keep
/// construction order honest (network before services).
struct World {
  routing::Graph graph;
  std::unique_ptr<netlayer::QuantumNetwork> net;
  metrics::Collector collector;
  std::unique_ptr<netlayer::SwapService> swap;
  std::unique_ptr<routing::Router> router;
  std::unique_ptr<metrics::EdgeStats> edge_stats;

  World(routing::Graph g, const Options& opt, routing::CostModel cost,
        std::function<void(std::size_t, core::LinkConfig&)> configure)
      : graph(std::move(g)) {
    netlayer::NetworkConfig nc = routing::make_network_config(
        graph, core::LinkConfig{}, opt.seed);
    nc.link.backend = opt.backend;
    nc.link.pauli_twirl_installs =
        opt.backend == qstate::BackendKind::kBellDiagonal;
    nc.link.scenario = hw::ScenarioParams::lab();
    // Deep decoherence-protected carbon memory ([82]): corridors of 7
    // hops wait hundreds of ms for their slowest link.
    nc.link.scenario.nv.carbon_t2_ns = 5e9;
    nc.link.scenario.nv.carbon_coupling_rad_per_s /= 10.0;
    nc.configure_link = std::move(configure);
    net = std::make_unique<netlayer::QuantumNetwork>(nc);
    swap = std::make_unique<netlayer::SwapService>(*net, &collector);
    routing::RouterConfig rc;
    rc.cost = cost;
    rc.k_candidates = 4;
    router = std::make_unique<routing::Router>(graph, *net, *swap, rc,
                                               &collector);
    edge_stats = std::make_unique<metrics::EdgeStats>(graph.num_edges(),
                                                      graph.num_nodes());
    router->set_edge_stats(edge_stats.get());
    // Per-label event counts for the snapshot's engine section.
    net->simulator().set_telemetry(true);
  }

  /// A per-run NetState over this world's substrate, labelled `run`.
  obs::NetState make_netstate(std::string run) const {
    obs::NetStateConfig nc;
    nc.run = std::move(run);
    obs::NetState ns(net->simulator(), *edge_stats, std::move(nc));
    ns.attach_collector(&collector);
    ns.attach_graph(&graph);
    return ns;
  }

  Row finish(const char* scenario, std::string topology,
             double wall_seconds) {
    const auto& nl = collector.kind(core::Priority::kNetworkLayer);
    Row row;
    row.scenario = scenario;
    row.topology = std::move(topology);
    row.cost = routing::cost_model_name(router->selector().model());
    row.backend = net->registry().backend().name();
    row.nodes = net->num_nodes();
    row.links = net->num_links();
    row.submitted = router->stats().submitted;
    row.admitted = router->stats().admitted;
    row.max_concurrent = router->reservations().max_active();
    row.blocked = router->stats().blocked;
    row.completed = router->stats().completed;
    row.failed = router->stats().failed;
    row.delivered = router->stats().pairs_delivered;
    row.mean_fidelity = nl.fidelity.mean();
    row.mean_route_hops = collector.route_length().mean();
    row.mean_latency_ms = nl.pair_latency_s.mean() * 1e3;
    row.p50_request_latency_s = collector.request_latency_hist().p50();
    row.p99_request_latency_s = collector.request_latency_hist().p99();
    row.sim_seconds = sim::to_seconds(net->simulator().now());
    row.wall_seconds = wall_seconds;
    row.events = net->simulator().events_processed();
    obs::Snapshot snap;
    snap.collector = &collector;
    snap.router = &router->stats();
    snap.swap = &swap->stats();
    snap.backend = &net->registry().backend().stats();
    snap.simulator = &net->simulator();
    row.obs_json = snap.json();
    obs::RunReportOptions ro;
    ro.title = std::string(scenario) + " (" + row.topology + ", " +
               row.cost + " cost)";
    row.report_md = obs::render_run_report(net->simulator(), *edge_stats,
                                           collector, &graph, ro);
    return row;
  }
};

double wall_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Grid scenario: `requests` pinned edge-disjoint row corridors, all
/// concurrent, run to completion.
Row run_grid(const Options& opt) {
  const std::size_t corridors = std::min(opt.requests, opt.rows);
  World w(routing::Graph::grid(opt.rows, opt.cols), opt,
          routing::CostModel::kHopCount, nullptr);
  const double menu[] = {0.7};
  w.router->annotate_from_network(menu);

  obs::Tracer tracer;
  if (!opt.trace_path.empty()) {
    w.router->set_tracer(&tracer);
    w.swap->set_tracer(&tracer);
  }

  obs::MonitorConfig mc;
  mc.run = "grid";
  mc.target_requests = corridors;
  if (!opt.trace_path.empty()) mc.tracer = &tracer;
  obs::Monitor monitor(w.net->simulator(), w.collector, std::move(mc));
  monitor.attach_router(w.router.get());
  obs::NetState netstate = w.make_netstate("grid");

  w.router->set_deliver_handler(
      [&w](const netlayer::E2eOk& ok) { w.swap->release(ok); });

  w.net->start();
  for (std::size_t r = 0; r < corridors; ++r) {
    netlayer::E2eRequest req;
    req.src = static_cast<std::uint32_t>(r * opt.cols);
    req.dst = static_cast<std::uint32_t>(r * opt.cols + opt.cols - 1);
    req.min_fidelity = 0.25;
    // Pin the straight row corridor: the r-th corridors are mutually
    // edge-disjoint, so all of them hold reservations at once.
    routing::Path corridor;
    for (std::size_t c = 0; c < opt.cols; ++c) {
      corridor.nodes.push_back(static_cast<std::uint32_t>(r * opt.cols + c));
      if (c + 1 < opt.cols) {
        corridor.edges.push_back(w.graph.find_edge(
            corridor.nodes.back(),
            static_cast<std::uint32_t>(r * opt.cols + c + 1)));
      }
    }
    w.router->submit_on(req, corridor);
  }

  const auto start = std::chrono::steady_clock::now();
  const auto& stats = w.router->stats();
  while (stats.completed + stats.failed < corridors &&
         sim::to_seconds(w.net->simulator().now()) < opt.cap_seconds) {
    w.net->run_for(sim::duration::milliseconds(10));
    monitor.poll();
    netstate.poll();
  }
  monitor.finish();
  netstate.finish();

  if (!opt.trace_path.empty()) {
    std::FILE* f = std::fopen(opt.trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n",
                   opt.trace_path.c_str());
    } else {
      tracer.write_chrome_json(f);
      std::fclose(f);
      const std::string jsonl_path = opt.trace_path + ".jsonl";
      f = std::fopen(jsonl_path.c_str(), "w");
      if (f != nullptr) {
        tracer.write_jsonl(f);
        std::fclose(f);
      }
      std::printf("wrote %s (+ .jsonl), %zu events\n",
                  opt.trace_path.c_str(), tracer.num_events());
    }
  }
  Row row = w.finish(
      "grid", std::to_string(opt.rows) + "x" + std::to_string(opt.cols),
      wall_since(start));
  row.monitored = true;
  row.stalled_intervals = monitor.stalled_intervals();
  row.peak_backlog = monitor.peak_backlog();
  row.monitor_jsonl = monitor.jsonl();
  row.max_utilization = netstate.max_utilization();
  row.netstate_jsonl = netstate.jsonl();
  return row;
}

/// Dragonfly scenario: random multi-pair routed traffic for a fixed
/// span of simulated time.
Row run_dragonfly(const Options& opt) {
  World w(routing::Graph::dragonfly(4, 4), opt,
          routing::CostModel::kHopCount, nullptr);
  const double menu[] = {0.7};
  w.router->annotate_from_network(menu);

  workload::WorkloadConfig wl;
  wl.nl = {0.9, 2};
  wl.origin = workload::OriginMode::kRandom;
  wl.min_fidelity = 0.5;
  wl.seed = opt.seed;
  auto driver_ptr = workload::WorkloadDriver::for_routed(
      *w.router, wl.traffic(), wl.tuning(), w.collector);
  workload::WorkloadDriver& driver = *driver_ptr;

  obs::MonitorConfig mc;
  mc.run = "dragonfly";
  // Random traffic legitimately has quiet 100 ms intervals with a
  // blocked request in the queue; only a sustained run is a stall.
  mc.stall_consecutive = 3;
  obs::Monitor monitor(w.net->simulator(), w.collector, std::move(mc));
  monitor.attach_router(w.router.get());
  driver.set_monitor(&monitor);
  obs::NetState netstate = w.make_netstate("dragonfly");
  driver.set_netstate(&netstate);

  const auto start = std::chrono::steady_clock::now();
  w.net->start();
  driver.start();
  w.net->run_for(sim::duration::seconds(opt.seconds));
  driver.stop();
  monitor.finish();
  netstate.finish();
  Row row = w.finish("dragonfly", "dragonfly4x4", wall_since(start));
  row.monitored = true;
  row.stalled_intervals = monitor.stalled_intervals();
  row.peak_backlog = monitor.peak_backlog();
  row.monitor_jsonl = monitor.jsonl();
  row.max_utilization = netstate.max_utilization();
  row.netstate_jsonl = netstate.jsonl();
  return row;
}

/// Heterogeneous scenario: corner-to-corner multi-pair request on a
/// 3x3 grid whose hop-count-preferred staircase is degraded hardware.
Row run_hetero(const Options& opt, routing::CostModel cost) {
  routing::Graph grid = routing::Graph::grid(3, 3);
  // The staircase the hop-count tie-break walks from 0 to 8.
  std::vector<std::size_t> degraded;
  for (const auto [a, b] :
       {std::pair{0u, 1u}, {1u, 2u}, {2u, 5u}, {5u, 8u}}) {
    degraded.push_back(grid.find_edge(a, b));
  }
  const auto is_degraded = [degraded](std::size_t link) {
    for (const std::size_t d : degraded) {
      if (d == link) return true;
    }
    return false;
  };
  World w(std::move(grid), opt, cost,
          [is_degraded](std::size_t link, core::LinkConfig& lc) {
            // Badly distinguishable photons: the herald's post-state
            // cannot support a high CREATE floor.
            if (is_degraded(link)) lc.scenario.herald.visibility = 0.25;
          });
  // Operate every link at the best feasible quality set-point: clean
  // links land at 0.8, the degraded staircase only supports 0.6.
  const double menu[] = {0.8, 0.7, 0.6};
  w.router->annotate_from_network(menu);

  w.router->set_deliver_handler(
      [&w](const netlayer::E2eOk& ok) { w.swap->release(ok); });

  obs::NetState netstate = w.make_netstate(
      cost == routing::CostModel::kHopCount ? "hetero-hops"
                                            : "hetero-fidelity");

  netlayer::E2eRequest req;
  req.src = 0;
  req.dst = 8;
  req.num_pairs = opt.pairs;
  req.min_fidelity = 0.25;

  const auto start = std::chrono::steady_clock::now();
  w.net->start();
  w.router->submit(req);
  const auto& stats = w.router->stats();
  while (stats.completed + stats.failed < 1 &&
         sim::to_seconds(w.net->simulator().now()) < opt.cap_seconds) {
    w.net->run_for(sim::duration::milliseconds(10));
    netstate.poll();
  }
  netstate.finish();
  Row row = w.finish("hetero", "grid3x3-degraded-staircase",
                     wall_since(start));
  row.max_utilization = netstate.max_utilization();
  row.netstate_jsonl = netstate.jsonl();
  return row;
}

void print_row(const Row& r) {
  std::printf(
      "%-10s %-24s %-8s %3zu/%3zu %4llu %4llu %7zu %5llu %5llu %9.4f "
      "%7.1f %8.2f %8.2f %10.0f\n",
      r.scenario.c_str(), r.topology.c_str(), r.cost, r.nodes, r.links,
      static_cast<unsigned long long>(r.submitted),
      static_cast<unsigned long long>(r.completed), r.max_concurrent,
      static_cast<unsigned long long>(r.blocked),
      static_cast<unsigned long long>(r.delivered), r.mean_fidelity,
      r.mean_latency_ms, r.sim_seconds, r.wall_seconds,
      static_cast<double>(r.events) / r.wall_seconds);
}

void write_json(const std::string& path, const std::vector<Row>& rows,
                bool hetero_ran, double fidelity_gain) {
  if (path == "-") return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"grid_routing\",\n  \"rows\": [\n");
  std::uint64_t stalled_total = 0;
  std::uint64_t peak_backlog = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    // Interval-telemetry scalars only on monitored rows (grid and
    // dragonfly); hetero rows have no monitor and omit them.
    char mon_fields[96] = "";
    if (r.monitored) {
      stalled_total += r.stalled_intervals;
      peak_backlog = std::max(peak_backlog, r.peak_backlog);
      std::snprintf(mon_fields, sizeof(mon_fields),
                    "\"stalled_intervals\": %llu, \"peak_backlog\": "
                    "%llu, ",
                    static_cast<unsigned long long>(r.stalled_intervals),
                    static_cast<unsigned long long>(r.peak_backlog));
    }
    std::fprintf(
        f,
        "    {\"scenario\": \"%s\", \"topology\": \"%s\", \"cost\": "
        "\"%s\", \"backend\": \"%s\", \"nodes\": %zu, \"links\": %zu, "
        "\"submitted\": %llu, \"admitted\": %llu, \"max_concurrent\": "
        "%zu, \"blocked\": %llu, \"completed\": %llu, \"failed\": %llu, "
        "\"delivered\": %llu, \"mean_fidelity\": %.6f, "
        "\"mean_route_hops\": %.3f, \"mean_latency_ms\": %.3f, "
        "\"p50_request_latency_s\": %.6f, "
        "\"p99_request_latency_s\": %.6f, "
        "\"max_utilization\": %.6f, "
        "\"sim_seconds\": %.3f, \"wall_seconds\": %.4f, \"events\": "
        "%llu, \"events_per_sec\": %.1f, %s\"obs\": %s}%s\n",
        r.scenario.c_str(), r.topology.c_str(), r.cost, r.backend,
        r.nodes, r.links, static_cast<unsigned long long>(r.submitted),
        static_cast<unsigned long long>(r.admitted), r.max_concurrent,
        static_cast<unsigned long long>(r.blocked),
        static_cast<unsigned long long>(r.completed),
        static_cast<unsigned long long>(r.failed),
        static_cast<unsigned long long>(r.delivered), r.mean_fidelity,
        r.mean_route_hops, r.mean_latency_ms, r.p50_request_latency_s,
        r.p99_request_latency_s, r.max_utilization, r.sim_seconds,
        r.wall_seconds,
        static_cast<unsigned long long>(r.events),
        static_cast<double>(r.events) / r.wall_seconds,
        mon_fields,
        r.obs_json.c_str(),
        i + 1 < rows.size() ? "," : "");
  }
  double hot_edge_max_util = 0.0;
  for (const Row& r : rows) {
    hot_edge_max_util = std::max(hot_edge_max_util, r.max_utilization);
  }
  std::fprintf(f,
               "  ],\n  \"stalled_intervals\": %llu,\n"
               "  \"peak_backlog\": %llu,\n"
               "  \"hot_edge_max_utilization\": %.6f,\n",
               static_cast<unsigned long long>(stalled_total),
               static_cast<unsigned long long>(peak_backlog),
               hot_edge_max_util);
  // null, not a fabricated 0.0, when the hetero comparison did not run.
  if (hetero_ran) {
    std::fprintf(f, "  \"hetero_fidelity_gain\": %.6f\n}\n",
                 fidelity_gain);
  } else {
    std::fprintf(f, "  \"hetero_fidelity_gain\": null\n}\n");
  }
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

/// Concatenate every monitored run's interval records into one JSONL
/// file; the "run" label keys each record back to its scenario.
void write_monitor(const std::string& path, const std::vector<Row>& rows) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::size_t records = 0;
  for (const Row& r : rows) {
    if (!r.monitored) continue;
    std::fwrite(r.monitor_jsonl.data(), 1, r.monitor_jsonl.size(), f);
    for (const char c : r.monitor_jsonl) records += c == '\n';
  }
  std::fclose(f);
  std::printf("wrote %s, %zu records\n", path.c_str(), records);
}

/// Concatenate every run's per-edge network-state records into one
/// JSONL file ("run"-labelled, like write_monitor).
void write_netstate(const std::string& path,
                    const std::vector<Row>& rows) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::size_t records = 0;
  for (const Row& r : rows) {
    std::fwrite(r.netstate_jsonl.data(), 1, r.netstate_jsonl.size(), f);
    for (const char c : r.netstate_jsonl) records += c == '\n';
  }
  std::fclose(f);
  std::printf("wrote %s, %zu records\n", path.c_str(), records);
}

/// One Markdown report: a header, then each scenario's rendered
/// section (obs::render_run_report) in run order.
void write_report(const std::string& path, const std::vector<Row>& rows) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "# Grid routing run report\n\n");
  for (const Row& r : rows) {
    std::fwrite(r.report_md.data(), 1, r.report_md.size(), f);
    std::fputc('\n', f);
  }
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--scenario all|grid|dragonfly|hetero] "
               "[--rows R] [--cols C] [--requests N] [--pairs P] "
               "[--seconds S] [--cap-seconds S] [--backend dense|bell] "
               "%s\n",
               argv0, qlink::bench::Args::kUsage);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bench::Args shared;
  shared.seed = opt.seed;
  shared.json_path = opt.json_path;
  for (int i = 1; i < argc; ++i) {
    if (shared.consume(argc, argv, i, [&] { usage(argv[0]); })) continue;
    const auto arg = std::string(argv[i]);
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--scenario") {
      opt.scenario = next();
    } else if (arg == "--rows") {
      opt.rows = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--cols") {
      opt.cols = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--requests") {
      opt.requests = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--pairs") {
      opt.pairs = static_cast<std::uint16_t>(
          std::strtoul(next(), nullptr, 10));
    } else if (arg == "--seconds") {
      opt.seconds = std::strtod(next(), nullptr);
    } else if (arg == "--cap-seconds") {
      opt.cap_seconds = std::strtod(next(), nullptr);
    } else if (arg == "--backend") {
      const auto kind = qstate::parse_backend_kind(next());
      if (!kind) usage(argv[0]);
      opt.backend = *kind;
    } else {
      usage(argv[0]);
    }
  }
  opt.seed = shared.seed;
  opt.json_path = shared.json_path;
  opt.trace_path = shared.trace_path;
  opt.monitor_path = shared.monitor_path;
  opt.netstate_path = shared.netstate_path;
  opt.report_path = shared.report_path;
  if (opt.scenario != "all" && opt.scenario != "grid" &&
      opt.scenario != "dragonfly" && opt.scenario != "hetero") {
    std::fprintf(stderr, "unknown scenario '%s'\n", opt.scenario.c_str());
    usage(argv[0]);
  }
  if (opt.rows < 1 || opt.cols < 2 || opt.requests < 1 || opt.pairs < 1 ||
      opt.seconds <= 0.0 || opt.cap_seconds <= 0.0) {
    std::fprintf(stderr,
                 "need rows >= 1, cols >= 2 (each corridor spans a row), "
                 "requests/pairs >= 1, positive seconds\n");
    usage(argv[0]);
  }

  print_header(
      "Grid routing: fidelity-aware path selection + per-request "
      "reservations on general graphs");
  std::printf("%-10s %-24s %-8s %7s %4s %4s %7s %5s %5s %9s %7s %8s "
              "%8s %10s\n",
              "scenario", "topology", "cost", "nod/lnk", "subm", "done",
              "maxconc", "blckd", "pairs", "fidelity", "lat(ms)",
              "sim(s)", "wall(s)", "events/s");

  std::vector<Row> rows;
  double hetero_hops_fidelity = 0.0;
  double hetero_fid_fidelity = 0.0;
  const bool all = opt.scenario == "all";
  if (all || opt.scenario == "grid") {
    rows.push_back(run_grid(opt));
    print_row(rows.back());
  }
  if (all || opt.scenario == "dragonfly") {
    rows.push_back(run_dragonfly(opt));
    print_row(rows.back());
  }
  bool hetero_ran = false;
  if (all || opt.scenario == "hetero") {
    hetero_ran = true;
    Row hops = run_hetero(opt, routing::CostModel::kHopCount);
    print_row(hops);
    hetero_hops_fidelity = hops.mean_fidelity;
    rows.push_back(std::move(hops));
    Row fid = run_hetero(opt, routing::CostModel::kFidelity);
    print_row(fid);
    hetero_fid_fidelity = fid.mean_fidelity;
    rows.push_back(std::move(fid));
    std::printf("  -> fidelity-aware routing: mean delivered fidelity "
                "%.4f vs %.4f hop-count (gain %+.4f)\n",
                hetero_fid_fidelity, hetero_hops_fidelity,
                hetero_fid_fidelity - hetero_hops_fidelity);
  }
  write_json(opt.json_path, rows, hetero_ran,
             hetero_fid_fidelity - hetero_hops_fidelity);
  write_monitor(opt.monitor_path, rows);
  write_netstate(opt.netstate_path, rows);
  write_report(opt.report_path, rows);
  return 0;
}
