// Reproduces the Section 6.2 single-kind long runs: fidelity, throughput,
// scaled latency and queue length per kind (NL/CK/MD) and load
// (Low = 0.7, High = 0.99, Ultra = 1.5), for Lab and QL2020, plus the
// fairness comparison between request origins (all-A / all-B / random).

#include <cstdio>
#include <string>

#include "common.hpp"

namespace {

using namespace qlink;
using core::Priority;

void run_row(const char* scen_name, const hw::ScenarioParams& scenario,
             Priority kind, const char* load_name, double load,
             double seconds) {
  bench::RunSpec spec;
  spec.scenario = scenario;
  switch (kind) {
    case Priority::kNetworkLayer:
      spec.workload.nl = {load, 3};
      break;
    case Priority::kCreateKeep:
      spec.workload.ck = {load, 3};
      break;
    case Priority::kMeasureDirectly:
      spec.workload.md = {load, 3};
      break;
  }
  spec.workload.origin = workload::OriginMode::kRandom;
  spec.workload.min_fidelity = 0.64;
  spec.workload.seed = 3;
  spec.seed = 13;
  spec.simulated_seconds = seconds;
  const auto result = bench::run_scenario(spec);
  const auto& km = result.collector.kind(kind);
  const double fidelity =
      kind == Priority::kMeasureDirectly
          ? result.collector.fidelity_from_qber().value_or(0.0)
          : km.fidelity.mean();
  std::printf("%-7s %-3s %-5s | %8.3f %10.3f %10.3f %10.1f %8llu\n",
              scen_name, bench::kind_name(kind), load_name, fidelity,
              result.collector.throughput(kind),
              km.scaled_latency_s.count() ? km.scaled_latency_s.mean() : -1.0,
              result.collector.queue_length().mean(),
              static_cast<unsigned long long>(km.pairs_delivered));
}

void fairness(const hw::ScenarioParams& scenario, const char* name,
              double seconds) {
  std::printf("\nFairness (%s, MD, f = 0.99): per-origin metrics\n", name);
  std::printf("%-8s | %10s %12s %12s\n", "origin", "pairs", "SL (s)",
              "RD pairs");
  double pairs_a = 0.0;
  double pairs_b = 0.0;
  for (auto mode : {workload::OriginMode::kAllA, workload::OriginMode::kAllB,
                    workload::OriginMode::kRandom}) {
    bench::RunSpec spec;
    spec.scenario = scenario;
    spec.workload.md = {0.99, 3};
    spec.workload.origin = mode;
    spec.workload.min_fidelity = 0.64;
    spec.workload.seed = 21;
    spec.seed = 23;
    spec.simulated_seconds = seconds;
    const auto result = bench::run_scenario(spec);
    const char* label = mode == workload::OriginMode::kAllA
                            ? "all-A"
                            : (mode == workload::OriginMode::kAllB
                                   ? "all-B"
                                   : "random");
    const auto& km = result.collector.kind(Priority::kMeasureDirectly);
    std::printf("%-8s | %10llu %12.3f", label,
                static_cast<unsigned long long>(km.pairs_delivered),
                km.scaled_latency_s.count() ? km.scaled_latency_s.mean()
                                            : -1.0);
    if (mode == workload::OriginMode::kAllA) {
      pairs_a = static_cast<double>(km.pairs_delivered);
      std::printf("\n");
    } else if (mode == workload::OriginMode::kAllB) {
      pairs_b = static_cast<double>(km.pairs_delivered);
      std::printf(" %12.3f\n", metrics::relative_difference(pairs_a, pairs_b));
    } else {
      const double a = static_cast<double>(
          result.collector.has_origin(0)
              ? result.collector.by_origin(0).pairs_delivered
              : 0);
      const double b = static_cast<double>(
          result.collector.has_origin(1)
              ? result.collector.by_origin(1).pairs_delivered
              : 0);
      std::printf(" %12.3f (A vs B within run)\n",
                  metrics::relative_difference(a, b));
    }
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Section 6.2 -- single-kind runs: fidelity / throughput / scaled\n"
      "latency / mean queue length, per load (Low 0.7, High 0.99, "
      "Ultra 1.5)");
  std::printf("%-7s %-3s %-5s | %8s %10s %10s %10s %8s\n", "scen", "knd",
              "load", "F_avg", "T (1/s)", "SL (s)", "queue", "pairs");

  const double kSeconds = 20.0;
  const auto lab = hw::ScenarioParams::lab();
  const auto ql = hw::ScenarioParams::ql2020();
  struct Load {
    const char* name;
    double f;
  };
  const Load loads[] = {{"Low", 0.7}, {"High", 0.99}, {"Ultra", 1.5}};
  for (const auto& [name, f] : loads) {
    for (Priority kind : {Priority::kNetworkLayer, Priority::kCreateKeep,
                          Priority::kMeasureDirectly}) {
      run_row("Lab", lab, kind, name, f, kSeconds);
    }
  }
  for (const auto& [name, f] : loads) {
    for (Priority kind : {Priority::kNetworkLayer,
                          Priority::kMeasureDirectly}) {
      run_row("QL2020", ql, kind, name, f, kSeconds);
    }
  }
  std::printf(
      "\nExpected shape (Section 6.2): F_avg roughly constant per scenario\n"
      "and kind (fixed F_min); MD throughput slightly above NL/CK in Lab;\n"
      "QL2020 K-type throughput ~14x below Lab; Ultra overloads (queue\n"
      "grows, latency explodes) while High sits just below capacity.\n");

  fairness(lab, "Lab", kSeconds);
  std::printf(
      "\nExpected: pair counts and latencies roughly independent of the\n"
      "origin (relative differences ~0.1 or below).\n");
  return 0;
}
