// Reproduces Figure 6: performance trade-offs on QL2020 with k_max = 3.
//  (a) scaled latency vs f_P (request load fraction),
//  (b) scaled latency vs requested minimum fidelity F_min (f_P = 0.99),
//  (c) throughput vs F_min (directly scales with p_succ(F_min)).

#include <cstdio>

#include "common.hpp"

int main() {
  using namespace qlink;
  using core::Priority;

  const double kSimSeconds = 25.0;

  bench::print_header(
      "Figure 6(a) -- scaled latency vs load fraction f_P\n"
      "QL2020, k_max = 3, F_min = 0.64, NL (K-type) and MD (M-type)");
  std::printf("%6s | %16s %16s | %16s %16s\n", "f_P", "SL_NL (s)",
              "T_NL (1/s)", "SL_MD (s)", "T_MD (1/s)");
  for (double f : {0.7, 0.85, 0.99, 1.2, 1.5}) {
    bench::RunSpec nl;
    nl.scenario = hw::ScenarioParams::ql2020();
    nl.workload.nl = {f, 3};
    nl.workload.origin = workload::OriginMode::kRandom;
    nl.workload.min_fidelity = 0.64;
    nl.simulated_seconds = kSimSeconds;
    nl.seed = 101 + static_cast<std::uint64_t>(f * 100);
    const auto rn = bench::run_scenario(nl);

    bench::RunSpec md = nl;
    md.workload.nl = {};
    md.workload.md = {f, 3};
    const auto rm = bench::run_scenario(md);

    std::printf("%6.2f | %16.3f %16.3f | %16.3f %16.3f\n", f,
                rn.collector.kind(Priority::kNetworkLayer)
                    .scaled_latency_s.mean(),
                rn.collector.throughput(Priority::kNetworkLayer),
                rm.collector.kind(Priority::kMeasureDirectly)
                    .scaled_latency_s.mean(),
                rm.collector.throughput(Priority::kMeasureDirectly));
  }
  std::printf(
      "Expected shape: latency grows steeply as f_P -> 1 and explodes\n"
      "beyond it (overload); NL latencies far above MD (Fig. 6a).\n");

  bench::print_header(
      "Figure 6(b,c) -- scaled latency and throughput vs F_min\n"
      "QL2020, k_max = 3, f_P = 0.99");
  std::printf("%6s | %12s %12s | %12s %12s | %12s\n", "F_min", "SL_NL (s)",
              "SL_MD (s)", "T_NL (1/s)", "T_MD (1/s)", "alpha(MD)");
  for (double fmin : {0.5, 0.55, 0.6, 0.64, 0.68, 0.72}) {
    bench::RunSpec nl;
    nl.scenario = hw::ScenarioParams::ql2020();
    nl.workload.nl = {0.99, 3};
    nl.workload.origin = workload::OriginMode::kRandom;
    nl.workload.min_fidelity = fmin;
    nl.simulated_seconds = kSimSeconds;
    nl.seed = 202 + static_cast<std::uint64_t>(fmin * 100);

    bench::RunSpec md = nl;
    md.workload.nl = {};
    md.workload.md = {0.99, 3};

    // FEU feasibility check mirrors the paper's "higher F_min not
    // satisfiable for NL" note in Fig. 6b.
    const hw::HeraldModel model(nl.scenario.herald);
    core::FidelityEstimationUnit feu(model, nl.scenario);
    const auto advice_k = feu.advise(fmin, core::RequestType::kCreateKeep);
    const auto advice_m = feu.advise(fmin, core::RequestType::kCreateMeasure);

    if (!advice_m.feasible) {
      std::printf("%6.2f | %12s\n", fmin, "UNSUPP");
      continue;
    }
    const auto rm = bench::run_scenario(md);
    if (!advice_k.feasible) {
      std::printf("%6.2f | %12s %12.3f | %12s %12.3f | %12.3f\n", fmin,
                  "UNSUPP",
                  rm.collector.kind(Priority::kMeasureDirectly)
                      .scaled_latency_s.mean(),
                  "UNSUPP",
                  rm.collector.throughput(Priority::kMeasureDirectly),
                  advice_m.alpha);
      continue;
    }
    const auto rn = bench::run_scenario(nl);
    std::printf("%6.2f | %12.3f %12.3f | %12.3f %12.3f | %12.3f\n", fmin,
                rn.collector.kind(Priority::kNetworkLayer)
                    .scaled_latency_s.mean(),
                rm.collector.kind(Priority::kMeasureDirectly)
                    .scaled_latency_s.mean(),
                rn.collector.throughput(Priority::kNetworkLayer),
                rm.collector.throughput(Priority::kMeasureDirectly),
                advice_m.alpha);
  }
  std::printf(
      "Expected shape: higher F_min -> smaller alpha -> lower p_succ ->\n"
      "throughput falls ~linearly and latency rises; high F_min becomes\n"
      "UNSUPP for the NL/K path first (Fig. 6b/c).\n");
  return 0;
}
