// Reproduces Figure 9: fidelity of a stored |Psi+> half as a function of
// classical-communication distance (km in fiber), for (a) the
// communication qubit and the memory qubit with Table-6 lifetimes, and
// (b) a dynamically decoupled communication qubit with T2 = 1.46 s.

#include <cstdio>

#include "common.hpp"
#include "quantum/bell.hpp"
#include "quantum/channels.hpp"
#include "quantum/density_matrix.hpp"

int main() {
  using namespace qlink;
  using quantum::DensityMatrix;
  namespace bell = quantum::bell;
  namespace channels = quantum::channels;

  bench::print_header(
      "Figure 9 -- fidelity while waiting for classical communication\n"
      "Perfect |Psi+> stored on one side; x axis: one-way distance the\n"
      "control message travels (c_fiber = 206753 km/s).");

  constexpr double kFiberKmPerS = 206753.0;
  const hw::NvParams nv;

  auto stored_fidelity = [&](double km, double t1, double t2) {
    const double t_ns = km / kFiberKmPerS * 1e9;
    DensityMatrix rho = DensityMatrix::from_pure(
        bell::state_vector(bell::BellState::kPsiPlus));
    const int q0[] = {0};
    rho.apply_kraus(channels::t1t2(t_ns, t1, t2), q0);
    return bell::fidelity(rho, bell::BellState::kPsiPlus);
  };

  std::printf("%8s %18s %14s %22s\n", "km", "comm (T2*=1ms)",
              "memory (3.5ms)", "decoupled (T2=1.46s)");
  for (double km : {0.0, 5.0, 10.0, 25.0, 50.0, 100.0, 200.0, 500.0,
                    1000.0, 5000.0, 20000.0}) {
    std::printf("%8.0f %18.4f %14.4f %22.4f\n", km,
                stored_fidelity(km, nv.electron_t1_ns, nv.electron_t2_ns),
                stored_fidelity(km, nv.carbon_t1_ns, nv.carbon_t2_ns),
                stored_fidelity(km, -1.0, 1.46e9));
  }
  std::printf(
      "\nExpected shape: the bare communication qubit dies within tens of\n"
      "km; the memory qubit survives ~100 km; the decoupled qubit keeps\n"
      "F > 0.9 over intercontinental distances (Fig. 9b).\n");
  return 0;
}
