// Reproduces Appendix B: interspersed test rounds estimating link
// fidelity. Sweeps the test-round probability q and compares the FEU's
// QBER-based estimate against the true delivered fidelity measured on
// the simulated states, together with the throughput cost of testing.

#include <cstdio>

#include "common.hpp"
#include "core/network.hpp"

namespace {

using namespace qlink;

struct Outcome {
  double feu_estimate = -1.0;
  double true_fidelity = 0.0;
  double throughput = 0.0;
  std::uint64_t tests = 0;
};

Outcome run(double q, double seconds) {
  core::LinkConfig cfg;
  cfg.scenario = hw::ScenarioParams::lab();
  cfg.seed = 101;
  cfg.test_round_probability = q;
  core::Link link(cfg);

  metrics::RunningStat true_f;
  std::uint64_t delivered = 0;
  std::vector<core::OkMessage> last_a;
  link.egp_a().set_ok_handler([&](const core::OkMessage& ok) {
    last_a.push_back(ok);
  });
  link.egp_b().set_ok_handler([&](const core::OkMessage& ok) {
    if (last_a.empty()) return;
    const core::OkMessage oa = last_a.back();
    last_a.pop_back();
    true_f.add(link.pair_fidelity(oa.qubit, ok.qubit));
    ++delivered;
    link.egp_a().release_delivered(oa);
    link.egp_b().release_delivered(ok);
  });
  link.start();

  // One long-lived K request stream.
  core::CreateRequest r;
  r.type = core::RequestType::kCreateKeep;
  r.num_pairs = 10000;
  r.min_fidelity = 0.64;
  r.priority = core::Priority::kCreateKeep;
  r.consecutive = true;
  r.store_in_memory = true;
  link.egp_a().create(r);
  link.run_for(sim::duration::seconds(seconds));

  Outcome out;
  out.feu_estimate =
      link.egp_a().feu().estimated_fidelity_from_tests().value_or(-1.0);
  out.true_fidelity = true_f.mean();
  out.throughput = static_cast<double>(delivered) / seconds;
  out.tests = link.egp_a().stats().test_rounds;
  return out;
}

}  // namespace

int main() {
  bench::print_header(
      "Appendix B -- FEU test rounds: estimate vs true fidelity\n"
      "Lab, K-type stream at F_min = 0.64; sweep test probability q");
  std::printf("%6s | %10s %12s %12s %12s\n", "q", "tests", "FEU est.",
              "true F", "T (1/s)");
  const double kSeconds = 30.0;
  for (double q : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    const Outcome o = run(q, kSeconds);
    if (o.feu_estimate < 0) {
      std::printf("%6.2f | %10llu %12s %12.4f %12.3f\n", q,
                  static_cast<unsigned long long>(o.tests), "n/a",
                  o.true_fidelity, o.throughput);
    } else {
      std::printf("%6.2f | %10llu %12.4f %12.4f %12.3f\n", q,
                  static_cast<unsigned long long>(o.tests), o.feu_estimate,
                  o.true_fidelity, o.throughput);
    }
  }
  std::printf(
      "\nExpected shape: with enough test rounds the FEU estimate tracks\n"
      "the true delivered fidelity to a few percent, while throughput\n"
      "drops roughly by the test fraction q.\n");
  return 0;
}
