#pragma once

#include "qstate/hybrid_backend.hpp"

/// \file dense_backend.hpp
/// The reference backend: every multi-qubit state is a density matrix.
///
/// Semantics match the historical in-registry implementation (same
/// operation order, same Random consumption), but storage is pooled
/// and every gate/channel applies in place through bit-indexed kernels
/// instead of expanding operators to the full space — the arena/pool
/// upgrade that removes the allocation churn from the simulation hot
/// path.

namespace qlink::qstate {

class DenseBackend : public detail::HybridBackend {
 public:
  explicit DenseBackend(sim::Random& random)
      : HybridBackend(random, /*structured=*/false, "dense") {}
};

}  // namespace qlink::qstate
