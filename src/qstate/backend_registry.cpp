#include "qstate/backend_registry.hpp"

#include <stdexcept>

#include "qstate/bell_backend.hpp"
#include "qstate/dense_backend.hpp"

namespace qlink::qstate {

const char* backend_kind_name(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kDense:
      return "dense";
    case BackendKind::kBellDiagonal:
      return "bell-diagonal";
  }
  return "?";
}

BackendRegistry::BackendRegistry() {
  entries_.emplace_back("dense", [](sim::Random& r) {
    return std::make_unique<DenseBackend>(r);
  });
  entries_.emplace_back("bell", [](sim::Random& r) {
    return std::make_unique<BellDiagonalBackend>(r);
  });
  entries_.emplace_back("bell-diagonal", [](sim::Random& r) {
    return std::make_unique<BellDiagonalBackend>(r);
  });
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry registry;
  return registry;
}

void BackendRegistry::register_backend(std::string name, Factory factory) {
  if (contains(name)) {
    throw std::invalid_argument("BackendRegistry: duplicate backend name");
  }
  entries_.emplace_back(std::move(name), std::move(factory));
}

std::unique_ptr<StateBackend> BackendRegistry::make(
    std::string_view name, sim::Random& random) const {
  for (const auto& [entry_name, factory] : entries_) {
    if (entry_name == name) return factory(random);
  }
  throw std::invalid_argument("BackendRegistry: unknown backend '" +
                              std::string(name) + "'");
}

bool BackendRegistry::contains(std::string_view name) const {
  for (const auto& [entry_name, factory] : entries_) {
    if (entry_name == name) return true;
  }
  return false;
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, factory] : entries_) out.push_back(name);
  return out;
}

std::unique_ptr<StateBackend> make_backend(BackendKind kind,
                                           sim::Random& random) {
  switch (kind) {
    case BackendKind::kDense:
      return std::make_unique<DenseBackend>(random);
    case BackendKind::kBellDiagonal:
      return std::make_unique<BellDiagonalBackend>(random);
  }
  throw std::invalid_argument("make_backend: unknown kind");
}

std::optional<BackendKind> parse_backend_kind(std::string_view name) {
  if (name == "dense") return BackendKind::kDense;
  if (name == "bell" || name == "bell-diagonal") {
    return BackendKind::kBellDiagonal;
  }
  return std::nullopt;
}

}  // namespace qlink::qstate
