#pragma once

#include "qstate/hybrid_backend.hpp"

/// \file bell_backend.hpp
/// The analytic fast path: heralded NV pairs are (to excellent
/// approximation, exactly in the Pauli-frame scenarios) Bell-diagonal,
/// and every hot-path operation on them — depolarising/dephasing
/// decay, Pauli-frame corrections, entanglement swapping — has a
/// closed form on the 4 Bell coefficients. States escalate
/// ("promote") to dense density matrices the moment an operation
/// leaves the structured manifold: a non-Clifford unitary on a pair
/// half, a cross-pair merge, or a non-Bell-diagonal install. See
/// DESIGN.md, "Quantum-state backends", for the full promotion table.

namespace qlink::qstate {

class BellDiagonalBackend : public detail::HybridBackend {
 public:
  explicit BellDiagonalBackend(sim::Random& random)
      : HybridBackend(random, /*structured=*/true, "bell-diagonal") {}
};

}  // namespace qlink::qstate
