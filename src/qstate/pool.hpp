#pragma once

#include <complex>
#include <cstddef>
#include <vector>

/// \file pool.hpp
/// Size-classed buffer pool for dense state storage and scratch space.
///
/// The historical registry allocated fresh density matrices for every
/// gate, channel, merge and trace — at millions of quantum events per
/// simulated run that allocation churn dominated wall time (the
/// ROADMAP's bench_chain_scaling sys-time item). The pool recycles the
/// d*d complex buffers instead: states in this simulator span 1-4
/// qubits almost always, so a handful of size classes absorbs nearly
/// every request after warm-up.

namespace qlink::qstate {

using Complex = std::complex<double>;

class BufferPool {
 public:
  /// A buffer with at least n elements, contents unspecified (size() is
  /// exactly n). Reuses a pooled allocation when one fits.
  std::vector<Complex> acquire(std::size_t n) {
    const int cls = size_class(n);
    if (cls >= 0 && !free_[cls].empty()) {
      std::vector<Complex> out = std::move(free_[cls].back());
      free_[cls].pop_back();
      out.resize(n);  // capacity covers the class: no reallocation
      ++hits_;
      return out;
    }
    ++misses_;
    std::vector<Complex> out;
    out.reserve(cls >= 0 ? class_capacity(cls) : n);
    out.resize(n);
    return out;
  }

  /// As acquire(), but zero-filled.
  std::vector<Complex> acquire_zeroed(std::size_t n) {
    std::vector<Complex> out = acquire(n);
    std::fill(out.begin(), out.end(), Complex{0.0, 0.0});
    return out;
  }

  /// Return a buffer to the pool (oversized or surplus buffers are
  /// simply freed).
  void release(std::vector<Complex>&& v) {
    const int cls = size_class(v.capacity() ? v.capacity() : v.size());
    // Only keep buffers whose capacity exactly matches a class, so the
    // no-reallocation guarantee in acquire() holds.
    if (cls >= 0 && v.capacity() >= class_capacity(cls) &&
        free_[cls].size() < kMaxPerClass) {
      free_[cls].push_back(std::move(v));
    }
    // else: vector destructor frees it.
  }

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

 private:
  /// Classes hold 4^k complexes: the d*d buffer of a k-qubit state
  /// (k = 1..kClasses). Requests above the largest class are unpooled.
  static constexpr int kClasses = 6;  // up to 6 qubits (4096 complexes)
  static constexpr std::size_t kMaxPerClass = 64;

  static std::size_t class_capacity(int cls) {
    return std::size_t{1} << (2 * (cls + 1));
  }
  static int size_class(std::size_t n) {
    for (int c = 0; c < kClasses; ++c) {
      if (n <= class_capacity(c)) return c;
    }
    return -1;
  }

  std::vector<std::vector<Complex>> free_[kClasses];
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace qlink::qstate
