#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "quantum/density_matrix.hpp"
#include "quantum/gates.hpp"
#include "sim/random.hpp"

/// \file backend.hpp
/// The pluggable quantum-state representation boundary.
///
/// quantum::QuantumRegistry owns *which* qubits exist and hands every
/// state-touching operation to a StateBackend. A backend chooses how the
/// joint states are represented: DenseBackend keeps density matrices
/// (pooled, in-place — the reference semantics), BellDiagonalBackend
/// tracks two-qubit pairs as 4 Bell-diagonal coefficients with
/// closed-form Pauli-noise decay and entanglement swapping, escalating
/// to dense storage only when an operation leaves the structured
/// manifold. Backends are selected per scenario through BackendRegistry
/// (see backend_registry.hpp) and core::LinkConfig::backend.

namespace qlink::qstate {

/// Opaque handle to a live qubit. Id 0 is never valid.
using QubitId = std::uint64_t;

enum class BackendKind { kDense, kBellDiagonal };

/// Counters every backend maintains; benches report them so the effect
/// of the structured fast path and the buffer pool is observable.
struct BackendStats {
  std::uint64_t fast_ops = 0;    ///< ops served by a closed-form path
  std::uint64_t dense_ops = 0;   ///< ops that ran dense linear algebra
  std::uint64_t promotions = 0;  ///< structured groups escalated to dense
  std::uint64_t demotions = 0;   ///< dense groups rebuilt as Bell pairs
                                 ///< by a fresh Bell-diagonal install
  std::uint64_t pool_hits = 0;   ///< dense buffers reused from the pool
  std::uint64_t pool_misses = 0; ///< dense buffers newly allocated
};

/// Abstract quantum-state store. All operations use the same
/// conventions as the historical registry code: qubit 0 of a group is
/// the leftmost tensor factor, measurement draws exactly one
/// Random::bernoulli(P(outcome == 1)) per measured qubit, and measured
/// qubits stay allocated in their post-measurement product state.
class StateBackend {
 public:
  virtual ~StateBackend() = default;

  StateBackend(const StateBackend&) = delete;
  StateBackend& operator=(const StateBackend&) = delete;

  virtual const char* name() const noexcept = 0;

  /// Allocate a fresh qubit in |0>.
  virtual QubitId create() = 0;
  /// Destroy a qubit: it is traced out of its group.
  virtual void discard(QubitId q) = 0;
  virtual bool exists(QubitId q) const = 0;
  virtual std::size_t live_qubits() const = 0;
  /// Number of qubits sharing a state with q (including q).
  virtual std::size_t group_size(QubitId q) const = 0;

  /// Apply a unitary on the listed qubits (groups merged as needed).
  virtual void apply_unitary(const quantum::Matrix& u,
                             std::span<const QubitId> qubits) = 0;
  /// Apply a Kraus channel on the listed qubits.
  virtual void apply_kraus(std::span<const quantum::Matrix> kraus,
                           std::span<const QubitId> qubits) = 0;

  /// Dephasing channel rho -> (1-p) rho + p Z rho Z on one qubit.
  virtual void dephase(QubitId q, double p) = 0;
  /// Depolarising channel with keep-weight f (channels::depolarizing).
  virtual void depolarize(QubitId q, double f) = 0;
  /// Combined T1/T2 decay over t_ns (channels::t1t2 semantics;
  /// t1/t2 <= 0 means infinite).
  virtual void decay(QubitId q, double t_ns, double t1_ns, double t2_ns) = 0;

  /// Measure one qubit in the given basis (collapses and separates it
  /// from its group; it stays allocated). Returns 0 or 1.
  virtual int measure(QubitId q, quantum::gates::Basis basis) = 0;

  /// Bell measurement: CNOT(control -> target), H(control), then both
  /// qubits measured in Z. Returns {m1 = control, m2 = target} with the
  /// same Random consumption as four separate calls would have.
  virtual std::pair<int, int> bell_measure(QubitId control,
                                           QubitId target) = 0;

  /// Overwrite the joint state of the listed qubits (old correlations
  /// are severed, the state is renormalised).
  virtual void set_state(std::span<const QubitId> qubits,
                         const quantum::DensityMatrix& dm) = 0;
  /// Reset a single qubit to |0> (traced out of its group first).
  virtual void reset(QubitId q) = 0;

  /// Reduced density matrix of the listed qubits, in request order
  /// (simulator privilege; diagnostics only).
  virtual quantum::DensityMatrix peek(
      std::span<const QubitId> qubits) const = 0;

  virtual const BackendStats& stats() const noexcept { return stats_; }

 protected:
  StateBackend() = default;
  mutable BackendStats stats_;
};

const char* backend_kind_name(BackendKind kind) noexcept;

}  // namespace qlink::qstate
