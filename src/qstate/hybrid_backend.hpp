#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "qstate/backend.hpp"
#include "qstate/pool.hpp"

/// \file hybrid_backend.hpp
/// Shared implementation behind DenseBackend and BellDiagonalBackend.
///
/// Groups of entangled qubits carry one of three representations:
///
///  - kSingle: an unentangled qubit's 2x2 density matrix, stored inline
///    (no heap traffic at all — this covers the per-cycle electron
///    initialisation that dominated the historical profile);
///  - kPair: a two-qubit Bell-diagonal state as 4 coefficients
///    {Phi+, Phi-, Psi+, Psi-} (structured mode only);
///  - kDense: a pooled d*d density-matrix buffer with in-place gate /
///    channel kernels (no operator expansion, no temporaries).
///
/// With `structured == false` (DenseBackend) every multi-qubit state is
/// kDense: the reference semantics, matching the historical registry
/// exactly (including its Random consumption). With `structured ==
/// true` (BellDiagonalBackend) two-qubit installs that are Bell-
/// diagonal take the kPair fast path, and any operation that leaves
/// the structured manifold *promotes* the group to kDense (see
/// DESIGN.md "Quantum-state backends" for the promotion rules).

namespace qlink::qstate::detail {

class HybridBackend : public StateBackend {
 public:
  HybridBackend(sim::Random& random, bool structured, const char* name);
  ~HybridBackend() override;

  const char* name() const noexcept override { return name_; }

  QubitId create() override;
  void discard(QubitId q) override;
  bool exists(QubitId q) const override;
  std::size_t live_qubits() const override { return live_; }
  std::size_t group_size(QubitId q) const override;

  void apply_unitary(const quantum::Matrix& u,
                     std::span<const QubitId> qubits) override;
  void apply_kraus(std::span<const quantum::Matrix> kraus,
                   std::span<const QubitId> qubits) override;

  void dephase(QubitId q, double p) override;
  void depolarize(QubitId q, double f) override;
  void decay(QubitId q, double t_ns, double t1_ns, double t2_ns) override;

  int measure(QubitId q, quantum::gates::Basis basis) override;
  std::pair<int, int> bell_measure(QubitId control, QubitId target) override;

  void set_state(std::span<const QubitId> qubits,
                 const quantum::DensityMatrix& dm) override;
  void reset(QubitId q) override;

  quantum::DensityMatrix peek(std::span<const QubitId> qubits) const override;

  const BackendStats& stats() const noexcept override {
    stats_.pool_hits = pool_.hits();
    stats_.pool_misses = pool_.misses();
    return stats_;
  }

  /// Structured mode only: when a single-qubit channel is not a Pauli
  /// channel (finite-T1 amplitude damping), approximate it on Bell
  /// pairs by its Pauli twirl instead of promoting to dense. Exact for
  /// every Pauli channel; O(gamma) approximation otherwise. Default on.
  void set_twirl_non_pauli(bool enabled) noexcept {
    twirl_non_pauli_ = enabled;
  }
  bool twirl_non_pauli() const noexcept { return twirl_non_pauli_; }

 private:
  enum class Rep : std::uint8_t { kSingle, kPair, kDense };

  struct Group {
    Rep rep = Rep::kSingle;
    std::array<Complex, 4> c2{};   // kSingle: 2x2 row-major
    std::array<double, 4> bell{};  // kPair: Bell-diagonal coefficients
    std::vector<Complex> rho;      // kDense: d*d row-major (pooled)
    int nq = 1;
    std::vector<QubitId> members;  // position i <-> qubit index i
  };

  static constexpr std::uint32_t kNoGroup = 0xFFFFFFFFu;

  struct Slot {
    std::uint32_t group = kNoGroup;
    std::uint32_t index = 0;
  };

  // --- slot / group bookkeeping -------------------------------------
  const Slot& slot(QubitId q) const;
  Group& group_of(QubitId q) { return groups_[slot(q).group]; }
  const Group& group_of(QubitId q) const { return groups_[slot(q).group]; }
  std::uint32_t alloc_group();
  void free_group(std::uint32_t gi);
  /// Make q a fresh singleton kSingle group in state |0><0|.
  void make_singleton(QubitId q);

  /// Remove q from its group by tracing it out; q ends in a fresh
  /// singleton |0> group. No-op when q is already alone.
  void extract(QubitId q);

  /// Merge all listed qubits into one kDense group (first-seen group
  /// order, like the historical registry); fills `indices` with each
  /// qubit's in-group index.
  std::uint32_t merge(std::span<const QubitId> qubits,
                      std::vector<int>& indices);

  /// Escalate a structured group to kDense storage.
  void promote(std::uint32_t gi);

  /// Dense buffer of a group's state (materialising kSingle/kPair
  /// without changing the group's representation).
  std::vector<Complex> materialize(const Group& g) const;
  quantum::DensityMatrix materialize_dm(const Group& g) const;

  // --- dense in-place kernels (operate on Group::rho) ---------------
  void dense_apply_1q(Group& g, const quantum::Matrix& u, int qubit);
  void dense_apply_2q(Group& g, const quantum::Matrix& u, int q0, int q1);
  void dense_apply_generic(Group& g, const quantum::Matrix& u,
                           std::span<const int> targets);
  void dense_kraus(Group& g, std::span<const quantum::Matrix> kraus,
                   std::span<const int> targets);
  void dense_dephase(Group& g, int qubit, double p);
  void dense_depolarize(Group& g, int qubit, double f);
  void dense_decay(Group& g, int qubit, double gamma, double pd);
  int dense_measure(Group& g, QubitId q, quantum::gates::Basis basis);
  /// Partial-trace one qubit out of a dense group (shrinks it; the
  /// group may collapse to kSingle).
  void dense_remove_qubit(std::uint32_t gi, int qubit);

  // --- structured helpers --------------------------------------------
  void pair_measure_collapse(std::uint32_t gi, QubitId q,
                             quantum::gates::Basis basis, int outcome);
  bool try_set_pair(std::uint32_t gi, const quantum::DensityMatrix& dm);

  sim::Random& random_;
  const bool structured_;
  const char* name_;
  bool twirl_non_pauli_ = true;

  BufferPool pool_;
  std::vector<Group> groups_;
  std::vector<std::uint32_t> free_groups_;
  std::vector<Slot> slots_;  // indexed by QubitId
  QubitId next_id_ = 1;
  std::size_t live_ = 0;
};

}  // namespace qlink::qstate::detail
