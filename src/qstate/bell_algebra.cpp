#include "qstate/bell_algebra.hpp"

#include <cmath>

#include "quantum/gates.hpp"

namespace qlink::qstate::bell_algebra {

using quantum::Complex;
using quantum::Matrix;

namespace {

const Matrix& pauli_matrix(int code) {
  switch (code) {
    case 1:
      return quantum::gates::x();
    case 2:
      return quantum::gates::y();
    case 3:
      return quantum::gates::z();
    default:
      return quantum::gates::i2();
  }
}

}  // namespace

std::array<Complex, 4> pauli_coefficients(const Matrix& k) {
  std::array<Complex, 4> out;
  for (int s = 0; s < 4; ++s) {
    const Matrix& sigma = pauli_matrix(s);
    // tr(sigma^dagger K) / 2; Paulis are Hermitian.
    Complex t{0.0, 0.0};
    for (std::size_t i = 0; i < 2; ++i) {
      for (std::size_t j = 0; j < 2; ++j) {
        t += std::conj(sigma(i, j)) * k(i, j);
      }
    }
    out[s] = t / 2.0;
  }
  return out;
}

std::optional<int> match_pauli_unitary(const Matrix& u, double tol) {
  if (u.rows() != 2 || u.cols() != 2) return std::nullopt;
  const auto c = pauli_coefficients(u);
  for (int s = 0; s < 4; ++s) {
    if (std::abs(std::abs(c[s]) - 1.0) > tol) continue;
    // The other coefficients must vanish.
    double rest = 0.0;
    for (int t = 0; t < 4; ++t) {
      if (t != s) rest += std::norm(c[t]);
    }
    if (rest <= tol * tol) return s;
  }
  return std::nullopt;
}

PauliChannelWeights pauli_channel_weights(std::span<const Matrix> kraus,
                                          double tol) {
  PauliChannelWeights out;
  out.exact = true;
  for (const Matrix& k : kraus) {
    if (k.rows() != 2 || k.cols() != 2) {
      out.exact = false;
      return out;
    }
    const auto c = pauli_coefficients(k);
    int nonzero = 0;
    for (int s = 0; s < 4; ++s) {
      const double w = std::norm(c[s]);
      out.w[s] += w;
      if (w > tol) ++nonzero;
    }
    // Exact iff K is (numerically) a multiple of one Pauli, i.e. its
    // Pauli decomposition has one term (2x2 operators are always in
    // the Pauli span, so single-term support is the whole check).
    if (nonzero > 1) out.exact = false;
  }
  return out;
}

std::array<double, 4> t1t2_twirl_weights(double gamma, double dephase_p) {
  // Amplitude damping: K0 = diag(1, sqrt(1-gamma)) = aI + bZ,
  // K1 = sqrt(gamma)|0><1| = sqrt(gamma)(X + iY)/2.
  const double s = std::sqrt(1.0 - gamma);
  const double a = (1.0 + s) / 2.0;
  const double b = (1.0 - s) / 2.0;
  std::array<double, 4> ad{a * a, gamma / 4.0, gamma / 4.0, b * b};
  if (dephase_p <= 0.0) return ad;
  // Compose with dephasing {I: 1-p, Z: p}: convolution under Pauli
  // multiplication (Z * I = Z, Z * X = Y, Z * Y = X, Z * Z = I up to
  // phase).
  static constexpr int kTimesZ[4] = {3, 2, 1, 0};
  std::array<double, 4> out{0.0, 0.0, 0.0, 0.0};
  for (int sdx = 0; sdx < 4; ++sdx) {
    out[sdx] += (1.0 - dephase_p) * ad[sdx];
    out[kTimesZ[sdx]] += dephase_p * ad[sdx];
  }
  return out;
}

}  // namespace qlink::qstate::bell_algebra
