#include "qstate/hybrid_backend.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "qstate/bell_algebra.hpp"
#include "quantum/bell.hpp"
#include "quantum/channels.hpp"

namespace qlink::qstate::detail {

using quantum::DensityMatrix;
using quantum::Matrix;
namespace gates = quantum::gates;
namespace ba = bell_algebra;

namespace {

constexpr double kBellTolerance = 1e-9;

/// Insert a zero bit at the position given by `mask` (a power of two):
/// bits below stay, bits at/above shift up one.
inline std::size_t insert_zero(std::size_t v, std::size_t mask) {
  return ((v & ~(mask - 1)) << 1) | (v & (mask - 1));
}

inline bool is_swap_gate(const Matrix& u) {
  if (&u == &gates::swap()) return true;
  return u.rows() == 4 && u.cols() == 4 &&
         u.approx_equal(gates::swap(), 1e-12);
}

/// In-place 2x2 conjugation a -> U a U^dagger on a row-major 2x2.
inline void conj2x2(std::array<Complex, 4>& a, const Matrix& u) {
  const Complex u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
  // Left-multiply by U.
  Complex b0 = u00 * a[0] + u01 * a[2];
  Complex b1 = u00 * a[1] + u01 * a[3];
  Complex b2 = u10 * a[0] + u11 * a[2];
  Complex b3 = u10 * a[1] + u11 * a[3];
  // Right-multiply by U^dagger.
  a[0] = b0 * std::conj(u00) + b1 * std::conj(u01);
  a[1] = b0 * std::conj(u10) + b1 * std::conj(u11);
  a[2] = b2 * std::conj(u00) + b3 * std::conj(u01);
  a[3] = b2 * std::conj(u10) + b3 * std::conj(u11);
}

/// a += K b K^dagger for 2x2 operators.
inline void accum_conj2x2(std::array<Complex, 4>& a,
                          const std::array<Complex, 4>& b, const Matrix& k) {
  const Complex k00 = k(0, 0), k01 = k(0, 1), k10 = k(1, 0), k11 = k(1, 1);
  const Complex b0 = k00 * b[0] + k01 * b[2];
  const Complex b1 = k00 * b[1] + k01 * b[3];
  const Complex b2 = k10 * b[0] + k11 * b[2];
  const Complex b3 = k10 * b[1] + k11 * b[3];
  a[0] += b0 * std::conj(k00) + b1 * std::conj(k01);
  a[1] += b0 * std::conj(k10) + b1 * std::conj(k11);
  a[2] += b2 * std::conj(k00) + b3 * std::conj(k01);
  a[3] += b2 * std::conj(k10) + b3 * std::conj(k11);
}

void check_no_duplicates(std::span<const QubitId> qubits) {
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    for (std::size_t j = i + 1; j < qubits.size(); ++j) {
      if (qubits[i] == qubits[j]) {
        throw std::invalid_argument("merge: duplicate qubit");
      }
    }
  }
}

}  // namespace

HybridBackend::HybridBackend(sim::Random& random, bool structured,
                             const char* name)
    : random_(random), structured_(structured), name_(name) {}

HybridBackend::~HybridBackend() = default;

// ---------------------------------------------------------------------------
// Slot / group bookkeeping

const HybridBackend::Slot& HybridBackend::slot(QubitId q) const {
  if (q >= slots_.size() || slots_[q].group == kNoGroup) {
    throw std::invalid_argument("QuantumRegistry: unknown qubit");
  }
  return slots_[q];
}

std::uint32_t HybridBackend::alloc_group() {
  if (!free_groups_.empty()) {
    const std::uint32_t gi = free_groups_.back();
    free_groups_.pop_back();
    return gi;
  }
  groups_.emplace_back();
  return static_cast<std::uint32_t>(groups_.size() - 1);
}

void HybridBackend::free_group(std::uint32_t gi) {
  Group& g = groups_[gi];
  if (!g.rho.empty()) pool_.release(std::move(g.rho));
  g.rho.clear();
  g.members.clear();  // keeps capacity for reuse
  g.rep = Rep::kSingle;
  g.nq = 1;
  free_groups_.push_back(gi);
}

void HybridBackend::make_singleton(QubitId q) {
  const std::uint32_t gi = alloc_group();
  Group& g = groups_[gi];
  g.rep = Rep::kSingle;
  g.c2 = {Complex{1.0, 0.0}, Complex{0.0, 0.0}, Complex{0.0, 0.0},
          Complex{0.0, 0.0}};
  g.nq = 1;
  g.members.assign(1, q);
  slots_[q] = Slot{gi, 0};
}

QubitId HybridBackend::create() {
  const QubitId id = next_id_++;
  if (id >= slots_.size()) slots_.resize(id + 1);
  make_singleton(id);
  ++live_;
  return id;
}

bool HybridBackend::exists(QubitId q) const {
  return q < slots_.size() && slots_[q].group != kNoGroup;
}

std::size_t HybridBackend::group_size(QubitId q) const {
  return group_of(q).members.size();
}

void HybridBackend::extract(QubitId q) {
  const Slot s = slot(q);
  Group& g = groups_[s.group];
  if (g.members.size() == 1) return;

  if (g.rep == Rep::kPair) {
    // The partner of any Bell-diagonal pair is left exactly maximally
    // mixed (what the dense partial trace computes).
    const QubitId partner = g.members[1 - s.index];
    g.rep = Rep::kSingle;
    g.c2 = {Complex{0.5, 0.0}, Complex{0.0, 0.0}, Complex{0.0, 0.0},
            Complex{0.5, 0.0}};
    g.nq = 1;
    g.members.assign(1, partner);
    slots_[partner] = Slot{s.group, 0};
    ++stats_.fast_ops;
  } else {
    dense_remove_qubit(s.group, static_cast<int>(s.index));
  }
  make_singleton(q);
}

void HybridBackend::discard(QubitId q) {
  extract(q);
  free_group(slots_[q].group);
  slots_[q].group = kNoGroup;
  --live_;
}

void HybridBackend::reset(QubitId q) {
  extract(q);
  Group& g = group_of(q);
  if (!g.rho.empty()) pool_.release(std::move(g.rho));
  g.rho.clear();
  g.rep = Rep::kSingle;
  g.nq = 1;
  g.c2 = {Complex{1.0, 0.0}, Complex{0.0, 0.0}, Complex{0.0, 0.0},
          Complex{0.0, 0.0}};
}

// ---------------------------------------------------------------------------
// Materialisation, promotion, merge

std::vector<Complex> HybridBackend::materialize(const Group& g) const {
  auto& pool = const_cast<BufferPool&>(pool_);
  switch (g.rep) {
    case Rep::kSingle: {
      std::vector<Complex> out = pool.acquire(4);
      std::copy(g.c2.begin(), g.c2.end(), out.begin());
      return out;
    }
    case Rep::kPair: {
      // Promotion path (cold): reuse the canonical conversion.
      const DensityMatrix dm = quantum::bell::from_coefficients(g.bell);
      std::vector<Complex> out = pool.acquire(16);
      for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = 0; j < 4; ++j) out[i * 4 + j] = dm.matrix()(i, j);
      }
      return out;
    }
    case Rep::kDense: {
      std::vector<Complex> out = pool.acquire(g.rho.size());
      std::copy(g.rho.begin(), g.rho.end(), out.begin());
      return out;
    }
  }
  throw std::logic_error("materialize: invalid representation");
}

DensityMatrix HybridBackend::materialize_dm(const Group& g) const {
  if (g.rep == Rep::kPair) {
    return quantum::bell::from_coefficients(g.bell);
  }
  const std::size_t d = std::size_t{1} << g.nq;
  Matrix m(d, d);
  if (g.rep == Rep::kSingle) {
    m(0, 0) = g.c2[0];
    m(0, 1) = g.c2[1];
    m(1, 0) = g.c2[2];
    m(1, 1) = g.c2[3];
  } else {
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = 0; j < d; ++j) m(i, j) = g.rho[i * d + j];
    }
  }
  return DensityMatrix::from_matrix(std::move(m));
}

void HybridBackend::promote(std::uint32_t gi) {
  Group& g = groups_[gi];
  if (g.rep == Rep::kDense) return;
  if (g.rep == Rep::kPair) ++stats_.promotions;
  g.rho = materialize(g);
  g.rep = Rep::kDense;
}

std::uint32_t HybridBackend::merge(std::span<const QubitId> qubits,
                                   std::vector<int>& indices) {
  if (qubits.empty()) throw std::invalid_argument("merge: no qubits");
  check_no_duplicates(qubits);

  // Collect the distinct groups in first-seen order.
  std::vector<std::uint32_t> group_ids;
  for (QubitId q : qubits) {
    const std::uint32_t gi = slot(q).group;
    if (std::find(group_ids.begin(), group_ids.end(), gi) ==
        group_ids.end()) {
      group_ids.push_back(gi);
    }
  }

  const std::uint32_t target = group_ids.front();
  if (group_ids.size() > 1 || groups_[target].rep != Rep::kDense) {
    promote(target);
  }
  for (std::size_t k = 1; k < group_ids.size(); ++k) {
    Group& t = groups_[target];
    Group& g = groups_[group_ids[k]];
    promote(group_ids[k]);

    // Kronecker product t (x) g into a fresh pooled buffer.
    const std::size_t dt = std::size_t{1} << t.nq;
    const std::size_t dg = std::size_t{1} << g.nq;
    const std::size_t d = dt * dg;
    std::vector<Complex> out = pool_.acquire(d * d);
    for (std::size_t i1 = 0; i1 < dt; ++i1) {
      for (std::size_t j1 = 0; j1 < dt; ++j1) {
        const Complex a = t.rho[i1 * dt + j1];
        for (std::size_t i2 = 0; i2 < dg; ++i2) {
          for (std::size_t j2 = 0; j2 < dg; ++j2) {
            out[(i1 * dg + i2) * d + (j1 * dg + j2)] =
                a * g.rho[i2 * dg + j2];
          }
        }
      }
    }
    pool_.release(std::move(t.rho));
    t.rho = std::move(out);

    const int offset = t.nq;
    t.nq += g.nq;
    for (std::size_t i = 0; i < g.members.size(); ++i) {
      const QubitId q = g.members[i];
      t.members.push_back(q);
      slots_[q] = Slot{target,
                       static_cast<std::uint32_t>(offset + i)};
    }
    g.members.clear();  // detach before freeing (members moved over)
    free_group(group_ids[k]);
  }

  indices.clear();
  indices.reserve(qubits.size());
  for (QubitId q : qubits) indices.push_back(static_cast<int>(slot(q).index));
  return target;
}

// ---------------------------------------------------------------------------
// Dense in-place kernels

void HybridBackend::dense_apply_1q(Group& g, const Matrix& u, int qubit) {
  const std::size_t d = std::size_t{1} << g.nq;
  const std::size_t m = std::size_t{1} << (g.nq - 1 - qubit);
  const Complex u00 = u(0, 0), u01 = u(0, 1), u10 = u(1, 0), u11 = u(1, 1);
  Complex* rho = g.rho.data();

  for (std::size_t r = 0; r < d / 2; ++r) {
    const std::size_t i0 = insert_zero(r, m);
    Complex* rowA = rho + i0 * d;
    Complex* rowB = rho + (i0 | m) * d;
    for (std::size_t j = 0; j < d; ++j) {
      const Complex a = rowA[j], b = rowB[j];
      rowA[j] = u00 * a + u01 * b;
      rowB[j] = u10 * a + u11 * b;
    }
  }
  const Complex c00 = std::conj(u00), c01 = std::conj(u01);
  const Complex c10 = std::conj(u10), c11 = std::conj(u11);
  for (std::size_t r = 0; r < d / 2; ++r) {
    const std::size_t j0 = insert_zero(r, m);
    const std::size_t j1 = j0 | m;
    for (std::size_t i = 0; i < d; ++i) {
      Complex* row = rho + i * d;
      const Complex a = row[j0], b = row[j1];
      row[j0] = a * c00 + b * c01;
      row[j1] = a * c10 + b * c11;
    }
  }
}

void HybridBackend::dense_apply_2q(Group& g, const Matrix& u, int q0,
                                   int q1) {
  const std::size_t d = std::size_t{1} << g.nq;
  // Sub-index convention matches DensityMatrix::expand_operator: the
  // first target is the more significant sub-bit.
  const std::size_t m0 = std::size_t{1} << (g.nq - 1 - q0);
  const std::size_t m1 = std::size_t{1} << (g.nq - 1 - q1);
  const std::size_t lo = std::min(m0, m1);
  const std::size_t hi = std::max(m0, m1);
  Complex* rho = g.rho.data();

  std::array<std::size_t, 4> off;
  for (int s = 0; s < 4; ++s) {
    off[s] = ((s & 2) ? m0 : 0) | ((s & 1) ? m1 : 0);
  }

  std::array<Complex, 4> v, w;
  for (std::size_t r = 0; r < d / 4; ++r) {
    const std::size_t base = insert_zero(insert_zero(r, lo), hi);
    for (std::size_t j = 0; j < d; ++j) {
      for (int s = 0; s < 4; ++s) v[s] = rho[(base | off[s]) * d + j];
      for (int s = 0; s < 4; ++s) {
        w[s] = u(s, 0) * v[0] + u(s, 1) * v[1] + u(s, 2) * v[2] +
               u(s, 3) * v[3];
      }
      for (int s = 0; s < 4; ++s) rho[(base | off[s]) * d + j] = w[s];
    }
  }
  for (std::size_t r = 0; r < d / 4; ++r) {
    const std::size_t base = insert_zero(insert_zero(r, lo), hi);
    for (std::size_t i = 0; i < d; ++i) {
      Complex* row = rho + i * d;
      for (int s = 0; s < 4; ++s) v[s] = row[base | off[s]];
      for (int s = 0; s < 4; ++s) {
        w[s] = v[0] * std::conj(u(s, 0)) + v[1] * std::conj(u(s, 1)) +
               v[2] * std::conj(u(s, 2)) + v[3] * std::conj(u(s, 3));
      }
      for (int s = 0; s < 4; ++s) row[base | off[s]] = w[s];
    }
  }
}

void HybridBackend::dense_apply_generic(Group& g, const Matrix& u,
                                        std::span<const int> targets) {
  DensityMatrix dm = materialize_dm(g);
  dm.apply_unitary(u, targets);
  const std::size_t d = std::size_t{1} << g.nq;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) g.rho[i * d + j] = dm.matrix()(i, j);
  }
}

void HybridBackend::dense_kraus(Group& g, std::span<const Matrix> kraus,
                                std::span<const int> targets) {
  if (kraus.empty()) throw std::invalid_argument("apply_kraus: empty set");
  const std::size_t k = targets.size();
  const std::size_t d = std::size_t{1} << g.nq;
  if (k > 2) {
    DensityMatrix dm = materialize_dm(g);
    dm.apply_kraus(kraus, targets);
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = 0; j < d; ++j) {
        g.rho[i * d + j] = dm.matrix()(i, j);
      }
    }
    return;
  }

  std::vector<Complex> original = std::move(g.rho);
  g.rho = pool_.acquire(d * d);
  std::vector<Complex> acc = pool_.acquire_zeroed(d * d);
  for (const Matrix& op : kraus) {
    std::copy(original.begin(), original.end(), g.rho.begin());
    if (k == 1) {
      dense_apply_1q(g, op, targets[0]);
    } else {
      dense_apply_2q(g, op, targets[0], targets[1]);
    }
    for (std::size_t i = 0; i < d * d; ++i) acc[i] += g.rho[i];
  }
  pool_.release(std::move(original));
  pool_.release(std::move(g.rho));
  g.rho = std::move(acc);
}

void HybridBackend::dense_dephase(Group& g, int qubit, double p) {
  const std::size_t d = std::size_t{1} << g.nq;
  const std::size_t m = std::size_t{1} << (g.nq - 1 - qubit);
  const double factor = 1.0 - 2.0 * p;
  Complex* rho = g.rho.data();
  for (std::size_t i = 0; i < d; ++i) {
    const std::size_t bi = i & m;
    Complex* row = rho + i * d;
    for (std::size_t j = 0; j < d; ++j) {
      if ((j & m) != bi) row[j] *= factor;
    }
  }
}

void HybridBackend::dense_depolarize(Group& g, int qubit, double f) {
  const std::size_t d = std::size_t{1} << g.nq;
  const std::size_t m = std::size_t{1} << (g.nq - 1 - qubit);
  const double e = (1.0 - f) / 3.0;
  const double keep = f + e;
  const double cross = 2.0 * e;
  const double off = f - e;
  Complex* rho = g.rho.data();
  for (std::size_t ri = 0; ri < d / 2; ++ri) {
    const std::size_t i0 = insert_zero(ri, m);
    const std::size_t i1 = i0 | m;
    for (std::size_t rj = 0; rj < d / 2; ++rj) {
      const std::size_t j0 = insert_zero(rj, m);
      const std::size_t j1 = j0 | m;
      const Complex v00 = rho[i0 * d + j0];
      const Complex v11 = rho[i1 * d + j1];
      rho[i0 * d + j0] = keep * v00 + cross * v11;
      rho[i1 * d + j1] = keep * v11 + cross * v00;
      rho[i0 * d + j1] *= off;
      rho[i1 * d + j0] *= off;
    }
  }
}

void HybridBackend::dense_decay(Group& g, int qubit, double gamma,
                                double pd) {
  const std::size_t d = std::size_t{1} << g.nq;
  const std::size_t m = std::size_t{1} << (g.nq - 1 - qubit);
  const double keep = 1.0 - gamma;
  const double off = std::sqrt(keep) * (1.0 - 2.0 * pd);
  Complex* rho = g.rho.data();
  for (std::size_t ri = 0; ri < d / 2; ++ri) {
    const std::size_t i0 = insert_zero(ri, m);
    const std::size_t i1 = i0 | m;
    for (std::size_t rj = 0; rj < d / 2; ++rj) {
      const std::size_t j0 = insert_zero(rj, m);
      const std::size_t j1 = j0 | m;
      const Complex v11 = rho[i1 * d + j1];
      rho[i0 * d + j0] += gamma * v11;
      rho[i1 * d + j1] = keep * v11;
      rho[i0 * d + j1] *= off;
      rho[i1 * d + j0] *= off;
    }
  }
}

void HybridBackend::dense_remove_qubit(std::uint32_t gi, int qubit) {
  Group& g = groups_[gi];
  const std::size_t d = std::size_t{1} << g.nq;
  const std::size_t dr = d / 2;
  const std::size_t m = std::size_t{1} << (g.nq - 1 - qubit);
  std::vector<Complex> out = pool_.acquire(dr * dr);
  for (std::size_t i = 0; i < dr; ++i) {
    const std::size_t i0 = insert_zero(i, m);
    for (std::size_t j = 0; j < dr; ++j) {
      const std::size_t j0 = insert_zero(j, m);
      out[i * dr + j] =
          g.rho[i0 * d + j0] + g.rho[(i0 | m) * d + (j0 | m)];
    }
  }
  pool_.release(std::move(g.rho));
  g.rho = std::move(out);
  g.members.erase(g.members.begin() + qubit);
  --g.nq;
  for (std::size_t i = 0; i < g.members.size(); ++i) {
    slots_[g.members[i]].index = static_cast<std::uint32_t>(i);
  }
  if (g.nq == 1) {
    // Collapse to the inline representation: singleton groups never
    // carry a heap buffer.
    g.c2 = {g.rho[0], g.rho[1], g.rho[2], g.rho[3]};
    pool_.release(std::move(g.rho));
    g.rho.clear();
    g.rep = Rep::kSingle;
  }
}

int HybridBackend::dense_measure(Group& g, QubitId q,
                                 quantum::gates::Basis basis) {
  const Slot s = slots_[q];
  if (basis != gates::Basis::kZ) {
    dense_apply_1q(g, gates::basis_change(basis),
                   static_cast<int>(s.index));
  }
  const std::size_t d = std::size_t{1} << g.nq;
  const std::size_t m = std::size_t{1} << (g.nq - 1 - s.index);
  double prob0 = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    if ((i & m) == 0) prob0 += g.rho[i * d + i].real();
  }
  const int outcome = random_.bernoulli(1.0 - prob0) ? 1 : 0;

  const std::size_t v = outcome ? m : 0;
  double p = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    if ((i & m) == v) p += g.rho[i * d + i].real();
  }
  if (p >= 1e-15) {
    const double inv = 1.0 / p;
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = 0; j < d; ++j) {
        if ((i & m) != v || (j & m) != v) {
          g.rho[i * d + j] = Complex{0.0, 0.0};
        } else {
          g.rho[i * d + j] *= inv;
        }
      }
    }
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// Public operations

void HybridBackend::apply_unitary(const Matrix& u,
                                  std::span<const QubitId> qubits) {
  if (qubits.empty()) throw std::invalid_argument("merge: no qubits");
  if (!u.is_square() ||
      u.rows() != (std::size_t{1} << qubits.size())) {
    throw std::invalid_argument("expand_operator: operator/target mismatch");
  }
  check_no_duplicates(qubits);

  if (qubits.size() == 1) {
    const Slot s = slot(qubits[0]);
    Group& g = groups_[s.group];
    if (g.rep == Rep::kSingle) {
      conj2x2(g.c2, u);
      ++stats_.fast_ops;
      return;
    }
    if (g.rep == Rep::kPair) {
      if (const auto pauli = ba::match_pauli_unitary(u)) {
        g.bell = ba::apply_pauli(g.bell, *pauli);
        ++stats_.fast_ops;
        return;
      }
      promote(s.group);
    }
    dense_apply_1q(groups_[s.group], u, static_cast<int>(s.index));
    ++stats_.dense_ops;
    return;
  }

  if (qubits.size() == 2 && structured_ && is_swap_gate(u)) {
    const Slot sa = slot(qubits[0]);
    const Slot sb = slot(qubits[1]);
    if (sa.group != sb.group) {
      // SWAP across groups is pure relabeling: exchange the two
      // qubits' roles without touching any amplitudes.
      groups_[sa.group].members[sa.index] = qubits[1];
      groups_[sb.group].members[sb.index] = qubits[0];
      std::swap(slots_[qubits[0]], slots_[qubits[1]]);
      ++stats_.fast_ops;
      return;
    }
    if (groups_[sa.group].rep == Rep::kPair) {
      // Bell-diagonal states are exchange symmetric: SWAP is identity.
      ++stats_.fast_ops;
      return;
    }
  }

  std::vector<int> idx;
  const std::uint32_t gi = merge(qubits, idx);
  if (qubits.size() == 2) {
    dense_apply_2q(groups_[gi], u, idx[0], idx[1]);
  } else {
    dense_apply_generic(groups_[gi], u, idx);
  }
  ++stats_.dense_ops;
}

void HybridBackend::apply_kraus(std::span<const Matrix> kraus,
                                std::span<const QubitId> qubits) {
  if (kraus.empty()) throw std::invalid_argument("apply_kraus: empty set");
  if (qubits.empty()) throw std::invalid_argument("merge: no qubits");
  const std::size_t dim = std::size_t{1} << qubits.size();
  for (const Matrix& k : kraus) {
    if (!k.is_square() || k.rows() != dim) {
      throw std::invalid_argument(
          "expand_operator: operator/target mismatch");
    }
  }
  check_no_duplicates(qubits);

  if (qubits.size() == 1) {
    const Slot s = slot(qubits[0]);
    Group& g = groups_[s.group];
    if (g.rep == Rep::kSingle) {
      std::array<Complex, 4> acc{};
      for (const Matrix& k : kraus) accum_conj2x2(acc, g.c2, k);
      g.c2 = acc;
      ++stats_.fast_ops;
      return;
    }
    if (g.rep == Rep::kPair) {
      const auto weights = ba::pauli_channel_weights(kraus);
      const double total =
          weights.w[0] + weights.w[1] + weights.w[2] + weights.w[3];
      if ((weights.exact || twirl_non_pauli_) &&
          std::abs(total - 1.0) <= 1e-9) {
        g.bell = ba::apply_pauli_channel(g.bell, weights.w);
        ++stats_.fast_ops;
        return;
      }
      promote(s.group);
    }
    const int idx[] = {static_cast<int>(s.index)};
    dense_kraus(groups_[s.group], kraus, idx);
    ++stats_.dense_ops;
    return;
  }

  std::vector<int> idx;
  const std::uint32_t gi = merge(qubits, idx);
  dense_kraus(groups_[gi], kraus, idx);
  ++stats_.dense_ops;
}

void HybridBackend::dephase(QubitId q, double p) {
  if (p < -1e-12 || p > 1.0 + 1e-12) {
    throw std::invalid_argument("dephasing: out of [0,1]");
  }
  p = std::clamp(p, 0.0, 1.0);
  const Slot s = slot(q);
  Group& g = groups_[s.group];
  switch (g.rep) {
    case Rep::kSingle: {
      const double factor = 1.0 - 2.0 * p;
      g.c2[1] *= factor;
      g.c2[2] *= factor;
      ++stats_.fast_ops;
      return;
    }
    case Rep::kPair: {
      const auto& b = g.bell;
      g.bell = {(1.0 - p) * b[0] + p * b[1], (1.0 - p) * b[1] + p * b[0],
                (1.0 - p) * b[2] + p * b[3], (1.0 - p) * b[3] + p * b[2]};
      ++stats_.fast_ops;
      return;
    }
    case Rep::kDense:
      dense_dephase(g, static_cast<int>(s.index), p);
      ++stats_.dense_ops;
      return;
  }
}

void HybridBackend::depolarize(QubitId q, double f) {
  if (f < -1e-12 || f > 1.0 + 1e-12) {
    throw std::invalid_argument("depolarizing: out of [0,1]");
  }
  f = std::clamp(f, 0.0, 1.0);
  const double e = (1.0 - f) / 3.0;
  const Slot s = slot(q);
  Group& g = groups_[s.group];
  switch (g.rep) {
    case Rep::kSingle: {
      const double t = (g.c2[0] + g.c2[3]).real();
      const double shrink = f - e;
      for (auto& c : g.c2) c *= shrink;
      g.c2[0] += 2.0 * e * t;
      g.c2[3] += 2.0 * e * t;
      ++stats_.fast_ops;
      return;
    }
    case Rep::kPair: {
      g.bell = ba::apply_pauli_channel(g.bell, {f, e, e, e});
      ++stats_.fast_ops;
      return;
    }
    case Rep::kDense:
      dense_depolarize(g, static_cast<int>(s.index), f);
      ++stats_.dense_ops;
      return;
  }
}

void HybridBackend::decay(QubitId q, double t_ns, double t1_ns,
                          double t2_ns) {
  const auto rates = quantum::channels::t1t2_rates(t_ns, t1_ns, t2_ns);
  if (rates.gamma == 0.0 && rates.dephase_p == 0.0) {
    (void)slot(q);  // still validate the qubit
    return;
  }
  const Slot s = slot(q);
  Group& g = groups_[s.group];
  switch (g.rep) {
    case Rep::kSingle: {
      const double keep = 1.0 - rates.gamma;
      const double off =
          std::sqrt(keep) * (1.0 - 2.0 * rates.dephase_p);
      const Complex v11 = g.c2[3];
      g.c2[0] += rates.gamma * v11;
      g.c2[3] = keep * v11;
      g.c2[1] *= off;
      g.c2[2] *= off;
      ++stats_.fast_ops;
      return;
    }
    case Rep::kPair: {
      if (rates.gamma == 0.0) {
        dephase(q, rates.dephase_p);  // exact: pure dephasing
        return;
      }
      if (twirl_non_pauli_) {
        g.bell = ba::apply_pauli_channel(
            g.bell,
            ba::t1t2_twirl_weights(rates.gamma, rates.dephase_p));
        ++stats_.fast_ops;
        return;
      }
      promote(s.group);
      [[fallthrough]];
    }
    case Rep::kDense:
      dense_decay(groups_[s.group], static_cast<int>(s.index), rates.gamma,
                  rates.dephase_p);
      ++stats_.dense_ops;
      return;
  }
}

int HybridBackend::measure(QubitId q, quantum::gates::Basis basis) {
  const Slot s = slot(q);
  Group& g = groups_[s.group];

  if (g.rep == Rep::kSingle) {
    if (basis != gates::Basis::kZ) conj2x2(g.c2, gates::basis_change(basis));
    const double prob0 = g.c2[0].real();
    const int outcome = random_.bernoulli(1.0 - prob0) ? 1 : 0;
    // Historical convention for an unentangled qubit: the collapse and
    // the outcome-conditional X leave it in |0> either way (the fresh
    // |0>-then-X path only runs when the qubit left a larger group).
    g.c2 = {Complex{1.0, 0.0}, Complex{0.0, 0.0}, Complex{0.0, 0.0},
            Complex{0.0, 0.0}};
    ++stats_.fast_ops;
    return outcome;
  }

  if (g.rep == Rep::kPair) {
    const int outcome = random_.bernoulli(1.0 - 0.5) ? 1 : 0;
    pair_measure_collapse(s.group, q, basis, outcome);
    ++stats_.fast_ops;
    return outcome;
  }

  const int outcome = dense_measure(g, q, basis);
  ++stats_.dense_ops;
  if (g.members.size() > 1) {
    dense_remove_qubit(s.group, static_cast<int>(slots_[q].index));
    make_singleton(q);
    if (outcome == 1) {
      Group& fresh = group_of(q);
      fresh.c2 = {Complex{0.0, 0.0}, Complex{0.0, 0.0}, Complex{0.0, 0.0},
                  Complex{1.0, 0.0}};
    }
  } else {
    // Singleton dense group: mirror the historical measure() exactly
    // (collapse + unconditional frame reset leaves |0>).
    g.c2 = {Complex{1.0, 0.0}, Complex{0.0, 0.0}, Complex{0.0, 0.0},
            Complex{0.0, 0.0}};
    g.rep = Rep::kSingle;
    if (!g.rho.empty()) {
      pool_.release(std::move(g.rho));
      g.rho.clear();
    }
  }
  return outcome;
}

void HybridBackend::pair_measure_collapse(std::uint32_t gi, QubitId q,
                                          quantum::gates::Basis basis,
                                          int outcome) {
  Group& g = groups_[gi];
  const auto& p = g.bell;
  const double tx = p[0] - p[1] + p[2] - p[3];
  const double ty = -p[0] + p[1] + p[2] - p[3];
  const double tz = p[0] + p[1] - p[2] - p[3];
  const double sgn = outcome == 0 ? 1.0 : -1.0;

  const QubitId partner = g.members[slots_[q].index == 0 ? 1 : 0];
  // Partner collapses to (I + s * t_b * sigma_b) / 2 in the
  // computational frame (the basis rotation only ever touched the
  // measured qubit).
  std::array<Complex, 4> c2{Complex{0.5, 0.0}, Complex{0.0, 0.0},
                            Complex{0.0, 0.0}, Complex{0.5, 0.0}};
  switch (basis) {
    case gates::Basis::kX: {
      const double v = sgn * tx / 2.0;
      c2[1] = Complex{v, 0.0};
      c2[2] = Complex{v, 0.0};
      break;
    }
    case gates::Basis::kY: {
      const double v = sgn * ty / 2.0;
      c2[1] = Complex{0.0, -v};
      c2[2] = Complex{0.0, v};
      break;
    }
    case gates::Basis::kZ: {
      const double v = sgn * tz / 2.0;
      c2[0] += Complex{v, 0.0};
      c2[3] -= Complex{v, 0.0};
      break;
    }
  }

  // Reuse the pair's group for the partner.
  g.rep = Rep::kSingle;
  g.c2 = c2;
  g.nq = 1;
  g.members.assign(1, partner);
  slots_[partner] = Slot{gi, 0};

  // The measured qubit left a larger group: fresh |outcome> state.
  make_singleton(q);
  if (outcome == 1) {
    Group& fresh = group_of(q);
    fresh.c2 = {Complex{0.0, 0.0}, Complex{0.0, 0.0}, Complex{0.0, 0.0},
                Complex{1.0, 0.0}};
  }
}

std::pair<int, int> HybridBackend::bell_measure(QubitId control,
                                                QubitId target) {
  const Slot sc = slot(control);
  const Slot st = slot(target);
  if (structured_ && sc.group != st.group &&
      groups_[sc.group].rep == Rep::kPair &&
      groups_[st.group].rep == Rep::kPair) {
    // Closed-form entanglement swap. The Bell measurement outcome is
    // exactly uniform for Bell-diagonal inputs; consume the Random
    // stream exactly like the two dense Z-measurements would.
    const int m1 = random_.bernoulli(1.0 - 0.5) ? 1 : 0;
    const int m2 = random_.bernoulli(1.0 - 0.5) ? 1 : 0;

    Group& gc = groups_[sc.group];
    Group& gt = groups_[st.group];
    const QubitId u = gc.members[sc.index == 0 ? 1 : 0];
    const QubitId v = gt.members[st.index == 0 ? 1 : 0];

    auto coeffs = ba::swap_coefficients(gc.bell, gt.bell, m1, m2);
    const double total = coeffs[0] + coeffs[1] + coeffs[2] + coeffs[3];
    if (total > 0.0) {
      for (double& c : coeffs) c /= total;
    }

    // The control's group becomes the (u, v) pair; the target's group
    // is retired; both measured qubits get fresh collapsed states.
    gc.rep = Rep::kPair;
    gc.bell = coeffs;
    gc.nq = 2;
    gc.members.assign({u, v});
    slots_[u] = Slot{sc.group, 0};
    slots_[v] = Slot{sc.group, 1};
    gt.members.clear();
    free_group(st.group);

    make_singleton(control);
    if (m1 == 1) {
      group_of(control).c2 = {Complex{0.0, 0.0}, Complex{0.0, 0.0},
                              Complex{0.0, 0.0}, Complex{1.0, 0.0}};
    }
    make_singleton(target);
    if (m2 == 1) {
      group_of(target).c2 = {Complex{0.0, 0.0}, Complex{0.0, 0.0},
                             Complex{0.0, 0.0}, Complex{1.0, 0.0}};
    }
    stats_.fast_ops += 4;
    return {m1, m2};
  }

  // Reference path: the explicit circuit (identical Random usage).
  const QubitId pair_q[] = {control, target};
  apply_unitary(gates::cnot(), pair_q);
  const QubitId ctrl_q[] = {control};
  apply_unitary(gates::h(), ctrl_q);
  const int m1 = measure(control, gates::Basis::kZ);
  const int m2 = measure(target, gates::Basis::kZ);
  return {m1, m2};
}

void HybridBackend::set_state(std::span<const QubitId> qubits,
                              const DensityMatrix& dm) {
  if (static_cast<int>(qubits.size()) != dm.num_qubits()) {
    throw std::invalid_argument("set_state: qubit/state size mismatch");
  }
  check_no_duplicates(qubits);

  const auto listed = [&qubits](QubitId q) {
    return std::find(qubits.begin(), qubits.end(), q) != qubits.end();
  };
  // A fresh install severs every old correlation, so a source group
  // whose members are all being overwritten is retired wholesale — no
  // partial trace needed. Groups that also hold unlisted qubits lose
  // the listed ones one by one (the partner keeps its reduced state).
  // Remember whether a dense group is retired whole: if the new state
  // then takes the structured pair path, that promoted group just got
  // re-twirled back onto the Bell-diagonal manifold (a demotion —
  // partially covered dense groups survive dense and don't count).
  bool had_dense_source = false;
  for (QubitId q : qubits) {
    const Group& g = group_of(q);  // validates q
    const bool covered =
        std::all_of(g.members.begin(), g.members.end(), listed);
    if (g.rep == Rep::kDense && covered) had_dense_source = true;
    if (!covered && g.members.size() > 1) extract(q);
  }
  // Retire the (now singleton or fully covered) source groups and form
  // one fresh group holding the installed state.
  std::vector<std::uint32_t> retired;
  for (QubitId q : qubits) {
    const std::uint32_t gi = slots_[q].group;
    if (std::find(retired.begin(), retired.end(), gi) == retired.end()) {
      free_group(gi);
      retired.push_back(gi);
    }
  }

  const std::uint32_t gi = alloc_group();
  Group& g = groups_[gi];
  g.nq = static_cast<int>(qubits.size());
  g.members.assign(qubits.begin(), qubits.end());
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    slots_[qubits[i]] = Slot{gi, static_cast<std::uint32_t>(i)};
  }

  const std::size_t d = std::size_t{1} << g.nq;
  double trace = 0.0;
  for (std::size_t i = 0; i < d; ++i) trace += dm.matrix()(i, i).real();
  if (trace < 1e-15) throw std::logic_error("renormalize: zero trace");
  const double inv = 1.0 / trace;

  if (g.nq == 1) {
    g.rep = Rep::kSingle;
    g.c2 = {dm.matrix()(0, 0) * inv, dm.matrix()(0, 1) * inv,
            dm.matrix()(1, 0) * inv, dm.matrix()(1, 1) * inv};
    ++stats_.fast_ops;
    return;
  }
  if (g.nq == 2 && structured_ && try_set_pair(gi, dm)) {
    if (had_dense_source) ++stats_.demotions;
    ++stats_.fast_ops;
    return;
  }
  g.rep = Rep::kDense;
  g.rho = pool_.acquire(d * d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      g.rho[i * d + j] = dm.matrix()(i, j) * inv;
    }
  }
  ++stats_.dense_ops;
}

bool HybridBackend::try_set_pair(std::uint32_t gi, const DensityMatrix& dm) {
  // Accept only (numerically) Bell-diagonal installs; anything else is
  // outside the structured manifold and stays dense.
  if (quantum::bell::off_diagonal_residual(dm) > kBellTolerance) {
    return false;
  }
  auto p = quantum::bell::diagonal_coefficients(dm);
  const double total = p[0] + p[1] + p[2] + p[3];
  if (total < 1e-15) return false;
  for (double& c : p) c = std::max(0.0, c / total);
  Group& g = groups_[gi];
  g.rep = Rep::kPair;
  g.bell = p;
  return true;
}

DensityMatrix HybridBackend::peek(std::span<const QubitId> qubits) const {
  if (qubits.empty()) throw std::invalid_argument("peek: no qubits");
  // Qubits in different groups are uncorrelated: the reduced state is
  // the tensor of per-group reductions (same algorithm as the
  // historical registry, over materialised group states).
  DensityMatrix out(0);
  bool first = true;
  std::vector<QubitId> pending(qubits.begin(), qubits.end());
  std::vector<QubitId> produced_order;

  while (!pending.empty()) {
    const std::uint32_t gi = slot(pending.front()).group;
    const Group& g = groups_[gi];
    std::vector<QubitId> here;
    std::vector<QubitId> rest;
    for (QubitId q : pending) {
      (slot(q).group == gi ? here : rest).push_back(q);
    }
    pending = std::move(rest);

    std::vector<int> remove;
    for (std::size_t i = 0; i < g.members.size(); ++i) {
      if (std::find(here.begin(), here.end(), g.members[i]) == here.end()) {
        remove.push_back(static_cast<int>(i));
      }
    }
    DensityMatrix reduced = materialize_dm(g);
    if (!remove.empty()) reduced = reduced.partial_trace(remove);

    std::vector<QubitId> kept_order;
    for (QubitId m : g.members) {
      if (std::find(here.begin(), here.end(), m) != here.end()) {
        kept_order.push_back(m);
      }
    }
    std::vector<int> perm;
    for (QubitId q : here) {
      const auto it = std::find(kept_order.begin(), kept_order.end(), q);
      perm.push_back(static_cast<int>(it - kept_order.begin()));
    }
    reduced = reduced.permuted(perm);

    out = first ? reduced : out.tensor(reduced);
    first = false;
    produced_order.insert(produced_order.end(), here.begin(), here.end());
  }

  std::vector<int> final_perm;
  for (QubitId q : qubits) {
    const auto it =
        std::find(produced_order.begin(), produced_order.end(), q);
    final_perm.push_back(static_cast<int>(it - produced_order.begin()));
  }
  return out.permuted(final_perm);
}

}  // namespace qlink::qstate::detail
