#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "qstate/backend.hpp"

/// \file backend_registry.hpp
/// Name -> factory registry for quantum-state backends.
///
/// The built-in backends ("dense", "bell") are always registered;
/// experiments can register additional ones (e.g. wrappers that record
/// traces) without touching this subsystem. Scenario configs carry a
/// BackendKind (core::LinkConfig::backend); benches and examples parse
/// user-facing names through this registry so `--backend bell` means
/// the same thing everywhere.

namespace qlink::qstate {

class BackendRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<StateBackend>(sim::Random&)>;

  /// The process-wide registry (built-ins pre-registered).
  static BackendRegistry& instance();

  /// Register a backend under a unique name; throws on duplicates.
  void register_backend(std::string name, Factory factory);

  /// Instantiate by name; throws std::invalid_argument for unknown
  /// names.
  std::unique_ptr<StateBackend> make(std::string_view name,
                                     sim::Random& random) const;

  bool contains(std::string_view name) const;
  std::vector<std::string> names() const;

 private:
  BackendRegistry();
  std::vector<std::pair<std::string, Factory>> entries_;
};

/// Instantiate a built-in backend kind.
std::unique_ptr<StateBackend> make_backend(BackendKind kind,
                                           sim::Random& random);

/// Parse a user-facing backend name ("dense", "bell",
/// "bell-diagonal") into a kind; nullopt for anything unknown.
std::optional<BackendKind> parse_backend_kind(std::string_view name);

}  // namespace qlink::qstate
