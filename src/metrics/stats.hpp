#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

/// \file stats.hpp
/// Small statistics helpers for the evaluation harness: running moments,
/// standard error (as reported in Tables 1/4 of the paper), and
/// percentiles.

namespace qlink::metrics {

class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Shard merge (parallel Welford / Chan et al.): combines two
  /// independently recorded streams into the moments the union stream
  /// would have produced, to floating-point reassociation error. Counter
  /// and min/max merges commute exactly; mean/m2 commute up to ~1e-12
  /// relative (the Scalable Commutativity Rule test the per-shard
  /// collectors rely on — see Collector::merge).
  void merge(const RunningStat& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  /// Standard error of the mean: s_n / sqrt(n) (Table 4 caption).
  double stderr_mean() const noexcept {
    return n_ == 0 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
  }
  double min() const noexcept { return n_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return n_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

/// Relative difference |m1 - m2| / max(|m1|, |m2|), footnote 2 of the
/// paper (0 when both are 0).
inline double relative_difference(double m1, double m2) {
  const double denom = std::max(std::abs(m1), std::abs(m2));
  if (denom == 0.0) return 0.0;
  return std::abs(m1 - m2) / denom;
}

/// Percentile (0..100) of a sample set; the vector is copied.
double percentile(std::vector<double> values, double pct);

}  // namespace qlink::metrics
