#include "metrics/spacesaving.hpp"

#include <algorithm>
#include <stdexcept>

namespace qlink::metrics {

SpaceSaving::SpaceSaving(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("SpaceSaving capacity must be > 0");
  }
}

std::map<std::uint64_t, SpaceSaving::Counter>::iterator
SpaceSaving::min_counter() {
  auto min_it = counters_.begin();
  for (auto it = std::next(min_it); it != counters_.end(); ++it) {
    // Strict < keeps the smallest key on ties: map iteration is key
    // ascending, so the first minimum seen wins.
    if (it->second.count < min_it->second.count) {
      min_it = it;
    }
  }
  return min_it;
}

void SpaceSaving::add(std::uint64_t key, std::uint64_t weight) {
  if (weight == 0) {
    return;
  }
  total_weight_ += weight;
  auto it = counters_.find(key);
  if (it != counters_.end()) {
    it->second.count += weight;
    return;
  }
  if (counters_.size() < capacity_) {
    counters_.emplace(key, Counter{weight, 0});
    return;
  }
  // Full: the new key replaces the minimum counter and inherits its
  // count as the overestimation bound.
  auto min_it = min_counter();
  const std::uint64_t floor = min_it->second.count;
  counters_.erase(min_it);
  counters_.emplace(key, Counter{floor + weight, floor});
  ++evictions_;
}

std::vector<SpaceSaving::Entry> SpaceSaving::top(std::size_t k) const {
  std::vector<Entry> entries;
  entries.reserve(counters_.size());
  for (const auto& [key, counter] : counters_) {
    entries.push_back(Entry{key, counter.count, counter.error});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  if (entries.size() > k) {
    entries.resize(k);
  }
  return entries;
}

std::uint64_t SpaceSaving::count_bound(std::uint64_t key) const {
  auto it = counters_.find(key);
  if (it != counters_.end()) {
    return it->second.count;
  }
  std::uint64_t min_count = 0;
  bool first = true;
  for (const auto& [k, counter] : counters_) {
    (void)k;
    if (first || counter.count < min_count) {
      min_count = counter.count;
      first = false;
    }
  }
  return first ? 0 : min_count;
}

void SpaceSaving::truncate_to_capacity() {
  while (counters_.size() > capacity_) {
    counters_.erase(min_counter());
    ++evictions_;
  }
}

void SpaceSaving::merge(const SpaceSaving& other) {
  for (const auto& [key, counter] : other.counters_) {
    auto it = counters_.find(key);
    if (it != counters_.end()) {
      it->second.count += counter.count;
      it->second.error += counter.error;
    } else {
      counters_.emplace(key, counter);
    }
  }
  total_weight_ += other.total_weight_;
  evictions_ += other.evictions_;
  truncate_to_capacity();
}

}  // namespace qlink::metrics
