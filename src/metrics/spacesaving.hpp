#pragma once

#include <cstdint>
#include <map>
#include <vector>

/// \file spacesaving.hpp
/// Deterministic mergeable Space-Saving top-k sketch (ISSUE 8).
///
/// The per-edge accounting of metrics::EdgeStats is exact at today's
/// topology sizes, but the ROADMAP's next tier (1000+-node Swapped
/// Dragonfly, sharded simulators) needs hot-edge *ranking* that stays
/// O(k) memory regardless of how many edges exist. Space-Saving
/// (Metwally et al.) keeps a fixed number of counters; a key that is
/// not tracked evicts the minimum counter and inherits its count as
/// its error bound. Guarantees preserved here:
///
///   exactness under capacity  while the number of distinct keys ever
///     recorded is <= capacity, every count is exact (error() == 0 for
///     every entry and exact() is true) — the regime today's benches
///     run in, pinned by tests/test_netstate.cpp.
///   determinism  eviction picks the minimum count with ties broken by
///     the smallest key; top() orders by (count desc, key asc). No
///     randomness, no pointer ordering — two same-input sketches are
///     byte-identical, on any platform.
///   mergeability  merge() sums counts (and error bounds) key-wise and
///     truncates back to capacity by the same deterministic order (the
///     mergeable-summaries construction, commutative in the
///     under-capacity regime — the Scalable Commutativity Rule
///     discipline the sharded collectors follow). merge of shards that
///     jointly fit capacity equals the single-run sketch exactly.

namespace qlink::metrics {

class SpaceSaving {
 public:
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t count = 0;
    /// Overestimation bound: true count of `key` is in
    /// [count - error, count]. 0 while the sketch has never evicted.
    std::uint64_t error = 0;
  };

  explicit SpaceSaving(std::size_t capacity);

  /// O(log capacity): bump `key` by `weight`, evicting the minimum
  /// counter when the key is untracked and the sketch is full.
  void add(std::uint64_t key, std::uint64_t weight = 1);

  /// The tracked entries ranked by (count desc, key asc), at most
  /// min(k, size()) of them.
  std::vector<Entry> top(std::size_t k) const;

  /// Count bound for one key: its tracked count, or the minimum
  /// tracked count when untracked (every untracked key's true count is
  /// <= the sketch minimum); 0 when empty.
  std::uint64_t count_bound(std::uint64_t key) const;

  /// Key-wise count/error sums, truncated back to capacity by the
  /// deterministic (count desc, key asc) order. Exact — and equal to
  /// the single-run sketch — whenever the union of tracked keys fits
  /// capacity.
  void merge(const SpaceSaving& other);

  std::size_t size() const noexcept { return counters_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  /// Total weight recorded (add + merge), independent of evictions.
  std::uint64_t total_weight() const noexcept { return total_weight_; }
  /// True while no eviction has happened: every count is exact.
  bool exact() const noexcept { return evictions_ == 0; }
  std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  struct Counter {
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };

  /// The tracked key with the minimum count (ties: smallest key).
  std::map<std::uint64_t, Counter>::iterator min_counter();
  void truncate_to_capacity();

  std::size_t capacity_;
  /// key -> counter; std::map for deterministic iteration order.
  std::map<std::uint64_t, Counter> counters_;
  std::uint64_t total_weight_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace qlink::metrics
