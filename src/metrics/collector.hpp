#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "core/requests.hpp"
#include "metrics/histogram.hpp"
#include "metrics/reservoir.hpp"
#include "metrics/stats.hpp"
#include "quantum/bell.hpp"
#include "sim/time.hpp"

/// \file collector.hpp
/// Evaluation metrics of Section 4.2 / 6.2: throughput, request / pair /
/// scaled latency, fidelity, QBER, queue lengths, error counts, and
/// fairness splits by requesting node.

namespace qlink::metrics {

/// Latency phase taxonomy (ISSUE 8): where a request's life goes.
/// kAdmissionWait covers submit -> first admission (kDeferral is the
/// booked-window slice of it, reported separately); per delivered pair,
/// kGeneration covers admission -> all hops matched (cascade launch),
/// kSwapCascade launch -> the swap cascade's execution, and kDelivery
/// the cascade -> delivery classical-correction flight.
enum class Phase : std::size_t {
  kAdmissionWait = 0,
  kDeferral,
  kGeneration,
  kSwapCascade,
  kDelivery,
};
inline constexpr std::size_t kNumPhases = 5;
const char* phase_name(Phase p);

class Collector {
 public:
  struct KindMetrics {
    RunningStat request_latency_s;
    RunningStat pair_latency_s;
    RunningStat scaled_latency_s;
    RunningStat fidelity;
    RunningStat goodness;
    std::uint64_t pairs_delivered = 0;
    std::uint64_t requests_submitted = 0;
    std::uint64_t requests_completed = 0;
  };

  void begin(sim::SimTime now) { start_time_ = now; }
  void end(sim::SimTime now) { end_time_ = now; }
  double elapsed_seconds() const {
    return sim::to_seconds(end_time_ - start_time_);
  }

  void record_create(std::uint32_t origin_node, std::uint32_t create_id,
                     core::Priority kind, std::uint16_t num_pairs,
                     sim::SimTime t);

  /// An OK arriving at the *origin* node (latency is defined there).
  void record_ok(const core::OkMessage& ok, core::Priority kind,
                 sim::SimTime t, std::optional<double> fidelity);

  void record_err(const core::ErrMessage& err);

  /// One MD (or test-round) correlation sample: outcomes at A and B in a
  /// basis, with the heralded Bell state defining the ideal correlation.
  void record_correlation(quantum::gates::Basis basis, int outcome_a,
                          int outcome_b, int heralded_state);

  void sample_queue_length(std::size_t len) {
    queue_length_.add(static_cast<double>(len));
  }

  /// Routing-layer accounting: hop count of an admitted route, and
  /// requests that could not be admitted immediately (queued behind
  /// reservations; see routing::Router).
  void record_route(std::size_t hops) {
    route_length_.add(static_cast<double>(hops));
  }
  void record_blocked() { ++requests_blocked_; }

  /// A failed request re-routed onto a sibling path (adaptive
  /// re-routing, routing::Router): carries the open-request latency
  /// entry from the old network-layer request id to the new one so
  /// delivery latency stays measured from the original submission —
  /// recreated at `submitted_at` when an error already closed it —
  /// without double-counting requests_submitted.
  void record_resubmit(std::uint32_t origin, std::uint32_t old_id,
                       std::uint32_t new_id, core::Priority kind,
                       std::uint16_t num_pairs, sim::SimTime submitted_at);
  /// A re-routable request abandoned after its reroute budget (or the
  /// sibling-candidate space) was exhausted.
  void record_abandon() { ++requests_abandoned_; }
  std::uint64_t reroutes() const { return reroutes_; }
  std::uint64_t abandons() const { return requests_abandoned_; }

  /// Scheduler-grade admission accounting (routing::Router, ISSUE 5):
  /// submit -> first-admission wait per request (0 for instant admits;
  /// resubmissions excluded — their latency stays anchored at the
  /// original submission).
  void record_admission_wait(double seconds) {
    admission_wait_s_.add(seconds);
    admission_wait_hist_.record(seconds);
    phase_hists_[static_cast<std::size_t>(Phase::kAdmissionWait)].record(
        seconds);
  }
  /// As above, also attributing the wait to the open request
  /// (origin, id) so its phase vector carries it at completion.
  void record_admission_wait(double seconds, std::uint32_t origin,
                             std::uint32_t id);
  /// A deferred-admission booking and its booked wait (the gap between
  /// the deferral and the booked window start).
  void record_deferral(double booked_wait_s) {
    ++deferrals_;
    deferred_wait_s_.add(booked_wait_s);
    phase_hists_[static_cast<std::size_t>(Phase::kDeferral)].record(
        booked_wait_s);
  }
  /// Attach an earlier-booked deferral wait to the open request's phase
  /// vector (the Router learns the request id only when the booked
  /// window opens, after record_deferral already counted the booking).
  void attribute_deferral(std::uint32_t origin, std::uint32_t id,
                          double booked_wait_s);
  /// Head-of-line accounting: an admission that jumped an older blocked
  /// request on a shared edge (greedy drain) ...
  void record_steal() { ++admission_steals_; }
  /// ... and a drain retry withheld to preserve per-edge FIFO (batch
  /// drain).
  void record_hol_hold() { ++hol_holds_; }
  /// Scheduler backlog sample: blocked + deferred-pending requests.
  void sample_sched_backlog(std::size_t n) {
    sched_backlog_.add(static_cast<double>(n));
  }
  const RunningStat& admission_wait() const { return admission_wait_s_; }
  const RunningStat& deferred_wait() const { return deferred_wait_s_; }
  const RunningStat& sched_backlog() const { return sched_backlog_; }
  std::uint64_t deferrals() const { return deferrals_; }
  std::uint64_t admission_steals() const { return admission_steals_; }
  std::uint64_t hol_holds() const { return hol_holds_; }

  const KindMetrics& kind(core::Priority p) const {
    return kinds_[static_cast<std::size_t>(p)];
  }
  KindMetrics& kind(core::Priority p) {
    return kinds_[static_cast<std::size_t>(p)];
  }

  double throughput(core::Priority p) const {
    const double dt = elapsed_seconds();
    return dt <= 0.0 ? 0.0
                     : static_cast<double>(kind(p).pairs_delivered) / dt;
  }
  double total_throughput() const;
  /// Pairs delivered across every kind (the monitor's delivery counter).
  std::uint64_t total_pairs_delivered() const;

  std::optional<double> qber(quantum::gates::Basis basis) const;
  /// Fidelity reconstructed from QBER (how the paper extracts MD
  /// fidelity, Section 6.2).
  std::optional<double> fidelity_from_qber() const;

  std::uint64_t errors(core::EgpError e) const {
    return error_counts_.count(e) ? error_counts_.at(e) : 0;
  }
  std::uint64_t total_expires() const { return errors(core::EgpError::kExpired); }
  const RunningStat& queue_length() const { return queue_length_; }
  const RunningStat& route_length() const { return route_length_; }
  std::uint64_t requests_blocked() const { return requests_blocked_; }

  /// Fairness: per-origin pair counts and mean latencies (Section 6.2).
  /// Throws std::out_of_range naming the node when it never delivered a
  /// pair; use find_origin / has_origin for an exception-free probe.
  const KindMetrics& by_origin(std::uint32_t node) const;
  /// Null when the node has no recorded deliveries.
  const KindMetrics* find_origin(std::uint32_t node) const {
    const auto it = origin_metrics_.find(node);
    return it == origin_metrics_.end() ? nullptr : &it->second;
  }
  bool has_origin(std::uint32_t node) const {
    return origin_metrics_.count(node) > 0;
  }

  // -- Streaming distributions (ISSUE 6) ---------------------------------
  // Log-scale fixed-bin histograms over the same samples the
  // RunningStats see: O(1) record, mergeable, percentile-capable.
  const Histogram& request_latency_hist() const {
    return request_latency_hist_;
  }
  const Histogram& pair_latency_hist() const { return pair_latency_hist_; }
  const Histogram& admission_wait_hist() const {
    return admission_wait_hist_;
  }
  const Histogram& fidelity_hist() const { return fidelity_hist_; }

  // -- Exact-sample quantiles (ISSUE 7) -----------------------------------
  // Deterministic seeded reservoirs over the same request-latency /
  // fidelity streams: O(capacity) memory at million-request scale, exact
  // sample values where the Histogram has ~7% bin width. Their private
  // RNG never touches the simulation's, so recording cannot perturb a
  // seeded trajectory.
  const Reservoir& request_latency_reservoir() const {
    return request_latency_res_;
  }
  const Reservoir& fidelity_reservoir() const { return fidelity_res_; }

  // -- Latency phase decomposition (ISSUE 8) ------------------------------
  // "Why was p99 slow": per-phase Histograms over the same control
  // points the existing counters use, plus a bounded keeper of the
  // slowest completed requests with their phase vectors.
  struct SlowRequest {
    double total_s = 0.0;
    /// Seconds per Phase, indexed by static_cast<std::size_t>(Phase).
    /// kGeneration/kSwapCascade/kDelivery are the *last* delivered
    /// pair's values (the pair that completed the request).
    std::array<double, kNumPhases> phase_s{};
    std::uint32_t origin = 0;
    std::uint32_t id = 0;
  };
  static constexpr std::size_t kSlowestCapacity = 16;

  /// One delivered pair's generation / swap-cascade / delivery phase
  /// measurements (SwapService). Call before record_ok for the same
  /// pair so a completing request's phase vector is current.
  void record_pair_phases(std::uint32_t origin, std::uint32_t id,
                          double generation_s, double swap_s,
                          double delivery_s);
  const Histogram& phase_hist(Phase p) const {
    return phase_hists_[static_cast<std::size_t>(p)];
  }
  /// The slowest completed requests, total latency descending (ties:
  /// origin then id ascending — deterministic), at most
  /// kSlowestCapacity of them.
  const std::vector<SlowRequest>& slowest_requests() const {
    return slowest_;
  }

  // -- In-flight state (ISSUE 7) ------------------------------------------
  // The open_ map grows silently when a layer leaks a request (a CREATE
  // that never sees its last OK or a terminal ERR). Surface it so the
  // monitor's watchdog can report leak age instead of hiding it.
  std::size_t open_requests() const noexcept { return open_.size(); }
  /// Creation time of the oldest still-open request (nullopt when none).
  std::optional<sim::SimTime> oldest_open_created() const;

  /// Bound the open-request map (streaming runs, ISSUE 9): an abandoned
  /// entry that never settles would otherwise leak forever. When more
  /// than `cap` requests are simultaneously open, the oldest entries
  /// (smallest `created`, ties broken by key — deterministic) are
  /// evicted and counted in open_evicted(). An evicted request that
  /// later settles records no latency (its anchor is gone) but its
  /// pairs and completions still count. 0 = unbounded (the default).
  void set_open_capacity(std::size_t cap) {
    open_capacity_ = cap;
    enforce_open_capacity();
  }
  std::size_t open_capacity() const noexcept { return open_capacity_; }
  /// Open requests dropped by the capacity cap (summed by merge()).
  std::uint64_t open_evicted() const noexcept { return open_evicted_; }

  /// Shard merge (ISSUE 7): fold another collector's records in, as if
  /// both streams had been recorded here. Histograms and counters merge
  /// exactly and commutatively; RunningStats via parallel Welford (~1e-12
  /// relative reassociation error); reservoirs via Reservoir::merge
  /// (order-sensitive byte-wise when overflowing — see reservoir.hpp);
  /// open_ entries union — when the same (origin, create_id) key is
  /// open in both shards, the entry with the earlier `created` wins
  /// regardless of merge order (ISSUE 8: latency stays measured from
  /// the first submission a shard saw); start/end times widen to cover
  /// both windows.
  void merge(const Collector& other);

 private:
  struct OpenRequest {
    core::Priority kind;
    std::uint16_t num_pairs;
    sim::SimTime created;
    std::uint32_t origin;
    /// Phase attribution accumulated while open (seconds; the three
    /// per-pair phases hold the most recent delivered pair's values).
    double admission_wait_s = 0.0;
    double deferral_s = 0.0;
    double generation_s = 0.0;
    double swap_s = 0.0;
    double delivery_s = 0.0;
  };

  /// Fold a completing request into the slowest-request keeper.
  void note_slow_request(std::uint32_t id, const OpenRequest& req,
                         double total_s);
  static void sort_and_trim_slowest(std::vector<SlowRequest>& v);

  using OpenKey = std::pair<std::uint32_t, std::uint32_t>;
  /// All open_ mutations go through these so open_age_ stays in sync
  /// and the capacity cap holds after every insert.
  void open_insert(const OpenKey& key, const OpenRequest& req);
  void open_erase(std::map<OpenKey, OpenRequest>::iterator it);
  void enforce_open_capacity();

  sim::SimTime start_time_ = 0;
  sim::SimTime end_time_ = 0;
  std::array<KindMetrics, 3> kinds_{};
  std::map<std::uint32_t, KindMetrics> origin_metrics_;
  std::map<OpenKey, OpenRequest> open_;
  /// Age index over open_ — (created, origin, id) ascending, the
  /// eviction order. Maintained at every open_ mutation; makes both
  /// oldest_open_created() and oldest-eviction O(log n).
  std::set<std::tuple<sim::SimTime, std::uint32_t, std::uint32_t>> open_age_;
  std::size_t open_capacity_ = 0;   // 0 = unbounded
  std::uint64_t open_evicted_ = 0;
  std::map<core::EgpError, std::uint64_t> error_counts_;
  std::array<std::pair<std::uint64_t, std::uint64_t>, 3> qber_counts_{};
  Histogram request_latency_hist_;
  Histogram pair_latency_hist_;
  Histogram admission_wait_hist_;
  Histogram fidelity_hist_;
  std::array<Histogram, kNumPhases> phase_hists_{};
  /// Sorted (total_s desc, origin asc, id asc), <= kSlowestCapacity.
  std::vector<SlowRequest> slowest_;
  // Distinct fixed seeds: deterministic per construction, independent
  // streams per metric.
  Reservoir request_latency_res_{1024, 0x716c4c61747265ULL};
  Reservoir fidelity_res_{1024, 0x716c4669646c74ULL};
  RunningStat queue_length_;
  RunningStat route_length_;
  RunningStat admission_wait_s_;
  RunningStat deferred_wait_s_;
  RunningStat sched_backlog_;
  std::uint64_t requests_blocked_ = 0;
  std::uint64_t reroutes_ = 0;
  std::uint64_t requests_abandoned_ = 0;
  std::uint64_t deferrals_ = 0;
  std::uint64_t admission_steals_ = 0;
  std::uint64_t hol_holds_ = 0;
};

}  // namespace qlink::metrics
