#include "metrics/collector.hpp"

#include <stdexcept>
#include <string>

namespace qlink::metrics {

using core::OkMessage;
using core::Priority;
using quantum::gates::Basis;

void Collector::record_create(std::uint32_t origin_node,
                              std::uint32_t create_id, Priority kind,
                              std::uint16_t num_pairs, sim::SimTime t) {
  open_[{origin_node, create_id}] = OpenRequest{kind, num_pairs, t,
                                                origin_node};
  kinds_[static_cast<std::size_t>(kind)].requests_submitted += 1;
}

void Collector::record_ok(const OkMessage& ok, Priority kind, sim::SimTime t,
                          std::optional<double> fidelity) {
  KindMetrics& km = kinds_[static_cast<std::size_t>(kind)];
  KindMetrics& om = origin_metrics_[ok.origin_node];
  km.pairs_delivered += 1;
  om.pairs_delivered += 1;
  km.goodness.add(ok.goodness);
  if (fidelity) {
    km.fidelity.add(*fidelity);
    om.fidelity.add(*fidelity);
    fidelity_hist_.record(*fidelity);
  }

  const auto it = open_.find({ok.origin_node, ok.create_id});
  if (it == open_.end()) return;
  const OpenRequest& req = it->second;
  const double pair_latency = sim::to_seconds(t - req.created);
  km.pair_latency_s.add(pair_latency);
  om.pair_latency_s.add(pair_latency);
  pair_latency_hist_.record(pair_latency);

  if (ok.pair_index + 1 == ok.total_pairs) {
    const double request_latency = sim::to_seconds(t - req.created);
    km.request_latency_s.add(request_latency);
    om.request_latency_s.add(request_latency);
    request_latency_hist_.record(request_latency);
    const double scaled =
        request_latency / static_cast<double>(std::max<std::uint16_t>(
                              req.num_pairs, 1));
    km.scaled_latency_s.add(scaled);
    om.scaled_latency_s.add(scaled);
    km.requests_completed += 1;
    om.requests_completed += 1;
    open_.erase(it);
  }
}

void Collector::record_resubmit(std::uint32_t origin, std::uint32_t old_id,
                                std::uint32_t new_id, Priority kind,
                                std::uint16_t num_pairs,
                                sim::SimTime submitted_at) {
  ++reroutes_;
  const auto it = open_.find({origin, old_id});
  if (it != open_.end()) {
    auto node = open_.extract(it);
    node.key() = {origin, new_id};
    // Re-scale to the resubmission's remaining pairs — the recreate
    // branch below can only know those, so both error classes
    // (kExpired keeps the entry, others erase it via record_err) must
    // yield the same scaled_latency_s divisor.
    node.mapped().num_pairs = num_pairs;
    open_.insert(std::move(node));
    return;
  }
  // The hop failure's ERR already erased the entry (record_err); put it
  // back at the *original* submission time so queue + reroute time
  // still counts toward latency.
  open_[{origin, new_id}] = OpenRequest{kind, num_pairs, submitted_at,
                                        origin};
}

void Collector::record_err(const core::ErrMessage& err) {
  error_counts_[err.error] += 1;
  if (err.error != core::EgpError::kExpired) {
    open_.erase({err.origin_node, err.create_id});
  }
}

void Collector::record_correlation(Basis basis, int outcome_a, int outcome_b,
                                   int heralded_state) {
  const auto target = heralded_state == 1
                          ? quantum::bell::BellState::kPsiPlus
                          : quantum::bell::BellState::kPsiMinus;
  const bool ideal_equal = quantum::bell::ideal_outcomes_equal(target, basis);
  const bool error = (outcome_a == outcome_b) != ideal_equal;
  auto& [errors, total] = qber_counts_[static_cast<std::size_t>(basis)];
  if (error) ++errors;
  ++total;
}

const Collector::KindMetrics& Collector::by_origin(std::uint32_t node) const {
  const auto it = origin_metrics_.find(node);
  if (it == origin_metrics_.end()) {
    throw std::out_of_range("Collector::by_origin: node " +
                            std::to_string(node) +
                            " has no recorded deliveries");
  }
  return it->second;
}

double Collector::total_throughput() const {
  const double dt = elapsed_seconds();
  if (dt <= 0.0) return 0.0;
  std::uint64_t pairs = 0;
  for (const auto& km : kinds_) pairs += km.pairs_delivered;
  return static_cast<double>(pairs) / dt;
}

std::optional<double> Collector::qber(Basis basis) const {
  const auto& [errors, total] = qber_counts_[static_cast<std::size_t>(basis)];
  if (total == 0) return std::nullopt;
  return static_cast<double>(errors) / static_cast<double>(total);
}

std::optional<double> Collector::fidelity_from_qber() const {
  const auto qx = qber(Basis::kX);
  const auto qy = qber(Basis::kY);
  const auto qz = qber(Basis::kZ);
  if (!qx || !qy || !qz) return std::nullopt;
  return quantum::bell::fidelity_from_qbers(*qx, *qy, *qz);
}

}  // namespace qlink::metrics
