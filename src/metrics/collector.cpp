#include "metrics/collector.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace qlink::metrics {

using core::OkMessage;
using core::Priority;
using quantum::gates::Basis;

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kAdmissionWait: return "admission_wait";
    case Phase::kDeferral: return "deferral";
    case Phase::kGeneration: return "generation";
    case Phase::kSwapCascade: return "swap_cascade";
    case Phase::kDelivery: return "delivery";
  }
  return "unknown";
}

void Collector::record_create(std::uint32_t origin_node,
                              std::uint32_t create_id, Priority kind,
                              std::uint16_t num_pairs, sim::SimTime t) {
  open_insert({origin_node, create_id},
              OpenRequest{kind, num_pairs, t, origin_node});
  kinds_[static_cast<std::size_t>(kind)].requests_submitted += 1;
}

void Collector::open_insert(const OpenKey& key, const OpenRequest& req) {
  const auto it = open_.find(key);
  if (it != open_.end()) {
    open_age_.erase({it->second.created, key.first, key.second});
    it->second = req;
  } else {
    open_.emplace(key, req);
  }
  open_age_.insert({req.created, key.first, key.second});
  enforce_open_capacity();
}

void Collector::open_erase(std::map<OpenKey, OpenRequest>::iterator it) {
  open_age_.erase({it->second.created, it->first.first, it->first.second});
  open_.erase(it);
}

void Collector::enforce_open_capacity() {
  if (open_capacity_ == 0) return;
  while (open_.size() > open_capacity_) {
    const auto oldest = open_age_.begin();
    open_.erase({std::get<1>(*oldest), std::get<2>(*oldest)});
    open_age_.erase(oldest);
    ++open_evicted_;
  }
}

void Collector::record_ok(const OkMessage& ok, Priority kind, sim::SimTime t,
                          std::optional<double> fidelity) {
  KindMetrics& km = kinds_[static_cast<std::size_t>(kind)];
  KindMetrics& om = origin_metrics_[ok.origin_node];
  km.pairs_delivered += 1;
  om.pairs_delivered += 1;
  km.goodness.add(ok.goodness);
  if (fidelity) {
    km.fidelity.add(*fidelity);
    om.fidelity.add(*fidelity);
    fidelity_hist_.record(*fidelity);
    fidelity_res_.add(*fidelity);
  }

  const auto it = open_.find({ok.origin_node, ok.create_id});
  if (it == open_.end()) return;
  const OpenRequest& req = it->second;
  const double pair_latency = sim::to_seconds(t - req.created);
  km.pair_latency_s.add(pair_latency);
  om.pair_latency_s.add(pair_latency);
  pair_latency_hist_.record(pair_latency);

  if (ok.pair_index + 1 == ok.total_pairs) {
    const double request_latency = sim::to_seconds(t - req.created);
    km.request_latency_s.add(request_latency);
    om.request_latency_s.add(request_latency);
    request_latency_hist_.record(request_latency);
    request_latency_res_.add(request_latency);
    const double scaled =
        request_latency / static_cast<double>(std::max<std::uint16_t>(
                              req.num_pairs, 1));
    km.scaled_latency_s.add(scaled);
    om.scaled_latency_s.add(scaled);
    km.requests_completed += 1;
    om.requests_completed += 1;
    note_slow_request(ok.create_id, req, request_latency);
    open_erase(it);
  }
}

void Collector::record_admission_wait(double seconds, std::uint32_t origin,
                                      std::uint32_t id) {
  record_admission_wait(seconds);
  const auto it = open_.find({origin, id});
  if (it != open_.end()) it->second.admission_wait_s += seconds;
}

void Collector::attribute_deferral(std::uint32_t origin, std::uint32_t id,
                                   double booked_wait_s) {
  const auto it = open_.find({origin, id});
  if (it != open_.end()) it->second.deferral_s += booked_wait_s;
}

void Collector::record_pair_phases(std::uint32_t origin, std::uint32_t id,
                                   double generation_s, double swap_s,
                                   double delivery_s) {
  phase_hists_[static_cast<std::size_t>(Phase::kGeneration)].record(
      generation_s);
  phase_hists_[static_cast<std::size_t>(Phase::kSwapCascade)].record(swap_s);
  phase_hists_[static_cast<std::size_t>(Phase::kDelivery)].record(delivery_s);
  const auto it = open_.find({origin, id});
  if (it != open_.end()) {
    it->second.generation_s = generation_s;
    it->second.swap_s = swap_s;
    it->second.delivery_s = delivery_s;
  }
}

void Collector::note_slow_request(std::uint32_t id, const OpenRequest& req,
                                  double total_s) {
  SlowRequest slow;
  slow.total_s = total_s;
  slow.phase_s[static_cast<std::size_t>(Phase::kAdmissionWait)] =
      req.admission_wait_s;
  slow.phase_s[static_cast<std::size_t>(Phase::kDeferral)] = req.deferral_s;
  slow.phase_s[static_cast<std::size_t>(Phase::kGeneration)] =
      req.generation_s;
  slow.phase_s[static_cast<std::size_t>(Phase::kSwapCascade)] = req.swap_s;
  slow.phase_s[static_cast<std::size_t>(Phase::kDelivery)] = req.delivery_s;
  slow.origin = req.origin;
  slow.id = id;
  slowest_.push_back(slow);
  sort_and_trim_slowest(slowest_);
}

void Collector::sort_and_trim_slowest(std::vector<SlowRequest>& v) {
  std::sort(v.begin(), v.end(),
            [](const SlowRequest& a, const SlowRequest& b) {
              if (a.total_s != b.total_s) return a.total_s > b.total_s;
              if (a.origin != b.origin) return a.origin < b.origin;
              return a.id < b.id;
            });
  if (v.size() > kSlowestCapacity) v.resize(kSlowestCapacity);
}

void Collector::record_resubmit(std::uint32_t origin, std::uint32_t old_id,
                                std::uint32_t new_id, Priority kind,
                                std::uint16_t num_pairs,
                                sim::SimTime submitted_at) {
  ++reroutes_;
  const auto it = open_.find({origin, old_id});
  if (it != open_.end()) {
    OpenRequest req = it->second;
    // Re-scale to the resubmission's remaining pairs — the recreate
    // branch below can only know those, so both error classes
    // (kExpired keeps the entry, others erase it via record_err) must
    // yield the same scaled_latency_s divisor.
    req.num_pairs = num_pairs;
    open_erase(it);
    open_insert({origin, new_id}, req);
    return;
  }
  // The hop failure's ERR already erased the entry (record_err); put it
  // back at the *original* submission time so queue + reroute time
  // still counts toward latency.
  open_insert({origin, new_id},
              OpenRequest{kind, num_pairs, submitted_at, origin});
}

void Collector::record_err(const core::ErrMessage& err) {
  error_counts_[err.error] += 1;
  if (err.error != core::EgpError::kExpired) {
    const auto it = open_.find({err.origin_node, err.create_id});
    if (it != open_.end()) open_erase(it);
  }
}

void Collector::record_correlation(Basis basis, int outcome_a, int outcome_b,
                                   int heralded_state) {
  const auto target = heralded_state == 1
                          ? quantum::bell::BellState::kPsiPlus
                          : quantum::bell::BellState::kPsiMinus;
  const bool ideal_equal = quantum::bell::ideal_outcomes_equal(target, basis);
  const bool error = (outcome_a == outcome_b) != ideal_equal;
  auto& [errors, total] = qber_counts_[static_cast<std::size_t>(basis)];
  if (error) ++errors;
  ++total;
}

const Collector::KindMetrics& Collector::by_origin(std::uint32_t node) const {
  const auto it = origin_metrics_.find(node);
  if (it == origin_metrics_.end()) {
    throw std::out_of_range("Collector::by_origin: node " +
                            std::to_string(node) +
                            " has no recorded deliveries");
  }
  return it->second;
}

double Collector::total_throughput() const {
  const double dt = elapsed_seconds();
  if (dt <= 0.0) return 0.0;
  return static_cast<double>(total_pairs_delivered()) / dt;
}

std::uint64_t Collector::total_pairs_delivered() const {
  std::uint64_t pairs = 0;
  for (const auto& km : kinds_) pairs += km.pairs_delivered;
  return pairs;
}

std::optional<sim::SimTime> Collector::oldest_open_created() const {
  if (open_age_.empty()) return std::nullopt;
  return std::get<0>(*open_age_.begin());
}

namespace {

void merge_kind(Collector::KindMetrics& into,
                const Collector::KindMetrics& from) {
  into.request_latency_s.merge(from.request_latency_s);
  into.pair_latency_s.merge(from.pair_latency_s);
  into.scaled_latency_s.merge(from.scaled_latency_s);
  into.fidelity.merge(from.fidelity);
  into.goodness.merge(from.goodness);
  into.pairs_delivered += from.pairs_delivered;
  into.requests_submitted += from.requests_submitted;
  into.requests_completed += from.requests_completed;
}

}  // namespace

void Collector::merge(const Collector& other) {
  // Widen the measurement window; an untouched side (begin() never
  // called, both stamps 0) contributes nothing.
  if (other.start_time_ != 0 || other.end_time_ != 0) {
    if (start_time_ == 0 && end_time_ == 0) {
      start_time_ = other.start_time_;
      end_time_ = other.end_time_;
    } else {
      start_time_ = std::min(start_time_, other.start_time_);
      end_time_ = std::max(end_time_, other.end_time_);
    }
  }
  for (std::size_t k = 0; k < kinds_.size(); ++k) {
    merge_kind(kinds_[k], other.kinds_[k]);
  }
  for (const auto& [node, km] : other.origin_metrics_) {
    merge_kind(origin_metrics_[node], km);
  }
  // Open-request union: across real shards (origin, create_id) keys
  // are disjoint; when both shards hold the same open key, the entry
  // with the earlier `created` wins (ISSUE 8) — it anchors latency at
  // the first submission either shard saw, and the rule is symmetric
  // so merge order cannot change the result.
  for (const auto& [key, req] : other.open_) {
    const auto it = open_.find(key);
    if (it == open_.end()) {
      open_insert(key, req);
    } else if (req.created < it->second.created) {
      open_age_.erase({it->second.created, key.first, key.second});
      it->second = req;
      open_age_.insert({req.created, key.first, key.second});
    }
  }
  open_evicted_ += other.open_evicted_;
  for (const auto& [err, n] : other.error_counts_) error_counts_[err] += n;
  for (std::size_t b = 0; b < qber_counts_.size(); ++b) {
    qber_counts_[b].first += other.qber_counts_[b].first;
    qber_counts_[b].second += other.qber_counts_[b].second;
  }
  request_latency_hist_ += other.request_latency_hist_;
  pair_latency_hist_ += other.pair_latency_hist_;
  admission_wait_hist_ += other.admission_wait_hist_;
  fidelity_hist_ += other.fidelity_hist_;
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    phase_hists_[p] += other.phase_hists_[p];
  }
  slowest_.insert(slowest_.end(), other.slowest_.begin(),
                  other.slowest_.end());
  sort_and_trim_slowest(slowest_);
  request_latency_res_.merge(other.request_latency_res_);
  fidelity_res_.merge(other.fidelity_res_);
  queue_length_.merge(other.queue_length_);
  route_length_.merge(other.route_length_);
  admission_wait_s_.merge(other.admission_wait_s_);
  deferred_wait_s_.merge(other.deferred_wait_s_);
  sched_backlog_.merge(other.sched_backlog_);
  requests_blocked_ += other.requests_blocked_;
  reroutes_ += other.reroutes_;
  requests_abandoned_ += other.requests_abandoned_;
  deferrals_ += other.deferrals_;
  admission_steals_ += other.admission_steals_;
  hol_holds_ += other.hol_holds_;
}

std::optional<double> Collector::qber(Basis basis) const {
  const auto& [errors, total] = qber_counts_[static_cast<std::size_t>(basis)];
  if (total == 0) return std::nullopt;
  return static_cast<double>(errors) / static_cast<double>(total);
}

std::optional<double> Collector::fidelity_from_qber() const {
  const auto qx = qber(Basis::kX);
  const auto qy = qber(Basis::kY);
  const auto qz = qber(Basis::kZ);
  if (!qx || !qy || !qz) return std::nullopt;
  return quantum::bell::fidelity_from_qbers(*qx, *qy, *qz);
}

}  // namespace qlink::metrics
