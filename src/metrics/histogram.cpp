#include "metrics/histogram.hpp"

namespace qlink::metrics {

double Histogram::percentile(double pct) const {
  if (count_ == 0) return 0.0;
  const double clamped = pct < 0.0 ? 0.0 : (pct > 100.0 ? 100.0 : pct);
  // Target rank in [1, count]: the smallest cumulative count covering
  // pct of the samples.
  const double target = clamped / 100.0 * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return kMinValue;
  for (int i = 0; i < kBins; ++i) {
    const double in_bin = static_cast<double>(bins_[static_cast<std::size_t>(i)]);
    if (in_bin == 0.0) continue;
    if (target <= cum + in_bin) {
      const double frac = (target - cum) / in_bin;
      const double lo = bin_lower(i);
      const double hi = bin_lower(i + 1);
      return lo + frac * (hi - lo);
    }
    cum += in_bin;
  }
  return kMaxValue;  // landed in the overflow bin
}

Histogram& Histogram::operator+=(const Histogram& other) {
  for (int i = 0; i < kBins; ++i) {
    bins_[static_cast<std::size_t>(i)] +=
        other.bins_[static_cast<std::size_t>(i)];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  count_ += other.count_;
  sum_ += other.sum_;
  // Element-wise extremes: an empty side carries neutral sentinels, so
  // no count guard is needed.
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  return *this;
}

Histogram Histogram::delta_since(const Histogram& earlier) const {
  const auto sub = [](std::uint64_t a, std::uint64_t b) {
    return a >= b ? a - b : 0;
  };
  Histogram out;
  for (int i = 0; i < kBins; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    out.bins_[idx] = sub(bins_[idx], earlier.bins_[idx]);
  }
  out.underflow_ = sub(underflow_, earlier.underflow_);
  out.overflow_ = sub(overflow_, earlier.overflow_);
  out.count_ = sub(count_, earlier.count_);
  out.sum_ = sum_ - earlier.sum_;
  // Interval-local extremes are not derivable from two cumulative
  // snapshots (the interval's min may predate `earlier`'s max); carry
  // the stream-cumulative extremes so delta consumers still see exact
  // bounds for everything recorded so far.
  out.min_ = min_;
  out.max_ = max_;
  return out;
}

}  // namespace qlink::metrics
