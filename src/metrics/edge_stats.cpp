#include "metrics/edge_stats.hpp"

#include <algorithm>

namespace qlink::metrics {

EdgeStats::EdgeStats(std::size_t num_edges, std::size_t num_nodes,
                     std::size_t sketch_capacity)
    : edges_(num_edges),
      nodes_(num_nodes),
      coverage_(num_edges),
      sketch_(sketch_capacity) {}

void EdgeStats::on_lease(std::size_t edge, std::uint64_t ticket,
                         sim::SimTime start, sim::SimTime end) {
  ++edges_.at(edge).leases;
  ++lease_count_;
  coverage_[edge].open.push_back(Window{ticket, start, end});
  sketch_.add(static_cast<std::uint64_t>(edge));
}

void EdgeStats::on_lease_release(std::size_t edge, std::uint64_t ticket,
                                 sim::SimTime now) {
  if (now < 0) return;  // release time unknown: keep the scheduled end
  for (Window& w : coverage_.at(edge).open) {
    if (w.ticket == ticket) {
      // Early release truncates the window; a lease that lapsed first
      // (end <= now) keeps its scheduled end. Releases happen at or
      // after every boundary folded so far, so no folded coverage is
      // ever rewritten.
      w.end = std::min(w.end, now);
      return;
    }
  }
  // Already folded past its end (or lapsed and folded): nothing to do.
}

void EdgeStats::on_blocked(std::span<const std::size_t> footprint) {
  for (const std::size_t e : footprint) {
    ++edges_.at(e).blocked;
    sketch_.add(static_cast<std::uint64_t>(e));
  }
}

void EdgeStats::on_admission_wait(std::span<const std::size_t> edges,
                                  double wait_s) {
  ++admission_waits_;
  admission_wait_s_ += wait_s;
  for (const std::size_t e : edges) {
    EdgeCounters& c = edges_.at(e);
    ++c.admission_waits;
    c.admission_wait_s += wait_s;
  }
}

void EdgeStats::on_attempt(std::size_t edge, std::uint64_t pairs) {
  edges_.at(edge).attempts += pairs;
  attempt_pairs_ += pairs;
  sketch_.add(static_cast<std::uint64_t>(edge), pairs);
}

void EdgeStats::on_swap(std::uint32_t node) {
  ++nodes_.at(node).swaps;
  ++swaps_;
}

void EdgeStats::on_delivered_edge(std::size_t edge, double fidelity) {
  EdgeCounters& c = edges_.at(edge);
  ++c.deliveries;
  c.fidelity.add(fidelity);
}

void EdgeStats::on_delivered_pair(std::uint32_t src, std::uint32_t dst) {
  ++deliveries_;
  ++nodes_.at(src).terminals;
  ++nodes_.at(dst).terminals;
}

double EdgeStats::busy_seconds(std::size_t edge, sim::SimTime t) const {
  Coverage& cov = coverage_.at(edge);
  if (t > cov.folded_t) {
    // Fold the union of open windows over (folded_t, t] into busy.
    // Sorting by start keeps the sweep a single cursor pass; windows
    // fully behind the new fold point can be dropped afterwards (their
    // ends can no longer change — releases only truncate to times at
    // or after the current fold point, see on_lease_release).
    std::sort(cov.open.begin(), cov.open.end(),
              [](const Window& a, const Window& b) {
                if (a.start != b.start) return a.start < b.start;
                return a.ticket < b.ticket;
              });
    sim::SimTime cursor = cov.folded_t;
    for (const Window& w : cov.open) {
      const sim::SimTime s = std::max(w.start, cursor);
      const sim::SimTime e = std::min(w.end, t);
      if (e > s) {
        cov.busy += e - s;
        cursor = e;
      }
    }
    std::erase_if(cov.open, [t](const Window& w) { return w.end <= t; });
    cov.folded_t = t;
  }
  return sim::to_seconds(cov.busy);
}

void EdgeStats::merge(const EdgeStats& other) {
  const std::size_t edges = std::min(edges_.size(), other.edges_.size());
  for (std::size_t i = 0; i < edges; ++i) {
    EdgeCounters& into = edges_[i];
    const EdgeCounters& from = other.edges_[i];
    into.leases += from.leases;
    into.blocked += from.blocked;
    into.attempts += from.attempts;
    into.deliveries += from.deliveries;
    into.admission_waits += from.admission_waits;
    into.admission_wait_s += from.admission_wait_s;
    into.fidelity.merge(from.fidelity);

    Coverage& cov = coverage_[i];
    const Coverage& ocov = other.coverage_[i];
    cov.busy += ocov.busy;
    cov.folded_t = std::max(cov.folded_t, ocov.folded_t);
    cov.open.insert(cov.open.end(), ocov.open.begin(), ocov.open.end());
  }
  const std::size_t nodes = std::min(nodes_.size(), other.nodes_.size());
  for (std::size_t i = 0; i < nodes; ++i) {
    nodes_[i].swaps += other.nodes_[i].swaps;
    nodes_[i].terminals += other.nodes_[i].terminals;
  }
  sketch_.merge(other.sketch_);
  blocked_requests_ += other.blocked_requests_;
  deliveries_ += other.deliveries_;
  admission_waits_ += other.admission_waits_;
  admission_wait_s_ += other.admission_wait_s_;
  lease_count_ += other.lease_count_;
  attempt_pairs_ += other.attempt_pairs_;
  swaps_ += other.swaps_;
}

}  // namespace qlink::metrics
