#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "metrics/spacesaving.hpp"
#include "metrics/stats.hpp"
#include "sim/time.hpp"

/// \file edge_stats.hpp
/// Per-edge / per-node accounting substrate (ISSUE 8).
///
/// Every signal PRs 6-7 exposed is global; this is the per-entity
/// layer underneath obs::NetState: which edge is hot, which node
/// swaps the most, where admission waits concentrate. The substrate
/// is *passive* — it only ever receives facts from accounting hooks
/// in routing::ReservationTable / routing::Router /
/// netlayer::SwapService (all behind a null-by-default pointer), so
/// attaching one never schedules events or consumes randomness and
/// cannot perturb a seeded trajectory.
///
/// Utilization bookkeeping: each lease placed on an edge contributes
/// its window [start, min(scheduled end, release time)); an edge's
/// busy time at sim time T is the length of the *union* of those
/// windows clipped to [0, T] — "fraction of sim time covered by
/// active leases" is busy over elapsed, which is in [0, 1] by
/// construction. Windows are folded incrementally at (monotone) query
/// boundaries, so memory stays O(concurrently open leases per edge),
/// not O(history). Exact accumulators cover today's topologies; the
/// SpaceSaving sketch keeps hot-edge *ranking* O(k) for the
/// 1000+-node tier (fed one activity event per lease placement,
/// blocked-arrival footprint edge, and per-hop CREATE attempt).

namespace qlink::metrics {

class EdgeStats {
 public:
  struct EdgeCounters {
    /// Lease windows ever placed on the edge (instant + booked).
    std::uint64_t leases = 0;
    /// Blocked-queue arrivals whose declared footprint names the edge
    /// (counts re-queues too — a contention pressure signal, not a
    /// request count; see blocked_requests() for the latter).
    std::uint64_t blocked = 0;
    /// Link-layer CREATE pairs fanned onto the edge (per admitted
    /// request: num_pairs per hop).
    std::uint64_t attempts = 0;
    /// End-to-end deliveries whose route used the edge (per hop, so
    /// an n-hop delivery counts once on each of its n edges).
    std::uint64_t deliveries = 0;
    /// Admissions whose leased path used the edge, and their summed
    /// submit->admission wait (each path edge carries the full wait).
    std::uint64_t admission_waits = 0;
    double admission_wait_s = 0.0;
    /// Delivered end-to-end fidelity of pairs routed over the edge.
    RunningStat fidelity;
  };

  struct NodeCounters {
    /// Bell measurements (entanglement swaps) executed at the node.
    std::uint64_t swaps = 0;
    /// Deliveries terminating at the node (as src or dst endpoint).
    std::uint64_t terminals = 0;
  };

  EdgeStats(std::size_t num_edges, std::size_t num_nodes,
            std::size_t sketch_capacity = 64);

  // -- ReservationTable hooks ---------------------------------------------
  /// A lease window [start, end) was placed on `edge` (end may be
  /// SimTime max for an unbounded pin).
  void on_lease(std::size_t edge, std::uint64_t ticket, sim::SimTime start,
                sim::SimTime end);
  /// The ticket released its lease on `edge` at `now` (truncates the
  /// window if it would have run longer); now < 0 = release time
  /// unknown, keep the scheduled end.
  void on_lease_release(std::size_t edge, std::uint64_t ticket,
                        sim::SimTime now);
  /// A blocked request joined the retry queue declaring `footprint`.
  void on_blocked(std::span<const std::size_t> footprint);
  /// Request-level blocked accounting (mirrors Collector::
  /// record_blocked: counted once per request, not per re-queue).
  void on_blocked_request() { ++blocked_requests_; }

  // -- Router hooks -------------------------------------------------------
  /// A first admission waited `wait_s` behind reservations; every edge
  /// of the admitted path carries the wait.
  void on_admission_wait(std::span<const std::size_t> edges, double wait_s);

  // -- SwapService hooks --------------------------------------------------
  /// `pairs` link-layer CREATE pairs were fanned onto `edge`.
  void on_attempt(std::size_t edge, std::uint64_t pairs);
  /// A Bell measurement ran at `node`.
  void on_swap(std::uint32_t node);
  /// One delivered end-to-end pair crossed `edge`.
  void on_delivered_edge(std::size_t edge, double fidelity);
  /// Request-level delivery accounting: one end-to-end pair delivered
  /// between `src` and `dst` (call once per pair, after the per-edge
  /// calls).
  void on_delivered_pair(std::uint32_t src, std::uint32_t dst);

  // -- Queries ------------------------------------------------------------
  std::size_t num_edges() const noexcept { return edges_.size(); }
  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  const EdgeCounters& edge(std::size_t i) const { return edges_.at(i); }
  const NodeCounters& node(std::size_t i) const { return nodes_.at(i); }

  /// Union lease coverage of the edge over [0, t], in seconds. Queries
  /// must be non-decreasing in t per edge (they fold the open windows
  /// forward); NetState's interval boundaries satisfy that by
  /// construction. A query older than the fold point returns the
  /// folded value.
  double busy_seconds(std::size_t edge, sim::SimTime t) const;

  std::uint64_t blocked_requests() const noexcept {
    return blocked_requests_;
  }
  std::uint64_t deliveries() const noexcept { return deliveries_; }
  std::uint64_t admission_waits() const noexcept {
    return admission_waits_;
  }
  double admission_wait_seconds() const noexcept {
    return admission_wait_s_;
  }
  std::uint64_t lease_count() const noexcept { return lease_count_; }
  std::uint64_t attempt_pairs() const noexcept { return attempt_pairs_; }
  std::uint64_t swaps() const noexcept { return swaps_; }

  /// Hot-edge activity ranking (see file comment for what feeds it).
  const SpaceSaving& hot_edges() const noexcept { return sketch_; }

  /// Shard merge: counters and fidelity stats sum (parallel Welford),
  /// the sketch merges by its own rule, busy coverage adds folded
  /// seconds and concatenates open windows. Exact when the shards
  /// simulated disjoint sim-time ranges or disjoint edges (the sharded
  /// engine's plan); both sides should be folded (busy_seconds queried
  /// at their end times) first.
  void merge(const EdgeStats& other);

 private:
  struct Window {
    std::uint64_t ticket = 0;
    sim::SimTime start = 0;
    sim::SimTime end = 0;
  };

  struct Coverage {
    /// Windows possibly extending past folded_t (sorted lazily at fold
    /// time). mutable state lives in the parent's coverage_ vector —
    /// folding is caching, not observation-visible mutation.
    std::vector<Window> open;
    sim::SimTime folded_t = 0;
    sim::SimTime busy = 0;  // union coverage over [0, folded_t]
  };

  std::vector<EdgeCounters> edges_;
  std::vector<NodeCounters> nodes_;
  mutable std::vector<Coverage> coverage_;
  SpaceSaving sketch_;
  std::uint64_t blocked_requests_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t admission_waits_ = 0;
  double admission_wait_s_ = 0.0;
  std::uint64_t lease_count_ = 0;
  std::uint64_t attempt_pairs_ = 0;
  std::uint64_t swaps_ = 0;
};

}  // namespace qlink::metrics
