#pragma once

#include <cstdint>
#include <vector>

/// \file reservoir.hpp
/// Deterministic reservoir sampling (ISSUE 7): exact-sample quantiles
/// in O(capacity) memory at million-request scale.
///
/// The fixed-bin Histogram answers percentile queries to ~7% bin width;
/// the Reservoir complements it with *exact sample values* — a uniform
/// random subset of the stream — at the cost of sampling error instead
/// of binning error. Algorithm R: the i-th value replaces a random slot
/// with probability capacity/i, so every stream element is kept with
/// equal probability and add() stays O(1).
///
/// Determinism is the hard requirement (same contract as the rest of
/// the observability layer): the reservoir draws from its own private
/// splitmix64 stream seeded at construction — never from the
/// simulation's sim::Random — so attaching one cannot perturb a seeded
/// trajectory, and the kept sample set is a pure function of
/// (seed, stream). The std::uniform_* distributions are
/// implementation-defined across standard libraries, so the draw is
/// fully specified here (splitmix64 + 128-bit multiply-high range
/// reduction) and identical across gcc/clang/libc++.
///
/// merge() folds another shard's reservoir in. When both kept sets fit
/// in one capacity the merge is the exact union (and commutes up to
/// sample order); when they overflow, slots are drawn from either pool
/// with probability proportional to the represented stream weights —
/// statistically uniform but, unlike Histogram::operator+= and
/// RunningStat::merge, *order-sensitive* byte-wise (a.merge(b) and
/// b.merge(a) keep different — equally valid — subsets). See
/// DESIGN.md's merge-commutativity rules.

namespace qlink::metrics {

class Reservoir {
 public:
  explicit Reservoir(std::size_t capacity = 1024,
                     std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// O(1): keep the value in a random slot with probability cap/seen.
  void add(double x);

  /// Stream size seen (>= size(): values past capacity were sampled).
  std::uint64_t count() const noexcept { return seen_; }
  /// Kept sample count (<= capacity()).
  std::size_t size() const noexcept { return samples_.size(); }
  std::size_t capacity() const noexcept { return cap_; }
  const std::vector<double>& samples() const noexcept { return samples_; }

  /// Percentile (0..100) over the kept samples, linearly interpolated
  /// (exact values, sampling error ~1/sqrt(capacity)). 0 when empty.
  double quantile(double pct) const;

  /// Fold another shard's reservoir in (see file comment for the
  /// exact-union vs weighted-draw regimes and commutativity caveat).
  void merge(const Reservoir& other);

 private:
  std::uint64_t next_u64();
  std::uint64_t uniform_below(std::uint64_t n);
  double uniform_double();  // [0, 1)

  std::size_t cap_;
  std::uint64_t state_;
  std::uint64_t seen_ = 0;
  std::vector<double> samples_;
};

}  // namespace qlink::metrics
