#include "metrics/stats.hpp"

#include <stdexcept>

namespace qlink::metrics {

double percentile(std::vector<double> values, double pct) {
  if (values.empty()) throw std::invalid_argument("percentile: empty");
  if (pct < 0.0 || pct > 100.0) {
    throw std::invalid_argument("percentile: pct out of range");
  }
  std::sort(values.begin(), values.end());
  const double rank = pct / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace qlink::metrics
