#include "metrics/reservoir.hpp"

#include "metrics/stats.hpp"

namespace qlink::metrics {

Reservoir::Reservoir(std::size_t capacity, std::uint64_t seed)
    : cap_(capacity == 0 ? 1 : capacity), state_(seed) {
  samples_.reserve(cap_);
}

std::uint64_t Reservoir::next_u64() {
  // splitmix64 (Steele/Lea/Flood): tiny state, full 64-bit output,
  // identical on every platform — unlike std::uniform_int_distribution.
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Reservoir::uniform_below(std::uint64_t n) {
  // 128-bit multiply-high range reduction (Lemire): deterministic, and
  // the bias (< n / 2^64) is far below the sampling error it feeds.
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(next_u64()) * n) >> 64);
}

double Reservoir::uniform_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

void Reservoir::add(double x) {
  ++seen_;
  if (samples_.size() < cap_) {
    samples_.push_back(x);
    return;
  }
  const std::uint64_t j = uniform_below(seen_);
  if (j < cap_) samples_[static_cast<std::size_t>(j)] = x;
}

double Reservoir::quantile(double pct) const {
  if (samples_.empty()) return 0.0;
  return percentile(samples_, pct);
}

void Reservoir::merge(const Reservoir& other) {
  if (other.seen_ == 0) return;
  if (seen_ == 0) {
    samples_ = other.samples_;
    seen_ = other.seen_;
    return;
  }
  if (samples_.size() + other.samples_.size() <= cap_) {
    // Both streams were fully kept: the union is the exact combined
    // sample set (no randomness consumed).
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    seen_ += other.seen_;
    return;
  }
  // Overflowing merge: fill up to cap_ slots, drawing each from pool A
  // or B with probability proportional to the remaining represented
  // stream weight (each kept sample stands for seen/size stream
  // elements). Uniform over the union in expectation; deterministic
  // given this reservoir's RNG state.
  const std::vector<double> mine = std::move(samples_);
  samples_.clear();
  const double per_a =
      static_cast<double>(seen_) / static_cast<double>(mine.size());
  const double per_b = static_cast<double>(other.seen_) /
                       static_cast<double>(other.samples_.size());
  std::size_t ia = 0;
  std::size_t ib = 0;
  double wa = static_cast<double>(seen_);
  double wb = static_cast<double>(other.seen_);
  while (samples_.size() < cap_ &&
         (ia < mine.size() || ib < other.samples_.size())) {
    const bool take_a =
        ib >= other.samples_.size() ||
        (ia < mine.size() && uniform_double() * (wa + wb) < wa);
    if (take_a) {
      samples_.push_back(mine[ia++]);
      wa -= per_a;
    } else {
      samples_.push_back(other.samples_[ib++]);
      wb -= per_b;
    }
  }
  seen_ += other.seen_;
}

}  // namespace qlink::metrics
