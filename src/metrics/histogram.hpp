#pragma once

#include <array>
#include <cmath>
#include <cstdint>

/// \file histogram.hpp
/// Fixed-bin log-scale streaming histogram (ISSUE 6).
///
/// The evaluation of Section 6.2 is built from per-request latency and
/// fidelity *distributions*, not just means — and the coming per-shard
/// simulators must be able to record independently and merge at report
/// time (the Scalable Commutativity Rule: recording into disjoint
/// fixed-size bin arrays commutes, merging is element-wise addition).
/// Hence: one compile-time bin layout shared by every instance, O(1)
/// record, and operator+= as the merge.
///
/// Layout: kBinsPerDecade logarithmic bins per decade spanning
/// [kMinValue, kMaxValue) = [1e-9, 1e3), which covers nanosecond event
/// gaps through kilosecond waits in one layout — and fidelities in
/// (0, 1] land in the top decades with ~7% bin width. Values below the
/// range (including <= 0) count in the underflow bin, values at or
/// above it in the overflow bin; percentile() clamps those bins to the
/// range edges.

namespace qlink::metrics {

class Histogram {
 public:
  static constexpr double kMinValue = 1e-9;
  static constexpr double kMaxValue = 1e3;
  static constexpr int kDecades = 12;  // log10(kMaxValue / kMinValue)
  static constexpr int kBinsPerDecade = 32;
  static constexpr int kBins = kDecades * kBinsPerDecade;

  /// O(1): one log10 and one array increment.
  void record(double x) {
    ++count_;
    sum_ += x;
    // Exact extremes survive even when the value itself clamps into
    // the underflow/overflow bins (ISSUE 8). NaN is excluded by the
    // comparisons, matching its exclusion from every bin's range.
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    if (!(x >= kMinValue)) {  // also catches NaN, <= 0
      ++underflow_;
      return;
    }
    if (x >= kMaxValue) {
      ++overflow_;
      return;
    }
    const int bin = static_cast<int>(std::log10(x / kMinValue) *
                                     kBinsPerDecade);
    ++bins_[static_cast<std::size_t>(
        bin < 0 ? 0 : (bin >= kBins ? kBins - 1 : bin))];
  }

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }

  /// Exact observed extremes — not clamped to [kMinValue, kMaxValue),
  /// so an outlier that landed in the underflow/overflow bin is still
  /// reported faithfully. 0 when empty (the RunningStat convention).
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }

  /// Percentile (0..100) estimate: walk the cumulative counts to the
  /// target rank and interpolate linearly inside the landing bin.
  /// Returns 0 when empty; the underflow/overflow bins clamp to the
  /// layout's range edges.
  double percentile(double pct) const;
  double p50() const { return percentile(50.0); }
  double p90() const { return percentile(90.0); }
  double p99() const { return percentile(99.0); }

  /// Shard merge: element-wise addition. Every instance shares the one
  /// compile-time layout, so merging is always well-defined.
  Histogram& operator+=(const Histogram& other);

  /// Interval delta (ISSUE 7): the samples recorded into *this but not
  /// yet into `earlier`, where `earlier` is a past snapshot of the same
  /// recorder (every counter of *this >= its counterpart — bins are
  /// monotone, so element-wise subtraction is exact). The monitor uses
  /// this to report per-interval percentiles; counts are clamped at 0
  /// so a mismatched pair degrades rather than wraps.
  Histogram delta_since(const Histogram& earlier) const;

  /// Lower edge of bin i (for reporting / tests).
  static double bin_lower(int i) {
    return kMinValue * std::pow(10.0, static_cast<double>(i) /
                                          kBinsPerDecade);
  }
  std::uint64_t bin_count(int i) const {
    return bins_[static_cast<std::size_t>(i)];
  }

 private:
  std::array<std::uint64_t, kBins> bins_{};
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  // Sentinels chosen so merging an empty side is the identity
  // (std::min/std::max absorb them) — same trick as RunningStat.
  double min_ = 1e300;
  double max_ = -1e300;
};

}  // namespace qlink::metrics
