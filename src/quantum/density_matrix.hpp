#pragma once

#include <span>
#include <vector>

#include "quantum/matrix.hpp"

/// \file density_matrix.hpp
/// n-qubit density matrices with operator application on arbitrary
/// qubit subsets.
///
/// Convention: qubit 0 is the most significant bit of the basis index,
/// i.e. the leftmost tensor factor, so |q0 q1 ... q_{n-1}> maps to the
/// binary number q0 q1 ... q_{n-1}.

namespace qlink::quantum {

class DensityMatrix {
 public:
  /// All-|0...0> state on n qubits.
  explicit DensityMatrix(int num_qubits);

  /// From a pure state vector (dimension must be a power of two).
  static DensityMatrix from_pure(std::span<const Complex> amplitudes);

  /// From a raw (already valid) density matrix.
  static DensityMatrix from_matrix(Matrix m);

  int num_qubits() const noexcept { return num_qubits_; }
  std::size_t dim() const noexcept { return std::size_t{1} << num_qubits_; }
  const Matrix& matrix() const noexcept { return m_; }

  /// rho -> U rho U^dagger, with U acting on the listed target qubits.
  void apply_unitary(const Matrix& u, std::span<const int> targets);

  /// rho -> sum_k K rho K^dagger over the Kraus set, on the targets.
  void apply_kraus(std::span<const Matrix> kraus,
                   std::span<const int> targets);

  /// Probability tr(E rho) of POVM element E acting on the targets.
  double povm_probability(const Matrix& effect,
                          std::span<const int> targets) const;

  /// rho -> K rho K^dagger / p for one Kraus/measurement operator.
  /// Returns the (pre-normalisation) probability p; if p ~ 0 the state is
  /// left untouched and 0 is returned.
  double apply_and_renormalize(const Matrix& op,
                               std::span<const int> targets);

  /// Trace out the listed qubits; remaining qubits keep their relative
  /// order and are renumbered contiguously from 0.
  DensityMatrix partial_trace(std::span<const int> remove) const;

  /// this (x) other.
  DensityMatrix tensor(const DensityMatrix& other) const;

  /// Fidelity <psi| rho |psi> to a pure state on all qubits.
  double fidelity(std::span<const Complex> psi) const;

  double trace_real() const;
  double purity() const;

  /// Reorder qubits: new qubit i is old qubit perm[i].
  DensityMatrix permuted(std::span<const int> perm) const;

  /// Renormalise so the trace is 1 (guards against numeric drift).
  void renormalize();

  bool approx_equal(const DensityMatrix& other, double tol = 1e-9) const {
    return num_qubits_ == other.num_qubits_ && m_.approx_equal(other.m_, tol);
  }

  /// Expand a k-qubit operator to the full n-qubit space acting on
  /// `targets` (exposed for tests and the herald model).
  static Matrix expand_operator(const Matrix& op, std::span<const int> targets,
                                int num_qubits);

 private:
  DensityMatrix(Matrix m, int num_qubits)
      : m_(std::move(m)), num_qubits_(num_qubits) {}

  Matrix m_;
  int num_qubits_ = 0;
};

}  // namespace qlink::quantum
