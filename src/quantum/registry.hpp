#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "quantum/density_matrix.hpp"
#include "quantum/gates.hpp"
#include "sim/random.hpp"

/// \file registry.hpp
/// Shared-state qubit registry: the quantum-memory backing store for all
/// simulated devices.
///
/// Qubits at *different nodes* can be entangled, so their joint state
/// must live in one density matrix. The registry tracks groups of qubits
/// sharing a state, merges groups when a joint operation spans them, and
/// shrinks groups when qubits are measured or discarded. This mirrors the
/// "qstate" sharing NetSquid uses.

namespace qlink::quantum {

/// Opaque handle to a live qubit. Id 0 is never valid.
using QubitId = std::uint64_t;

class QuantumRegistry {
 public:
  explicit QuantumRegistry(sim::Random& random) : random_(random) {}

  QuantumRegistry(const QuantumRegistry&) = delete;
  QuantumRegistry& operator=(const QuantumRegistry&) = delete;

  /// The deterministic random source behind all quantum sampling.
  sim::Random& random() noexcept { return random_; }

  /// Allocate a fresh qubit in |0>.
  QubitId create();

  /// Destroy a qubit: it is traced out of its group.
  void discard(QubitId q);

  bool exists(QubitId q) const { return lookup_.count(q) > 0; }
  std::size_t live_qubits() const { return lookup_.size(); }

  /// Number of qubits sharing a state with q (including q).
  std::size_t group_size(QubitId q) const;

  /// Apply a unitary on the listed qubits (groups merged as needed).
  void apply_unitary(const Matrix& u, std::span<const QubitId> qubits);

  /// Apply a Kraus channel on the listed qubits.
  void apply_kraus(std::span<const Matrix> kraus,
                   std::span<const QubitId> qubits);

  /// Measure one qubit in the given basis. The qubit collapses, is
  /// separated from its group, and remains allocated in the post-
  /// measurement product state (callers typically discard it next).
  /// Returns 0 or 1.
  int measure(QubitId q, gates::Basis basis);

  /// Overwrite the joint state of the listed qubits with a given density
  /// matrix (used by the herald model to install fresh entanglement).
  /// Each qubit must currently be unentangled with anything outside the
  /// list; their old state is dropped.
  void set_state(std::span<const QubitId> qubits, const DensityMatrix& dm);

  /// Reset a single qubit to |0> (dropping correlations: it is traced
  /// out of its group first). Models (re-)initialisation.
  void reset(QubitId q);

  /// Reduced density matrix of the listed qubits, in the given order.
  /// Read-only diagnostic used by metrics/tests; a real device cannot do
  /// this, the simulator can.
  DensityMatrix peek(std::span<const QubitId> qubits) const;

  /// Fidelity of the listed qubits' reduced state to a pure state.
  double fidelity(std::span<const QubitId> qubits,
                  std::span<const Complex> psi) const;

 private:
  struct Group {
    DensityMatrix dm{0};
    std::vector<QubitId> members;  // position i <-> qubit index i in dm
  };
  using GroupPtr = std::shared_ptr<Group>;

  struct Slot {
    GroupPtr group;
    int index = 0;
  };

  const Slot& slot(QubitId q) const;
  Slot& slot(QubitId q);

  /// Ensure all listed qubits live in one group; returns it and fills
  /// `indices` with each qubit's index inside that group.
  GroupPtr merge(std::span<const QubitId> qubits, std::vector<int>& indices);

  /// Remove qubit q from its group by tracing it out (q must already be
  /// in a post-measurement/uncorrelated situation for physical use).
  void extract(QubitId q);

  sim::Random& random_;
  QubitId next_id_ = 1;
  std::map<QubitId, Slot> lookup_;
};

}  // namespace qlink::quantum
