#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>

#include "qstate/backend.hpp"
#include "quantum/density_matrix.hpp"
#include "quantum/gates.hpp"
#include "sim/random.hpp"

/// \file registry.hpp
/// Shared-state qubit registry: the quantum-memory backing store for all
/// simulated devices.
///
/// Qubits at *different nodes* can be entangled, so their joint state
/// must live in one store. The registry is a thin facade over a
/// pluggable qstate::StateBackend (see src/qstate/): the backend tracks
/// groups of qubits sharing a state, merges groups when a joint
/// operation spans them, and shrinks groups when qubits are measured or
/// discarded — mirroring the "qstate" sharing NetSquid uses. Which
/// representation backs those groups (dense density matrices,
/// Bell-diagonal coefficients, ...) is a per-scenario choice
/// (core::LinkConfig::backend).

namespace qlink::quantum {

/// Opaque handle to a live qubit. Id 0 is never valid.
using QubitId = qstate::QubitId;

class QuantumRegistry {
 public:
  /// Default backend: dense density matrices (reference semantics).
  explicit QuantumRegistry(sim::Random& random);
  QuantumRegistry(sim::Random& random, qstate::BackendKind kind);
  /// Adopt a caller-built backend (must already use `random`).
  QuantumRegistry(sim::Random& random,
                  std::unique_ptr<qstate::StateBackend> backend);
  ~QuantumRegistry();

  QuantumRegistry(const QuantumRegistry&) = delete;
  QuantumRegistry& operator=(const QuantumRegistry&) = delete;

  /// The deterministic random source behind all quantum sampling.
  sim::Random& random() noexcept { return random_; }

  /// The state representation in use.
  qstate::StateBackend& backend() noexcept { return *backend_; }
  const qstate::StateBackend& backend() const noexcept { return *backend_; }

  /// Allocate a fresh qubit in |0>.
  QubitId create() { return backend_->create(); }

  /// Destroy a qubit: it is traced out of its group.
  void discard(QubitId q) { backend_->discard(q); }

  bool exists(QubitId q) const { return backend_->exists(q); }
  std::size_t live_qubits() const { return backend_->live_qubits(); }

  /// Number of qubits sharing a state with q (including q).
  std::size_t group_size(QubitId q) const { return backend_->group_size(q); }

  /// Apply a unitary on the listed qubits (groups merged as needed).
  void apply_unitary(const Matrix& u, std::span<const QubitId> qubits) {
    backend_->apply_unitary(u, qubits);
  }

  /// Apply a Kraus channel on the listed qubits.
  void apply_kraus(std::span<const Matrix> kraus,
                   std::span<const QubitId> qubits) {
    backend_->apply_kraus(kraus, qubits);
  }

  /// Structured noise: dephasing with probability p on one qubit
  /// (equivalent to apply_kraus(channels::dephasing(p)) but closed-form
  /// in every backend — no Kraus construction on the hot path).
  void dephase(QubitId q, double p) { backend_->dephase(q, p); }

  /// Depolarising channel with keep-weight f (channels::depolarizing).
  void depolarize(QubitId q, double f) { backend_->depolarize(q, f); }

  /// Combined T1/T2 decay over t_ns (channels::t1t2 semantics).
  void decay(QubitId q, double t_ns, double t1_ns, double t2_ns) {
    backend_->decay(q, t_ns, t1_ns, t2_ns);
  }

  /// Measure one qubit in the given basis. The qubit collapses, is
  /// separated from its group, and remains allocated in the post-
  /// measurement product state (callers typically discard it next).
  /// Returns 0 or 1.
  int measure(QubitId q, gates::Basis basis) {
    return backend_->measure(q, basis);
  }

  /// Bell measurement: CNOT(control -> target), H(control), then two
  /// Z measurements. Returns {m1 = control outcome, m2 = target
  /// outcome}. Backends with structured pair states implement the
  /// entanglement swap behind this in closed form.
  std::pair<int, int> bell_measure(QubitId control, QubitId target) {
    return backend_->bell_measure(control, target);
  }

  /// Overwrite the joint state of the listed qubits with a given density
  /// matrix (used by the herald model to install fresh entanglement).
  /// Each qubit must currently be unentangled with anything outside the
  /// list; their old state is dropped.
  void set_state(std::span<const QubitId> qubits, const DensityMatrix& dm) {
    backend_->set_state(qubits, dm);
  }

  /// Reset a single qubit to |0> (dropping correlations: it is traced
  /// out of its group first). Models (re-)initialisation.
  void reset(QubitId q) { backend_->reset(q); }

  /// Reduced density matrix of the listed qubits, in the given order.
  /// Read-only diagnostic used by metrics/tests; a real device cannot do
  /// this, the simulator can.
  DensityMatrix peek(std::span<const QubitId> qubits) const {
    return backend_->peek(qubits);
  }

  /// Fidelity of the listed qubits' reduced state to a pure state.
  double fidelity(std::span<const QubitId> qubits,
                  std::span<const Complex> psi) const;

 private:
  sim::Random& random_;
  std::unique_ptr<qstate::StateBackend> backend_;
};

}  // namespace qlink::quantum
