#pragma once

#include <vector>

#include "quantum/matrix.hpp"

/// \file channels.hpp
/// Kraus representations of the noise channels used by the NV physical
/// model (Appendix D of the paper).

namespace qlink::quantum::channels {

/// Dephasing: rho -> (1-p) rho + p Z rho Z   (Eq. 24 / "Npdephas").
std::vector<Matrix> dephasing(double p);

/// Depolarising: rho -> f rho + (1-f)/3 (X rho X + Y rho Y + Z rho Z),
/// i.e. p = 1 - f is the total error probability (Appendix D.3.1).
std::vector<Matrix> depolarizing(double f);

/// Amplitude damping with parameter gamma: |1> decays to |0> w.p. gamma.
std::vector<Matrix> amplitude_damping(double gamma);

/// Combined T1/T2 decay for a wait of t_ns nanoseconds.
/// Amplitude damping gamma = 1 - exp(-t/T1), plus the extra pure
/// dephasing required so coherences decay as exp(-t/T2) overall.
/// T1 or T2 <= 0 means "infinite" (no decay on that axis).
/// Requires T2 <= 2*T1 (physicality), checked.
std::vector<Matrix> t1t2(double t_ns, double t1_ns, double t2_ns);

/// The (gamma, dephasing) parameter pair behind t1t2(): amplitude
/// damping probability and the extra pure-dephasing probability.
/// Exposed so state backends can apply the decay in closed form with
/// bit-identical arithmetic to the Kraus construction.
struct T1T2Rates {
  double gamma = 0.0;      ///< amplitude-damping probability
  double dephase_p = 0.0;  ///< extra pure-dephasing probability
};
T1T2Rates t1t2_rates(double t_ns, double t1_ns, double t2_ns);

/// The dephasing probability per entanglement attempt suffered by a
/// carbon (memory) qubit, Eq. 25:
///   p_d = alpha/2 * (1 - exp(-(delta_omega * tau_d)^2 / 2)).
double carbon_dephasing_probability(double alpha, double delta_omega_rad_per_s,
                                    double tau_d_s);

/// Dephasing probability from optical-phase uncertainty, Eq. 28:
///   p_d = (1 - I1(sigma^-2)/I0(sigma^-2)) / 2,
/// with sigma the phase standard deviation in radians.
double phase_uncertainty_dephasing(double sigma_rad);

}  // namespace qlink::quantum::channels
