#include "quantum/bessel.hpp"

#include <cmath>
#include <stdexcept>

namespace qlink::quantum {

double bessel_i1_over_i0(double x) {
  if (x < 0.0) throw std::invalid_argument("bessel_i1_over_i0: x < 0");
  if (x == 0.0) return 0.0;

  // Continued fraction (Perron / Amos 1974):
  //   I_{v+1}(x) / I_v(x) = 1 / (2(v+1)/x + 1/(2(v+2)/x + ...))
  // evaluated with the modified Lentz algorithm for v = 0.
  const double tiny = 1e-30;
  double f = tiny;
  double c = f;
  double d = 0.0;
  const int max_iter = 1000;
  for (int k = 1; k <= max_iter; ++k) {
    const double a = (k == 1) ? 1.0 : 1.0;
    const double b = 2.0 * k / x;
    d = b + a * d;
    if (std::abs(d) < tiny) d = tiny;
    c = b + a / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = c * d;
    f *= delta;
    if (std::abs(delta - 1.0) < 1e-15) return f;
  }
  return f;
}

}  // namespace qlink::quantum
