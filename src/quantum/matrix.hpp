#pragma once

#include <atomic>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

/// \file matrix.hpp
/// Dense complex matrices for the quantum simulator.
///
/// Quantum states in this reproduction never exceed a handful of qubits
/// (the herald model needs 4: two electrons plus two photonic qubits), so
/// a straightforward dense row-major matrix is both simple and fast
/// enough. No external linear-algebra dependency is used.

namespace qlink::quantum {

using Complex = std::complex<double>;

class Matrix {
 public:
  Matrix() = default;

  /// Zero matrix of the given shape.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, Complex{0.0, 0.0}) {
    if (!data_.empty()) heap_allocations_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Build from nested initializer lists: Matrix{{a,b},{c,d}}.
  Matrix(std::initializer_list<std::initializer_list<Complex>> rows);

  /// Copies allocate (and are counted); moves never do. The hot paths
  /// in gates.cpp / channels.cpp and the state backends hand matrices
  /// around by move — heap_allocations() makes silent copies visible
  /// and is asserted on in tests/test_matrix.cpp.
  Matrix(const Matrix& other)
      : rows_(other.rows_), cols_(other.cols_), data_(other.data_) {
    if (!data_.empty()) heap_allocations_.fetch_add(1, std::memory_order_relaxed);
  }
  Matrix(Matrix&& other) noexcept
      : rows_(other.rows_), cols_(other.cols_), data_(std::move(other.data_)) {
    other.rows_ = 0;
    other.cols_ = 0;
    other.data_.clear();
  }
  Matrix& operator=(const Matrix& other) {
    if (this == &other) return *this;
    if (data_.capacity() < other.data_.size() && !other.data_.empty()) {
      heap_allocations_.fetch_add(1, std::memory_order_relaxed);
    }
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_ = other.data_;
    return *this;
  }
  Matrix& operator=(Matrix&& other) noexcept {
    if (this == &other) return *this;
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_ = std::move(other.data_);
    other.rows_ = 0;
    other.cols_ = 0;
    other.data_.clear();
    return *this;
  }

  /// Total heap allocations made by Matrix construction/copying so far
  /// (monotone; diff across a region to bound its allocation count).
  static std::uint64_t heap_allocations() noexcept {
    return heap_allocations_.load(std::memory_order_relaxed);
  }

  static Matrix identity(std::size_t n);
  static Matrix zero(std::size_t rows, std::size_t cols) {
    return Matrix(rows, cols);
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  Complex& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  const Complex& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<const Complex> data() const noexcept { return data_; }

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(const Matrix& other) const;
  Matrix operator*(Complex scalar) const;
  Matrix& operator+=(const Matrix& other);
  Matrix& operator*=(Complex scalar);

  /// Conjugate transpose.
  Matrix dagger() const;

  /// Kronecker (tensor) product, `this` on the left.
  Matrix kron(const Matrix& other) const;

  Complex trace() const;

  /// Frobenius norm of (this - other); used by tests for approx equality.
  double distance(const Matrix& other) const;

  bool is_square() const noexcept { return rows_ == cols_; }
  bool approx_equal(const Matrix& other, double tol = 1e-9) const;
  bool is_hermitian(double tol = 1e-9) const;

  /// Matrix-vector product.
  std::vector<Complex> apply(std::span<const Complex> v) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Complex> data_;
  // Shards run on threads (sim/sharded_engine.hpp), so the counter must
  // be atomic; relaxed increments keep it near-free on the hot path.
  static std::atomic<std::uint64_t> heap_allocations_;
};

Matrix operator*(Complex scalar, const Matrix& m);

/// Outer product |a><b|.
Matrix outer(std::span<const Complex> a, std::span<const Complex> b);

/// Inner product <a|b>.
Complex inner(std::span<const Complex> a, std::span<const Complex> b);

/// Normalise a state vector in place; throws on the zero vector.
void normalize(std::vector<Complex>& v);

}  // namespace qlink::quantum
