#include "quantum/gates.hpp"

#include <cmath>
#include <stdexcept>

namespace qlink::quantum::gates {

namespace {
const Complex kI{0.0, 1.0};
const double kInvSqrt2 = 1.0 / std::sqrt(2.0);
}  // namespace

const Matrix& x() {
  static const Matrix m{{0, 1}, {1, 0}};
  return m;
}

const Matrix& y() {
  static const Matrix m{{0, -kI}, {kI, 0}};
  return m;
}

const Matrix& z() {
  static const Matrix m{{1, 0}, {0, -1}};
  return m;
}

const Matrix& h() {
  static const Matrix m{{kInvSqrt2, kInvSqrt2}, {kInvSqrt2, -kInvSqrt2}};
  return m;
}

const Matrix& s() {
  static const Matrix m{{1, 0}, {0, kI}};
  return m;
}

const Matrix& i2() {
  static const Matrix m = Matrix::identity(2);
  return m;
}

Matrix rx(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s_ = std::sin(theta / 2.0);
  return Matrix{{c, -kI * s_}, {-kI * s_, c}};
}

Matrix ry(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s_ = std::sin(theta / 2.0);
  return Matrix{{c, -s_}, {s_, c}};
}

Matrix rz(double theta) {
  const Complex em = std::exp(-kI * (theta / 2.0));
  const Complex ep = std::exp(kI * (theta / 2.0));
  return Matrix{{em, 0}, {0, ep}};
}

const Matrix& cnot() {
  static const Matrix m{
      {1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}};
  return m;
}

const Matrix& cz() {
  static const Matrix m{
      {1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, -1}};
  return m;
}

const Matrix& swap() {
  static const Matrix m{
      {1, 0, 0, 0}, {0, 0, 1, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}};
  return m;
}

Matrix ec_controlled_rx(double theta) {
  Matrix out(4, 4);
  const Matrix plus = rx(theta);
  const Matrix minus = rx(-theta);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      out(i, j) = plus(i, j);
      out(2 + i, 2 + j) = minus(i, j);
    }
  }
  return out;
}

const Matrix& basis_change(Basis b) {
  switch (b) {
    case Basis::kX:
      return h();
    case Basis::kY: {
      // Maps |Y,0> -> |0> and |Y,1> -> |1>: rows are <Y,k|.
      static const Matrix m{{kInvSqrt2, -kI * kInvSqrt2},
                            {kInvSqrt2, kI * kInvSqrt2}};
      return m;
    }
    case Basis::kZ:
      return i2();
  }
  throw std::logic_error("basis_change: invalid basis");
}

const char* basis_name(Basis b) {
  switch (b) {
    case Basis::kX:
      return "X";
    case Basis::kY:
      return "Y";
    case Basis::kZ:
      return "Z";
  }
  return "?";
}

}  // namespace qlink::quantum::gates
