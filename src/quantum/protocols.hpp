#pragma once

#include <span>

#include "quantum/bell.hpp"
#include "quantum/registry.hpp"

/// \file protocols.hpp
/// Entanglement-consuming primitives built on the registry: the
/// higher-layer operations the link-layer service exists to enable
/// (Figure 1 of the paper), packaged as a reusable public API.
///
///  - teleport():        SQ use case — move an unknown qubit state using
///                        one entangled pair plus two classical bits.
///  - entanglement_swap(): NL use case — splice two pairs at a common
///                        node into one longer pair.
///  - distill():          BBPSSW/DEJMPS-style purification — burn one
///                        noisy pair to raise the fidelity of another
///                        (Section 4.1.1 cites distillation as the way
///                        the same hardware serves higher F_min).

namespace qlink::quantum::protocols {

/// Classical correction bits produced by a Bell measurement.
struct BellMeasurement {
  int m1 = 0;  // Z-type correction selector
  int m2 = 0;  // X-type correction selector
};

/// Bell-measure (source, half) at the sender. Both measured qubits
/// collapse; the caller transmits {m1, m2} classically.
BellMeasurement bell_measure(QuantumRegistry& registry, QubitId source,
                             QubitId half);

/// Apply teleportation corrections at the receiver given the sender's
/// Bell-measurement outcome. `shared_state` names the Bell state the
/// pair was delivered in (the EGP delivers |Psi+>); the correction table
/// is adjusted accordingly.
void apply_teleport_corrections(QuantumRegistry& registry, QubitId receiver,
                                const BellMeasurement& m,
                                bell::BellState shared_state);

/// Full teleportation: source state at the sender moves onto `receiver`.
/// Consumes `source` and `sender_half` (both are measured; the caller
/// still owns/discards the ids).
void teleport(QuantumRegistry& registry, QubitId source, QubitId sender_half,
              QubitId receiver, bell::BellState shared_state);

/// Entanglement swap at a middle node holding `half_left` (entangled
/// with `outer_left`) and `half_right` (entangled with `outer_right`).
/// After the swap and corrections (applied on `outer_right`), the outer
/// qubits share a Bell state. Returns the measurement record the middle
/// node would announce. Both input pairs must be delivered as
/// `shared_state` (|Psi+> from the EGP).
BellMeasurement entanglement_swap(QuantumRegistry& registry,
                                  QubitId half_left, QubitId half_right,
                                  QubitId outer_right,
                                  bell::BellState shared_state);

/// One BBPSSW-style distillation round on two |Psi+>-delivered pairs
/// (kept = {a1, b1}, sacrificed = {a2, b2}; a* at node A, b* at node B).
/// The sacrificed pair is measured; the round *succeeds* when the two
/// measurement outcomes agree, in which case the kept pair's fidelity
/// increases (for input F > 1/2). Returns success; on failure the kept
/// pair should be discarded by the caller.
bool distill(QuantumRegistry& registry, QubitId kept_a, QubitId kept_b,
             QubitId sacrificed_a, QubitId sacrificed_b);

/// Analytic BBPSSW output fidelity for two Werner-state inputs of
/// fidelity f (textbook formula), exposed for tests and benches:
///   F' = (f^2 + (1-f)^2/9) / (f^2 + 2f(1-f)/3 + 5(1-f)^2/9)
double bbpssw_output_fidelity(double f);

/// Success probability of the BBPSSW round for Werner inputs.
double bbpssw_success_probability(double f);

}  // namespace qlink::quantum::protocols
