#include "quantum/density_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qlink::quantum {

namespace {

int log2_exact(std::size_t dim) {
  int n = 0;
  std::size_t d = dim;
  while (d > 1) {
    if (d % 2 != 0) throw std::invalid_argument("dimension not a power of 2");
    d /= 2;
    ++n;
  }
  return n;
}

void check_targets(std::span<const int> targets, int num_qubits) {
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (targets[i] < 0 || targets[i] >= num_qubits) {
      throw std::invalid_argument("target qubit out of range");
    }
    for (std::size_t j = i + 1; j < targets.size(); ++j) {
      if (targets[i] == targets[j]) {
        throw std::invalid_argument("duplicate target qubit");
      }
    }
  }
}

}  // namespace

DensityMatrix::DensityMatrix(int num_qubits)
    : m_(std::size_t{1} << num_qubits, std::size_t{1} << num_qubits),
      num_qubits_(num_qubits) {
  if (num_qubits < 0 || num_qubits > 16) {
    throw std::invalid_argument("DensityMatrix: unsupported qubit count");
  }
  m_(0, 0) = 1.0;
}

DensityMatrix DensityMatrix::from_pure(std::span<const Complex> amplitudes) {
  const int n = log2_exact(amplitudes.size());
  double norm2 = 0.0;
  for (const auto& a : amplitudes) norm2 += std::norm(a);
  if (std::abs(norm2 - 1.0) > 1e-9) {
    throw std::invalid_argument("from_pure: state not normalised");
  }
  return DensityMatrix(outer(amplitudes, amplitudes), n);
}

DensityMatrix DensityMatrix::from_matrix(Matrix m) {
  if (!m.is_square()) throw std::invalid_argument("from_matrix: not square");
  const int n = log2_exact(m.rows());
  return DensityMatrix(std::move(m), n);
}

Matrix DensityMatrix::expand_operator(const Matrix& op,
                                      std::span<const int> targets,
                                      int num_qubits) {
  const int k = static_cast<int>(targets.size());
  if (op.rows() != (std::size_t{1} << k) || !op.is_square()) {
    throw std::invalid_argument("expand_operator: operator/target mismatch");
  }
  check_targets(targets, num_qubits);

  const std::size_t dim = std::size_t{1} << num_qubits;
  const std::size_t sub = std::size_t{1} << k;
  const std::size_t rest = dim >> k;

  // Bit position (from the left / MSB) of qubit q is num_qubits-1-q when
  // counting from bit 0 = LSB.
  std::vector<int> target_bits(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    target_bits[i] = num_qubits - 1 - targets[i];
  }
  std::vector<int> other_bits;
  for (int b = num_qubits - 1; b >= 0; --b) {
    if (std::find(target_bits.begin(), target_bits.end(), b) ==
        target_bits.end()) {
      other_bits.push_back(b);
    }
  }

  auto compose = [&](std::size_t sub_idx, std::size_t rest_idx) {
    std::size_t idx = 0;
    // sub_idx bit i (MSB-first over targets) goes to target_bits[i].
    for (std::size_t i = 0; i < target_bits.size(); ++i) {
      const std::size_t bit = (sub_idx >> (k - 1 - static_cast<int>(i))) & 1u;
      idx |= bit << target_bits[i];
    }
    for (std::size_t i = 0; i < other_bits.size(); ++i) {
      const std::size_t bit =
          (rest_idx >> (other_bits.size() - 1 - i)) & 1u;
      idx |= bit << other_bits[i];
    }
    return idx;
  };

  Matrix full(dim, dim);
  for (std::size_t r = 0; r < rest; ++r) {
    for (std::size_t i = 0; i < sub; ++i) {
      for (std::size_t j = 0; j < sub; ++j) {
        const Complex v = op(i, j);
        if (v == Complex{0.0, 0.0}) continue;
        full(compose(i, r), compose(j, r)) = v;
      }
    }
  }
  return full;
}

void DensityMatrix::apply_unitary(const Matrix& u,
                                  std::span<const int> targets) {
  const Matrix full = expand_operator(u, targets, num_qubits_);
  m_ = full * m_ * full.dagger();
}

void DensityMatrix::apply_kraus(std::span<const Matrix> kraus,
                                std::span<const int> targets) {
  if (kraus.empty()) throw std::invalid_argument("apply_kraus: empty set");
  Matrix acc(m_.rows(), m_.cols());
  for (const Matrix& k : kraus) {
    const Matrix full = expand_operator(k, targets, num_qubits_);
    acc += full * m_ * full.dagger();
  }
  m_ = std::move(acc);
}

double DensityMatrix::povm_probability(const Matrix& effect,
                                       std::span<const int> targets) const {
  const Matrix full = expand_operator(effect, targets, num_qubits_);
  return (full * m_).trace().real();
}

double DensityMatrix::apply_and_renormalize(const Matrix& op,
                                            std::span<const int> targets) {
  const Matrix full = expand_operator(op, targets, num_qubits_);
  Matrix post = full * m_ * full.dagger();
  const double p = post.trace().real();
  if (p < 1e-15) return 0.0;
  post *= Complex{1.0 / p, 0.0};
  m_ = std::move(post);
  return p;
}

DensityMatrix DensityMatrix::partial_trace(std::span<const int> remove) const {
  check_targets(remove, num_qubits_);
  if (static_cast<int>(remove.size()) == num_qubits_) {
    throw std::invalid_argument("partial_trace: cannot remove all qubits");
  }
  std::vector<int> keep;
  for (int q = 0; q < num_qubits_; ++q) {
    if (std::find(remove.begin(), remove.end(), q) == remove.end()) {
      keep.push_back(q);
    }
  }
  const int nk = static_cast<int>(keep.size());
  const int nr = num_qubits_ - nk;
  const std::size_t dim_k = std::size_t{1} << nk;
  const std::size_t dim_r = std::size_t{1} << nr;

  auto compose = [&](std::size_t keep_idx, std::size_t rem_idx) {
    std::size_t idx = 0;
    for (int i = 0; i < nk; ++i) {
      const std::size_t bit = (keep_idx >> (nk - 1 - i)) & 1u;
      idx |= bit << (num_qubits_ - 1 - keep[i]);
    }
    for (int i = 0; i < nr; ++i) {
      const std::size_t bit = (rem_idx >> (nr - 1 - i)) & 1u;
      idx |= bit << (num_qubits_ - 1 - remove[i]);
    }
    return idx;
  };

  Matrix out(dim_k, dim_k);
  for (std::size_t i = 0; i < dim_k; ++i) {
    for (std::size_t j = 0; j < dim_k; ++j) {
      Complex sum{0.0, 0.0};
      for (std::size_t r = 0; r < dim_r; ++r) {
        sum += m_(compose(i, r), compose(j, r));
      }
      out(i, j) = sum;
    }
  }
  return DensityMatrix(std::move(out), nk);
}

DensityMatrix DensityMatrix::tensor(const DensityMatrix& other) const {
  return DensityMatrix(m_.kron(other.m_), num_qubits_ + other.num_qubits_);
}

double DensityMatrix::fidelity(std::span<const Complex> psi) const {
  if (psi.size() != dim()) {
    throw std::invalid_argument("fidelity: dimension mismatch");
  }
  // <psi| rho |psi>
  const std::vector<Complex> rho_psi = m_.apply(psi);
  return inner(psi, rho_psi).real();
}

double DensityMatrix::trace_real() const { return m_.trace().real(); }

double DensityMatrix::purity() const { return (m_ * m_).trace().real(); }

DensityMatrix DensityMatrix::permuted(std::span<const int> perm) const {
  if (static_cast<int>(perm.size()) != num_qubits_) {
    throw std::invalid_argument("permuted: wrong permutation size");
  }
  check_targets(perm, num_qubits_);
  const std::size_t d = dim();
  auto map_index = [&](std::size_t idx) {
    std::size_t out = 0;
    for (int i = 0; i < num_qubits_; ++i) {
      const std::size_t bit = (idx >> (num_qubits_ - 1 - perm[i])) & 1u;
      out |= bit << (num_qubits_ - 1 - i);
    }
    return out;
  };
  Matrix out(d, d);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      out(map_index(i), map_index(j)) = m_(i, j);
    }
  }
  return DensityMatrix(std::move(out), num_qubits_);
}

void DensityMatrix::renormalize() {
  const double t = trace_real();
  if (t < 1e-15) throw std::logic_error("renormalize: zero trace");
  m_ *= Complex{1.0 / t, 0.0};
}

}  // namespace qlink::quantum
