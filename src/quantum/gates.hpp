#pragma once

#include "quantum/matrix.hpp"

/// \file gates.hpp
/// Standard single- and two-qubit gate matrices, plus the NV-specific
/// electron-controlled carbon rotation of Appendix D.2.2 (Eq. 22).

namespace qlink::quantum::gates {

/// Pauli X (bit flip).
const Matrix& x();
/// Pauli Y.
const Matrix& y();
/// Pauli Z (phase flip).
const Matrix& z();
/// Hadamard.
const Matrix& h();
/// Phase gate S = diag(1, i).
const Matrix& s();
/// 2x2 identity.
const Matrix& i2();

/// Rotation about the X axis: exp(-i theta X / 2).
Matrix rx(double theta);
/// Rotation about the Y axis: exp(-i theta Y / 2).
Matrix ry(double theta);
/// Rotation about the Z axis: exp(-i theta Z / 2).
Matrix rz(double theta);

/// CNOT with qubit 0 (the left tensor factor) as control.
const Matrix& cnot();
/// Controlled-Z.
const Matrix& cz();
/// SWAP.
const Matrix& swap();

/// The NV electron(control)-carbon(target) gate of Eq. 22:
/// diag(RX(theta), RX(-theta)). theta = pi/2 gives the
/// "E-C controlled-sqrt(X)" of Table 6.
Matrix ec_controlled_rx(double theta);

/// Basis-change unitary U such that measuring in basis B equals applying
/// U then measuring in Z. X -> H, Y -> (S H)^dagger adjoint convention,
/// Z -> identity.
enum class Basis { kX, kY, kZ };
const Matrix& basis_change(Basis b);

/// Human-readable basis name ("X", "Y", "Z").
const char* basis_name(Basis b);

}  // namespace qlink::quantum::gates
