#include "quantum/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace qlink::quantum {

std::atomic<std::uint64_t> Matrix::heap_allocations_{0};

Matrix::Matrix(std::initializer_list<std::initializer_list<Complex>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  if (rows_ * cols_ > 0) heap_allocations_.fetch_add(1, std::memory_order_relaxed);
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::operator+(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::operator+: shape mismatch");
  }
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] + other.data_[i];
  }
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::operator-: shape mismatch");
  }
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] - other.data_[i];
  }
  return out;
}

Matrix Matrix::operator*(const Matrix& other) const {
  if (cols_ != other.rows_) {
    throw std::invalid_argument("Matrix::operator*: shape mismatch");
  }
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const Complex a = (*this)(i, k);
      if (a == Complex{0.0, 0.0}) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += a * other(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator*(Complex scalar) const {
  Matrix out = *this;
  out *= scalar;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::operator+=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(Complex scalar) {
  for (auto& x : data_) x *= scalar;
  return *this;
}

Matrix Matrix::dagger() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      out(j, i) = std::conj((*this)(i, j));
    }
  }
  return out;
}

Matrix Matrix::kron(const Matrix& other) const {
  Matrix out(rows_ * other.rows_, cols_ * other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      const Complex a = (*this)(i, j);
      if (a == Complex{0.0, 0.0}) continue;
      for (std::size_t k = 0; k < other.rows_; ++k) {
        for (std::size_t l = 0; l < other.cols_; ++l) {
          out(i * other.rows_ + k, j * other.cols_ + l) = a * other(k, l);
        }
      }
    }
  }
  return out;
}

Complex Matrix::trace() const {
  if (!is_square()) throw std::logic_error("Matrix::trace: not square");
  Complex t{0.0, 0.0};
  for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

double Matrix::distance(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::distance: shape mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    sum += std::norm(data_[i] - other.data_[i]);
  }
  return std::sqrt(sum);
}

bool Matrix::approx_equal(const Matrix& other, double tol) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         distance(other) <= tol;
}

bool Matrix::is_hermitian(double tol) const {
  if (!is_square()) return false;
  return distance(dagger()) <= tol;
}

std::vector<Complex> Matrix::apply(std::span<const Complex> v) const {
  if (v.size() != cols_) {
    throw std::invalid_argument("Matrix::apply: size mismatch");
  }
  std::vector<Complex> out(rows_, Complex{0.0, 0.0});
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      out[i] += (*this)(i, j) * v[j];
    }
  }
  return out;
}

Matrix operator*(Complex scalar, const Matrix& m) { return m * scalar; }

Matrix outer(std::span<const Complex> a, std::span<const Complex> b) {
  Matrix out(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out(i, j) = a[i] * std::conj(b[j]);
    }
  }
  return out;
}

Complex inner(std::span<const Complex> a, std::span<const Complex> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("inner: size mismatch");
  }
  Complex s{0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) s += std::conj(a[i]) * b[i];
  return s;
}

void normalize(std::vector<Complex>& v) {
  double n2 = 0.0;
  for (const auto& x : v) n2 += std::norm(x);
  if (n2 <= 0.0) throw std::invalid_argument("normalize: zero vector");
  const double inv = 1.0 / std::sqrt(n2);
  for (auto& x : v) x *= inv;
}

}  // namespace qlink::quantum
