#include "quantum/channels.hpp"

#include <cmath>
#include <stdexcept>

#include "quantum/bessel.hpp"
#include "quantum/gates.hpp"

namespace qlink::quantum::channels {

namespace {
void check_prob(double p, const char* what) {
  if (p < -1e-12 || p > 1.0 + 1e-12) {
    throw std::invalid_argument(std::string(what) + ": out of [0,1]");
  }
}
double clamp01(double p) { return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p); }
}  // namespace

std::vector<Matrix> dephasing(double p) {
  check_prob(p, "dephasing");
  p = clamp01(p);
  // Built with push_back(move): an initializer-list return would copy
  // every Matrix a second time (std::initializer_list elements are
  // const), and these constructors sit on simulation hot paths.
  std::vector<Matrix> out;
  out.reserve(2);
  out.push_back(gates::i2() * Complex{std::sqrt(1.0 - p), 0.0});
  out.push_back(gates::z() * Complex{std::sqrt(p), 0.0});
  return out;
}

std::vector<Matrix> depolarizing(double f) {
  check_prob(f, "depolarizing");
  f = clamp01(f);
  const double e = (1.0 - f) / 3.0;
  std::vector<Matrix> out;
  out.reserve(4);
  out.push_back(gates::i2() * Complex{std::sqrt(f), 0.0});
  out.push_back(gates::x() * Complex{std::sqrt(e), 0.0});
  out.push_back(gates::y() * Complex{std::sqrt(e), 0.0});
  out.push_back(gates::z() * Complex{std::sqrt(e), 0.0});
  return out;
}

std::vector<Matrix> amplitude_damping(double gamma) {
  check_prob(gamma, "amplitude_damping");
  gamma = clamp01(gamma);
  std::vector<Matrix> out;
  out.reserve(2);
  out.push_back(Matrix{{1, 0}, {0, std::sqrt(1.0 - gamma)}});
  out.push_back(Matrix{{0, std::sqrt(gamma)}, {0, 0}});
  return out;
}

T1T2Rates t1t2_rates(double t_ns, double t1_ns, double t2_ns) {
  if (t_ns < 0.0) throw std::invalid_argument("t1t2: negative time");
  const bool has_t1 = t1_ns > 0.0 && std::isfinite(t1_ns);
  const bool has_t2 = t2_ns > 0.0 && std::isfinite(t2_ns);

  T1T2Rates r;
  r.gamma = has_t1 ? 1.0 - std::exp(-t_ns / t1_ns) : 0.0;

  // Coherence after amplitude damping alone decays as sqrt(1-gamma)
  // = exp(-t/2T1). Add pure dephasing so the total coherence factor is
  // exp(-t/T2): (1 - 2 p_d) * exp(-t/2T1) = exp(-t/T2).
  if (has_t2) {
    const double target = std::exp(-t_ns / t2_ns);
    const double from_t1 = has_t1 ? std::exp(-t_ns / (2.0 * t1_ns)) : 1.0;
    if (target > from_t1 + 1e-12) {
      throw std::invalid_argument("t1t2: requires T2 <= 2*T1");
    }
    // At the T2 == 2*T1 boundary float rounding can push this a hair
    // negative; clamp like dephasing() always did, so the closed-form
    // decay paths never amplify coherences.
    r.dephase_p = std::max(0.0, 0.5 * (1.0 - target / from_t1));
  }
  return r;
}

std::vector<Matrix> t1t2(double t_ns, double t1_ns, double t2_ns) {
  const T1T2Rates r = t1t2_rates(t_ns, t1_ns, t2_ns);

  // Compose: amplitude damping then dephasing. Both sets are 2x2, so the
  // composition is the pairwise product set.
  const auto ad = amplitude_damping(r.gamma);
  const auto dp = dephasing(r.dephase_p);
  std::vector<Matrix> out;
  out.reserve(ad.size() * dp.size());
  for (const auto& d : dp) {
    for (const auto& a : ad) out.push_back(d * a);
  }
  return out;
}

double carbon_dephasing_probability(double alpha, double delta_omega_rad_per_s,
                                    double tau_d_s) {
  check_prob(alpha, "carbon_dephasing_probability alpha");
  const double x = delta_omega_rad_per_s * tau_d_s;
  return alpha / 2.0 * (1.0 - std::exp(-x * x / 2.0));
}

double phase_uncertainty_dephasing(double sigma_rad) {
  if (sigma_rad < 0.0) {
    throw std::invalid_argument("phase_uncertainty_dephasing: sigma < 0");
  }
  if (sigma_rad == 0.0) return 0.0;
  const double ratio = bessel_i1_over_i0(1.0 / (sigma_rad * sigma_rad));
  return (1.0 - ratio) / 2.0;
}

}  // namespace qlink::quantum::channels
