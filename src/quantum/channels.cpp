#include "quantum/channels.hpp"

#include <cmath>
#include <stdexcept>

#include "quantum/bessel.hpp"
#include "quantum/gates.hpp"

namespace qlink::quantum::channels {

namespace {
void check_prob(double p, const char* what) {
  if (p < -1e-12 || p > 1.0 + 1e-12) {
    throw std::invalid_argument(std::string(what) + ": out of [0,1]");
  }
}
double clamp01(double p) { return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p); }
}  // namespace

std::vector<Matrix> dephasing(double p) {
  check_prob(p, "dephasing");
  p = clamp01(p);
  return {gates::i2() * Complex{std::sqrt(1.0 - p), 0.0},
          gates::z() * Complex{std::sqrt(p), 0.0}};
}

std::vector<Matrix> depolarizing(double f) {
  check_prob(f, "depolarizing");
  f = clamp01(f);
  const double e = (1.0 - f) / 3.0;
  return {gates::i2() * Complex{std::sqrt(f), 0.0},
          gates::x() * Complex{std::sqrt(e), 0.0},
          gates::y() * Complex{std::sqrt(e), 0.0},
          gates::z() * Complex{std::sqrt(e), 0.0}};
}

std::vector<Matrix> amplitude_damping(double gamma) {
  check_prob(gamma, "amplitude_damping");
  gamma = clamp01(gamma);
  const Matrix k0{{1, 0}, {0, std::sqrt(1.0 - gamma)}};
  const Matrix k1{{0, std::sqrt(gamma)}, {0, 0}};
  return {k0, k1};
}

std::vector<Matrix> t1t2(double t_ns, double t1_ns, double t2_ns) {
  if (t_ns < 0.0) throw std::invalid_argument("t1t2: negative time");
  const bool has_t1 = t1_ns > 0.0 && std::isfinite(t1_ns);
  const bool has_t2 = t2_ns > 0.0 && std::isfinite(t2_ns);

  const double gamma = has_t1 ? 1.0 - std::exp(-t_ns / t1_ns) : 0.0;

  // Coherence after amplitude damping alone decays as sqrt(1-gamma)
  // = exp(-t/2T1). Add pure dephasing so the total coherence factor is
  // exp(-t/T2): (1 - 2 p_d) * exp(-t/2T1) = exp(-t/T2).
  double pd = 0.0;
  if (has_t2) {
    const double target = std::exp(-t_ns / t2_ns);
    const double from_t1 = has_t1 ? std::exp(-t_ns / (2.0 * t1_ns)) : 1.0;
    if (target > from_t1 + 1e-12) {
      throw std::invalid_argument("t1t2: requires T2 <= 2*T1");
    }
    pd = 0.5 * (1.0 - target / from_t1);
  }

  // Compose: amplitude damping then dephasing. Both sets are 2x2, so the
  // composition is the pairwise product set.
  const auto ad = amplitude_damping(gamma);
  const auto dp = dephasing(pd);
  std::vector<Matrix> out;
  out.reserve(ad.size() * dp.size());
  for (const auto& d : dp) {
    for (const auto& a : ad) out.push_back(d * a);
  }
  return out;
}

double carbon_dephasing_probability(double alpha, double delta_omega_rad_per_s,
                                    double tau_d_s) {
  check_prob(alpha, "carbon_dephasing_probability alpha");
  const double x = delta_omega_rad_per_s * tau_d_s;
  return alpha / 2.0 * (1.0 - std::exp(-x * x / 2.0));
}

double phase_uncertainty_dephasing(double sigma_rad) {
  if (sigma_rad < 0.0) {
    throw std::invalid_argument("phase_uncertainty_dephasing: sigma < 0");
  }
  if (sigma_rad == 0.0) return 0.0;
  const double ratio = bessel_i1_over_i0(1.0 / (sigma_rad * sigma_rad));
  return (1.0 - ratio) / 2.0;
}

}  // namespace qlink::quantum::channels
