#include "quantum/bell.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

namespace qlink::quantum::bell {

namespace {
const double kS = 1.0 / std::sqrt(2.0);
}

const std::vector<Complex>& state_vector(BellState s) {
  static const std::vector<Complex> phi_plus{kS, 0, 0, kS};
  static const std::vector<Complex> phi_minus{kS, 0, 0, -kS};
  static const std::vector<Complex> psi_plus{0, kS, kS, 0};
  static const std::vector<Complex> psi_minus{0, kS, -kS, 0};
  switch (s) {
    case BellState::kPhiPlus:
      return phi_plus;
    case BellState::kPhiMinus:
      return phi_minus;
    case BellState::kPsiPlus:
      return psi_plus;
    case BellState::kPsiMinus:
      return psi_minus;
  }
  throw std::logic_error("state_vector: invalid Bell state");
}

double fidelity(const DensityMatrix& rho, BellState s) {
  return rho.fidelity(state_vector(s));
}

bool ideal_outcomes_equal(BellState s, gates::Basis b) {
  // Stabiliser signs: |Phi+> = +XX, -YY, +ZZ; |Phi-> = -XX, +YY, +ZZ;
  // |Psi+> = +XX, +YY, -ZZ; |Psi-> = -XX, -YY, -ZZ.
  // A "+" sign for basis B means outcomes in B are equal.
  switch (s) {
    case BellState::kPhiPlus:
      return b != gates::Basis::kY;
    case BellState::kPhiMinus:
      return b != gates::Basis::kX;
    case BellState::kPsiPlus:
      return b != gates::Basis::kZ;
    case BellState::kPsiMinus:
      return false;
  }
  throw std::logic_error("ideal_outcomes_equal: invalid Bell state");
}

double qber(const DensityMatrix& rho, BellState target, gates::Basis b) {
  if (rho.num_qubits() != 2) {
    throw std::invalid_argument("qber: need a two-qubit state");
  }
  // Rotate both qubits into the measurement basis, then sum the
  // probabilities of the outcome pairs that deviate from the ideal
  // correlation.
  DensityMatrix work = rho;
  const Matrix& u = gates::basis_change(b);
  const int t0[] = {0};
  const int t1[] = {1};
  work.apply_unitary(u, t0);
  work.apply_unitary(u, t1);
  const Matrix& m = work.matrix();
  const double p_equal = (m(0, 0) + m(3, 3)).real();
  const double p_diff = (m(1, 1) + m(2, 2)).real();
  return ideal_outcomes_equal(target, b) ? p_diff : p_equal;
}

double fidelity_from_qbers(double qber_x, double qber_y, double qber_z) {
  return 1.0 - (qber_x + qber_y + qber_z) / 2.0;
}

std::array<double, 4> diagonal_coefficients(const DensityMatrix& rho) {
  if (rho.num_qubits() != 2) {
    throw std::invalid_argument("diagonal_coefficients: need 2 qubits");
  }
  const Matrix& m = rho.matrix();
  const double d00 = m(0, 0).real();
  const double d11 = m(1, 1).real();
  const double d22 = m(2, 2).real();
  const double d33 = m(3, 3).real();
  const double re03 = m(0, 3).real() + m(3, 0).real();  // 2 Re (symmetrised)
  const double re12 = m(1, 2).real() + m(2, 1).real();
  return {(d00 + d33 + re03) / 2.0, (d00 + d33 - re03) / 2.0,
          (d11 + d22 + re12) / 2.0, (d11 + d22 - re12) / 2.0};
}

DensityMatrix from_coefficients(const std::array<double, 4>& p) {
  Matrix m(4, 4);
  const double phi_sum = (p[0] + p[1]) / 2.0;
  const double phi_diff = (p[0] - p[1]) / 2.0;
  const double psi_sum = (p[2] + p[3]) / 2.0;
  const double psi_diff = (p[2] - p[3]) / 2.0;
  m(0, 0) = m(3, 3) = phi_sum;
  m(0, 3) = m(3, 0) = phi_diff;
  m(1, 1) = m(2, 2) = psi_sum;
  m(1, 2) = m(2, 1) = psi_diff;
  DensityMatrix out = DensityMatrix::from_matrix(std::move(m));
  out.renormalize();
  return out;
}

DensityMatrix twirl(const DensityMatrix& rho) {
  return from_coefficients(diagonal_coefficients(rho));
}

double off_diagonal_residual(const DensityMatrix& rho) {
  return twirl(rho).matrix().distance(rho.matrix());
}

const char* name(BellState s) {
  switch (s) {
    case BellState::kPhiPlus:
      return "Phi+";
    case BellState::kPhiMinus:
      return "Phi-";
    case BellState::kPsiPlus:
      return "Psi+";
    case BellState::kPsiMinus:
      return "Psi-";
  }
  return "?";
}

}  // namespace qlink::quantum::bell
