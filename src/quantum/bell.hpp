#pragma once

#include <array>
#include <vector>

#include "quantum/density_matrix.hpp"
#include "quantum/gates.hpp"
#include "quantum/matrix.hpp"

/// \file bell.hpp
/// Bell-state algebra: the four Bell states, fidelity to them, and the
/// QBER <-> fidelity relations of Appendix A.3.

namespace qlink::quantum::bell {

enum class BellState { kPhiPlus, kPhiMinus, kPsiPlus, kPsiMinus };

/// State vector of the requested Bell state (two qubits).
const std::vector<Complex>& state_vector(BellState s);

/// Fidelity of a two-qubit density matrix to a Bell state.
double fidelity(const DensityMatrix& rho, BellState s);

/// Whether outcomes of measuring both qubits of the *ideal* Bell state
/// in the given basis are correlated (true) or anti-correlated (false).
/// E.g. |Psi+>: anti-correlated in Z, correlated in X, anti in Y... the
/// exact table is derived from the stabiliser signs and unit-tested.
bool ideal_outcomes_equal(BellState s, gates::Basis b);

/// QBER of rho in a basis relative to the ideal correlations of the
/// target Bell state: probability that the joint measurement deviates
/// from the ideal (anti-)correlation (footnote 3 of the paper).
double qber(const DensityMatrix& rho, BellState target, gates::Basis b);

/// Fidelity reconstructed from the three QBERs (generalisation of
/// Eq. 16): F = 1 - (QBER_X + QBER_Y + QBER_Z) / 2.
double fidelity_from_qbers(double qber_x, double qber_y, double qber_z);

/// Bell-basis diagonal of a two-qubit state: {<Phi+|rho|Phi+>,
/// <Phi-|rho|Phi->, <Psi+|rho|Psi+>, <Psi-|rho|Psi->}. These sum to 1
/// for any valid state; the state is Bell-diagonal iff rho equals the
/// mixture of Bell projectors with these weights.
std::array<double, 4> diagonal_coefficients(const DensityMatrix& rho);

/// Frobenius distance of rho to the Bell-diagonal state with the same
/// diagonal coefficients (0 iff rho is Bell-diagonal).
double off_diagonal_residual(const DensityMatrix& rho);

/// The Bell-diagonal two-qubit state with the given coefficients
/// (renormalised; the coefficients must be non-negative, not all zero).
DensityMatrix from_coefficients(const std::array<double, 4>& p);

/// Bell twirl: project rho onto the Bell-diagonal manifold, i.e. keep
/// only the Bell-basis diagonal. This is the average over correlated
/// two-sided Paulis (sigma x sigma), so it exactly preserves fidelity
/// to every Bell state and the QBER in every basis — the "Pauli frame"
/// the BellDiagonalBackend simulates in.
DensityMatrix twirl(const DensityMatrix& rho);

/// Name for reports, e.g. "Psi+".
const char* name(BellState s);

}  // namespace qlink::quantum::bell
