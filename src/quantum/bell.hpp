#pragma once

#include <vector>

#include "quantum/density_matrix.hpp"
#include "quantum/gates.hpp"
#include "quantum/matrix.hpp"

/// \file bell.hpp
/// Bell-state algebra: the four Bell states, fidelity to them, and the
/// QBER <-> fidelity relations of Appendix A.3.

namespace qlink::quantum::bell {

enum class BellState { kPhiPlus, kPhiMinus, kPsiPlus, kPsiMinus };

/// State vector of the requested Bell state (two qubits).
const std::vector<Complex>& state_vector(BellState s);

/// Fidelity of a two-qubit density matrix to a Bell state.
double fidelity(const DensityMatrix& rho, BellState s);

/// Whether outcomes of measuring both qubits of the *ideal* Bell state
/// in the given basis are correlated (true) or anti-correlated (false).
/// E.g. |Psi+>: anti-correlated in Z, correlated in X, anti in Y... the
/// exact table is derived from the stabiliser signs and unit-tested.
bool ideal_outcomes_equal(BellState s, gates::Basis b);

/// QBER of rho in a basis relative to the ideal correlations of the
/// target Bell state: probability that the joint measurement deviates
/// from the ideal (anti-)correlation (footnote 3 of the paper).
double qber(const DensityMatrix& rho, BellState target, gates::Basis b);

/// Fidelity reconstructed from the three QBERs (generalisation of
/// Eq. 16): F = 1 - (QBER_X + QBER_Y + QBER_Z) / 2.
double fidelity_from_qbers(double qber_x, double qber_y, double qber_z);

/// Name for reports, e.g. "Psi+".
const char* name(BellState s);

}  // namespace qlink::quantum::bell
