#pragma once

/// \file bessel.hpp
/// Ratio of modified Bessel functions I1(x)/I0(x), needed by the
/// phase-uncertainty dephasing model (Eq. 28). Computed with the
/// continued-fraction method of Amos (1974), as cited by the paper.

namespace qlink::quantum {

/// I1(x)/I0(x) for x >= 0. Accurate to ~1e-12 over the range used here.
double bessel_i1_over_i0(double x);

}  // namespace qlink::quantum
