#include "quantum/protocols.hpp"

#include <stdexcept>

#include "quantum/gates.hpp"

namespace qlink::quantum::protocols {

BellMeasurement bell_measure(QuantumRegistry& registry, QubitId source,
                             QubitId half) {
  // CNOT + H + two Z measurements, routed through the registry's
  // first-class Bell measurement so structured backends can run the
  // whole splice in closed form.
  const auto [m1, m2] = registry.bell_measure(source, half);
  return BellMeasurement{m1, m2};
}

void apply_teleport_corrections(QuantumRegistry& registry, QubitId receiver,
                                const BellMeasurement& m,
                                bell::BellState shared_state) {
  const QubitId r[] = {receiver};
  // Fold the shared state's offset from |Phi+> into the correction
  // table (Eq. 13): |Psi+-> need an extra X, |Phi-/Psi-> an extra Z.
  switch (shared_state) {
    case bell::BellState::kPhiPlus:
      break;
    case bell::BellState::kPhiMinus:
      registry.apply_unitary(gates::z(), r);
      break;
    case bell::BellState::kPsiPlus:
      registry.apply_unitary(gates::x(), r);
      break;
    case bell::BellState::kPsiMinus:
      registry.apply_unitary(gates::z(), r);
      registry.apply_unitary(gates::x(), r);
      break;
  }
  if (m.m2 == 1) registry.apply_unitary(gates::x(), r);
  if (m.m1 == 1) registry.apply_unitary(gates::z(), r);
}

void teleport(QuantumRegistry& registry, QubitId source, QubitId sender_half,
              QubitId receiver, bell::BellState shared_state) {
  const BellMeasurement m = bell_measure(registry, source, sender_half);
  apply_teleport_corrections(registry, receiver, m, shared_state);
}

BellMeasurement entanglement_swap(QuantumRegistry& registry,
                                  QubitId half_left, QubitId half_right,
                                  QubitId outer_right,
                                  bell::BellState shared_state) {
  // Swapping is teleporting one half through the other pair: the middle
  // node Bell-measures its two halves; the outer-right qubit receives
  // the corrections. The resulting outer-outer state equals the shared
  // state when both inputs were identical Bell pairs.
  const BellMeasurement m = bell_measure(registry, half_left, half_right);
  apply_teleport_corrections(registry, outer_right, m, shared_state);
  // After teleporting "half_left's entanglement" onto outer_right, the
  // outer pair is in `shared_state` composed with the Phi+ reference of
  // the left pair; for shared_state = Psi+ on both inputs one extra X
  // lands on the outer pair, matching bell_measure conventions. Tests
  // pin the exact output state.
  return m;
}

bool distill(QuantumRegistry& registry, QubitId kept_a, QubitId kept_b,
             QubitId sacrificed_a, QubitId sacrificed_b) {
  // BBPSSW on |Psi+>-convention pairs: bilateral CNOT from the kept pair
  // onto the sacrificed pair, then measure the sacrificed pair in Z at
  // both nodes. The bilateral CNOT XORs the kept pair's (anti-correlated)
  // bits into the sacrificed pair's (anti-correlated) bits, so in the
  // error-free case the two outcomes are EQUAL; equality heralds success.
  const QubitId at_a[] = {kept_a, sacrificed_a};
  const QubitId at_b[] = {kept_b, sacrificed_b};
  registry.apply_unitary(gates::cnot(), at_a);
  registry.apply_unitary(gates::cnot(), at_b);
  const int oa = registry.measure(sacrificed_a, gates::Basis::kZ);
  const int ob = registry.measure(sacrificed_b, gates::Basis::kZ);
  return oa == ob;
}

double bbpssw_output_fidelity(double f) {
  if (f < 0.0 || f > 1.0) {
    throw std::invalid_argument("bbpssw_output_fidelity: f out of [0,1]");
  }
  const double g = (1.0 - f) / 3.0;
  const double num = f * f + g * g;
  const double den = f * f + 2.0 * f * g + 5.0 * g * g;
  return num / den;
}

double bbpssw_success_probability(double f) {
  if (f < 0.0 || f > 1.0) {
    throw std::invalid_argument("bbpssw_success_probability: f out of [0,1]");
  }
  const double g = (1.0 - f) / 3.0;
  return f * f + 2.0 * f * g + 5.0 * g * g;
}

}  // namespace qlink::quantum::protocols
