#include "quantum/registry.hpp"

#include "qstate/backend_registry.hpp"

namespace qlink::quantum {

QuantumRegistry::QuantumRegistry(sim::Random& random)
    : QuantumRegistry(random, qstate::BackendKind::kDense) {}

QuantumRegistry::QuantumRegistry(sim::Random& random,
                                 qstate::BackendKind kind)
    : random_(random), backend_(qstate::make_backend(kind, random)) {}

QuantumRegistry::QuantumRegistry(
    sim::Random& random, std::unique_ptr<qstate::StateBackend> backend)
    : random_(random), backend_(std::move(backend)) {}

QuantumRegistry::~QuantumRegistry() = default;

double QuantumRegistry::fidelity(std::span<const QubitId> qubits,
                                 std::span<const Complex> psi) const {
  return peek(qubits).fidelity(psi);
}

}  // namespace qlink::quantum
