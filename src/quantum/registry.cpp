#include "quantum/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace qlink::quantum {

QubitId QuantumRegistry::create() {
  const QubitId id = next_id_++;
  auto group = std::make_shared<Group>();
  group->dm = DensityMatrix(1);
  group->members = {id};
  lookup_[id] = Slot{std::move(group), 0};
  return id;
}

const QuantumRegistry::Slot& QuantumRegistry::slot(QubitId q) const {
  auto it = lookup_.find(q);
  if (it == lookup_.end()) {
    throw std::invalid_argument("QuantumRegistry: unknown qubit");
  }
  return it->second;
}

QuantumRegistry::Slot& QuantumRegistry::slot(QubitId q) {
  auto it = lookup_.find(q);
  if (it == lookup_.end()) {
    throw std::invalid_argument("QuantumRegistry: unknown qubit");
  }
  return it->second;
}

std::size_t QuantumRegistry::group_size(QubitId q) const {
  return slot(q).group->members.size();
}

void QuantumRegistry::extract(QubitId q) {
  Slot& s = slot(q);
  GroupPtr group = s.group;
  if (group->members.size() == 1) return;

  const int idx = s.index;
  const int remove[] = {idx};
  group->dm = group->dm.partial_trace(remove);
  group->members.erase(group->members.begin() + idx);
  for (std::size_t i = 0; i < group->members.size(); ++i) {
    lookup_[group->members[i]].index = static_cast<int>(i);
  }

  auto fresh = std::make_shared<Group>();
  fresh->dm = DensityMatrix(1);
  fresh->members = {q};
  s.group = std::move(fresh);
  s.index = 0;
}

void QuantumRegistry::discard(QubitId q) {
  extract(q);
  lookup_.erase(q);
}

QuantumRegistry::GroupPtr QuantumRegistry::merge(
    std::span<const QubitId> qubits, std::vector<int>& indices) {
  if (qubits.empty()) throw std::invalid_argument("merge: no qubits");
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    for (std::size_t j = i + 1; j < qubits.size(); ++j) {
      if (qubits[i] == qubits[j]) {
        throw std::invalid_argument("merge: duplicate qubit");
      }
    }
  }

  // Collect the distinct groups in first-seen order.
  std::vector<GroupPtr> groups;
  for (QubitId q : qubits) {
    GroupPtr g = slot(q).group;
    if (std::find(groups.begin(), groups.end(), g) == groups.end()) {
      groups.push_back(g);
    }
  }

  GroupPtr target = groups.front();
  for (std::size_t gi = 1; gi < groups.size(); ++gi) {
    GroupPtr g = groups[gi];
    const int offset = static_cast<int>(target->members.size());
    target->dm = target->dm.tensor(g->dm);
    for (std::size_t i = 0; i < g->members.size(); ++i) {
      target->members.push_back(g->members[i]);
      Slot& s2 = lookup_[g->members[i]];
      s2.group = target;
      s2.index = offset + static_cast<int>(i);
    }
  }

  indices.clear();
  for (QubitId q : qubits) indices.push_back(slot(q).index);
  return target;
}

void QuantumRegistry::apply_unitary(const Matrix& u,
                                    std::span<const QubitId> qubits) {
  std::vector<int> idx;
  GroupPtr g = merge(qubits, idx);
  g->dm.apply_unitary(u, idx);
}

void QuantumRegistry::apply_kraus(std::span<const Matrix> kraus,
                                  std::span<const QubitId> qubits) {
  std::vector<int> idx;
  GroupPtr g = merge(qubits, idx);
  g->dm.apply_kraus(kraus, idx);
}

int QuantumRegistry::measure(QubitId q, gates::Basis basis) {
  Slot& s = slot(q);
  GroupPtr g = s.group;
  const int idx[] = {s.index};

  const Matrix& u = gates::basis_change(basis);
  g->dm.apply_unitary(u, idx);

  // Projector onto |0> / |1> of the measured qubit.
  static const Matrix p0{{1, 0}, {0, 0}};
  static const Matrix p1{{0, 0}, {0, 1}};
  const double prob0 = g->dm.povm_probability(p0, idx);
  const int outcome = random_.bernoulli(1.0 - prob0) ? 1 : 0;
  g->dm.apply_and_renormalize(outcome == 0 ? p0 : p1, idx);

  // The qubit is now in a product state with the rest; pull it out so the
  // group shrinks (keeps later operations cheap).
  extract(q);
  // Record the classical outcome in the fresh single-qubit state.
  if (outcome == 1) {
    Slot& s2 = slot(q);
    const int i0[] = {0};
    s2.group->dm.apply_unitary(gates::x(), i0);
  }
  return outcome;
}

void QuantumRegistry::set_state(std::span<const QubitId> qubits,
                                const DensityMatrix& dm) {
  if (static_cast<int>(qubits.size()) != dm.num_qubits()) {
    throw std::invalid_argument("set_state: qubit/state size mismatch");
  }
  for (QubitId q : qubits) {
    if (group_size(q) != 1) {
      // Physically the old correlations are destroyed; drop them.
      extract(q);
    }
  }
  auto group = std::make_shared<Group>();
  group->dm = dm;
  group->dm.renormalize();
  group->members.assign(qubits.begin(), qubits.end());
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    Slot& s = slot(qubits[i]);
    s.group = group;
    s.index = static_cast<int>(i);
  }
}

void QuantumRegistry::reset(QubitId q) {
  extract(q);
  Slot& s = slot(q);
  s.group->dm = DensityMatrix(1);
}

DensityMatrix QuantumRegistry::peek(std::span<const QubitId> qubits) const {
  if (qubits.empty()) throw std::invalid_argument("peek: no qubits");
  // All listed qubits must be resolvable; qubits in different groups are
  // uncorrelated, so the reduced state is the tensor of reduced states.
  // Build per-group reductions first.
  DensityMatrix out(0);
  bool first = true;
  std::vector<QubitId> pending(qubits.begin(), qubits.end());
  std::vector<QubitId> produced_order;

  while (!pending.empty()) {
    GroupPtr g = slot(pending.front()).group;
    // Which of the requested qubits live in this group, in request order.
    std::vector<QubitId> here;
    for (QubitId q : pending) {
      if (slot(q).group == g) here.push_back(q);
    }
    std::vector<QubitId> rest;
    for (QubitId q : pending) {
      if (slot(q).group != g) rest.push_back(q);
    }
    pending = std::move(rest);

    // Trace out group members not requested.
    std::vector<int> remove;
    for (std::size_t i = 0; i < g->members.size(); ++i) {
      if (std::find(here.begin(), here.end(), g->members[i]) == here.end()) {
        remove.push_back(static_cast<int>(i));
      }
    }
    DensityMatrix reduced =
        remove.empty() ? g->dm : g->dm.partial_trace(remove);

    // Kept qubits are currently ordered by their in-group index; permute
    // to the request order.
    std::vector<QubitId> kept_order;
    for (QubitId m : g->members) {
      if (std::find(here.begin(), here.end(), m) != here.end()) {
        kept_order.push_back(m);
      }
    }
    std::vector<int> perm;
    for (QubitId q : here) {
      const auto it = std::find(kept_order.begin(), kept_order.end(), q);
      perm.push_back(static_cast<int>(it - kept_order.begin()));
    }
    reduced = reduced.permuted(perm);

    out = first ? reduced : out.tensor(reduced);
    first = false;
    produced_order.insert(produced_order.end(), here.begin(), here.end());
  }

  // `out` currently orders qubits group-by-group; restore request order.
  std::vector<int> final_perm;
  for (QubitId q : qubits) {
    const auto it =
        std::find(produced_order.begin(), produced_order.end(), q);
    final_perm.push_back(static_cast<int>(it - produced_order.begin()));
  }
  return out.permuted(final_perm);
}

double QuantumRegistry::fidelity(std::span<const QubitId> qubits,
                                 std::span<const Complex> psi) const {
  return peek(qubits).fidelity(psi);
}

}  // namespace qlink::quantum
