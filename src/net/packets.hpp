#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/wire.hpp"

/// \file packets.hpp
/// Classical control-plane packets of Appendix E (Figs. 24, 27, 28, 32,
/// 33, 34), byte-aligned rather than bit-packed but carrying the same
/// fields. Every frame is sealed as [type][payload][CRC32]; a frame whose
/// CRC fails to verify is treated as lost, matching the Ethernet model of
/// Appendix D.6.

namespace qlink::net {

enum class PacketType : std::uint8_t {
  kMhpGen = 1,
  kMhpReply = 2,
  kDqpFrame = 3,   // ADD / ACK / REJ share one format (Fig. 24)
  kExpire = 4,     // Fig. 32
  kExpireAck = 5,  // Fig. 33
  kMemAdvert = 6,  // REQ(E)/ACK(E), Fig. 34
};

/// Absolute queue id (j, i_j) of Section E.1.1.
struct AbsoluteQueueId {
  std::uint8_t qid = 0;    // which priority queue j
  std::uint32_t qseq = 0;  // unique id i_j within the queue

  friend bool operator==(const AbsoluteQueueId&,
                         const AbsoluteQueueId&) = default;
  friend auto operator<=>(const AbsoluteQueueId&,
                          const AbsoluteQueueId&) = default;
};

/// Midpoint-reported error codes (Protocol 1).
enum class MhpError : std::uint8_t {
  kNone = 0,
  kQueueMismatch = 1,
  kTimeMismatch = 2,
  kNoMessageOther = 4,
  kGeneralFail = 7,  // local-only; never transmitted by the midpoint
};

/// GEN frame, node -> heralding station (Fig. 27). `alpha` rides along
/// because in this reproduction the station samples the physical model;
/// on hardware it is implicit in the photon.
struct GenPacket {
  std::uint32_t node_id = 0;
  std::uint64_t cycle = 0;  // timestamp: MHP cycle of the attempt
  AbsoluteQueueId aid;
  std::uint16_t pair_index = 0;  // pairs already produced for the request
  std::uint8_t request_type = 0;  // 0 = K (store), 1 = M (measure)
  std::uint8_t m_basis = 0;       // measurement basis for M attempts
  double alpha = 0.0;

  std::vector<std::uint8_t> encode() const;
  static GenPacket decode(std::span<const std::uint8_t> payload);
};

/// REPLY / ERR frame, station -> node (Fig. 28).
///
/// For measure-directly (M) attempts the frame also carries the
/// measurement outcomes. Physically each outcome is produced locally at
/// its node before the REPLY arrives; the simulator samples the joint
/// distribution at the station where both halves of the state meet, and
/// ships the bits back (a pure simulation artefact, see DESIGN.md).
struct ReplyPacket {
  std::uint8_t outcome = 0;  // 0 fail, 1 = |Psi+>, 2 = |Psi->
  MhpError error = MhpError::kNone;
  std::uint32_t seq_mhp = 0;
  AbsoluteQueueId aid_receiver;
  AbsoluteQueueId aid_peer;
  std::uint16_t pair_index = 0;       // receiver's attempt pair index
  std::uint16_t pair_index_peer = 0;  // the peer's; lets nodes resync
  std::uint64_t cycle = 0;
  std::uint8_t m_basis = 0;          // gates::Basis as int (M only)
  std::uint8_t m_outcome = 0xFF;     // this node's outcome; 0xFF = none
  std::uint8_t m_outcome_peer = 0xFF;

  std::vector<std::uint8_t> encode() const;
  static ReplyPacket decode(std::span<const std::uint8_t> payload);
};

/// DQP frame type (Fig. 24 FT field).
enum class DqpFrameType : std::uint8_t { kAdd = 0, kAck = 1, kRej = 2 };

/// DQP rejection reasons.
enum class DqpRejectReason : std::uint8_t {
  kNone = 0,
  kQueueFull = 1,
  kPolicy = 2,  // purpose-id rules at the remote node (DENIED)
};

/// ADD/ACK/REJ frame of the distributed queue (Fig. 24) carrying the
/// CREATE request payload.
struct DqpPacket {
  DqpFrameType frame_type = DqpFrameType::kAdd;
  std::uint32_t comm_seq = 0;  // CSEQ
  AbsoluteQueueId aid;         // QID + QSEQ (assigned by the master)
  std::uint64_t schedule_cycle = 0;  // min_time, in MHP cycles
  std::uint64_t timeout_cycle = 0;   // 0 = no timeout
  double min_fidelity = 0.0;
  std::uint16_t purpose_id = 0;
  std::uint32_t create_id = 0;
  std::uint16_t num_pairs = 1;
  std::uint8_t priority = 0;
  bool store = true;            // STR flag (K type)
  bool atomic = false;          // ATM flag
  bool measure_directly = false;  // MD flag
  bool master_request = false;  // MR flag: request originated at master
  bool consecutive = false;     // OK per pair vs per request
  double init_virtual_finish = 0.0;  // WFQ bookkeeping
  std::uint32_t est_cycles_per_pair = 0;
  std::uint32_t origin_node = 0;
  std::int64_t create_time_ns = 0;
  std::int64_t max_time_ns = 0;  // tmax; 0 = unbounded
  DqpRejectReason reject_reason = DqpRejectReason::kNone;

  std::vector<std::uint8_t> encode() const;
  static DqpPacket decode(std::span<const std::uint8_t> payload);
};

/// EXPIRE frame (Fig. 32): revoke OKs the peer may hold.
struct ExpirePacket {
  AbsoluteQueueId aid;
  std::uint32_t origin_id = 0;
  std::uint32_t create_id = 0;
  std::uint32_t seq_low = 0;   // first expired midpoint sequence number
  std::uint32_t seq_high = 0;  // one-past-last
  std::uint32_t new_expected_seq = 0;

  std::vector<std::uint8_t> encode() const;
  static ExpirePacket decode(std::span<const std::uint8_t> payload);
};

/// ACK of an EXPIRE (Fig. 33).
struct ExpireAckPacket {
  AbsoluteQueueId aid;
  std::uint32_t expected_seq = 0;

  std::vector<std::uint8_t> encode() const;
  static ExpireAckPacket decode(std::span<const std::uint8_t> payload);
};

/// Memory advertisement REQ(E)/ACK(E) (Fig. 34): flow control.
struct MemAdvertPacket {
  bool is_ack = false;
  std::uint16_t comm_free = 0;
  std::uint16_t storage_free = 0;

  std::vector<std::uint8_t> encode() const;
  static MemAdvertPacket decode(std::span<const std::uint8_t> payload);
};

/// Seal a payload into a frame: [type][payload][crc32].
std::vector<std::uint8_t> seal(PacketType type,
                               std::span<const std::uint8_t> payload);

/// Parsed frame view.
struct Frame {
  PacketType type;
  std::vector<std::uint8_t> payload;
};

/// Verify CRC and split; nullopt if the frame is corrupt/truncated.
std::optional<Frame> unseal(std::span<const std::uint8_t> bytes);

}  // namespace qlink::net
