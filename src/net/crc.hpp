#pragma once

#include <cstdint>
#include <span>

/// \file crc.hpp
/// CRC-32 (IEEE 802.3 polynomial), used by the MHP/EGP packet codecs.
/// The paper's classical control runs over Ethernet-class links whose
/// frames carry this CRC; we expose it so tests can exercise corruption
/// detection (Appendix D.6.2).

namespace qlink::net {

std::uint32_t crc32(std::span<const std::uint8_t> data);

}  // namespace qlink::net
