#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/entity.hpp"
#include "sim/random.hpp"
#include "sim/sharded_engine.hpp"

/// \file channel.hpp
/// Point-to-point classical channel with fixed propagation delay and
/// Bernoulli frame loss (the 1000BASE-ZX model of Appendix D.6.1: frame
/// errors are modelled at frame granularity, not bit granularity).
///
/// A channel's two endpoints may live on different shards of a
/// sim::ShardedEngine: construct with one EngineRef + Random per end and
/// the channel becomes the explicit shard-crossing seam — a send whose
/// endpoints are on different shards goes through ShardedEngine::post
/// (the propagation delay doubles as the conservative lookahead, and the
/// constructor registers the coupling), while same-shard sends schedule
/// directly, exactly as the single-simulator constructor always has.

namespace qlink::net {

class ClassicalChannel : public sim::Entity {
 public:
  using Handler = std::function<void(std::vector<std::uint8_t>)>;

  ClassicalChannel(sim::Simulator& simulator, std::string name,
                   sim::SimTime delay, sim::Random& random,
                   double loss_probability = 0.0)
      : Entity(simulator, std::move(name)),
        delay_(delay),
        sims_{&simulator, &simulator},
        randoms_{&random, &random},
        loss_probability_(loss_probability) {}

  /// Cross-shard channel: each endpoint is bound to one shard of the
  /// same engine and samples loss from its own end's Random (so an
  /// island's random stream never depends on its peer). When the shards
  /// differ this registers the coupling both ways — the delay must meet
  /// ShardedEngine::kMinLookahead or the engine throws.
  ClassicalChannel(sim::EngineRef end0, sim::Random& random0,
                   sim::EngineRef end1, sim::Random& random1,
                   std::string name, sim::SimTime delay,
                   double loss_probability = 0.0)
      : Entity(end0.sim(), std::move(name)),
        delay_(delay),
        engine_(end0.engine),
        shards_{end0.shard, end1.shard},
        sims_{&end0.sim(), &end1.sim()},
        randoms_{&random0, &random1},
        loss_probability_(loss_probability) {
    if (end1.engine != engine_) {
      throw std::invalid_argument(
          "ClassicalChannel: endpoints bound to different engines");
    }
    if (shards_[0] != shards_[1]) {
      engine_->connect(shards_[0], shards_[1], delay_);
      engine_->connect(shards_[1], shards_[0], delay_);
    }
  }

  /// Register the receiver at endpoint `end` (0 or 1).
  void set_receiver(int end, Handler handler) {
    receivers_.at(static_cast<std::size_t>(end)) = std::move(handler);
  }

  /// Transmit a frame from endpoint `end` to the opposite endpoint.
  void send_from(int end, std::vector<std::uint8_t> frame);

  sim::SimTime delay() const noexcept { return delay_; }
  double loss_probability() const noexcept { return loss_probability_; }
  void set_loss_probability(double p) noexcept { loss_probability_ = p; }

  /// True when the two endpoints live on different shards.
  bool cross_shard() const noexcept {
    return engine_ != nullptr && shards_[0] != shards_[1];
  }

  std::uint64_t frames_sent() const noexcept {
    return sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t frames_delivered() const noexcept {
    return delivered_.load(std::memory_order_relaxed);
  }
  std::uint64_t frames_dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  sim::SimTime delay_;
  sim::ShardedEngine* engine_ = nullptr;
  std::array<std::size_t, 2> shards_{0, 0};
  std::array<sim::Simulator*, 2> sims_;
  std::array<sim::Random*, 2> randoms_;
  double loss_probability_;
  std::array<Handler, 2> receivers_{};
  // Both endpoints may send concurrently from their shard threads, so
  // the counters are relaxed atomics.
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace qlink::net
