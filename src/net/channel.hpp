#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/entity.hpp"
#include "sim/random.hpp"

/// \file channel.hpp
/// Point-to-point classical channel with fixed propagation delay and
/// Bernoulli frame loss (the 1000BASE-ZX model of Appendix D.6.1: frame
/// errors are modelled at frame granularity, not bit granularity).

namespace qlink::net {

class ClassicalChannel : public sim::Entity {
 public:
  using Handler = std::function<void(std::vector<std::uint8_t>)>;

  ClassicalChannel(sim::Simulator& simulator, std::string name,
                   sim::SimTime delay, sim::Random& random,
                   double loss_probability = 0.0)
      : Entity(simulator, std::move(name)),
        delay_(delay),
        random_(random),
        loss_probability_(loss_probability) {}

  /// Register the receiver at endpoint `end` (0 or 1).
  void set_receiver(int end, Handler handler) {
    receivers_.at(static_cast<std::size_t>(end)) = std::move(handler);
  }

  /// Transmit a frame from endpoint `end` to the opposite endpoint.
  void send_from(int end, std::vector<std::uint8_t> frame);

  sim::SimTime delay() const noexcept { return delay_; }
  double loss_probability() const noexcept { return loss_probability_; }
  void set_loss_probability(double p) noexcept { loss_probability_ = p; }

  std::uint64_t frames_sent() const noexcept { return sent_; }
  std::uint64_t frames_delivered() const noexcept { return delivered_; }
  std::uint64_t frames_dropped() const noexcept { return dropped_; }

 private:
  sim::SimTime delay_;
  sim::Random& random_;
  double loss_probability_;
  std::array<Handler, 2> receivers_{};
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace qlink::net
