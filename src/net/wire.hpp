#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

/// \file wire.hpp
/// Little-endian byte serialisation for the classical control packets of
/// Appendix E. A codec error throws WireError; protocol code treats a
/// failed parse like a lost frame (the CRC would have rejected it).

namespace qlink::net {

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::span<const std::uint8_t> view() const { return buf_; }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    const std::uint32_t hi = u16();
    return lo | (hi << 16);
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool boolean() { return u8() != 0; }

  std::size_t remaining() const { return data_.size() - pos_; }
  void expect_end() const {
    if (pos_ != data_.size()) throw WireError("trailing bytes in packet");
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) throw WireError("packet truncated");
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace qlink::net
