#include "net/crc.hpp"

#include <array>

namespace qlink::net {

namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const auto table = make_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace qlink::net
