#include "net/packets.hpp"

#include "net/crc.hpp"

namespace qlink::net {

namespace {

void put_aid(ByteWriter& w, const AbsoluteQueueId& aid) {
  w.u8(aid.qid);
  w.u32(aid.qseq);
}

AbsoluteQueueId get_aid(ByteReader& r) {
  AbsoluteQueueId aid;
  aid.qid = r.u8();
  aid.qseq = r.u32();
  return aid;
}

}  // namespace

std::vector<std::uint8_t> GenPacket::encode() const {
  ByteWriter w;
  w.u32(node_id);
  w.u64(cycle);
  put_aid(w, aid);
  w.u16(pair_index);
  w.u8(request_type);
  w.u8(m_basis);
  w.f64(alpha);
  return w.take();
}

GenPacket GenPacket::decode(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  GenPacket p;
  p.node_id = r.u32();
  p.cycle = r.u64();
  p.aid = get_aid(r);
  p.pair_index = r.u16();
  p.request_type = r.u8();
  p.m_basis = r.u8();
  p.alpha = r.f64();
  r.expect_end();
  return p;
}

std::vector<std::uint8_t> ReplyPacket::encode() const {
  ByteWriter w;
  w.u8(outcome);
  w.u8(static_cast<std::uint8_t>(error));
  w.u32(seq_mhp);
  put_aid(w, aid_receiver);
  put_aid(w, aid_peer);
  w.u16(pair_index);
  w.u16(pair_index_peer);
  w.u64(cycle);
  w.u8(m_basis);
  w.u8(m_outcome);
  w.u8(m_outcome_peer);
  return w.take();
}

ReplyPacket ReplyPacket::decode(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  ReplyPacket p;
  p.outcome = r.u8();
  p.error = static_cast<MhpError>(r.u8());
  p.seq_mhp = r.u32();
  p.aid_receiver = get_aid(r);
  p.aid_peer = get_aid(r);
  p.pair_index = r.u16();
  p.pair_index_peer = r.u16();
  p.cycle = r.u64();
  p.m_basis = r.u8();
  p.m_outcome = r.u8();
  p.m_outcome_peer = r.u8();
  r.expect_end();
  return p;
}

std::vector<std::uint8_t> DqpPacket::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(frame_type));
  w.u32(comm_seq);
  put_aid(w, aid);
  w.u64(schedule_cycle);
  w.u64(timeout_cycle);
  w.f64(min_fidelity);
  w.u16(purpose_id);
  w.u32(create_id);
  w.u16(num_pairs);
  w.u8(priority);
  std::uint8_t flags = 0;
  if (store) flags |= 1u;
  if (atomic) flags |= 2u;
  if (measure_directly) flags |= 4u;
  if (master_request) flags |= 8u;
  if (consecutive) flags |= 16u;
  w.u8(flags);
  w.f64(init_virtual_finish);
  w.u32(est_cycles_per_pair);
  w.u32(origin_node);
  w.i64(create_time_ns);
  w.i64(max_time_ns);
  w.u8(static_cast<std::uint8_t>(reject_reason));
  return w.take();
}

DqpPacket DqpPacket::decode(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  DqpPacket p;
  p.frame_type = static_cast<DqpFrameType>(r.u8());
  p.comm_seq = r.u32();
  p.aid = get_aid(r);
  p.schedule_cycle = r.u64();
  p.timeout_cycle = r.u64();
  p.min_fidelity = r.f64();
  p.purpose_id = r.u16();
  p.create_id = r.u32();
  p.num_pairs = r.u16();
  p.priority = r.u8();
  const std::uint8_t flags = r.u8();
  p.store = flags & 1u;
  p.atomic = flags & 2u;
  p.measure_directly = flags & 4u;
  p.master_request = flags & 8u;
  p.consecutive = flags & 16u;
  p.init_virtual_finish = r.f64();
  p.est_cycles_per_pair = r.u32();
  p.origin_node = r.u32();
  p.create_time_ns = r.i64();
  p.max_time_ns = r.i64();
  p.reject_reason = static_cast<DqpRejectReason>(r.u8());
  r.expect_end();
  return p;
}

std::vector<std::uint8_t> ExpirePacket::encode() const {
  ByteWriter w;
  put_aid(w, aid);
  w.u32(origin_id);
  w.u32(create_id);
  w.u32(seq_low);
  w.u32(seq_high);
  w.u32(new_expected_seq);
  return w.take();
}

ExpirePacket ExpirePacket::decode(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  ExpirePacket p;
  p.aid = get_aid(r);
  p.origin_id = r.u32();
  p.create_id = r.u32();
  p.seq_low = r.u32();
  p.seq_high = r.u32();
  p.new_expected_seq = r.u32();
  r.expect_end();
  return p;
}

std::vector<std::uint8_t> ExpireAckPacket::encode() const {
  ByteWriter w;
  put_aid(w, aid);
  w.u32(expected_seq);
  return w.take();
}

ExpireAckPacket ExpireAckPacket::decode(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  ExpireAckPacket p;
  p.aid = get_aid(r);
  p.expected_seq = r.u32();
  r.expect_end();
  return p;
}

std::vector<std::uint8_t> MemAdvertPacket::encode() const {
  ByteWriter w;
  w.boolean(is_ack);
  w.u16(comm_free);
  w.u16(storage_free);
  return w.take();
}

MemAdvertPacket MemAdvertPacket::decode(
    std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  MemAdvertPacket p;
  p.is_ack = r.boolean();
  p.comm_free = r.u16();
  p.storage_free = r.u16();
  r.expect_end();
  return p;
}

std::vector<std::uint8_t> seal(PacketType type,
                               std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + 5);
  out.push_back(static_cast<std::uint8_t>(type));
  out.insert(out.end(), payload.begin(), payload.end());
  const std::uint32_t crc = crc32(out);
  out.push_back(static_cast<std::uint8_t>(crc));
  out.push_back(static_cast<std::uint8_t>(crc >> 8));
  out.push_back(static_cast<std::uint8_t>(crc >> 16));
  out.push_back(static_cast<std::uint8_t>(crc >> 24));
  return out;
}

std::optional<Frame> unseal(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 5) return std::nullopt;
  const std::size_t body = bytes.size() - 4;
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) {
    crc |= static_cast<std::uint32_t>(bytes[body + i]) << (8 * i);
  }
  if (crc32(bytes.subspan(0, body)) != crc) return std::nullopt;
  Frame f{static_cast<PacketType>(bytes[0]),
          std::vector<std::uint8_t>(bytes.begin() + 1,
                                    bytes.begin() + static_cast<long>(body))};
  return f;
}

}  // namespace qlink::net
