#include "net/channel.hpp"

#include <array>
#include <stdexcept>
#include <utility>

namespace qlink::net {

void ClassicalChannel::send_from(int end, std::vector<std::uint8_t> frame) {
  if (end != 0 && end != 1) {
    throw std::invalid_argument("ClassicalChannel: endpoint must be 0 or 1");
  }
  ++sent_;
  if (random_.bernoulli(loss_probability_)) {
    ++dropped_;
    return;
  }
  const int dest = 1 - end;
  schedule_in(delay_, [this, dest, data = std::move(frame)]() mutable {
    Handler& h = receivers_[static_cast<std::size_t>(dest)];
    if (!h) return;  // unconnected endpoint: frame silently discarded
    ++delivered_;
    h(std::move(data));
  }, "net.channel");
}

}  // namespace qlink::net
