#include "net/channel.hpp"

#include <array>
#include <stdexcept>
#include <utility>

namespace qlink::net {

void ClassicalChannel::send_from(int end, std::vector<std::uint8_t> frame) {
  if (end != 0 && end != 1) {
    throw std::invalid_argument("ClassicalChannel: endpoint must be 0 or 1");
  }
  const auto src = static_cast<std::size_t>(end);
  const auto dest = static_cast<std::size_t>(1 - end);
  sent_.fetch_add(1, std::memory_order_relaxed);
  if (randoms_[src]->bernoulli(loss_probability_)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const sim::SimTime at = sims_[src]->now() + delay_;
  auto deliver = [this, dest, data = std::move(frame)]() mutable {
    Handler& h = receivers_[dest];
    if (!h) return;  // unconnected endpoint: frame silently discarded
    delivered_.fetch_add(1, std::memory_order_relaxed);
    h(std::move(data));
  };
  if (engine_ != nullptr && shards_[src] != shards_[dest]) {
    engine_->post(shards_[src], shards_[dest], at, std::move(deliver),
                  "net.channel");
  } else {
    sims_[dest]->schedule_at(at, std::move(deliver), "net.channel");
  }
}

}  // namespace qlink::net
