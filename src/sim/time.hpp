#pragma once

#include <cstdint>

/// \file time.hpp
/// Simulation time base for the qlink discrete-event engine.
///
/// All simulation timestamps are integral nanoseconds. An integral base
/// keeps event ordering exact (no floating-point ties) and covers
/// +/- 292 years of simulated time in an int64_t, far beyond the hours of
/// simulated time the paper's longest runs reach.

namespace qlink::sim {

/// Absolute simulation time or a duration, in nanoseconds.
using SimTime = std::int64_t;

namespace duration {

inline constexpr SimTime nanoseconds(std::int64_t n) { return n; }
inline constexpr SimTime microseconds(double us) {
  return static_cast<SimTime>(us * 1e3);
}
inline constexpr SimTime milliseconds(double ms) {
  return static_cast<SimTime>(ms * 1e6);
}
inline constexpr SimTime seconds(double s) {
  return static_cast<SimTime>(s * 1e9);
}

}  // namespace duration

/// Convert a simulation time to floating-point seconds (for reporting).
inline constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) * 1e-9;
}

/// Convert a simulation time to floating-point microseconds.
inline constexpr double to_microseconds(SimTime t) {
  return static_cast<double>(t) * 1e-3;
}

}  // namespace qlink::sim
