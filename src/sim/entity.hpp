#pragma once

#include <functional>
#include <string>
#include <utility>

#include "sim/simulator.hpp"

/// \file entity.hpp
/// Base class for simulated components (nodes, channels, stations).
///
/// An entity owns a name for diagnostics and a reference to the engine.
/// It deliberately has no virtual "handle event" interface: closures
/// capture exactly the state an event needs, which keeps protocol code
/// close to the paper's message-sequence diagrams.

namespace qlink::sim {

class Entity {
 public:
  Entity(Simulator& simulator, std::string name)
      : simulator_(simulator), name_(std::move(name)) {}

  virtual ~Entity() = default;

  Entity(const Entity&) = delete;
  Entity& operator=(const Entity&) = delete;

  const std::string& name() const noexcept { return name_; }
  Simulator& simulator() noexcept { return simulator_; }
  SimTime now() const noexcept { return simulator_.now(); }

 protected:
  EventId schedule_in(SimTime delay, std::function<void()> fn,
                      const char* label = nullptr) {
    return simulator_.schedule_in(delay, std::move(fn), label);
  }
  EventId schedule_at(SimTime at, std::function<void()> fn,
                      const char* label = nullptr) {
    return simulator_.schedule_at(at, std::move(fn), label);
  }

 private:
  Simulator& simulator_;
  std::string name_;
};

/// Fires a callback every `period` ns until stopped. Used for the MHP
/// cycle clock and for periodic maintenance (carbon re-initialisation,
/// memory advertisements).
class PeriodicTimer {
 public:
  /// \p label (a string literal, or nullptr) tags every tick for the
  /// simulator's per-label telemetry.
  PeriodicTimer(Simulator& simulator, SimTime period,
                std::function<void()> fn, const char* label = nullptr)
      : simulator_(simulator), period_(period), fn_(std::move(fn)),
        label_(label) {}

  ~PeriodicTimer() { stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Start firing; the first tick happens `offset` from now.
  void start(SimTime offset = 0) {
    if (running_) return;
    running_ = true;
    arm(offset);
  }

  void stop() {
    if (!running_) return;
    running_ = false;
    simulator_.cancel(pending_);
  }

  bool running() const noexcept { return running_; }
  SimTime period() const noexcept { return period_; }

 private:
  void arm(SimTime delay) {
    pending_ = simulator_.schedule_in(
        delay,
        [this] {
          if (!running_) return;
          // Re-arm before invoking so the callback may stop() the timer.
          arm(period_);
          fn_();
        },
        label_);
  }

  Simulator& simulator_;
  SimTime period_;
  std::function<void()> fn_;
  const char* label_ = nullptr;
  bool running_ = false;
  EventId pending_ = 0;
};

}  // namespace qlink::sim
