#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <thread>

namespace qlink::sim {

// -- ShardAssignment -------------------------------------------------------

ShardAssignment ShardAssignment::single(std::size_t num_nodes) {
  ShardAssignment a;
  a.num_shards = 1;
  a.shard_of.assign(num_nodes, 0);
  return a;
}

ShardAssignment ShardAssignment::blocks(std::size_t num_nodes,
                                        std::size_t num_shards) {
  if (num_shards == 0) {
    throw std::invalid_argument("ShardAssignment::blocks: num_shards == 0");
  }
  if (num_shards > num_nodes) {
    throw std::invalid_argument(
        "ShardAssignment::blocks: more shards than nodes");
  }
  ShardAssignment a;
  a.num_shards = num_shards;
  a.shard_of.resize(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) {
    a.shard_of[n] = static_cast<std::uint32_t>(n * num_shards / num_nodes);
  }
  return a;
}

void ShardAssignment::validate_intra_shard(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges) const {
  for (const auto& [a, b] : edges) {
    if (shard(a) != shard(b)) {
      throw std::invalid_argument(
          "ShardAssignment: quantum edge (" + std::to_string(a) + ", " +
          std::to_string(b) +
          ") crosses shards; quantum links must be intra-shard");
    }
  }
}

// -- ShardedEngine ---------------------------------------------------------

ShardedEngine::ShardedEngine(Config config) : config_(config) {
  if (config_.num_shards == 0) {
    throw std::invalid_argument("ShardedEngine: num_shards == 0");
  }
  sims_.reserve(config_.num_shards);
  for (std::size_t i = 0; i < config_.num_shards; ++i) {
    sims_.push_back(std::make_unique<Simulator>());
  }
  couplings_.resize(config_.num_shards * config_.num_shards);
  switch (config_.parallel) {
    case Parallel::kOn:
      threads_ = config_.num_shards > 1;
      break;
    case Parallel::kOff:
      threads_ = false;
      break;
    case Parallel::kAuto:
      threads_ =
          config_.num_shards > 1 && std::thread::hardware_concurrency() > 1;
      break;
  }
}

void ShardedEngine::connect(std::size_t from, std::size_t to,
                            SimTime min_delay) {
  if (from >= sims_.size() || to >= sims_.size()) {
    throw std::out_of_range("ShardedEngine::connect: shard out of range");
  }
  if (from == to) {
    throw std::invalid_argument(
        "ShardedEngine::connect: intra-shard coupling is meaningless; "
        "schedule on the shard's own simulator");
  }
  if (min_delay < kMinLookahead) {
    throw std::invalid_argument(
        "ShardedEngine::connect: min_delay below kMinLookahead (" +
        std::to_string(min_delay) + " < " + std::to_string(kMinLookahead) +
        " ns); the coupling is too tight for conservative rounds");
  }
  auto& slot = couplings_[from * sims_.size() + to];
  if (!slot) slot = std::make_unique<Coupling>(config_.ring_capacity);
  if (slot->min_delay == 0 || min_delay < slot->min_delay) {
    slot->min_delay = min_delay;
  }
}

SimTime ShardedEngine::lookahead(std::size_t from, std::size_t to) const {
  if (from >= sims_.size() || to >= sims_.size() || from == to) return 0;
  const Coupling* c = coupling(from, to);
  return c == nullptr ? 0 : c->min_delay;
}

void ShardedEngine::post(std::size_t from, std::size_t to, SimTime at,
                         std::function<void()> fn, const char* label) {
  if (from >= sims_.size() || to >= sims_.size()) {
    throw std::out_of_range("ShardedEngine::post: shard out of range");
  }
  if (from == to) {
    throw std::invalid_argument(
        "ShardedEngine::post: same-shard post; use sim(shard).schedule_at");
  }
  if (!fn) throw std::invalid_argument("ShardedEngine::post: empty function");
  Coupling* c = coupling(from, to);
  if (c == nullptr || c->min_delay == 0) {
    throw std::logic_error(
        "ShardedEngine::post: shards not connected; call connect() first");
  }
  // The lookahead contract: `to` may already have run past our clock by
  // up to min_delay - 1, so anything closer could land in its past.
  if (at < sims_[from]->now() + c->min_delay) {
    throw std::invalid_argument(
        "ShardedEngine::post: time under the lookahead floor");
  }
  posted_.fetch_add(1, std::memory_order_relaxed);
  CrossEvent ev{at, label, std::move(fn)};
  if (!c->spilled && c->ring.try_push(std::move(ev))) return;
  ring_overflows_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(c->overflow_mutex);
  c->spilled = true;
  c->overflow.push_back(std::move(ev));
}

void ShardedEngine::drain_all() {
  const std::size_t s = sims_.size();
  for (std::size_t from = 0; from < s; ++from) {
    for (std::size_t to = 0; to < s; ++to) {
      Coupling* c = coupling(from, to);
      if (c == nullptr) continue;
      stats_.ring_high_water = std::max(stats_.ring_high_water, c->ring.size());
      CrossEvent ev;
      while (c->ring.try_pop(ev)) {
        ++stats_.drained;
        sims_[to]->schedule_at(ev.at, std::move(ev.fn), ev.label);
      }
      std::lock_guard<std::mutex> lock(c->overflow_mutex);
      for (CrossEvent& e : c->overflow) {
        ++stats_.drained;
        sims_[to]->schedule_at(e.at, std::move(e.fn), e.label);
      }
      c->overflow.clear();
      c->spilled = false;
    }
  }
}

void ShardedEngine::run_until(SimTime t) {
  const std::size_t s = sims_.size();
  if (s == 1) {
    // Pass-through: byte-identical to the pre-sharding engine.
    sims_[0]->run_until(t);
    return;
  }
  drain_all();  // posts made outside a round (setup code)
  std::vector<SimTime> bound(s);
  std::vector<std::size_t> work;
  work.reserve(s);
  for (;;) {
    bool all_done = true;
    for (std::size_t i = 0; i < s; ++i) {
      if (sims_[i]->now() < t) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;

    // Conservative bound per shard from the pre-round clocks: nothing
    // can arrive from `from` before clock_from + lookahead.
    for (std::size_t to = 0; to < s; ++to) {
      SimTime b = t;
      for (std::size_t from = 0; from < s; ++from) {
        const Coupling* c = from == to ? nullptr : coupling(from, to);
        if (c == nullptr || c->min_delay == 0) continue;
        b = std::min(b, sims_[from]->now() + c->min_delay - 1);
      }
      bound[to] = std::max(b, sims_[to]->now());
    }

    // If no shard can execute anything under its bound, fast-forward to
    // the globally earliest pending event: handlers are the only source
    // of new events, and none can run before that time.
    bool any_event = false;
    for (std::size_t i = 0; i < s; ++i) {
      const SimTime ne = sims_[i]->next_event_time();
      if (ne != Simulator::kNoEventTime && ne <= bound[i]) {
        any_event = true;
        break;
      }
    }
    if (!any_event) {
      SimTime target = t;
      for (std::size_t i = 0; i < s; ++i) {
        const SimTime ne = sims_[i]->next_event_time();
        if (ne != Simulator::kNoEventTime) target = std::min(target, ne);
      }
      ++stats_.idle_jumps;
      for (std::size_t i = 0; i < s; ++i) {
        bound[i] = std::max(sims_[i]->now(), target);
      }
    }

    work.clear();
    for (std::size_t i = 0; i < s; ++i) {
      const SimTime ne = sims_[i]->next_event_time();
      if (ne != Simulator::kNoEventTime && ne <= bound[i]) work.push_back(i);
    }

    // Shards share nothing within a round (cross-shard sends buffer in
    // the rings), so threaded execution matches sequential execution
    // state-for-state.
    if (threads_ && work.size() > 1) {
      ++stats_.parallel_rounds;
      std::vector<std::thread> threads;
      threads.reserve(work.size());
      for (std::size_t i : work) {
        threads.emplace_back(
            [this, i, b = bound[i]] { sims_[i]->run_until(b); });
      }
      for (std::thread& th : threads) th.join();
    } else {
      for (std::size_t i : work) sims_[i]->run_until(bound[i]);
    }
    // Event-free shards just advance their clocks (no user code runs).
    for (std::size_t i = 0; i < s; ++i) {
      if (sims_[i]->now() < bound[i]) sims_[i]->run_until(bound[i]);
    }

    ++stats_.rounds;
    drain_all();
  }
}

SimTime ShardedEngine::now() const {
  SimTime m = sims_[0]->now();
  for (const auto& sim : sims_) m = std::min(m, sim->now());
  return m;
}

ShardedEngine::Stats ShardedEngine::stats() const {
  Stats out = stats_;
  out.posted = posted_.load(std::memory_order_relaxed);
  out.ring_overflows = ring_overflows_.load(std::memory_order_relaxed);
  return out;
}

std::uint64_t ShardedEngine::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& sim : sims_) total += sim->events_processed();
  return total;
}

std::size_t ShardedEngine::heap_high_water() const {
  std::size_t hw = 0;
  for (const auto& sim : sims_) hw = std::max(hw, sim->heap_high_water());
  return hw;
}

void ShardedEngine::set_telemetry(bool on) {
  for (auto& sim : sims_) sim->set_telemetry(on);
}

std::vector<Simulator::LabelStat> ShardedEngine::label_stats() const {
  std::map<std::string, Simulator::LabelStat> merged;
  for (const auto& sim : sims_) {
    for (const Simulator::LabelStat& stat : sim->label_stats()) {
      Simulator::LabelStat& m = merged[stat.label];
      m.label = stat.label;
      m.count += stat.count;
      m.wall_seconds += stat.wall_seconds;
    }
  }
  std::vector<Simulator::LabelStat> out;
  out.reserve(merged.size());
  for (auto& [label, stat] : merged) out.push_back(std::move(stat));
  return out;
}

}  // namespace qlink::sim
