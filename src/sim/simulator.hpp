#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

/// \file simulator.hpp
/// Deterministic discrete-event engine.
///
/// This is the substrate the paper obtains from DynAA/NetSquid: a
/// time-ordered event queue with deterministic tie-breaking (FIFO within
/// one timestamp), an explicit clock, and handles for cancellation.
/// Entities (nodes, channels, the heralding station) schedule closures;
/// the engine never spawns threads, so every run is exactly reproducible.
///
/// Telemetry (ISSUE 6): events may carry a static label
/// (schedule_at(at, fn, "mhp.cycle")). With telemetry enabled the
/// engine counts executed events per label — answering "which event
/// type dominates this run" — and it always tracks the heap-depth
/// high-water mark (one comparison per push). The opt-in *profiler*
/// additionally wall-clocks every handler by label; its output is
/// explicitly non-deterministic (wall time is not simulation state) but
/// turning it on cannot perturb a trajectory: neither telemetry nor the
/// profiler schedules events or consumes randomness.

namespace qlink::sim {

/// Identifies a scheduled event so it can be cancelled.
using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  SimTime now() const noexcept { return now_; }

  /// Schedule \p fn to run at absolute time \p at. \p label, when
  /// given, must outlive the simulator (pass a string literal) —
  /// telemetry aggregates by it.
  ///
  /// \p at must be >= now(): a past time throws std::invalid_argument
  /// rather than silently time-travelling (the event would fire
  /// immediately but stamp the clock backwards-in-order, corrupting
  /// FIFO determinism). Callers computing times from measured or
  /// decayed quantities must clamp, e.g. `std::max(at, sim.now())`.
  EventId schedule_at(SimTime at, std::function<void()> fn,
                      const char* label = nullptr);

  /// Schedule \p fn to run \p delay after the current time.
  EventId schedule_in(SimTime delay, std::function<void()> fn,
                      const char* label = nullptr) {
    return schedule_at(now_ + delay, std::move(fn), label);
  }

  /// Cancel a previously scheduled event. Returns false if the event has
  /// already fired or was cancelled before. O(1).
  bool cancel(EventId id);

  /// Run a single event. Returns false if the queue is empty.
  bool step();

  /// Run events until the queue is empty or the clock would pass \p t.
  /// The clock is left at exactly \p t (events at exactly \p t run).
  void run_until(SimTime t);

  /// Run events until the queue drains completely.
  void run_all();

  /// Number of events executed so far.
  std::uint64_t events_processed() const noexcept { return processed_; }

  /// Number of events still pending. Exact: cancelled events are
  /// excluded even while their queue slots await lazy removal.
  std::size_t pending() const noexcept { return live_.size(); }

  /// next_event_time() when no live event is pending.
  static constexpr SimTime kNoEventTime = std::numeric_limits<SimTime>::max();

  /// Timestamp of the earliest live event, or kNoEventTime when idle.
  /// Non-const: lazily prunes cancelled events off the queue head.
  SimTime next_event_time();

  // -- Telemetry ---------------------------------------------------------

  /// Count executed events per label. Off by default; one branch per
  /// event when off.
  void set_telemetry(bool on) noexcept { telemetry_ = on; }
  bool telemetry() const noexcept { return telemetry_; }

  /// Wall-clock every handler by label (implies per-label counting for
  /// the profiled events). The report is non-deterministic; the
  /// simulation is not affected. Off by default.
  void set_profiler(bool on) noexcept { profiler_ = on; }
  bool profiler() const noexcept { return profiler_; }

  /// Deepest the event heap has ever been (always tracked).
  std::size_t heap_high_water() const noexcept { return heap_high_water_; }

  struct LabelStat {
    std::string label;  // "(unlabeled)" for events scheduled without one
    std::uint64_t count = 0;
    double wall_seconds = 0.0;  // 0 unless the profiler was on
  };

  /// Executed-event counts (and wall time, when profiled) per label,
  /// merged by label text, sorted by label — deterministic given
  /// deterministic execution.
  std::vector<LabelStat> label_stats() const;

  /// The top-K hottest labels by accumulated wall time (profiler
  /// output; sorted by wall time descending, ties by label).
  std::vector<LabelStat> hottest(std::size_t k) const;

 private:
  struct Scheduled {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO within a timestamp
    EventId id;
    const char* label;
    std::function<void()> fn;
  };

  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  struct LabelTally {
    std::uint64_t count = 0;
    double wall_seconds = 0.0;
  };

  /// Drop cancelled events sitting at the head of the queue so that
  /// queue_.top() is always a live event (or the queue is empty).
  void prune_cancelled_top();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
  /// Ids scheduled but not yet fired or cancelled.
  std::unordered_set<EventId> live_;
  /// Ids cancelled but whose queue slot has not been popped yet; each
  /// entry is erased when its slot surfaces, so the set stays bounded by
  /// the queue size.
  std::unordered_set<EventId> cancelled_;

  bool telemetry_ = false;
  bool profiler_ = false;
  std::size_t heap_high_water_ = 0;
  /// Keyed by label pointer (labels are expected to be string
  /// literals); label_stats() merges any same-text duplicates.
  std::unordered_map<const char*, LabelTally> tallies_;
};

}  // namespace qlink::sim
