#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

/// \file simulator.hpp
/// Deterministic discrete-event engine.
///
/// This is the substrate the paper obtains from DynAA/NetSquid: a
/// time-ordered event queue with deterministic tie-breaking (FIFO within
/// one timestamp), an explicit clock, and handles for cancellation.
/// Entities (nodes, channels, the heralding station) schedule closures;
/// the engine never spawns threads, so every run is exactly reproducible.

namespace qlink::sim {

/// Identifies a scheduled event so it can be cancelled.
using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  SimTime now() const noexcept { return now_; }

  /// Schedule \p fn to run at absolute time \p at (>= now).
  EventId schedule_at(SimTime at, std::function<void()> fn);

  /// Schedule \p fn to run \p delay after the current time.
  EventId schedule_in(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a previously scheduled event. Returns false if the event has
  /// already fired or was cancelled before. O(1).
  bool cancel(EventId id);

  /// Run a single event. Returns false if the queue is empty.
  bool step();

  /// Run events until the queue is empty or the clock would pass \p t.
  /// The clock is left at exactly \p t (events at exactly \p t run).
  void run_until(SimTime t);

  /// Run events until the queue drains completely.
  void run_all();

  /// Number of events executed so far.
  std::uint64_t events_processed() const noexcept { return processed_; }

  /// Number of events still pending. Exact: cancelled events are
  /// excluded even while their queue slots await lazy removal.
  std::size_t pending() const noexcept { return live_.size(); }

 private:
  struct Scheduled {
    SimTime time;
    std::uint64_t seq;  // tie-break: FIFO within a timestamp
    EventId id;
    std::function<void()> fn;
  };

  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Drop cancelled events sitting at the head of the queue so that
  /// queue_.top() is always a live event (or the queue is empty).
  void prune_cancelled_top();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
  /// Ids scheduled but not yet fired or cancelled.
  std::unordered_set<EventId> live_;
  /// Ids cancelled but whose queue slot has not been popped yet; each
  /// entry is erased when its slot surfaces, so the set stays bounded by
  /// the queue size.
  std::unordered_set<EventId> cancelled_;
};

}  // namespace qlink::sim
