#pragma once

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <vector>

/// \file shard_ring.hpp
/// Single-producer single-consumer ring for cross-shard event exchange.
///
/// Each ordered shard pair (from, to) owns one ring: the producer is the
/// thread running shard `from` during a round, the consumer is the engine
/// draining at the next barrier. Classic power-of-two SPSC — the producer
/// only writes `head_`, the consumer only writes `tail_`, and each reads
/// the other's index with acquire ordering, so no locks are needed on the
/// fast path. Capacity is fixed at construction; the engine layers a
/// mutex-protected overflow list on top (see ShardedEngine::Coupling) so
/// a full ring degrades to a slow path instead of dropping or reordering
/// events.
namespace qlink::sim {

template <typename T>
class SpscRing {
 public:
  /// \p capacity is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return slots_.size(); }

  /// Producer side. Returns false when the ring is full, leaving
  /// `value` untouched (caller must divert it to its overflow path —
  /// and keep diverting until the next drain, or FIFO order breaks).
  bool try_push(T&& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail == slots_.size()) return false;
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side size estimate (exact when the producer is quiescent,
  /// i.e. at a barrier).
  std::size_t size() const noexcept {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

  bool empty() const noexcept { return size() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace qlink::sim
