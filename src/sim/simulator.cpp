#include "sim/simulator.hpp"

#include <stdexcept>

namespace qlink::sim {

EventId Simulator::schedule_at(SimTime at, std::function<void()> fn) {
  if (at < now_) throw std::invalid_argument("schedule_at: time in the past");
  if (!fn) throw std::invalid_argument("schedule_at: empty function");
  EventId id = next_id_++;
  queue_.push(Scheduled{at, next_seq_++, id, std::move(fn)});
  live_.insert(id);
  return id;
}

bool Simulator::cancel(EventId id) {
  if (live_.erase(id) == 0) return false;  // already fired or cancelled
  cancelled_.insert(id);
  return true;
}

void Simulator::prune_cancelled_top() {
  while (!queue_.empty() && cancelled_.erase(queue_.top().id) > 0) {
    queue_.pop();
  }
}

bool Simulator::step() {
  prune_cancelled_top();
  if (queue_.empty()) return false;
  Scheduled ev = queue_.top();
  queue_.pop();
  live_.erase(ev.id);
  now_ = ev.time;
  ++processed_;
  ev.fn();
  return true;
}

void Simulator::run_until(SimTime t) {
  for (;;) {
    prune_cancelled_top();
    if (queue_.empty() || queue_.top().time > t) break;
    if (!step()) break;
  }
  if (now_ < t) now_ = t;
}

void Simulator::run_all() {
  while (step()) {
  }
}

}  // namespace qlink::sim
