#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace qlink::sim {

EventId Simulator::schedule_at(SimTime at, std::function<void()> fn) {
  if (at < now_) throw std::invalid_argument("schedule_at: time in the past");
  if (!fn) throw std::invalid_argument("schedule_at: empty function");
  EventId id = next_id_++;
  queue_.push(Scheduled{at, next_seq_++, id, std::move(fn)});
  return id;
}

bool Simulator::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  if (is_cancelled(id)) return false;
  cancelled_.push_back(id);
  return true;
}

bool Simulator::is_cancelled(EventId id) const {
  return std::find(cancelled_.begin(), cancelled_.end(), id) !=
         cancelled_.end();
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Scheduled ev = queue_.top();
    queue_.pop();
    auto it = std::find(cancelled_.begin(), cancelled_.end(), ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.time;
    ++processed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    if (!step()) break;
  }
  if (now_ < t) now_ = t;
}

void Simulator::run_all() {
  while (step()) {
  }
}

}  // namespace qlink::sim
