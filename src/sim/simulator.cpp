#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <stdexcept>

namespace qlink::sim {

EventId Simulator::schedule_at(SimTime at, std::function<void()> fn,
                               const char* label) {
  if (at < now_) throw std::invalid_argument("schedule_at: time in the past");
  if (!fn) throw std::invalid_argument("schedule_at: empty function");
  EventId id = next_id_++;
  queue_.push(Scheduled{at, next_seq_++, id, label, std::move(fn)});
  live_.insert(id);
  if (queue_.size() > heap_high_water_) heap_high_water_ = queue_.size();
  return id;
}

bool Simulator::cancel(EventId id) {
  if (live_.erase(id) == 0) return false;  // already fired or cancelled
  cancelled_.insert(id);
  return true;
}

void Simulator::prune_cancelled_top() {
  while (!queue_.empty() && cancelled_.erase(queue_.top().id) > 0) {
    queue_.pop();
  }
}

SimTime Simulator::next_event_time() {
  prune_cancelled_top();
  return queue_.empty() ? kNoEventTime : queue_.top().time;
}

bool Simulator::step() {
  prune_cancelled_top();
  if (queue_.empty()) return false;
  Scheduled ev = queue_.top();
  queue_.pop();
  live_.erase(ev.id);
  now_ = ev.time;
  ++processed_;
  if (telemetry_ || profiler_) {
    LabelTally& tally = tallies_[ev.label];
    ++tally.count;
    if (profiler_) {
      const auto t0 = std::chrono::steady_clock::now();
      ev.fn();
      tally.wall_seconds += std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
      return true;
    }
  }
  ev.fn();
  return true;
}

void Simulator::run_until(SimTime t) {
  for (;;) {
    prune_cancelled_top();
    if (queue_.empty() || queue_.top().time > t) break;
    if (!step()) break;
  }
  if (now_ < t) now_ = t;
}

void Simulator::run_all() {
  while (step()) {
  }
}

std::vector<Simulator::LabelStat> Simulator::label_stats() const {
  // Merge by label *text*: one label literal can have several pointer
  // identities across translation units.
  std::map<std::string, LabelTally> merged;
  for (const auto& [label, tally] : tallies_) {
    LabelTally& m = merged[label == nullptr ? "(unlabeled)" : label];
    m.count += tally.count;
    m.wall_seconds += tally.wall_seconds;
  }
  std::vector<LabelStat> out;
  out.reserve(merged.size());
  for (auto& [label, tally] : merged) {
    out.push_back(LabelStat{label, tally.count, tally.wall_seconds});
  }
  return out;
}

std::vector<Simulator::LabelStat> Simulator::hottest(std::size_t k) const {
  std::vector<LabelStat> all = label_stats();
  std::sort(all.begin(), all.end(),
            [](const LabelStat& a, const LabelStat& b) {
              if (a.wall_seconds != b.wall_seconds) {
                return a.wall_seconds > b.wall_seconds;
              }
              if (a.count != b.count) return a.count > b.count;
              return a.label < b.label;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace qlink::sim
