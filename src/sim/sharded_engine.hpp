#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/shard_ring.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

/// \file sharded_engine.hpp
/// Conservative parallel discrete-event engine: one Simulator per shard,
/// cross-shard events over SPSC rings, channel delays as lookahead.
///
/// The network is partitioned into shards that interact only through
/// classical channels with a known minimum delay D. That delay is the
/// conservative lookahead of classic CMB-style parallel simulation: if
/// shard `from` has clock c, nothing it does can affect shard `to`
/// before c + D, so `to` may safely run to min over incoming couplings
/// of (c_from + D − 1). The engine advances all shards round by round:
///
///   drain rings → compute per-shard bounds → run each shard to its
///   bound (in threads when enabled) → drain rings → repeat
///
/// Within a round shards share nothing: cross-shard sends go through
/// ShardedEngine::post, which enqueues on a per-(from,to) SPSC ring; the
/// engine drains rings only at the barrier between rounds, in fixed
/// (from, to)-lexicographic order, FIFO within each ring. Because of
/// that, parallel execution is *identical* to running the shards
/// sequentially in shard order — determinism is per (seed, shard
/// count), independent of thread interleaving. With one shard the
/// engine is a pass-through to the single Simulator, byte-identical to
/// pre-sharding behaviour.
///
/// When no shard has a runnable event under its bound, the engine
/// fast-forwards every clock to the globally earliest pending event
/// instead of stepping rounds one lookahead at a time (safe: events are
/// only created by handlers, and no handler can run before that time).
namespace qlink::sim {

class ShardedEngine;

/// Binds a component to one shard of an engine. Network layers
/// (QuantumNetwork, FlowPlane, Router) construct against this handle
/// instead of a bare Simulator& so the same code runs single-shard or
/// as one island of a sharded run.
struct EngineRef {
  ShardedEngine* engine = nullptr;
  std::size_t shard = 0;

  explicit operator bool() const noexcept { return engine != nullptr; }
  /// The shard's simulator. Throws std::logic_error when unbound.
  Simulator& sim() const;
};

/// Maps nodes to shards. The assignment rule (see DESIGN.md): every
/// *quantum* link must be intra-shard — quantum state cannot span
/// simulators — so only classical channels may cross shards.
struct ShardAssignment {
  std::size_t num_shards = 1;
  std::vector<std::uint32_t> shard_of;  // node id -> shard

  static ShardAssignment single(std::size_t num_nodes);
  /// Contiguous blocks: node n -> n * num_shards / num_nodes. Matches
  /// group-major topology generators (dragonfly, chain-of-groups).
  static ShardAssignment blocks(std::size_t num_nodes,
                                std::size_t num_shards);

  std::uint32_t shard(std::uint32_t node) const { return shard_of.at(node); }

  /// Enforces the assignment rule for a quantum edge list: throws
  /// std::invalid_argument naming the first edge whose endpoints map to
  /// different shards.
  void validate_intra_shard(
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges)
      const;
};

class ShardedEngine {
 public:
  enum class Parallel {
    kAuto,  ///< threads iff num_shards > 1 and the host has > 1 core
    kOn,
    kOff,
  };

  struct Config {
    std::size_t num_shards = 1;
    /// Per-(from,to) ring capacity; overflow degrades to a locked slow
    /// path, never drops or reorders.
    std::size_t ring_capacity = 1024;
    Parallel parallel = Parallel::kAuto;
  };

  struct Stats {
    std::uint64_t rounds = 0;          ///< barrier rounds executed
    std::uint64_t parallel_rounds = 0;  ///< rounds run on threads
    std::uint64_t idle_jumps = 0;      ///< rounds fast-forwarded to the
                                       ///< next global event
    std::uint64_t posted = 0;          ///< cross-shard events posted
    std::uint64_t drained = 0;         ///< cross-shard events delivered
    std::uint64_t ring_overflows = 0;  ///< posts that hit the slow path
    std::size_t ring_high_water = 0;   ///< deepest any ring got
  };

  /// Couplings tighter than this cannot make progress (a round must
  /// advance every bound by at least one tick past the posting clock).
  static constexpr SimTime kMinLookahead = 2;

  ShardedEngine() : ShardedEngine(Config{}) {}
  explicit ShardedEngine(Config config);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  std::size_t num_shards() const noexcept { return sims_.size(); }

  Simulator& sim(std::size_t shard) { return *sims_.at(shard); }
  const Simulator& sim(std::size_t shard) const { return *sims_.at(shard); }

  EngineRef ref(std::size_t shard) {
    if (shard >= sims_.size()) {
      throw std::out_of_range("ShardedEngine::ref: shard out of range");
    }
    return EngineRef{this, shard};
  }

  /// Declare a directional coupling: shard \p from may post events to
  /// shard \p to, never closer than \p min_delay ahead of `from`'s
  /// clock. Repeat calls keep the tightest delay. Must be called before
  /// the first post for the pair; min_delay < kMinLookahead throws
  /// std::invalid_argument (the round protocol could livelock).
  void connect(std::size_t from, std::size_t to, SimTime min_delay);

  /// The declared lookahead, or 0 when the pair is not connected.
  SimTime lookahead(std::size_t from, std::size_t to) const;

  /// Cross-shard send: schedule \p fn at absolute time \p at on shard
  /// \p to. Callable from `from`'s shard thread mid-round (this is the
  /// only cross-shard channel there is). Throws std::logic_error when
  /// the pair is not connected and std::invalid_argument when \p at is
  /// below `from`'s clock plus the declared lookahead.
  void post(std::size_t from, std::size_t to, SimTime at,
            std::function<void()> fn, const char* label = nullptr);

  /// Advance every shard to exactly time \p t (events at \p t run).
  /// Single-shard engines delegate straight to Simulator::run_until.
  void run_until(SimTime t);
  void run_for(SimTime span) { run_until(now() + span); }

  /// The slowest shard's clock (== every shard's clock outside run_until).
  SimTime now() const;

  /// True when run_until uses one thread per runnable shard.
  bool threads_enabled() const noexcept { return threads_; }

  Stats stats() const;

  // -- Merged telemetry --------------------------------------------------

  std::uint64_t events_processed() const;
  std::size_t heap_high_water() const;
  void set_telemetry(bool on);
  /// Per-label executed-event counts merged across shards by label
  /// text, sorted by label.
  std::vector<Simulator::LabelStat> label_stats() const;

 private:
  struct CrossEvent {
    SimTime at = 0;
    const char* label = nullptr;
    std::function<void()> fn;
  };

  struct Coupling {
    explicit Coupling(std::size_t ring_capacity) : ring(ring_capacity) {}
    SimTime min_delay = 0;
    SpscRing<CrossEvent> ring;
    std::mutex overflow_mutex;
    std::vector<CrossEvent> overflow;
    /// Producer-side: once a push overflows, later pushes must follow it
    /// into the overflow list until the next drain, or FIFO breaks.
    bool spilled = false;
  };

  Coupling* coupling(std::size_t from, std::size_t to) noexcept {
    return couplings_[from * sims_.size() + to].get();
  }
  const Coupling* coupling(std::size_t from, std::size_t to) const noexcept {
    return couplings_[from * sims_.size() + to].get();
  }

  /// Deliver every ring + overflow entry to its target simulator, in
  /// (from, to)-lexicographic order, FIFO within a ring. Caller must be
  /// at a barrier (no shard threads running).
  void drain_all();

  Config config_;
  bool threads_ = false;
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<std::unique_ptr<Coupling>> couplings_;  // num_shards^2, lazy

  Stats stats_;
  // post() runs on shard threads; everything else in Stats is
  // barrier-side only.
  std::atomic<std::uint64_t> posted_{0};
  std::atomic<std::uint64_t> ring_overflows_{0};
};

inline Simulator& EngineRef::sim() const {
  if (engine == nullptr) {
    throw std::logic_error("EngineRef::sim: unbound engine handle");
  }
  return engine->sim(shard);
}

}  // namespace qlink::sim
