#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

/// \file random.hpp
/// Deterministic random source shared by the simulation.
///
/// All stochastic decisions (photon detection, message loss, workload
/// arrivals, measurement outcomes) draw from one seeded generator so a
/// scenario is exactly reproducible from its seed, mirroring the paper's
/// methodology of rerunning identical scenarios many times with
/// different seeds.

namespace qlink::sim {

class Random {
 public:
  explicit Random(std::uint64_t seed = 0x51ab5eedULL) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// True with probability p (p clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Sample an index from a discrete distribution given by weights.
  /// Weights need not be normalised; they must be non-negative and not
  /// all zero.
  std::size_t discrete(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) {
      if (w < 0.0) throw std::invalid_argument("discrete: negative weight");
      total += w;
    }
    if (total <= 0.0) throw std::invalid_argument("discrete: zero total");
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Exponentially distributed sample with the given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Access to the raw engine for std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace qlink::sim
