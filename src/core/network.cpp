#include "core/network.hpp"

#include <algorithm>

#include "quantum/bell.hpp"
#include "quantum/channels.hpp"

namespace qlink::core {

using quantum::DensityMatrix;
using quantum::QubitId;
namespace gates = quantum::gates;

Link::Link(const LinkConfig& config)
    : config_(config),
      owned_simulator_(std::make_unique<sim::Simulator>()),
      owned_random_(std::make_unique<sim::Random>(config.seed)),
      simulator_(owned_simulator_.get()),
      random_(owned_random_.get()) {
  owned_registry_ =
      std::make_unique<quantum::QuantumRegistry>(*random_, config.backend);
  registry_ = owned_registry_.get();
  wire();
}

Link::Link(sim::Simulator& simulator, sim::Random& random,
           quantum::QuantumRegistry& registry, const LinkConfig& config)
    : config_(config),
      simulator_(&simulator),
      random_(&random),
      registry_(&registry) {
  wire();
}

void Link::wire() {
  const hw::ScenarioParams& sc = config_.scenario;
  const std::string& tag = config_.label;

  model_ = std::make_unique<hw::HeraldModel>(sc.herald);

  device_a_ = std::make_unique<hw::NvDevice>(*simulator_, "nv-a" + tag,
                                             sc.nv, *registry_);
  device_b_ = std::make_unique<hw::NvDevice>(*simulator_, "nv-b" + tag,
                                             sc.nv, *registry_);

  chan_a_h_ = std::make_unique<net::ClassicalChannel>(
      *simulator_, "fiber-a-h" + tag, sc.delay_a_to_station, *random_,
      sc.classical_loss_prob);
  chan_b_h_ = std::make_unique<net::ClassicalChannel>(
      *simulator_, "fiber-b-h" + tag, sc.delay_b_to_station, *random_,
      sc.classical_loss_prob);
  chan_ab_ = std::make_unique<net::ClassicalChannel>(
      *simulator_, "fiber-a-b" + tag, sc.delay_a_to_b(), *random_,
      sc.classical_loss_prob);

  // Endpoint convention: nodes sit at endpoint 0 of their station link
  // and the station at endpoint 1; on the peer link A is 0 and B is 1.
  mhp_a_ = std::make_unique<proto::NodeMhp>(*simulator_, "mhp-a" + tag,
                                            config_.node_id_a, *device_a_,
                                            *chan_a_h_, 0, sc.mhp_cycle);
  mhp_b_ = std::make_unique<proto::NodeMhp>(*simulator_, "mhp-b" + tag,
                                            config_.node_id_b, *device_b_,
                                            *chan_b_h_, 0, sc.mhp_cycle);

  station_ = std::make_unique<proto::MidpointStation>(
      *simulator_, "station-h" + tag, *model_, *random_, *chan_a_h_, 1,
      *chan_b_h_, 1, sc.mhp_cycle);
  const std::uint64_t skew_cycles =
      static_cast<std::uint64_t>(
          std::max(sc.delay_a_to_station, sc.delay_b_to_station) /
          sc.mhp_cycle) +
      8;
  station_->set_match_window(skew_cycles);
  station_->set_install_handler(
      [this](int outcome, std::uint64_t cycle, double aa, double ab) {
        last_alpha_a_ = aa;
        last_alpha_b_ = ab;
        install_entanglement(outcome, cycle);
      });
  station_->set_measure_sampler(
      [this](int outcome, gates::Basis ba, gates::Basis bb, double aa,
             double ab) {
        last_alpha_a_ = aa;
        last_alpha_b_ = ab;
        return sample_measurement(outcome, ba, bb);
      });

  auto make_egp_config = [&](std::uint32_t id, std::uint32_t peer,
                             bool master) {
    EgpConfig c;
    c.node_id = id;
    c.peer_node_id = peer;
    c.is_master = master;
    c.scheduler = config_.scheduler;
    c.max_queue_size = config_.max_queue_size;
    c.test_round_probability = config_.test_round_probability;
    c.mem_advert_interval = config_.mem_advert_interval;
    c.emission_multiplexing = config_.emission_multiplexing;
    c.one_sided_error_threshold = config_.one_sided_error_threshold;
    return c;
  };
  egp_a_ = std::make_unique<Egp>(
      *simulator_, "egp-a" + tag,
      make_egp_config(config_.node_id_a, config_.node_id_b, true), sc,
      *device_a_, *model_, *chan_ab_, 0, *mhp_a_);
  egp_b_ = std::make_unique<Egp>(
      *simulator_, "egp-b" + tag,
      make_egp_config(config_.node_id_b, config_.node_id_a, false), sc,
      *device_b_, *model_, *chan_ab_, 1, *mhp_b_);
}

void Link::start() {
  mhp_a_->start();
  mhp_b_->start();
}

void Link::run_for(sim::SimTime span) {
  simulator_->run_until(simulator_->now() + span);
}

void Link::set_classical_loss(double p) {
  chan_a_h_->set_loss_probability(p);
  chan_b_h_->set_loss_probability(p);
  chan_ab_->set_loss_probability(p);
}

void Link::install_entanglement(int outcome, std::uint64_t cycle) {
  const hw::HeraldDistribution& dist =
      model_->distribution(last_alpha_a_, last_alpha_b_);
  DensityMatrix state =
      outcome == 1 ? dist.post_psi_plus : dist.post_psi_minus;

  // Decoherence the electrons picked up between emission and the swap
  // (photon flight time); further decay until the nodes act on their
  // REPLYs is handled lazily by the devices.
  const sim::SimTime emitted =
      static_cast<sim::SimTime>(cycle) * config_.scenario.mhp_cycle;
  const auto& nv = config_.scenario.nv;
  const double elapsed =
      static_cast<double>(std::max<sim::SimTime>(0, simulator_->now() -
                                                        emitted));
  const auto decay =
      quantum::channels::t1t2(elapsed, nv.electron_t1_ns, nv.electron_t2_ns);
  const int q0[] = {0};
  const int q1[] = {1};
  state.apply_kraus(decay, q0);
  state.apply_kraus(decay, q1);

  if (config_.pauli_twirl_installs) {
    // Pauli-frame mode: keep only the Bell-basis diagonal. Exactly
    // preserves this pair's fidelity/QBER metrics and keeps the state
    // on the Bell-diagonal backend's fast path.
    state = quantum::bell::twirl(state);
  }

  const QubitId pair[] = {device_a_->comm_qubit(), device_b_->comm_qubit()};
  registry_->set_state(pair, state);
  device_a_->mark_fresh(pair[0]);
  device_b_->mark_fresh(pair[1]);
  device_a_->set_live(pair[0], true);
  device_b_->set_live(pair[1], true);
}

std::pair<int, int> Link::sample_measurement(int outcome,
                                             gates::Basis basis_a,
                                             gates::Basis basis_b) {
  const hw::HeraldDistribution& dist =
      model_->distribution(last_alpha_a_, last_alpha_b_);
  DensityMatrix state =
      outcome == 1 ? dist.post_psi_plus : dist.post_psi_minus;

  // M-type attempts read out ~3.7 us after emission (Section 4.4); decay
  // over that window is tiny but included for honesty.
  const auto& nv = config_.scenario.nv;
  const double readout =
      static_cast<double>(nv.readout_duration);
  const auto decay =
      quantum::channels::t1t2(readout, nv.electron_t1_ns, nv.electron_t2_ns);
  const int q0[] = {0};
  const int q1[] = {1};
  state.apply_kraus(decay, q0);
  state.apply_kraus(decay, q1);

  state.apply_unitary(gates::basis_change(basis_a), q0);
  state.apply_unitary(gates::basis_change(basis_b), q1);
  const auto& m = state.matrix();
  const double w[] = {m(0, 0).real(), m(1, 1).real(), m(2, 2).real(),
                      m(3, 3).real()};
  const auto joint = random_->discrete(w);
  int oa = static_cast<int>(joint >> 1);
  int ob = static_cast<int>(joint & 1);

  // Asymmetric readout noise (Eq. 23) at each node.
  auto flip = [&](int o) {
    const double p_correct =
        o == 0 ? nv.readout_fidelity0 : nv.readout_fidelity1;
    return random_->bernoulli(p_correct) ? o : 1 - o;
  };
  oa = flip(oa);
  ob = flip(ob);
  return {oa, ob};
}

double Link::pair_fidelity(QubitId qubit_a, QubitId qubit_b) {
  device_a_->touch(qubit_a);
  device_b_->touch(qubit_b);
  const QubitId pair[] = {qubit_a, qubit_b};
  return registry_->fidelity(
      pair, quantum::bell::state_vector(quantum::bell::BellState::kPsiPlus));
}

Link::RateEstimate Link::estimate_k_create(double min_fidelity) {
  const auto advice =
      egp_a_->feu().advise(min_fidelity, RequestType::kCreateKeep);
  RateEstimate estimate;
  estimate.feasible = advice.feasible;
  if (advice.feasible) {
    estimate.fidelity = advice.estimated_fidelity;
    estimate.pair_time_s = sim::to_seconds(advice.expected_time_per_pair);
  }
  return estimate;
}

Link::TestRoundEstimate Link::test_round_estimate() const {
  // Both EGPs record the same interspersed test rounds from their own
  // REPLY streams; side A is the reference (cf. WorkloadDriver's
  // calibration, which reads egp_a's FEU too).
  const FidelityEstimationUnit& feu = egp_a_->feu();
  return {feu.test_rounds_recorded(), feu.estimated_fidelity_from_tests()};
}

}  // namespace qlink::core
