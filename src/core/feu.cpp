#include "core/feu.hpp"

#include <algorithm>
#include <cmath>

#include "quantum/bell.hpp"
#include "quantum/channels.hpp"
#include "quantum/density_matrix.hpp"

namespace qlink::core {

using quantum::gates::Basis;

FidelityEstimationUnit::FidelityEstimationUnit(
    const hw::HeraldModel& model, const hw::ScenarioParams& scenario)
    : model_(model), scenario_(scenario) {
  // The communication qubit is pinned until the REPLY returns, so K-type
  // attempts can start at most once per round trip to the station
  // (whichever node is farther away sets the pace; Section 4.4).
  const sim::SimTime round_trip =
      2 * std::max(scenario_.delay_a_to_station, scenario_.delay_b_to_station);
  k_attempt_period_cycles_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             (round_trip + scenario_.mhp_cycle - 1) / scenario_.mhp_cycle));

  // Carbon refresh steals duty cycle from K attempts (the "E ~ 1.1" of
  // the evaluation section).
  const double refresh = sim::to_seconds(scenario_.nv.carbon_refresh_duration);
  const double interval =
      sim::to_seconds(scenario_.nv.carbon_refresh_interval);
  k_cycle_overhead_ = 1.0 / (1.0 - refresh / interval);
}

double FidelityEstimationUnit::estimate_delivered_fidelity(
    double alpha, RequestType type) const {
  const hw::HeraldDistribution& dist = model_.distribution(alpha, alpha);
  if (dist.p_success() <= 0.0) return 0.0;

  // Average post-herald state weighted by outcome probability; the Psi-
  // branch is corrected to Psi+ by a local Z, which is noiseless in
  // Table 6, so its fidelity to Psi- equals the corrected fidelity to
  // Psi+.
  const auto& nv = scenario_.nv;
  auto degraded = [&](const quantum::DensityMatrix& rho,
                      quantum::bell::BellState target) {
    quantum::DensityMatrix work = rho;
    const int q0[] = {0};
    const int q1[] = {1};
    if (type == RequestType::kCreateKeep) {
      // K: the electrons idle until the REPLY round trip completes, then
      // move to memory (two E-C gates' dephasing each side; the gate
      // fidelity is measured over the gate duration, so no additional
      // T1/T2 charge applies — see NvDevice::move_comm_to_memory).
      const double wait_a =
          2.0 * static_cast<double>(scenario_.delay_a_to_station);
      const double wait_b =
          2.0 * static_cast<double>(scenario_.delay_b_to_station);
      work.apply_kraus(quantum::channels::t1t2(wait_a, nv.electron_t1_ns,
                                               nv.electron_t2_ns),
                       q0);
      work.apply_kraus(quantum::channels::t1t2(wait_b, nv.electron_t1_ns,
                                               nv.electron_t2_ns),
                       q1);
      const double p_gate = 2.0 * (1.0 - nv.ec_controlled_sqrt_x.fidelity);
      for (const int* q : {q0, q1}) {
        std::span<const int> tq(q, 1);
        work.apply_kraus(quantum::channels::dephasing(p_gate), tq);
      }
      return quantum::bell::fidelity(work, target);
    }

    // M: read out ~3.7 us after emission, before the REPLY (Section 4.4),
    // so only the readout window decays the state — but the *measured*
    // correlations additionally suffer the asymmetric readout errors of
    // Eq. 23, which is what an MD application (and Eq. 16) sees.
    const double readout = static_cast<double>(nv.readout_duration);
    const auto decay =
        quantum::channels::t1t2(readout, nv.electron_t1_ns,
                                nv.electron_t2_ns);
    work.apply_kraus(decay, q0);
    work.apply_kraus(decay, q1);
    const double e_side =
        0.5 * ((1.0 - nv.readout_fidelity0) + (1.0 - nv.readout_fidelity1));
    const double e_eff = e_side + e_side - 2.0 * e_side * e_side;
    double qber_sum = 0.0;
    for (auto b : {quantum::gates::Basis::kX, quantum::gates::Basis::kY,
                   quantum::gates::Basis::kZ}) {
      const double q = quantum::bell::qber(work, target, b);
      qber_sum += q * (1.0 - e_eff) + (1.0 - q) * e_eff;
    }
    return 1.0 - qber_sum / 2.0;
  };

  const double f_plus =
      degraded(dist.post_psi_plus, quantum::bell::BellState::kPsiPlus);
  const double f_minus =
      degraded(dist.post_psi_minus, quantum::bell::BellState::kPsiMinus);
  return (dist.p_psi_plus * f_plus + dist.p_psi_minus * f_minus) /
         dist.p_success();
}

FidelityEstimationUnit::Advice FidelityEstimationUnit::advise(
    double f_min, RequestType type) const {
  const auto key =
      std::make_pair(std::lround(f_min * 1e6), static_cast<int>(type));
  auto it = advice_cache_.find(key);
  if (it != advice_cache_.end()) return it->second;

  // Throughput grows with alpha but delivered fidelity falls once alpha
  // passes the dark-count-dominated region (the curve is peaked: at tiny
  // alpha dark counts swamp real heralds). Scan from the largest alpha
  // downwards and take the first point meeting f_min — the highest-rate
  // feasible setting.
  constexpr double kAlphaMin = 2e-3;
  constexpr double kAlphaMax = 0.5;
  constexpr int kGrid = 160;
  Advice advice;
  advice.feasible = false;
  for (int i = 0; i <= kGrid; ++i) {
    const double alpha =
        kAlphaMax - (kAlphaMax - kAlphaMin) * static_cast<double>(i) / kGrid;
    const double f = estimate_delivered_fidelity(alpha, type);
    if (f >= f_min) {
      advice.feasible = true;
      advice.alpha = alpha;
      advice.estimated_fidelity = f;
      break;
    }
  }
  if (!advice.feasible) {
    advice_cache_.emplace(key, advice);
    return advice;
  }
  const double lo = advice.alpha;

  const double p = model_.distribution(lo, lo).p_success();
  double cycles_per_attempt = 1.0;
  if (type == RequestType::kCreateKeep) {
    cycles_per_attempt =
        static_cast<double>(k_attempt_period_cycles_) * k_cycle_overhead_;
  }
  const double cycles = cycles_per_attempt / std::max(p, 1e-12);
  advice.est_cycles_per_pair =
      static_cast<std::uint32_t>(std::min(cycles, 4e9));
  advice.expected_time_per_pair =
      static_cast<sim::SimTime>(cycles * static_cast<double>(
                                             scenario_.mhp_cycle));
  advice_cache_.emplace(key, advice);
  return advice;
}

double FidelityEstimationUnit::goodness(double alpha, RequestType type) const {
  const auto tested = estimated_fidelity_from_tests();
  if (tested.has_value()) return *tested;
  return estimate_delivered_fidelity(alpha, type);
}

void FidelityEstimationUnit::record_test_round(Basis basis, int outcome_a,
                                               int outcome_b,
                                               int heralded_state) {
  const auto target = heralded_state == 1
                          ? quantum::bell::BellState::kPsiPlus
                          : quantum::bell::BellState::kPsiMinus;
  const bool ideal_equal = quantum::bell::ideal_outcomes_equal(target, basis);
  const bool equal = outcome_a == outcome_b;
  auto& ring = errors_[static_cast<std::size_t>(basis)];
  ring.push_back(equal != ideal_equal);
  if (ring.size() > window_) ring.pop_front();
  ++total_tests_;
}

std::optional<double> FidelityEstimationUnit::measured_qber(
    Basis basis) const {
  const auto& ring = errors_[static_cast<std::size_t>(basis)];
  if (ring.empty()) return std::nullopt;
  const auto errors = static_cast<double>(
      std::count(ring.begin(), ring.end(), true));
  return errors / static_cast<double>(ring.size());
}

std::optional<double> FidelityEstimationUnit::estimated_fidelity_from_tests()
    const {
  const auto qx = measured_qber(Basis::kX);
  const auto qy = measured_qber(Basis::kY);
  const auto qz = measured_qber(Basis::kZ);
  if (!qx || !qy || !qz) return std::nullopt;
  return quantum::bell::fidelity_from_qbers(*qx, *qy, *qz);
}

}  // namespace qlink::core
