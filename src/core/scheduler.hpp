#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/distributed_queue.hpp"
#include "core/requests.hpp"

/// \file scheduler.hpp
/// EGP schedulers (Section 5.2.4, Section 6.3).
///
/// Any strategy is admissible as long as it is *deterministic in the
/// shared queue state*, so that both nodes independently select the same
/// request each cycle. Two strategies from the paper:
///
///  - FCFS: a single queue served in arrival (QSEQ) order.
///  - WFQ:  NL (priority 0) has strict priority; CK and MD are served by
///    weighted fair queueing using virtual finish times that the
///    *originator* computes at enqueue time and ships inside the ADD
///    frame ("Initial Virtual Finish", Fig. 24), which keeps both nodes'
///    decisions identical.

namespace qlink::core {

enum class SchedulerKind { kFcfs, kWfq };

struct SchedulerConfig {
  SchedulerKind kind = SchedulerKind::kWfq;
  /// WFQ weights for queues 1..n (queue 0 = NL is strict-priority).
  /// Defaults follow Section 6.3 ("HigherWFQ"): CK weight 10, MD 1.
  std::vector<double> weights = {10.0, 1.0};
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig config);

  SchedulerKind kind() const noexcept { return config_.kind; }

  /// GET_QUEUE of Protocol 2: map a priority to a queue index.
  /// FCFS uses a single queue; WFQ one queue per priority.
  int queue_for(Priority priority) const;

  /// Assign the WFQ virtual-finish tag at enqueue time (originator only;
  /// the value travels in the ADD frame so both nodes share it).
  double assign_virtual_finish(const net::DqpPacket& request,
                               std::uint64_t current_cycle);

  /// NEXT of Protocol 2: the request to serve this cycle, or nullopt.
  /// `ready` decides whether an individual item may be served (min_time
  /// reached, confirmed, not suspended, ...) and is supplied by the EGP.
  std::optional<net::AbsoluteQueueId> next(
      const DistributedQueue& queue, std::uint64_t cycle,
      const std::function<bool(const DistributedQueue::Item&)>& ready) const;

 private:
  double weight_for_queue(int j) const;

  SchedulerConfig config_;
  std::vector<double> last_finish_;  // per queue, local WFQ bookkeeping
};

}  // namespace qlink::core
