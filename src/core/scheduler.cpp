#include "core/scheduler.hpp"

#include <algorithm>
#include <limits>

namespace qlink::core {

using net::AbsoluteQueueId;

Scheduler::Scheduler(SchedulerConfig config) : config_(std::move(config)) {
  last_finish_.assign(16, 0.0);
}

int Scheduler::queue_for(Priority priority) const {
  if (config_.kind == SchedulerKind::kFcfs) return 0;
  return static_cast<int>(priority);
}

double Scheduler::weight_for_queue(int j) const {
  if (j <= 0) return 1.0;  // NL: strict priority, weight unused
  const std::size_t idx = static_cast<std::size_t>(j - 1);
  if (idx < config_.weights.size()) return config_.weights[idx];
  return 1.0;
}

double Scheduler::assign_virtual_finish(const net::DqpPacket& request,
                                        std::uint64_t current_cycle) {
  if (config_.kind == SchedulerKind::kFcfs) return 0.0;
  const int j = request.aid.qid;
  const double service =
      static_cast<double>(request.num_pairs) *
      static_cast<double>(std::max<std::uint32_t>(
          request.est_cycles_per_pair, 1)) /
      weight_for_queue(j);
  const double start = std::max(static_cast<double>(current_cycle),
                                last_finish_.at(static_cast<std::size_t>(j)));
  const double finish = start + service;
  last_finish_.at(static_cast<std::size_t>(j)) = finish;
  return finish;
}

std::optional<AbsoluteQueueId> Scheduler::next(
    const DistributedQueue& queue, std::uint64_t cycle,
    const std::function<bool(const DistributedQueue::Item&)>& ready) const {
  (void)cycle;
  auto head_of = [&](int j) -> const DistributedQueue::Item* {
    for (const auto& [qseq, item] : queue.queue(j)) {
      if (ready(item)) return &item;
      // FIFO within a queue: an unready head blocks only itself, not the
      // items behind it, except that serving out of order would break
      // the agreement property; we allow skipping unready items because
      // "ready" is a deterministic function of shared state.
    }
    return nullptr;
  };

  if (config_.kind == SchedulerKind::kFcfs) {
    const DistributedQueue::Item* item = head_of(0);
    if (item == nullptr) return std::nullopt;
    return item->request.aid;
  }

  // Strict priority for NL (queue 0).
  if (const DistributedQueue::Item* nl = head_of(0)) return nl->request.aid;

  // WFQ across the remaining queues: smallest virtual finish wins.
  const DistributedQueue::Item* best = nullptr;
  for (int j = 1; j < queue.num_queues(); ++j) {
    const DistributedQueue::Item* item = head_of(j);
    if (item == nullptr) continue;
    if (best == nullptr ||
        item->request.init_virtual_finish < best->request.init_virtual_finish ||
        (item->request.init_virtual_finish ==
             best->request.init_virtual_finish &&
         item->request.aid < best->request.aid)) {
      best = item;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best->request.aid;
}

}  // namespace qlink::core
