#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "core/requests.hpp"
#include "net/channel.hpp"
#include "net/packets.hpp"
#include "sim/entity.hpp"

/// \file distributed_queue.hpp
/// Distributed Queue Protocol (Appendix E.1).
///
/// Both nodes hold local copies of L priority queues that the DQP keeps
/// synchronised with a two-way handshake: ADD -> ACK/REJ, with
/// retransmission on loss and a windowing mechanism for fairness. One
/// node is the *master* and owns queue-sequence assignment; the *slave*
/// proposes additions and learns its (QID, QSEQ) from the master's ACK.
/// An item is servable once the local node knows the peer also has it
/// (master: on ACK; slave: on ADD/ACK receipt) and its min_time
/// (schedule_cycle) has passed.

namespace qlink::core {

class DistributedQueue : public sim::Entity {
 public:
  struct Config {
    bool is_master = false;
    int num_queues = 3;
    std::size_t max_items_per_queue = 256;
    int window = 32;                     // outstanding un-ACKed local adds
    sim::SimTime retransmit_timeout = 0;  // 0 = auto (4x delay + 1 cycle)
    int max_retries = 10;
  };

  /// Result of a local submit: the assigned id on success.
  using LocalResultFn = std::function<void(
      std::uint32_t create_id, bool ok, EgpError error,
      net::AbsoluteQueueId aid)>;
  /// Invoked when an item originated by the peer becomes known locally.
  using RemoteAddFn = std::function<void(const net::DqpPacket&)>;
  /// Queue rules: return false to reject (DENIED) based on purpose id
  /// etc. (Section 4.1.1 item 7).
  using PolicyFn = std::function<bool(const net::DqpPacket&)>;

  struct Item {
    net::DqpPacket request;
    bool confirmed = false;  // peer known to hold the item
  };

  DistributedQueue(sim::Simulator& simulator, std::string name,
                   const Config& config, net::ClassicalChannel& link,
                   int endpoint);

  void set_local_result_handler(LocalResultFn fn) { on_local_ = std::move(fn); }
  void set_remote_add_handler(RemoteAddFn fn) { on_remote_ = std::move(fn); }
  void set_policy(PolicyFn fn) { policy_ = std::move(fn); }

  /// Submit a local CREATE for distribution. The packet's qid must be
  /// set; qseq is assigned by the master. Completion is reported through
  /// the local-result handler.
  void submit(net::DqpPacket request);

  /// Feed an incoming DQP frame (the EGP demultiplexes the peer link).
  void handle_frame(const net::DqpPacket& packet);

  /// Remove an item (request completed / timed out); both nodes call
  /// this from the same deterministic condition.
  void remove(const net::AbsoluteQueueId& aid);

  const Item* find(const net::AbsoluteQueueId& aid) const;
  Item* find(const net::AbsoluteQueueId& aid);

  /// Ordered view of one queue (by qseq).
  const std::map<std::uint32_t, Item>& queue(int j) const {
    return queues_.at(static_cast<std::size_t>(j));
  }
  int num_queues() const { return static_cast<int>(queues_.size()); }
  std::size_t size(int j) const {
    return queues_.at(static_cast<std::size_t>(j)).size();
  }
  std::size_t total_size() const;
  std::size_t backlog_size() const { return backlog_.size(); }

  std::uint64_t adds_sent() const noexcept { return adds_sent_; }
  std::uint64_t retransmissions() const noexcept { return retransmissions_; }

 private:
  struct PendingLocal {
    net::DqpPacket request;
    int retries = 0;
    sim::EventId timer = 0;
  };

  void send(const net::DqpPacket& packet);
  void try_dispatch_backlog();
  void dispatch_local(net::DqpPacket request);
  void arm_retransmit(std::uint32_t cseq);
  void on_timeout(std::uint32_t cseq);
  void handle_add(const net::DqpPacket& packet);
  void handle_ack(const net::DqpPacket& packet);
  void handle_rej(const net::DqpPacket& packet);
  void insert_item(const net::DqpPacket& packet, bool confirmed);
  bool queue_full(int j) const;

  Config config_;
  net::ClassicalChannel& link_;
  int endpoint_;
  sim::SimTime retransmit_timeout_;

  std::vector<std::map<std::uint32_t, Item>> queues_;
  std::deque<net::DqpPacket> backlog_;  // window overflow
  std::map<std::uint32_t, PendingLocal> pending_;  // by cseq
  std::uint32_t next_cseq_ = 1;
  std::vector<std::uint32_t> next_qseq_;  // master only, per queue

  // Master-side idempotency: remote cseq -> assigned aid.
  std::map<std::uint32_t, net::AbsoluteQueueId> seen_remote_;

  LocalResultFn on_local_;
  RemoteAddFn on_remote_;
  PolicyFn policy_;

  std::uint64_t adds_sent_ = 0;
  std::uint64_t retransmissions_ = 0;
};

}  // namespace qlink::core
