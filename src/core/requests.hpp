#pragma once

#include <cstdint>
#include <string>

#include "net/packets.hpp"
#include "quantum/gates.hpp"
#include "quantum/registry.hpp"
#include "sim/time.hpp"

/// \file requests.hpp
/// The link-layer service interface of Section 4.1: CREATE requests and
/// the OK / ERR / EXPIRE responses the EGP delivers to higher layers.

namespace qlink::core {

/// Type of a CREATE request (Section 4.1.1, item 2).
enum class RequestType : std::uint8_t {
  kCreateKeep = 0,     // K: store the entanglement
  kCreateMeasure = 1,  // M: measure immediately
};

/// Priorities map to the three use cases (Section 4.1.1, item 8).
/// Lower value = higher priority.
enum class Priority : std::uint8_t {
  kNetworkLayer = 0,     // NL
  kCreateKeep = 1,       // CK
  kMeasureDirectly = 2,  // MD
};

inline const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kNetworkLayer:
      return "NL";
    case Priority::kCreateKeep:
      return "CK";
    case Priority::kMeasureDirectly:
      return "MD";
  }
  return "?";
}

/// CREATE, issued by a higher layer (Fig. 31).
struct CreateRequest {
  std::uint32_t remote_node_id = 0;
  RequestType type = RequestType::kCreateKeep;
  std::uint16_t num_pairs = 1;
  bool atomic = false;
  bool consecutive = false;  // OK per pair instead of per request
  sim::SimTime max_time = 0;  // tmax; 0 = unbounded
  std::uint16_t purpose_id = 0;
  Priority priority = Priority::kCreateKeep;
  double min_fidelity = 0.5;
  bool store_in_memory = true;  // K only: move to a carbon on success
};

/// Error conditions of Section 4.1.2.
enum class EgpError : std::uint8_t {
  kNone = 0,
  kTimeout,        // TIMEOUT: tmax exceeded
  kUnsupported,    // UNSUPP: fidelity/time not achievable
  kMemExceeded,    // MEMEXCEEDED: atomic request larger than the memory
  kOutOfMemory,    // OUTOFMEM: temporarily no storage
  kDenied,         // DENIED: remote refused (purpose-id policy)
  kNoTime,         // ERR_NOTIME: distributed-queue add timed out
  kRejected,       // ERR_REJECT: distributed-queue add rejected
  kExpired,        // EXPIRE: a delivered OK was revoked
};

const char* egp_error_name(EgpError e);

/// Network-unique entanglement identifier (Section 4.1.2, item 1).
struct EntanglementId {
  std::uint32_t node_a = 0;
  std::uint32_t node_b = 0;
  std::uint32_t seq_mhp = 0;

  friend bool operator==(const EntanglementId&,
                         const EntanglementId&) = default;
};

/// OK delivered to the higher layer (Figs. 37 and 38).
struct OkMessage {
  std::uint32_t create_id = 0;
  EntanglementId ent_id;
  std::uint16_t purpose_id = 0;
  std::uint32_t origin_node = 0;  // directionality flag resolved to an id
  std::uint16_t pair_index = 0;   // 0-based index within the request
  std::uint16_t total_pairs = 1;
  bool is_measure_directly = false;

  // K-type payload: where the local half of the pair lives.
  quantum::QubitId qubit = 0;
  int logical_qubit_id = -1;  // memory slot, -1 = communication qubit

  // M-type payload.
  int outcome = -1;
  quantum::gates::Basis basis = quantum::gates::Basis::kZ;
  /// Which Bell state the midpoint heralded (1 = Psi+, 2 = Psi-). For
  /// K-type pairs the origin's correction turns both into Psi+; M-type
  /// outcomes keep their heralded correlations.
  int heralded_state = 1;

  // Goodness (Section 4.1.2, items 3/5/6).
  double goodness = 0.0;
  sim::SimTime goodness_time = 0;
  sim::SimTime create_time = 0;
};

/// ERR delivered to the higher layer (Fig. 39).
struct ErrMessage {
  std::uint32_t create_id = 0;
  EgpError error = EgpError::kNone;
  std::uint32_t origin_node = 0;
  // For kExpired: the revoked midpoint sequence range [low, high).
  std::uint32_t seq_low = 0;
  std::uint32_t seq_high = 0;
};

}  // namespace qlink::core
