#include "core/distributed_queue.hpp"

#include <stdexcept>
#include <utility>

namespace qlink::core {

using net::AbsoluteQueueId;
using net::DqpFrameType;
using net::DqpPacket;
using net::DqpRejectReason;
using net::PacketType;

DistributedQueue::DistributedQueue(sim::Simulator& simulator, std::string name,
                                   const Config& config,
                                   net::ClassicalChannel& link, int endpoint)
    : Entity(simulator, std::move(name)),
      config_(config),
      link_(link),
      endpoint_(endpoint) {
  if (config_.num_queues < 1 || config_.num_queues > 16) {
    throw std::invalid_argument("DistributedQueue: 1..16 queues supported");
  }
  queues_.resize(static_cast<std::size_t>(config_.num_queues));
  next_qseq_.assign(static_cast<std::size_t>(config_.num_queues), 0);
  retransmit_timeout_ =
      config_.retransmit_timeout > 0
          ? config_.retransmit_timeout
          : 4 * link_.delay() + sim::duration::microseconds(50);
}

std::size_t DistributedQueue::total_size() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

bool DistributedQueue::queue_full(int j) const {
  return queues_.at(static_cast<std::size_t>(j)).size() >=
         config_.max_items_per_queue;
}

void DistributedQueue::send(const DqpPacket& packet) {
  link_.send_from(endpoint_,
                  net::seal(PacketType::kDqpFrame, packet.encode()));
}

void DistributedQueue::submit(DqpPacket request) {
  if (request.aid.qid >= config_.num_queues) {
    throw std::invalid_argument("DistributedQueue::submit: bad queue id");
  }
  request.master_request = config_.is_master;
  if (static_cast<int>(pending_.size()) >= config_.window) {
    backlog_.push_back(std::move(request));
    return;
  }
  dispatch_local(std::move(request));
}

void DistributedQueue::dispatch_local(DqpPacket request) {
  request.comm_seq = next_cseq_++;
  const int j = request.aid.qid;

  if (config_.is_master) {
    if (queue_full(j)) {
      if (on_local_) {
        on_local_(request.create_id, false, EgpError::kRejected, {});
      }
      try_dispatch_backlog();
      return;
    }
    request.aid.qseq = next_qseq_[static_cast<std::size_t>(j)]++;
    insert_item(request, /*confirmed=*/false);
  }

  request.frame_type = DqpFrameType::kAdd;
  pending_[request.comm_seq] = PendingLocal{request, 0, 0};
  send(request);
  ++adds_sent_;
  arm_retransmit(request.comm_seq);
}

void DistributedQueue::try_dispatch_backlog() {
  while (!backlog_.empty() &&
         static_cast<int>(pending_.size()) < config_.window) {
    DqpPacket next = std::move(backlog_.front());
    backlog_.pop_front();
    dispatch_local(std::move(next));
  }
}

void DistributedQueue::arm_retransmit(std::uint32_t cseq) {
  auto it = pending_.find(cseq);
  if (it == pending_.end()) return;
  it->second.timer =
      schedule_in(retransmit_timeout_, [this, cseq] { on_timeout(cseq); },
                  "dqp.retransmit");
}

void DistributedQueue::on_timeout(std::uint32_t cseq) {
  auto it = pending_.find(cseq);
  if (it == pending_.end()) return;
  PendingLocal& p = it->second;
  if (p.retries >= config_.max_retries) {
    const DqpPacket request = p.request;
    pending_.erase(it);
    if (config_.is_master) remove(request.aid);
    if (on_local_) {
      on_local_(request.create_id, false, EgpError::kNoTime, {});
    }
    try_dispatch_backlog();
    return;
  }
  ++p.retries;
  ++retransmissions_;
  send(p.request);
  arm_retransmit(cseq);
}

void DistributedQueue::insert_item(const DqpPacket& packet, bool confirmed) {
  auto& q = queues_.at(packet.aid.qid);
  q[packet.aid.qseq] = Item{packet, confirmed};
}

void DistributedQueue::handle_frame(const DqpPacket& packet) {
  switch (packet.frame_type) {
    case DqpFrameType::kAdd:
      handle_add(packet);
      break;
    case DqpFrameType::kAck:
      handle_ack(packet);
      break;
    case DqpFrameType::kRej:
      handle_rej(packet);
      break;
  }
}

void DistributedQueue::handle_add(const DqpPacket& packet) {
  DqpPacket reply = packet;

  if (config_.is_master) {
    // Slave-originated add: assign the queue sequence (idempotently for
    // retransmissions).
    auto seen = seen_remote_.find(packet.comm_seq);
    if (seen != seen_remote_.end()) {
      reply.frame_type = DqpFrameType::kAck;
      reply.aid = seen->second;
      send(reply);
      return;
    }
    const bool accept = (!policy_ || policy_(packet)) &&
                        packet.aid.qid < config_.num_queues &&
                        !queue_full(packet.aid.qid);
    if (!accept) {
      reply.frame_type = DqpFrameType::kRej;
      reply.reject_reason = queue_full(packet.aid.qid)
                                ? DqpRejectReason::kQueueFull
                                : DqpRejectReason::kPolicy;
      send(reply);
      return;
    }
    reply.aid.qseq = next_qseq_[packet.aid.qid]++;
    seen_remote_[packet.comm_seq] = reply.aid;
    insert_item(reply, /*confirmed=*/true);
    reply.frame_type = DqpFrameType::kAck;
    send(reply);
    if (on_remote_) on_remote_(reply);
    return;
  }

  // Slave receiving a master-originated add.
  if (find(packet.aid) != nullptr) {
    // Retransmission: just re-ACK.
    reply.frame_type = DqpFrameType::kAck;
    send(reply);
    return;
  }
  const bool accept = (!policy_ || policy_(packet)) &&
                      packet.aid.qid < config_.num_queues &&
                      !queue_full(packet.aid.qid);
  if (!accept) {
    reply.frame_type = DqpFrameType::kRej;
    reply.reject_reason = queue_full(packet.aid.qid)
                              ? DqpRejectReason::kQueueFull
                              : DqpRejectReason::kPolicy;
    send(reply);
    return;
  }
  insert_item(packet, /*confirmed=*/true);
  reply.frame_type = DqpFrameType::kAck;
  send(reply);
  if (on_remote_) on_remote_(packet);
}

void DistributedQueue::handle_ack(const DqpPacket& packet) {
  auto it = pending_.find(packet.comm_seq);
  if (it == pending_.end()) return;  // duplicate ACK
  simulator().cancel(it->second.timer);
  const DqpPacket original = it->second.request;
  pending_.erase(it);

  if (config_.is_master) {
    // Item was inserted unconfirmed at submit time.
    if (Item* item = find(original.aid)) item->confirmed = true;
    if (on_local_) {
      on_local_(original.create_id, true, EgpError::kNone, original.aid);
    }
  } else {
    // Learn our assigned qseq from the master's ACK.
    DqpPacket stored = original;
    stored.aid = packet.aid;
    insert_item(stored, /*confirmed=*/true);
    if (on_local_) {
      on_local_(original.create_id, true, EgpError::kNone, packet.aid);
    }
  }
  try_dispatch_backlog();
}

void DistributedQueue::handle_rej(const DqpPacket& packet) {
  auto it = pending_.find(packet.comm_seq);
  if (it == pending_.end()) return;
  simulator().cancel(it->second.timer);
  const DqpPacket original = it->second.request;
  pending_.erase(it);
  if (config_.is_master) remove(original.aid);
  const EgpError err = packet.reject_reason == DqpRejectReason::kPolicy
                           ? EgpError::kDenied
                           : EgpError::kRejected;
  if (on_local_) on_local_(original.create_id, false, err, {});
  try_dispatch_backlog();
}

void DistributedQueue::remove(const AbsoluteQueueId& aid) {
  if (aid.qid >= config_.num_queues) return;
  queues_.at(aid.qid).erase(aid.qseq);
}

const DistributedQueue::Item* DistributedQueue::find(
    const AbsoluteQueueId& aid) const {
  if (aid.qid >= config_.num_queues) return nullptr;
  const auto& q = queues_.at(aid.qid);
  const auto it = q.find(aid.qseq);
  return it == q.end() ? nullptr : &it->second;
}

DistributedQueue::Item* DistributedQueue::find(const AbsoluteQueueId& aid) {
  return const_cast<Item*>(
      static_cast<const DistributedQueue*>(this)->find(aid));
}

}  // namespace qlink::core
