#pragma once

#include <optional>
#include <vector>

#include "hw/nv_device.hpp"

/// \file qmm.hpp
/// Quantum Memory Manager (Section 4.5 / 5.2.2): decides which physical
/// qubits serve which purpose and tracks allocation, so the EGP can
/// answer OUTOFMEM/MEMEXCEEDED correctly and advertise free capacity to
/// the peer for flow control.

namespace qlink::core {

class QuantumMemoryManager {
 public:
  explicit QuantumMemoryManager(hw::NvDevice& device) : device_(device) {
    memory_in_use_.assign(
        static_cast<std::size_t>(device.num_memory_qubits()), false);
  }

  /// Reserve the communication qubit for an in-flight attempt.
  bool reserve_comm() {
    if (comm_in_use_) return false;
    comm_in_use_ = true;
    return true;
  }
  void release_comm() { comm_in_use_ = false; }
  bool comm_free() const { return !comm_in_use_; }

  /// Reserve a memory (carbon) slot; returns its index.
  std::optional<int> reserve_memory() {
    for (std::size_t i = 0; i < memory_in_use_.size(); ++i) {
      if (!memory_in_use_[i]) {
        memory_in_use_[i] = true;
        return static_cast<int>(i);
      }
    }
    return std::nullopt;
  }
  void release_memory(int slot) {
    memory_in_use_.at(static_cast<std::size_t>(slot)) = false;
  }

  int free_memory_slots() const {
    int n = 0;
    for (bool used : memory_in_use_) {
      if (!used) ++n;
    }
    return n;
  }
  int total_memory_slots() const {
    return static_cast<int>(memory_in_use_.size());
  }

  /// Logical -> physical qubit translation (Section 4.5).
  quantum::QubitId physical_memory_qubit(int slot) const {
    return device_.memory_qubit(slot);
  }
  quantum::QubitId physical_comm_qubit() const {
    return device_.comm_qubit();
  }

  hw::NvDevice& device() { return device_; }

 private:
  hw::NvDevice& device_;
  bool comm_in_use_ = false;
  std::vector<bool> memory_in_use_;
};

}  // namespace qlink::core
