#pragma once

#include <deque>
#include <map>
#include <optional>

#include "core/requests.hpp"
#include "hw/herald_model.hpp"
#include "hw/nv_params.hpp"
#include "quantum/gates.hpp"

/// \file feu.hpp
/// Fidelity Estimation Unit (Section 5.2.3 and Appendix B).
///
/// Two responsibilities:
///  1. Translate a requested minimum fidelity F_min into generation
///     parameters: the largest bright-state population alpha whose
///     *delivered* fidelity estimate still meets F_min, together with an
///     expected completion time per pair (used for UNSUPP decisions and
///     WFQ bookkeeping). Delivered fidelity = heralded fidelity from the
///     physical model degraded by the decoherence the pair provably
///     suffers before the higher layer can touch it (REPLY wait, and the
///     move to a memory qubit for K-type requests).
///  2. Maintain a running estimate of link quality from interspersed
///     test rounds (Appendix B): QBER per basis over a sliding window,
///     recombined into a fidelity estimate via Eq. 16.

namespace qlink::core {

class FidelityEstimationUnit {
 public:
  struct Advice {
    bool feasible = false;
    double alpha = 0.0;
    double estimated_fidelity = 0.0;
    /// Expected wall time to produce one pair at this alpha, including
    /// the per-type attempt-rate limits.
    sim::SimTime expected_time_per_pair = 0;
    std::uint32_t est_cycles_per_pair = 0;
  };

  FidelityEstimationUnit(const hw::HeraldModel& model,
                         const hw::ScenarioParams& scenario);

  /// Generation parameters for a fidelity target (cached).
  Advice advise(double f_min, RequestType type) const;

  /// Model-based delivered-fidelity estimate for a given alpha.
  double estimate_delivered_fidelity(double alpha, RequestType type) const;

  /// Goodness reported in OK messages: the test-round estimate when
  /// enough data exists, otherwise the model estimate.
  double goodness(double alpha, RequestType type) const;

  // -- Test rounds (Appendix B) ---------------------------------------

  /// Record one test-round result. `heralded_state` is 1 (Psi+) or
  /// 2 (Psi-), needed to know the ideal correlation in each basis.
  void record_test_round(quantum::gates::Basis basis, int outcome_a,
                         int outcome_b, int heralded_state);

  /// Sliding-window QBER in one basis; nullopt if no samples yet.
  std::optional<double> measured_qber(quantum::gates::Basis basis) const;

  /// Eq. 16 estimate from the three QBERs; nullopt until all three bases
  /// have samples.
  std::optional<double> estimated_fidelity_from_tests() const;

  void set_window(std::size_t n) { window_ = n; }
  std::size_t test_rounds_recorded() const { return total_tests_; }

  /// Number of MHP cycles between K-type attempts (the REPLY round trip
  /// gates re-use of the communication qubit; Section 4.4).
  std::uint64_t k_attempt_period_cycles() const {
    return k_attempt_period_cycles_;
  }

 private:
  const hw::HeraldModel& model_;
  hw::ScenarioParams scenario_;
  std::uint64_t k_attempt_period_cycles_ = 1;
  double k_cycle_overhead_ = 1.0;  // carbon-refresh duty cycle ("E")

  std::size_t window_ = 2000;
  std::size_t total_tests_ = 0;
  std::array<std::deque<bool>, 3> errors_;  // per basis: error yes/no

  mutable std::map<std::pair<long, int>, Advice> advice_cache_;
};

}  // namespace qlink::core
