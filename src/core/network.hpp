#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/egp.hpp"
#include "hw/herald_model.hpp"
#include "hw/nv_device.hpp"
#include "hw/nv_params.hpp"
#include "net/channel.hpp"
#include "proto/mhp.hpp"
#include "quantum/registry.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

/// \file network.hpp
/// Assembles the full two-node link of the paper: nodes A and B (NV
/// devices + MHP + EGP), the heralding station H, quantum/classical
/// fiber connections, and the glue that installs heralded entanglement
/// into the communication qubits (including the decoherence picked up
/// while photons and replies are in flight).

namespace qlink::core {

struct LinkConfig {
  hw::ScenarioParams scenario;
  std::uint64_t seed = 1;
  /// Quantum-state representation for the link's (or network's)
  /// registry. kDense is the reference; kBellDiagonal is the analytic
  /// fast path (pair states as 4 Bell coefficients, promoted to dense
  /// on non-Clifford operations). See src/qstate/ and DESIGN.md.
  qstate::BackendKind backend = qstate::BackendKind::kDense;
  /// Project every heralded state onto the Bell-diagonal manifold
  /// before installing it ("Pauli-frame" simulation). The twirl
  /// exactly preserves the installed pair's fidelity to every Bell
  /// state and its QBER in every basis; with it, Clifford+Pauli
  /// scenarios evolve identically (within float rounding) on the dense
  /// and Bell-diagonal backends — and the latter never leaves its fast
  /// path.
  bool pauli_twirl_installs = false;
  SchedulerConfig scheduler;
  double test_round_probability = 0.0;
  sim::SimTime mem_advert_interval = 0;
  std::size_t max_queue_size = 256;
  bool emission_multiplexing = true;
  /// Consecutive one-sided midpoint errors before a request is expired
  /// (see EgpConfig::one_sided_error_threshold).
  int one_sided_error_threshold = 64;
  /// Network-wide node ids of the two endpoints. The defaults keep the
  /// historical single-link world (A = 0, B = 1); a topology assigns
  /// globally unique ids so OK origin fields stay unambiguous.
  std::uint32_t node_id_a = 0;
  std::uint32_t node_id_b = 1;
  /// Suffix appended to entity names (e.g. "[2]") so diagnostics from
  /// different links in one simulation are distinguishable.
  std::string label;
};

/// A fully wired two-node quantum link.
///
/// A link either owns its simulation world (simulator, random source,
/// qubit registry) — the historical standalone mode — or borrows an
/// externally owned one, which is how netlayer::QuantumNetwork puts
/// many links on a single clock so their pairs can be swapped into
/// end-to-end entanglement.
class Link {
 public:
  /// Standalone: the link owns simulator, random source, and registry.
  explicit Link(const LinkConfig& config);

  /// Shared-world: all three are owned by the caller (who must keep
  /// them alive for the lifetime of the link). Entanglement between
  /// qubits of different links requires a shared registry.
  Link(sim::Simulator& simulator, sim::Random& random,
       quantum::QuantumRegistry& registry, const LinkConfig& config);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  sim::Simulator& simulator() { return *simulator_; }
  sim::Random& random() { return *random_; }
  quantum::QuantumRegistry& registry() { return *registry_; }
  const hw::HeraldModel& herald_model() const { return *model_; }
  const hw::ScenarioParams& scenario() const { return config_.scenario; }

  hw::NvDevice& device_a() { return *device_a_; }
  hw::NvDevice& device_b() { return *device_b_; }
  Egp& egp_a() { return *egp_a_; }
  Egp& egp_b() { return *egp_b_; }
  Egp& egp(std::uint32_t node_id) {
    return node_id == config_.node_id_a ? *egp_a_ : *egp_b_;
  }
  hw::NvDevice& device(std::uint32_t node_id) {
    return node_id == config_.node_id_a ? *device_a_ : *device_b_;
  }
  std::uint32_t node_id_a() const noexcept { return config_.node_id_a; }
  std::uint32_t node_id_b() const noexcept { return config_.node_id_b; }
  proto::NodeMhp& mhp_a() { return *mhp_a_; }
  proto::NodeMhp& mhp_b() { return *mhp_b_; }
  proto::MidpointStation& station() { return *station_; }
  net::ClassicalChannel& peer_channel() { return *chan_ab_; }
  net::ClassicalChannel& station_channel_a() { return *chan_a_h_; }
  net::ClassicalChannel& station_channel_b() { return *chan_b_h_; }

  /// Start both MHP cycle clocks.
  void start();

  /// Run the simulation for a given span of simulated time.
  void run_for(sim::SimTime span);

  /// Set the classical frame-loss probability on every control link
  /// (the robustness study of Section 6.1).
  void set_classical_loss(double p);

  /// Measured fidelity of a delivered K pair: reduced state of the two
  /// qubits named in matching OKs at A and B (simulator privilege).
  double pair_fidelity(quantum::QubitId qubit_a, quantum::QubitId qubit_b);

  /// FEU-derived planning estimate for a K-type CREATE at the given
  /// fidelity floor: the delivered fidelity and expected per-pair
  /// generation time at the alpha the EGP would actually run. This is
  /// what the routing layer's cost models consume (see
  /// routing::Router::annotate_from_network).
  struct RateEstimate {
    bool feasible = false;
    double fidelity = 0.0;
    double pair_time_s = 0.0;
  };
  RateEstimate estimate_k_create(double min_fidelity);

  /// The link's most recent *measured* quality: the FEU's sliding-window
  /// test-round record (Appendix B). `fidelity` is the Eq. 16 estimate,
  /// present once all three bases have samples; `rounds` is how many
  /// test rounds ever fed the window — the routing layer uses its growth
  /// to tell fresh measurements from stale ones (see
  /// routing::Router::refresh_annotations).
  struct TestRoundEstimate {
    std::size_t rounds = 0;
    std::optional<double> fidelity;
  };
  TestRoundEstimate test_round_estimate() const;

  static constexpr std::uint32_t kNodeA = 0;
  static constexpr std::uint32_t kNodeB = 1;

 private:
  void wire();
  void install_entanglement(int outcome, std::uint64_t cycle);
  std::pair<int, int> sample_measurement(int outcome,
                                         quantum::gates::Basis basis_a,
                                         quantum::gates::Basis basis_b);

  LinkConfig config_;
  // Owned only in standalone mode; null when the world is external.
  std::unique_ptr<sim::Simulator> owned_simulator_;
  std::unique_ptr<sim::Random> owned_random_;
  std::unique_ptr<quantum::QuantumRegistry> owned_registry_;
  sim::Simulator* simulator_ = nullptr;
  sim::Random* random_ = nullptr;
  quantum::QuantumRegistry* registry_ = nullptr;
  std::unique_ptr<hw::HeraldModel> model_;
  std::unique_ptr<hw::NvDevice> device_a_;
  std::unique_ptr<hw::NvDevice> device_b_;
  std::unique_ptr<net::ClassicalChannel> chan_a_h_;
  std::unique_ptr<net::ClassicalChannel> chan_b_h_;
  std::unique_ptr<net::ClassicalChannel> chan_ab_;
  std::unique_ptr<proto::NodeMhp> mhp_a_;
  std::unique_ptr<proto::NodeMhp> mhp_b_;
  std::unique_ptr<proto::MidpointStation> station_;
  std::unique_ptr<Egp> egp_a_;
  std::unique_ptr<Egp> egp_b_;
  double last_alpha_a_ = 0.1;
  double last_alpha_b_ = 0.1;
};

}  // namespace qlink::core
