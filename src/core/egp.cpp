#include "core/egp.hpp"

#include <algorithm>

#include "quantum/gates.hpp"

namespace qlink::core {

using net::AbsoluteQueueId;
using net::DqpPacket;
using net::ExpireAckPacket;
using net::ExpirePacket;
using net::MemAdvertPacket;
using net::MhpError;
using net::PacketType;
using net::ReplyPacket;
using quantum::gates::Basis;

namespace {

/// splitmix64: deterministic hash used for the pre-agreed random strings.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

Egp::Egp(sim::Simulator& simulator, std::string name, const EgpConfig& config,
         const hw::ScenarioParams& scenario, hw::NvDevice& device,
         const hw::HeraldModel& model, net::ClassicalChannel& peer_link,
         int peer_endpoint, proto::NodeMhp& mhp)
    : Entity(simulator, std::move(name)),
      config_(config),
      scenario_(scenario),
      device_(device),
      peer_link_(peer_link),
      peer_endpoint_(peer_endpoint),
      mhp_(mhp),
      qmm_(device),
      feu_(model, scenario),
      scheduler_(config.scheduler),
      queue_(simulator, this->name() + "/dqp",
             DistributedQueue::Config{
                 config.is_master, config.num_queues, config.max_queue_size,
                 config.dqp_window, /*retransmit_timeout=*/0,
                 config.dqp_max_retries},
             peer_link, peer_endpoint) {
  peer_link_.set_receiver(peer_endpoint_, [this](std::vector<std::uint8_t> b) {
    on_peer_frame(std::move(b));
  });
  queue_.set_local_result_handler(
      [this](std::uint32_t cid, bool ok, EgpError err, AbsoluteQueueId aid) {
        on_local_queue_result(cid, ok, err, aid);
      });
  queue_.set_remote_add_handler(
      [this](const DqpPacket& pkt) { on_remote_add(pkt); });

  mhp_.set_poll_handler([this] { return poll(); });
  mhp_.set_result_handler(
      [this](const proto::MhpResult& r) { handle_result(r); });

  if (config_.mem_advert_interval > 0) {
    advert_timer_.emplace(simulator, config_.mem_advert_interval,
                          [this] { send_mem_advert(false); });
    advert_timer_->start(config_.mem_advert_interval);
  }
}

void Egp::set_queue_policy(DistributedQueue::PolicyFn fn) {
  queue_.set_policy(std::move(fn));
}

// ---------------------------------------------------------------------------
// CREATE path

std::uint32_t Egp::create(const CreateRequest& request) {
  const std::uint32_t create_id = next_create_id_++;
  ++stats_.creates;

  const RequestType type = request.type;
  const auto advice = feu_.advise(request.min_fidelity, type);
  if (!advice.feasible) {
    schedule_in(0, [this, create_id] {
      emit_err({create_id, EgpError::kUnsupported, config_.node_id, 0, 0});
    }, "egp.reject");
    return create_id;
  }
  if (request.max_time > 0 &&
      advice.expected_time_per_pair *
              static_cast<sim::SimTime>(request.num_pairs) >
          request.max_time) {
    schedule_in(0, [this, create_id] {
      emit_err({create_id, EgpError::kUnsupported, config_.node_id, 0, 0});
    }, "egp.reject");
    return create_id;
  }
  if (request.atomic && type == RequestType::kCreateKeep &&
      request.num_pairs > qmm_.total_memory_slots()) {
    schedule_in(0, [this, create_id] {
      emit_err({create_id, EgpError::kMemExceeded, config_.node_id, 0, 0});
    }, "egp.reject");
    return create_id;
  }

  DqpPacket pkt;
  pkt.aid.qid = static_cast<std::uint8_t>(
      scheduler_.queue_for(request.priority));
  pkt.min_fidelity = request.min_fidelity;
  pkt.purpose_id = request.purpose_id;
  pkt.create_id = create_id;
  pkt.num_pairs = request.num_pairs;
  pkt.priority = static_cast<std::uint8_t>(request.priority);
  pkt.store = request.store_in_memory;
  pkt.atomic = request.atomic;
  pkt.measure_directly = type == RequestType::kCreateMeasure;
  pkt.consecutive = request.consecutive;
  pkt.est_cycles_per_pair = advice.est_cycles_per_pair;
  pkt.origin_node = config_.node_id;
  pkt.create_time_ns = now();
  pkt.max_time_ns = request.max_time;

  // min_time: both nodes must hold the item before either may start
  // (Section 5.2.1); one round trip plus slack covers the handshake.
  const std::uint64_t cycle = mhp_.current_cycle();
  const auto handshake = static_cast<std::uint64_t>(
      (4 * peer_link_.delay()) / scenario_.mhp_cycle + 2);
  pkt.schedule_cycle = cycle + handshake;
  if (request.max_time > 0) {
    pkt.timeout_cycle =
        cycle + static_cast<std::uint64_t>(request.max_time /
                                           scenario_.mhp_cycle) +
        1;
  }
  pkt.init_virtual_finish = scheduler_.assign_virtual_finish(pkt, cycle);

  pending_create_[create_id] = {request, now()};
  queue_.submit(pkt);
  return create_id;
}

bool Egp::cancel_create(std::uint32_t create_id) {
  // Still awaiting DQP confirmation: remember the id so the
  // confirmation callback retracts it from both queues.
  if (pending_create_.erase(create_id) > 0) {
    cancelled_pending_.insert(create_id);
    ++stats_.cancels;
    return true;
  }
  // Active request we originated: quiet whole-request expiry (the
  // peer's queue copy is retracted by the EXPIRE; no ERR is emitted —
  // the higher layer chose to abandon the request).
  std::optional<AbsoluteQueueId> found;
  for (const auto& [aid, req] : active_) {
    if (req.is_origin && req.pkt.create_id == create_id) {
      found = aid;
      break;
    }
  }
  if (!found) return false;
  ++stats_.cancels;
  expire_request(*found, /*notify_peer=*/true, /*quiet=*/true);
  return true;
}

void Egp::on_local_queue_result(std::uint32_t create_id, bool ok,
                                EgpError err, AbsoluteQueueId aid) {
  if (cancelled_pending_.erase(create_id) > 0) {
    if (ok) {
      // The CREATE was retracted between submission and confirmation:
      // pull it back out of the local queue and tell the peer.
      queue_.remove(aid);
      ExpirePacket exp;
      exp.aid = aid;
      exp.origin_id = config_.node_id;
      exp.create_id = create_id;
      exp.seq_low = 0;
      exp.seq_high = 0;  // whole-request expiry
      exp.new_expected_seq = expected_seq_;
      send_expire(exp);
    }
    return;
  }
  auto it = pending_create_.find(create_id);
  if (it == pending_create_.end()) return;
  const sim::SimTime submit_time = it->second.second;
  pending_create_.erase(it);

  if (!ok) {
    emit_err({create_id, err, config_.node_id, 0, 0});
    return;
  }
  const DistributedQueue::Item* item = queue_.find(aid);
  if (item == nullptr) return;  // raced with removal
  ActiveRequest req;
  req.pkt = item->request;
  req.is_origin = true;
  req.submit_time = submit_time;
  active_[aid] = std::move(req);
}

void Egp::on_remote_add(const DqpPacket& pkt) {
  ActiveRequest req;
  req.pkt = pkt;
  req.is_origin = false;
  req.submit_time = now();
  active_[pkt.aid] = std::move(req);
}

// ---------------------------------------------------------------------------
// Shared pseudo-randomness (Appendix B)

double Egp::shared_unit(const AbsoluteQueueId& aid, std::uint64_t key,
                        std::uint32_t salt) const {
  std::uint64_t h = config_.shared_seed;
  h = mix64(h ^ aid.qid);
  h = mix64(h ^ aid.qseq);
  h = mix64(h ^ key);
  h = mix64(h ^ salt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Basis Egp::shared_basis(const AbsoluteQueueId& aid, std::uint64_t key) const {
  const double u = shared_unit(aid, key, 2);
  if (u < 1.0 / 3.0) return Basis::kX;
  if (u < 2.0 / 3.0) return Basis::kY;
  return Basis::kZ;
}

bool Egp::is_test_round(const AbsoluteQueueId& aid,
                        std::uint64_t cycle) const {
  // Keyed on the (globally agreed) MHP cycle so that the decision varies
  // per attempt; keying on the pair index would freeze a request on a
  // test round forever, since test rounds do not advance the pair count.
  if (config_.test_round_probability <= 0.0) return false;
  return shared_unit(aid, cycle, 1) < config_.test_round_probability;
}

bool Egp::in_carbon_maintenance(std::uint64_t cycle) const {
  // Carbon re-initialisation happens in globally agreed windows so both
  // nodes pause K-type generation together (Appendix D.3.3).
  const auto interval = static_cast<std::uint64_t>(
      scenario_.nv.carbon_refresh_interval / scenario_.mhp_cycle);
  const auto busy = static_cast<std::uint64_t>(
      scenario_.nv.carbon_refresh_duration / scenario_.mhp_cycle);
  if (interval == 0) return false;
  return cycle % interval < busy;
}

// ---------------------------------------------------------------------------
// MHP poll (Protocol 2, step 2)

proto::PollResponse Egp::poll() {
  proto::PollResponse no;
  const std::uint64_t cycle = mhp_.current_cycle();

  check_request_timeouts(cycle);
  if (suspend_until_cycle_ > cycle) return no;

  // While a K-type attempt is in flight the communication qubit may hold
  // half of a heralded pair; no other attempt may reset it. If the REPLY
  // never arrives (lost frame), give up after several round trips.
  if (outstanding_k_aid_) {
    if (cycle >
        outstanding_k_cycle_ + 4 * feu_.k_attempt_period_cycles() + 64) {
      device_.registry().reset(device_.comm_qubit());
      outstanding_k_aid_.reset();
    } else {
      return no;
    }
  }

  const auto ready = [&](const DistributedQueue::Item& item) {
    if (!item.confirmed) return false;
    if (item.request.schedule_cycle > cycle) return false;
    if (item.request.timeout_cycle != 0 &&
        item.request.timeout_cycle <= cycle) {
      return false;
    }
    return active_.count(item.request.aid) > 0;
  };
  const auto selected = scheduler_.next(queue_, cycle, ready);
  if (!selected) return no;

  ActiveRequest* req = find_active(*selected);
  if (req == nullptr) return no;
  const bool keep = request_is_keep(req->pkt);
  const std::uint32_t pair = req->pairs_done;
  const bool test = keep && is_test_round(*selected, cycle);

  if (keep && !test) {
    // K-type attempts run on a globally anchored cycle grid (every
    // k_attempt_period cycles): both nodes derive the same grid from the
    // shared clock, so transient one-sided blockings (memory, busy
    // device) re-synchronise at the next grid point instead of drifting.
    if (cycle % feu_.k_attempt_period_cycles() != 0) return no;
    if (req->pkt.store && in_carbon_maintenance(cycle)) return no;
    if (req->pkt.store && qmm_.free_memory_slots() == 0) return no;
    if (req->pkt.store && peer_free_memory_ == 0) return no;
    if (!req->pkt.store && !qmm_.comm_free()) return no;
    if (!req->pkt.store && peer_comm_free_ == 0) return no;
  } else if (!config_.emission_multiplexing) {
    // Without emission multiplexing M-type attempts block on the REPLY
    // round trip; run them on the same globally anchored grid as K-type
    // attempts so both nodes stay aligned.
    if (cycle % feu_.k_attempt_period_cycles() != 0) return no;
    if (!outstanding_m_cycles_.empty()) return no;
  }

  if (req->alpha <= 0.0) {
    // Re-query the FEU at service time (hardware parameters may have
    // drifted while the request sat in the queue).
    const auto advice =
        feu_.advise(req->pkt.min_fidelity, request_type(req->pkt));
    if (!advice.feasible) return no;
    req->alpha = advice.alpha;
  }

  proto::PollResponse resp;
  resp.attempt = true;
  resp.aid = *selected;
  resp.pair_index = static_cast<std::uint16_t>(pair);
  resp.measure_directly = !keep || test;
  // M-type pairs get one pre-agreed random basis per pair; test rounds
  // draw theirs per cycle (Appendix B's random strings).
  resp.basis = test ? shared_basis(*selected, cycle) : shared_basis(*selected, pair);
  resp.alpha = req->alpha;

  if (keep && !test) {
    outstanding_k_aid_ = *selected;
    outstanding_k_cycle_ = cycle;
  } else {
    outstanding_m_cycles_.insert(cycle);
    // Bound the set: entries older than 4 round trips are lost replies.
    const std::uint64_t horizon = 4 * feu_.k_attempt_period_cycles() + 64;
    while (!outstanding_m_cycles_.empty() &&
           *outstanding_m_cycles_.begin() + horizon < cycle) {
      outstanding_m_cycles_.erase(outstanding_m_cycles_.begin());
    }
  }
  ++stats_.attempts;
  if (test) ++stats_.test_rounds;
  return resp;
}

// ---------------------------------------------------------------------------
// REPLY handling (Protocol 2, step 3)

Egp::ActiveRequest* Egp::find_active(const AbsoluteQueueId& aid) {
  auto it = active_.find(aid);
  return it == active_.end() ? nullptr : &it->second;
}

void Egp::handle_result(const proto::MhpResult& result) {
  const ReplyPacket& reply = result.reply;
  [[maybe_unused]] const std::uint64_t cycle = mhp_.current_cycle();

  if (reply.error != MhpError::kNone) {
    ++stats_.one_sided_errors;
    if (outstanding_k_aid_ && reply.aid_receiver == *outstanding_k_aid_) {
      outstanding_k_aid_.reset();
    }
    outstanding_m_cycles_.erase(reply.cycle);
    if (ActiveRequest* req = find_active(reply.aid_receiver)) {
      if (++req->one_sided_streak >= config_.one_sided_error_threshold) {
        expire_request(reply.aid_receiver, /*notify_peer=*/true);
      }
    }
    return;
  }

  if (reply.outcome == 0) {
    // Plain failure: free the attempt slot immediately.
    outstanding_m_cycles_.erase(reply.cycle);
    if (outstanding_k_aid_ && reply.aid_receiver == *outstanding_k_aid_) {
      outstanding_k_aid_.reset();
    }
    return;
  }

  // Success REPLY: sequence-number bookkeeping first.
  const std::uint32_t seq = reply.seq_mhp;
  if (seq < expected_seq_) {
    ++stats_.stale_replies;
    return;
  }
  if (seq > expected_seq_) {
    // We missed REPLYs (lost frames): pairs [expected, seq) may have been
    // OK'd by the peer; revoke them (Protocol 2, 3(c)iii A).
    ++stats_.seq_gaps;
    ExpirePacket exp;
    exp.aid = reply.aid_receiver;
    exp.origin_id = config_.node_id;
    exp.seq_low = expected_seq_;
    exp.seq_high = seq;
    exp.new_expected_seq = seq + 1;
    send_expire(exp);
    emit_err({0, EgpError::kExpired, config_.node_id, expected_seq_, seq});
  }
  expected_seq_ = seq + 1;
  outstanding_m_cycles_.erase(reply.cycle);

  ActiveRequest* req = find_active(reply.aid_receiver);
  if (req == nullptr) {
    // The request is gone locally (timed out / completed): if this was
    // our outstanding K attempt, the freshly installed pair half sits in
    // the communication qubit; drop it.
    if (outstanding_k_aid_ && reply.aid_receiver == *outstanding_k_aid_) {
      device_.registry().reset(device_.comm_qubit());
      outstanding_k_aid_.reset();
    }
    return;
  }
  req->one_sided_streak = 0;
  process_success(reply, *req);
}

void Egp::process_success(const ReplyPacket& reply, ActiveRequest& req) {
  const AbsoluteQueueId aid = reply.aid_receiver;
  const std::uint64_t cycle = mhp_.current_cycle();
  const bool keep = request_is_keep(req.pkt);
  const bool test = keep && is_test_round(aid, reply.cycle);
  ++stats_.successes;

  if (test) {
    if (reply.m_outcome != 0xFF && reply.m_outcome_peer != 0xFF) {
      feu_.record_test_round(static_cast<Basis>(reply.m_basis),
                             reply.m_outcome, reply.m_outcome_peer,
                             reply.outcome);
    }
    return;
  }
  // Pair-count resynchronisation (Section 5.2.5): after a lost success
  // REPLY the peer's pair index runs ahead of ours; the pairs we missed
  // were revoked by the EXPIRE sent in the sequence-gap branch above, so
  // skip to the shared frontier and deliver the present success there.
  const std::uint16_t frontier =
      std::max(reply.pair_index, reply.pair_index_peer);
  if (frontier < req.pairs_done) {
    return;  // stale duplicate for a pair we already counted
  }
  if (frontier > req.pairs_done) {
    req.pairs_done = std::min<std::uint16_t>(frontier, req.pkt.num_pairs);
    if (req.pairs_done >= req.pkt.num_pairs) {
      complete_request(aid, req);
      return;
    }
  }

  OkMessage ok;
  ok.create_id = req.pkt.create_id;
  ok.ent_id = {std::min(config_.node_id, config_.peer_node_id),
               std::max(config_.node_id, config_.peer_node_id),
               reply.seq_mhp};
  ok.purpose_id = req.pkt.purpose_id;
  ok.origin_node = req.pkt.origin_node;
  ok.pair_index = req.pairs_done;
  ok.total_pairs = req.pkt.num_pairs;
  ok.create_time = now();

  if (keep) {
    // The midpoint installed the heralded state into the communication
    // qubits. Convert |Psi-> to |Psi+> with a local Z at the origin
    // (Eq. 13); the peer briefly suspends generation (Protocol 2 3(c)iv).
    if (reply.outcome == 2) {
      if (req.pkt.origin_node == config_.node_id) {
        device_.apply_electron_gate(quantum::gates::z());
      } else {
        suspend_until_cycle_ = cycle + 1;
      }
    }
    device_.set_live(device_.comm_qubit(), true);

    if (req.pkt.store) {
      const auto slot = qmm_.reserve_memory();
      if (!slot) {
        // OUTOFMEM: no storage left; the pair cannot be kept.
        device_.registry().reset(device_.comm_qubit());
        emit_err({req.pkt.create_id, EgpError::kOutOfMemory,
                  req.pkt.origin_node, 0, 0});
        outstanding_k_aid_.reset();
        return;
      }
      device_.move_comm_to_memory(*slot);
      ok.qubit = device_.memory_qubit(*slot);
      ok.logical_qubit_id = *slot;
    } else {
      qmm_.reserve_comm();
      ok.qubit = device_.comm_qubit();
      ok.logical_qubit_id = -1;
    }
    outstanding_k_aid_.reset();
  } else {
    ok.is_measure_directly = true;
    ok.outcome = reply.m_outcome == 0xFF ? -1 : reply.m_outcome;
    ok.basis = static_cast<Basis>(reply.m_basis);
    ok.heralded_state = reply.outcome;
  }

  ok.goodness = feu_.goodness(req.alpha, request_type(req.pkt));
  ok.goodness_time = now();

  ++req.pairs_done;
  const bool done = req.pairs_done >= req.pkt.num_pairs;
  const bool immediate = req.pkt.consecutive && !req.pkt.atomic;
  if (immediate) {
    emit_ok(ok);
  } else {
    req.buffered.push_back(ok);
  }
  if (done) complete_request(aid, req);
}

void Egp::complete_request(const AbsoluteQueueId& aid, ActiveRequest& req) {
  for (const OkMessage& ok : req.buffered) emit_ok(ok);
  queue_.remove(aid);
  active_.erase(aid);
}

// ---------------------------------------------------------------------------
// Expiry & timeouts

void Egp::check_request_timeouts(std::uint64_t cycle) {
  // Cheap scan: with <= 3 queues and heads checked every cycle, timed-out
  // items are reaped promptly; a full sweep runs periodically.
  std::vector<AbsoluteQueueId> expired;
  for (int j = 0; j < queue_.num_queues(); ++j) {
    for (const auto& [qseq, item] : queue_.queue(j)) {
      if (item.request.timeout_cycle != 0 &&
          item.request.timeout_cycle <= cycle) {
        expired.push_back(item.request.aid);
      }
      break;  // heads only; the periodic sweep handles the rest
    }
  }
  if (cycle % 1024 == 0) {
    for (int j = 0; j < queue_.num_queues(); ++j) {
      for (const auto& [qseq, item] : queue_.queue(j)) {
        if (item.request.timeout_cycle != 0 &&
            item.request.timeout_cycle <= cycle) {
          expired.push_back(item.request.aid);
        }
      }
    }
  }
  for (const auto& aid : expired) {
    ActiveRequest* req = find_active(aid);
    if (req != nullptr && req->is_origin) {
      emit_err({req->pkt.create_id, EgpError::kTimeout, config_.node_id, 0,
                0});
    }
    queue_.remove(aid);
    active_.erase(aid);
  }
}

void Egp::expire_request(const AbsoluteQueueId& aid, bool notify_peer,
                         bool quiet) {
  ActiveRequest* req = find_active(aid);
  if (req == nullptr) return;
  if (!quiet) {
    emit_err(
        {req->pkt.create_id, EgpError::kExpired, req->pkt.origin_node, 0, 0});
  }
  if (notify_peer) {
    ExpirePacket exp;
    exp.aid = aid;
    exp.origin_id = config_.node_id;
    exp.create_id = req->pkt.create_id;
    exp.seq_low = 0;
    exp.seq_high = 0;  // whole-request expiry
    exp.new_expected_seq = expected_seq_;
    send_expire(exp);
  }
  queue_.remove(aid);
  active_.erase(aid);
  if (outstanding_k_aid_ && *outstanding_k_aid_ == aid) {
    outstanding_k_aid_.reset();
  }
}

void Egp::send_expire(ExpirePacket pkt) {
  ++stats_.expires_sent;
  const std::uint64_t key = next_expire_key_++;
  peer_link_.send_from(peer_endpoint_,
                       net::seal(PacketType::kExpire, pkt.encode()));
  PendingExpire pending{pkt, 0, 0};
  pending.timer = schedule_in(config_.expire_retransmit,
                              [this, key] { retransmit_expire(key); },
                              "egp.expire_retransmit");
  pending_expires_[key] = pending;
}

void Egp::retransmit_expire(std::uint64_t key) {
  auto it = pending_expires_.find(key);
  if (it == pending_expires_.end()) return;
  PendingExpire& p = it->second;
  if (p.retries >= config_.expire_max_retries) {
    pending_expires_.erase(it);
    return;
  }
  ++p.retries;
  peer_link_.send_from(peer_endpoint_,
                       net::seal(PacketType::kExpire, p.pkt.encode()));
  p.timer = schedule_in(config_.expire_retransmit,
                        [this, key] { retransmit_expire(key); },
                        "egp.expire_retransmit");
}

void Egp::handle_expire(const ExpirePacket& pkt) {
  ++stats_.expires_received;
  // Revoke OKs in [seq_low, seq_high); (0,0) expires the whole request.
  const ActiveRequest* req = find_active(pkt.aid);
  const DistributedQueue::Item* queued = queue_.find(pkt.aid);
  const bool whole_request = pkt.seq_low == 0 && pkt.seq_high == 0;
  // A whole-request EXPIRE for an aid that is neither active nor still
  // queued is a duplicate (lost ACK -> retransmit) or races our own
  // expiry: the ERR was already delivered, and re-emitting it with
  // sender attribution could be pinned on an unrelated request (create
  // ids are per-EGP counters and ambiguous alone). Just re-ACK below.
  if (!whole_request || req != nullptr || queued != nullptr) {
    ErrMessage err;
    err.create_id = pkt.create_id;
    err.error = EgpError::kExpired;
    err.origin_node = pkt.origin_id;
    err.seq_low = pkt.seq_low;
    err.seq_high = pkt.seq_high;
    // The packet's origin_id names the *sender*; higher layers
    // attribute ERRs to the CREATE's origin, so resolve it while the
    // request is still known (active, or queued-but-not-yet-active).
    if (req != nullptr) {
      err.create_id = req->pkt.create_id;
      err.origin_node = req->pkt.origin_node;
    } else if (queued != nullptr) {
      err.create_id = queued->request.create_id;
      err.origin_node = queued->request.origin_node;
    }
    emit_err(err);
  }

  if (whole_request) {
    queue_.remove(pkt.aid);
    active_.erase(pkt.aid);
    if (outstanding_k_aid_ && *outstanding_k_aid_ == pkt.aid) {
      outstanding_k_aid_.reset();
    }
  }
  expected_seq_ = std::max(expected_seq_, pkt.new_expected_seq);

  ExpireAckPacket ack;
  ack.aid = pkt.aid;
  ack.expected_seq = expected_seq_;
  peer_link_.send_from(peer_endpoint_,
                       net::seal(PacketType::kExpireAck, ack.encode()));
}

void Egp::handle_expire_ack(const ExpireAckPacket& pkt) {
  // The ACK carries the acker's expected sequence number; adopting the
  // maximum reconverges both nodes after one round trip.
  expected_seq_ = std::max(expected_seq_, pkt.expected_seq);
  for (auto it = pending_expires_.begin(); it != pending_expires_.end();) {
    if (it->second.pkt.aid == pkt.aid) {
      simulator().cancel(it->second.timer);
      it = pending_expires_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Flow control

void Egp::send_mem_advert(bool is_ack) {
  MemAdvertPacket pkt;
  pkt.is_ack = is_ack;
  pkt.comm_free = qmm_.comm_free() ? 1 : 0;
  pkt.storage_free = static_cast<std::uint16_t>(qmm_.free_memory_slots());
  peer_link_.send_from(peer_endpoint_,
                       net::seal(PacketType::kMemAdvert, pkt.encode()));
}

void Egp::handle_mem_advert(const MemAdvertPacket& pkt) {
  peer_free_memory_ = pkt.storage_free;
  peer_comm_free_ = pkt.comm_free;
  if (!pkt.is_ack) send_mem_advert(true);
}

// ---------------------------------------------------------------------------
// Peer-link demultiplexer & delivery

void Egp::on_peer_frame(std::vector<std::uint8_t> bytes) {
  const auto frame = net::unseal(bytes);
  if (!frame) return;  // corrupt: equivalent to a lost frame
  try {
    switch (frame->type) {
      case PacketType::kDqpFrame:
        queue_.handle_frame(DqpPacket::decode(frame->payload));
        break;
      case PacketType::kExpire:
        handle_expire(ExpirePacket::decode(frame->payload));
        break;
      case PacketType::kExpireAck:
        handle_expire_ack(ExpireAckPacket::decode(frame->payload));
        break;
      case PacketType::kMemAdvert:
        handle_mem_advert(MemAdvertPacket::decode(frame->payload));
        break;
      default:
        break;
    }
  } catch (const net::WireError&) {
    // Malformed payload despite a valid CRC: drop.
  }
}

void Egp::release_delivered(const OkMessage& ok) {
  if (ok.is_measure_directly) return;
  if (ok.logical_qubit_id >= 0) {
    device_.registry().reset(ok.qubit);
    device_.set_live(ok.qubit, false);
    qmm_.release_memory(ok.logical_qubit_id);
  } else {
    device_.registry().reset(ok.qubit);
    device_.set_live(ok.qubit, false);
    qmm_.release_comm();
  }
}

void Egp::emit_ok(const OkMessage& ok) {
  ++stats_.oks;
  if (on_ok_) on_ok_(ok);
}

void Egp::emit_err(const ErrMessage& err) {
  ++stats_.errors;
  if (on_err_) on_err_(err);
}

}  // namespace qlink::core
