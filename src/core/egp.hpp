#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/distributed_queue.hpp"
#include "core/feu.hpp"
#include "core/qmm.hpp"
#include "core/requests.hpp"
#include "core/scheduler.hpp"
#include "hw/herald_model.hpp"
#include "hw/nv_device.hpp"
#include "hw/nv_params.hpp"
#include "net/channel.hpp"
#include "proto/mhp.hpp"
#include "sim/entity.hpp"

/// \file egp.hpp
/// Entanglement Generation Protocol — the link layer (Protocol 2,
/// Section 5.2). One instance runs at each controllable node; the two
/// instances coordinate exclusively through the distributed queue, the
/// midpoint REPLY stream, and EXPIRE/memory-advertisement messages.

namespace qlink::core {

struct EgpConfig {
  std::uint32_t node_id = 0;
  std::uint32_t peer_node_id = 1;
  bool is_master = false;

  SchedulerConfig scheduler;
  int num_queues = 3;
  std::size_t max_queue_size = 256;
  int dqp_window = 32;
  int dqp_max_retries = 10;

  /// Probability of replacing a K-type attempt by a test round (App. B).
  double test_round_probability = 0.0;
  /// Shared seed for the pre-agreed random strings of Appendix B (basis
  /// choices and test positions); must match at both nodes.
  std::uint64_t shared_seed = 0x51ab1e5eedULL;

  /// Allow M-type attempts in consecutive cycles before the previous
  /// REPLY arrives (Section 5.1.1, "emission multiplexing").
  bool emission_multiplexing = true;

  /// After this many consecutive one-sided midpoint errors for the same
  /// request, expire it locally and notify the peer (recovery from
  /// state divergence, Section 5.2.5).
  int one_sided_error_threshold = 64;

  sim::SimTime expire_retransmit = sim::duration::milliseconds(1);
  int expire_max_retries = 10;

  /// Period of memory advertisements (REQ(E), Fig. 34); 0 disables flow
  /// control (the peer is then assumed to always have room).
  sim::SimTime mem_advert_interval = 0;
};

class Egp : public sim::Entity {
 public:
  using OkFn = std::function<void(const OkMessage&)>;
  using ErrFn = std::function<void(const ErrMessage&)>;

  struct Stats {
    std::uint64_t creates = 0;
    std::uint64_t oks = 0;
    std::uint64_t errors = 0;
    std::uint64_t attempts = 0;
    std::uint64_t successes = 0;
    std::uint64_t test_rounds = 0;
    std::uint64_t expires_sent = 0;
    std::uint64_t expires_received = 0;
    std::uint64_t one_sided_errors = 0;
    std::uint64_t stale_replies = 0;
    std::uint64_t seq_gaps = 0;
    std::uint64_t cancels = 0;
  };

  Egp(sim::Simulator& simulator, std::string name, const EgpConfig& config,
      const hw::ScenarioParams& scenario, hw::NvDevice& device,
      const hw::HeraldModel& model, net::ClassicalChannel& peer_link,
      int peer_endpoint, proto::NodeMhp& mhp);

  /// Higher-layer CREATE (Section 4.1.1). Returns the create id; results
  /// arrive asynchronously through the OK/ERR handlers.
  std::uint32_t create(const CreateRequest& request);

  /// Retract a CREATE this node originated: the request leaves both
  /// nodes' queues (a whole-request EXPIRE retracts the peer's copy)
  /// and no further OKs are generated for it. Pairs already delivered
  /// are unaffected, and no ERR is emitted — the caller decided to
  /// abandon the request. Returns false if the create id is unknown
  /// (already completed, expired, or never ours).
  bool cancel_create(std::uint32_t create_id);

  void set_ok_handler(OkFn fn) { on_ok_ = std::move(fn); }
  void set_err_handler(ErrFn fn) { on_err_ = std::move(fn); }

  /// The higher layer is done with a delivered K-type pair: release the
  /// qubit back to the memory manager.
  void release_delivered(const OkMessage& ok);

  /// Queue policy hook (purpose-id acceptance, Section 4.1.1 item 7).
  void set_queue_policy(DistributedQueue::PolicyFn fn);

  const Stats& stats() const noexcept { return stats_; }
  FidelityEstimationUnit& feu() noexcept { return feu_; }
  const FidelityEstimationUnit& feu() const noexcept { return feu_; }
  QuantumMemoryManager& qmm() noexcept { return qmm_; }
  DistributedQueue& queue() noexcept { return queue_; }
  const DistributedQueue& queue() const noexcept { return queue_; }
  std::uint32_t node_id() const noexcept { return config_.node_id; }
  std::uint32_t expected_seq() const noexcept { return expected_seq_; }

 private:
  struct ActiveRequest {
    net::DqpPacket pkt;
    bool is_origin = false;
    sim::SimTime submit_time = 0;
    std::uint16_t pairs_done = 0;
    double alpha = 0.0;  // cached FEU advice
    int one_sided_streak = 0;
    std::vector<OkMessage> buffered;  // non-consecutive / atomic delivery
  };

  struct PendingExpire {
    net::ExpirePacket pkt;
    int retries = 0;
    sim::EventId timer = 0;
  };

  // MHP wiring (Protocol 1 <-> Protocol 2 boundary).
  proto::PollResponse poll();
  void handle_result(const proto::MhpResult& result);

  // Peer-link demultiplexer.
  void on_peer_frame(std::vector<std::uint8_t> bytes);
  void handle_expire(const net::ExpirePacket& pkt);
  void handle_expire_ack(const net::ExpireAckPacket& pkt);
  void handle_mem_advert(const net::MemAdvertPacket& pkt);

  // DQP callbacks.
  void on_local_queue_result(std::uint32_t create_id, bool ok, EgpError err,
                             net::AbsoluteQueueId aid);
  void on_remote_add(const net::DqpPacket& pkt);

  // Helpers.
  ActiveRequest* find_active(const net::AbsoluteQueueId& aid);
  bool request_is_keep(const net::DqpPacket& pkt) const {
    return !pkt.measure_directly;
  }
  RequestType request_type(const net::DqpPacket& pkt) const {
    return pkt.measure_directly ? RequestType::kCreateMeasure
                                : RequestType::kCreateKeep;
  }
  void process_success(const net::ReplyPacket& reply, ActiveRequest& req);
  void complete_request(const net::AbsoluteQueueId& aid, ActiveRequest& req);
  void expire_request(const net::AbsoluteQueueId& aid, bool notify_peer,
                      bool quiet = false);
  void check_request_timeouts(std::uint64_t cycle);
  void emit_ok(const OkMessage& ok);
  void emit_err(const ErrMessage& err);
  void send_expire(net::ExpirePacket pkt);
  void retransmit_expire(std::uint64_t key);
  void send_mem_advert(bool is_ack);
  bool in_carbon_maintenance(std::uint64_t cycle) const;

  /// Deterministic shared pseudo-randomness (Appendix B's pre-agreed
  /// strings): identical at both nodes for the same request and pair.
  double shared_unit(const net::AbsoluteQueueId& aid, std::uint64_t key,
                     std::uint32_t salt) const;
  quantum::gates::Basis shared_basis(const net::AbsoluteQueueId& aid,
                                     std::uint64_t key) const;
  bool is_test_round(const net::AbsoluteQueueId& aid,
                     std::uint64_t cycle) const;

  EgpConfig config_;
  hw::ScenarioParams scenario_;
  hw::NvDevice& device_;
  net::ClassicalChannel& peer_link_;
  int peer_endpoint_;
  proto::NodeMhp& mhp_;

  QuantumMemoryManager qmm_;
  FidelityEstimationUnit feu_;
  Scheduler scheduler_;
  DistributedQueue queue_;

  std::map<net::AbsoluteQueueId, ActiveRequest> active_;
  std::map<std::uint32_t, std::pair<CreateRequest, sim::SimTime>>
      pending_create_;  // awaiting DQP confirmation, by create id
  std::set<std::uint32_t> cancelled_pending_;  // cancelled before confirm
  std::uint32_t next_create_id_ = 1;

  std::uint32_t expected_seq_ = 1;
  std::uint64_t suspend_until_cycle_ = 0;
  std::set<std::uint64_t> outstanding_m_cycles_;
  std::optional<net::AbsoluteQueueId> outstanding_k_aid_;
  std::uint64_t outstanding_k_cycle_ = 0;

  std::map<std::uint64_t, PendingExpire> pending_expires_;
  std::uint64_t next_expire_key_ = 1;

  int peer_free_memory_ = -1;  // -1 = unknown (assume available)
  int peer_comm_free_ = -1;    // ditto, for unstored (comm-held) pairs
  std::optional<sim::PeriodicTimer> advert_timer_;

  OkFn on_ok_;
  ErrFn on_err_;
  Stats stats_;
};

}  // namespace qlink::core
