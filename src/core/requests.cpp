#include "core/requests.hpp"

namespace qlink::core {

const char* egp_error_name(EgpError e) {
  switch (e) {
    case EgpError::kNone:
      return "OK";
    case EgpError::kTimeout:
      return "TIMEOUT";
    case EgpError::kUnsupported:
      return "UNSUPP";
    case EgpError::kMemExceeded:
      return "MEMEXCEEDED";
    case EgpError::kOutOfMemory:
      return "OUTOFMEM";
    case EgpError::kDenied:
      return "DENIED";
    case EgpError::kNoTime:
      return "ERR_NOTIME";
    case EgpError::kRejected:
      return "ERR_REJECT";
    case EgpError::kExpired:
      return "EXPIRE";
  }
  return "?";
}

}  // namespace qlink::core
